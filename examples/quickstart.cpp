// Quickstart: generate a random ad hoc network, build the paper's AC-LMST
// connected k-hop clustering backbone, and print what came out.
//
//   ./quickstart [N] [avg_degree] [k] [seed]
#include <cstdlib>
#include <iostream>

#include "khop/core/pipeline.hpp"
#include "khop/graph/metrics.hpp"
#include "khop/net/generator.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100;
  const double degree = argc > 2 ? std::strtod(argv[2], nullptr) : 6.0;
  const khop::Hops k =
      argc > 3 ? static_cast<khop::Hops>(std::strtoul(argv[3], nullptr, 10))
               : 2;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 20050615;

  // 1. A random connected unit-disk network in the paper's 100x100 field.
  khop::GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = degree;
  khop::Rng rng(seed);
  const khop::AdHocNetwork net = khop::generate_network(gen, rng);

  const auto deg = khop::degree_stats(net.graph);
  std::cout << "network: " << net.num_nodes() << " nodes, radius "
            << net.radius << ", mean degree " << deg.mean << "\n";

  // 2. One call: k-hop clustering + A-NCR neighbor selection + LMST gateway
  //    selection, with the Theorem 1/2 validators enabled.
  khop::PipelineOptions opts;
  opts.k = k;
  opts.pipeline = khop::Pipeline::kAcLmst;
  const auto result = khop::build_connected_clustering(net, opts);

  std::cout << "k = " << k << " clustering: "
            << result.clustering.num_clusters() << " clusterheads in "
            << result.clustering.election_rounds << " election rounds\n";
  std::cout << "backbone (" << khop::pipeline_name(result.backbone.pipeline)
            << "): " << result.backbone.gateways.size() << " gateways, CDS size "
            << result.cds.size() << " ("
            << 100.0 * static_cast<double>(result.cds.size()) /
                   static_cast<double>(net.num_nodes())
            << "% of nodes)\n";

  std::cout << "clusterheads:";
  for (const khop::NodeId h : result.backbone.heads) std::cout << ' ' << h;
  std::cout << "\ngateways:";
  for (const khop::NodeId g : result.backbone.gateways) std::cout << ' ' << g;
  std::cout << '\n';
  return 0;
}
