// khop_tool - command-line front end for the library.
//
//   khop_tool generate N D seed            > network.txt
//   khop_tool cluster  k pipeline          < network.txt   (prints summary,
//                                           writes clustering/backbone state)
//   khop_tool route    k src dst           < network.txt
//   khop_tool dot      k                   < network.txt   > backbone.dot
//
// pipeline: nc-mesh | ac-mesh | nc-lmst | ac-lmst | g-mst (default ac-lmst)
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "khop/cds/routing.hpp"
#include "khop/core/pipeline.hpp"
#include "khop/io/export.hpp"
#include "khop/io/state.hpp"
#include "khop/net/generator.hpp"

namespace {

using namespace khop;

std::optional<Pipeline> parse_pipeline(const std::string& s) {
  for (const Pipeline p : kAllPipelines) {
    std::string name(pipeline_name(p));
    for (char& ch : name) ch = static_cast<char>(std::tolower(ch));
    if (s == name) return p;
  }
  return std::nullopt;
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4) {
    std::cerr << "usage: khop_tool generate N D seed\n";
    return 2;
  }
  GeneratorConfig cfg;
  cfg.num_nodes = std::strtoul(argv[1], nullptr, 10);
  cfg.target_degree = std::strtod(argv[2], nullptr);
  Rng rng(std::strtoull(argv[3], nullptr, 10));
  const AdHocNetwork net = generate_network(cfg, rng);
  write_network(std::cout, net);
  std::cerr << "generated " << net.num_nodes() << " nodes, radius "
            << net.radius << '\n';
  return 0;
}

int cmd_cluster(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: khop_tool cluster k [pipeline] < network.txt\n";
    return 2;
  }
  const auto k = static_cast<Hops>(std::strtoul(argv[1], nullptr, 10));
  PipelineOptions opts;
  opts.k = k;
  if (argc > 2) {
    const auto p = parse_pipeline(argv[2]);
    if (!p) {
      std::cerr << "unknown pipeline '" << argv[2] << "'\n";
      return 2;
    }
    opts.pipeline = *p;
  }
  const AdHocNetwork net = read_network(std::cin);
  const auto r = build_connected_clustering(net, opts);
  std::cerr << r.clustering.num_clusters() << " clusterheads, "
            << r.backbone.gateways.size() << " gateways, CDS "
            << r.cds.size() << '\n';
  write_clustering(std::cout, r.clustering);
  write_backbone(std::cout, r.backbone);
  return 0;
}

int cmd_route(int argc, char** argv) {
  if (argc < 4) {
    std::cerr << "usage: khop_tool route k src dst < network.txt\n";
    return 2;
  }
  const auto k = static_cast<Hops>(std::strtoul(argv[1], nullptr, 10));
  const auto src = static_cast<NodeId>(std::strtoul(argv[2], nullptr, 10));
  const auto dst = static_cast<NodeId>(std::strtoul(argv[3], nullptr, 10));
  const AdHocNetwork net = read_network(std::cin);
  PipelineOptions opts;
  opts.k = k;
  const auto r = build_connected_clustering(net, opts);
  const BackboneRouter router(net.graph, r.clustering, r.backbone);
  const Route route = router.route(src, dst);
  std::cout << "route (" << route.hops() << " hops):";
  for (NodeId v : route.path) std::cout << ' ' << v;
  std::cout << "\nstretch: " << (src == dst ? 1.0 : router.stretch(src, dst))
            << '\n';
  return 0;
}

int cmd_dot(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: khop_tool dot k < network.txt > out.dot\n";
    return 2;
  }
  const auto k = static_cast<Hops>(std::strtoul(argv[1], nullptr, 10));
  const AdHocNetwork net = read_network(std::cin);
  PipelineOptions opts;
  opts.k = k;
  const auto r = build_connected_clustering(net, opts);
  write_dot(std::cout, net, r.clustering, r.backbone);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: khop_tool {generate|cluster|route|dot} ...\n";
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "generate") return cmd_generate(argc - 1, argv + 1);
    if (cmd == "cluster") return cmd_cluster(argc - 1, argv + 1);
    if (cmd == "route") return cmd_route(argc - 1, argv + 1);
    if (cmd == "dot") return cmd_dot(argc - 1, argv + 1);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  std::cerr << "unknown command '" << cmd << "'\n";
  return 2;
}
