/// \file trace_pipeline.cpp
/// End-to-end telemetry demo: runs the full static pipeline (clustering ->
/// NC-LMST backbone -> neighborhood-discovery flood) plus a churn-engine
/// maintenance run with telemetry enabled, then exports
///
///  * a Chrome trace-event timeline (khop.trace v1) — load it in Perfetto
///    (ui.perfetto.dev) or chrome://tracing, and
///  * the metrics registry snapshot (khop.metrics v1) with the engine.*,
///    churn.*, and backbone.* instruments filled in.
///
/// Both files are validated in CI (tools/validate_trace_json.py); the
/// committed reference artifact docs/traces/trace_pipeline.json was
/// produced by this program at the default sizes.
///
/// Usage:
///   example_trace_pipeline [--n N] [--events E] [--k K] [--degree D]
///                          [--threads T] [--seed S]
///                          [--trace-out FILE] [--metrics-out FILE]
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "khop/cluster/clustering.hpp"
#include "khop/dynamic/churn_engine.hpp"
#include "khop/dynamic/churn_trace.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/net/generator.hpp"
#include "khop/obs/metrics.hpp"
#include "khop/obs/telemetry.hpp"
#include "khop/obs/trace.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/runtime/workspace.hpp"
#include "khop/sim/engine.hpp"
#include "khop/sim/protocols/neighborhood.hpp"

namespace {

using namespace khop;

struct Options {
  std::size_t n = 2000;
  std::size_t events = 500;
  Hops k = 2;
  double degree = 8.0;
  std::size_t threads = 2;
  std::uint64_t seed = 20260808;
  std::string trace_out = "trace_pipeline.json";
  std::string metrics_out = "metrics_pipeline.json";
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--n") {
      opt.n = std::stoull(need_value("--n"));
    } else if (arg == "--events") {
      opt.events = std::stoull(need_value("--events"));
    } else if (arg == "--k") {
      opt.k = static_cast<Hops>(std::stoul(need_value("--k")));
    } else if (arg == "--degree") {
      opt.degree = std::stod(need_value("--degree"));
    } else if (arg == "--threads") {
      opt.threads = std::stoull(need_value("--threads"));
    } else if (arg == "--seed") {
      opt.seed = std::stoull(need_value("--seed"));
    } else if (arg == "--trace-out") {
      opt.trace_out = need_value("--trace-out");
    } else if (arg == "--metrics-out") {
      opt.metrics_out = need_value("--metrics-out");
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);

  obs::set_enabled(true);

  GeneratorConfig gen;
  gen.num_nodes = opt.n;
  gen.target_degree = opt.degree;
  Rng rng(opt.seed);
  const Graph g = generate_network(gen, rng).graph;
  std::cout << "network: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " k=" << opt.k << "\n";

  // Static pipeline: clustering -> backbone (parallel sweep) -> flood.
  ThreadPool pool(opt.threads);
  Workspace ws;
  const auto priorities = make_priorities(g, PriorityRule::kLowestId);
  const Clustering c =
      khop_clustering(g, opt.k, priorities, AffiliationRule::kIdBased, ws);
  const Backbone b = build_backbone(g, c, Pipeline::kNcLmst, pool);
  std::cout << "clustering: " << c.heads.size() << " heads in "
            << c.election_rounds << " rounds; backbone: "
            << b.gateways.size() << " gateways, " << b.virtual_links.size()
            << " virtual links\n";

  SyncEngine engine(g, [&](NodeId) {
    return std::make_unique<NeighborhoodDiscoveryAgent>(opt.k);
  });
  engine.run(4 * opt.k + 4, pool);
  std::cout << "flood: " << engine.stats().rounds << " rounds, "
            << engine.stats().transmissions << " transmissions, "
            << engine.stats().receptions << " receptions\n";

  // Churn maintenance: a mixed event trace through the incremental engine.
  ChurnTraceConfig cfg;
  cfg.num_events = opt.events;
  const ChurnTrace trace = ChurnTrace::generate(g, cfg, opt.seed + 1);
  ChurnEngine churn(g, opt.k, Pipeline::kAcLmst);
  for (const ChurnEvent& e : trace.events()) churn.apply(e);
  const std::string audit = churn.audit();
  if (!audit.empty()) {
    std::cerr << "churn audit failed: " << audit << "\n";
    return 1;
  }
  churn.publish_stats();  // unpublished delta -> churn.* registry counters
  const ChurnStats& cs = churn.stats();
  std::cout << "churn: " << cs.events << " events, " << cs.orphans
            << " orphans, " << cs.reaffiliations << " reaffiliations, "
            << cs.heads_resweeped << " resweeps\n";

  // Export. Quiescent: the pool is idle and the churn engine is serial.
  pool.wait_idle();
  obs::Tracer::global().write_chrome_json(opt.trace_out);
  obs::Registry::global().write_json(opt.metrics_out);
  std::cout << "wrote " << opt.trace_out << " ("
            << obs::Tracer::global().num_events() << " spans) and "
            << opt.metrics_out << "\n";
  return 0;
}
