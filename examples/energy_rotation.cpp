// Example: power-aware clusterhead rotation (paper section 3.3). Replacing
// lowest-ID with residual-energy priority rotates the expensive clusterhead
// role and stretches the time until the first node dies.
//
//   ./energy_rotation [N] [k] [seed]
#include <cstdlib>
#include <iostream>

#include "khop/dynamic/rotation.hpp"
#include "khop/exp/table.hpp"
#include "khop/net/generator.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 80;
  const khop::Hops k =
      argc > 2 ? static_cast<khop::Hops>(std::strtoul(argv[2], nullptr, 10))
               : 2;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

  khop::GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = 8.0;
  khop::Rng rng(seed);
  const khop::AdHocNetwork net = khop::generate_network(gen, rng);

  khop::RotationConfig cfg;
  cfg.k = k;
  cfg.max_epochs = 500;
  cfg.energy.initial = 60.0;
  cfg.energy.clusterhead_cost = 1.0;
  cfg.energy.gateway_cost = 0.4;
  cfg.energy.member_cost = 0.05;

  khop::TextTable t(
      {"priority", "first death epoch", "epochs run", "mean churn/epoch"});
  for (const auto& [rule, name] :
       {std::pair{khop::PriorityRule::kHighestEnergy, "residual energy"},
        std::pair{khop::PriorityRule::kLowestId, "lowest-ID (static)"}}) {
    cfg.priority = rule;
    khop::Rng rot_rng(seed);
    const khop::RotationResult r = khop::run_rotation(net, cfg, rot_rng);
    double churn = 0.0;
    for (const auto& e : r.epochs) churn += static_cast<double>(e.head_churn);
    churn /= static_cast<double>(std::max<std::size_t>(1, r.epochs.size()));
    t.add_row({name, std::to_string(r.first_death_epoch),
               std::to_string(r.epochs.size()), khop::fmt(churn, 2)});
  }
  t.print(std::cout);

  std::cout << "\nEnergy-priority elections rotate the head role, so the "
               "drain spreads across nodes\ninstead of exhausting the "
               "lowest-ID nodes first (paper section 3.3).\n";
  return 0;
}
