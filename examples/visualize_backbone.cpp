// Example: export a network + backbone for plotting. Writes three artifacts
// next to the working directory:
//   khop_network.txt  - positions/radius (re-loadable via read_network)
//   khop_layout.txt   - id x y role cluster dist (gnuplot-friendly)
//   khop_backbone.dot - Graphviz with heads/gateways highlighted
//                       (render: neato -n2 -Tpng khop_backbone.dot -o out.png)
//
//   ./visualize_backbone [N] [avg_degree] [k] [seed]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "khop/core/pipeline.hpp"
#include "khop/io/export.hpp"
#include "khop/net/generator.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100;
  const double degree = argc > 2 ? std::strtod(argv[2], nullptr) : 6.0;
  const khop::Hops k =
      argc > 3 ? static_cast<khop::Hops>(std::strtoul(argv[3], nullptr, 10))
               : 3;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2008;

  khop::GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = degree;
  khop::Rng rng(seed);
  const khop::AdHocNetwork net = khop::generate_network(gen, rng);

  khop::PipelineOptions opts;
  opts.k = k;
  const auto r = khop::build_connected_clustering(net, opts);

  {
    std::ofstream f("khop_network.txt");
    khop::write_network(f, net);
  }
  {
    std::ofstream f("khop_layout.txt");
    khop::write_layout(f, net, r.clustering, r.backbone);
  }
  {
    std::ofstream f("khop_backbone.dot");
    khop::write_dot(f, net, r.clustering, r.backbone);
  }

  std::cout << "wrote khop_network.txt, khop_layout.txt, khop_backbone.dot\n"
            << "network: " << net.num_nodes() << " nodes, "
            << r.clustering.num_clusters() << " clusterheads, "
            << r.backbone.gateways.size() << " gateways (k = " << k
            << ", AC-LMST)\n"
            << "render:  neato -n2 -Tpng khop_backbone.dot -o backbone.png\n"
            << "gnuplot: plot 'khop_layout.txt' using 2:3:4 with points "
               "palette\n";
  return 0;
}
