/// \file crash_recovery.cpp
/// Crash-recovery stress driver (the CI "pull the plug" job) and fixture
/// generator for the durability subsystem.
///
/// Stress mode (default): runs a seeded churn trace through a
/// DurableChurnEngine and, `--crashes N` times, arms a crash point drawn
/// round-robin from the registry at a trace-position-dependent depth, lets
/// the process "die" (CrashInjected unwinds the stack, unflushed WAL bytes
/// are lost, torn files stay on disk), recovers from the directory, and
/// resumes the trace from the recovered cursor. At the end the survivor is
/// audited and compared bit-exactly against an engine that applied the same
/// trace with no crashes; any divergence or audit failure exits non-zero.
/// Emits the persist.* metrics so the CI log shows snapshot/replay volume.
///
/// Fixture mode (--emit-fixture DIR): writes the committed format-stability
/// fixtures read by tests/test_persist.cpp and tools/validate_snapshot.py —
/// a snapshot at a fixed cursor plus a clean WAL segment continuing it,
/// produced from a fixed (seed, n, k, pipeline) so the bytes only change
/// when the format version does.
///
/// Usage:
///   example_crash_recovery [--n N] [--events E] [--k K] [--crashes C]
///                          [--seed S] [--pipeline acmesh|aclmst|ncmesh|nclmst]
///                          [--dir PATH] [--snapshot-every N]
///                          [--flush-every N] [--metrics-out FILE]
///   example_crash_recovery --emit-fixture DIR
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "khop/dynamic/churn_engine.hpp"
#include "khop/dynamic/churn_trace.hpp"
#include "khop/dynamic/persist/crash_point.hpp"
#include "khop/dynamic/persist/snapshot.hpp"
#include "khop/dynamic/persist/store.hpp"
#include "khop/dynamic/persist/wal.hpp"
#include "khop/net/generator.hpp"
#include "khop/obs/metrics.hpp"

namespace {

using namespace khop;
namespace fs = std::filesystem;

struct Options {
  std::size_t n = 300;
  std::size_t events = 2000;
  Hops k = 2;
  std::size_t crashes = 12;
  std::uint64_t seed = 20260808;
  Pipeline pipeline = Pipeline::kAcMesh;
  std::string dir = "crash_recovery_store";
  std::size_t snapshot_every = 128;
  std::size_t flush_every = 4;
  std::string metrics_out;
  std::string fixture_dir;  // non-empty: fixture mode
};

Pipeline parse_pipeline(const std::string& s) {
  if (s == "acmesh") return Pipeline::kAcMesh;
  if (s == "aclmst") return Pipeline::kAcLmst;
  if (s == "ncmesh") return Pipeline::kNcMesh;
  if (s == "nclmst") return Pipeline::kNcLmst;
  std::cerr << "unknown pipeline: " << s << "\n";
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--n") {
      opt.n = std::stoull(need_value("--n"));
    } else if (arg == "--events") {
      opt.events = std::stoull(need_value("--events"));
    } else if (arg == "--k") {
      opt.k = static_cast<Hops>(std::stoul(need_value("--k")));
    } else if (arg == "--crashes") {
      opt.crashes = std::stoull(need_value("--crashes"));
    } else if (arg == "--seed") {
      opt.seed = std::stoull(need_value("--seed"));
    } else if (arg == "--pipeline") {
      opt.pipeline = parse_pipeline(need_value("--pipeline"));
    } else if (arg == "--dir") {
      opt.dir = need_value("--dir");
    } else if (arg == "--snapshot-every") {
      opt.snapshot_every = std::stoull(need_value("--snapshot-every"));
    } else if (arg == "--flush-every") {
      opt.flush_every = std::stoull(need_value("--flush-every"));
    } else if (arg == "--metrics-out") {
      opt.metrics_out = need_value("--metrics-out");
    } else if (arg == "--emit-fixture") {
      opt.fixture_dir = need_value("--emit-fixture");
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

Graph make_network(std::uint64_t seed, std::size_t n) {
  GeneratorConfig cfg;
  cfg.num_nodes = n;
  Rng rng(seed);
  return generate_network(cfg, rng).graph;
}

/// Writes the committed format-stability fixtures. Fixed parameters: the
/// output bytes must only change when the format version changes, so the
/// validator and the loader tests pin exact cursors and names.
int emit_fixture(const std::string& dir) {
  fs::create_directories(dir);
  const Graph g = make_network(/*seed=*/4242, /*n=*/60);
  ChurnTraceConfig cfg;
  cfg.num_events = 160;
  const ChurnTrace trace = ChurnTrace::generate(g, cfg, /*seed=*/4243);

  ChurnEngine engine(g, /*k=*/2, Pipeline::kAcMesh);
  for (std::size_t i = 0; i < 120; ++i) engine.apply(trace.events()[i]);

  const std::string snap_path = dir + "/snapshot_n60_k2_acmesh.khsnp";
  const std::string bytes = persist::encode_snapshot(engine, /*cursor=*/120);
  {
    std::ofstream out(snap_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      std::cerr << "cannot write " << snap_path << "\n";
      return 1;
    }
  }

  const std::string wal_path = dir + "/wal_n60_k2_acmesh.khwal";
  persist::WalWriter w =
      persist::WalWriter::create(wal_path, /*start_cursor=*/120,
                                 /*flush_every=*/1);
  for (std::size_t i = 120; i < 160; ++i) w.append(trace.events()[i]);
  w.close();

  std::cout << "fixtures: " << snap_path << " (" << bytes.size()
            << " bytes), " << wal_path << " (40 events)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  if (!opt.fixture_dir.empty()) return emit_fixture(opt.fixture_dir);

  const Graph g = make_network(opt.seed, opt.n);
  ChurnTraceConfig cfg;
  cfg.num_events = opt.events;
  const ChurnTrace trace = ChurnTrace::generate(g, cfg, opt.seed + 1);
  std::cout << "network: n=" << g.num_nodes() << " m=" << g.num_edges()
            << " k=" << opt.k << "; trace: " << trace.size()
            << " events, " << opt.crashes << " injected crashes\n";

  // The no-crash oracle.
  ChurnEngine oracle(g, opt.k, opt.pipeline);
  for (const ChurnEvent& e : trace.events()) oracle.apply(e);

  persist::DurabilityOptions dopts;
  dopts.snapshot_every = opt.snapshot_every;
  dopts.wal_flush_every = opt.flush_every;

  fs::remove_all(opt.dir);
  constexpr std::size_t kNumPoints =
      sizeof(persist::kCrashPointNames) / sizeof(persist::kCrashPointNames[0]);
  persist::CrashPoints& cp = persist::CrashPoints::global();

  std::uint64_t cursor = 0;
  std::size_t crashes_done = 0, replayed_total = 0;
  for (std::size_t round = 0; cursor < trace.size(); ++round) {
    const bool crash_this_round = crashes_done < opt.crashes;
    const char* point =
        persist::kCrashPointNames[crashes_done % kNumPoints];
    {
      persist::DurableChurnEngine durable =
          round == 0 ? persist::DurableChurnEngine::create(
                           g, opt.k, opt.pipeline, opt.dir, dopts)
                     : persist::DurableChurnEngine::recover(
                           opt.dir, nullptr, dopts);
      if (crash_this_round) {
        // Depth varies with the round so crashes land at snapshot
        // boundaries, mid-segment, and everywhere between. Snapshot points
        // fire once per snapshot_every events, so they get shallow
        // countdowns; per-append WAL points get deep ones.
        const bool is_wal =
            std::string_view(point).substr(0, 4) == "wal.";
        cp.arm(point, is_wal ? 1 + (round * 37) % 150 : 1 + round % 3);
      }
      try {
        while (durable.cursor() < trace.size()) {
          durable.apply(trace.events()[durable.cursor()]);
        }
        durable.flush_wal();
        cursor = durable.cursor();
      } catch (const persist::CrashInjected&) {
        ++crashes_done;
        std::cout << "  crash #" << crashes_done << " at " << point
                  << ", cursor " << durable.cursor() << "\n";
      }
      cp.disarm();
    }
    if (cursor >= trace.size()) break;
    persist::RecoveryReport rep;
    persist::DurableChurnEngine probe =
        persist::DurableChurnEngine::recover(opt.dir, &rep, dopts);
    replayed_total += rep.replayed_events;
    std::cout << "  recovered to cursor " << rep.cursor << " (snapshot "
              << rep.snapshot_cursor << ", " << rep.replayed_events
              << " replayed";
    if (!rep.wal_tail.empty()) std::cout << ", torn tail";
    if (!rep.fallbacks.empty()) {
      std::cout << ", " << rep.fallbacks.size() << " snapshot fallbacks";
    }
    std::cout << ")\n";
    cursor = rep.cursor;
    // The probe's fresh WAL segment is all the resume run needs; the next
    // loop iteration re-recovers into its own engine.
  }

  // Final verdict: recover once more and compare against the oracle.
  persist::DurableChurnEngine survivor =
      persist::DurableChurnEngine::recover(opt.dir, nullptr, dopts);
  while (survivor.cursor() < trace.size()) {
    survivor.apply(trace.events()[survivor.cursor()]);
  }
  const std::string audit = survivor.engine().audit();
  if (!audit.empty()) {
    std::cerr << "FAIL: post-recovery audit: " << audit << "\n";
    return 1;
  }
  const ChurnEngine& got = survivor.engine();
  if (got.clustering().heads != oracle.clustering().heads ||
      got.clustering().head_of != oracle.clustering().head_of ||
      got.clustering().dist_to_head != oracle.clustering().dist_to_head ||
      got.backbone().heads != oracle.backbone().heads ||
      got.backbone().gateways != oracle.backbone().gateways ||
      got.backbone().virtual_links != oracle.backbone().virtual_links ||
      got.num_components() != oracle.num_components() ||
      got.stats().events != oracle.stats().events) {
    std::cerr << "FAIL: recovered state diverges from the no-crash oracle\n";
    return 1;
  }

  std::cout << "ok: " << crashes_done << " crashes survived, "
            << replayed_total << " events replayed, state bit-identical "
            << "to the no-crash run (" << got.clustering().heads.size()
            << " heads, " << got.backbone().gateways.size()
            << " gateways)\n";
  if (!opt.metrics_out.empty()) {
    obs::Registry::global().write_json(opt.metrics_out);
    std::cout << "wrote " << opt.metrics_out << "\n";
  }
  return 0;
}
