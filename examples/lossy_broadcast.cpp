// Example: delivery-aware broadcast over lossy radio links.
//
//   ./lossy_broadcast [N] [avg_degree] [k] [seed]
//
// Builds one connected topology, then walks the radio-model ladder - ideal
// unit disk, quasi-UDG, log-normal shadowing - showing for each model the
// link layer it induces (link count, mean delivery probability) and what a
// network-wide broadcast actually delivers under per-link Bernoulli drops,
// blind vs CDS-confined, without and with a small link-retry budget.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "khop/cds/broadcast.hpp"
#include "khop/core/pipeline.hpp"
#include "khop/exp/table.hpp"
#include "khop/net/generator.hpp"
#include "khop/radio/delivery.hpp"
#include "khop/radio/lossy_flood.hpp"
#include "khop/radio/network_link.hpp"

int main(int argc, char** argv) {
  using namespace khop;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 150;
  const double degree = argc > 2 ? std::strtod(argv[2], nullptr) : 6.0;
  const Hops k =
      argc > 3 ? static_cast<Hops>(std::strtoul(argv[3], nullptr, 10)) : 2;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 7;

  GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = degree;
  Rng rng(seed);
  AdHocNetwork net = generate_network(gen, rng);
  std::cout << "topology: N = " << net.num_nodes() << ", radius "
            << fmt(net.radius, 2) << ", unit-disk links "
            << net.graph.num_edges() << "\n\n";

  struct Entry {
    std::string label;
    std::unique_ptr<LinkModel> model;
  };
  std::vector<Entry> ladder;
  ladder.push_back({"unit-disk", std::make_unique<UnitDiskModel>(net.radius)});
  ladder.push_back({"quasi-udg 0.6r",
                    std::make_unique<QuasiUnitDiskModel>(0.6 * net.radius,
                                                         net.radius)});
  LogNormalShadowingModel::Params shadow;
  shadow.r_half = net.radius;
  ladder.push_back(
      {"log-normal", std::make_unique<LogNormalShadowingModel>(shadow)});

  // Flood from a max-degree node of the nominal graph so the first hop is
  // not a degenerate single link.
  NodeId source = 0;
  for (NodeId v = 1; v < net.num_nodes(); ++v) {
    if (net.graph.degree(v) > net.graph.degree(source)) source = v;
  }
  std::cout << "flood source: node " << source << " (degree "
            << net.graph.degree(source) << ")\n\n";

  TextTable t({"model", "links", "mean p", "flood", "retry", "delivered",
               "tx", "drops", "retx"});
  for (const Entry& entry : ladder) {
    const LinkLayer layer = rebuild_with_model(net, *entry.model);
    // Cluster on the model's own possible-links topology.
    PipelineOptions opts;
    opts.k = k;
    const auto r = build_connected_clustering(net, opts);
    const std::vector<bool> cds_mask = cds_forwarder_mask(
        net.graph, r.clustering, r.backbone, CdsFloodModel::kMemberTrees);

    for (const bool confined : {false, true}) {
      for (const std::size_t retry : {std::size_t{0}, std::size_t{2}}) {
        LossyFloodOptions fo;
        fo.seed = seed + (confined ? 1000 : 0) + retry;
        fo.retry_budget = retry;
        if (confined) fo.forwarders = cds_mask;
        const LossyFloodResult res = lossy_flood(layer, source, fo);
        t.add_row({entry.label, std::to_string(layer.links().size()),
                   fmt(layer.mean_probability(), 3),
                   confined ? "CDS" : "blind", std::to_string(retry),
                   std::to_string(res.delivered) + "/" +
                       std::to_string(net.num_nodes()),
                   std::to_string(res.stats.transmissions),
                   std::to_string(res.stats.drops),
                   std::to_string(res.stats.retransmissions)});
      }
    }
  }
  t.print(std::cout);

  // Restore the ideal graph before leaving (the walkthrough mutated it).
  net.rebuild_graph();
  std::cout << "\n(k = " << k << "; unit-disk rows drop nothing - the legacy "
               "pipeline is the zero-loss special case. Blind flooding "
               "absorbs loss through redundancy; the thin CDS flood is the "
               "fragile one, and a small link-retry budget claws a large "
               "share of its receivers back.)\n";
  return 0;
}
