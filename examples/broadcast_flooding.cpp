// Example: the application that motivates the paper (section 1) - network-
// wide broadcast with flooding confined to the connected k-hop clustering
// backbone instead of every node.
//
//   ./broadcast_flooding [N] [avg_degree] [k] [seed]
//
// Builds one network, constructs the backbone with each pipeline, and shows
// how many forwarding transmissions a broadcast costs compared with blind
// flooding, all while delivering to every node.
#include <cstdlib>
#include <iostream>

#include "khop/cds/broadcast.hpp"
#include "khop/core/pipeline.hpp"
#include "khop/exp/table.hpp"
#include "khop/net/generator.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 150;
  const double degree = argc > 2 ? std::strtod(argv[2], nullptr) : 6.0;
  const khop::Hops k =
      argc > 3 ? static_cast<khop::Hops>(std::strtoul(argv[3], nullptr, 10))
               : 2;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 7;

  khop::GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = degree;
  khop::Rng rng(seed);
  const khop::AdHocNetwork net = khop::generate_network(gen, rng);

  const khop::BroadcastResult blind = khop::blind_flood(net.graph, 0);
  std::cout << "blind flooding from node 0: " << blind.transmissions
            << " transmissions, " << blind.rounds << " rounds, delivered "
            << blind.delivered << "/" << net.num_nodes() << "\n\n";

  khop::TextTable t({"pipeline", "CDS", "broadcast tx", "saving %", "rounds",
                     "complete"});
  for (const khop::Pipeline p : khop::kAllPipelines) {
    khop::PipelineOptions opts;
    opts.k = k;
    opts.pipeline = p;
    const auto r = khop::build_connected_clustering(net, opts);
    const khop::BroadcastResult flood =
        khop::cds_flood(net.graph, r.clustering, r.backbone, 0);
    const double saving =
        100.0 *
        (1.0 - static_cast<double>(flood.transmissions) /
                   static_cast<double>(blind.transmissions));
    t.add_row({std::string(khop::pipeline_name(p)),
               std::to_string(r.cds.size()),
               std::to_string(flood.transmissions), khop::fmt(saving, 1),
               std::to_string(flood.rounds), flood.complete ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\n(k = " << k << ", N = " << net.num_nodes()
            << ", target degree " << degree << ")\n";
  return 0;
}
