// Example: continuous k-hop maintenance under mobility-driven churn.
//
// A random-waypoint model moves the nodes; every tick the unit-disk graph is
// rebuilt from the new positions and diffed against the previous one. The
// resulting link flips feed the incremental ChurnEngine, which repairs the
// clustering and backbone in place — re-election only for nodes that lost
// domination, gateway re-sweeps only for affected heads, never a full
// rebuild. A bit-exact audit against full recomputation runs every few
// ticks.
//
//   ./mobility_maintenance [N] [k] [ticks] [seed]
#include <cstdlib>
#include <iostream>

#include "khop/dynamic/churn_engine.hpp"
#include "khop/exp/table.hpp"
#include "khop/net/generator.hpp"
#include "khop/net/mobility.hpp"

int main(int argc, char** argv) {
  using namespace khop;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;
  const Hops k =
      argc > 2 ? static_cast<Hops>(std::strtoul(argv[2], nullptr, 10)) : 2;
  const std::size_t ticks = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 12;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 99;

  GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = 10.0;
  Rng rng(seed);
  AdHocNetwork net = generate_network(gen, rng);

  ChurnEngine engine(net.graph, k, Pipeline::kAcLmst);
  std::cout << "initial: " << net.num_nodes() << " nodes, "
            << engine.clustering().heads.size() << " clusterheads, "
            << engine.backbone().gateways.size() << " gateways\n\n";

  RandomWaypointConfig mob;
  mob.min_speed = 2.0;
  mob.max_speed = 6.0;
  RandomWaypointModel model(mob, net.num_nodes(), net.field, rng);

  TextTable t({"tick", "downs", "ups", "orphans", "new heads", "resweeps",
               "locality", "comps", "audit"});
  const std::size_t n_alive = net.num_nodes();
  for (std::size_t tick = 1; tick <= ticks; ++tick) {
    const Graph before = net.graph;
    model.step(net, rng);
    net.rebuild_graph();

    // The beacon layer's view of the tick: which links flipped.
    std::size_t downs = 0;
    std::size_t ups = 0;
    std::size_t orphans = 0;
    std::size_t new_heads = 0;
    std::size_t resweeps = 0;
    std::size_t touched = 0;
    for (const LinkFlip& f : diff_topology(before, net.graph)) {
      ChurnEvent e;
      e.type = f.up ? ChurnEventType::kLinkUp : ChurnEventType::kLinkDown;
      e.a = f.u;
      e.b = f.v;
      const ChurnEventReport rep = engine.apply(e);
      (f.up ? ups : downs) += 1;
      orphans += rep.orphans;
      new_heads += rep.new_heads;
      resweeps += rep.heads_resweeped;
      touched += rep.touched_nodes;
    }

    const bool audit_tick = tick % 3 == 0 || tick == ticks;
    std::string audit = "-";
    if (audit_tick) {
      const std::string err = engine.audit();
      audit = err.empty() ? "ok" : "FAIL: " + err;
    }
    // Repair locality: nodes touched per event over n (1.0 would mean every
    // event recomputed the whole network).
    const std::size_t flips = downs + ups;
    const double locality =
        flips == 0 ? 0.0
                   : static_cast<double>(touched) /
                         (static_cast<double>(flips) *
                          static_cast<double>(n_alive));
    t.add_row({std::to_string(tick), std::to_string(downs),
               std::to_string(ups), std::to_string(orphans),
               std::to_string(new_heads), std::to_string(resweeps),
               fmt(locality, 3), std::to_string(engine.num_components()),
               audit});
  }
  t.print(std::cout);

  const ChurnStats& s = engine.stats();
  const double reaffil =
      s.orphans == 0 ? 0.0
                     : static_cast<double>(s.reaffiliations) /
                           static_cast<double>(s.orphans);
  std::cout << "\n" << s.events << " link events, " << s.noop_events
            << " no-ops, " << s.partitions << " partitions, " << s.merges
            << " merges\nre-affiliation ratio " << fmt(reaffil, 3)
            << ", final backbone: " << engine.clustering().heads.size()
            << " heads + " << engine.backbone().gateways.size()
            << " gateways, full rebuilds: " << s.full_rebuilds << "\n";
  return 0;
}
