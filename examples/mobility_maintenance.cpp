// Example: maintaining a connected k-hop clustering under churn (paper
// section 3.3). Nodes fail one at a time; instead of rebuilding everything,
// the maintenance policy applies the paper's local fixes:
//   member failure     -> nothing to do,
//   gateway failure    -> affected clusterheads re-run gateway selection,
//   clusterhead failure-> re-election confined to the orphaned cluster.
//
//   ./mobility_maintenance [N] [k] [failures] [seed]
#include <cstdlib>
#include <iostream>

#include "khop/dynamic/events.hpp"
#include "khop/exp/table.hpp"
#include "khop/net/generator.hpp"

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;
  const khop::Hops k =
      argc > 2 ? static_cast<khop::Hops>(std::strtoul(argv[2], nullptr, 10))
               : 2;
  const std::size_t failures =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 15;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 99;

  khop::GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = 8.0;
  khop::Rng rng(seed);
  const khop::AdHocNetwork net = khop::generate_network(gen, rng);

  khop::Graph graph = net.graph;
  khop::Clustering clustering = khop::khop_clustering(graph, k);
  khop::Backbone backbone =
      khop::build_backbone(graph, clustering, khop::Pipeline::kAcLmst);

  std::cout << "initial: " << graph.num_nodes() << " nodes, "
            << clustering.heads.size() << " clusterheads, "
            << backbone.gateways.size() << " gateways\n\n";

  khop::TextTable t({"event", "class", "nodes", "heads", "gateways",
                     "orphans", "new heads", "valid"});
  std::size_t done = 0;
  for (std::size_t attempt = 0; done < failures && attempt < failures * 5;
       ++attempt) {
    const auto victim =
        static_cast<khop::NodeId>(rng.uniform_int(graph.num_nodes()));
    const auto rep = khop::handle_node_failure(
        graph, clustering, backbone, khop::Pipeline::kAcLmst, victim);
    if (!rep.remainder_connected) continue;  // cut vertex: skip this victim

    ++done;
    const char* cls =
        rep.failure_class == khop::FailureClass::kPlainMember ? "member"
        : rep.failure_class == khop::FailureClass::kGateway   ? "gateway"
                                                              : "head";
    graph = rep.remainder.graph;
    clustering = rep.clustering;
    backbone = rep.backbone;
    t.add_row({std::to_string(done), cls, std::to_string(graph.num_nodes()),
               std::to_string(clustering.heads.size()),
               std::to_string(backbone.gateways.size()),
               std::to_string(rep.orphaned_members),
               std::to_string(rep.new_heads),
               rep.validation_error.empty() ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nThe backbone stayed a valid connected k-hop CDS through "
            << done << " failures without a single full rebuild.\n";
  return 0;
}
