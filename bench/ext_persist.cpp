/// \file ext_persist.cpp
/// Durability-subsystem benchmark (PR 9): what crash safety costs.
///
/// Emits a khop.bench file (`BENCH_PERSIST.json` by default) with four
/// kernel groups over a churned engine at --n nodes:
///
///  * `snapshot_encode` — serializing the full live engine state.
///  * `snapshot_decode` — parse + checksum + ChurnEngine::restore back to a
///    live engine (the recovery-path CPU cost, files aside).
///  * `wal_append` — appending + flushing the whole event trace, `flush1`
///    (every record durable immediately) vs `flush16` (batched): the
///    checksum digests the decoded segment, so both variants must land the
///    identical record sequence on disk.
///  * `recover` — DurableChurnEngine::recover over a directory holding one
///    mid-trace snapshot plus its WAL tail (the end-to-end restart cost).
///
/// Usage:
///   bench_ext_persist [--out FILE] [--n N] [--events E] [--k K]
///                     [--degree D] [--min-seconds S] [--seed S]
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "harness/harness.hpp"
#include "khop/dynamic/churn_engine.hpp"
#include "khop/dynamic/churn_trace.hpp"
#include "khop/dynamic/persist/snapshot.hpp"
#include "khop/dynamic/persist/store.hpp"
#include "khop/dynamic/persist/wal.hpp"
#include "khop/net/generator.hpp"

namespace {

using namespace khop;
namespace fs = std::filesystem;

struct Options {
  std::string out = "BENCH_PERSIST.json";
  std::size_t n = 2000;
  std::size_t events = 2000;
  Hops k = 2;
  double degree = 8.0;
  double min_seconds = 0.05;
  std::uint64_t seed = 20260808;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      opt.out = need_value("--out");
    } else if (arg == "--n") {
      opt.n = std::stoull(need_value("--n"));
    } else if (arg == "--events") {
      opt.events = std::stoull(need_value("--events"));
    } else if (arg == "--k") {
      opt.k = static_cast<Hops>(std::stoul(need_value("--k")));
    } else if (arg == "--degree") {
      opt.degree = std::stod(need_value("--degree"));
    } else if (arg == "--min-seconds") {
      opt.min_seconds = std::stod(need_value("--min-seconds"));
    } else if (arg == "--seed") {
      opt.seed = std::stoull(need_value("--seed"));
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

/// Order-independent integer-valued digest of recovered engine state.
double engine_digest(const ChurnEngine& e) {
  double sum = static_cast<double>(e.graph().num_alive()) +
               3.0 * static_cast<double>(e.graph().num_edges()) +
               23.0 * static_cast<double>(e.num_components());
  for (NodeId h : e.clustering().heads) sum += 11.0 * h;
  for (NodeId v = 0; v < e.graph().capacity(); ++v) {
    if (!e.graph().alive(v)) continue;
    sum += 31.0 * e.clustering().head_of[v] + 7.0 * e.clustering().dist_to_head[v];
  }
  return sum;
}

double segment_digest(const persist::WalSegment& seg) {
  double sum = static_cast<double>(seg.start) +
               3.0 * static_cast<double>(seg.events.size());
  for (const ChurnEvent& e : seg.events) {
    sum += static_cast<double>(e.type) + 5.0 * e.a +
           (e.b == kInvalidNode ? 0.0 : 7.0 * e.b) +
           13.0 * static_cast<double>(e.neighbors.size());
  }
  return sum;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  bench::Harness harness("PERSIST", {3, opt.min_seconds});

  GeneratorConfig gen;
  gen.num_nodes = opt.n;
  gen.target_degree = opt.degree;
  Rng rng(opt.seed);
  const Graph g = generate_network(gen, rng).graph;
  const std::size_t n = g.num_nodes();
  std::cout << "network: n=" << n << " m=" << g.num_edges() << " k=" << opt.k
            << ", " << opt.events << " events\n";

  ChurnTraceConfig tcfg;
  tcfg.num_events = opt.events;
  const ChurnTrace trace = ChurnTrace::generate(g, tcfg, opt.seed + 1);

  // A mid-churn engine: the realistic snapshot subject (dead nodes, drifted
  // heads, populated link store).
  ChurnEngine engine(g, opt.k, Pipeline::kAcLmst);
  for (const ChurnEvent& e : trace.events()) engine.apply(e);

  const std::string scratch =
      (fs::temp_directory_path() / "khop_bench_persist").string();
  fs::remove_all(scratch);
  fs::create_directories(scratch);

  std::string bytes;
  harness.time_kernel("snapshot_encode", "workspace", n, opt.k, [&] {
    bytes = persist::encode_snapshot(engine, opt.events);
    return static_cast<double>(bytes.size());
  });
  std::cout << "snapshot: " << bytes.size() << " bytes ("
            << static_cast<double>(bytes.size()) / static_cast<double>(n)
            << " bytes/node)\n";

  harness.time_kernel("snapshot_decode", "workspace", n, opt.k, [&] {
    persist::SnapshotData snap = persist::decode_snapshot(bytes);
    const ChurnEngine restored = ChurnEngine::restore(std::move(snap.state));
    return engine_digest(restored);
  });

  const std::string wal_file = scratch + "/bench.khwal";
  for (const std::size_t flush_every : {std::size_t{1}, std::size_t{16}}) {
    const std::string variant = "flush" + std::to_string(flush_every);
    harness.time_kernel("wal_append", variant, n, opt.k, [&] {
      persist::WalWriter w =
          persist::WalWriter::create(wal_file, 0, flush_every);
      for (const ChurnEvent& e : trace.events()) w.append(e);
      w.close();
      return segment_digest(persist::read_wal_file(wal_file, 0));
    });
  }
  {
    // harness.speedup() only pairs legacy/workspace variants; compute the
    // batching ratio directly from the rows.
    double flush1 = 0.0, flush16 = 0.0;
    for (const bench::KernelTiming& r : harness.results()) {
      if (r.name != "wal_append") continue;
      (r.variant == "flush1" ? flush1 : flush16) = r.wall_ns_min;
    }
    std::cout << "wal_append batching speedup (flush1 / flush16): x"
              << (flush16 > 0.0 ? flush1 / flush16 : 0.0) << "\n";
  }

  // Recovery subject: snapshot at half the trace + the WAL tail after it.
  const std::string store_dir = scratch + "/store";
  {
    persist::DurabilityOptions dopts;
    dopts.snapshot_every = opt.events / 2;
    dopts.wal_flush_every = 16;
    persist::DurableChurnEngine d = persist::DurableChurnEngine::create(
        g, opt.k, Pipeline::kAcLmst, store_dir, dopts);
    for (const ChurnEvent& e : trace.events()) d.apply(e);
    d.flush_wal();
  }
  harness.time_kernel("recover", "workspace", n, opt.k, [&] {
    persist::RecoveryReport rep;
    persist::DurableChurnEngine d =
        persist::DurableChurnEngine::recover(store_dir, &rep);
    return engine_digest(d.engine()) + static_cast<double>(rep.cursor);
  });

  fs::remove_all(scratch);
  const auto mismatches = harness.checksum_mismatches();
  for (const std::string& m : mismatches) {
    std::cerr << "checksum mismatch: " << m << "\n";
  }
  harness.write_json(opt.out);
  std::cout << "wrote " << opt.out << "\n";
  return mismatches.empty() ? 0 : 1;
}
