// Extension experiment X5 - the motivating application: broadcast with the
// flooding confined to the connected k-hop clustering backbone versus blind
// flooding. Reports forwarding transmissions (the collision/energy proxy the
// paper's introduction argues about) and delivery latency.
#include <iostream>

#include "khop/cds/broadcast.hpp"
#include "khop/exp/stats.hpp"
#include "khop/exp/table.hpp"
#include "khop/net/generator.hpp"

int main() {
  using namespace khop;

  std::cout << "Extension X5 - CDS-confined broadcast vs blind flooding "
               "(N = 150, D = 6, AC-LMST, 30 topologies x 5 sources)\n\n";

  TextTable t({"k", "blind tx", "tree-model tx", "saving %", "ball-model tx",
               "saving %", "CDS rounds", "delivery"});
  for (const Hops k : {1u, 2u, 3u, 4u}) {
    RunningStats blind_tx, tree_tx, ball_tx, cds_rounds;
    std::size_t complete = 0, total = 0;
    for (std::uint64_t trial = 0; trial < 30; ++trial) {
      GeneratorConfig gen;
      gen.num_nodes = 150;
      gen.target_degree = 6.0;
      Rng rng(Rng(98000 + k).spawn(trial));
      const AdHocNetwork net = generate_network(gen, rng);
      const Clustering c = khop_clustering(net.graph, k);
      const Backbone b = build_backbone(net.graph, c, Pipeline::kAcLmst);
      for (int s = 0; s < 5; ++s) {
        const auto src =
            static_cast<NodeId>(rng.uniform_int(net.num_nodes()));
        const BroadcastResult blind = blind_flood(net.graph, src);
        const BroadcastResult tree =
            cds_flood(net.graph, c, b, src, CdsFloodModel::kMemberTrees);
        const BroadcastResult ball =
            cds_flood(net.graph, c, b, src, CdsFloodModel::kBallInterior);
        blind_tx.add(static_cast<double>(blind.transmissions));
        tree_tx.add(static_cast<double>(tree.transmissions));
        ball_tx.add(static_cast<double>(ball.transmissions));
        cds_rounds.add(static_cast<double>(tree.rounds));
        ++total;
        if (tree.complete && ball.complete) ++complete;
      }
    }
    const auto saving = [&](const RunningStats& s) {
      return 100.0 * (1.0 - s.mean() / blind_tx.mean());
    };
    t.add_row({std::to_string(k), fmt(blind_tx.mean(), 1),
               fmt(tree_tx.mean(), 1), fmt(saving(tree_tx), 1),
               fmt(ball_tx.mean(), 1), fmt(saving(ball_tx), 1),
               fmt(cds_rounds.mean(), 1),
               std::to_string(complete) + "/" + std::to_string(total)});
  }
  t.print(std::cout);
  std::cout << "\nreading: the backbone cuts forwarding transmissions at "
               "every k with full delivery. The member-tree forwarder model "
               "keeps the savings high as k grows; the simpler ball-interior "
               "model marks most nodes as relays at large k.\n";
  return 0;
}
