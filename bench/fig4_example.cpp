// Reproduces paper Figure 4: one concrete 100-node example network (D = 6)
// showing the cluster graphs produced by the different gateway-selection
// algorithms. The paper's instance has 7 clusterheads and reports
//   G-MST 23, NC-Mesh 35, NC-LMST 28, AC-LMST 26 gateways (caption k=2,
//   text k=3 - we print both interpretations).
//
// The authors' exact placement is unavailable, so this bench searches seeds
// deterministically for an instance with the same clusterhead count, prints
// the per-algorithm gateway counts on it, and dumps the layout (positions +
// roles) so the figure can be re-plotted with gnuplot.
#include <iostream>

#include "figure_common.hpp"

namespace {

using namespace khop;

void run_instance(Hops k, bool scan_for_seven_heads) {
  GeneratorConfig gen;
  gen.num_nodes = 100;
  gen.target_degree = 6.0;

  // Deterministic seed scan for a 7-clusterhead instance (the paper's count;
  // only k = 3 typically yields 7 heads at N = 100, D = 6, which is why we
  // read the figure's "k is 3" text as authoritative over its k = 2 caption).
  std::uint64_t seed = 2005;
  AdHocNetwork net;
  Clustering clustering;
  for (;; ++seed) {
    Rng rng(seed);
    net = generate_network(gen, rng);
    clustering = khop_clustering(net.graph, k);
    if (!scan_for_seven_heads || clustering.heads.size() == 7) break;
    if (seed > 2005 + 2000) {
      std::cout << "  (no 7-head instance found; using the last one with "
                << clustering.heads.size() << " heads)\n";
      break;
    }
  }

  std::cout << "k = " << k << "  (seed " << seed << ", "
            << clustering.heads.size() << " clusterheads)\n";
  TextTable t({"algorithm", "gateways", "CDS size"});
  for (const Pipeline p :
       {Pipeline::kGmst, Pipeline::kNcMesh, Pipeline::kNcLmst,
        Pipeline::kAcLmst, Pipeline::kAcMesh}) {
    const Backbone b = build_backbone(net.graph, clustering, p);
    t.add_row({std::string(pipeline_name(p)),
               std::to_string(b.gateways.size()),
               std::to_string(b.cds_size())});
  }
  t.print(std::cout);

  // Layout dump for re-plotting: id x y role (AC-LMST roles).
  const Backbone b = build_backbone(net.graph, clustering, Pipeline::kAcLmst);
  const auto roles = b.roles(net.num_nodes());
  std::cout << "# layout: id x y role (0=member 1=gateway 2=clusterhead)\n";
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    std::cout << "# " << v << ' ' << fmt(net.positions[v].x, 2) << ' '
              << fmt(net.positions[v].y, 2) << ' '
              << static_cast<int>(roles[v]) << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "Figure 4 - example of gateway selection using different "
               "algorithms (N = 100, D = 6)\n"
            << "paper instance: 7 heads; G-MST 23 / NC-Mesh 35 / NC-LMST 28 "
               "/ AC-LMST 26 gateways\n\n";
  run_instance(2, false);  // figure caption's k (representative instance)
  run_instance(3, true);   // figure text's k (matches the 7-head count)
  return 0;
}
