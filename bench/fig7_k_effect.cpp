// Reproduces paper Figure 7: the effect of the clustering parameter k with
// the AC-LMST (LMSTGA on adjacent clusterheads) pipeline at D = 6.
//   (a) number of clusterheads vs N, one curve per k in {1,2,3,4}
//   (b) size of the k-hop CDS vs N, one curve per k
//
// Expected shape (paper section 4): larger k => fewer clusterheads and more
// gateways, but a smaller total CDS.
#include <iostream>

#include "figure_common.hpp"

int main() {
  using namespace khop;
  using namespace khop::bench;

  std::cout << "Figure 7 - effect of k, using LMSTGA on adjacent "
               "clusterheads (AC-LMST), D = 6\n\n";

  ThreadPool pool;
  const double degree = 6.0;
  const auto node_counts = paper_node_counts();
  constexpr Hops kMax = 4;

  // rows[n] = {heads per k..., cds per k..., gateways per k...}
  std::vector<std::vector<double>> heads(node_counts.size()),
      cds(node_counts.size()), gateways(node_counts.size());

  for (Hops k = 1; k <= kMax; ++k) {
    for (std::size_t i = 0; i < node_counts.size(); ++i) {
      const std::size_t n = node_counts[i];
      ExperimentConfig cfg;
      cfg.num_nodes = n;
      cfg.avg_degree = degree;
      cfg.k = k;
      cfg.pipeline = Pipeline::kAcLmst;
      const SweepPoint p =
          run_sweep_point(pool, cfg, paper_policy(), 70000 + 100 * k + n);
      heads[i].push_back(p.clusterheads.mean());
      cds[i].push_back(p.cds_size.mean());
      gateways[i].push_back(p.gateways.mean());
    }
  }

  const auto print_series = [&](const std::string& title,
                                const std::vector<std::vector<double>>& data) {
    std::cout << title << '\n';
    TextTable t({"N", "k=1", "k=2", "k=3", "k=4"});
    for (std::size_t i = 0; i < node_counts.size(); ++i) {
      t.add_row({std::to_string(node_counts[i]), fmt(data[i][0]),
                 fmt(data[i][1]), fmt(data[i][2]), fmt(data[i][3])});
    }
    t.print(std::cout);
    std::cout << '\n';
  };

  print_series("(a) Number of clusterheads", heads);
  print_series("(b) Number of nodes in CDS", cds);
  print_series("(supplement) Number of gateways", gateways);
  return 0;
}
