// Extension experiment X8 - hierarchical routing over the backbone: the
// application the paper's introduction motivates clustering with. Packets
// route src -> head -> (virtual links) -> head -> dst using only
// cluster-level state; this bench measures the price (path stretch vs true
// shortest paths) per pipeline and k, on the paper's topology distribution.
#include <iostream>

#include "khop/cds/routing.hpp"
#include "khop/exp/stats.hpp"
#include "khop/exp/table.hpp"
#include "khop/net/generator.hpp"

int main() {
  using namespace khop;

  std::cout << "Extension X8 - backbone routing stretch (N = 100, D = 6, "
               "20 topologies x 50 random pairs)\n\n";

  for (const Hops k : {1u, 2u, 3u}) {
    TextTable t({"pipeline", "mean stretch", "p95-ish max", "mean hops"});
    std::cout << "k = " << k << '\n';
    for (const Pipeline p : kAllPipelines) {
      RunningStats stretch, hops;
      double worst = 0.0;
      for (std::uint64_t trial = 0; trial < 20; ++trial) {
        GeneratorConfig gen;
        gen.num_nodes = 100;
        gen.target_degree = 6.0;
        Rng rng(Rng(96000 + k).spawn(trial));
        const AdHocNetwork net = generate_network(gen, rng);
        const Clustering c = khop_clustering(net.graph, k);
        const Backbone b = build_backbone(net.graph, c, p);
        const BackboneRouter router(net.graph, c, b);
        for (int i = 0; i < 50; ++i) {
          const auto s =
              static_cast<NodeId>(rng.uniform_int(net.num_nodes()));
          const auto d =
              static_cast<NodeId>(rng.uniform_int(net.num_nodes()));
          if (s == d) continue;
          const double st = router.stretch(s, d);
          stretch.add(st);
          worst = std::max(worst, st);
          hops.add(static_cast<double>(router.route(s, d).hops()));
        }
      }
      t.add_row({std::string(pipeline_name(p)), fmt(stretch.mean(), 3),
                 fmt(worst, 2), fmt(hops.mean(), 2)});
    }
    t.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "reading: denser backbones (mesh) route closer to shortest "
               "paths; the sparser LMST/G-MST backbones trade a little "
               "stretch for far fewer gateways. Stretch grows mildly with "
               "k as detours through heads lengthen.\n";
  return 0;
}
