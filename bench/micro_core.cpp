// Micro-benchmarks (X6): scaling of the library's building blocks, via
// google-benchmark. These quantify that the whole pipeline is comfortably
// interactive at paper scale and scales to networks 10x larger.
#include <benchmark/benchmark.h>

#include "khop/cluster/clustering.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/geom/degree_calibration.hpp"
#include "khop/geom/placement.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/graph/spatial_grid.hpp"
#include "khop/net/generator.hpp"
#include "khop/sim/protocols/clustering_protocol.hpp"

namespace {

using namespace khop;

AdHocNetwork make_net(std::size_t n, double degree = 6.0) {
  GeneratorConfig cfg;
  cfg.num_nodes = n;
  cfg.target_degree = degree;
  // Analytic radius: calibration cost would dominate the fixture setup and
  // the micro benches only need consistent topology scaling.
  cfg.radius_mode = RadiusMode::kAnalytic;
  Rng rng(1234 + n);
  return generate_network(cfg, rng);
}

void BM_UnitDiskBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  const auto pts = place_uniform(n, Field{100.0}, rng);
  const double radius = analytic_radius(n, 6.0, Field{100.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_unit_disk_graph(pts, radius));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_UnitDiskBuild)->Arg(100)->Arg(400)->Arg(1600)->Complexity();

void BM_BfsFull(benchmark::State& state) {
  const auto net = make_net(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfs(net.graph, 0));
  }
}
BENCHMARK(BM_BfsFull)->Arg(100)->Arg(400)->Arg(1600);

void BM_KhopClustering(benchmark::State& state) {
  const auto net = make_net(static_cast<std::size_t>(state.range(0)));
  const auto k = static_cast<Hops>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(khop_clustering(net.graph, k));
  }
}
BENCHMARK(BM_KhopClustering)
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 4})
    ->Args({400, 2})
    ->Args({800, 2});

void BM_BackbonePipeline(benchmark::State& state) {
  const auto net = make_net(static_cast<std::size_t>(state.range(0)));
  const auto pipeline = static_cast<Pipeline>(state.range(1));
  const Clustering c = khop_clustering(net.graph, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_backbone(net.graph, c, pipeline));
  }
  state.SetLabel(std::string(pipeline_name(pipeline)));
}
BENCHMARK(BM_BackbonePipeline)
    ->Args({200, static_cast<int>(Pipeline::kNcMesh)})
    ->Args({200, static_cast<int>(Pipeline::kAcMesh)})
    ->Args({200, static_cast<int>(Pipeline::kNcLmst)})
    ->Args({200, static_cast<int>(Pipeline::kAcLmst)})
    ->Args({200, static_cast<int>(Pipeline::kGmst)})
    ->Args({800, static_cast<int>(Pipeline::kAcLmst)});

void BM_DistributedClustering(benchmark::State& state) {
  const auto net = make_net(static_cast<std::size_t>(state.range(0)));
  const auto k = static_cast<Hops>(state.range(1));
  const auto prio = make_priorities(net.graph, PriorityRule::kLowestId);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_distributed_clustering(
        net.graph, k, prio, AffiliationRule::kIdBased));
  }
}
BENCHMARK(BM_DistributedClustering)->Args({100, 2})->Args({200, 2});

void BM_EndToEndTrial(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double radius = analytic_radius(n, 6.0, Field{100.0});
  std::uint64_t trial = 0;
  for (auto _ : state) {
    GeneratorConfig cfg;
    cfg.num_nodes = n;
    cfg.explicit_radius = radius;
    Rng rng(Rng(5).spawn(trial++));
    const AdHocNetwork net = generate_network(cfg, rng);
    const Clustering c = khop_clustering(net.graph, 2);
    benchmark::DoNotOptimize(build_backbone(net.graph, c, Pipeline::kAcLmst));
  }
}
BENCHMARK(BM_EndToEndTrial)->Arg(100)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
