// Reproduces paper Figure 5: size of the k-hop CDS versus number of nodes in
// SPARSE networks (average degree D = 6), one panel per k in {1,2,3,4},
// comparing NC-Mesh / AC-Mesh / NC-LMST / AC-LMST / G-MST.
//
// Expected shape (paper section 4): NC-Mesh largest; AC-Mesh below it (the
// A-NCR gain grows with k and is ~0 at k=1); LMST variants clearly below the
// mesh variants (>10% gateway reduction); AC-LMST lowest of the localized
// schemes and close to the centralized G-MST lower bound.
#include <iostream>

#include "figure_common.hpp"

int main() {
  using namespace khop;
  using namespace khop::bench;

  std::cout << "Figure 5 - comparison of gateway-selection algorithms in "
               "sparse networks (D = 6)\n"
            << "metric: size of k-hop CDS (clusterheads + gateways), mean "
               "over paper stopping rule\n\n";

  ThreadPool pool;
  const double degree = 6.0;
  for (const Hops k : {1u, 2u, 3u, 4u}) {
    std::vector<PairedPoint> points;
    for (const std::size_t n : paper_node_counts()) {
      points.push_back(run_paired_point(pool, n, degree, k,
                                        50000 + 100 * k + n));
    }
    print_panel(std::cout, "(" + std::string(1, static_cast<char>('a' + k - 1)) +
                               ") k = " + std::to_string(k),
                points, "fig5_k" + std::to_string(k));
  }
  return 0;
}
