/// \file harness.hpp
/// Perf-regression bench harness: times named kernels and emits a
/// schema-versioned JSON trajectory (`BENCH_*.json`) that successive PRs
/// report against. Also home of the shared bench artifact plumbing that used
/// to be copy-pasted via figure_common.hpp.
///
/// JSON schema (khop.bench, version 2):
/// {
///   "schema": "khop.bench",
///   "schema_version": 2,
///   "label": "<trajectory label, e.g. PR3>",
///   "kernels": [
///     { "name": "clustering", "variant": "workspace", "n": 2000, "k": 2,
///       "reps": 5, "wall_ns_mean": 1.2e7, "wall_ns_min": 1.1e7,
///       "checksum": 12345.0,
///       "allocs_per_rep": 120, "peak_rss_bytes": 34000000 }
///   ],
///   "speedups": [
///     { "name": "clustering", "n": 2000, "speedup": 3.4 }
///   ]
/// }
/// `checksum` is a variant-independent digest of the kernel's output: equal
/// checksums across variants of one (name, n) row double-check that the
/// timed paths computed the same thing. Version 2 adds the two memory
/// columns: `allocs_per_rep` is the mean heap-allocation count of one timed
/// repetition (global operator-new hook, see alloc_hooks.cpp; steady-state
/// kernels should pin it near 0), and `peak_rss_bytes` the process
/// high-water RSS sampled after the kernel's reps (0 where unsupported).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "khop/common/types.hpp"
#include "khop/exp/table.hpp"

namespace khop::bench {

struct KernelTiming {
  std::string name;     ///< kernel id, e.g. "bounded_bfs"
  std::string variant;  ///< implementation id, e.g. "legacy" / "workspace"
  std::size_t n = 0;    ///< problem size (node count)
  Hops k = 0;
  std::size_t reps = 0;
  double wall_ns_mean = 0.0;
  double wall_ns_min = 0.0;
  double checksum = 0.0;
  std::uint64_t allocs_per_rep = 0;  ///< mean heap allocations per timed rep
  std::uint64_t peak_rss_bytes = 0;  ///< process peak RSS after the reps
};

struct HarnessOptions {
  std::size_t min_reps = 3;    ///< at least this many timed repetitions
  double min_seconds = 0.05;   ///< and at least this much total wall time
};

/// Collects kernel timings and serializes the trajectory.
class Harness {
 public:
  explicit Harness(std::string label, HarnessOptions opts = {});

  /// Times \p fn (which runs one full kernel repetition and returns its
  /// checksum) under the rep policy and records the row. Returns the row.
  const KernelTiming& time_kernel(const std::string& name,
                                  const std::string& variant, std::size_t n,
                                  Hops k, const std::function<double()>& fn);

  const std::vector<KernelTiming>& results() const noexcept {
    return results_;
  }

  /// legacy-mean / workspace-mean for (name, n); 0 if either row is missing.
  double speedup(const std::string& name, std::size_t n) const;

  /// Rows whose checksum disagrees with another variant of the same
  /// (name, n); empty means every variant pair computed identical outputs.
  std::vector<std::string> checksum_mismatches() const;

  std::string to_json() const;

  /// Writes to_json() to \p path. Throws IoError on failure.
  void write_json(const std::string& path) const;

 private:
  std::string label_;
  HarnessOptions opts_;
  std::vector<KernelTiming> results_;
};

/// Writes a table as CSV into $KHOP_CSV_DIR/<name>.csv when that environment
/// variable is set (plot-ready artifacts next to the printed tables).
void maybe_write_csv(const std::string& name, const TextTable& t);

/// Total heap allocations (operator new calls) in this process so far.
/// Counted by the replacement global operator new in alloc_hooks.cpp, which
/// links into every bench binary via the harness library.
std::uint64_t alloc_count() noexcept;

/// Process peak resident set size in bytes (getrusage ru_maxrss); 0 on
/// platforms without it.
std::uint64_t peak_rss_bytes() noexcept;

}  // namespace khop::bench
