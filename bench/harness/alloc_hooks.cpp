/// \file alloc_hooks.cpp
/// Replacement global operator new/delete that count heap allocations, so
/// the bench harness can report allocs_per_rep (khop.bench schema v2).
///
/// The counter is a single relaxed atomic increment per allocation — cheap
/// enough to leave on for every bench binary (the harness library always
/// carries this TU; harness.cpp references alloc_count() so a static-lib
/// link cannot drop it). Steady-state kernels are expected to report ~0:
/// the workspace/arena discipline is exactly what this column audits.
///
/// Only counts, never re-routes: allocation is delegated to malloc/free, so
/// sanitizers that interpose malloc keep working.

#include <atomic>
#include <cstdlib>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace khop::bench {

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  // malloc(0) may return nullptr; operator new must not.
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = align;
  return std::aligned_alloc(align, (size + align - 1) / align * align);
}
}  // namespace

std::uint64_t alloc_count() noexcept {
  return g_alloc_count.load(std::memory_order_relaxed);
}

std::uint64_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace khop::bench

void* operator new(std::size_t size) {
  void* p = khop::bench::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = khop::bench::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return khop::bench::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return khop::bench::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = khop::bench::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = khop::bench::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
