#include "harness.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "khop/common/error.hpp"

namespace khop::bench {

namespace {

double now_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// JSON number formatting: shortest round-trippable doubles.
std::string num(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

}  // namespace

Harness::Harness(std::string label, HarnessOptions opts)
    : label_(std::move(label)), opts_(opts) {}

const KernelTiming& Harness::time_kernel(const std::string& name,
                                         const std::string& variant,
                                         std::size_t n, Hops k,
                                         const std::function<double()>& fn) {
  KernelTiming row;
  row.name = name;
  row.variant = variant;
  row.n = n;
  row.k = k;

  // One untimed warmup rep: faults in the topology, fills scratch/arena
  // capacity, and gives the checksum.
  row.checksum = fn();

  double total_ns = 0.0;
  double min_ns = std::numeric_limits<double>::infinity();
  const double budget_ns = opts_.min_seconds * 1e9;
  const std::uint64_t allocs0 = alloc_count();
  while (row.reps < opts_.min_reps || total_ns < budget_ns) {
    const double t0 = now_ns();
    const double check = fn();
    const double elapsed = now_ns() - t0;
    if (check != row.checksum) {
      throw InvariantViolation("bench kernel " + name + "/" + variant +
                               " is nondeterministic across repetitions");
    }
    total_ns += elapsed;
    min_ns = std::min(min_ns, elapsed);
    ++row.reps;
  }
  row.wall_ns_mean = total_ns / static_cast<double>(row.reps);
  row.wall_ns_min = min_ns;
  row.allocs_per_rep = (alloc_count() - allocs0) / row.reps;
  row.peak_rss_bytes = peak_rss_bytes();
  results_.push_back(row);
  return results_.back();
}

double Harness::speedup(const std::string& name, std::size_t n) const {
  double legacy = 0.0;
  double workspace = 0.0;
  for (const KernelTiming& r : results_) {
    if (r.name != name || r.n != n) continue;
    if (r.variant == "legacy") legacy = r.wall_ns_mean;
    if (r.variant == "workspace") workspace = r.wall_ns_mean;
  }
  if (legacy <= 0.0 || workspace <= 0.0) return 0.0;
  return legacy / workspace;
}

std::vector<std::string> Harness::checksum_mismatches() const {
  std::vector<std::string> bad;
  for (std::size_t i = 0; i < results_.size(); ++i) {
    for (std::size_t j = i + 1; j < results_.size(); ++j) {
      const KernelTiming& a = results_[i];
      const KernelTiming& b = results_[j];
      if (a.name == b.name && a.n == b.n && a.checksum != b.checksum) {
        bad.push_back(a.name + " n=" + std::to_string(a.n) + ": " + a.variant +
                      " vs " + b.variant);
      }
    }
  }
  return bad;
}

std::string Harness::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"khop.bench\",\n";
  os << "  \"schema_version\": 2,\n";
  os << "  \"label\": \"" << label_ << "\",\n";
  os << "  \"kernels\": [\n";
  for (std::size_t i = 0; i < results_.size(); ++i) {
    const KernelTiming& r = results_[i];
    os << "    {\"name\": \"" << r.name << "\", \"variant\": \"" << r.variant
       << "\", \"n\": " << r.n << ", \"k\": " << r.k
       << ", \"reps\": " << r.reps
       << ", \"wall_ns_mean\": " << num(r.wall_ns_mean)
       << ", \"wall_ns_min\": " << num(r.wall_ns_min)
       << ", \"checksum\": " << num(r.checksum)
       << ", \"allocs_per_rep\": " << r.allocs_per_rep
       << ", \"peak_rss_bytes\": " << r.peak_rss_bytes << "}"
       << (i + 1 < results_.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"speedups\": [\n";
  // One speedup row per (name, n) that has both a legacy and a workspace
  // variant, in first-appearance order.
  std::vector<std::pair<std::string, std::size_t>> keys;
  for (const KernelTiming& r : results_) {
    const auto key = std::make_pair(r.name, r.n);
    bool seen = false;
    for (const auto& k2 : keys) seen = seen || k2 == key;
    if (!seen && speedup(r.name, r.n) > 0.0) keys.push_back(key);
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    os << "    {\"name\": \"" << keys[i].first << "\", \"n\": "
       << keys[i].second
       << ", \"speedup\": " << num(speedup(keys[i].first, keys[i].second))
       << "}" << (i + 1 < keys.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

void Harness::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open bench output file: " + path);
  out << to_json();
  if (!out) throw Error("failed writing bench output file: " + path);
}

void maybe_write_csv(const std::string& name, const TextTable& t) {
  const char* dir = std::getenv("KHOP_CSV_DIR");
  if (dir == nullptr) return;
  std::ofstream out(std::string(dir) + "/" + name + ".csv");
  if (out) out << t.to_csv();
}

}  // namespace khop::bench
