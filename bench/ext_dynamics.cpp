// Extension experiment X4 - maintenance under node failures (paper section
// 3.3). For random victims on random topologies we classify the failure,
// apply the paper's local-fix policy, and report: how often each class
// occurs, how local the fix is (affected heads / orphan counts), and whether
// the repaired backbone passes the Theorem-2 validator. A full rebuild
// comparison quantifies what the local policy saves.
#include <iostream>

#include "khop/dynamic/events.hpp"
#include "khop/exp/stats.hpp"
#include "khop/exp/table.hpp"
#include "khop/net/generator.hpp"

int main() {
  using namespace khop;

  std::cout << "Extension X4 - failure maintenance (N = 100, D = 6, k = 2, "
               "AC-LMST, 200 failure events)\n\n";

  struct ClassAgg {
    std::size_t events = 0;
    std::size_t valid = 0;
    RunningStats affected_heads;
    RunningStats orphans;
    RunningStats new_heads;
    RunningStats domination_violations;
  };
  ClassAgg agg[3];
  std::size_t cut_vertices = 0;

  const Hops k = 2;
  std::size_t events = 0;
  for (std::uint64_t trial = 0; events < 200; ++trial) {
    GeneratorConfig gen;
    gen.num_nodes = 100;
    gen.target_degree = 6.0;
    Rng rng(Rng(97000).spawn(trial));
    const AdHocNetwork net = generate_network(gen, rng);
    const Clustering c = khop_clustering(net.graph, k);
    const Backbone b = build_backbone(net.graph, c, Pipeline::kAcLmst);

    // Five victims per topology.
    for (int i = 0; i < 5 && events < 200; ++i) {
      const auto victim =
          static_cast<NodeId>(rng.uniform_int(net.num_nodes()));
      const auto rep = handle_node_failure(net.graph, c, b,
                                           Pipeline::kAcLmst, victim);
      if (!rep.remainder_connected) {
        ++cut_vertices;
        continue;
      }
      ++events;
      auto& a = agg[static_cast<int>(rep.failure_class)];
      ++a.events;
      if (rep.validation_error.empty()) ++a.valid;
      a.affected_heads.add(static_cast<double>(rep.affected_heads));
      a.orphans.add(static_cast<double>(rep.orphaned_members));
      a.new_heads.add(static_cast<double>(rep.new_heads));
      a.domination_violations.add(
          static_cast<double>(rep.domination_violations));
    }
  }

  TextTable t({"failure class", "events", "valid backbone", "affected heads",
               "orphans", "new heads", "domination drift"});
  const char* names[3] = {"plain member", "gateway", "clusterhead"};
  for (int cls = 0; cls < 3; ++cls) {
    const auto& a = agg[cls];
    t.add_row({names[cls], std::to_string(a.events),
               std::to_string(a.valid) + "/" + std::to_string(a.events),
               fmt(a.affected_heads.mean(), 2), fmt(a.orphans.mean(), 2),
               fmt(a.new_heads.mean(), 2),
               fmt(a.domination_violations.mean(), 2)});
  }
  t.print(std::cout);
  std::cout << "\n(cut-vertex victims skipped: " << cut_vertices
            << "; the paper's model assumes a connected remainder)\n"
            << "reading: member failures touch nothing; gateway failures "
               "re-run phase 2 around a handful of heads; head failures "
               "re-elect only the orphaned cluster.\n\n";

  // Switch-on events (section 3.3's other dynamic case).
  std::cout << "switch-on events (100 joins, anchors = 2 random nodes)\n";
  RunningStats member_joins, head_joins, phase2_reruns;
  std::size_t joins_valid = 0;
  const std::size_t join_events = 100;
  {
    std::size_t joined = 0;
    for (std::uint64_t trial = 0; joined < join_events; ++trial) {
      GeneratorConfig gen;
      gen.num_nodes = 100;
      gen.target_degree = 6.0;
      Rng rng(Rng(97500).spawn(trial));
      const AdHocNetwork net = generate_network(gen, rng);
      const Clustering c = khop_clustering(net.graph, k);
      const Backbone b = build_backbone(net.graph, c, Pipeline::kAcLmst);
      for (int i = 0; i < 4 && joined < join_events; ++i) {
        std::vector<NodeId> anchors{
            static_cast<NodeId>(rng.uniform_int(net.num_nodes())),
            static_cast<NodeId>(rng.uniform_int(net.num_nodes()))};
        if (anchors[0] == anchors[1]) anchors.pop_back();
        const auto rep = handle_node_join(net.graph, c, b,
                                          Pipeline::kAcLmst, anchors);
        ++joined;
        if (rep.validation_error.empty()) ++joins_valid;
        member_joins.add(
            rep.outcome == JoinOutcome::kJoinedExistingCluster ? 1.0 : 0.0);
        head_joins.add(
            rep.outcome == JoinOutcome::kBecameClusterhead ? 1.0 : 0.0);
        phase2_reruns.add(rep.adjacency_changed ? 1.0 : 0.0);
      }
    }
  }
  TextTable jt({"joins", "valid", "member %", "new-head %",
                "phase-2 re-runs %"});
  jt.add_row({std::to_string(join_events),
              std::to_string(joins_valid) + "/" + std::to_string(join_events),
              fmt(100.0 * member_joins.mean(), 1),
              fmt(100.0 * head_joins.mean(), 1),
              fmt(100.0 * phase2_reruns.mean(), 1)});
  jt.print(std::cout);
  std::cout << "\nreading: nearly all switch-ons are absorbed as members; "
               "phase 2 re-runs only when the newcomer bridges clusters "
               "that were not adjacent before.\n";
  return 0;
}
