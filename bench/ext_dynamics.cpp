/// \file ext_dynamics.cpp
/// Churn benchmark (PR 6): continuous maintenance under fault injection.
///
/// Emits the schema-versioned khop.bench trajectory (`BENCH_PR6.json` by
/// default) with three kernel groups:
///
///  * The four required trajectory kernels (bounded_bfs, clustering,
///    backbone, engine_flood) at the churn network's realized size, so the
///    file stands alone under tools/validate_bench_json.py.
///  * `churn_event`: the same mixed event trace replayed `legacy` (the naive
///    full-recompute maintainer plus a from-scratch backbone rebuild after
///    every event — what you pay without incremental repair) vs `workspace`
///    (ChurnEngine's scoped incremental repair). The checksum digests the
///    final topology, affiliation, and backbone, so it is equal across
///    variants iff the incremental engine ends bit-exact where the full
///    recompute does.
///  * `churn_engine`: the acceptance-scale run — >= 10^4 mixed events on an
///    n >= 10^4 network through ChurnEngine alone, zero full rebuilds,
///    periodic bit-exact audits enabled. The checksum digests the final
///    engine state.
///
/// Usage:
///   bench_ext_dynamics [--out FILE] [--n N] [--events E]
///                      [--engine-n N] [--engine-events E] [--audit-every A]
///                      [--k K] [--degree D] [--min-seconds S] [--seed S]
///
/// `--engine-events 0` skips the acceptance-scale kernel (CI re-emits only
/// the comparison point and diffs it against the committed trajectory).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "khop/dynamic/churn_engine.hpp"
#include "khop/dynamic/churn_reference.hpp"
#include "khop/dynamic/churn_trace.hpp"
#include "khop/net/generator.hpp"
#include "khop/runtime/workspace.hpp"
#include "khop/sim/protocols/neighborhood.hpp"

namespace {

using namespace khop;

struct Options {
  std::string out = "BENCH_PR6.json";
  std::size_t n = 1000;            ///< churn_event comparison network
  std::size_t events = 150;        ///< events per comparison replay
  std::size_t engine_n = 10000;    ///< acceptance-scale network
  std::size_t engine_events = 12000;
  std::size_t audit_every = 4000;  ///< acceptance-run audit cadence
  Hops k = 2;
  double degree = 8.0;
  double min_seconds = 0.05;
  std::uint64_t seed = 20260808;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      opt.out = need_value("--out");
    } else if (arg == "--n") {
      opt.n = std::stoull(need_value("--n"));
    } else if (arg == "--events") {
      opt.events = std::stoull(need_value("--events"));
    } else if (arg == "--engine-n") {
      opt.engine_n = std::stoull(need_value("--engine-n"));
    } else if (arg == "--engine-events") {
      opt.engine_events = std::stoull(need_value("--engine-events"));
    } else if (arg == "--audit-every") {
      opt.audit_every = std::stoull(need_value("--audit-every"));
    } else if (arg == "--k") {
      opt.k = static_cast<Hops>(std::stoul(need_value("--k")));
    } else if (arg == "--degree") {
      opt.degree = std::stod(need_value("--degree"));
    } else if (arg == "--min-seconds") {
      opt.min_seconds = std::stod(need_value("--min-seconds"));
    } else if (arg == "--seed") {
      opt.seed = std::stoull(need_value("--seed"));
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

Graph make_network(const Options& opt, std::size_t n) {
  GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = opt.degree;
  Rng rng(opt.seed + n);
  return generate_network(gen, rng).graph;
}

ChurnTrace make_trace(const Graph& g0, std::size_t events,
                      std::uint64_t seed) {
  ChurnTraceConfig cfg;
  cfg.num_events = events;
  cfg.burst_at = events / 4;
  cfg.burst_radius = 1;
  cfg.partition_at = events / 2;
  cfg.partition_radius = 2;
  cfg.rejoin_after = std::max<std::size_t>(10, events / 20);
  return ChurnTrace::generate(g0, cfg, seed);
}

/// Order-independent digest of topology + affiliation + backbone. All terms
/// are integer-valued and well inside double precision, so the sums are
/// exact: equal digests across variants mean bit-identical final state.
double state_digest(const DynamicGraph& g, const std::vector<NodeId>& head_of,
                    const std::vector<Hops>& dist, const Backbone& b) {
  double sum = static_cast<double>(g.num_alive()) +
               3.0 * static_cast<double>(g.num_edges());
  for (NodeId v = 0; v < g.capacity(); ++v) {
    if (!g.alive(v)) continue;
    sum += v + 31.0 * head_of[v] + 7.0 * dist[v];
  }
  for (NodeId h : b.heads) sum += 11.0 * h;
  for (NodeId gw : b.gateways) sum += 13.0 * gw;
  for (const auto& [u, v] : b.virtual_links) sum += 17.0 * u + 19.0 * v;
  return sum;
}

/// The engine's backbone with sorted rows (the incremental maintenance does
/// not keep vector order; the digest compares sets either way, sorting just
/// mirrors what the audits compare).
Backbone sorted_backbone(const ChurnEngine& engine) {
  Backbone b = engine.backbone();
  std::sort(b.heads.begin(), b.heads.end());
  std::sort(b.gateways.begin(), b.gateways.end());
  std::sort(b.virtual_links.begin(), b.virtual_links.end());
  return b;
}

/// The four kernels every khop.bench trajectory must carry, at the churn
/// network's size (single variant each; the cross-variant story of this
/// file is churn_event below).
void bench_required_kernels(bench::Harness& h, const Graph& g, Hops k) {
  const std::size_t n = g.num_nodes();
  Workspace ws;
  h.time_kernel("bounded_bfs", "workspace", n, k, [&] {
    double sum = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ws.bfs.run(g, v, k);
      const Hops d = ws.bfs.dist((v + n / 2) % n);
      sum += d == kUnreachable ? -1.0 : d;
    }
    return sum;
  });
  const auto priorities = make_priorities(g, PriorityRule::kLowestId);
  h.time_kernel("clustering", "workspace", n, k, [&] {
    const Clustering c =
        khop_clustering(g, k, priorities, AffiliationRule::kIdBased, ws);
    double sum = static_cast<double>(c.election_rounds);
    for (NodeId hd : c.heads) sum += hd;
    for (NodeId v = 0; v < c.head_of.size(); ++v) sum += c.head_of[v];
    return sum;
  });
  const Clustering c =
      khop_clustering(g, k, priorities, AffiliationRule::kIdBased, ws);
  h.time_kernel("backbone", "workspace", n, k, [&] {
    const Backbone b = build_backbone(g, c, Pipeline::kAcLmst, ws);
    double sum = static_cast<double>(b.cds_size());
    for (NodeId gw : b.gateways) sum += gw;
    return sum;
  });
  h.time_kernel("engine_flood", "workspace", n, k, [&] {
    SyncEngine engine(g, [&](NodeId) {
      return std::make_unique<NeighborhoodDiscoveryAgent>(k);
    });
    engine.run(2 * k + 2);
    double sum = static_cast<double>(engine.stats().receptions +
                                     engine.stats().rounds);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& agent =
          dynamic_cast<const NeighborhoodDiscoveryAgent&>(engine.agent(v));
      agent.known().for_each([&](NodeId origin, const KnownRecord& rec) {
        sum += origin + 31.0 * rec.dist + 7.0 * rec.parent;
      });
    }
    return sum;
  });
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  bench::Harness harness("PR6", {3, opt.min_seconds});
  const Pipeline pipeline = Pipeline::kAcLmst;

  // --- Comparison point: full recompute vs incremental over one trace. ---
  const Graph g0 = make_network(opt, opt.n);
  const std::size_t n = g0.num_nodes();  // LCC fallback may shrink it
  std::cout << "churn comparison network: n=" << n << " (m=" << g0.num_edges()
            << "), " << opt.events << " events/replay\n";
  bench_required_kernels(harness, g0, opt.k);

  const ChurnTrace trace = make_trace(g0, opt.events, opt.seed + 1);
  harness.time_kernel("churn_event", "legacy", n, opt.k, [&] {
    ReferenceChurnMaintainer ref(g0, opt.k, pipeline);
    Backbone b;
    for (const ChurnEvent& e : trace.events()) {
      ref.apply(e);
      b = ref.rebuild_backbone();  // what per-event full rebuild costs
    }
    return state_digest(ref.graph(), ref.head_of(), ref.dist_to_head(), b);
  });
  harness.time_kernel("churn_event", "workspace", n, opt.k, [&] {
    ChurnEngine engine(g0, opt.k, pipeline);
    for (const ChurnEvent& e : trace.events()) engine.apply(e);
    return state_digest(engine.graph(), engine.clustering().head_of,
                        engine.clustering().dist_to_head,
                        sorted_backbone(engine));
  });
  std::cout << "churn_event speedup (full rebuild / incremental): x"
            << fmt(harness.speedup("churn_event", n), 2) << "\n";

  // --- Acceptance-scale run: incremental engine alone. ---
  if (opt.engine_events > 0) {
    const Graph big = make_network(opt, opt.engine_n);
    const std::size_t bn = big.num_nodes();
    std::cout << "engine network: n=" << bn << " (m=" << big.num_edges()
              << "), " << opt.engine_events << " events, audit every "
              << opt.audit_every << "\n";
    const ChurnTrace big_trace =
        make_trace(big, opt.engine_events, opt.seed + 2);
    ChurnStats last_stats;
    const auto& row = harness.time_kernel(
        "churn_engine", "incremental", bn, opt.k, [&] {
          ChurnEngineOptions eopts;
          eopts.audit_every = opt.audit_every;
          ChurnEngine engine(big, opt.k, pipeline, eopts);
          engine.run(big_trace);  // audits periodically, throws on failure
          last_stats = engine.stats();
          return state_digest(engine.graph(), engine.clustering().head_of,
                              engine.clustering().dist_to_head,
                              sorted_backbone(engine));
        });
    const double events_per_sec =
        1e9 * static_cast<double>(last_stats.events) / row.wall_ns_min;
    const double locality =
        static_cast<double>(last_stats.touched_nodes) /
        (static_cast<double>(last_stats.events) * static_cast<double>(bn));
    const double reaffil =
        last_stats.orphans == 0
            ? 0.0
            : static_cast<double>(last_stats.reaffiliations) /
                  static_cast<double>(last_stats.orphans);
    std::cout << "  events/sec (incl. audits): " << fmt(events_per_sec, 0)
              << "  repair locality (touched/n per event): "
              << fmt(locality, 5) << "\n  re-affiliation ratio: "
              << fmt(reaffil, 3) << "  partitions: " << last_stats.partitions
              << "  merges: " << last_stats.merges
              << "  audits: " << last_stats.audits
              << "  full rebuilds: " << last_stats.full_rebuilds << "\n";
  }

  const auto mismatches = harness.checksum_mismatches();
  for (const std::string& m : mismatches) {
    std::cerr << "CHECKSUM MISMATCH: " << m << "\n";
  }
  if (!mismatches.empty()) return 1;

  harness.write_json(opt.out);
  std::cout << "wrote " << opt.out << "\n";
  return 0;
}
