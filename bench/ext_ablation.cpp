// Extension experiments X2/X3 - ablations over the design choices the paper
// lists but does not evaluate:
//   X2: member-affiliation rule (ID / distance / size-balanced) - effect on
//       cluster size balance and on the downstream CDS.
//   X3: election priority (lowest-ID / highest-degree / random timer) -
//       effect on clusterhead count and CDS size.
// All points use AC-LMST at N = 100, D = 6 over 50 shared topologies.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "khop/cluster/core_variant.hpp"
#include "khop/cluster/kcluster.hpp"
#include "khop/nbr/hierarchy.hpp"
#include "khop/core/pipeline.hpp"
#include "khop/exp/stats.hpp"
#include "khop/exp/table.hpp"
#include "khop/net/generator.hpp"

namespace {

using namespace khop;

constexpr std::size_t kTrials = 50;

AdHocNetwork make_net(std::uint64_t trial) {
  GeneratorConfig gen;
  gen.num_nodes = 100;
  gen.target_degree = 6.0;
  Rng rng(Rng(95000).spawn(trial));
  return generate_network(gen, rng);
}

double cluster_size_stddev(const Clustering& c) {
  RunningStats s;
  for (std::uint32_t i = 0; i < c.num_clusters(); ++i) {
    s.add(static_cast<double>(c.cluster_members(i).size()));
  }
  return s.stddev();
}

void affiliation_ablation(Hops k) {
  std::cout << "X2 - affiliation rule ablation (k = " << k << ")\n";
  TextTable t({"rule", "heads", "size stddev", "max size", "CDS size"});
  for (const auto& [rule, name] :
       {std::pair{AffiliationRule::kIdBased, "ID-based"},
        std::pair{AffiliationRule::kDistanceBased, "distance"},
        std::pair{AffiliationRule::kSizeBased, "size-balanced"}}) {
    RunningStats heads, stddev, maxsize, cds;
    for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
      const AdHocNetwork net = make_net(trial);
      const Clustering c = khop_clustering(net.graph, k, rule);
      const Backbone b = build_backbone(net.graph, c, Pipeline::kAcLmst);
      heads.add(static_cast<double>(c.heads.size()));
      stddev.add(cluster_size_stddev(c));
      std::size_t biggest = 0;
      for (std::uint32_t i = 0; i < c.num_clusters(); ++i) {
        biggest = std::max(biggest, c.cluster_members(i).size());
      }
      maxsize.add(static_cast<double>(biggest));
      cds.add(static_cast<double>(b.cds_size()));
    }
    t.add_row({name, fmt(heads.mean(), 1), fmt(stddev.mean(), 2),
               fmt(maxsize.mean(), 1), fmt(cds.mean(), 1)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

void priority_ablation(Hops k) {
  std::cout << "X3 - election priority ablation (k = " << k << ")\n";
  TextTable t({"priority", "heads", "CDS size", "election rounds"});
  for (const auto& [rule, name] :
       {std::pair{PriorityRule::kLowestId, "lowest-ID"},
        std::pair{PriorityRule::kHighestDegree, "highest-degree"},
        std::pair{PriorityRule::kRandomTimer, "random-timer"}}) {
    RunningStats heads, cds, rounds;
    for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
      const AdHocNetwork net = make_net(trial);
      Rng prio_rng(Rng(777).spawn(trial));
      const auto prio =
          make_priorities(net.graph, rule, nullptr,
                          rule == PriorityRule::kRandomTimer ? &prio_rng
                                                             : nullptr);
      const Clustering c = khop_clustering(net.graph, k, prio);
      const Backbone b = build_backbone(net.graph, c, Pipeline::kAcLmst);
      heads.add(static_cast<double>(c.heads.size()));
      cds.add(static_cast<double>(b.cds_size()));
      rounds.add(static_cast<double>(c.election_rounds));
    }
    t.add_row({name, fmt(heads.mean(), 1), fmt(cds.mean(), 1),
               fmt(rounds.mean(), 1)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

void keep_rule_ablation(Hops k) {
  std::cout << "X2b - LMST keep-rule ablation (k = " << k
            << "): union (paper) vs intersection (G0 cap G1)\n";
  TextTable t({"selection", "keep rule", "kept links", "gateways", "CDS"});
  for (const auto& [rule, rule_name] :
       {std::pair{NeighborRule::kAdjacent, "A-NCR"},
        std::pair{NeighborRule::kAllWithin2k1, "NC"}}) {
    for (const auto& [keep, keep_name] :
         {std::pair{LmstKeepRule::kEitherEndpoint, "either (union)"},
          std::pair{LmstKeepRule::kBothEndpoints, "both (intersect)"}}) {
      RunningStats links, gws, cds;
      for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
        const AdHocNetwork net = make_net(trial);
        const Clustering c = khop_clustering(net.graph, k);
        BackboneSpec spec;
        spec.neighbor_rule = rule;
        spec.gateway = GatewayAlgorithm::kLmst;
        spec.lmst_keep = keep;
        const Backbone b = build_backbone(net.graph, c, spec);
        links.add(static_cast<double>(b.virtual_links.size()));
        gws.add(static_cast<double>(b.gateways.size()));
        cds.add(static_cast<double>(b.cds_size()));
      }
      t.add_row({rule_name, keep_name, fmt(links.mean(), 1),
                 fmt(gws.mean(), 1), fmt(cds.mean(), 1)});
    }
  }
  t.print(std::cout);
  std::cout << '\n';
}

void wulou_comparison() {
  std::cout << "X2c - Wu-Lou 2.5-hop coverage vs NC vs A-NCR at k = 1 "
               "(the special case A-NCR generalizes)\n";
  TextTable t({"selection", "gateway", "selected pairs", "gateways", "CDS"});
  struct Combo {
    NeighborRule rule;
    GatewayAlgorithm gw;
    const char* rule_name;
    const char* gw_name;
  };
  for (const Combo combo :
       {Combo{NeighborRule::kAllWithin2k1, GatewayAlgorithm::kMesh, "NC",
              "Mesh"},
        Combo{NeighborRule::kWuLou25, GatewayAlgorithm::kMesh, "Wu-Lou 2.5",
              "Mesh"},
        Combo{NeighborRule::kAdjacent, GatewayAlgorithm::kMesh, "A-NCR",
              "Mesh"},
        Combo{NeighborRule::kWuLou25, GatewayAlgorithm::kLmst, "Wu-Lou 2.5",
              "LMST"},
        Combo{NeighborRule::kAdjacent, GatewayAlgorithm::kLmst, "A-NCR",
              "LMST"}}) {
    RunningStats pairs, gws, cds;
    for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
      const AdHocNetwork net = make_net(trial);
      const Clustering c = khop_clustering(net.graph, 1);
      BackboneSpec spec;
      spec.neighbor_rule = combo.rule;
      spec.gateway = combo.gw;
      const Backbone b = build_backbone(net.graph, c, spec);
      const auto sel = select_neighbors(net.graph, c, combo.rule);
      pairs.add(static_cast<double>(sel.head_pairs.size()));
      gws.add(static_cast<double>(b.gateways.size()));
      cds.add(static_cast<double>(b.cds_size()));
    }
    t.add_row({combo.rule_name, combo.gw_name, fmt(pairs.mean(), 1),
               fmt(gws.mean(), 1), fmt(cds.mean(), 1)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

void core_vs_cluster(Hops k) {
  std::cout << "X3b - the three k-hop clustering definitions (k = " << k
            << ")\n";
  TextTable t({"variant", "clusters", "overlapping?", "k-hop IS heads?"});
  RunningStats cluster_heads, core_heads, kcluster_count;
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    const AdHocNetwork net = make_net(trial);
    cluster_heads.add(
        static_cast<double>(khop_clustering(net.graph, k).heads.size()));
    core_heads.add(
        static_cast<double>(khop_core(net.graph, k).heads.size()));
    kcluster_count.add(static_cast<double>(
        krishna_kclusters(net.graph, k).clusters.size()));
  }
  t.add_row({"cluster (paper)", fmt(cluster_heads.mean(), 1), "no", "yes"});
  t.add_row({"core", fmt(core_heads.mean(), 1), "no", "no"});
  t.add_row({"k-cluster (Krishna)", fmt(kcluster_count.mean(), 1), "yes",
             "headless"});
  t.print(std::cout);
  std::cout << '\n';
}

void hierarchy_depth() {
  std::cout << "X9 - recursive high-level clustering (related work, "
               "section 2): heads per level\n";
  TextTable t({"k", "level-0 heads", "level-1", "level-2", "levels to 1"});
  for (const Hops k : {1u, 2u}) {
    RunningStats l0, l1, l2, depth;
    for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
      const AdHocNetwork net = make_net(trial);
      const ClusterHierarchy h = build_hierarchy(net.graph, k, 8);
      l0.add(static_cast<double>(h.levels[0].clustering.heads.size()));
      l1.add(h.depth() > 1 ? static_cast<double>(
                                 h.levels[1].clustering.heads.size())
                           : 1.0);
      l2.add(h.depth() > 2 ? static_cast<double>(
                                 h.levels[2].clustering.heads.size())
                           : 1.0);
      depth.add(static_cast<double>(h.depth()));
    }
    t.add_row({std::to_string(k), fmt(l0.mean(), 1), fmt(l1.mean(), 1),
               fmt(l2.mean(), 1), fmt(depth.mean(), 1)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "Extension ablations (N = 100, D = 6, AC-LMST, "
            << kTrials << " shared topologies)\n\n";
  for (const Hops k : {1u, 2u}) affiliation_ablation(k);
  for (const Hops k : {1u, 2u}) priority_ablation(k);
  for (const Hops k : {2u, 3u}) keep_rule_ablation(k);
  wulou_comparison();
  core_vs_cluster(2);
  hierarchy_depth();
  return 0;
}
