// Reproduces paper Figure 6: size of the k-hop CDS versus number of nodes in
// DENSE networks (average degree D = 10), one panel per k in {1,2,3,4}.
//
// Expected shape (paper section 4): same ordering as Figure 5 but with
// smaller CDS sizes overall (fewer clusters and shorter detours), and an
// even smaller AC-LMST vs NC-LMST gap.
#include <iostream>

#include "figure_common.hpp"

int main() {
  using namespace khop;
  using namespace khop::bench;

  std::cout << "Figure 6 - comparison of gateway-selection algorithms in "
               "dense networks (D = 10)\n"
            << "metric: size of k-hop CDS (clusterheads + gateways), mean "
               "over paper stopping rule\n\n";

  ThreadPool pool;
  const double degree = 10.0;
  for (const Hops k : {1u, 2u, 3u, 4u}) {
    std::vector<PairedPoint> points;
    for (const std::size_t n : paper_node_counts()) {
      points.push_back(run_paired_point(pool, n, degree, k,
                                        60000 + 100 * k + n));
    }
    print_panel(std::cout, "(" + std::string(1, static_cast<char>('a' + k - 1)) +
                               ") k = " + std::to_string(k),
                points, "fig6_k" + std::to_string(k));
  }
  return 0;
}
