/// \file perf_regression.cpp
/// The perf-regression bench: times the pipeline kernels (bounded BFS,
/// clustering, backbone build per paper pipeline, engine flood) at several
/// node counts, checks that the optimized paths compute bit-identical
/// results to the preserved legacy implementations (via output checksums),
/// and emits the schema-versioned trajectory JSON (`BENCH_PR5.json` by
/// default).
///
/// Backbone kernels (PR 4): every paper pipeline is timed as `legacy` (the
/// preserved reference two-pass construction: per-head all-heads probes +
/// unbounded per-source BFS link build) vs `workspace` (fused bounded
/// sweeps); the AC-LMST trajectory kernel (`backbone`) additionally gets a
/// `parallel` variant running the same sweeps across a hardware ThreadPool.
/// Matching checksums across variants double-check bit-exactness.
///
/// Engine kernels (PR 5): `engine_flood` is timed as `legacy` (the preserved
/// pre-PR5 engine: one flat O(M log M) sort over all in-flight messages per
/// round + std::map discovery agent, sim/reference.hpp), `workspace` (the
/// receiver-batched engine + flat KnownTable agent) and `parallel` (the same
/// over the hardware ThreadPool round executor). The checksum digests every
/// node's discovered (origin, dist, parent) set, so a single reordered or
/// lost delivery shows up as cross-variant checksum drift.
///
/// Usage:
///   bench_perf_regression [--out FILE] [--sizes n1,n2,...] [--k K]
///                         [--degree D] [--min-seconds S] [--seed S]
///
/// The CI smoke job runs it at tiny sizes; the committed trajectory uses the
/// defaults (n in {500, 2000, 8000}).
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "khop/cluster/reference.hpp"
#include "khop/exp/experiment.hpp"
#include "khop/gateway/reference.hpp"
#include "khop/graph/bfs_reference.hpp"
#include "khop/net/generator.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/runtime/workspace.hpp"
#include "khop/sim/protocols/neighborhood.hpp"
#include "khop/sim/reference.hpp"

namespace {

using namespace khop;

struct Options {
  std::string out = "BENCH_PR5.json";
  std::vector<std::size_t> sizes = {500, 2000, 8000};
  Hops k = 2;
  double degree = 8.0;
  double min_seconds = 0.05;
  std::uint64_t seed = 20260729;
};

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> sizes;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    sizes.push_back(static_cast<std::size_t>(std::stoull(item)));
  }
  return sizes;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      opt.out = need_value("--out");
    } else if (arg == "--sizes") {
      opt.sizes = parse_sizes(need_value("--sizes"));
    } else if (arg == "--k") {
      opt.k = static_cast<Hops>(std::stoul(need_value("--k")));
    } else if (arg == "--degree") {
      opt.degree = std::stod(need_value("--degree"));
    } else if (arg == "--min-seconds") {
      opt.min_seconds = std::stod(need_value("--min-seconds"));
    } else if (arg == "--seed") {
      opt.seed = std::stoull(need_value("--seed"));
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

/// Variant-independent digest of a BFS result: probes one fixed node per
/// source so legacy (array) and workspace (query) variants pay the same
/// checksum cost.
double probe(Hops d) { return d == kUnreachable ? -1.0 : d; }

/// The five pipelines as bench kernels. AC-LMST keeps the plain `backbone`
/// name so the trajectory rows stay comparable with BENCH_PR3.json.
struct PipelineKernel {
  Pipeline pipeline;
  const char* name;
};

constexpr PipelineKernel kPipelineKernels[] = {
    {Pipeline::kAcLmst, "backbone"},
    {Pipeline::kNcMesh, "backbone_nc_mesh"},
    {Pipeline::kAcMesh, "backbone_ac_mesh"},
    {Pipeline::kNcLmst, "backbone_nc_lmst"},
    {Pipeline::kGmst, "backbone_gmst"},
};

/// Returns the realized node count benched (rows are keyed by it), or 0 if
/// this point was skipped.
std::size_t bench_point(bench::Harness& h, const Options& opt, std::size_t n,
                        ThreadPool& pool,
                        const std::vector<std::size_t>& already_benched) {
  // Calibrated connected topology, identical for every kernel at this n.
  ExperimentConfig cal;
  cal.num_nodes = n;
  cal.avg_degree = opt.degree;
  const double radius = resolve_radius(cal, opt.seed);

  GeneratorConfig gen;
  gen.num_nodes = n;
  gen.explicit_radius = radius;
  Rng rng(opt.seed + n);
  const AdHocNetwork net = generate_network(gen, rng);
  const Graph& g = net.graph;
  // The generator may fall back to the largest connected component, so the
  // realized node count can be below the requested n; all indexing (and the
  // reported row size) must use the realized count. Two requested sizes that
  // realize identically would collide on the (name, n) row key - and the
  // graphs would still differ (the topology rng is seeded by the requested
  // size) - so duplicates are skipped rather than reported as mismatches.
  n = g.num_nodes();
  for (std::size_t prior : already_benched) {
    if (prior == n) {
      std::cout << "n=" << n << " already benched, skipping duplicate\n";
      return 0;
    }
  }
  const Hops k = opt.k;
  const auto priorities = make_priorities(g, PriorityRule::kLowestId);
  Workspace ws;

  std::cout << "n=" << n << " (m=" << g.num_edges() << ")..." << std::flush;

  // Kernel 1: bounded BFS from every source.
  h.time_kernel("bounded_bfs", "legacy", n, k, [&] {
    double sum = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const BfsTree t = reference::bfs_bounded(g, v, k);
      sum += probe(t.dist[(v + n / 2) % n]);
    }
    return sum;
  });
  h.time_kernel("bounded_bfs", "workspace", n, k, [&] {
    double sum = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ws.bfs.run(g, v, k);
      sum += probe(ws.bfs.dist((v + n / 2) % n));
    }
    return sum;
  });

  // Kernel 2: the paper's k-hop clustering election.
  const auto clustering_checksum = [](const Clustering& c) {
    double sum = static_cast<double>(c.election_rounds);
    for (NodeId hd : c.heads) sum += hd;
    for (NodeId v = 0; v < c.head_of.size(); ++v) sum += c.head_of[v];
    return sum;
  };
  h.time_kernel("clustering", "legacy", n, k, [&] {
    return clustering_checksum(
        reference::khop_clustering(g, k, priorities, AffiliationRule::kIdBased));
  });
  h.time_kernel("clustering", "workspace", n, k, [&] {
    return clustering_checksum(
        khop_clustering(g, k, priorities, AffiliationRule::kIdBased, ws));
  });

  // Kernel 3: phase-2 backbone build over a fixed clustering, one kernel
  // per paper pipeline, legacy (reference two-pass) vs workspace (fused
  // bounded sweeps) vs parallel (AC-LMST only).
  const Clustering c =
      khop_clustering(g, k, priorities, AffiliationRule::kIdBased, ws);
  const auto backbone_checksum = [](const Backbone& b) {
    double sum = static_cast<double>(b.cds_size());
    for (NodeId gw : b.gateways) sum += gw;
    return sum;
  };
  for (const PipelineKernel& pk : kPipelineKernels) {
    h.time_kernel(pk.name, "legacy", n, k, [&] {
      return backbone_checksum(reference::build_backbone(g, c, pk.pipeline));
    });
    h.time_kernel(pk.name, "workspace", n, k, [&] {
      return backbone_checksum(build_backbone(g, c, pk.pipeline, ws));
    });
    if (pk.pipeline == Pipeline::kAcLmst) {
      h.time_kernel(pk.name, "parallel", n, k, [&] {
        return backbone_checksum(build_backbone(g, c, pk.pipeline, pool));
      });
    }
  }

  // Kernel 4: engine flood - k-hop neighborhood discovery by bounded
  // flooding, legacy (preserved flat-sort engine + std::map agent) vs
  // workspace (receiver-batched engine + flat KnownTable agent) vs parallel
  // (the ThreadPool round executor). The digest folds in every node's
  // discovered (origin, dist, parent) records, all integer-valued and well
  // inside double precision, so the sums are exact and iteration-order
  // independent.
  h.time_kernel("engine_flood", "legacy", n, k, [&] {
    reference::SyncEngine engine(g, [&](NodeId) {
      return std::make_unique<reference::NeighborhoodDiscoveryAgent>(k);
    });
    engine.run(2 * k + 2);
    double sum = static_cast<double>(engine.stats().receptions +
                                     engine.stats().rounds);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& agent =
          dynamic_cast<const reference::NeighborhoodDiscoveryAgent&>(
              engine.agent(v));
      for (const auto& [origin, rec] : agent.known()) {
        sum += origin + 31.0 * rec.dist + 7.0 * rec.parent;
      }
    }
    return sum;
  });
  const auto flood_digest = [&](const SyncEngine& engine) {
    double sum = static_cast<double>(engine.stats().receptions +
                                     engine.stats().rounds);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& agent =
          dynamic_cast<const NeighborhoodDiscoveryAgent&>(engine.agent(v));
      agent.known().for_each([&](NodeId origin, const KnownRecord& rec) {
        sum += origin + 31.0 * rec.dist + 7.0 * rec.parent;
      });
    }
    return sum;
  };
  h.time_kernel("engine_flood", "workspace", n, k, [&] {
    SyncEngine engine(g, [&](NodeId) {
      return std::make_unique<NeighborhoodDiscoveryAgent>(k);
    });
    engine.run(2 * k + 2);
    return flood_digest(engine);
  });
  h.time_kernel("engine_flood", "parallel", n, k, [&] {
    SyncEngine engine(g, [&](NodeId) {
      return std::make_unique<NeighborhoodDiscoveryAgent>(k);
    });
    engine.run(2 * k + 2, pool);
    return flood_digest(engine);
  });

  std::cout << " clustering speedup x" << fmt(h.speedup("clustering", n), 2)
            << ", backbone speedup x" << fmt(h.speedup("backbone", n), 2)
            << ", engine_flood speedup x"
            << fmt(h.speedup("engine_flood", n), 2) << "\n";
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  bench::Harness harness("PR5", {3, opt.min_seconds});
  ThreadPool pool;  // hardware concurrency, for the parallel backbone rows

  std::vector<std::size_t> benched;
  for (std::size_t n : opt.sizes) {
    const std::size_t realized = bench_point(harness, opt, n, pool, benched);
    if (realized != 0) benched.push_back(realized);
  }

  const auto mismatches = harness.checksum_mismatches();
  for (const std::string& m : mismatches) {
    std::cerr << "CHECKSUM MISMATCH: " << m << "\n";
  }
  if (!mismatches.empty()) return 1;

  harness.write_json(opt.out);
  std::cout << "wrote " << opt.out << "\n";
  return 0;
}
