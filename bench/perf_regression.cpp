/// \file perf_regression.cpp
/// The perf-regression bench: times the pipeline kernels (topology
/// generation, bounded BFS, clustering, backbone build per paper pipeline,
/// engine flood) at several node counts, checks that the optimized paths
/// compute bit-identical results to the preserved legacy implementations
/// (via output checksums), and emits the schema-versioned trajectory JSON
/// (`BENCH_PR10.json` by default).
///
/// Backbone kernels (PR 4): every paper pipeline is timed as `legacy` (the
/// preserved reference two-pass construction: per-head all-heads probes +
/// unbounded per-source BFS link build) vs `workspace` (fused bounded
/// sweeps); the AC-LMST trajectory kernel (`backbone`) additionally gets a
/// `parallel` variant running the same sweeps across a hardware ThreadPool.
/// Matching checksums across variants double-check bit-exactness.
///
/// Engine kernels (PR 5): `engine_flood` is timed as `legacy` (the preserved
/// pre-PR5 engine: one flat O(M log M) sort over all in-flight messages per
/// round + std::map discovery agent, sim/reference.hpp), `workspace` (the
/// receiver-batched engine + flat KnownTable agent) and `parallel` (the same
/// over the hardware ThreadPool round executor). The checksum digests every
/// node's discovered (origin, dist, parent) set, so a single reordered or
/// lost delivery shows up as cross-variant checksum drift.
///
/// Million-node kernels (PR 8):
///  * `generation` — unit-disk topology build from fixed positions: `legacy`
///    (preserved edge-pair-vector reference, graph/spatial_grid.cpp) vs
///    `workspace` (streamed grid-sharded CSR build, no edge intermediate) vs
///    `parallel` (the streamed build with per-tile ThreadPool fill).
///  * `bounded_bfs` gains an `sfc` variant: the same all-sources sweep on
///    the Hilbert-relabeled graph. The probe sum is iteration-order
///    invariant, so its checksum must equal the workspace variant's —
///    the wall-time delta isolates the locality win of the renumbering.
///  * `clustering_sfc` — the kDistanceBased election under explicitly
///    distinct carried priority keys, `direct` vs `relabeled`; the digest
///    (rounds + sum of original-id heads + sum of dist_to_head) is
///    permutation-equivariant, so the two variants must agree exactly.
///  * At n >= 100000 the quadratic-cost legacy references for BFS,
///    clustering, backbone and engine are skipped (each legacy BFS call
///    allocates O(n) — the sweep would be O(n^2)); the topology switches to
///    jittered-grid placement with an analytic radius and a deterministic
///    radius-bump retry until connected, and the backbone set narrows to
///    AC-Mesh + G-MST (the flat and global extremes of the five pipelines).
///    `engine_flood` runs at k=1 to bound per-node discovery state.
///
/// Sharded engine (PR 10): `engine_flood` gains `sharded2` / `sharded4` /
/// `sharded8` variants — the same flood on the ShardedEngine coordinator
/// (contiguous SFC id-range shards stepped across the ThreadPool, boundary
/// messages exchanged serially between rounds). The discovery digest is the
/// same as the serial/parallel variants', so the cross-variant checksum
/// check enforces the sharding invariant: traces, stats and discovery
/// results bit-identical to the single-shard engine at every shard count —
/// including the n = 1,000,000 row, which must also stay under the existing
/// RSS ceiling of the million-node smoke.
///
/// Usage:
///   bench_perf_regression [--out FILE] [--sizes n1,n2,...] [--k K]
///                         [--degree D] [--min-seconds S] [--min-reps R]
///                         [--seed S] [--max-rss-mb MB]
///
/// The CI smoke job runs it at tiny sizes (plus a downscaled million-node
/// smoke with --min-reps 1 and an --max-rss-mb ceiling); the committed
/// trajectory uses the defaults (n in {500, 2000, 8000, 1000000}).
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "khop/cluster/reference.hpp"
#include "khop/common/assert.hpp"
#include "khop/exp/experiment.hpp"
#include "khop/gateway/reference.hpp"
#include "khop/graph/bfs_reference.hpp"
#include "khop/graph/relabel.hpp"
#include "khop/graph/spatial_grid.hpp"
#include "khop/net/generator.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/runtime/workspace.hpp"
#include "khop/sim/protocols/neighborhood.hpp"
#include "khop/sim/reference.hpp"
#include "khop/sim/sharded_engine.hpp"

namespace {

using namespace khop;

/// Above this node count the O(n)-alloc-per-call legacy references are
/// skipped and the topology comes from the streamed jittered-grid path.
constexpr std::size_t kBigN = 100000;

struct Options {
  std::string out = "BENCH_PR10.json";
  std::vector<std::size_t> sizes = {500, 2000, 8000, 1000000};
  Hops k = 2;
  double degree = 8.0;
  double min_seconds = 0.05;
  std::size_t min_reps = 3;
  std::uint64_t seed = 20260729;
  std::size_t max_rss_mb = 0;  ///< 0 = unlimited; else fail past the ceiling
};

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> sizes;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    sizes.push_back(static_cast<std::size_t>(std::stoull(item)));
  }
  return sizes;
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      opt.out = need_value("--out");
    } else if (arg == "--sizes") {
      opt.sizes = parse_sizes(need_value("--sizes"));
    } else if (arg == "--k") {
      opt.k = static_cast<Hops>(std::stoul(need_value("--k")));
    } else if (arg == "--degree") {
      opt.degree = std::stod(need_value("--degree"));
    } else if (arg == "--min-seconds") {
      opt.min_seconds = std::stod(need_value("--min-seconds"));
    } else if (arg == "--min-reps") {
      opt.min_reps = std::stoull(need_value("--min-reps"));
    } else if (arg == "--seed") {
      opt.seed = std::stoull(need_value("--seed"));
    } else if (arg == "--max-rss-mb") {
      opt.max_rss_mb = std::stoull(need_value("--max-rss-mb"));
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

/// Variant-independent digest of a BFS result: probes one fixed node per
/// source so legacy (array) and workspace (query) variants pay the same
/// checksum cost.
double probe(Hops d) { return d == kUnreachable ? -1.0 : d; }

/// The five pipelines as bench kernels. AC-LMST keeps the plain `backbone`
/// name so the trajectory rows stay comparable with BENCH_PR3.json.
struct PipelineKernel {
  Pipeline pipeline;
  const char* name;
};

constexpr PipelineKernel kPipelineKernels[] = {
    {Pipeline::kAcLmst, "backbone"},
    {Pipeline::kNcMesh, "backbone_nc_mesh"},
    {Pipeline::kAcMesh, "backbone_ac_mesh"},
    {Pipeline::kNcLmst, "backbone_nc_lmst"},
    {Pipeline::kGmst, "backbone_gmst"},
};

/// The two pipelines retained at n >= kBigN: the cheapest (flat adjacent
/// cluster mesh) and the most global (gateway MST over the cluster graph).
bool benched_at_big_n(Pipeline p) {
  return p == Pipeline::kAcMesh || p == Pipeline::kGmst;
}

/// Million-node topology: jittered-grid placement (one node per unit cell,
/// uniform jitter inside it) over a sqrt(n) x sqrt(n) field, radius from the
/// analytic degree formula, then a deterministic 5% radius bump until the
/// unit-disk graph is connected. Every step is seeded, so the topology is a
/// pure function of (n, degree, seed). Placement never needs retrying: the
/// jittered grid has no density holes, so the radius bump alone restores
/// connectivity. The cell -> id assignment is shuffled: row-major ids would
/// be spatially sequential, which both turns the lowest-id election into a
/// sqrt(n)-round diagonal march (each round's winners hug the undecided
/// region's low-id frontier) and hands the un-relabeled layout the SFC
/// variant's locality for free — shuffled ids reproduce the id/placement
/// independence of the small-n uniform generator.
AdHocNetwork make_big_topology(std::size_t n, double degree,
                               std::uint64_t seed, Workspace& ws,
                               ThreadPool& pool) {
  AdHocNetwork net;
  const std::size_t cols =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const std::size_t rows = (n + cols - 1) / cols;
  net.field = Field{static_cast<double>(std::max(cols, rows))};
  net.requested_nodes = n;
  net.positions.resize(n);
  Rng rng(seed);
  std::vector<NodeId> cell_of(n);
  for (std::size_t i = 0; i < n; ++i) cell_of[i] = static_cast<NodeId>(i);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(cell_of[i - 1], cell_of[rng.uniform_int(i)]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double cx = static_cast<double>(cell_of[i] % cols);
    const double cy = static_cast<double>(cell_of[i] / cols);
    net.positions[i] = {cx + rng.uniform(), cy + rng.uniform()};
  }
  // Unit cells => density ~= 1 node per unit area: E[deg] = pi r^2 - 1.
  double radius = std::sqrt((degree + 1.0) / 3.14159265358979323846);
  for (std::size_t attempt = 0;; ++attempt) {
    KHOP_REQUIRE(attempt < 32, "big topology never became connected");
    net.graph = build_unit_disk_graph_streamed(net.positions, radius,
                                               ws.grid, &pool);
    ws.bfs.run(net.graph, 0, kUnreachable);
    if (ws.bfs.reached().size() == n) break;
    radius *= 1.05;
    net.connectivity = ConnectivityOutcome::kConnectedAfterRetry;
    net.placement_attempts = attempt + 2;
  }
  net.radius = radius;
  return net;
}

/// Returns the realized node count benched (rows are keyed by it), or 0 if
/// this point was skipped.
std::size_t bench_point(bench::Harness& h, const Options& opt, std::size_t n,
                        ThreadPool& pool,
                        const std::vector<std::size_t>& already_benched) {
  const bool big = n >= kBigN;
  Workspace ws;

  // Identical topology for every kernel at this n: the calibrated generator
  // at bench scales, the seeded jittered grid above it.
  AdHocNetwork net;
  if (big) {
    net = make_big_topology(n, opt.degree, opt.seed + n, ws, pool);
  } else {
    ExperimentConfig cal;
    cal.num_nodes = n;
    cal.avg_degree = opt.degree;
    const double radius = resolve_radius(cal, opt.seed);
    GeneratorConfig gen;
    gen.num_nodes = n;
    gen.explicit_radius = radius;
    Rng rng(opt.seed + n);
    net = generate_network(gen, rng);
  }
  const Graph& g = net.graph;
  // The generator may fall back to the largest connected component, so the
  // realized node count can be below the requested n; all indexing (and the
  // reported row size) must use the realized count. Two requested sizes that
  // realize identically would collide on the (name, n) row key - and the
  // graphs would still differ (the topology rng is seeded by the requested
  // size) - so duplicates are skipped rather than reported as mismatches.
  n = g.num_nodes();
  for (std::size_t prior : already_benched) {
    if (prior == n) {
      std::cout << "n=" << n << " already benched, skipping duplicate\n";
      return 0;
    }
  }
  const Hops k = opt.k;
  const auto priorities = make_priorities(g, PriorityRule::kLowestId);

  std::cout << "n=" << n << " (m=" << g.num_edges() << ", r=" << net.radius
            << ")..." << std::flush;

  // Kernel 0: unit-disk topology generation from the fixed positions.
  // Sampled-degree digest: identical graphs => identical sums; cheap at any
  // n (at most ~1000 probed rows).
  const auto generation_checksum = [&](const Graph& built) {
    double sum = static_cast<double>(built.num_edges());
    const std::size_t stride = std::max<std::size_t>(1, n / 1000);
    for (NodeId u = 0; u < built.num_nodes(); u += stride) {
      sum += static_cast<double>(u) * static_cast<double>(built.degree(u));
    }
    return sum;
  };
  h.time_kernel("generation", "legacy", n, k, [&] {
    return generation_checksum(
        reference::build_unit_disk_graph(net.positions, net.radius));
  });
  h.time_kernel("generation", "workspace", n, k, [&] {
    return generation_checksum(
        build_unit_disk_graph_streamed(net.positions, net.radius, ws.grid));
  });
  h.time_kernel("generation", "parallel", n, k, [&] {
    return generation_checksum(build_unit_disk_graph_streamed(
        net.positions, net.radius, ws.grid, &pool));
  });

  // Kernel 1: bounded BFS from every source. The sfc variant runs the same
  // sweep on the Hilbert-relabeled graph; its probe targets are the mapped
  // images of the workspace variant's, and the sum is order-invariant, so
  // the checksums must agree — the wall delta is pure locality.
  if (!big) {
    h.time_kernel("bounded_bfs", "legacy", n, k, [&] {
      double sum = 0.0;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const BfsTree t = reference::bfs_bounded(g, v, k);
        sum += probe(t.dist[(v + n / 2) % n]);
      }
      return sum;
    });
  }
  // At n >= kBigN the (v + n/2) probe target is always outside the k-ball
  // (the field is huge), which would degenerate the digest to -n; folding in
  // the ball size — permutation-invariant, so identical across workspace and
  // sfc — keeps the cross-variant check meaningful at scale.
  h.time_kernel("bounded_bfs", "workspace", n, k, [&] {
    double sum = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ws.bfs.run(g, v, k);
      sum += probe(ws.bfs.dist((v + n / 2) % n));
      if (big) sum += static_cast<double>(ws.bfs.reached().size());
    }
    return sum;
  });
  const Relabeling sfc = sfc_relabeling(net.positions);
  const Graph g_sfc = relabel(g, sfc);
  h.time_kernel("bounded_bfs", "sfc", n, k, [&] {
    double sum = 0.0;
    for (NodeId s = 0; s < g_sfc.num_nodes(); ++s) {
      ws.bfs.run(g_sfc, s, k);
      const NodeId old_s = sfc.old_of_new[s];
      sum += probe(ws.bfs.dist(sfc.new_of_old[(old_s + n / 2) % n]));
      if (big) sum += static_cast<double>(ws.bfs.reached().size());
    }
    return sum;
  });

  // Kernel 2: the paper's k-hop clustering election.
  const auto clustering_checksum = [](const Clustering& c) {
    double sum = static_cast<double>(c.election_rounds);
    for (NodeId hd : c.heads) sum += hd;
    for (NodeId v = 0; v < c.head_of.size(); ++v) sum += c.head_of[v];
    return sum;
  };
  if (!big) {
    h.time_kernel("clustering", "legacy", n, k, [&] {
      return clustering_checksum(reference::khop_clustering(
          g, k, priorities, AffiliationRule::kIdBased));
    });
  }
  h.time_kernel("clustering", "workspace", n, k, [&] {
    return clustering_checksum(
        khop_clustering(g, k, priorities, AffiliationRule::kIdBased, ws));
  });

  // Kernel 2b: the same election on the relabeled graph under explicitly
  // distinct carried keys (key = original id). The digest folds in rounds,
  // original-id heads and the dist_to_head sum — all equivariant — so the
  // direct and relabeled runs must produce the same checksum even though
  // they run in different id spaces.
  std::vector<PriorityKey> distinct(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    distinct[u] = {static_cast<double>(u), u};
  }
  const auto carried = relabel(distinct, sfc);
  h.time_kernel("clustering_sfc", "direct", n, k, [&] {
    const Clustering c = khop_clustering(g, k, distinct,
                                         AffiliationRule::kDistanceBased, ws);
    double sum = static_cast<double>(c.election_rounds);
    for (NodeId hd : c.heads) sum += hd;
    for (NodeId v = 0; v < c.head_of.size(); ++v) sum += c.dist_to_head[v];
    return sum;
  });
  h.time_kernel("clustering_sfc", "relabeled", n, k, [&] {
    const Clustering c = khop_clustering(g_sfc, k, carried,
                                         AffiliationRule::kDistanceBased, ws);
    double sum = static_cast<double>(c.election_rounds);
    for (NodeId hd : c.heads) sum += sfc.old_of_new[hd];
    for (NodeId v = 0; v < c.head_of.size(); ++v) sum += c.dist_to_head[v];
    return sum;
  });

  // Kernel 3: phase-2 backbone build over a fixed clustering, one kernel
  // per paper pipeline, legacy (reference two-pass) vs workspace (fused
  // bounded sweeps) vs parallel (AC-LMST at bench scales; every retained
  // pipeline at n >= kBigN, where legacy is skipped).
  const Clustering c =
      khop_clustering(g, k, priorities, AffiliationRule::kIdBased, ws);
  const auto backbone_checksum = [](const Backbone& b) {
    double sum = static_cast<double>(b.cds_size());
    for (NodeId gw : b.gateways) sum += gw;
    return sum;
  };
  for (const PipelineKernel& pk : kPipelineKernels) {
    if (big && !benched_at_big_n(pk.pipeline)) continue;
    if (!big) {
      h.time_kernel(pk.name, "legacy", n, k, [&] {
        return backbone_checksum(reference::build_backbone(g, c, pk.pipeline));
      });
    }
    h.time_kernel(pk.name, "workspace", n, k, [&] {
      return backbone_checksum(build_backbone(g, c, pk.pipeline, ws));
    });
    if (pk.pipeline == Pipeline::kAcLmst || big) {
      h.time_kernel(pk.name, "parallel", n, k, [&] {
        return backbone_checksum(build_backbone(g, c, pk.pipeline, pool));
      });
    }
  }

  // Kernel 4: engine flood - k-hop neighborhood discovery by bounded
  // flooding, legacy (preserved flat-sort engine + std::map agent) vs
  // workspace (receiver-batched engine + flat KnownTable agent) vs parallel
  // (the ThreadPool round executor). The digest folds in every node's
  // discovered (origin, dist, parent) records, all integer-valued and well
  // inside double precision, so the sums are exact and iteration-order
  // independent. At n >= kBigN the flood runs at k=1: per-node discovery
  // state is Theta(ball size), and the 1-ball keeps the engine's resident
  // footprint linear in edges rather than in the k-ball mass.
  const Hops k_flood = big ? Hops{1} : k;
  if (!big) {
    h.time_kernel("engine_flood", "legacy", n, k_flood, [&] {
      reference::SyncEngine engine(g, [&](NodeId) {
        return std::make_unique<reference::NeighborhoodDiscoveryAgent>(k_flood);
      });
      engine.run(2 * k_flood + 2);
      double sum = static_cast<double>(engine.stats().receptions +
                                       engine.stats().rounds);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const auto& agent =
            dynamic_cast<const reference::NeighborhoodDiscoveryAgent&>(
                engine.agent(v));
        for (const auto& [origin, rec] : agent.known()) {
          sum += origin + 31.0 * rec.dist + 7.0 * rec.parent;
        }
      }
      return sum;
    });
  }
  // Generic over the engine type: SyncEngine and ShardedEngine expose the
  // same stats()/agent() surface, and the digest only reads those.
  const auto flood_digest = [&](const auto& engine) {
    double sum = static_cast<double>(engine.stats().receptions +
                                     engine.stats().rounds);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& agent =
          dynamic_cast<const NeighborhoodDiscoveryAgent&>(engine.agent(v));
      agent.known().for_each([&](NodeId origin, const KnownRecord& rec) {
        sum += origin + 31.0 * rec.dist + 7.0 * rec.parent;
      });
    }
    return sum;
  };
  h.time_kernel("engine_flood", "workspace", n, k_flood, [&] {
    SyncEngine engine(g, [&](NodeId) {
      return std::make_unique<NeighborhoodDiscoveryAgent>(k_flood);
    });
    engine.run(2 * k_flood + 2);
    return flood_digest(engine);
  });
  h.time_kernel("engine_flood", "parallel", n, k_flood, [&] {
    SyncEngine engine(g, [&](NodeId) {
      return std::make_unique<NeighborhoodDiscoveryAgent>(k_flood);
    });
    engine.run(2 * k_flood + 2, pool);
    return flood_digest(engine);
  });
  // The sharded coordinator at 2/4/8 contiguous id-range shards. The digest
  // (and the harness's cross-variant checksum check) must agree exactly with
  // the serial/parallel rows: the sharded round loop is bit-identical to the
  // single-shard engine by construction.
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4},
                                   std::size_t{8}}) {
    h.time_kernel("engine_flood", "sharded" + std::to_string(shards), n,
                  k_flood, [&] {
                    ShardedEngine engine(
                        g,
                        [&](NodeId) {
                          return std::make_unique<NeighborhoodDiscoveryAgent>(
                              k_flood);
                        },
                        shards);
                    engine.run(2 * k_flood + 2, pool);
                    return flood_digest(engine);
                  });
  }

  if (big) {
    std::cout << " generation speedup x" << fmt(h.speedup("generation", n), 2)
              << ", rss " << bench::peak_rss_bytes() / (1024 * 1024)
              << " MB\n";
  } else {
    std::cout << " clustering speedup x" << fmt(h.speedup("clustering", n), 2)
              << ", backbone speedup x" << fmt(h.speedup("backbone", n), 2)
              << ", engine_flood speedup x"
              << fmt(h.speedup("engine_flood", n), 2) << "\n";
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  bench::Harness harness("PR10", {opt.min_reps, opt.min_seconds});
  ThreadPool pool;  // hardware concurrency, for the parallel variants

  std::vector<std::size_t> benched;
  for (std::size_t n : opt.sizes) {
    const std::size_t realized = bench_point(harness, opt, n, pool, benched);
    if (realized != 0) benched.push_back(realized);
  }

  const auto mismatches = harness.checksum_mismatches();
  for (const std::string& m : mismatches) {
    std::cerr << "CHECKSUM MISMATCH: " << m << "\n";
  }
  if (!mismatches.empty()) return 1;

  if (opt.max_rss_mb != 0) {
    const std::uint64_t rss_mb = bench::peak_rss_bytes() / (1024 * 1024);
    if (rss_mb > opt.max_rss_mb) {
      std::cerr << "RSS CEILING EXCEEDED: peak " << rss_mb << " MB > limit "
                << opt.max_rss_mb << " MB\n";
      return 1;
    }
    std::cout << "peak rss " << rss_mb << " MB (limit " << opt.max_rss_mb
              << " MB)\n";
  }

  harness.write_json(opt.out);
  std::cout << "wrote " << opt.out << "\n";
  return 0;
}
