/// \file figure_common.hpp
/// Shared machinery for the figure-reproduction benches: a paired trial that
/// evaluates all five pipelines on the same random topology (exactly how the
/// paper compares them), plus table plumbing. Timing/artifact plumbing lives
/// in harness/harness.hpp.
#pragma once

#include <cstdint>
#include <iostream>
#include <vector>

#include "harness/harness.hpp"
#include "khop/cds/cds.hpp"
#include "khop/common/error.hpp"
#include "khop/exp/experiment.hpp"
#include "khop/exp/table.hpp"
#include "khop/net/generator.hpp"
#include "khop/runtime/thread_pool.hpp"

namespace khop::bench {

/// Metric layout of one paired trial: heads, then CDS size per pipeline in
/// kAllPipelines order.
inline constexpr std::size_t kPairedMetricCount =
    1 + std::size(kAllPipelines);

/// Runs one topology through every pipeline. Validation is on: any paper
/// invariant violation aborts the bench loudly rather than producing bogus
/// series. The clustering/backbone hot paths reuse \p ws across trials.
inline std::vector<double> paired_trial(std::size_t n, double radius, Hops k,
                                        Rng& rng, Workspace& ws) {
  GeneratorConfig gen;
  gen.num_nodes = n;
  gen.explicit_radius = radius;
  const AdHocNetwork net = generate_network(gen, rng);
  const Clustering c = khop_clustering(
      net.graph, k, make_priorities(net.graph, PriorityRule::kLowestId),
      AffiliationRule::kIdBased, ws);

  std::vector<double> metrics;
  metrics.reserve(kPairedMetricCount);
  metrics.push_back(static_cast<double>(c.heads.size()));
  for (const Pipeline p : kAllPipelines) {
    const Backbone b = build_backbone(net.graph, c, p, ws);
    const std::string err = validate_k_cds(net.graph, c, b);
    if (!err.empty()) {
      throw InvariantViolation(std::string(pipeline_name(p)) + ": " + err);
    }
    metrics.push_back(static_cast<double>(b.cds_size()));
  }
  return metrics;
}

struct PairedPoint {
  std::size_t n = 0;
  double heads = 0.0;
  std::vector<double> cds;  ///< per pipeline, kAllPipelines order
  std::size_t trials = 0;
};

/// Paper stopping rule: 100 trials or +-1% 90% CI, whichever first.
inline TrialPolicy paper_policy() {
  TrialPolicy policy;
  policy.min_trials = 30;
  policy.max_trials = 100;
  policy.rel_halfwidth = 0.01;
  return policy;
}

/// One curve sample: calibrate the radius for (n, degree), then run paired
/// trials under the paper's stopping rule.
inline PairedPoint run_paired_point(ThreadPool& pool, std::size_t n,
                                    double degree, Hops k,
                                    std::uint64_t seed) {
  ExperimentConfig cal;
  cal.num_nodes = n;
  cal.avg_degree = degree;
  const double radius = resolve_radius(cal, seed);

  const TrialSummary s = run_trials(
      pool, paper_policy(), Rng(seed), kPairedMetricCount,
      [n, radius, k](Rng& rng, std::size_t, Workspace& ws) {
        return paired_trial(n, radius, k, rng, ws);
      });

  PairedPoint p;
  p.n = n;
  p.heads = s.metrics[0].mean();
  for (std::size_t i = 1; i < kPairedMetricCount; ++i) {
    p.cds.push_back(s.metrics[i].mean());
  }
  p.trials = s.trials_run;
  return p;
}

/// The paper's x axis: N from 50 to 200.
inline std::vector<std::size_t> paper_node_counts() {
  return {50, 75, 100, 125, 150, 175, 200};
}

/// Prints one figure panel (CDS size vs N for the five pipelines).
inline void print_panel(std::ostream& os, const std::string& title,
                        const std::vector<PairedPoint>& points,
                        const std::string& csv_name = {}) {
  os << title << '\n';
  TextTable t({"N", "NC-Mesh", "AC-Mesh", "NC-LMST", "AC-LMST", "G-MST",
               "heads", "trials"});
  for (const auto& p : points) {
    t.add_row({std::to_string(p.n), fmt(p.cds[0]), fmt(p.cds[1]),
               fmt(p.cds[2]), fmt(p.cds[3]), fmt(p.cds[4]), fmt(p.heads),
               std::to_string(p.trials)});
  }
  t.print(os);
  os << '\n';
  if (!csv_name.empty()) maybe_write_csv(csv_name, t);
}

}  // namespace khop::bench
