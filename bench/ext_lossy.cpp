// Extension experiment X7 - delivery-aware broadcast over lossy radios.
//
// Panel 1 sweeps an ambient per-link loss rate over the paper's unit-disk
// topology and reports the broadcast delivery ratio actually achieved by
// blind flooding vs CDS-confined flooding (with and without a link-retry
// budget), plus how often the clustering backbone itself survives in a
// sampled realized topology (CDS still connected and dominating).
//
// Panel 2 fixes the loss knob and swaps the radio model instead: ideal unit
// disk, quasi-UDG (certain inside 0.6 r, linear ramp to r) and log-normal
// shadowing (r_half = r), the progression from the paper's assumption to a
// realistic gray-zone radio.
//
// CSV artifacts land in $KHOP_CSV_DIR when set (ext_lossy_sweep.csv,
// ext_lossy_models.csv).
#include <iostream>

#include "figure_common.hpp"
#include "khop/exp/lossy.hpp"

namespace {

using namespace khop;
using khop::bench::maybe_write_csv;

TrialPolicy lossy_policy() {
  TrialPolicy policy;
  policy.min_trials = 20;
  policy.max_trials = 40;
  policy.batch = 20;
  policy.rel_halfwidth = 0.02;
  return policy;
}

void add_point_row(TextTable& t, const std::string& label,
                   const LossySweepPoint& p) {
  t.add_row({label, fmt(p.blind_delivery.mean(), 3),
             fmt(p.cds_delivery.mean(), 3), fmt(p.cds_transmissions.mean(), 1),
             fmt(p.drops.mean(), 1), fmt(p.retransmissions.mean(), 1),
             fmt(p.backbone_survival.mean(), 2),
             std::to_string(p.trials)});
}

}  // namespace

int main() {
  std::cout << "Extension X7 - lossy-link broadcast "
               "(N = 100, D = 6, k = 2, AC-LMST)\n\n";

  ThreadPool pool;
  const std::uint64_t seed = 11700;

  LossyExperimentConfig base;
  base.num_nodes = 100;
  base.avg_degree = 6.0;
  base.k = 2;
  base.pipeline = Pipeline::kAcLmst;
  base.radius = resolve_lossy_radius(base, seed);

  std::cout << "panel 1: ambient loss sweep (unit-disk links, per-link "
               "Bernoulli drops)\n";
  TextTable sweep({"loss/retry", "blind dlv", "CDS dlv", "CDS tx", "drops",
                   "retx", "survival", "trials"});
  for (const double loss : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    for (const std::size_t retry : {std::size_t{0}, std::size_t{2}}) {
      LossyExperimentConfig cfg = base;
      cfg.radio = RadioKind::kUnitDisk;
      cfg.ambient_loss = loss;
      cfg.retry_budget = retry;
      const LossySweepPoint p =
          run_lossy_sweep_point(pool, cfg, lossy_policy(), seed);
      add_point_row(sweep, fmt(loss, 1) + "/r" + std::to_string(retry), p);
    }
  }
  sweep.print(std::cout);
  maybe_write_csv("ext_lossy_sweep", sweep);

  std::cout << "\npanel 2: radio models at ambient loss 0.2\n";
  TextTable models({"model", "blind dlv", "CDS dlv", "CDS tx", "drops",
                    "retx", "survival", "trials"});
  for (const RadioKind kind :
       {RadioKind::kUnitDisk, RadioKind::kQuasiUnitDisk,
        RadioKind::kLogNormal}) {
    for (const std::size_t retry : {std::size_t{0}, std::size_t{2}}) {
      LossyExperimentConfig cfg = base;
      cfg.radio = kind;
      cfg.qudg_inner_fraction = 0.6;
      cfg.shadowing_sigma_db = 4.0;
      cfg.ambient_loss = 0.2;
      cfg.retry_budget = retry;
      const LossySweepPoint p =
          run_lossy_sweep_point(pool, cfg, lossy_policy(), seed);
      add_point_row(models,
                    std::string(radio_kind_name(kind)) + "/r" +
                        std::to_string(retry),
                    p);
    }
  }
  models.print(std::cout);
  maybe_write_csv("ext_lossy_models", models);

  std::cout
      << "\nreading: blind flooding soaks up loss through sheer redundancy "
         "while the CDS flood's delivery ratio tracks the loss rate - the "
         "backbone trades robustness for its transmission savings. A small "
         "per-link retry budget buys most of the redundancy back at a "
         "fraction of the cost, and backbone survival falls off well before "
         "delivery does: the structure, not the flood, is the fragile "
         "part.\n";
  return 0;
}
