// Extension experiment X1 (the paper's stated future work, section 5):
// communication overhead of the distributed protocols as a function of k.
//
// For each k we run the actual message-passing protocols (clustering
// election + A-NCR exchange + LMST gateway marking) on fresh topologies and
// report radio transmissions, message receptions, payload volume, and
// protocol rounds - alongside the CDS size those messages bought. This
// quantifies the tradeoff the paper anticipates: larger k shrinks the CDS
// but inflates the (2k+1)-hop information gathering cost.
#include <iostream>

#include "khop/exp/stats.hpp"
#include "khop/exp/table.hpp"
#include "khop/net/generator.hpp"
#include "khop/sim/protocols/clustering_protocol.hpp"
#include "khop/sim/protocols/gateway_protocol.hpp"

int main() {
  using namespace khop;

  std::cout << "Extension X1 - communication overhead vs k (N = 100, D = 6, "
               "distributed protocols, 20 topologies per k)\n\n";

  TextTable t({"k", "cluster tx", "ancr+lmst tx", "total tx", "rx",
               "payload KiB", "rounds", "CDS size"});

  for (const Hops k : {1u, 2u, 3u, 4u}) {
    RunningStats cluster_tx, gateway_tx, total_tx, rx, payload, rounds, cds;
    for (std::uint64_t trial = 0; trial < 20; ++trial) {
      GeneratorConfig gen;
      gen.num_nodes = 100;
      gen.target_degree = 6.0;
      Rng rng(Rng(90000 + k).spawn(trial));
      const AdHocNetwork net = generate_network(gen, rng);

      const auto prio = make_priorities(net.graph, PriorityRule::kLowestId);
      SimStats cstats;
      const Clustering c = run_distributed_clustering(
          net.graph, k, prio, AffiliationRule::kIdBased, &cstats);

      SimStats gstats;
      const Backbone b = run_distributed_aclmst(net.graph, c, &gstats);

      cluster_tx.add(static_cast<double>(cstats.transmissions));
      gateway_tx.add(static_cast<double>(gstats.transmissions));
      total_tx.add(
          static_cast<double>(cstats.transmissions + gstats.transmissions));
      rx.add(static_cast<double>(cstats.receptions + gstats.receptions));
      payload.add(static_cast<double>(cstats.payload_words +
                                      gstats.payload_words) *
                  8.0 / 1024.0);
      rounds.add(static_cast<double>(cstats.rounds + gstats.rounds));
      cds.add(static_cast<double>(b.cds_size()));
    }
    t.add_row({std::to_string(k), fmt(cluster_tx.mean(), 0),
               fmt(gateway_tx.mean(), 0), fmt(total_tx.mean(), 0),
               fmt(rx.mean(), 0), fmt(payload.mean(), 1),
               fmt(rounds.mean(), 0), fmt(cds.mean(), 1)});
  }
  t.print(std::cout);
  std::cout << "\nreading: CDS size falls with k while the message bill "
               "rises - the combinatorial-stability argument for small k.\n";
  return 0;
}
