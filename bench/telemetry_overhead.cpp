/// \file telemetry_overhead.cpp
/// Telemetry overhead trajectory (PR 7): every required khop.bench kernel
/// plus churn_event, each timed twice — `telemetry_off` (runtime toggle off:
/// the one-branch disabled path) and `telemetry_on` (spans + metrics
/// recording live). Checksums must be identical across the two variants of
/// every kernel: telemetry is observational only, and the harness plus
/// tools/validate_bench_json.py both enforce the cross-variant match.
///
/// Acceptance gate (ISSUE 7): telemetry_on / telemetry_off wall-time ratio
/// on engine_flood <= 1.05; the disabled path <= 1.01 vs a KHOP_TELEMETRY=0
/// build (the latter is checked by building the gate off locally; this
/// binary documents the runtime-toggle cost).
///
/// The trace buffer is dropped between kernels (obs::reset_all) so the
/// enabled variants measure steady-state recording, not snapshot export.
///
/// Usage:
///   bench_telemetry_overhead [--out FILE] [--n N] [--churn-n N]
///                            [--events E] [--k K] [--degree D]
///                            [--min-seconds S] [--seed S]
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "harness/harness.hpp"
#include "khop/cluster/clustering.hpp"
#include "khop/dynamic/churn_engine.hpp"
#include "khop/dynamic/churn_trace.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/net/generator.hpp"
#include "khop/obs/telemetry.hpp"
#include "khop/runtime/workspace.hpp"
#include "khop/sim/engine.hpp"
#include "khop/sim/protocols/neighborhood.hpp"

namespace {

using namespace khop;

struct Options {
  std::string out = "BENCH_PR7.json";
  std::size_t n = 2000;       ///< static-pipeline kernels
  std::size_t churn_n = 1000; ///< churn_event network
  std::size_t events = 150;   ///< events per churn_event rep
  Hops k = 2;
  double degree = 8.0;
  double min_seconds = 0.05;
  std::uint64_t seed = 20260808;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      opt.out = need_value("--out");
    } else if (arg == "--n") {
      opt.n = std::stoull(need_value("--n"));
    } else if (arg == "--churn-n") {
      opt.churn_n = std::stoull(need_value("--churn-n"));
    } else if (arg == "--events") {
      opt.events = std::stoull(need_value("--events"));
    } else if (arg == "--k") {
      opt.k = static_cast<Hops>(std::stoul(need_value("--k")));
    } else if (arg == "--min-seconds") {
      opt.min_seconds = std::stod(need_value("--min-seconds"));
    } else if (arg == "--degree") {
      opt.degree = std::stod(need_value("--degree"));
    } else if (arg == "--seed") {
      opt.seed = std::stoull(need_value("--seed"));
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  return opt;
}

Graph make_network(const Options& opt, std::size_t n) {
  GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = opt.degree;
  Rng rng(opt.seed + n);
  return generate_network(gen, rng).graph;
}

/// Times \p fn under both toggle states; same checksum required (enforced
/// by the harness within each variant and by checksum_mismatches across).
template <typename Fn>
void time_both(bench::Harness& h, const std::string& name, std::size_t n,
               Hops k, const Fn& fn) {
  obs::set_enabled(false);
  obs::reset_all();
  h.time_kernel(name, "telemetry_off", n, k, fn);
  obs::set_enabled(true);
  obs::reset_all();
  h.time_kernel(name, "telemetry_on", n, k, fn);
  obs::set_enabled(false);
  obs::reset_all();
}

double ratio(const bench::Harness& h, const std::string& name,
             std::size_t n) {
  double off = 0.0;
  double on = 0.0;
  for (const bench::KernelTiming& r : h.results()) {
    if (r.name != name || r.n != n) continue;
    if (r.variant == "telemetry_off") off = r.wall_ns_min;
    if (r.variant == "telemetry_on") on = r.wall_ns_min;
  }
  return off > 0.0 ? on / off : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  bench::Harness harness("PR7", {3, opt.min_seconds});

  const Graph g = make_network(opt, opt.n);
  const std::size_t n = g.num_nodes();  // LCC fallback may shrink it
  std::cout << "pipeline network: n=" << n << " (m=" << g.num_edges()
            << ")\n";

  Workspace ws;
  time_both(harness, "bounded_bfs", n, opt.k, [&] {
    double sum = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ws.bfs.run(g, v, opt.k);
      const Hops d = ws.bfs.dist((v + n / 2) % n);
      sum += d == kUnreachable ? -1.0 : d;
    }
    return sum;
  });

  const auto priorities = make_priorities(g, PriorityRule::kLowestId);
  time_both(harness, "clustering", n, opt.k, [&] {
    const Clustering c =
        khop_clustering(g, opt.k, priorities, AffiliationRule::kIdBased, ws);
    double sum = static_cast<double>(c.election_rounds);
    for (NodeId hd : c.heads) sum += hd;
    for (NodeId v = 0; v < c.head_of.size(); ++v) sum += c.head_of[v];
    return sum;
  });

  const Clustering c =
      khop_clustering(g, opt.k, priorities, AffiliationRule::kIdBased, ws);
  time_both(harness, "backbone", n, opt.k, [&] {
    const Backbone b = build_backbone(g, c, Pipeline::kNcLmst, ws);
    double sum = static_cast<double>(b.cds_size());
    for (NodeId gw : b.gateways) sum += gw;
    return sum;
  });

  time_both(harness, "engine_flood", n, opt.k, [&] {
    SyncEngine engine(g, [&](NodeId) {
      return std::make_unique<NeighborhoodDiscoveryAgent>(opt.k);
    });
    engine.run(2 * opt.k + 2);
    double sum = static_cast<double>(engine.stats().receptions +
                                     engine.stats().rounds);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& agent =
          dynamic_cast<const NeighborhoodDiscoveryAgent&>(engine.agent(v));
      agent.known().for_each([&](NodeId origin, const KnownRecord& rec) {
        sum += origin + 31.0 * rec.dist + 7.0 * rec.parent;
      });
    }
    return sum;
  });

  const Graph cg = make_network(opt, opt.churn_n);
  const std::size_t cn = cg.num_nodes();
  ChurnTraceConfig cfg;
  cfg.num_events = opt.events;
  const ChurnTrace trace = ChurnTrace::generate(cg, cfg, opt.seed + 1);
  std::cout << "churn network: n=" << cn << " (m=" << cg.num_edges() << "), "
            << opt.events << " events/rep\n";
  time_both(harness, "churn_event", cn, opt.k, [&] {
    ChurnEngine engine(cg, opt.k, Pipeline::kAcLmst);
    for (const ChurnEvent& e : trace.events()) engine.apply(e);
    double sum = static_cast<double>(engine.graph().num_alive()) +
                 3.0 * static_cast<double>(engine.graph().num_edges());
    const Clustering& ec = engine.clustering();
    for (NodeId v = 0; v < engine.graph().capacity(); ++v) {
      if (!engine.graph().alive(v)) continue;
      sum += v + 31.0 * ec.head_of[v] + 7.0 * ec.dist_to_head[v];
    }
    return sum;
  });

  const auto mismatches = harness.checksum_mismatches();
  for (const std::string& m : mismatches) {
    std::cerr << "CHECKSUM MISMATCH: " << m << "\n";
  }
  if (!mismatches.empty()) return 1;

  for (const char* kernel : {"bounded_bfs", "clustering", "backbone",
                             "engine_flood"}) {
    std::cout << kernel << " on/off ratio: x" << fmt(ratio(harness, kernel, n), 3)
              << "\n";
  }
  std::cout << "churn_event on/off ratio: x"
            << fmt(ratio(harness, "churn_event", cn), 3) << "\n";

  harness.write_json(opt.out);
  std::cout << "wrote " << opt.out << "\n";
  return 0;
}
