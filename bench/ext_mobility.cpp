// Extension experiment X7 - mobility and combinatorial stability. The paper
// motivates small k with topology churn: "small k may help to construct a
// combinatorially stable system". Here nodes move under random waypoint; at
// each beacon epoch the topology is rebuilt and the pipeline re-run, and we
// measure how much of the clustering survives an epoch:
//   * head survival   - fraction of heads that remain heads,
//   * membership churn- fraction of nodes whose head changed,
//   * CDS churn       - symmetric-difference size of the CDS node sets.
#include <iostream>
#include <set>

#include "khop/core/pipeline.hpp"
#include "khop/exp/stats.hpp"
#include "khop/exp/table.hpp"
#include "khop/graph/components.hpp"
#include "khop/net/generator.hpp"
#include "khop/net/mobility.hpp"

int main() {
  using namespace khop;

  std::cout << "Extension X7 - re-clustering churn under random-waypoint "
               "mobility (N = 100, D = 8, AC-LMST,\n"
               "10 runs x 20 epochs, 3 ticks/epoch, speeds 1-5 field "
               "units/tick)\n\n";

  TextTable t({"k", "head survival %", "member churn %", "CDS churn",
               "CDS size", "rel CDS churn", "connected epochs %"});
  for (const Hops k : {1u, 2u, 3u, 4u}) {
    RunningStats survival, churn, cds_churn, cds_size;
    std::size_t epochs_total = 0, epochs_connected = 0;
    for (std::uint64_t run = 0; run < 10; ++run) {
      GeneratorConfig gen;
      gen.num_nodes = 100;
      gen.target_degree = 8.0;
      Rng rng(Rng(99000 + k).spawn(run));
      AdHocNetwork net = generate_network(gen, rng);
      RandomWaypointModel model(RandomWaypointConfig{}, net.num_nodes(),
                                net.field, rng);

      PipelineOptions opts;
      opts.k = k;
      auto previous = build_connected_clustering(net, opts);
      for (int epoch = 0; epoch < 20; ++epoch) {
        for (int tick = 0; tick < 3; ++tick) model.step(net, rng);
        net.rebuild_graph();
        ++epochs_total;
        if (!is_connected(net.graph)) continue;  // skip split snapshots
        ++epochs_connected;
        const auto current = build_connected_clustering(net, opts);

        // Head survival.
        const std::set<NodeId> old_heads(previous.backbone.heads.begin(),
                                         previous.backbone.heads.end());
        std::size_t kept = 0;
        for (NodeId h : current.backbone.heads) {
          if (old_heads.contains(h)) ++kept;
        }
        survival.add(100.0 * static_cast<double>(kept) /
                     static_cast<double>(old_heads.size()));

        // Membership churn.
        std::size_t changed = 0;
        for (NodeId v = 0; v < net.num_nodes(); ++v) {
          if (current.clustering.head_of[v] !=
              previous.clustering.head_of[v]) {
            ++changed;
          }
        }
        churn.add(100.0 * static_cast<double>(changed) /
                  static_cast<double>(net.num_nodes()));

        // CDS symmetric difference.
        const auto old_mask = previous.backbone.cds_mask(net.num_nodes());
        const auto new_mask = current.backbone.cds_mask(net.num_nodes());
        std::size_t diff = 0;
        for (NodeId v = 0; v < net.num_nodes(); ++v) {
          if (old_mask[v] != new_mask[v]) ++diff;
        }
        cds_churn.add(static_cast<double>(diff));
        cds_size.add(static_cast<double>(current.cds.size()));

        previous = current;
      }
    }
    t.add_row({std::to_string(k), fmt(survival.mean(), 1),
               fmt(churn.mean(), 1), fmt(cds_churn.mean(), 1),
               fmt(cds_size.mean(), 1),
               fmt(cds_churn.mean() / cds_size.mean(), 2),
               fmt(100.0 * static_cast<double>(epochs_connected) /
                       static_cast<double>(epochs_total),
                   1)});
  }
  t.print(std::cout);
  std::cout << "\nreading: absolute membership churn falls with k (bigger "
               "clusters absorb motion), but the *relative* CDS churn - "
               "backbone nodes replaced per epoch divided by backbone size - "
               "grows with k: a larger-k backbone is rebuilt proportionally "
               "more per epoch, the paper's combinatorial-stability argument "
               "for keeping k small.\n";
  return 0;
}
