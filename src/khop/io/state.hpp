/// \file state.hpp
/// Checkpointing of pipeline results: a Clustering and a Backbone can be
/// saved to / restored from a plain-text stream, so long-running dynamics
/// experiments can snapshot and resume, and results can be diffed across
/// library versions.
#pragma once

#include <iosfwd>

#include "khop/cluster/clustering.hpp"
#include "khop/gateway/backbone.hpp"

namespace khop {

/// Writes "khop-clustering v1" followed by k, heads, and per-node
/// (head_of, dist_to_head) rows.
void write_clustering(std::ostream& os, const Clustering& c);

/// Reads the write_clustering format; reconstructs cluster_of.
/// Throws InvalidArgument on malformed input.
Clustering read_clustering(std::istream& is);

/// Writes "khop-backbone v1" followed by pipeline/spec, heads, gateways,
/// and virtual links.
void write_backbone(std::ostream& os, const Backbone& b);

/// Reads the write_backbone format.
/// Throws InvalidArgument on malformed input.
Backbone read_backbone(std::istream& is);

}  // namespace khop
