/// \file state.hpp
/// Checkpointing of pipeline results: a Clustering and a Backbone can be
/// saved to / restored from a plain-text stream, so long-running dynamics
/// experiments can snapshot and resume, and results can be diffed across
/// library versions.
///
/// Two format versions exist. v1 is the legacy plain format; v2 (what the
/// writers emit) appends a `crc32c <hex>` trailer line whose checksum
/// covers every body byte after the header line, so bit rot in an archived
/// checkpoint is detected instead of silently parsed. The readers accept
/// both. A stream holds exactly ONE document: readers reject trailing
/// bytes, duplicate/unsorted id lists, out-of-range ids and distances, and
/// report every error as InvalidArgument with the 1-based line number of
/// the offending token.
#pragma once

#include <iosfwd>

#include "khop/cluster/clustering.hpp"
#include "khop/gateway/backbone.hpp"

namespace khop {

/// Writes "khop-clustering v2": k, rounds, node count, heads, per-node
/// (head_of, dist_to_head) rows, and the checksum trailer.
void write_clustering(std::ostream& os, const Clustering& c);

/// Reads the write_clustering format (v1 or v2); reconstructs cluster_of.
/// Throws InvalidArgument on malformed input (see file header).
Clustering read_clustering(std::istream& is);

/// Writes "khop-backbone v2": pipeline/spec, heads, gateways, virtual
/// links, and the checksum trailer.
void write_backbone(std::ostream& os, const Backbone& b);

/// Reads the write_backbone format (v1 or v2).
/// Throws InvalidArgument on malformed input (see file header).
Backbone read_backbone(std::istream& is);

}  // namespace khop
