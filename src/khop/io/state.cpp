#include "khop/io/state.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

#include "khop/common/assert.hpp"
#include "khop/common/error.hpp"
#include "khop/dynamic/persist/crc32c.hpp"

namespace khop {

namespace {

/// Line-tracking token scanner over a fully-slurped document. Every parse
/// error reports the 1-based line the offending token starts on. A state
/// stream holds exactly one document: anything after the final expected
/// token is rejected as trailing garbage.
class Source {
 public:
  Source(std::string text, std::string doc) : text_(std::move(text)), doc_(std::move(doc)) {
    limit_ = text_.size();
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw InvalidArgument(doc_ + ": line " + std::to_string(line_) + ": " +
                          msg);
  }

  /// Next whitespace-delimited token; fails with \p what when the document
  /// ends first.
  std::string_view token(const char* what) {
    skip_space();
    if (pos_ >= limit_) fail(std::string("missing ") + what);
    const std::size_t start = pos_;
    while (pos_ < limit_ && !is_space(text_[pos_])) ++pos_;
    return std::string_view(text_).substr(start, pos_ - start);
  }

  void expect(const char* tag) {
    const std::string_view got = token(tag);
    if (got != tag) {
      fail("expected '" + std::string(tag) + "', got '" + std::string(got) +
           "'");
    }
  }

  /// Non-negative decimal number (digits only — a sign is garbage here).
  std::uint64_t number(const char* what) {
    const std::string_view tok = token(what);
    std::uint64_t v = 0;
    for (const char ch : tok) {
      if (ch < '0' || ch > '9') {
        fail(std::string("bad ") + what + " '" + std::string(tok) + "'");
      }
      const std::uint64_t next = v * 10 + static_cast<std::uint64_t>(ch - '0');
      if (next < v) fail(std::string(what) + " overflows");
      v = next;
    }
    return v;
  }

  /// Fails unless only whitespace remains before \p boundary (or EOF).
  void done() {
    skip_space();
    if (pos_ < limit_) {
      const std::size_t len = std::min<std::size_t>(limit_ - pos_, 16);
      fail("trailing garbage '" +
           std::string(std::string_view(text_).substr(pos_, len)) + "'");
    }
  }

  /// Restricts parsing to the first \p n bytes (used to fence the v2
  /// checksum trailer off from the body scan).
  void set_limit(std::size_t n) { limit_ = n; }
  std::size_t limit() const noexcept { return limit_; }
  const std::string& text() const noexcept { return text_; }
  std::size_t pos() const noexcept { return pos_; }

 private:
  static bool is_space(char ch) {
    return ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n';
  }

  void skip_space() {
    while (pos_ < limit_ && is_space(text_[pos_])) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }

  std::string text_;
  std::string doc_;
  std::size_t pos_ = 0;
  std::size_t limit_ = 0;
  std::size_t line_ = 1;
};

std::string slurp(std::istream& is) {
  std::ostringstream ss;
  ss << is.rdbuf();
  return std::move(ss).str();
}

std::string crc_hex(std::uint32_t crc) {
  std::ostringstream os;
  os << std::hex << std::setw(8) << std::setfill('0') << crc;
  return std::move(os).str();
}

/// Parses the "<magic> v1|v2" header; for v2, verifies the mandatory
/// "crc32c <hex>" trailer over the body bytes (everything between the
/// header line's newline and the trailer line) and fences the trailer off
/// so the caller only ever scans checksummed bytes. Returns the version.
int open_document(Source& src, const std::string& magic) {
  src.expect(magic.c_str());
  const std::string_view version = src.token("format version");
  if (version != "v1" && version != "v2") {
    src.fail("unsupported version '" + std::string(version) + "'");
  }
  if (version == "v1") return 1;

  const std::string& text = src.text();
  const std::size_t body_start = text.find('\n', src.pos());
  if (body_start == std::string::npos) src.fail("missing body");
  // The trailer is the final non-empty line: "crc32c <8 hex digits>".
  std::size_t end = text.size();
  while (end > 0 && (text[end - 1] == '\n' || text[end - 1] == '\r')) --end;
  const std::size_t trailer = text.rfind('\n', end == 0 ? 0 : end - 1);
  if (trailer == std::string::npos || trailer < body_start) {
    src.fail("missing crc32c trailer");
  }
  const std::string_view line =
      std::string_view(text).substr(trailer + 1, end - trailer - 1);
  constexpr std::string_view kPrefix = "crc32c ";
  if (line.substr(0, kPrefix.size()) != kPrefix) {
    src.fail("missing crc32c trailer (last line is '" + std::string(line) +
             "')");
  }
  const std::string_view hex = line.substr(kPrefix.size());
  std::uint32_t want = 0;
  if (hex.size() != 8) src.fail("crc32c trailer must hold 8 hex digits");
  for (const char ch : hex) {
    int digit = 0;
    if (ch >= '0' && ch <= '9') digit = ch - '0';
    else if (ch >= 'a' && ch <= 'f') digit = ch - 'a' + 10;
    else src.fail("bad crc32c hex digit '" + std::string(1, ch) + "'");
    want = want << 4 | static_cast<std::uint32_t>(digit);
  }
  const std::string_view body =
      std::string_view(text).substr(body_start + 1, trailer - body_start);
  const std::uint32_t got = persist::crc32c(body);
  if (got != want) {
    src.fail("checksum mismatch: body is " + crc_hex(got) + ", trailer says " +
             crc_hex(want));
  }
  src.set_limit(trailer + 1);
  return 2;
}

/// Emits "<magic> v2\n<body>crc32c <hex>\n".
void write_document(std::ostream& os, const std::string& magic,
                    const std::string& body) {
  os << magic << " v2\n" << body << "crc32c " << crc_hex(persist::crc32c(body))
     << '\n';
}

}  // namespace

void write_clustering(std::ostream& os, const Clustering& c) {
  std::ostringstream body;
  body << "k " << c.k << '\n';
  body << "rounds " << c.election_rounds << '\n';
  body << "nodes " << c.head_of.size() << '\n';
  body << "heads " << c.heads.size();
  for (NodeId h : c.heads) body << ' ' << h;
  body << '\n';
  for (NodeId v = 0; v < c.head_of.size(); ++v) {
    body << c.head_of[v] << ' ' << c.dist_to_head[v] << '\n';
  }
  write_document(os, "khop-clustering", std::move(body).str());
}

Clustering read_clustering(std::istream& is) {
  Source src(slurp(is), "clustering");
  open_document(src, "khop-clustering");
  Clustering c;
  src.expect("k");
  const std::uint64_t k = src.number("k");
  if (k < 1 || k > kUnreachable) src.fail("k out of range");
  c.k = static_cast<Hops>(k);
  src.expect("rounds");
  c.election_rounds = static_cast<std::size_t>(src.number("rounds"));
  src.expect("nodes");
  const std::uint64_t n = src.number("node count");
  if (n == 0 || n > kInvalidNode) src.fail("node count out of range");
  src.expect("heads");
  const std::uint64_t head_count = src.number("head count");
  if (head_count == 0 || head_count > n) src.fail("head count out of range");
  c.heads.reserve(static_cast<std::size_t>(head_count));
  for (std::uint64_t i = 0; i < head_count; ++i) {
    const std::uint64_t h = src.number("head id");
    if (h >= n) src.fail("head id " + std::to_string(h) + " out of range");
    if (!c.heads.empty() && h <= c.heads.back()) {
      src.fail("head id " + std::to_string(h) +
               " duplicates or reorders the head list");
    }
    c.heads.push_back(static_cast<NodeId>(h));
  }
  c.head_of.resize(static_cast<std::size_t>(n));
  c.dist_to_head.resize(static_cast<std::size_t>(n));
  c.cluster_of.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const std::uint64_t head = src.number("head_of");
    const std::uint64_t dist = src.number("dist_to_head");
    const auto it = std::lower_bound(c.heads.begin(), c.heads.end(), head);
    if (it == c.heads.end() || *it != head) {
      src.fail("node " + std::to_string(v) + " affiliated to non-head " +
               std::to_string(head));
    }
    if (dist > c.k || ((head == v) != (dist == 0))) {
      src.fail("node " + std::to_string(v) + " has head distance " +
               std::to_string(dist) + " (k = " + std::to_string(c.k) + ")");
    }
    c.head_of[v] = static_cast<NodeId>(head);
    c.dist_to_head[v] = static_cast<Hops>(dist);
    c.cluster_of[v] =
        static_cast<std::uint32_t>(std::distance(c.heads.begin(), it));
  }
  src.done();
  return c;
}

void write_backbone(std::ostream& os, const Backbone& b) {
  std::ostringstream body;
  body << "pipeline " << static_cast<int>(b.pipeline) << '\n';
  body << "spec " << static_cast<int>(b.spec.neighbor_rule) << ' '
       << static_cast<int>(b.spec.gateway) << ' '
       << static_cast<int>(b.spec.lmst_keep) << '\n';
  body << "heads " << b.heads.size();
  for (NodeId h : b.heads) body << ' ' << h;
  body << '\n';
  body << "gateways " << b.gateways.size();
  for (NodeId g : b.gateways) body << ' ' << g;
  body << '\n';
  body << "links " << b.virtual_links.size() << '\n';
  for (const auto& [u, v] : b.virtual_links) body << u << ' ' << v << '\n';
  write_document(os, "khop-backbone", std::move(body).str());
}

Backbone read_backbone(std::istream& is) {
  Source src(slurp(is), "backbone");
  open_document(src, "khop-backbone");
  Backbone b;
  src.expect("pipeline");
  const std::uint64_t pipeline = src.number("pipeline");
  if (pipeline > static_cast<std::uint64_t>(Pipeline::kGmst)) {
    src.fail("unknown pipeline " + std::to_string(pipeline));
  }
  b.pipeline = static_cast<Pipeline>(pipeline);
  src.expect("spec");
  const std::uint64_t rule = src.number("neighbor rule");
  const std::uint64_t gw = src.number("gateway algorithm");
  const std::uint64_t keep = src.number("lmst keep rule");
  if (rule > 2 || gw > 2 || keep > 1) src.fail("spec value out of range");
  b.spec.neighbor_rule = static_cast<NeighborRule>(rule);
  b.spec.gateway = static_cast<GatewayAlgorithm>(gw);
  b.spec.lmst_keep = static_cast<LmstKeepRule>(keep);

  src.expect("heads");
  const std::uint64_t head_count = src.number("head count");
  b.heads.reserve(static_cast<std::size_t>(head_count));
  for (std::uint64_t i = 0; i < head_count; ++i) {
    const std::uint64_t h = src.number("head id");
    if (h > kInvalidNode) src.fail("head id out of range");
    if (!b.heads.empty() && h <= b.heads.back()) {
      src.fail("head id " + std::to_string(h) +
               " duplicates or reorders the head list");
    }
    b.heads.push_back(static_cast<NodeId>(h));
  }
  src.expect("gateways");
  const std::uint64_t gw_count = src.number("gateway count");
  b.gateways.reserve(static_cast<std::size_t>(gw_count));
  for (std::uint64_t i = 0; i < gw_count; ++i) {
    const std::uint64_t g = src.number("gateway id");
    if (g > kInvalidNode) src.fail("gateway id out of range");
    if (!b.gateways.empty() && g <= b.gateways.back()) {
      src.fail("gateway id " + std::to_string(g) +
               " duplicates or reorders the gateway list");
    }
    if (std::binary_search(b.heads.begin(), b.heads.end(),
                           static_cast<NodeId>(g))) {
      src.fail("gateway " + std::to_string(g) + " is also a head");
    }
    b.gateways.push_back(static_cast<NodeId>(g));
  }
  src.expect("links");
  const std::uint64_t link_count = src.number("link count");
  b.virtual_links.reserve(static_cast<std::size_t>(link_count));
  for (std::uint64_t i = 0; i < link_count; ++i) {
    const std::uint64_t u = src.number("link endpoint");
    const std::uint64_t v = src.number("link endpoint");
    if (!std::binary_search(b.heads.begin(), b.heads.end(),
                            static_cast<NodeId>(u)) ||
        !std::binary_search(b.heads.begin(), b.heads.end(),
                            static_cast<NodeId>(v)) ||
        u == v) {
      src.fail("virtual link {" + std::to_string(u) + ", " +
               std::to_string(v) + "} does not join two distinct heads");
    }
    b.virtual_links.emplace_back(static_cast<NodeId>(u),
                                 static_cast<NodeId>(v));
  }
  src.done();
  return b;
}

}  // namespace khop
