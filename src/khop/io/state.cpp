#include "khop/io/state.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

#include "khop/common/assert.hpp"
#include "khop/common/error.hpp"

namespace khop {

namespace {

void expect_tag(std::istream& is, const std::string& want) {
  std::string got;
  if (!(is >> got) || got != want) {
    throw InvalidArgument("state: expected tag '" + want + "', got '" + got +
                          "'");
  }
}

}  // namespace

void write_clustering(std::ostream& os, const Clustering& c) {
  os << "khop-clustering v1\n";
  os << "k " << c.k << '\n';
  os << "rounds " << c.election_rounds << '\n';
  os << "nodes " << c.head_of.size() << '\n';
  os << "heads " << c.heads.size();
  for (NodeId h : c.heads) os << ' ' << h;
  os << '\n';
  for (NodeId v = 0; v < c.head_of.size(); ++v) {
    os << c.head_of[v] << ' ' << c.dist_to_head[v] << '\n';
  }
}

Clustering read_clustering(std::istream& is) {
  expect_tag(is, "khop-clustering");
  expect_tag(is, "v1");
  Clustering c;
  std::size_t n = 0, head_count = 0;
  expect_tag(is, "k");
  if (!(is >> c.k) || c.k < 1) {
    throw InvalidArgument("state: bad k");
  }
  expect_tag(is, "rounds");
  if (!(is >> c.election_rounds)) {
    throw InvalidArgument("state: bad rounds");
  }
  expect_tag(is, "nodes");
  if (!(is >> n) || n == 0) {
    throw InvalidArgument("state: bad node count");
  }
  expect_tag(is, "heads");
  if (!(is >> head_count) || head_count == 0 || head_count > n) {
    throw InvalidArgument("state: bad head count");
  }
  c.heads.resize(head_count);
  for (auto& h : c.heads) {
    if (!(is >> h) || h >= n) throw InvalidArgument("state: bad head id");
  }
  if (!std::is_sorted(c.heads.begin(), c.heads.end())) {
    throw InvalidArgument("state: heads not sorted");
  }
  c.head_of.resize(n);
  c.dist_to_head.resize(n);
  c.cluster_of.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    if (!(is >> c.head_of[v] >> c.dist_to_head[v])) {
      throw InvalidArgument("state: truncated node rows");
    }
    const auto it =
        std::lower_bound(c.heads.begin(), c.heads.end(), c.head_of[v]);
    if (it == c.heads.end() || *it != c.head_of[v]) {
      throw InvalidArgument("state: head_of references a non-head");
    }
    c.cluster_of[v] =
        static_cast<std::uint32_t>(std::distance(c.heads.begin(), it));
  }
  return c;
}

void write_backbone(std::ostream& os, const Backbone& b) {
  os << "khop-backbone v1\n";
  os << "pipeline " << static_cast<int>(b.pipeline) << '\n';
  os << "spec " << static_cast<int>(b.spec.neighbor_rule) << ' '
     << static_cast<int>(b.spec.gateway) << ' '
     << static_cast<int>(b.spec.lmst_keep) << '\n';
  os << "heads " << b.heads.size();
  for (NodeId h : b.heads) os << ' ' << h;
  os << '\n';
  os << "gateways " << b.gateways.size();
  for (NodeId g : b.gateways) os << ' ' << g;
  os << '\n';
  os << "links " << b.virtual_links.size() << '\n';
  for (const auto& [u, v] : b.virtual_links) os << u << ' ' << v << '\n';
}

Backbone read_backbone(std::istream& is) {
  expect_tag(is, "khop-backbone");
  expect_tag(is, "v1");
  Backbone b;
  int pipeline = 0, rule = 0, gw = 0, keep = 0;
  expect_tag(is, "pipeline");
  if (!(is >> pipeline) || pipeline < 0 ||
      pipeline > static_cast<int>(Pipeline::kGmst)) {
    throw InvalidArgument("state: bad pipeline");
  }
  b.pipeline = static_cast<Pipeline>(pipeline);
  expect_tag(is, "spec");
  if (!(is >> rule >> gw >> keep) || rule < 0 || rule > 2 || gw < 0 ||
      gw > 2 || keep < 0 || keep > 1) {
    throw InvalidArgument("state: bad spec");
  }
  b.spec.neighbor_rule = static_cast<NeighborRule>(rule);
  b.spec.gateway = static_cast<GatewayAlgorithm>(gw);
  b.spec.lmst_keep = static_cast<LmstKeepRule>(keep);

  std::size_t count = 0;
  expect_tag(is, "heads");
  if (!(is >> count)) throw InvalidArgument("state: bad heads count");
  b.heads.resize(count);
  for (auto& h : b.heads) {
    if (!(is >> h)) throw InvalidArgument("state: truncated heads");
  }
  expect_tag(is, "gateways");
  if (!(is >> count)) throw InvalidArgument("state: bad gateway count");
  b.gateways.resize(count);
  for (auto& g : b.gateways) {
    if (!(is >> g)) throw InvalidArgument("state: truncated gateways");
  }
  expect_tag(is, "links");
  if (!(is >> count)) throw InvalidArgument("state: bad link count");
  b.virtual_links.resize(count);
  for (auto& [u, v] : b.virtual_links) {
    if (!(is >> u >> v)) throw InvalidArgument("state: truncated links");
  }
  if (!std::is_sorted(b.heads.begin(), b.heads.end()) ||
      !std::is_sorted(b.gateways.begin(), b.gateways.end())) {
    throw InvalidArgument("state: backbone vectors not sorted");
  }
  return b;
}

}  // namespace khop
