#include "khop/io/export.hpp"

#include <istream>
#include <limits>
#include <ostream>

#include "khop/common/assert.hpp"
#include "khop/graph/spatial_grid.hpp"

namespace khop {

void write_dot(std::ostream& os, const AdHocNetwork& net,
               const Clustering& c, const Backbone& b) {
  const auto roles = b.roles(net.num_nodes());

  // Backbone edges: physical edges with both endpoints in the CDS.
  const auto mask = b.cds_mask(net.num_nodes());

  os << "graph khop {\n"
     << "  // " << net.num_nodes() << " nodes, radius " << net.radius
     << ", k = " << c.k << ", pipeline " << pipeline_name(b.pipeline)
     << "\n"
     << "  node [shape=circle, fixedsize=true, width=0.25, fontsize=8];\n";
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    os << "  n" << v << " [pos=\"" << net.positions[v].x << ','
       << net.positions[v].y << "!\"";
    if (roles[v] == NodeRole::kClusterhead) {
      os << ", shape=doublecircle, style=filled, fillcolor=gold";
    } else if (roles[v] == NodeRole::kGateway) {
      os << ", style=filled, fillcolor=lightblue";
    }
    os << "];\n";
  }
  for (NodeId u = 0; u < net.num_nodes(); ++u) {
    for (NodeId v : net.graph.neighbors(u)) {
      if (u >= v) continue;
      os << "  n" << u << " -- n" << v;
      if (mask[u] && mask[v]) os << " [penwidth=2.2]";
      os << ";\n";
    }
  }
  os << "}\n";
}

void write_layout(std::ostream& os, const AdHocNetwork& net,
                  const Clustering& c, const Backbone& b) {
  const auto roles = b.roles(net.num_nodes());
  os << "# id x y role cluster dist_to_head\n";
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    os << v << ' ' << net.positions[v].x << ' ' << net.positions[v].y << ' '
       << static_cast<int>(roles[v]) << ' ' << c.cluster_of[v] << ' '
       << c.dist_to_head[v] << '\n';
  }
}

void write_network(std::ostream& os, const AdHocNetwork& net) {
  // max_digits10 makes the text round-trip lossless for doubles.
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << net.num_nodes() << ' ' << net.radius << ' ' << net.field.side
     << '\n';
  for (const Point2& p : net.positions) {
    os << p.x << ' ' << p.y << '\n';
  }
  os.precision(old_precision);
}

AdHocNetwork read_network(std::istream& is) {
  AdHocNetwork net;
  std::size_t n = 0;
  if (!(is >> n >> net.radius >> net.field.side)) {
    throw InvalidArgument("read_network: malformed header");
  }
  KHOP_REQUIRE(n >= 1, "read_network: empty network");
  KHOP_REQUIRE(net.radius > 0.0 && net.field.side > 0.0,
               "read_network: non-positive radius or field");
  net.positions.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(is >> net.positions[i].x >> net.positions[i].y)) {
      throw InvalidArgument("read_network: truncated position list");
    }
  }
  net.requested_nodes = n;
  net.rebuild_graph();
  return net;
}

}  // namespace khop
