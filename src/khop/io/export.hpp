/// \file export.hpp
/// Interchange formats: Graphviz DOT and plain-text layouts, so networks and
/// backbones can be plotted (the paper's Figure 4 style) or re-loaded.
#pragma once

#include <iosfwd>
#include <string>

#include "khop/cluster/clustering.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/net/network.hpp"

namespace khop {

/// Graphviz DOT of the network with roles: clusterheads as doublecircles,
/// gateways filled, members plain; backbone virtual-link paths are not drawn
/// (the physical edges are), but backbone edges are bolded.
void write_dot(std::ostream& os, const AdHocNetwork& net,
               const Clustering& c, const Backbone& b);

/// Plain layout: one line per node, "id x y role cluster dist_to_head"
/// (role: 0 member, 1 gateway, 2 clusterhead). Gnuplot-friendly.
void write_layout(std::ostream& os, const AdHocNetwork& net,
                  const Clustering& c, const Backbone& b);

/// Serializes a network: header "n radius side", then one "x y" line per
/// node. Edges are implied (unit-disk).
void write_network(std::ostream& os, const AdHocNetwork& net);

/// Reads the write_network format back. Throws InvalidArgument on malformed
/// input. The graph is rebuilt from positions and radius.
AdHocNetwork read_network(std::istream& is);

}  // namespace khop
