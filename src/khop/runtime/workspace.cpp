#include "khop/runtime/workspace.hpp"

namespace khop {

Workspace& tls_workspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace khop
