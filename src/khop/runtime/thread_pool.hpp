/// \file thread_pool.hpp
/// Fixed-size worker pool used by the Monte-Carlo experiment harness.
///
/// Design notes (per the C++ Core Guidelines concurrency rules): workers are
/// std::jthread so destruction joins automatically; tasks capture by value or
/// own their state (no dangling references across threads); completion is
/// tracked with a counter + condition variable rather than futures to keep
/// the hot path allocation-light.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace khop {

class ThreadPool {
 public:
  /// \p num_threads == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const noexcept { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw; wrap user code appropriately.
  void submit(std::function<void()> task);

  /// Runs body(lo, hi) over the static contiguous blocks of [0, count)
  /// (block c of C is [count*c/C, count*(c+1)/C)), blocking until done.
  /// Unlike per-task submit, the whole head of blocks is enqueued under one
  /// lock acquisition and published with a single notify_all - at small
  /// per-block cost (the n ~ 8000 engine break-even) the submit path was
  /// dominated by lock/notify traffic, one round trip per block.
  void run_blocks(std::size_t count,
                  const std::function<void(std::size_t, std::size_t)>& body);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + running
  bool stopping_ = false;
  std::vector<std::jthread> workers_;

  void worker_loop();
};

/// Runs fn(i) for i in [0, count) across \p pool, blocking until done.
/// Static block partitioning (via run_blocks): deterministic work assignment
/// (results must not depend on scheduling anyway - callers write to disjoint
/// slots).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// parallel_for for fallible bodies: an exception thrown by fn ends its
/// block (the remaining indices of that block are skipped, as in a serial
/// loop) and is captured with its index; the one with the LOWEST index is
/// rethrown on the calling thread after every task has finished — the same
/// exception a serial ascending loop would surface, independent of
/// scheduling, since the globally first throwing index is necessarily the
/// first thrower within its own ascending block. (Plain parallel_for lets
/// an exception escape a worker and terminate.)
void parallel_for_throwing(ThreadPool& pool, std::size_t count,
                           const std::function<void(std::size_t)>& fn);

}  // namespace khop
