/// \file workspace.hpp
/// Shared reusable-scratch subsystem for the hot paths across graph, cluster,
/// gateway, sim and exp layers.
///
/// A Workspace bundles every per-thread scratch structure the pipeline
/// kernels need, so one object threaded through a call tree eliminates all
/// transient heap allocation. The API contract:
///
///  * Epoch invalidation - scratch results (BfsScratch queries, DistCache
///    rows) are valid only until the next kernel call that reuses the same
///    workspace. Kernels never hold workspace-backed views across calls;
///    their outputs are plain owned containers.
///  * Thread affinity - a Workspace is NOT thread-safe. Use one per thread;
///    tls_workspace() hands out a lazily-created thread-local instance (this
///    is what the allocating convenience wrappers and run_trials use).
///  * Growth only - buffers grow to the largest graph seen and are retained,
///    so steady-state reuse is allocation-free.
#pragma once

#include <cstdint>
#include <vector>

#include "khop/common/types.hpp"
#include "khop/graph/bfs_scratch.hpp"
#include "khop/graph/spatial_grid.hpp"

namespace khop {

/// Epoch-stamped per-node cache of bounded-distance rows, reused across
/// calls (rows keep their capacity; begin() invalidates contents in O(1)
/// amortized). Backs the krishna_kclusters ball cache.
class DistCache {
 public:
  /// Opens a fresh cache generation for an n-node graph.
  void begin(std::size_t n) {
    if (stamp_.size() < n) {
      stamp_.resize(n, 0);
      rows_.resize(n);
    }
    if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 0;
    }
    ++epoch_;
  }

  bool contains(NodeId v) const noexcept { return stamp_[v] == epoch_; }

  /// Row for \p v, marked present in the current generation. Contents are
  /// whatever the caller last stored this generation (stale capacity reused).
  std::vector<Hops>& row(NodeId v) {
    stamp_[v] = epoch_;
    return rows_[v];
  }

  const std::vector<Hops>& row(NodeId v) const { return rows_[v]; }

 private:
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::vector<Hops>> rows_;
};

/// Epoch-stamped boolean set over dense indices: set/test are O(1) and
/// begin() clears in O(1) amortized (no per-generation fill). Backs the
/// per-cluster coverage marks of the Wu-Lou neighbor rule.
class EpochFlags {
 public:
  /// Opens a fresh (all-false) generation over indices [0, n).
  void begin(std::size_t n) {
    if (stamp_.size() < n) stamp_.resize(n, 0);
    if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 0;
    }
    ++epoch_;
  }

  void set(std::size_t i) noexcept { stamp_[i] = epoch_; }
  bool test(std::size_t i) const noexcept { return stamp_[i] == epoch_; }

 private:
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> stamp_;
};

/// The per-thread scratch bundle threaded through the hot paths.
struct Workspace {
  /// Primary BFS scratch (clustering election, neighbor rules, floods).
  BfsScratch bfs;
  /// Secondary scratch for kernels that interleave two BFS result sets.
  BfsScratch bfs2;
  /// Bounded-distance ball cache (krishna_kclusters).
  DistCache ball_cache;
  /// Epoch-stamped flag set (neighbor-rule coverage marks).
  EpochFlags flags;
  /// General-purpose node id buffer.
  std::vector<NodeId> node_buf;
  /// Spatial grid reused across topology builds (Monte-Carlo trials of one
  /// configuration rebuild it in place instead of re-allocating).
  SpatialGrid grid;
};

/// Lazily-created workspace owned by the calling thread. Reused across calls
/// for the life of the thread; safe under ThreadPool workers because each
/// worker sees its own instance.
Workspace& tls_workspace();

}  // namespace khop
