#include "khop/runtime/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "khop/common/assert.hpp"
#include "khop/obs/trace.hpp"

namespace khop {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  // jthread destructors join.
}

void ThreadPool::submit(std::function<void()> task) {
  KHOP_REQUIRE(static_cast<bool>(task), "empty task");
  {
    std::scoped_lock lock(mu_);
    KHOP_REQUIRE(!stopping_, "submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_work_.notify_one();
}

void ThreadPool::run_blocks(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  KHOP_REQUIRE(static_cast<bool>(body), "empty block body");
  if (count == 0) return;
  const std::size_t chunks = std::min(count, num_threads() * 4);
  {
    std::scoped_lock lock(mu_);
    KHOP_REQUIRE(!stopping_, "submit after shutdown");
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = count * c / chunks;
      const std::size_t hi = count * (c + 1) / chunks;
      // &body stays valid: every block completes before wait_idle returns.
      queue_.push_back([lo, hi, &body] { body(lo, hi); });
      ++in_flight_;
    }
  }
  cv_work_.notify_all();
  wait_idle();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_work_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      // One span per dequeued task on the worker's own trace row; the
      // submit/merge work stays attributed to the caller's row.
      obs::Span task_span("pool/task");
      task();
    }
    {
      std::scoped_lock lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  pool.run_blocks(count, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

void parallel_for_throwing(ThreadPool& pool, std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  std::mutex mu;
  std::size_t first_index = count;
  std::exception_ptr first;
  pool.run_blocks(count, [&](std::size_t lo, std::size_t hi) {
    // One handler per block: a throw ends the block at its index (serial
    // ascending-loop semantics) instead of paying a try frame per element.
    std::size_t i = lo;
    try {
      for (; i < hi; ++i) fn(i);
    } catch (...) {
      std::scoped_lock lock(mu);
      if (i < first_index) {
        first_index = i;
        first = std::current_exception();
      }
    }
  });
  if (first) std::rethrow_exception(first);
}

}  // namespace khop
