#include "khop/net/network.hpp"

#include "khop/graph/spatial_grid.hpp"

namespace khop {

void AdHocNetwork::rebuild_graph() {
  graph = build_unit_disk_graph(positions, radius);
}

}  // namespace khop
