/// \file mobility.hpp
/// Random-waypoint mobility. The paper defers movement-sensitive maintenance
/// to future work but motivates small k by topology churn; the dynamics
/// examples and benches use this model to drive the maintenance policies of
/// khop/dynamic.
#pragma once

#include <vector>

#include "khop/common/rng.hpp"
#include "khop/net/network.hpp"

namespace khop {

struct RandomWaypointConfig {
  double min_speed = 1.0;   ///< field units per tick
  double max_speed = 5.0;
  double pause_ticks = 2.0; ///< mean pause at a waypoint
};

/// Per-node waypoint state.
class RandomWaypointModel {
 public:
  RandomWaypointModel(const RandomWaypointConfig& cfg, std::size_t num_nodes,
                      const Field& field, Rng& rng);

  /// Advances every node by one tick and updates net.positions (the caller
  /// decides when to rebuild the graph; rebuilding every tick is exact,
  /// rebuilding every few ticks models beacon latency).
  void step(AdHocNetwork& net, Rng& rng);

 private:
  struct NodeState {
    Point2 target;
    double speed = 0.0;
    double pause_left = 0.0;
  };

  RandomWaypointConfig cfg_;
  Field field_;
  std::vector<NodeState> states_;

  void pick_waypoint(NodeState& st, Rng& rng) const;
};

/// One link appearing (`up`) or disappearing between two topology samples.
/// Endpoints are ordered u < v.
struct LinkFlip {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  bool up = false;
};

/// Diffs two topologies over the same id space into the link flips that turn
/// \p before into \p after: the set difference of the edge lists, downs
/// first, each half sorted lexicographically. This is what a beaconing layer
/// would report between samples; feed it to khop/dynamic (e.g. ChurnEngine)
/// to drive maintenance from mobility.
/// \pre before.num_nodes() == after.num_nodes()
std::vector<LinkFlip> diff_topology(const Graph& before, const Graph& after);

/// Gauss-Markov mobility: per-node speed and direction evolve as first-order
/// autoregressive processes, producing temporally correlated motion (no
/// sharp waypoint turns). alpha = 1 is straight-line motion, alpha = 0 is
/// memoryless Brownian-like drift. Nodes reflect off field borders.
struct GaussMarkovConfig {
  double alpha = 0.75;        ///< memory level in [0, 1]
  double mean_speed = 3.0;    ///< field units per tick
  double speed_sigma = 1.0;   ///< randomness fed into the speed process
  double dir_sigma = 0.5;     ///< randomness fed into the direction (rad)
};

class GaussMarkovModel {
 public:
  GaussMarkovModel(const GaussMarkovConfig& cfg, std::size_t num_nodes,
                   Rng& rng);

  /// Advances every node one tick, updating net.positions.
  void step(AdHocNetwork& net, Rng& rng);

 private:
  struct NodeState {
    double speed = 0.0;
    double direction = 0.0;  ///< radians
  };

  GaussMarkovConfig cfg_;
  std::vector<NodeState> states_;
};

}  // namespace khop
