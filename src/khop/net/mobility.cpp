#include "khop/net/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "khop/common/assert.hpp"

namespace khop {

namespace {

/// Standard-normal draw via Box-Muller (deterministic in rng).
double gaussian(Rng& rng) {
  const double u1 = 1.0 - rng.uniform();  // (0, 1]
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace

std::vector<LinkFlip> diff_topology(const Graph& before, const Graph& after) {
  KHOP_REQUIRE(before.num_nodes() == after.num_nodes(),
               "diff_topology requires one id space");
  const auto old_edges = before.edge_list();  // sorted (min,max) pairs
  const auto new_edges = after.edge_list();
  std::vector<LinkFlip> flips;
  std::vector<LinkFlip> ups;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < old_edges.size() || j < new_edges.size()) {
    if (j == new_edges.size() ||
        (i < old_edges.size() && old_edges[i] < new_edges[j])) {
      flips.push_back({old_edges[i].first, old_edges[i].second, false});
      ++i;
    } else if (i == old_edges.size() || new_edges[j] < old_edges[i]) {
      ups.push_back({new_edges[j].first, new_edges[j].second, true});
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  flips.insert(flips.end(), ups.begin(), ups.end());
  return flips;
}

GaussMarkovModel::GaussMarkovModel(const GaussMarkovConfig& cfg,
                                   std::size_t num_nodes, Rng& rng)
    : cfg_(cfg), states_(num_nodes) {
  KHOP_REQUIRE(cfg.alpha >= 0.0 && cfg.alpha <= 1.0, "alpha must be in [0,1]");
  KHOP_REQUIRE(cfg.mean_speed > 0.0, "mean speed must be positive");
  for (auto& st : states_) {
    st.speed = cfg.mean_speed;
    st.direction = rng.uniform(0.0, 2.0 * std::numbers::pi);
  }
}

void GaussMarkovModel::step(AdHocNetwork& net, Rng& rng) {
  KHOP_REQUIRE(net.positions.size() == states_.size(),
               "network/model size mismatch");
  const double a = cfg_.alpha;
  const double root = std::sqrt(1.0 - a * a);
  for (NodeId i = 0; i < states_.size(); ++i) {
    NodeState& st = states_[i];
    st.speed = a * st.speed + (1.0 - a) * cfg_.mean_speed +
               root * cfg_.speed_sigma * gaussian(rng);
    st.speed = std::max(0.0, st.speed);
    // Mean direction is the current one: direction drifts, it does not
    // revert, which is what keeps trajectories smooth.
    st.direction += root * cfg_.dir_sigma * gaussian(rng);

    Point2& p = net.positions[i];
    p.x += st.speed * std::cos(st.direction);
    p.y += st.speed * std::sin(st.direction);
    // Reflect off borders.
    if (p.x < 0.0) {
      p.x = -p.x;
      st.direction = std::numbers::pi - st.direction;
    } else if (p.x > net.field.side) {
      p.x = 2.0 * net.field.side - p.x;
      st.direction = std::numbers::pi - st.direction;
    }
    if (p.y < 0.0) {
      p.y = -p.y;
      st.direction = -st.direction;
    } else if (p.y > net.field.side) {
      p.y = 2.0 * net.field.side - p.y;
      st.direction = -st.direction;
    }
    KHOP_ASSERT(net.field.contains(p), "reflection left the field");
  }
}

RandomWaypointModel::RandomWaypointModel(const RandomWaypointConfig& cfg,
                                         std::size_t num_nodes,
                                         const Field& field, Rng& rng)
    : cfg_(cfg), field_(field), states_(num_nodes) {
  KHOP_REQUIRE(cfg.min_speed > 0.0 && cfg.max_speed >= cfg.min_speed,
               "bad speed range");
  for (auto& st : states_) pick_waypoint(st, rng);
}

void RandomWaypointModel::pick_waypoint(NodeState& st, Rng& rng) const {
  st.target = {rng.uniform(0.0, field_.side), rng.uniform(0.0, field_.side)};
  st.speed = rng.uniform(cfg_.min_speed, cfg_.max_speed);
  st.pause_left = 0.0;
}

void RandomWaypointModel::step(AdHocNetwork& net, Rng& rng) {
  KHOP_REQUIRE(net.positions.size() == states_.size(),
               "network/model size mismatch");
  for (NodeId i = 0; i < states_.size(); ++i) {
    NodeState& st = states_[i];
    if (st.pause_left > 0.0) {
      st.pause_left -= 1.0;
      continue;
    }
    Point2& p = net.positions[i];
    const double dx = st.target.x - p.x;
    const double dy = st.target.y - p.y;
    const double dist = std::sqrt(dx * dx + dy * dy);
    if (dist <= st.speed) {
      p = st.target;
      // Exponential-ish pause: mean cfg_.pause_ticks, deterministic in rng.
      st.pause_left = cfg_.pause_ticks > 0.0
                          ? -cfg_.pause_ticks * std::log(1.0 - rng.uniform())
                          : 0.0;
      pick_waypoint(st, rng);
    } else {
      p.x += st.speed * dx / dist;
      p.y += st.speed * dy / dist;
    }
  }
}

}  // namespace khop
