/// \file network.hpp
/// The simulated ad hoc network: node positions + transmission radius + the
/// induced unit-disk graph. This is the substrate every paper algorithm runs
/// on ("we assume all nodes have the same transmission range... an ideal MAC
/// layer protocol" - paper section 4).
#pragma once

#include <cstdint>
#include <vector>

#include "khop/geom/point.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

/// How a generated topology satisfied the connectivity requirement.
enum class ConnectivityOutcome : std::uint8_t {
  kConnectedFirstTry,   ///< first placement was connected
  kConnectedAfterRetry, ///< a retry produced a connected placement
  kLargestComponent,    ///< fell back to the largest connected component
};

struct AdHocNetwork {
  Field field;
  double radius = 0.0;
  std::vector<Point2> positions;  ///< indexed by NodeId
  Graph graph;                    ///< unit-disk graph at `radius`

  // Generation provenance.
  ConnectivityOutcome connectivity = ConnectivityOutcome::kConnectedFirstTry;
  std::size_t placement_attempts = 1;
  std::size_t requested_nodes = 0;  ///< may exceed graph.num_nodes() when the
                                    ///< LCC fallback dropped nodes

  std::size_t num_nodes() const noexcept { return graph.num_nodes(); }

  /// Rebuilds the unit-disk graph from the current positions (after moves).
  /// To rebuild through an arbitrary radio model instead, see
  /// khop/radio/network_link.hpp (keeps this module radio-agnostic).
  void rebuild_graph();
};

}  // namespace khop
