#include "khop/net/energy.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"

namespace khop {

EnergyState::EnergyState(const EnergyConfig& cfg, std::size_t num_nodes)
    : cfg_(cfg), residual_(num_nodes, cfg.initial) {
  KHOP_REQUIRE(cfg.initial > 0.0, "initial energy must be positive");
}

double EnergyState::residual(NodeId u) const {
  KHOP_REQUIRE(u < residual_.size(), "node id out of range");
  return residual_[u];
}

std::size_t EnergyState::alive_count() const {
  return static_cast<std::size_t>(
      std::count_if(residual_.begin(), residual_.end(),
                    [](double e) { return e > 0.0; }));
}

void EnergyState::apply_epoch(const std::vector<NodeRole>& roles) {
  KHOP_REQUIRE(roles.size() == residual_.size(), "role vector size mismatch");
  for (std::size_t i = 0; i < roles.size(); ++i) {
    double cost = cfg_.member_cost;
    if (roles[i] == NodeRole::kGateway) cost = cfg_.gateway_cost;
    if (roles[i] == NodeRole::kClusterhead) cost = cfg_.clusterhead_cost;
    residual_[i] = std::max(0.0, residual_[i] - cost);
  }
}

}  // namespace khop
