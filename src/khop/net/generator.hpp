/// \file generator.hpp
/// Random connected ad hoc network generation, parameterized exactly like the
/// paper's simulation: node count N in a 100x100 field and a target average
/// node degree D (the transmission radius is derived from D).
#pragma once

#include <cstddef>
#include <optional>

#include "khop/common/rng.hpp"
#include "khop/net/network.hpp"

namespace khop {

/// How the transmission radius is chosen for a target average degree.
enum class RadiusMode : std::uint8_t {
  kAnalytic,    ///< r = sqrt(D*A / (pi*(N-1))); ignores border loss
  kCalibrated,  ///< empirical bisection so the realized mean degree ~= D
};

struct GeneratorConfig {
  std::size_t num_nodes = 100;
  Field field{100.0};
  /// Target average degree (paper uses 6 and 10). Ignored when
  /// explicit_radius is set.
  double target_degree = 6.0;
  std::optional<double> explicit_radius;
  RadiusMode radius_mode = RadiusMode::kCalibrated;

  /// Theorem 1 requires a connected G: retry placements up to this many
  /// times, then (if allow_lcc_fallback) keep the largest connected
  /// component, else throw NotConnected.
  std::size_t max_placement_attempts = 200;
  bool allow_lcc_fallback = true;
};

struct Workspace;

/// Generates a network per \p cfg. Deterministic in (cfg, rng seed).
AdHocNetwork generate_network(const GeneratorConfig& cfg, Rng& rng);

/// Workspace-backed variant: the unit-disk build streams through ws.grid,
/// so Monte-Carlo trials of one configuration rebuild the grid in place
/// instead of re-allocating it per trial. Bit-identical to the plain
/// overload for the same (cfg, rng state).
AdHocNetwork generate_network(const GeneratorConfig& cfg, Rng& rng,
                              Workspace& ws);

}  // namespace khop
