/// \file energy.hpp
/// Residual-energy bookkeeping for the power-aware design of paper section
/// 3.3: clusterheads (and gateways) drain faster than plain members, and
/// residual energy can replace lowest-ID as the election priority so the
/// head role rotates.
#pragma once

#include <vector>

#include "khop/common/types.hpp"

namespace khop {

/// Role a node plays in the current backbone epoch.
enum class NodeRole : std::uint8_t { kMember, kGateway, kClusterhead };

struct EnergyConfig {
  double initial = 100.0;        ///< starting energy per node
  double member_cost = 0.1;      ///< per-epoch drain as plain member
  double gateway_cost = 0.5;     ///< per-epoch drain as gateway
  double clusterhead_cost = 1.0; ///< per-epoch drain as clusterhead
};

/// Tracks per-node residual energy across epochs.
class EnergyState {
 public:
  EnergyState(const EnergyConfig& cfg, std::size_t num_nodes);

  double residual(NodeId u) const;
  bool alive(NodeId u) const { return residual(u) > 0.0; }
  std::size_t alive_count() const;

  /// Applies one epoch of drain given each node's role.
  void apply_epoch(const std::vector<NodeRole>& roles);

  const EnergyConfig& config() const noexcept { return cfg_; }

 private:
  EnergyConfig cfg_;
  std::vector<double> residual_;
};

}  // namespace khop
