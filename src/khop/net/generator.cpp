#include "khop/net/generator.hpp"

#include "khop/common/assert.hpp"
#include "khop/common/error.hpp"
#include "khop/geom/degree_calibration.hpp"
#include "khop/geom/placement.hpp"
#include "khop/graph/components.hpp"
#include "khop/graph/spatial_grid.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {

AdHocNetwork generate_network(const GeneratorConfig& cfg, Rng& rng) {
  return generate_network(cfg, rng, tls_workspace());
}

AdHocNetwork generate_network(const GeneratorConfig& cfg, Rng& rng,
                              Workspace& ws) {
  KHOP_REQUIRE(cfg.num_nodes >= 2, "need at least two nodes");

  double radius = 0.0;
  if (cfg.explicit_radius) {
    KHOP_REQUIRE(*cfg.explicit_radius > 0.0, "radius must be positive");
    radius = *cfg.explicit_radius;
  } else if (cfg.radius_mode == RadiusMode::kAnalytic) {
    radius = analytic_radius(cfg.num_nodes, cfg.target_degree, cfg.field);
  } else {
    // Calibration gets its own child stream so placement draws below are
    // unaffected by how many probes calibration used.
    radius = calibrate_radius(cfg.num_nodes, cfg.target_degree, cfg.field,
                              rng.spawn(0x0ca11b));
  }

  AdHocNetwork net;
  net.field = cfg.field;
  net.radius = radius;
  net.requested_nodes = cfg.num_nodes;

  for (std::size_t attempt = 1; attempt <= cfg.max_placement_attempts;
       ++attempt) {
    net.positions = place_uniform(cfg.num_nodes, cfg.field, rng);
    net.graph = build_unit_disk_graph_streamed(net.positions, radius, ws.grid);
    net.placement_attempts = attempt;
    if (is_connected(net.graph)) {
      net.connectivity = attempt == 1
                             ? ConnectivityOutcome::kConnectedFirstTry
                             : ConnectivityOutcome::kConnectedAfterRetry;
      return net;
    }
  }

  if (!cfg.allow_lcc_fallback) {
    throw NotConnected(
        "generate_network: no connected placement within attempt budget");
  }
  // Keep the largest connected component of the final placement.
  const LargestComponent lc = largest_component(net.graph);
  std::vector<Point2> kept;
  kept.reserve(lc.original_ids.size());
  for (NodeId old_id : lc.original_ids) kept.push_back(net.positions[old_id]);
  net.positions = std::move(kept);
  net.graph = build_unit_disk_graph_streamed(net.positions, radius, ws.grid);
  net.connectivity = ConnectivityOutcome::kLargestComponent;
  KHOP_ASSERT(is_connected(net.graph), "LCC extraction must be connected");
  return net;
}

}  // namespace khop
