#include "khop/cluster/validate.hpp"

#include <sstream>

#include "khop/graph/bfs.hpp"

namespace khop {

std::string validate_clustering(const Graph& g, const Clustering& c,
                                const ClusteringChecks& checks) {
  const std::size_t n = g.num_nodes();
  std::ostringstream err;

  if (c.head_of.size() != n || c.dist_to_head.size() != n ||
      c.cluster_of.size() != n) {
    return "clustering vectors are not sized to the graph";
  }

  if (checks.require_total_membership) {
    for (NodeId v = 0; v < n; ++v) {
      if (c.head_of[v] == kInvalidNode) {
        err << "node " << v << " belongs to no cluster";
        return err.str();
      }
      if (c.cluster_of[v] >= c.heads.size() ||
          c.heads[c.cluster_of[v]] != c.head_of[v]) {
        err << "node " << v << " has inconsistent cluster index";
        return err.str();
      }
    }
    for (NodeId h : c.heads) {
      if (c.head_of[h] != h) {
        err << "head " << h << " is not its own head";
        return err.str();
      }
    }
  }

  // One BFS per head serves the remaining checks.
  std::vector<BfsTree> head_trees;
  head_trees.reserve(c.heads.size());
  for (NodeId h : c.heads) head_trees.push_back(bfs(g, h));

  if (checks.require_distance_consistency) {
    for (NodeId v = 0; v < n; ++v) {
      const auto& tree = head_trees[c.cluster_of[v]];
      if (tree.dist[v] != c.dist_to_head[v]) {
        err << "node " << v << " records distance " << c.dist_to_head[v]
            << " to head " << c.head_of[v] << " but BFS says " << tree.dist[v];
        return err.str();
      }
    }
  }

  if (checks.require_khop_dominating) {
    for (NodeId v = 0; v < n; ++v) {
      if (c.dist_to_head[v] > c.k) {
        err << "node " << v << " is " << c.dist_to_head[v]
            << " hops from its head; k = " << c.k;
        return err.str();
      }
    }
  }

  if (checks.require_khop_independent_heads) {
    for (std::size_t i = 0; i < c.heads.size(); ++i) {
      for (std::size_t j = i + 1; j < c.heads.size(); ++j) {
        const Hops d = head_trees[i].dist[c.heads[j]];
        if (d <= c.k) {
          err << "heads " << c.heads[i] << " and " << c.heads[j]
              << " are only " << d << " hops apart; k = " << c.k;
          return err.str();
        }
      }
    }
  }

  return {};
}

}  // namespace khop
