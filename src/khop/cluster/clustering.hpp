/// \file clustering.hpp
/// The paper's k-hop clustering (section 3): iterative lowest-priority
/// election in k-hop neighborhoods, producing clusterheads that form a k-hop
/// independent set and a k-hop dominating set, plus non-overlapping member
/// assignments.
///
/// This is the centralized reference implementation; khop/sim runs the same
/// algorithm as an actual message-passing protocol, and the test suite
/// asserts both produce identical results.
#pragma once

#include <cstdint>
#include <vector>

#include "khop/cluster/priority.hpp"
#include "khop/common/types.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

/// How a node that hears several clusterhead declarations picks its cluster
/// (paper section 3, options (1)-(3)).
enum class AffiliationRule : std::uint8_t {
  kIdBased,        ///< join the declaring head with the smallest id
  kDistanceBased,  ///< join the nearest declaring head (ties: smaller id)
  kSizeBased,      ///< join the currently smallest cluster (ties: distance,
                   ///< then id); greedy approximation of size balancing
};

/// Result of k-hop clustering. Clusters are non-overlapping: head_of is a
/// total function from nodes to heads.
struct Clustering {
  Hops k = 1;
  std::vector<NodeId> heads;       ///< ascending node ids
  std::vector<NodeId> head_of;     ///< node -> its clusterhead (self for heads)
  std::vector<Hops> dist_to_head;  ///< hop distance to own head (0 for heads)
  std::vector<std::uint32_t> cluster_of;  ///< node -> index into `heads`
  std::size_t election_rounds = 0;        ///< iterations until all joined

  bool is_head(NodeId v) const { return head_of[v] == v; }
  std::size_t num_clusters() const { return heads.size(); }

  /// Members of cluster \p c (including its head), ascending.
  std::vector<NodeId> cluster_members(std::uint32_t c) const;
};

struct Workspace;

/// Runs the iterative k-hop clustering over connected graph \p g.
/// \p priorities must be one strict-total-order key per node.
/// \pre k >= 1; g connected (checked: throws NotConnected)
Clustering khop_clustering(const Graph& g, Hops k,
                           const std::vector<PriorityKey>& priorities,
                           AffiliationRule rule = AffiliationRule::kIdBased);

/// Zero-allocation-hot-path variant: the election's bounded BFS runs reuse
/// \p ws (one workspace per thread; see khop/runtime/workspace.hpp). Output
/// is bit-identical to the overload above, which forwards here with the
/// calling thread's tls_workspace().
Clustering khop_clustering(const Graph& g, Hops k,
                           const std::vector<PriorityKey>& priorities,
                           AffiliationRule rule, Workspace& ws);

/// Convenience overload: lowest-ID priorities (the paper's configuration).
Clustering khop_clustering(const Graph& g, Hops k,
                           AffiliationRule rule = AffiliationRule::kIdBased);

}  // namespace khop
