#include "khop/cluster/clustering.hpp"

#include <algorithm>
#include <tuple>

#include "khop/common/assert.hpp"
#include "khop/common/error.hpp"
#include "khop/graph/components.hpp"
#include "khop/obs/trace.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {

std::vector<NodeId> Clustering::cluster_members(std::uint32_t c) const {
  KHOP_REQUIRE(c < heads.size(), "cluster index out of range");
  std::vector<NodeId> out;
  for (NodeId v = 0; v < cluster_of.size(); ++v) {
    if (cluster_of[v] == c) out.push_back(v);
  }
  return out;
}

namespace {

/// Candidate head heard by an undecided node in the current round.
struct Candidate {
  NodeId head = kInvalidNode;
  Hops dist = kUnreachable;
};

/// Picks among this round's candidates per the affiliation rule.
/// \p cluster_sizes maps head -> current member count (size-based rule).
NodeId pick_cluster(const std::vector<Candidate>& cands, AffiliationRule rule,
                    const std::vector<std::size_t>& cluster_sizes) {
  KHOP_ASSERT(!cands.empty(), "node heard no declarations");
  const Candidate* best = &cands.front();
  for (const Candidate& c : cands) {
    bool better = false;
    switch (rule) {
      case AffiliationRule::kIdBased:
        better = c.head < best->head;
        break;
      case AffiliationRule::kDistanceBased:
        better = std::tuple(c.dist, c.head) < std::tuple(best->dist, best->head);
        break;
      case AffiliationRule::kSizeBased:
        better = std::tuple(cluster_sizes[c.head], c.dist, c.head) <
                 std::tuple(cluster_sizes[best->head], best->dist, best->head);
        break;
    }
    if (better) best = &c;
  }
  return best->head;
}

}  // namespace

Clustering khop_clustering(const Graph& g, Hops k,
                           const std::vector<PriorityKey>& priorities,
                           AffiliationRule rule, Workspace& ws) {
  KHOP_REQUIRE(k >= 1, "k must be >= 1");
  KHOP_REQUIRE(priorities.size() == g.num_nodes(),
               "one priority key per node required");
  if (!is_connected(g)) {
    throw NotConnected("khop_clustering: input graph must be connected");
  }

  obs::Span span("cluster/elect");

  const std::size_t n = g.num_nodes();
  Clustering result;
  result.k = k;
  result.head_of.assign(n, kInvalidNode);
  result.dist_to_head.assign(n, kUnreachable);

  std::vector<bool> decided(n, false);
  std::size_t undecided_count = n;
  // cluster_sizes[head]: members assigned so far (head included), for the
  // size-based rule. Indexed by node id for simplicity.
  std::vector<std::size_t> cluster_sizes(n, 0);

  // Round-scoped buffers, hoisted so rounds reuse their capacity. `heard`
  // entries are cleared via `touched` rather than reconstructing n vectors
  // per round.
  std::vector<NodeId> winners;
  std::vector<std::vector<Candidate>> heard(n);
  std::vector<NodeId> touched;

  while (undecided_count > 0) {
    ++result.election_rounds;
    KHOP_ASSERT(result.election_rounds <= n, "election failed to make progress");

    // Phase A - declaration: an undecided node wins iff it holds the best
    // priority among *undecided* nodes within its k-hop neighborhood.
    // Distances are measured in the full graph G: decided nodes still relay.
    // The scratch's reached() set is exactly {v : dist <= k}, so scanning it
    // is equivalent to the full 0..n scan with unreachable-skips.
    winners.clear();
    for (NodeId u = 0; u < n; ++u) {
      if (decided[u]) continue;
      ws.bfs.run(g, u, k);
      bool best = true;
      for (NodeId v : ws.bfs.reached()) {
        if (v == u || decided[v]) continue;
        if (priorities[v] < priorities[u]) {
          best = false;
          break;
        }
      }
      if (best) winners.push_back(u);
    }
    KHOP_ASSERT(!winners.empty(), "no winner in a round");

    // Phase B - winners declare; undecided nodes within k hops collect the
    // declarations they hear this round. Each winner contributes at most one
    // candidate per node, so filling heard[v] in winner order matches the
    // reference implementation's per-v candidate order.
    for (NodeId w : winners) {
      decided[w] = true;
      --undecided_count;
      result.head_of[w] = w;
      result.dist_to_head[w] = 0;
      cluster_sizes[w] = 1;
      result.heads.push_back(w);

      ws.bfs.run(g, w, k);
      for (NodeId v : ws.bfs.reached()) {
        if (decided[v] || v == w) continue;
        if (heard[v].empty()) touched.push_back(v);
        heard[v].push_back({w, ws.bfs.dist(v)});
      }
    }

    // Same-round winners must be mutually > k hops apart; otherwise one of
    // them would have seen the other's better priority.
    for (NodeId w : winners) {
      KHOP_ASSERT(heard[w].empty(), "two same-round winners within k hops");
    }

    // Phase C - affiliation. Processing in ascending node id keeps the
    // size-based greedy deterministic.
    std::sort(touched.begin(), touched.end());
    for (NodeId v : touched) {
      KHOP_ASSERT(!decided[v] && !heard[v].empty(), "stale affiliation entry");
      const NodeId h = pick_cluster(heard[v], rule, cluster_sizes);
      decided[v] = true;
      --undecided_count;
      result.head_of[v] = h;
      result.dist_to_head[v] =
          std::find_if(heard[v].begin(), heard[v].end(),
                       [&](const Candidate& c) { return c.head == h; })
              ->dist;
      ++cluster_sizes[h];
      heard[v].clear();
    }
    touched.clear();
  }

  std::sort(result.heads.begin(), result.heads.end());
  result.cluster_of.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto it = std::lower_bound(result.heads.begin(), result.heads.end(),
                                     result.head_of[v]);
    KHOP_ASSERT(it != result.heads.end() && *it == result.head_of[v],
                "head_of references a non-head");
    result.cluster_of[v] =
        static_cast<std::uint32_t>(std::distance(result.heads.begin(), it));
  }
  span.arg("rounds", static_cast<std::int64_t>(result.election_rounds));
  span.arg("heads", static_cast<std::int64_t>(result.heads.size()));
  return result;
}

Clustering khop_clustering(const Graph& g, Hops k,
                           const std::vector<PriorityKey>& priorities,
                           AffiliationRule rule) {
  return khop_clustering(g, k, priorities, rule, tls_workspace());
}

Clustering khop_clustering(const Graph& g, Hops k, AffiliationRule rule) {
  return khop_clustering(g, k, make_priorities(g, PriorityRule::kLowestId),
                         rule);
}

}  // namespace khop
