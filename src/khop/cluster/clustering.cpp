#include "khop/cluster/clustering.hpp"

#include <algorithm>
#include <span>
#include <tuple>

#include "khop/common/assert.hpp"
#include "khop/common/error.hpp"
#include "khop/graph/components.hpp"
#include "khop/obs/trace.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {

std::vector<NodeId> Clustering::cluster_members(std::uint32_t c) const {
  KHOP_REQUIRE(c < heads.size(), "cluster index out of range");
  std::vector<NodeId> out;
  for (NodeId v = 0; v < cluster_of.size(); ++v) {
    if (cluster_of[v] == c) out.push_back(v);
  }
  return out;
}

namespace {

/// One declaration heard this round: undecided node \p v heard head \p head
/// at hop distance \p dist. The round's declarations live in one flat vector
/// (winner-major fill order, then stably grouped by v) instead of the former
/// vector-of-vectors `heard[v]` — at n = 10^6 the n vector headers alone
/// were 24 MB of zeroed memory per call.
struct Candidate {
  NodeId v = kInvalidNode;
  NodeId head = kInvalidNode;
  Hops dist = kUnreachable;
};

/// Picks among one node's candidates per the affiliation rule.
/// \p cluster_sizes maps head -> current member count (size-based rule only;
/// empty otherwise and never read).
NodeId pick_cluster(std::span<const Candidate> cands, AffiliationRule rule,
                    const std::vector<std::size_t>& cluster_sizes) {
  KHOP_ASSERT(!cands.empty(), "node heard no declarations");
  const Candidate* best = &cands.front();
  for (const Candidate& c : cands) {
    bool better = false;
    switch (rule) {
      case AffiliationRule::kIdBased:
        better = c.head < best->head;
        break;
      case AffiliationRule::kDistanceBased:
        better = std::tuple(c.dist, c.head) < std::tuple(best->dist, best->head);
        break;
      case AffiliationRule::kSizeBased:
        better = std::tuple(cluster_sizes[c.head], c.dist, c.head) <
                 std::tuple(cluster_sizes[best->head], best->dist, best->head);
        break;
    }
    if (better) best = &c;
  }
  return best->head;
}

}  // namespace

Clustering khop_clustering(const Graph& g, Hops k,
                           const std::vector<PriorityKey>& priorities,
                           AffiliationRule rule, Workspace& ws) {
  KHOP_REQUIRE(k >= 1, "k must be >= 1");
  KHOP_REQUIRE(priorities.size() == g.num_nodes(),
               "one priority key per node required");
  if (!is_connected(g)) {
    throw NotConnected("khop_clustering: input graph must be connected");
  }

  obs::Span span("cluster/elect");

  const std::size_t n = g.num_nodes();
  Clustering result;
  result.k = k;
  result.head_of.assign(n, kInvalidNode);
  result.dist_to_head.assign(n, kUnreachable);

  // Decided marks live in the workspace's epoch-stamped flag set (O(1)
  // clear, no per-call O(n) bit-vector), and the phase-A scan walks a
  // compact ascending list of undecided nodes instead of all n ids.
  ws.flags.begin(n);
  std::vector<NodeId>& undecided = ws.node_buf;
  undecided.clear();
  undecided.reserve(n);
  for (NodeId u = 0; u < n; ++u) undecided.push_back(u);
  // cluster_sizes[head]: members assigned so far (head included). Only the
  // size-based rule reads it; the other rules skip the O(n) array entirely.
  std::vector<std::size_t> cluster_sizes;
  if (rule == AffiliationRule::kSizeBased) cluster_sizes.assign(n, 0);

  // Round-scoped buffers, hoisted so rounds reuse their capacity.
  std::vector<NodeId> winners;
  std::vector<Candidate> declared;

  while (!undecided.empty()) {
    ++result.election_rounds;
    KHOP_ASSERT(result.election_rounds <= n, "election failed to make progress");

    // Phase A - declaration: an undecided node wins iff it holds the best
    // priority among *undecided* nodes within its k-hop neighborhood.
    // Distances are measured in the full graph G: decided nodes still relay.
    // The scratch's reached() set is exactly {v : dist <= k}, so scanning it
    // is equivalent to the full 0..n scan with unreachable-skips.
    winners.clear();
    for (NodeId u : undecided) {
      ws.bfs.run(g, u, k);
      bool best = true;
      for (NodeId v : ws.bfs.reached()) {
        if (v == u || ws.flags.test(v)) continue;
        if (priorities[v] < priorities[u]) {
          best = false;
          break;
        }
      }
      if (best) winners.push_back(u);
    }
    KHOP_ASSERT(!winners.empty(), "no winner in a round");

    // Phase B - winners declare; undecided nodes within k hops collect the
    // declarations they hear this round. The flat `declared` vector is
    // filled winner-major, so after the stable per-v grouping below each
    // node's candidates appear in winner order — exactly the order the
    // former per-node heard[v] lists (and the reference implementation)
    // accumulate them in.
    declared.clear();
    for (NodeId w : winners) {
      ws.flags.set(w);
      result.head_of[w] = w;
      result.dist_to_head[w] = 0;
      if (rule == AffiliationRule::kSizeBased) cluster_sizes[w] = 1;
      result.heads.push_back(w);

      ws.bfs.run(g, w, k);
      for (NodeId v : ws.bfs.reached()) {
        if (ws.flags.test(v) || v == w) continue;
        declared.push_back({v, w, ws.bfs.dist(v)});
      }
    }

    // Phase C - affiliation. Stable grouping by v: ascending node id (the
    // order that keeps the size-based greedy deterministic) with the
    // winner-order candidate list preserved inside each group.
    std::stable_sort(declared.begin(), declared.end(),
                     [](const Candidate& a, const Candidate& b) {
                       return a.v < b.v;
                     });
    std::size_t i = 0;
    while (i < declared.size()) {
      const NodeId v = declared[i].v;
      std::size_t j = i;
      while (j < declared.size() && declared[j].v == v) ++j;
      // Same-round winners must be mutually > k hops apart (otherwise one
      // would have seen the other's better priority), so no declaration may
      // target an already-decided node — at this point, exactly the winners.
      KHOP_ASSERT(!ws.flags.test(v), "two same-round winners within k hops");
      const std::span<const Candidate> cands{declared.data() + i, j - i};
      const NodeId h = pick_cluster(cands, rule, cluster_sizes);
      ws.flags.set(v);
      result.head_of[v] = h;
      result.dist_to_head[v] =
          std::find_if(cands.begin(), cands.end(),
                       [&](const Candidate& c) { return c.head == h; })
              ->dist;
      if (rule == AffiliationRule::kSizeBased) ++cluster_sizes[h];
      i = j;
    }

    // Compact the undecided list in place; the filter preserves ascending
    // order.
    std::erase_if(undecided,
                  [&](NodeId u) { return ws.flags.test(u); });
  }

  std::sort(result.heads.begin(), result.heads.end());
  result.cluster_of.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto it = std::lower_bound(result.heads.begin(), result.heads.end(),
                                     result.head_of[v]);
    KHOP_ASSERT(it != result.heads.end() && *it == result.head_of[v],
                "head_of references a non-head");
    result.cluster_of[v] =
        static_cast<std::uint32_t>(std::distance(result.heads.begin(), it));
  }
  span.arg("rounds", static_cast<std::int64_t>(result.election_rounds));
  span.arg("heads", static_cast<std::int64_t>(result.heads.size()));
  return result;
}

Clustering khop_clustering(const Graph& g, Hops k,
                           const std::vector<PriorityKey>& priorities,
                           AffiliationRule rule) {
  return khop_clustering(g, k, priorities, rule, tls_workspace());
}

Clustering khop_clustering(const Graph& g, Hops k, AffiliationRule rule) {
  return khop_clustering(g, k, make_priorities(g, PriorityRule::kLowestId),
                         rule);
}

}  // namespace khop
