#include "khop/cluster/reference.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "khop/common/assert.hpp"
#include "khop/common/error.hpp"
#include "khop/graph/bfs_reference.hpp"
#include "khop/graph/components.hpp"

namespace khop::reference {

namespace {

/// Candidate head heard by an undecided node in the current round.
struct Candidate {
  NodeId head = kInvalidNode;
  Hops dist = kUnreachable;
};

NodeId pick_cluster(const std::vector<Candidate>& cands, AffiliationRule rule,
                    const std::vector<std::size_t>& cluster_sizes) {
  KHOP_ASSERT(!cands.empty(), "node heard no declarations");
  const Candidate* best = &cands.front();
  for (const Candidate& c : cands) {
    bool better = false;
    switch (rule) {
      case AffiliationRule::kIdBased:
        better = c.head < best->head;
        break;
      case AffiliationRule::kDistanceBased:
        better = std::tuple(c.dist, c.head) < std::tuple(best->dist, best->head);
        break;
      case AffiliationRule::kSizeBased:
        better = std::tuple(cluster_sizes[c.head], c.dist, c.head) <
                 std::tuple(cluster_sizes[best->head], best->dist, best->head);
        break;
    }
    if (better) best = &c;
  }
  return best->head;
}

}  // namespace

Clustering khop_clustering(const Graph& g, Hops k,
                           const std::vector<PriorityKey>& priorities,
                           AffiliationRule rule) {
  KHOP_REQUIRE(k >= 1, "k must be >= 1");
  KHOP_REQUIRE(priorities.size() == g.num_nodes(),
               "one priority key per node required");
  if (!is_connected(g)) {
    throw NotConnected("khop_clustering: input graph must be connected");
  }

  const std::size_t n = g.num_nodes();
  Clustering result;
  result.k = k;
  result.head_of.assign(n, kInvalidNode);
  result.dist_to_head.assign(n, kUnreachable);

  std::vector<bool> decided(n, false);
  std::size_t undecided_count = n;
  std::vector<std::size_t> cluster_sizes(n, 0);

  while (undecided_count > 0) {
    ++result.election_rounds;
    KHOP_ASSERT(result.election_rounds <= n, "election failed to make progress");

    std::vector<NodeId> winners;
    for (NodeId u = 0; u < n; ++u) {
      if (decided[u]) continue;
      const BfsTree ball = reference::bfs_bounded(g, u, k);
      bool best = true;
      for (NodeId v = 0; v < n && best; ++v) {
        if (v == u || decided[v] || ball.dist[v] == kUnreachable) continue;
        if (priorities[v] < priorities[u]) best = false;
      }
      if (best) winners.push_back(u);
    }
    KHOP_ASSERT(!winners.empty(), "no winner in a round");

    std::vector<std::vector<Candidate>> heard(n);
    for (NodeId w : winners) {
      decided[w] = true;
      --undecided_count;
      result.head_of[w] = w;
      result.dist_to_head[w] = 0;
      cluster_sizes[w] = 1;
      result.heads.push_back(w);

      const BfsTree ball = reference::bfs_bounded(g, w, k);
      for (NodeId v = 0; v < n; ++v) {
        if (decided[v] || ball.dist[v] == kUnreachable || v == w) continue;
        heard[v].push_back({w, ball.dist[v]});
      }
    }

    for (NodeId w : winners) {
      KHOP_ASSERT(heard[w].empty(), "two same-round winners within k hops");
    }

    for (NodeId v = 0; v < n; ++v) {
      if (decided[v] || heard[v].empty()) continue;
      const NodeId h = pick_cluster(heard[v], rule, cluster_sizes);
      decided[v] = true;
      --undecided_count;
      result.head_of[v] = h;
      result.dist_to_head[v] =
          std::find_if(heard[v].begin(), heard[v].end(),
                       [&](const Candidate& c) { return c.head == h; })
              ->dist;
      ++cluster_sizes[h];
    }
  }

  std::sort(result.heads.begin(), result.heads.end());
  result.cluster_of.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto it = std::lower_bound(result.heads.begin(), result.heads.end(),
                                     result.head_of[v]);
    KHOP_ASSERT(it != result.heads.end() && *it == result.head_of[v],
                "head_of references a non-head");
    result.cluster_of[v] =
        static_cast<std::uint32_t>(std::distance(result.heads.begin(), it));
  }
  return result;
}

Clustering khop_core(const Graph& g, Hops k,
                     const std::vector<PriorityKey>& priorities) {
  KHOP_REQUIRE(k >= 1, "k must be >= 1");
  KHOP_REQUIRE(priorities.size() == g.num_nodes(),
               "one priority key per node required");
  if (!is_connected(g)) {
    throw NotConnected("khop_core: input graph must be connected");
  }

  const std::size_t n = g.num_nodes();
  Clustering result;
  result.k = k;
  result.election_rounds = 1;
  result.head_of.assign(n, kInvalidNode);
  result.dist_to_head.assign(n, kUnreachable);

  for (NodeId u = 0; u < n; ++u) {
    const BfsTree ball = reference::bfs_bounded(g, u, k);
    NodeId best = u;
    for (NodeId v = 0; v < n; ++v) {
      if (ball.dist[v] == kUnreachable) continue;
      if (priorities[v] < priorities[best]) best = v;
    }
    result.head_of[u] = best;
    result.dist_to_head[u] = ball.dist[best];
  }

  std::vector<bool> is_head(n, false);
  for (NodeId u = 0; u < n; ++u) is_head[result.head_of[u]] = true;
  for (NodeId u = 0; u < n; ++u) {
    if (is_head[u]) {
      result.head_of[u] = u;
      result.dist_to_head[u] = 0;
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    if (is_head[u]) result.heads.push_back(u);
  }

  result.cluster_of.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto it = std::lower_bound(result.heads.begin(), result.heads.end(),
                                     result.head_of[v]);
    KHOP_ASSERT(it != result.heads.end() && *it == result.head_of[v],
                "head_of references a non-head");
    result.cluster_of[v] =
        static_cast<std::uint32_t>(std::distance(result.heads.begin(), it));
  }
  return result;
}

KClusterCover krishna_kclusters(const Graph& g, Hops k) {
  KHOP_REQUIRE(k >= 1, "k must be >= 1");
  if (!is_connected(g)) {
    throw NotConnected("krishna_kclusters: input graph must be connected");
  }

  const std::size_t n = g.num_nodes();
  KClusterCover cover;
  cover.k = k;
  cover.clusters_of.resize(n);

  std::vector<bool> covered(n, false);
  std::map<NodeId, BfsTree> ball_cache;
  const auto ball = [&](NodeId v) -> const BfsTree& {
    auto it = ball_cache.find(v);
    if (it == ball_cache.end()) {
      it = ball_cache.emplace(v, reference::bfs_bounded(g, v, k)).first;
    }
    return it->second;
  };

  for (NodeId seed = 0; seed < n; ++seed) {
    if (covered[seed]) continue;
    std::vector<NodeId> members{seed};
    const BfsTree& seed_ball = ball(seed);
    for (NodeId cand = 0; cand < n; ++cand) {
      if (cand == seed || seed_ball.dist[cand] == kUnreachable) continue;
      const BfsTree& cand_ball = ball(cand);
      bool fits = true;
      for (NodeId m : members) {
        if (cand_ball.dist[m] == kUnreachable || cand_ball.dist[m] > k) {
          fits = false;
          break;
        }
      }
      if (fits) members.push_back(cand);
    }
    std::sort(members.begin(), members.end());
    const auto cluster_id = static_cast<std::uint32_t>(cover.clusters.size());
    for (NodeId m : members) {
      covered[m] = true;
      cover.clusters_of[m].push_back(cluster_id);
    }
    cover.clusters.push_back(std::move(members));
  }
  return cover;
}

}  // namespace khop::reference
