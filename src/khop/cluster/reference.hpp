/// \file reference.hpp
/// Pre-workspace clustering implementations, preserved verbatim as
/// independent oracles. The production paths in clustering.hpp / kcluster.hpp
/// now thread a Workspace& through (BfsScratch election, DistCache ball
/// cache); these reference versions keep the original per-call allocating
/// structure (fresh BfsTree per ball, std::map ball cache) and share no code
/// with them. They exist for the bit-exact equivalence suite and as the
/// baseline the perf-regression harness measures speedups against. Not for
/// production call sites.
#pragma once

#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/cluster/core_variant.hpp"
#include "khop/cluster/kcluster.hpp"

namespace khop::reference {

/// Original allocating election loop; output bit-identical to
/// khop::khop_clustering.
Clustering khop_clustering(const Graph& g, Hops k,
                           const std::vector<PriorityKey>& priorities,
                           AffiliationRule rule = AffiliationRule::kIdBased);

/// Original single-round core variant; output bit-identical to
/// khop::khop_core.
Clustering khop_core(const Graph& g, Hops k,
                     const std::vector<PriorityKey>& priorities);

/// Original greedy cover with the std::map<NodeId, BfsTree> ball cache;
/// output bit-identical to khop::krishna_kclusters.
KClusterCover krishna_kclusters(const Graph& g, Hops k);

}  // namespace khop::reference
