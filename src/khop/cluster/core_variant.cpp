#include "khop/cluster/core_variant.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"
#include "khop/common/error.hpp"
#include "khop/graph/components.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {

Clustering khop_core(const Graph& g, Hops k,
                     const std::vector<PriorityKey>& priorities,
                     Workspace& ws) {
  KHOP_REQUIRE(k >= 1, "k must be >= 1");
  KHOP_REQUIRE(priorities.size() == g.num_nodes(),
               "one priority key per node required");
  if (!is_connected(g)) {
    throw NotConnected("khop_core: input graph must be connected");
  }

  const std::size_t n = g.num_nodes();
  Clustering result;
  result.k = k;
  result.election_rounds = 1;
  result.head_of.assign(n, kInvalidNode);
  result.dist_to_head.assign(n, kUnreachable);

  for (NodeId u = 0; u < n; ++u) {
    ws.bfs.run(g, u, k);
    // priorities is a strict total order, so the minimum over the reached
    // set is order-independent: scanning reached() matches the reference's
    // full 0..n scan with unreachable-skips.
    NodeId best = u;
    for (NodeId v : ws.bfs.reached()) {
      if (priorities[v] < priorities[best]) best = v;
    }
    result.head_of[u] = best;
    result.dist_to_head[u] = ws.bfs.dist(best);
  }

  // Heads are exactly the designated nodes. A designated node always
  // designates itself: anyone it prefers within its own k-ball would also be
  // visible (within 2k hops) to... not necessarily to the designator - so we
  // normalize: designated nodes become heads of themselves.
  std::vector<bool> is_head(n, false);
  for (NodeId u = 0; u < n; ++u) is_head[result.head_of[u]] = true;
  for (NodeId u = 0; u < n; ++u) {
    if (is_head[u]) {
      result.head_of[u] = u;
      result.dist_to_head[u] = 0;
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    if (is_head[u]) result.heads.push_back(u);
  }

  result.cluster_of.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto it = std::lower_bound(result.heads.begin(), result.heads.end(),
                                     result.head_of[v]);
    KHOP_ASSERT(it != result.heads.end() && *it == result.head_of[v],
                "head_of references a non-head");
    result.cluster_of[v] =
        static_cast<std::uint32_t>(std::distance(result.heads.begin(), it));
  }
  return result;
}

Clustering khop_core(const Graph& g, Hops k,
                     const std::vector<PriorityKey>& priorities) {
  return khop_core(g, k, priorities, tls_workspace());
}

Clustering khop_core(const Graph& g, Hops k) {
  return khop_core(g, k, make_priorities(g, PriorityRule::kLowestId));
}

}  // namespace khop
