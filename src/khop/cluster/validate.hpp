/// \file validate.hpp
/// Invariant checkers for clustering results. Used by property tests and by
/// the dynamics module after local repairs.
#pragma once

#include <string>

#include "khop/cluster/clustering.hpp"

namespace khop {

/// What to verify.
struct ClusteringChecks {
  bool require_khop_independent_heads = true;  ///< cluster algorithm only
  bool require_khop_dominating = true;
  bool require_total_membership = true;
  bool require_distance_consistency = true;  ///< dist_to_head == BFS distance
};

/// Returns an empty string when all requested invariants hold; otherwise a
/// human-readable description of the first violation.
std::string validate_clustering(const Graph& g, const Clustering& c,
                                const ClusteringChecks& checks = {});

}  // namespace khop
