/// \file kcluster.hpp
/// The *other* k-hop clustering definition from the related work (Krishna,
/// Vaidya, Chatterjee, Pradhan): a k-cluster is a set of nodes that are
/// MUTUALLY reachable within k hops - pairwise distance <= k, no
/// clusterheads, clusters may overlap. The paper contrasts its head-centric
/// definition against this one (section 1); this module implements a greedy
/// cover heuristic so the two structures can be compared empirically.
#pragma once

#include <string>
#include <vector>

#include "khop/common/types.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

/// An overlapping cover of the graph by k-clusters.
struct KClusterCover {
  Hops k = 1;
  /// Each cluster: ascending member ids, pairwise distance <= k in G.
  std::vector<std::vector<NodeId>> clusters;
  /// cluster ids containing each node (every node is in >= 1).
  std::vector<std::vector<std::uint32_t>> clusters_of;
};

/// Greedy cover: seeds are processed in ascending id; each seed's cluster
/// greedily absorbs candidates (ascending id) from its k-ball whose distance
/// to every current member stays <= k. Already-covered nodes may join later
/// clusters (overlap) but never seed new ones.
/// \pre k >= 1; g connected
KClusterCover krishna_kclusters(const Graph& g, Hops k);

struct Workspace;

/// Workspace variant: the bounded balls run on \p ws.bfs and the ball cache
/// lives in \p ws.ball_cache (rows reused across calls; note the cache is
/// O(n^2) words, so keep \p ws scoped to the work that needs it).
/// Bit-identical output; the overload above forwards here with a
/// call-scoped workspace.
KClusterCover krishna_kclusters(const Graph& g, Hops k, Workspace& ws);

/// Validates the mutual-distance and coverage properties; empty on success.
std::string validate_kcluster_cover(const Graph& g, const KClusterCover& c);

}  // namespace khop
