#include "khop/cluster/priority.hpp"

#include "khop/common/assert.hpp"

namespace khop {

std::vector<PriorityKey> make_priorities(const Graph& g, PriorityRule rule,
                                         const EnergyState* energy,
                                         Rng* rng) {
  std::vector<PriorityKey> keys(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    keys[v].id = v;
    switch (rule) {
      case PriorityRule::kLowestId:
        keys[v].key = 0.0;  // id breaks the tie: pure lowest-ID election
        break;
      case PriorityRule::kHighestDegree:
        keys[v].key = -static_cast<double>(g.degree(v));
        break;
      case PriorityRule::kHighestEnergy:
        KHOP_REQUIRE(energy != nullptr,
                     "energy state required for kHighestEnergy");
        keys[v].key = -energy->residual(v);
        break;
      case PriorityRule::kRandomTimer:
        KHOP_REQUIRE(rng != nullptr, "rng required for kRandomTimer");
        keys[v].key = rng->uniform();
        break;
    }
  }
  return keys;
}

}  // namespace khop
