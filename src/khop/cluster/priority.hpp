/// \file priority.hpp
/// Node priorities for clusterhead election.
///
/// The paper's experiments use the classic lowest-ID rule, and section 2/3.3
/// lists the alternatives this module also provides: node degree, residual
/// energy (power-aware rotation) and a random timer. Priorities are strict
/// total orders: (key, id) pairs compared lexicographically, lower wins.
#pragma once

#include <cstdint>
#include <vector>

#include "khop/common/rng.hpp"
#include "khop/common/types.hpp"
#include "khop/graph/graph.hpp"
#include "khop/net/energy.hpp"

namespace khop {

enum class PriorityRule : std::uint8_t {
  kLowestId,       ///< paper default
  kHighestDegree,  ///< Gerla & Tsai style
  kHighestEnergy,  ///< power-aware rotation, paper section 3.3
  kRandomTimer,    ///< randomized election
};

/// Election key: strictly ordered, lower = more eligible to be clusterhead.
struct PriorityKey {
  double key = 0.0;
  NodeId id = kInvalidNode;

  friend constexpr auto operator<=>(const PriorityKey&,
                                    const PriorityKey&) = default;
};

/// Builds one key per node.
/// \p energy is required for kHighestEnergy; \p rng for kRandomTimer.
std::vector<PriorityKey> make_priorities(const Graph& g, PriorityRule rule,
                                         const EnergyState* energy = nullptr,
                                         Rng* rng = nullptr);

}  // namespace khop
