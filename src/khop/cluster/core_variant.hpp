/// \file core_variant.hpp
/// The k-hop *core* clustering variant (related work, paper section 1-2).
///
/// Unlike the cluster algorithm, the core algorithm runs a single round:
/// every node designates the best-priority node in its closed k-hop
/// neighborhood as its clusterhead, so resulting heads ("cores") may be
/// mutual neighbors. Provided for completeness and as a contrast baseline in
/// ablation benches; the paper's main pipeline uses the cluster algorithm.
#pragma once

#include "khop/cluster/clustering.hpp"

namespace khop {

/// One-round core designation. The returned Clustering has the same shape as
/// khop_clustering's result but heads need NOT be k-hop independent;
/// election_rounds is always 1.
/// \pre k >= 1; g connected
Clustering khop_core(const Graph& g, Hops k,
                     const std::vector<PriorityKey>& priorities);

/// Workspace variant: the per-node bounded BFS runs reuse \p ws.
/// Bit-identical output; the overload above forwards here.
Clustering khop_core(const Graph& g, Hops k,
                     const std::vector<PriorityKey>& priorities,
                     Workspace& ws);

/// Lowest-ID convenience overload.
Clustering khop_core(const Graph& g, Hops k);

}  // namespace khop
