#include "khop/cluster/kcluster.hpp"

#include <algorithm>
#include <sstream>

#include "khop/common/assert.hpp"
#include "khop/common/error.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/graph/components.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {

KClusterCover krishna_kclusters(const Graph& g, Hops k, Workspace& ws) {
  KHOP_REQUIRE(k >= 1, "k must be >= 1");
  if (!is_connected(g)) {
    throw NotConnected("krishna_kclusters: input graph must be connected");
  }

  const std::size_t n = g.num_nodes();
  KClusterCover cover;
  cover.k = k;
  cover.clusters_of.resize(n);

  std::vector<bool> covered(n, false);
  // Bounded-ball cache: full distance rows indexed directly by NodeId
  // (epoch-stamped, rows reused across calls) - O(1) lookup and no BfsTree
  // parent arrays, unlike the old std::map<NodeId, BfsTree> cache.
  ws.ball_cache.begin(n);
  const auto ball = [&](NodeId v) -> const std::vector<Hops>& {
    if (!ws.ball_cache.contains(v)) {
      ws.bfs.run(g, v, k);
      std::vector<Hops>& row = ws.ball_cache.row(v);
      row.assign(n, kUnreachable);
      for (NodeId r : ws.bfs.reached()) row[r] = ws.bfs.dist(r);
    }
    return ws.ball_cache.row(v);
  };

  for (NodeId seed = 0; seed < n; ++seed) {
    if (covered[seed]) continue;
    std::vector<NodeId> members{seed};
    const std::vector<Hops>& seed_ball = ball(seed);
    for (NodeId cand = 0; cand < n; ++cand) {
      if (cand == seed || seed_ball[cand] == kUnreachable) continue;
      // cand joins iff it is within k of every current member.
      const std::vector<Hops>& cand_ball = ball(cand);
      bool fits = true;
      for (NodeId m : members) {
        if (cand_ball[m] == kUnreachable || cand_ball[m] > k) {
          fits = false;
          break;
        }
      }
      if (fits) members.push_back(cand);
    }
    std::sort(members.begin(), members.end());
    const auto cluster_id = static_cast<std::uint32_t>(cover.clusters.size());
    for (NodeId m : members) {
      covered[m] = true;
      cover.clusters_of[m].push_back(cluster_id);
    }
    cover.clusters.push_back(std::move(members));
  }
  return cover;
}

KClusterCover krishna_kclusters(const Graph& g, Hops k) {
  // Call-scoped workspace, not tls_workspace(): the ball cache is O(n^2)
  // words and pinning that in a thread-local for the life of the thread
  // would silently retain hundreds of MB after one large-graph call.
  // Callers that want cross-call cache reuse pass their own Workspace.
  Workspace ws;
  return krishna_kclusters(g, k, ws);
}

std::string validate_kcluster_cover(const Graph& g, const KClusterCover& c) {
  std::ostringstream err;
  if (c.clusters_of.size() != g.num_nodes()) {
    return "cover index not sized to the graph";
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (c.clusters_of[v].empty()) {
      err << "node " << v << " is uncovered";
      return err.str();
    }
    for (std::uint32_t idx : c.clusters_of[v]) {
      if (idx >= c.clusters.size() ||
          !std::binary_search(c.clusters[idx].begin(), c.clusters[idx].end(),
                              v)) {
        err << "node " << v << " has a dangling cluster reference";
        return err.str();
      }
    }
  }
  for (std::uint32_t i = 0; i < c.clusters.size(); ++i) {
    const auto& members = c.clusters[i];
    for (NodeId m : members) {
      const BfsTree t = bfs_bounded(g, m, c.k);
      for (NodeId other : members) {
        if (other == m) continue;
        if (t.dist[other] == kUnreachable || t.dist[other] > c.k) {
          err << "cluster " << i << ": members " << m << " and " << other
              << " are more than " << c.k << " hops apart";
          return err.str();
        }
      }
    }
  }
  return {};
}

}  // namespace khop
