/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// The Monte-Carlo harness runs thousands of independent trials, possibly in
/// parallel, and every result must be reproducible from a single master seed.
/// We use xoshiro256** (public domain, Blackman & Vigna) seeded via
/// SplitMix64, plus a stream-derivation function so that trial i draws from
/// an independent, deterministic stream regardless of scheduling order.
#pragma once

#include <array>
#include <cstdint>

namespace khop {

/// SplitMix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words from SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return ~static_cast<result_type>(0);
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Uses Lemire's unbiased rejection method.
  /// \pre n > 0
  std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Derives an independent child generator for the given stream index.
  /// Deterministic: same (parent seed, index) always yields the same stream.
  Rng spawn(std::uint64_t stream_index) const noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_origin_ = 0;  // retained so spawn() is scheduling-free
};

}  // namespace khop
