/// \file error.hpp
/// Exception hierarchy. All khop-originated failures derive from khop::Error
/// so callers can catch library errors distinctly from std failures.
#pragma once

#include <stdexcept>
#include <string>

namespace khop {

/// Root of the khop exception hierarchy.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A caller violated a documented precondition.
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// An internal invariant did not hold (library bug or corrupted input).
class InvariantViolation : public Error {
 public:
  using Error::Error;
};

/// An operation required a connected (sub)graph and the input was not.
class NotConnected : public Error {
 public:
  using Error::Error;
};

/// Persisted state (snapshot, write-ahead log, checkpoint) failed a format,
/// checksum, or continuity check on load.
class CorruptState : public Error {
 public:
  using Error::Error;
};

}  // namespace khop
