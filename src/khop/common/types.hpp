/// \file types.hpp
/// Fundamental vocabulary types shared by every khop module.
#pragma once

#include <cstdint>
#include <limits>

namespace khop {

/// Node identifier inside one network instance. Dense, 0-based.
using NodeId = std::uint32_t;

/// Hop count between two nodes (graph distance).
using Hops = std::uint32_t;

/// Sentinel "no node" value.
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel "unreachable" hop distance.
inline constexpr Hops kUnreachable = std::numeric_limits<Hops>::max();

}  // namespace khop
