/// \file assert.hpp
/// Contract-checking macros. KHOP_REQUIRE guards public-API preconditions and
/// always throws InvalidArgument; KHOP_ASSERT guards internal invariants and
/// throws InvariantViolation. Both stay enabled in release builds: the
/// workloads here are graph-simulation scale, so the checks are cheap relative
/// to the value of failing loudly.
#pragma once

#include <sstream>
#include <string>

#include "khop/common/error.hpp"

namespace khop::detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " - " << msg;
  throw InvalidArgument(os.str());
}

[[noreturn]] inline void throw_assert(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " - " << msg;
  throw InvariantViolation(os.str());
}

}  // namespace khop::detail

#define KHOP_REQUIRE(expr, msg)                                       \
  do {                                                                \
    if (!(expr))                                                      \
      ::khop::detail::throw_require(#expr, __FILE__, __LINE__, msg);  \
  } while (false)

#define KHOP_ASSERT(expr, msg)                                        \
  do {                                                                \
    if (!(expr))                                                      \
      ::khop::detail::throw_assert(#expr, __FILE__, __LINE__, msg);   \
  } while (false)
