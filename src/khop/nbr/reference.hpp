/// \file reference.hpp
/// Pre-PR4 neighbor-rule implementations, preserved verbatim as independent
/// oracles. The production paths in neighbor_rules.hpp now discover neighbor
/// heads by scanning each bounded sweep's reached set against the clustering's
/// O(1) head lookup (and the NC pipeline fuses discovery with virtual-link
/// extraction, see gateway/head_sweep.hpp); these reference versions keep the
/// original structure — per-head O(H) all-heads distance probes, the
/// std::set-accumulated adjacent-cluster pairs, and the Wu-Lou per-pair
/// reached-set rescan — and share no code with them. They exist for the
/// bit-exact equivalence suite and as the baseline the perf-regression
/// harness measures speedups against. Not for production call sites.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "khop/nbr/neighbor_rules.hpp"

namespace khop::reference {

/// Original std::set-based accumulation; output bit-identical to
/// khop::adjacent_cluster_pairs.
std::vector<std::pair<std::uint32_t, std::uint32_t>> adjacent_cluster_pairs(
    const Graph& g, const Clustering& c);

/// Original per-head all-heads-scan selection loops; output bit-identical to
/// khop::select_neighbors.
NeighborSelection select_neighbors(const Graph& g, const Clustering& c,
                                   NeighborRule rule);

}  // namespace khop::reference
