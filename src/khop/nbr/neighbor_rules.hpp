/// \file neighbor_rules.hpp
/// Phase 1 of the paper's localized solution: which neighbor clusterheads
/// must each clusterhead connect to?
///
/// * NC  - the usual rule: all clusterheads within 2k+1 hops.
/// * A-NCR - the paper's contribution (section 3.1): only *adjacent*
///   clusterheads, i.e. heads of clusters joined by at least one G-edge.
///   Theorem 1 guarantees the adjacent-cluster graph is connected.
/// * Wu-Lou 2.5-hop coverage - the k=1 special case A-NCR generalizes
///   (heads within 2 hops, plus heads 3 hops away owning a member within 2
///   hops); produces a directed selection.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "khop/cluster/clustering.hpp"

namespace khop {

enum class NeighborRule : std::uint8_t {
  kAllWithin2k1,  ///< NC baseline
  kAdjacent,      ///< A-NCR (paper)
  kWuLou25,       ///< 2.5-hop coverage; requires k == 1
};

/// Output of neighbor clusterhead selection.
struct NeighborSelection {
  NeighborRule rule = NeighborRule::kAdjacent;
  /// Per cluster index (aligned with Clustering::heads): the head ids this
  /// head selects, ascending. May be asymmetric for kWuLou25.
  std::vector<std::vector<NodeId>> selected;
  /// Symmetric closure of `selected` as unordered head-id pairs (u < v),
  /// sorted and unique: the virtual links phase 2 must realize.
  std::vector<std::pair<NodeId, NodeId>> head_pairs;
};

/// Runs the requested rule. \pre for kWuLou25: c.k == 1.
NeighborSelection select_neighbors(const Graph& g, const Clustering& c,
                                   NeighborRule rule);

struct Workspace;

/// Workspace variant: the per-head bounded BFS runs reuse \p ws.
/// Bit-identical output; the overload above forwards here.
NeighborSelection select_neighbors(const Graph& g, const Clustering& c,
                                   NeighborRule rule, Workspace& ws);

/// Cluster-index pairs (ci < cj) whose clusters are adjacent per Definition 2
/// (some edge of G joins a node of one to a node of the other).
std::vector<std::pair<std::uint32_t, std::uint32_t>> adjacent_cluster_pairs(
    const Graph& g, const Clustering& c);

/// Canonicalizes a raw selection: sorts + uniques every selected list and the
/// head-pair closure. All selection producers (the rules above and the fused
/// NC sweep in gateway/head_sweep.hpp) funnel through this, so their outputs
/// are comparable bit-for-bit.
NeighborSelection finalize_selection(NeighborSelection sel);

}  // namespace khop
