/// \file hierarchy.hpp
/// High-level (multi-level) clustering: the related-work idea of applying
/// clustering recursively over clusterheads (paper section 2, "High level
/// clustering ... is also feasible and effective in even larger networks").
///
/// Level 0 is the physical network. Level l+1 clusters the level-l
/// clusterheads over the level-l cluster graph G'' (adjacent clusters are
/// 1 hop apart at the next level). Recursion stops when one head remains or
/// the requested depth is reached.
#pragma once

#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/common/types.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

struct HierarchyLevel {
  /// Graph this level was clustered on (level 0: the network; level l>0:
  /// the adjacent-cluster graph of level l-1, nodes = level-(l-1) cluster
  /// indices).
  Graph graph;
  Clustering clustering;
  /// Physical node id of each graph node at this level (identity at 0).
  std::vector<NodeId> node_physical_id;
  /// Heads in *physical* node ids, in head-index order.
  std::vector<NodeId> physical_heads;
};

struct ClusterHierarchy {
  std::vector<HierarchyLevel> levels;

  std::size_t depth() const noexcept { return levels.size(); }

  /// The physical id of the level-l head responsible for physical node v
  /// (follows the membership chain up l+1 times).
  NodeId head_at_level(NodeId v, std::size_t level) const;
};

/// Builds up to \p max_levels levels (at least 1). Every level uses the
/// given k and lowest-ID priorities; level graphs are always connected
/// (Theorem 1 guarantees G'' is).
/// \pre k >= 1; g connected; max_levels >= 1
ClusterHierarchy build_hierarchy(const Graph& g, Hops k,
                                 std::size_t max_levels);

}  // namespace khop
