#include "khop/nbr/cluster_graph.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"
#include "khop/graph/components.hpp"

namespace khop {

Graph adjacent_cluster_graph(const Graph& g, const Clustering& c) {
  const auto pairs = adjacent_cluster_pairs(g, c);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(pairs.size());
  for (const auto& [ci, cj] : pairs) edges.emplace_back(ci, cj);
  return Graph::from_edges(c.heads.size(), edges);
}

Graph selection_graph(const Clustering& c, const NeighborSelection& sel) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(sel.head_pairs.size());
  for (const auto& [hu, hv] : sel.head_pairs) {
    const auto iu = std::lower_bound(c.heads.begin(), c.heads.end(), hu);
    const auto iv = std::lower_bound(c.heads.begin(), c.heads.end(), hv);
    KHOP_REQUIRE(iu != c.heads.end() && *iu == hu && iv != c.heads.end() &&
                     *iv == hv,
                 "selection references unknown head");
    edges.emplace_back(
        static_cast<NodeId>(std::distance(c.heads.begin(), iu)),
        static_cast<NodeId>(std::distance(c.heads.begin(), iv)));
  }
  return Graph::from_edges(c.heads.size(), edges);
}

bool theorem1_holds(const Graph& g, const Clustering& c) {
  return is_connected(adjacent_cluster_graph(g, c));
}

}  // namespace khop
