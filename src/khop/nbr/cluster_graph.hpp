/// \file cluster_graph.hpp
/// Cluster-level graphs: the adjacent-cluster graph G'' of Definition 3 and
/// the generic head-pair graph induced by any NeighborSelection. Nodes are
/// cluster indices (positions in Clustering::heads).
#pragma once

#include "khop/cluster/clustering.hpp"
#include "khop/graph/graph.hpp"
#include "khop/nbr/neighbor_rules.hpp"

namespace khop {

/// G'' — one vertex per cluster, an edge per adjacent cluster pair.
Graph adjacent_cluster_graph(const Graph& g, const Clustering& c);

/// Graph over cluster indices whose edges are the selection's head pairs.
Graph selection_graph(const Clustering& c, const NeighborSelection& sel);

/// Theorem 1 checker: G'' is connected whenever G is.
bool theorem1_holds(const Graph& g, const Clustering& c);

}  // namespace khop
