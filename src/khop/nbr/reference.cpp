// Verbatim pre-PR4 neighbor-rule implementations (see reference.hpp). Kept
// byte-for-byte close to the originals on purpose — do not "clean up".
#include "khop/nbr/reference.hpp"

#include <algorithm>
#include <set>

#include "khop/common/assert.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop::reference {

std::vector<std::pair<std::uint32_t, std::uint32_t>> adjacent_cluster_pairs(
    const Graph& g, const Clustering& c) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.neighbors(u)) {
      if (u >= v) continue;
      const std::uint32_t cu = c.cluster_of[u];
      const std::uint32_t cv = c.cluster_of[v];
      if (cu != cv) pairs.emplace(std::min(cu, cv), std::max(cu, cv));
    }
  }
  return {pairs.begin(), pairs.end()};
}

namespace {

NeighborSelection finish(NeighborSelection sel) {
  for (auto& list : sel.selected) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  std::sort(sel.head_pairs.begin(), sel.head_pairs.end());
  sel.head_pairs.erase(
      std::unique(sel.head_pairs.begin(), sel.head_pairs.end()),
      sel.head_pairs.end());
  return sel;
}

NeighborSelection select_nc(const Graph& g, const Clustering& c,
                            Workspace& ws) {
  NeighborSelection sel;
  sel.rule = NeighborRule::kAllWithin2k1;
  sel.selected.resize(c.heads.size());
  const Hops horizon = 2 * c.k + 1;
  for (std::uint32_t i = 0; i < c.heads.size(); ++i) {
    ws.bfs.run(g, c.heads[i], horizon);
    for (std::uint32_t j = 0; j < c.heads.size(); ++j) {
      if (i == j) continue;
      if (ws.bfs.dist(c.heads[j]) != kUnreachable) {
        sel.selected[i].push_back(c.heads[j]);
        sel.head_pairs.emplace_back(std::min(c.heads[i], c.heads[j]),
                                    std::max(c.heads[i], c.heads[j]));
      }
    }
  }
  return finish(std::move(sel));
}

NeighborSelection select_ancr(const Graph& g, const Clustering& c) {
  NeighborSelection sel;
  sel.rule = NeighborRule::kAdjacent;
  sel.selected.resize(c.heads.size());
  for (const auto& [ci, cj] : reference::adjacent_cluster_pairs(g, c)) {
    const NodeId hi = c.heads[ci];
    const NodeId hj = c.heads[cj];
    sel.selected[ci].push_back(hj);
    sel.selected[cj].push_back(hi);
    sel.head_pairs.emplace_back(std::min(hi, hj), std::max(hi, hj));
  }
  return finish(std::move(sel));
}

NeighborSelection select_wulou(const Graph& g, const Clustering& c,
                               Workspace& ws) {
  KHOP_REQUIRE(c.k == 1, "Wu-Lou 2.5-hop coverage is defined for k = 1");
  NeighborSelection sel;
  sel.rule = NeighborRule::kWuLou25;
  sel.selected.resize(c.heads.size());

  for (std::uint32_t i = 0; i < c.heads.size(); ++i) {
    const NodeId u = c.heads[i];
    ws.bfs.run(g, u, 3);
    for (std::uint32_t j = 0; j < c.heads.size(); ++j) {
      if (i == j) continue;
      const NodeId v = c.heads[j];
      const Hops d = ws.bfs.dist(v);
      if (d == kUnreachable) continue;
      bool covered = false;
      if (d <= 2) {
        covered = true;
      } else {
        // d == 3: covered iff cluster j has a member within 2 hops of u.
        // `covered` is a pure existence check, so scanning the reached set
        // instead of all node ids yields the same answer.
        for (NodeId w : ws.bfs.reached()) {
          if (c.cluster_of[w] == j && ws.bfs.dist(w) <= 2) {
            covered = true;
            break;
          }
        }
      }
      if (covered) {
        sel.selected[i].push_back(v);
        sel.head_pairs.emplace_back(std::min(u, v), std::max(u, v));
      }
    }
  }
  return finish(std::move(sel));
}

}  // namespace

NeighborSelection select_neighbors(const Graph& g, const Clustering& c,
                                   NeighborRule rule) {
  KHOP_REQUIRE(!c.heads.empty(), "clustering has no heads");
  Workspace ws;  // oracle independence: never shares scratch with production
  switch (rule) {
    case NeighborRule::kAllWithin2k1:
      return select_nc(g, c, ws);
    case NeighborRule::kAdjacent:
      return select_ancr(g, c);
    case NeighborRule::kWuLou25:
      return select_wulou(g, c, ws);
  }
  KHOP_ASSERT(false, "unknown neighbor rule");
  return {};
}

}  // namespace khop::reference
