#include "khop/nbr/hierarchy.hpp"

#include "khop/common/assert.hpp"
#include "khop/nbr/cluster_graph.hpp"

namespace khop {

NodeId ClusterHierarchy::head_at_level(NodeId v, std::size_t level) const {
  KHOP_REQUIRE(level < levels.size(), "level out of range");
  KHOP_REQUIRE(v < levels[0].clustering.head_of.size(), "node out of range");
  // Climb the membership chain in each level's own node-id space: the node
  // id of v's representative at level l+1 is its cluster index at level l.
  NodeId cur = v;
  for (std::size_t l = 0; l < level; ++l) {
    cur = levels[l].clustering.cluster_of[cur];
  }
  const NodeId head_node = levels[level].clustering.head_of[cur];
  return levels[level].node_physical_id[head_node];
}

ClusterHierarchy build_hierarchy(const Graph& g, Hops k,
                                 std::size_t max_levels) {
  KHOP_REQUIRE(max_levels >= 1, "need at least one level");

  ClusterHierarchy h;
  HierarchyLevel level0;
  level0.graph = g;
  level0.clustering = khop_clustering(g, k);
  level0.node_physical_id.resize(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) level0.node_physical_id[v] = v;
  level0.physical_heads = level0.clustering.heads;
  h.levels.push_back(std::move(level0));

  while (h.levels.size() < max_levels &&
         h.levels.back().clustering.heads.size() > 1) {
    const HierarchyLevel& below = h.levels.back();
    HierarchyLevel next;
    // Nodes of the next level graph = cluster indices of the level below;
    // edges = cluster adjacency (Theorem 1: the graph is connected).
    next.graph = adjacent_cluster_graph(below.graph, below.clustering);
    next.clustering = khop_clustering(next.graph, k);
    next.node_physical_id.reserve(next.graph.num_nodes());
    for (NodeId j = 0; j < next.graph.num_nodes(); ++j) {
      next.node_physical_id.push_back(
          below.node_physical_id[below.clustering.heads[j]]);
    }
    next.physical_heads.reserve(next.clustering.heads.size());
    for (const NodeId idx : next.clustering.heads) {
      next.physical_heads.push_back(next.node_physical_id[idx]);
    }
    h.levels.push_back(std::move(next));
  }
  return h;
}

}  // namespace khop
