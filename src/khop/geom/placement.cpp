#include "khop/geom/placement.hpp"

#include <cmath>

#include "khop/common/assert.hpp"

namespace khop {

std::vector<Point2> place_uniform(std::size_t n, const Field& field,
                                  Rng& rng) {
  KHOP_REQUIRE(n > 0, "cannot place zero nodes");
  std::vector<Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, field.side), rng.uniform(0.0, field.side)});
  }
  return pts;
}

std::vector<Point2> place_jittered_grid(std::size_t n, const Field& field,
                                        Rng& rng) {
  KHOP_REQUIRE(n > 0, "cannot place zero nodes");
  const auto cells =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  const double cell = field.side / static_cast<double>(cells);
  std::vector<Point2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t gx = i % cells;
    const std::size_t gy = i / cells;
    pts.push_back({(static_cast<double>(gx) + rng.uniform()) * cell,
                   (static_cast<double>(gy) + rng.uniform()) * cell});
  }
  return pts;
}

}  // namespace khop
