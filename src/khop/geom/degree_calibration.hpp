/// \file degree_calibration.hpp
/// Mapping between transmission radius and expected average node degree.
///
/// The paper parameterizes topologies by *average node degree* D (6 or 10),
/// not by radius. For N nodes uniform in a field of area A, ignoring border
/// effects, E[deg] = (N-1) * pi * r^2 / A, giving the analytic radius below.
/// Border effects shave ~8-15% off the realized mean degree at the paper's
/// scales, so the generator can instead calibrate the radius empirically by
/// bisection against sampled placements.
#pragma once

#include <cstddef>
#include <vector>

#include "khop/common/rng.hpp"
#include "khop/geom/point.hpp"

namespace khop {

/// Radius whose unit-disk expectation (borders ignored) equals \p avg_degree.
/// \pre n >= 2, avg_degree > 0
double analytic_radius(std::size_t n, double avg_degree, const Field& field);

/// Measured mean degree of the unit-disk graph over \p pts at radius \p r.
double measured_mean_degree(const std::vector<Point2>& pts, double r);

/// Options for empirical calibration.
struct CalibrationOptions {
  std::size_t sample_placements = 24;  ///< placements averaged per probe
  double tolerance = 0.05;             ///< acceptable |mean - target| (abs)
  std::size_t max_iterations = 40;     ///< bisection iteration cap
};

/// Bisects the radius until the sampled mean degree of uniform placements
/// matches \p avg_degree within tolerance. Deterministic given \p rng seed.
/// \pre n >= 2, avg_degree in (0, n-1)
double calibrate_radius(std::size_t n, double avg_degree, const Field& field,
                        Rng rng, const CalibrationOptions& opts = {});

}  // namespace khop
