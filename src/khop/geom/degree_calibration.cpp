#include "khop/geom/degree_calibration.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "khop/common/assert.hpp"
#include "khop/geom/placement.hpp"
#include "khop/graph/spatial_grid.hpp"

namespace khop {

double analytic_radius(std::size_t n, double avg_degree, const Field& field) {
  KHOP_REQUIRE(n >= 2, "need at least two nodes");
  KHOP_REQUIRE(avg_degree > 0.0, "average degree must be positive");
  return std::sqrt(avg_degree * field.area() /
                   (std::numbers::pi * static_cast<double>(n - 1)));
}

double measured_mean_degree(const std::vector<Point2>& pts, double r) {
  KHOP_REQUIRE(!pts.empty(), "empty placement");
  KHOP_REQUIRE(r > 0.0, "radius must be positive");
  // Near-linear via the spatial grid (every calibration probe was O(n^2)
  // before; the grid itself caps its cell count, so degenerate radii are
  // safe). Each neighborhood is counted from both endpoints, so the
  // directed total is already 2x the link count.
  SpatialGrid grid(pts, r);
  std::size_t directed = 0;
  for (NodeId u = 0; u < pts.size(); ++u) {
    directed += grid.count_within_radius(u);
  }
  return static_cast<double>(directed) / static_cast<double>(pts.size());
}

double calibrate_radius(std::size_t n, double avg_degree, const Field& field,
                        Rng rng, const CalibrationOptions& opts) {
  KHOP_REQUIRE(n >= 2, "need at least two nodes");
  KHOP_REQUIRE(avg_degree > 0.0 && avg_degree < static_cast<double>(n - 1),
               "target degree out of range");

  // Pre-draw the sample placements once so every bisection probe scores the
  // same topologies - this keeps the probe function monotone in r.
  std::vector<std::vector<Point2>> samples;
  samples.reserve(opts.sample_placements);
  for (std::size_t i = 0; i < opts.sample_placements; ++i) {
    Rng child = rng.spawn(i);
    samples.push_back(place_uniform(n, field, child));
  }
  const auto probe = [&](double r) {
    double total = 0.0;
    for (const auto& pts : samples) total += measured_mean_degree(pts, r);
    return total / static_cast<double>(samples.size());
  };

  // The analytic radius ignores border loss, so it is a lower bound on the
  // radius needed to reach the target realized degree.
  double lo = analytic_radius(n, avg_degree, field);
  double hi = lo * 1.6;
  while (probe(hi) < avg_degree && hi < field.side * 1.5) hi *= 1.3;

  double mid = lo;
  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    mid = 0.5 * (lo + hi);
    const double got = probe(mid);
    if (std::abs(got - avg_degree) <= opts.tolerance) return mid;
    if (got < avg_degree) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return mid;
}

}  // namespace khop
