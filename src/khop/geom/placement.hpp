/// \file placement.hpp
/// Random node placement in the deployment field.
#pragma once

#include <cstddef>
#include <vector>

#include "khop/common/rng.hpp"
#include "khop/geom/point.hpp"

namespace khop {

/// Places \p n nodes independently and uniformly at random in \p field.
/// \pre n > 0
std::vector<Point2> place_uniform(std::size_t n, const Field& field, Rng& rng);

/// Places \p n nodes on a jittered grid: a ceil(sqrt(n))^2 lattice with each
/// node displaced uniformly within its cell. Produces more evenly-covered
/// topologies; used by tests and the topology playground, not by the paper's
/// experiments.
std::vector<Point2> place_jittered_grid(std::size_t n, const Field& field,
                                        Rng& rng);

}  // namespace khop
