/// \file point.hpp
/// Plain 2-D geometry used by the unit-disk network model.
#pragma once

#include <cmath>

namespace khop {

/// A point in the deployment field.
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point2&, const Point2&) = default;
};

/// Squared Euclidean distance (preferred in range tests: no sqrt).
constexpr double distance_sq(const Point2& a, const Point2& b) noexcept {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance.
inline double distance(const Point2& a, const Point2& b) noexcept {
  return std::sqrt(distance_sq(a, b));
}

/// Axis-aligned square deployment field [0, side] x [0, side].
/// The paper deploys N nodes uniformly in a 100 x 100 area.
struct Field {
  double side = 100.0;

  constexpr double area() const noexcept { return side * side; }
  constexpr bool contains(const Point2& p) const noexcept {
    return p.x >= 0.0 && p.x <= side && p.y >= 0.0 && p.y <= side;
  }
};

}  // namespace khop
