#include "khop/gateway/validate.hpp"

#include <algorithm>
#include <sstream>

#include "khop/graph/components.hpp"

namespace khop {

std::string validate_backbone(const Graph& g, const Backbone& b) {
  std::ostringstream err;
  const std::size_t n = g.num_nodes();

  if (!std::is_sorted(b.heads.begin(), b.heads.end()) ||
      std::adjacent_find(b.heads.begin(), b.heads.end()) != b.heads.end()) {
    return "heads are not sorted-unique";
  }
  if (!std::is_sorted(b.gateways.begin(), b.gateways.end()) ||
      std::adjacent_find(b.gateways.begin(), b.gateways.end()) !=
          b.gateways.end()) {
    return "gateways are not sorted-unique";
  }
  for (NodeId h : b.heads) {
    if (h >= n) return "head id out of range";
  }
  for (NodeId w : b.gateways) {
    if (w >= n) return "gateway id out of range";
    if (std::binary_search(b.heads.begin(), b.heads.end(), w)) {
      err << "node " << w << " is both head and gateway";
      return err.str();
    }
  }
  for (const auto& [u, v] : b.virtual_links) {
    if (!std::binary_search(b.heads.begin(), b.heads.end(), u) ||
        !std::binary_search(b.heads.begin(), b.heads.end(), v)) {
      err << "virtual link (" << u << "," << v << ") endpoint is not a head";
      return err.str();
    }
  }

  if (!is_connected_subset(g, b.cds_mask(n))) {
    return "CDS (heads + gateways) is not connected in G";
  }
  return {};
}

}  // namespace khop
