#include "khop/gateway/head_sweep.hpp"

#include <algorithm>
#include <utility>

#include "khop/common/assert.hpp"
#include "khop/obs/metrics.hpp"
#include "khop/obs/telemetry.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {

namespace {

/// One head's share of the fused pass: neighbor heads discovered from the
/// sweep's reached set, and the canonical links for the pairs this head
/// sources (v > u, extracted from the same BFS state). `selected` is left
/// sorted ascending; links are emitted in ascending target order, matching
/// the source-major/ascending-target order of the grouped build.
struct PerHead {
  std::vector<NodeId> selected;
  std::vector<VirtualLink> links;
};

void sweep_one(const Graph& g, const Clustering& c, NodeId u, Hops horizon,
               Workspace& ws, PerHead& out) {
  ws.bfs.run(g, u, horizon);
  for (NodeId w : ws.bfs.reached()) {
    if (w == u || !c.is_head(w)) continue;
    out.selected.push_back(w);
  }
  // The reached set is level-ordered; selection lists and link targets are
  // id-ordered, so sort once here (NC discovery never yields duplicates).
  std::sort(out.selected.begin(), out.selected.end());
  for (NodeId v : out.selected) {
    if (v <= u) continue;  // pair (v, u) is extracted during v's own sweep
    VirtualLink link;
    link.u = u;
    link.v = v;
    link.hops = ws.bfs.dist(v);
    link.path = ws.bfs.extract_path(v);
    out.links.push_back(std::move(link));
  }
}

/// Head-index-ordered merge of the per-head slices into the two phase-1
/// outputs. Heads ascend in id, so link order is source-major ascending —
/// the same order VirtualLinkMap::build produces.
HeadSweep merge(const Clustering& c, std::vector<PerHead> slots) {
  // Per-head neighbor-head counts measure the density of the head overlay
  // the gateway stage prunes; observational only.
  if (obs::enabled()) {
    obs::Histogram& h =
        obs::Registry::global().histogram("backbone.head_neighbors");
    for (const PerHead& s : slots) h.record(s.selected.size());
  }
  HeadSweep r;
  r.sel.rule = NeighborRule::kAllWithin2k1;
  r.sel.selected.resize(c.heads.size());
  std::vector<VirtualLink> links;
  for (std::uint32_t i = 0; i < c.heads.size(); ++i) {
    const NodeId u = c.heads[i];
    for (NodeId v : slots[i].selected) {
      r.sel.head_pairs.emplace_back(std::min(u, v), std::max(u, v));
    }
    r.sel.selected[i] = std::move(slots[i].selected);
    for (VirtualLink& l : slots[i].links) links.push_back(std::move(l));
  }
  r.sel = finalize_selection(std::move(r.sel));
  r.links = VirtualLinkMap::from_links(std::move(links));
  return r;
}

}  // namespace

HeadSweep nc_sweep(const Graph& g, const Clustering& c, Workspace& ws) {
  KHOP_REQUIRE(!c.heads.empty(), "clustering has no heads");
  const Hops horizon = 2 * c.k + 1;
  std::vector<PerHead> slots(c.heads.size());
  for (std::uint32_t i = 0; i < c.heads.size(); ++i) {
    sweep_one(g, c, c.heads[i], horizon, ws, slots[i]);
  }
  return merge(c, std::move(slots));
}

HeadSweep nc_sweep(const Graph& g, const Clustering& c, ThreadPool& pool) {
  KHOP_REQUIRE(!c.heads.empty(), "clustering has no heads");
  const Hops horizon = 2 * c.k + 1;
  std::vector<PerHead> slots(c.heads.size());
  parallel_for_throwing(pool, c.heads.size(), [&](std::size_t i) {
    sweep_one(g, c, c.heads[i], horizon, tls_workspace(), slots[i]);
  });
  return merge(c, std::move(slots));
}

}  // namespace khop
