#include "khop/gateway/virtual_link.hpp"

#include <algorithm>
#include <map>

#include "khop/common/assert.hpp"
#include "khop/common/error.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {

std::uint64_t VirtualLinkMap::key(NodeId a, NodeId b) noexcept {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

VirtualLinkMap VirtualLinkMap::build(
    const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs,
    Workspace& ws) {
  VirtualLinkMap m;

  // Group pairs by smaller endpoint so each source needs a single BFS.
  std::map<NodeId, std::vector<NodeId>> by_source;
  for (const auto& [a, b] : pairs) {
    KHOP_REQUIRE(a != b, "virtual link endpoints must differ");
    by_source[std::min(a, b)].push_back(std::max(a, b));
  }

  for (auto& [src, targets] : by_source) {
    ws.bfs.run(g, src, kUnreachable);
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    for (NodeId dst : targets) {
      if (ws.bfs.dist(dst) == kUnreachable) {
        throw NotConnected("virtual link endpoints are disconnected in G");
      }
      VirtualLink link;
      link.u = src;
      link.v = dst;
      link.hops = ws.bfs.dist(dst);
      link.path = ws.bfs.extract_path(dst);
      m.index_.emplace(key(src, dst), m.links_.size());
      m.links_.push_back(std::move(link));
    }
  }
  return m;
}

VirtualLinkMap VirtualLinkMap::build(
    const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  return build(g, pairs, tls_workspace());
}

const VirtualLink& VirtualLinkMap::link(NodeId a, NodeId b) const {
  const auto it = index_.find(key(a, b));
  KHOP_REQUIRE(it != index_.end(), "virtual link not built for this pair");
  return links_[it->second];
}

bool VirtualLinkMap::contains(NodeId a, NodeId b) const {
  return index_.contains(key(a, b));
}

}  // namespace khop
