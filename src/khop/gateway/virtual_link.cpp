#include "khop/gateway/virtual_link.hpp"

#include <algorithm>
#include <utility>

#include "khop/common/assert.hpp"
#include "khop/common/error.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {

namespace {

/// Normalizes to (min,max), sorts, uniques: the flat-vector replacement for
/// the old std::map-of-vectors by-source grouping. The sorted vector is
/// source-major with ascending targets, so equal-source runs ARE the groups.
std::vector<std::pair<NodeId, NodeId>> normalized_pairs(
    const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  std::vector<std::pair<NodeId, NodeId>> np;
  np.reserve(pairs.size());
  for (const auto& [a, b] : pairs) {
    KHOP_REQUIRE(a != b, "virtual link endpoints must differ");
    np.emplace_back(std::min(a, b), std::max(a, b));
  }
  std::sort(np.begin(), np.end());
  np.erase(std::unique(np.begin(), np.end()), np.end());
  return np;
}

/// Extracts the links of one source group np[first..last) (all sharing
/// np[first].first as source) with a single sweep bounded at \p horizon.
/// If any target lies beyond the horizon the source is rerun unbounded
/// (identical dist/parent inside the horizon, so identical paths either
/// way). Returns the number of fallback reruns (0 or 1).
std::size_t extract_group(const Graph& g,
                          const std::pair<NodeId, NodeId>* first,
                          const std::pair<NodeId, NodeId>* last, Hops horizon,
                          Workspace& ws, std::vector<VirtualLink>& out) {
  const NodeId src = first->first;
  ws.bfs.run(g, src, horizon);
  std::size_t fallbacks = 0;
  if (horizon != kUnreachable) {
    bool beyond = false;
    for (const auto* it = first; it != last; ++it) {
      beyond = beyond || ws.bfs.dist(it->second) == kUnreachable;
    }
    if (beyond) {
      ws.bfs.run(g, src, kUnreachable);
      fallbacks = 1;
    }
  }
  for (const auto* it = first; it != last; ++it) {
    const NodeId dst = it->second;
    if (ws.bfs.dist(dst) == kUnreachable) {
      throw NotConnected("virtual link endpoints are disconnected in G");
    }
    VirtualLink link;
    link.u = src;
    link.v = dst;
    link.hops = ws.bfs.dist(dst);
    link.path = ws.bfs.extract_path(dst);
    out.push_back(std::move(link));
  }
  return fallbacks;
}

/// Half-open [begin, end) runs of equal source in a normalized pair vector.
std::vector<std::pair<std::size_t, std::size_t>> source_groups(
    const std::vector<std::pair<NodeId, NodeId>>& np) {
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  for (std::size_t i = 0; i < np.size();) {
    std::size_t j = i + 1;
    while (j < np.size() && np[j].first == np[i].first) ++j;
    groups.emplace_back(i, j);
    i = j;
  }
  return groups;
}

}  // namespace

std::uint64_t VirtualLinkMap::key(NodeId a, NodeId b) noexcept {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

VirtualLinkMap VirtualLinkMap::from_links(std::vector<VirtualLink> links) {
  VirtualLinkMap m;
  m.links_ = std::move(links);
  m.index_.reserve(m.links_.size());
  for (std::size_t i = 0; i < m.links_.size(); ++i) {
    const VirtualLink& l = m.links_[i];
    KHOP_REQUIRE(l.u < l.v, "virtual link endpoints must be (smaller, larger)");
    const bool inserted = m.index_.emplace(key(l.u, l.v), i).second;
    KHOP_REQUIRE(inserted, "duplicate virtual link pair");
  }
  return m;
}

VirtualLinkMap VirtualLinkMap::build_bounded(
    const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs,
    Hops horizon, Workspace& ws) {
  const auto np = normalized_pairs(pairs);
  std::vector<VirtualLink> links;
  links.reserve(np.size());
  std::size_t fallbacks = 0;
  for (const auto& [begin, end] : source_groups(np)) {
    fallbacks +=
        extract_group(g, np.data() + begin, np.data() + end, horizon, ws,
                      links);
  }
  VirtualLinkMap m = from_links(std::move(links));
  m.bounded_fallbacks_ = fallbacks;
  return m;
}

VirtualLinkMap VirtualLinkMap::build_bounded(
    const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs,
    Hops horizon) {
  return build_bounded(g, pairs, horizon, tls_workspace());
}

VirtualLinkMap VirtualLinkMap::build_bounded(
    const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs,
    Hops horizon, ThreadPool& pool) {
  const auto np = normalized_pairs(pairs);
  const auto groups = source_groups(np);
  std::vector<std::vector<VirtualLink>> slots(groups.size());
  std::vector<std::size_t> slot_fallbacks(groups.size(), 0);
  parallel_for_throwing(pool, groups.size(), [&](std::size_t gi) {
    slot_fallbacks[gi] =
        extract_group(g, np.data() + groups[gi].first,
                      np.data() + groups[gi].second, horizon, tls_workspace(),
                      slots[gi]);
  });

  // Deterministic merge in ascending source order (== group order).
  std::vector<VirtualLink> links;
  links.reserve(np.size());
  std::size_t fallbacks = 0;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    for (VirtualLink& l : slots[gi]) links.push_back(std::move(l));
    fallbacks += slot_fallbacks[gi];
  }
  VirtualLinkMap m = from_links(std::move(links));
  m.bounded_fallbacks_ = fallbacks;
  return m;
}

VirtualLinkMap VirtualLinkMap::build(
    const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs,
    Workspace& ws) {
  return build_bounded(g, pairs, kUnreachable, ws);
}

VirtualLinkMap VirtualLinkMap::build(
    const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  return build_bounded(g, pairs, kUnreachable, tls_workspace());
}

const VirtualLink& VirtualLinkMap::link(NodeId a, NodeId b) const {
  const auto it = index_.find(key(a, b));
  KHOP_REQUIRE(it != index_.end(), "virtual link not built for this pair");
  return links_[it->second];
}

bool VirtualLinkMap::contains(NodeId a, NodeId b) const {
  return index_.contains(key(a, b));
}

void VirtualLinkMap::insert(VirtualLink l) {
  KHOP_REQUIRE(l.u < l.v, "virtual link endpoints must be (smaller, larger)");
  const auto [it, inserted] = index_.emplace(key(l.u, l.v), links_.size());
  if (inserted) {
    links_.push_back(std::move(l));
  } else {
    links_[it->second] = std::move(l);
  }
}

bool VirtualLinkMap::erase(NodeId a, NodeId b) {
  const auto it = index_.find(key(a, b));
  if (it == index_.end()) return false;
  const std::size_t pos = it->second;
  index_.erase(it);
  if (pos + 1 != links_.size()) {
    links_[pos] = std::move(links_.back());
    index_[key(links_[pos].u, links_[pos].v)] = pos;
  }
  links_.pop_back();
  return true;
}

}  // namespace khop
