/// \file reference.hpp
/// Pre-PR4 gateway-layer implementations, preserved verbatim as independent
/// oracles. The production paths now bound every per-source BFS to the
/// paper's 2k+1 structural horizon, fuse NC head discovery with link
/// extraction (head_sweep.hpp), and optionally fan sweeps across a
/// ThreadPool; these reference versions keep the original structure — the
/// std::map-grouped build with one UNBOUNDED BFS per source, and the G-MST
/// complete virtual graph built from one unbounded allocating BFS per head.
/// They exist for the bit-exact equivalence suite and as the baseline the
/// perf-regression harness measures speedups against. Not for production
/// call sites.
#pragma once

#include <utility>
#include <vector>

#include "khop/gateway/backbone.hpp"
#include "khop/gateway/gmst.hpp"
#include "khop/gateway/virtual_link.hpp"

namespace khop::reference {

/// Original map-grouped unbounded-BFS build; output bit-identical to
/// khop::VirtualLinkMap::build (and to build_bounded at any valid horizon).
VirtualLinkMap build_virtual_links(
    const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs);

/// Original complete-virtual-graph G-MST; output bit-identical to
/// khop::gmst_gateways.
GmstResult gmst_gateways(const Graph& g, const Clustering& c);

/// Phase 2 composed entirely from the reference pieces above plus the
/// reference neighbor rules (nbr/reference.hpp); output bit-identical to
/// khop::build_backbone. (Mesh and LMSTGA are pure functions of the
/// selection and links, unchanged by PR4, and are shared.)
Backbone build_backbone(const Graph& g, const Clustering& c,
                        const BackboneSpec& spec);
Backbone build_backbone(const Graph& g, const Clustering& c, Pipeline p);

}  // namespace khop::reference
