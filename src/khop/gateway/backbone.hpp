/// \file backbone.hpp
/// Assembly of the full connected k-hop clustering backbone and the five
/// pipelines compared in the paper's evaluation.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/gateway/lmst.hpp"
#include "khop/gateway/virtual_link.hpp"
#include "khop/net/energy.hpp"
#include "khop/nbr/neighbor_rules.hpp"

namespace khop {

/// The five algorithm pipelines of the paper's section 4.
enum class Pipeline : std::uint8_t {
  kNcMesh,   ///< all heads within 2k+1 hops, mesh gateways
  kAcMesh,   ///< A-NCR heads, mesh gateways
  kNcLmst,   ///< all heads within 2k+1 hops, LMST gateways
  kAcLmst,   ///< A-NCR heads, LMST gateways (the paper's AC-LMST)
  kGmst,     ///< centralized global MST (lower bound)
};

std::string_view pipeline_name(Pipeline p);

/// Phase-2 gateway algorithm choice for custom (non-preset) backbones.
enum class GatewayAlgorithm : std::uint8_t {
  kMesh,  ///< one path per selected pair
  kLmst,  ///< LMSTGA
  kGmst,  ///< centralized global MST (ignores the neighbor rule)
};

/// Full phase-2 configuration. The paper's five pipelines are presets over
/// this space (see spec_for); the spec form additionally exposes the Wu-Lou
/// 2.5-hop rule (k = 1) and the LMST keep-rule ablation.
struct BackboneSpec {
  NeighborRule neighbor_rule = NeighborRule::kAdjacent;
  GatewayAlgorithm gateway = GatewayAlgorithm::kLmst;
  LmstKeepRule lmst_keep = LmstKeepRule::kEitherEndpoint;
};

/// The preset spec behind each paper pipeline.
BackboneSpec spec_for(Pipeline p);

/// All five, in the paper's comparison order.
inline constexpr Pipeline kAllPipelines[] = {
    Pipeline::kNcMesh, Pipeline::kAcMesh, Pipeline::kNcLmst,
    Pipeline::kAcLmst, Pipeline::kGmst};

/// A connected k-hop clustering backbone: clusterheads + gateway nodes +
/// the virtual links they realize.
struct Backbone {
  /// Preset identity when built from a Pipeline; kAcLmst placeholder for
  /// custom specs (spec below is authoritative either way).
  Pipeline pipeline = Pipeline::kAcLmst;
  BackboneSpec spec;
  std::vector<NodeId> heads;     ///< ascending
  std::vector<NodeId> gateways;  ///< ascending, disjoint from heads
  std::vector<std::pair<NodeId, NodeId>> virtual_links;  ///< realized pairs

  std::size_t cds_size() const noexcept {
    return heads.size() + gateways.size();
  }

  /// n-sized membership mask over heads ∪ gateways.
  std::vector<bool> cds_mask(std::size_t n) const;

  /// Per-node role vector (member / gateway / clusterhead).
  std::vector<NodeRole> roles(std::size_t n) const;
};

/// Runs phase 2 for a given clustering: neighbor selection per the pipeline,
/// then the pipeline's gateway algorithm.
Backbone build_backbone(const Graph& g, const Clustering& c, Pipeline p);

/// Runs phase 2 with a custom spec (e.g. the Wu-Lou 2.5-hop rule at k = 1,
/// or the intersection LMST keep rule).
Backbone build_backbone(const Graph& g, const Clustering& c,
                        const BackboneSpec& spec);

struct Workspace;
class ThreadPool;

/// Workspace variants: neighbor selection and virtual-link BFS runs reuse
/// \p ws. Bit-identical output; the overloads above forward here.
///
/// All per-head BFS work is bounded to the paper's 2k+1 structural horizon,
/// and the NC rule runs as ONE fused sweep per head (discovery + link
/// extraction, see gateway/head_sweep.hpp).
Backbone build_backbone(const Graph& g, const Clustering& c, Pipeline p,
                        Workspace& ws);
Backbone build_backbone(const Graph& g, const Clustering& c,
                        const BackboneSpec& spec, Workspace& ws);

/// Parallel variants: the per-head sweeps (NC discovery + link extraction,
/// AC/G-MST link extraction, G-MST head-graph build) fan out across \p pool;
/// each worker uses its thread's tls_workspace() and results merge in
/// head-index order, so the output is bit-identical to the serial overloads
/// for any thread count.
Backbone build_backbone(const Graph& g, const Clustering& c, Pipeline p,
                        ThreadPool& pool);
Backbone build_backbone(const Graph& g, const Clustering& c,
                        const BackboneSpec& spec, ThreadPool& pool);

}  // namespace khop
