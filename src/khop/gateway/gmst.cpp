#include "khop/gateway/gmst.hpp"

#include <algorithm>
#include <utility>

#include "khop/common/assert.hpp"
#include "khop/common/error.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {

namespace {

/// One head's virtual edges (i, j, d) for neighbor heads j > i inside the
/// horizon, read off the sweep's reached set. Emitting only j > i (heads
/// ascend in id, so w > u <=> j > i) yields each undirected edge once.
void head_edges_one(const Graph& g, const Clustering& c, std::uint32_t i,
                    Hops horizon, Workspace& ws,
                    std::vector<WeightedEdge>& out) {
  const NodeId u = c.heads[i];
  ws.bfs.run(g, u, horizon);
  for (NodeId w : ws.bfs.reached()) {
    if (w <= u || !c.is_head(w)) continue;
    out.push_back({i, c.cluster_of[w], ws.bfs.dist(w)});
  }
}

std::vector<WeightedEdge> head_edges(const Graph& g, const Clustering& c,
                                     Hops horizon, Workspace* ws,
                                     ThreadPool* pool) {
  const std::size_t h = c.heads.size();
  std::vector<std::vector<WeightedEdge>> slots(h);
  if (pool != nullptr) {
    parallel_for_throwing(*pool, h, [&](std::size_t i) {
      head_edges_one(g, c, static_cast<std::uint32_t>(i), horizon,
                     tls_workspace(), slots[i]);
    });
  } else {
    for (std::uint32_t i = 0; i < h; ++i) {
      head_edges_one(g, c, i, horizon, *ws, slots[i]);
    }
  }
  std::vector<WeightedEdge> edges;
  for (auto& s : slots) {
    edges.insert(edges.end(), s.begin(), s.end());
  }
  return edges;
}

GmstResult gmst_impl(const Graph& g, const Clustering& c, Workspace* ws,
                     ThreadPool* pool) {
  KHOP_REQUIRE(!c.heads.empty(), "clustering has no heads");
  const std::size_t h = c.heads.size();
  const Hops horizon = 2 * c.k + 1;

  std::vector<WeightedEdge> tree;
  try {
    tree = kruskal_mst(h, head_edges(g, c, horizon, ws, pool));
  } catch (const NotConnected&) {
    // The bounded head graph spans whenever every node is within k hops of
    // its head (see file comment); an invariant-violating clustering gets
    // the complete virtual graph instead. Kruskal's order is a strict total
    // order on head pairs, and every omitted edge sorts after the spanning
    // bounded set, so on spanning inputs both graphs give the same MST.
    tree = kruskal_mst(h, head_edges(g, c, kUnreachable, ws, pool));
  }

  GmstResult r;
  // Head indices are ascending in id, so index tie-breaking == id
  // tie-breaking; translate back to ids afterwards.
  r.tree.reserve(tree.size());
  for (const auto& e : tree) {
    r.tree.push_back({c.heads[e.u], c.heads[e.v], e.weight});
  }

  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(r.tree.size());
  for (const auto& e : r.tree) {
    pairs.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v));
  }
  const VirtualLinkMap links =
      pool != nullptr ? VirtualLinkMap::build_bounded(g, pairs, horizon, *pool)
                      : VirtualLinkMap::build_bounded(g, pairs, horizon, *ws);

  std::sort(pairs.begin(), pairs.end());
  r.kept_links = pairs;
  for (const auto& [u, v] : pairs) {
    const VirtualLink& link = links.link(u, v);
    for (std::size_t i = 1; i + 1 < link.path.size(); ++i) {
      const NodeId w = link.path[i];
      if (!c.is_head(w)) r.gateways.push_back(w);
    }
  }
  std::sort(r.gateways.begin(), r.gateways.end());
  r.gateways.erase(std::unique(r.gateways.begin(), r.gateways.end()),
                   r.gateways.end());
  return r;
}

}  // namespace

GmstResult gmst_gateways(const Graph& g, const Clustering& c, Workspace& ws) {
  return gmst_impl(g, c, &ws, nullptr);
}

GmstResult gmst_gateways(const Graph& g, const Clustering& c) {
  return gmst_impl(g, c, &tls_workspace(), nullptr);
}

GmstResult gmst_gateways(const Graph& g, const Clustering& c,
                         ThreadPool& pool) {
  return gmst_impl(g, c, nullptr, &pool);
}

}  // namespace khop
