#include "khop/gateway/gmst.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"
#include "khop/graph/bfs.hpp"

namespace khop {

GmstResult gmst_gateways(const Graph& g, const Clustering& c) {
  KHOP_REQUIRE(!c.heads.empty(), "clustering has no heads");
  const std::size_t h = c.heads.size();

  // Complete virtual graph over heads; indices into c.heads.
  std::vector<WeightedEdge> edges;
  edges.reserve(h * (h - 1) / 2);
  for (std::size_t i = 0; i < h; ++i) {
    const BfsTree tree = bfs(g, c.heads[i]);
    for (std::size_t j = i + 1; j < h; ++j) {
      const Hops d = tree.dist[c.heads[j]];
      KHOP_ASSERT(d != kUnreachable, "heads disconnected in G");
      edges.push_back(
          {static_cast<NodeId>(i), static_cast<NodeId>(j), d});
    }
  }

  GmstResult r;
  // Head indices are ascending in id, so index tie-breaking == id
  // tie-breaking; translate back to ids afterwards.
  for (const auto& e : kruskal_mst(h, std::move(edges))) {
    r.tree.push_back({c.heads[e.u], c.heads[e.v], e.weight});
  }

  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(r.tree.size());
  for (const auto& e : r.tree) {
    pairs.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v));
  }
  const VirtualLinkMap links = VirtualLinkMap::build(g, pairs);

  std::sort(pairs.begin(), pairs.end());
  r.kept_links = pairs;
  for (const auto& [u, v] : pairs) {
    const VirtualLink& link = links.link(u, v);
    for (std::size_t i = 1; i + 1 < link.path.size(); ++i) {
      const NodeId w = link.path[i];
      if (!c.is_head(w)) r.gateways.push_back(w);
    }
  }
  std::sort(r.gateways.begin(), r.gateways.end());
  r.gateways.erase(std::unique(r.gateways.begin(), r.gateways.end()),
                   r.gateways.end());
  return r;
}

}  // namespace khop
