/// \file validate.hpp
/// Backbone invariant checkers (Theorems 1 & 2 in executable form).
#pragma once

#include <string>

#include "khop/gateway/backbone.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

/// Verifies the backbone: heads/gateways disjoint and in range; every
/// realized virtual link's endpoints are heads; the CDS (heads ∪ gateways)
/// induces a connected subgraph of g (Theorem 2). Returns an empty string on
/// success, else a description of the first violation.
std::string validate_backbone(const Graph& g, const Backbone& b);

}  // namespace khop
