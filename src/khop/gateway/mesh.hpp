/// \file mesh.hpp
/// Mesh-based gateway selection (baseline, after Sinha-Sivakumar-Bharghavan):
/// realize *every* selected head pair with exactly one gateway path.
#pragma once

#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/gateway/virtual_link.hpp"
#include "khop/nbr/neighbor_rules.hpp"

namespace khop {

struct MeshResult {
  /// Unordered head pairs realized (all of sel.head_pairs).
  std::vector<std::pair<NodeId, NodeId>> kept_links;
  /// Interior nodes of the realized paths, minus any clusterheads. Sorted.
  std::vector<NodeId> gateways;
};

/// Marks gateways for every pair in \p sel using the canonical virtual links.
MeshResult mesh_gateways(const Clustering& c, const NeighborSelection& sel,
                         const VirtualLinkMap& links);

}  // namespace khop
