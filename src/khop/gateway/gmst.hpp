/// \file gmst.hpp
/// G-MST: the centralized global-minimum-spanning-tree baseline the paper
/// uses as a lower bound. Builds the virtual graph over all clusterheads
/// (weight = hop distance in G), takes its MST, and marks the interior nodes
/// of the tree edges' canonical shortest paths as gateways.
///
/// PR4: the virtual graph is built from one 2k+1-BOUNDED BFS per head
/// (neighbor heads read off the reached set) instead of one unbounded BFS
/// per head probing all H heads. Dropping the > 2k+1 edges cannot change the
/// MST: every node sits within k hops of its head, so walking any shortest
/// path between two heads yields a head chain whose edges are all <= 2k+1 —
/// a cycle in which any longer edge is the strict maximum (cycle property).
/// If the bounded head graph fails to span (input violating the clustering
/// invariant), the build transparently falls back to the complete graph, so
/// the output stays bit-identical to the reference on every spanning input.
#pragma once

#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/gateway/virtual_link.hpp"
#include "khop/graph/mst.hpp"

namespace khop {

struct Workspace;
class ThreadPool;

struct GmstResult {
  /// MST edges over head ids (weights are hop distances).
  std::vector<WeightedEdge> tree;
  /// Realized head pairs, (min,max), sorted.
  std::vector<std::pair<NodeId, NodeId>> kept_links;
  /// Interior nodes of tree-edge paths, minus heads. Sorted.
  std::vector<NodeId> gateways;
};

/// Computes the G-MST backbone for \p c over \p g.
GmstResult gmst_gateways(const Graph& g, const Clustering& c);

/// Workspace variant: per-head sweeps and link extraction reuse \p ws.
GmstResult gmst_gateways(const Graph& g, const Clustering& c, Workspace& ws);

/// Parallel variant: per-head sweeps fan out across \p pool (per-worker
/// tls workspaces), merged in head order. Bit-identical output.
GmstResult gmst_gateways(const Graph& g, const Clustering& c,
                         ThreadPool& pool);

}  // namespace khop
