/// \file gmst.hpp
/// G-MST: the centralized global-minimum-spanning-tree baseline the paper
/// uses as a lower bound. Builds the complete virtual graph over all
/// clusterheads (weight = hop distance in G), takes its MST, and marks the
/// interior nodes of the tree edges' canonical shortest paths as gateways.
#pragma once

#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/gateway/virtual_link.hpp"
#include "khop/graph/mst.hpp"

namespace khop {

struct GmstResult {
  /// MST edges over head ids (weights are hop distances).
  std::vector<WeightedEdge> tree;
  /// Realized head pairs, (min,max), sorted.
  std::vector<std::pair<NodeId, NodeId>> kept_links;
  /// Interior nodes of tree-edge paths, minus heads. Sorted.
  std::vector<NodeId> gateways;
};

/// Computes the G-MST backbone for \p c over \p g.
GmstResult gmst_gateways(const Graph& g, const Clustering& c);

}  // namespace khop
