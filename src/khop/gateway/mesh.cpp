#include "khop/gateway/mesh.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"

namespace khop {

namespace {

/// Appends the interior nodes of \p link's path, skipping clusterheads
/// (a shortest path may route through a third head; heads are already
/// backbone nodes and must not be double-counted as gateways).
void collect_interior(const VirtualLink& link, const Clustering& c,
                      std::vector<NodeId>& out) {
  for (std::size_t i = 1; i + 1 < link.path.size(); ++i) {
    const NodeId w = link.path[i];
    if (!c.is_head(w)) out.push_back(w);
  }
}

}  // namespace

MeshResult mesh_gateways(const Clustering& c, const NeighborSelection& sel,
                         const VirtualLinkMap& links) {
  MeshResult r;
  r.kept_links = sel.head_pairs;
  for (const auto& [u, v] : sel.head_pairs) {
    collect_interior(links.link(u, v), c, r.gateways);
  }
  std::sort(r.gateways.begin(), r.gateways.end());
  r.gateways.erase(std::unique(r.gateways.begin(), r.gateways.end()),
                   r.gateways.end());
  return r;
}

}  // namespace khop
