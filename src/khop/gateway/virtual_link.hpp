/// \file virtual_link.hpp
/// Virtual links between clusterheads (paper section 3.2): for a selected
/// head pair, the canonical shortest path in G connecting them; its hop count
/// is the pair's "virtual distance" and its interior nodes are the gateway
/// candidates.
///
/// Canonicality: the path is extracted from a min-id-parent BFS rooted at the
/// smaller head id, so the same topology always yields the same gateways.
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "khop/common/types.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

struct Workspace;

struct VirtualLink {
  NodeId u = kInvalidNode;  ///< smaller head id
  NodeId v = kInvalidNode;  ///< larger head id
  Hops hops = 0;            ///< virtual distance
  std::vector<NodeId> path; ///< canonical shortest path u..v inclusive
};

/// Canonical-shortest-path store for a set of head pairs.
class VirtualLinkMap {
 public:
  /// Builds links for all \p pairs (unordered (min,max) head-id pairs).
  /// One BFS per distinct smaller endpoint.
  static VirtualLinkMap build(
      const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs);

  /// Workspace variant: the per-source canonical BFS runs reuse \p ws.
  /// Bit-identical output; the overload above forwards here.
  static VirtualLinkMap build(
      const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs,
      Workspace& ws);

  /// Link for the unordered pair {a, b}. Throws InvalidArgument if absent.
  const VirtualLink& link(NodeId a, NodeId b) const;

  bool contains(NodeId a, NodeId b) const;

  const std::vector<VirtualLink>& all() const noexcept { return links_; }

 private:
  std::vector<VirtualLink> links_;
  std::unordered_map<std::uint64_t, std::size_t> index_;

  static std::uint64_t key(NodeId a, NodeId b) noexcept;
};

}  // namespace khop
