/// \file virtual_link.hpp
/// Virtual links between clusterheads (paper section 3.2): for a selected
/// head pair, the canonical shortest path in G connecting them; its hop count
/// is the pair's "virtual distance" and its interior nodes are the gateway
/// candidates.
///
/// Canonicality: the path is extracted from a min-id-parent BFS rooted at the
/// smaller head id, so the same topology always yields the same gateways.
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "khop/common/types.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

struct Workspace;
class ThreadPool;

struct VirtualLink {
  NodeId u = kInvalidNode;  ///< smaller head id
  NodeId v = kInvalidNode;  ///< larger head id
  Hops hops = 0;            ///< virtual distance
  std::vector<NodeId> path; ///< canonical shortest path u..v inclusive
};

/// Canonical-shortest-path store for a set of head pairs.
class VirtualLinkMap {
 public:
  /// Builds links for all \p pairs (unordered (min,max) head-id pairs).
  /// One unbounded BFS per distinct smaller endpoint.
  static VirtualLinkMap build(
      const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs);

  /// Workspace variant: the per-source canonical BFS runs reuse \p ws.
  /// Bit-identical output; the overload above forwards here.
  static VirtualLinkMap build(
      const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs,
      Workspace& ws);

  /// Horizon-bounded build: each per-source sweep stops at \p horizon hops.
  /// The paper's structure guarantees every selected pair lies within
  /// 2k+1 hops, so backbone construction passes that bound; a pair whose
  /// endpoints are farther apart (invariant-violating input) transparently
  /// reruns its source unbounded, so the output — including the
  /// NotConnected throw for truly disconnected endpoints — is bit-identical
  /// to the unbounded build on EVERY input. Pass kUnreachable for an
  /// unbounded build (what build() does).
  static VirtualLinkMap build_bounded(
      const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs,
      Hops horizon, Workspace& ws);

  static VirtualLinkMap build_bounded(
      const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs,
      Hops horizon);

  /// Parallel bounded build: per-source sweeps fan out across \p pool's
  /// workers (each using its thread's tls_workspace()) and merge in
  /// ascending source order, so the output is bit-identical to the serial
  /// overloads for any thread count.
  static VirtualLinkMap build_bounded(
      const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs,
      Hops horizon, ThreadPool& pool);

  /// Adopts already-extracted links. \pre each link has u < v; no duplicate
  /// (u,v) keys. Used by the fused NC sweep (gateway/head_sweep.hpp), which
  /// extracts links during head discovery, and by the reference oracle.
  static VirtualLinkMap from_links(std::vector<VirtualLink> links);

  /// Link for the unordered pair {a, b}. Throws InvalidArgument if absent.
  const VirtualLink& link(NodeId a, NodeId b) const;

  bool contains(NodeId a, NodeId b) const;

  /// Upserts a link: replaces the stored path for the pair if present, else
  /// adds it. Used by the churn engine's incremental re-sweeps.
  /// \pre l.u < l.v
  void insert(VirtualLink l);

  /// Drops the link for the unordered pair {a, b} if present; returns
  /// whether one was removed. O(1) (swap-pop).
  bool erase(NodeId a, NodeId b);

  const std::vector<VirtualLink>& all() const noexcept { return links_; }

  /// Number of sources whose bounded sweep missed a target and was rerun
  /// unbounded (0 whenever the 2k+1 invariant holds; diagnostic only).
  std::size_t bounded_fallbacks() const noexcept { return bounded_fallbacks_; }

 private:
  std::vector<VirtualLink> links_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  std::size_t bounded_fallbacks_ = 0;

  static std::uint64_t key(NodeId a, NodeId b) noexcept;
};

}  // namespace khop
