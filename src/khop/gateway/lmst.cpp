#include "khop/gateway/lmst.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "khop/common/assert.hpp"
#include "khop/graph/mst.hpp"

namespace khop {

namespace {

/// Set of selected unordered pairs for O(log) membership tests.
using PairSet = std::set<std::pair<NodeId, NodeId>>;

std::pair<NodeId, NodeId> ordered(NodeId a, NodeId b) {
  return {std::min(a, b), std::max(a, b)};
}

}  // namespace

LmstResult lmst_gateways(const Clustering& c, const NeighborSelection& sel,
                         const VirtualLinkMap& links, LmstKeepRule keep) {
  KHOP_REQUIRE(sel.selected.size() == c.heads.size(),
               "selection does not match clustering");
  const PairSet pair_set(sel.head_pairs.begin(), sel.head_pairs.end());

  // Directed keep decisions: (head u, neighbor v) kept by u's local MST.
  std::set<std::pair<NodeId, NodeId>> kept_directed;

  for (std::uint32_t i = 0; i < c.heads.size(); ++i) {
    const NodeId u = c.heads[i];
    const auto& nbrs = sel.selected[i];
    if (nbrs.empty()) continue;

    // Local node set {u} ∪ S(u), ascending by head id. Local index order is
    // therefore id order, so comparing local indices == comparing ids, which
    // keeps edge_less's tie-breaking faithful to the paper's id rule.
    std::vector<NodeId> local_nodes;
    local_nodes.reserve(nbrs.size() + 1);
    local_nodes.push_back(u);
    local_nodes.insert(local_nodes.end(), nbrs.begin(), nbrs.end());
    std::sort(local_nodes.begin(), local_nodes.end());

    std::map<NodeId, NodeId> local_of;  // head id -> local index
    for (NodeId li = 0; li < local_nodes.size(); ++li) {
      local_of[local_nodes[li]] = li;
    }

    // Local virtual-edge adjacency: every selected pair with both endpoints
    // in the local set (u knows these from its neighbors' broadcasts).
    std::vector<std::vector<WeightedEdge>> adj(local_nodes.size());
    for (std::size_t a = 0; a < local_nodes.size(); ++a) {
      for (std::size_t b = a + 1; b < local_nodes.size(); ++b) {
        const auto p = ordered(local_nodes[a], local_nodes[b]);
        if (!pair_set.contains(p)) continue;
        const Hops w = links.link(p.first, p.second).hops;
        adj[a].push_back({static_cast<NodeId>(a), static_cast<NodeId>(b), w});
        adj[b].push_back({static_cast<NodeId>(b), static_cast<NodeId>(a), w});
      }
    }

    // The local graph is connected: u has a selected pair with every member
    // of S(u) by construction.
    const std::vector<NodeId> parent =
        prim_mst(local_nodes.size(), adj, local_of.at(u));

    // u keeps exactly the on-tree links incident to itself.
    const NodeId u_local = local_of.at(u);
    for (NodeId li = 0; li < local_nodes.size(); ++li) {
      if (parent[li] == u_local) {
        kept_directed.emplace(u, local_nodes[li]);
      } else if (li == u_local && parent[li] != kInvalidNode) {
        kept_directed.emplace(u, local_nodes[parent[li]]);
      }
    }
  }

  // Realize links per the keep rule (union by default, intersection as the
  // stricter LMST G0 ∩ G1 variant).
  LmstResult r;
  std::set<std::pair<NodeId, NodeId>> undirected;
  for (const auto& [from, to] : kept_directed) {
    undirected.insert(ordered(from, to));
  }
  for (const auto& p : undirected) {
    const bool fwd = kept_directed.contains({p.first, p.second});
    const bool rev = kept_directed.contains({p.second, p.first});
    if (fwd != rev) ++r.asymmetric_links;
    if (keep == LmstKeepRule::kBothEndpoints && !(fwd && rev)) continue;
    r.kept_links.push_back(p);
  }

  for (const auto& [u, v] : r.kept_links) {
    const VirtualLink& link = links.link(u, v);
    for (std::size_t i = 1; i + 1 < link.path.size(); ++i) {
      const NodeId w = link.path[i];
      if (!c.is_head(w)) r.gateways.push_back(w);
    }
  }
  std::sort(r.gateways.begin(), r.gateways.end());
  r.gateways.erase(std::unique(r.gateways.begin(), r.gateways.end()),
                   r.gateways.end());
  return r;
}

}  // namespace khop
