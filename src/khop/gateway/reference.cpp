// Verbatim pre-PR4 gateway implementations (see reference.hpp). Kept
// byte-for-byte close to the originals on purpose — do not "clean up".
#include "khop/gateway/reference.hpp"

#include <algorithm>
#include <map>

#include "khop/common/assert.hpp"
#include "khop/common/error.hpp"
#include "khop/gateway/lmst.hpp"
#include "khop/gateway/mesh.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/graph/mst.hpp"
#include "khop/nbr/reference.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop::reference {

VirtualLinkMap build_virtual_links(
    const Graph& g, const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  Workspace ws;  // oracle independence: never shares scratch with production

  // Group pairs by smaller endpoint so each source needs a single BFS.
  std::map<NodeId, std::vector<NodeId>> by_source;
  for (const auto& [a, b] : pairs) {
    KHOP_REQUIRE(a != b, "virtual link endpoints must differ");
    by_source[std::min(a, b)].push_back(std::max(a, b));
  }

  std::vector<VirtualLink> links;
  for (auto& [src, targets] : by_source) {
    ws.bfs.run(g, src, kUnreachable);
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    for (NodeId dst : targets) {
      if (ws.bfs.dist(dst) == kUnreachable) {
        throw NotConnected("virtual link endpoints are disconnected in G");
      }
      VirtualLink link;
      link.u = src;
      link.v = dst;
      link.hops = ws.bfs.dist(dst);
      link.path = ws.bfs.extract_path(dst);
      links.push_back(std::move(link));
    }
  }
  return VirtualLinkMap::from_links(std::move(links));
}

GmstResult gmst_gateways(const Graph& g, const Clustering& c) {
  KHOP_REQUIRE(!c.heads.empty(), "clustering has no heads");
  const std::size_t h = c.heads.size();

  // Complete virtual graph over heads; indices into c.heads.
  std::vector<WeightedEdge> edges;
  edges.reserve(h * (h - 1) / 2);
  for (std::size_t i = 0; i < h; ++i) {
    const BfsTree tree = bfs(g, c.heads[i]);
    for (std::size_t j = i + 1; j < h; ++j) {
      const Hops d = tree.dist[c.heads[j]];
      KHOP_ASSERT(d != kUnreachable, "heads disconnected in G");
      edges.push_back(
          {static_cast<NodeId>(i), static_cast<NodeId>(j), d});
    }
  }

  GmstResult r;
  // Head indices are ascending in id, so index tie-breaking == id
  // tie-breaking; translate back to ids afterwards.
  for (const auto& e : kruskal_mst(h, std::move(edges))) {
    r.tree.push_back({c.heads[e.u], c.heads[e.v], e.weight});
  }

  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(r.tree.size());
  for (const auto& e : r.tree) {
    pairs.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v));
  }
  const VirtualLinkMap links = build_virtual_links(g, pairs);

  std::sort(pairs.begin(), pairs.end());
  r.kept_links = pairs;
  for (const auto& [u, v] : pairs) {
    const VirtualLink& link = links.link(u, v);
    for (std::size_t i = 1; i + 1 < link.path.size(); ++i) {
      const NodeId w = link.path[i];
      if (!c.is_head(w)) r.gateways.push_back(w);
    }
  }
  std::sort(r.gateways.begin(), r.gateways.end());
  r.gateways.erase(std::unique(r.gateways.begin(), r.gateways.end()),
                   r.gateways.end());
  return r;
}

Backbone build_backbone(const Graph& g, const Clustering& c,
                        const BackboneSpec& spec) {
  Backbone b;
  b.spec = spec;
  b.heads = c.heads;

  if (spec.gateway == GatewayAlgorithm::kGmst) {
    GmstResult r = reference::gmst_gateways(g, c);
    b.gateways = std::move(r.gateways);
    b.virtual_links = std::move(r.kept_links);
    return b;
  }

  const NeighborSelection sel =
      reference::select_neighbors(g, c, spec.neighbor_rule);
  const VirtualLinkMap links = build_virtual_links(g, sel.head_pairs);

  if (spec.gateway == GatewayAlgorithm::kMesh) {
    MeshResult r = mesh_gateways(c, sel, links);
    b.gateways = std::move(r.gateways);
    b.virtual_links = std::move(r.kept_links);
  } else {
    LmstResult r = lmst_gateways(c, sel, links, spec.lmst_keep);
    b.gateways = std::move(r.gateways);
    b.virtual_links = std::move(r.kept_links);
  }
  return b;
}

Backbone build_backbone(const Graph& g, const Clustering& c, Pipeline p) {
  Backbone b = reference::build_backbone(g, c, spec_for(p));
  b.pipeline = p;
  return b;
}

}  // namespace khop::reference
