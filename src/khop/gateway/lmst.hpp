/// \file lmst.hpp
/// LMST-based gateway algorithm (LMSTGA, paper section 3.2).
///
/// Each clusterhead u views its selected neighbor heads S(u) as a virtual
/// 1-hop neighborhood: it knows every virtual link among {u} ∪ S(u) (each
/// head broadcasts its own S and distances - step 7 of Algorithm AC-LMST)
/// and builds a local minimum spanning tree rooted at itself, using hop
/// counts as weights and head-id pairs to break ties. Only the on-tree links
/// incident to u are kept by u; a virtual link survives if either endpoint
/// keeps it (the LMST G0 union), exactly the structure Theorem 2's induction
/// requires. Interior nodes of surviving links become gateways.
#pragma once

#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/gateway/virtual_link.hpp"
#include "khop/nbr/neighbor_rules.hpp"

namespace khop {

/// Which directed keep-decisions realize a virtual link.
///
/// Li-Hou-Sha prove connectivity for both the union graph G0 (a link
/// survives if either endpoint keeps it) and the intersection G0 ∩ G1 (both
/// endpoints must keep it); the paper's Theorem 2 induction goes through for
/// either. Union is the faithful reading of LMSTGA ("each clusterhead
/// selects the on-tree neighbors to connect to"); intersection prunes the
/// one-sided links and is provided as an ablation.
enum class LmstKeepRule : std::uint8_t {
  kEitherEndpoint,  ///< G0 union - paper default
  kBothEndpoints,   ///< G0 ∩ G1 - stricter, still connected
};

struct LmstResult {
  /// Virtual links kept by at least one endpoint, as (min,max) head ids.
  std::vector<std::pair<NodeId, NodeId>> kept_links;
  /// Interior nodes of kept links, minus clusterheads. Sorted.
  std::vector<NodeId> gateways;
  /// Links kept by exactly one endpoint (diagnostic: the LMST G0 asymmetry).
  std::size_t asymmetric_links = 0;
};

/// Runs LMSTGA on the given neighbor selection.
/// \pre every selected pair has a virtual link in \p links
LmstResult lmst_gateways(const Clustering& c, const NeighborSelection& sel,
                         const VirtualLinkMap& links,
                         LmstKeepRule keep = LmstKeepRule::kEitherEndpoint);

}  // namespace khop
