/// \file head_sweep.hpp
/// Fused NC head-neighbor discovery + virtual-link extraction: ONE bounded
/// BFS (horizon 2k+1) per clusterhead serves both phase-1 questions at once.
///
/// The paper's structure makes this possible: under the NC rule a head's
/// neighbor heads are exactly the heads inside its 2k+1-hop ball, and the
/// canonical virtual link for a pair (u, v), u < v, is extracted from the
/// min-id-parent BFS rooted at u — the very sweep that discovered v. The
/// pre-PR4 layering ran this as two passes (select_nc: one bounded BFS per
/// head plus an O(H) all-heads probe; VirtualLinkMap::build: one UNBOUNDED
/// BFS per source head), making backbone construction ~33x the cost of the
/// clustering it decorates at n~8000. The fused sweep halves the BFS count,
/// bounds every sweep, and replaces the O(H^2) probes with an O(|reached|)
/// scan against the clustering's O(1) head test.
///
/// Determinism: sweeps are independent per head; the parallel overload fans
/// them across the pool (per-worker tls_workspace()) and merges results in
/// head-index order, so the output is bit-identical to the serial overload
/// for any thread count — and both match the reference two-pass pipeline
/// (nbr/reference.hpp + gateway/reference.hpp) exactly.
#pragma once

#include "khop/cluster/clustering.hpp"
#include "khop/gateway/virtual_link.hpp"
#include "khop/nbr/neighbor_rules.hpp"

namespace khop {

struct Workspace;
class ThreadPool;

/// Both phase-1 outputs of one fused pass over the clusterheads.
struct HeadSweep {
  NeighborSelection sel;  ///< NC selection (rule kAllWithin2k1)
  VirtualLinkMap links;   ///< canonical links for every pair in sel
};

/// Serial fused sweep; BFS runs reuse \p ws.
HeadSweep nc_sweep(const Graph& g, const Clustering& c, Workspace& ws);

/// Parallel fused sweep across \p pool. Bit-identical output.
HeadSweep nc_sweep(const Graph& g, const Clustering& c, ThreadPool& pool);

}  // namespace khop
