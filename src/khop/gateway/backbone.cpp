#include "khop/gateway/backbone.hpp"

#include <utility>

#include "khop/common/assert.hpp"
#include "khop/gateway/gmst.hpp"
#include "khop/gateway/head_sweep.hpp"
#include "khop/gateway/lmst.hpp"
#include "khop/gateway/mesh.hpp"
#include "khop/obs/trace.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {

std::string_view pipeline_name(Pipeline p) {
  switch (p) {
    case Pipeline::kNcMesh: return "NC-Mesh";
    case Pipeline::kAcMesh: return "AC-Mesh";
    case Pipeline::kNcLmst: return "NC-LMST";
    case Pipeline::kAcLmst: return "AC-LMST";
    case Pipeline::kGmst:   return "G-MST";
  }
  KHOP_ASSERT(false, "unknown pipeline");
  return {};
}

BackboneSpec spec_for(Pipeline p) {
  BackboneSpec spec;
  switch (p) {
    case Pipeline::kNcMesh:
      spec.neighbor_rule = NeighborRule::kAllWithin2k1;
      spec.gateway = GatewayAlgorithm::kMesh;
      break;
    case Pipeline::kAcMesh:
      spec.neighbor_rule = NeighborRule::kAdjacent;
      spec.gateway = GatewayAlgorithm::kMesh;
      break;
    case Pipeline::kNcLmst:
      spec.neighbor_rule = NeighborRule::kAllWithin2k1;
      spec.gateway = GatewayAlgorithm::kLmst;
      break;
    case Pipeline::kAcLmst:
      spec.neighbor_rule = NeighborRule::kAdjacent;
      spec.gateway = GatewayAlgorithm::kLmst;
      break;
    case Pipeline::kGmst:
      spec.gateway = GatewayAlgorithm::kGmst;
      break;
  }
  return spec;
}

std::vector<bool> Backbone::cds_mask(std::size_t n) const {
  std::vector<bool> mask(n, false);
  for (NodeId h : heads) {
    KHOP_REQUIRE(h < n, "head out of range");
    mask[h] = true;
  }
  for (NodeId g : gateways) {
    KHOP_REQUIRE(g < n, "gateway out of range");
    mask[g] = true;
  }
  return mask;
}

std::vector<NodeRole> Backbone::roles(std::size_t n) const {
  std::vector<NodeRole> r(n, NodeRole::kMember);
  for (NodeId g : gateways) {
    KHOP_REQUIRE(g < n, "gateway out of range");
    r[g] = NodeRole::kGateway;
  }
  for (NodeId h : heads) {
    KHOP_REQUIRE(h < n, "head out of range");
    r[h] = NodeRole::kClusterhead;
  }
  return r;
}

namespace {

/// One of \p ws / \p pool is set; pool selects the parallel sweep variants.
Backbone build_backbone_impl(const Graph& g, const Clustering& c,
                             const BackboneSpec& spec, Workspace* ws,
                             ThreadPool* pool) {
  obs::Span span("backbone/build");
  span.arg("heads", static_cast<std::int64_t>(c.heads.size()));

  Backbone b;
  b.spec = spec;
  b.heads = c.heads;

  if (spec.gateway == GatewayAlgorithm::kGmst) {
    obs::Span gw_span("backbone/gmst");
    GmstResult r =
        pool != nullptr ? gmst_gateways(g, c, *pool) : gmst_gateways(g, c, *ws);
    b.gateways = std::move(r.gateways);
    b.virtual_links = std::move(r.kept_links);
    span.arg("gateways", static_cast<std::int64_t>(b.gateways.size()));
    return b;
  }

  NeighborSelection sel;
  VirtualLinkMap links;
  if (spec.neighbor_rule == NeighborRule::kAllWithin2k1) {
    // NC: one fused sweep per head discovers neighbor heads AND extracts
    // their virtual links (no separate per-source BFS pass at all).
    obs::Span sweep_span("backbone/head_sweep");
    HeadSweep sweep =
        pool != nullptr ? nc_sweep(g, c, *pool) : nc_sweep(g, c, *ws);
    sel = std::move(sweep.sel);
    links = std::move(sweep.links);
    sweep_span.arg("head_pairs", static_cast<std::int64_t>(sel.head_pairs.size()));
  } else {
    // AC / Wu-Lou selections need no BFS of their own (adjacency scan /
    // horizon-3 sweeps); their pairs all sit within 2k+1 hops, so link
    // extraction runs horizon-bounded.
    obs::Span sel_span("backbone/select_neighbors");
    sel = select_neighbors(g, c, spec.neighbor_rule,
                           pool != nullptr ? tls_workspace() : *ws);
    sel_span.arg("head_pairs", static_cast<std::int64_t>(sel.head_pairs.size()));
    const Hops horizon = 2 * c.k + 1;
    obs::Span links_span("backbone/extract_links");
    links = pool != nullptr
                ? VirtualLinkMap::build_bounded(g, sel.head_pairs, horizon,
                                                *pool)
                : VirtualLinkMap::build_bounded(g, sel.head_pairs, horizon,
                                                *ws);
  }

  {
    obs::Span gw_span(spec.gateway == GatewayAlgorithm::kMesh
                          ? "backbone/mesh"
                          : "backbone/lmst");
    if (spec.gateway == GatewayAlgorithm::kMesh) {
      MeshResult r = mesh_gateways(c, sel, links);
      b.gateways = std::move(r.gateways);
      b.virtual_links = std::move(r.kept_links);
    } else {
      LmstResult r = lmst_gateways(c, sel, links, spec.lmst_keep);
      b.gateways = std::move(r.gateways);
      b.virtual_links = std::move(r.kept_links);
    }
  }
  span.arg("gateways", static_cast<std::int64_t>(b.gateways.size()));
  return b;
}

}  // namespace

Backbone build_backbone(const Graph& g, const Clustering& c,
                        const BackboneSpec& spec, Workspace& ws) {
  return build_backbone_impl(g, c, spec, &ws, nullptr);
}

Backbone build_backbone(const Graph& g, const Clustering& c,
                        const BackboneSpec& spec, ThreadPool& pool) {
  return build_backbone_impl(g, c, spec, nullptr, &pool);
}

Backbone build_backbone(const Graph& g, const Clustering& c,
                        const BackboneSpec& spec) {
  return build_backbone(g, c, spec, tls_workspace());
}

Backbone build_backbone(const Graph& g, const Clustering& c, Pipeline p,
                        Workspace& ws) {
  Backbone b = build_backbone(g, c, spec_for(p), ws);
  b.pipeline = p;
  return b;
}

Backbone build_backbone(const Graph& g, const Clustering& c, Pipeline p,
                        ThreadPool& pool) {
  Backbone b = build_backbone(g, c, spec_for(p), pool);
  b.pipeline = p;
  return b;
}

Backbone build_backbone(const Graph& g, const Clustering& c, Pipeline p) {
  return build_backbone(g, c, p, tls_workspace());
}

}  // namespace khop
