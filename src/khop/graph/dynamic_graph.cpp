#include "khop/graph/dynamic_graph.hpp"

#include <algorithm>
#include <sstream>

#include "khop/common/assert.hpp"

namespace khop {

namespace {

/// Sorted-vector insert; returns false if \p v was already present.
bool sorted_insert(std::vector<NodeId>& list, NodeId v) {
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it != list.end() && *it == v) return false;
  list.insert(it, v);
  return true;
}

/// Sorted-vector erase; returns false if \p v was absent.
bool sorted_erase(std::vector<NodeId>& list, NodeId v) {
  const auto it = std::lower_bound(list.begin(), list.end(), v);
  if (it == list.end() || *it != v) return false;
  list.erase(it);
  return true;
}

}  // namespace

DynamicGraph::DynamicGraph(const Graph& g)
    : adj_(g.num_nodes()),
      alive_(g.num_nodes(), 1),
      num_alive_(g.num_nodes()),
      num_edges_(g.num_edges()) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    adj_[u].assign(nbrs.begin(), nbrs.end());
  }
}

DynamicGraph DynamicGraph::from_state(std::vector<std::vector<NodeId>> adj,
                                      std::vector<char> alive) {
  KHOP_REQUIRE(adj.size() == alive.size(),
               "adjacency and liveness mask sizes differ");
  DynamicGraph g;
  g.adj_ = std::move(adj);
  g.alive_ = std::move(alive);
  std::size_t endpoints = 0;
  for (NodeId u = 0; u < g.adj_.size(); ++u) {
    if (g.alive_[u]) ++g.num_alive_;
    endpoints += g.adj_[u].size();
  }
  KHOP_REQUIRE(endpoints % 2 == 0, "odd adjacency endpoint count");
  g.num_edges_ = endpoints / 2;
  const std::string s = g.check_consistency();
  KHOP_REQUIRE(s.empty(), "restored graph is inconsistent: " + s);
  return g;
}

bool DynamicGraph::alive(NodeId u) const {
  check_node(u);
  return alive_[u] != 0;
}

std::span<const NodeId> DynamicGraph::neighbors(NodeId u) const {
  check_node(u);
  return adj_[u];
}

std::size_t DynamicGraph::degree(NodeId u) const {
  check_node(u);
  return adj_[u].size();
}

bool DynamicGraph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  return std::binary_search(adj_[u].begin(), adj_[u].end(), v);
}

std::vector<NodeId> DynamicGraph::remove_node(NodeId u) {
  KHOP_REQUIRE(alive(u), "cannot remove a dead node");
  std::vector<NodeId> former(std::move(adj_[u]));
  adj_[u].clear();
  for (NodeId w : former) {
    const bool erased = sorted_erase(adj_[w], u);
    KHOP_ASSERT(erased, "asymmetric adjacency");
  }
  num_edges_ -= former.size();
  alive_[u] = 0;
  --num_alive_;
  return former;
}

void DynamicGraph::add_node(NodeId u, std::span<const NodeId> nbrs) {
  check_node(u);
  KHOP_REQUIRE(alive_[u] == 0, "cannot revive an alive node");
  KHOP_ASSERT(adj_[u].empty(), "dead node with edges");
  for (NodeId w : nbrs) {
    KHOP_REQUIRE(w != u, "self-loops are not allowed");
    KHOP_REQUIRE(alive(w), "join neighbor must be alive");
    const bool inserted = sorted_insert(adj_[u], w);
    KHOP_REQUIRE(inserted, "duplicate join neighbor");
    sorted_insert(adj_[w], u);
  }
  num_edges_ += adj_[u].size();
  alive_[u] = 1;
  ++num_alive_;
}

bool DynamicGraph::add_edge(NodeId u, NodeId v) {
  KHOP_REQUIRE(u != v, "self-loops are not allowed");
  KHOP_REQUIRE(alive(u) && alive(v), "edge endpoints must be alive");
  if (!sorted_insert(adj_[u], v)) return false;
  sorted_insert(adj_[v], u);
  ++num_edges_;
  return true;
}

bool DynamicGraph::remove_edge(NodeId u, NodeId v) {
  KHOP_REQUIRE(alive(u) && alive(v), "edge endpoints must be alive");
  if (!sorted_erase(adj_[u], v)) return false;
  sorted_erase(adj_[v], u);
  --num_edges_;
  return true;
}

std::vector<NodeId> DynamicGraph::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(num_alive_);
  for (NodeId u = 0; u < alive_.size(); ++u) {
    if (alive_[u]) out.push_back(u);
  }
  return out;
}

Graph DynamicGraph::snapshot() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges_);
  for (NodeId u = 0; u < adj_.size(); ++u) {
    for (NodeId v : adj_[u]) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(adj_.size(), edges);
}

std::string DynamicGraph::check_consistency() const {
  std::size_t alive_count = 0;
  std::size_t endpoint_count = 0;
  for (NodeId u = 0; u < adj_.size(); ++u) {
    if (alive_[u]) ++alive_count;
    if (!alive_[u] && !adj_[u].empty()) {
      return "dead node " + std::to_string(u) + " has edges";
    }
    if (!std::is_sorted(adj_[u].begin(), adj_[u].end())) {
      return "unsorted adjacency at node " + std::to_string(u);
    }
    if (std::adjacent_find(adj_[u].begin(), adj_[u].end()) != adj_[u].end()) {
      return "duplicate edge at node " + std::to_string(u);
    }
    for (NodeId v : adj_[u]) {
      if (v >= adj_.size()) return "neighbor out of range";
      if (v == u) return "self-loop at node " + std::to_string(u);
      if (!std::binary_search(adj_[v].begin(), adj_[v].end(), u)) {
        std::ostringstream os;
        os << "asymmetric edge {" << u << ", " << v << "}";
        return os.str();
      }
    }
    endpoint_count += adj_[u].size();
  }
  if (alive_count != num_alive_) return "alive counter out of sync";
  if (endpoint_count != 2 * num_edges_) return "edge counter out of sync";
  return {};
}

void DynamicGraph::check_node(NodeId u) const {
  KHOP_REQUIRE(u < adj_.size(), "node id out of range");
}

}  // namespace khop
