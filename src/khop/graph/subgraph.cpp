#include "khop/graph/subgraph.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"

namespace khop {

InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<NodeId>& nodes) {
  KHOP_REQUIRE(std::is_sorted(nodes.begin(), nodes.end()),
               "node subset must be sorted");
  KHOP_REQUIRE(std::adjacent_find(nodes.begin(), nodes.end()) == nodes.end(),
               "node subset must be unique");

  InducedSubgraph s;
  s.original_ids = nodes;
  s.new_id.assign(g.num_nodes(), kInvalidNode);
  for (NodeId i = 0; i < nodes.size(); ++i) {
    KHOP_REQUIRE(nodes[i] < g.num_nodes(), "subset node out of range");
    s.new_id[nodes[i]] = i;
  }

  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId old_u : nodes) {
    for (NodeId old_v : g.neighbors(old_u)) {
      if (old_u < old_v && s.new_id[old_v] != kInvalidNode) {
        edges.emplace_back(s.new_id[old_u], s.new_id[old_v]);
      }
    }
  }
  s.graph = Graph::from_edges(nodes.size(), edges);
  return s;
}

}  // namespace khop
