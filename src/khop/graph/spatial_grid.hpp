/// \file spatial_grid.hpp
/// Uniform spatial hashing for near-linear unit-disk graph construction.
#pragma once

#include <vector>

#include "khop/geom/point.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

/// Uniform grid over the bounding box of a point set, cell size >= the query
/// radius, so a range query touches at most the 3x3 surrounding cells.
class SpatialGrid {
 public:
  /// \pre radius > 0, pts non-empty
  SpatialGrid(const std::vector<Point2>& pts, double radius);

  /// Ids of all points within \p radius of pts[u], excluding u itself,
  /// in ascending id order.
  std::vector<NodeId> within_radius(NodeId u) const;

  /// Number of points within \p radius of pts[u], excluding u itself.
  /// Allocation-free (no list materialization); used by the degree
  /// calibration's bisection probes.
  std::size_t count_within_radius(NodeId u) const;

 private:
  const std::vector<Point2>& pts_;
  double radius_;
  double cell_;
  std::size_t cols_ = 0, rows_ = 0;
  double min_x_ = 0.0, min_y_ = 0.0;
  std::vector<std::vector<NodeId>> cells_;

  std::size_t cell_index(double x, double y) const noexcept;

  /// Shared 3x3 cell walk behind both queries: calls \p visit(v) for every
  /// v != u with dist(u, v) <= radius.
  template <typename Visitor>
  void for_each_within_radius(NodeId u, Visitor&& visit) const;
};

/// Builds the unit-disk graph: edge {u,v} iff dist(u,v) <= radius.
/// O(n * average-neighborhood) via spatial hashing.
Graph build_unit_disk_graph(const std::vector<Point2>& pts, double radius);

}  // namespace khop
