/// \file spatial_grid.hpp
/// Uniform spatial hashing for near-linear unit-disk graph construction.
///
/// The grid stores its cell membership in CSR form (one offsets array plus
/// one flat id array, built by a counting pass) instead of a
/// vector-of-vectors: at n = 10^6 the per-cell vector headers alone would be
/// ~100 MB of scattered allocations, while the CSR layout is two contiguous
/// arrays rebuilt in place. A default-constructed grid plus rebuild() lets
/// long-lived owners (Workspace) amortize those arrays across topologies —
/// the Monte-Carlo trial loop rebuilds the grid once per trial without
/// re-allocating.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "khop/geom/point.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

class ThreadPool;

/// Uniform grid over the bounding box of a point set, cell size >= the query
/// radius, so a range query touches at most the 3x3 surrounding cells.
///
/// Lifetime: the grid borrows \p pts; the point vector must outlive every
/// query (rebuild() re-borrows a new set).
class SpatialGrid {
 public:
  /// Empty grid; call rebuild() before querying.
  SpatialGrid() = default;

  /// \pre radius > 0, pts non-empty
  SpatialGrid(const std::vector<Point2>& pts, double radius);

  /// Re-binds the grid to \p pts / \p radius, reusing the internal arrays.
  /// Equivalent to constructing a fresh grid (bit-identical query results).
  /// \pre radius > 0, pts non-empty
  void rebuild(const std::vector<Point2>& pts, double radius);

  /// Ids of all points within \p radius of pts[u], excluding u itself,
  /// in ascending id order.
  std::vector<NodeId> within_radius(NodeId u) const;

  /// within_radius into a caller-owned buffer (cleared first): the streamed
  /// graph build calls this once per node and must not allocate per call.
  void within_radius_into(NodeId u, std::vector<NodeId>& out) const;

  /// Number of points within \p radius of pts[u], excluding u itself.
  /// Allocation-free (no list materialization); used by the degree
  /// calibration's bisection probes and the streamed build's counting pass.
  std::size_t count_within_radius(NodeId u) const;

  /// Number of grid cells (cols x rows) after the cell-count cap.
  std::size_t num_cells() const noexcept { return cols_ * rows_; }

  /// Number of points the grid currently indexes (0 before rebuild()).
  std::size_t num_points() const noexcept {
    return pts_ == nullptr ? 0 : pts_->size();
  }

 private:
  const std::vector<Point2>* pts_ = nullptr;
  double radius_ = 0.0;
  double cell_ = 0.0;
  std::size_t cols_ = 0, rows_ = 0;
  double min_x_ = 0.0, min_y_ = 0.0;
  std::vector<std::size_t> cell_offsets_;  // size num_cells()+1
  std::vector<NodeId> cell_ids_;  // grouped by cell, ascending within a cell

  std::size_t cell_index(double x, double y) const noexcept;

  std::span<const NodeId> cell_members(std::size_t cell) const noexcept {
    return {cell_ids_.data() + cell_offsets_[cell],
            cell_offsets_[cell + 1] - cell_offsets_[cell]};
  }

  /// Shared 3x3 cell walk behind both queries: calls \p visit(v) for every
  /// v != u with dist(u, v) <= radius.
  template <typename Visitor>
  void for_each_within_radius(NodeId u, Visitor&& visit) const;
};

/// Builds the unit-disk graph: edge {u,v} iff dist(u,v) <= radius.
/// O(n * average-neighborhood) via spatial hashing. Streams each node's
/// neighborhood straight into CSR (counting pass + placement pass) without
/// materializing an edge-pair vector; bit-identical to
/// reference::build_unit_disk_graph.
Graph build_unit_disk_graph(const std::vector<Point2>& pts, double radius);

/// The streamed build against a caller-owned grid: rebuild()s \p grid for
/// (pts, radius) and emits the CSR rows per node. With \p pool non-null the
/// counting and placement passes run tile-parallel over contiguous id
/// blocks (rows are written to disjoint CSR slots, so the merge is the
/// deterministic ascending-id order of the offsets themselves).
Graph build_unit_disk_graph_streamed(const std::vector<Point2>& pts,
                                     double radius, SpatialGrid& grid,
                                     ThreadPool* pool = nullptr);

namespace reference {

/// Pre-PR8 builder kept verbatim as the streamed path's oracle: materializes
/// the full (u, v) edge-pair vector and hands it to Graph::from_edges.
Graph build_unit_disk_graph(const std::vector<Point2>& pts, double radius);

}  // namespace reference

}  // namespace khop
