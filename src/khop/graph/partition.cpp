#include "khop/graph/partition.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"

namespace khop {

ShardPlan::ShardPlan(const Graph& g, std::size_t num_shards) {
  KHOP_REQUIRE(num_shards > 0, "shard plan needs at least one shard");
  const std::size_t n = g.num_nodes();
  ranges_.resize(num_shards);
  shard_of_.assign(n, 0);
  boundary_.assign(n, 0);

  // Contiguous near-equal cuts, the same arithmetic as parallel_for's static
  // blocks: shard s owns [n*s/S, n*(s+1)/S). Shards beyond the node count
  // come out empty (begin == end).
  for (std::size_t s = 0; s < num_shards; ++s) {
    ranges_[s].begin = static_cast<NodeId>(n * s / num_shards);
    ranges_[s].end = static_cast<NodeId>(n * (s + 1) / num_shards);
    for (NodeId v = ranges_[s].begin; v < ranges_[s].end; ++v) {
      shard_of_[v] = static_cast<std::uint32_t>(s);
    }
  }

  // Classify: a node is boundary iff any neighbor lives in another shard;
  // those same crossing edges define the neighbor shard's halo.
  for (NodeId v = 0; v < n; ++v) {
    const std::size_t sv = shard_of_[v];
    for (NodeId u : g.neighbors(v)) {
      if (shard_of_[u] != sv) {
        boundary_[v] = 1;
        // v is adjacent to shard_of_[u] from outside: v joins that halo.
        ranges_[shard_of_[u]].halo.push_back(v);
      }
    }
    if (boundary_[v] != 0) {
      ranges_[sv].boundary_nodes.push_back(v);
      ++boundary_total_;
    }
  }
  // boundary_nodes comes out ascending (built in one ascending sweep); the
  // halo lists collect one entry per crossing edge and need dedup.
  for (ShardRange& r : ranges_) {
    std::sort(r.halo.begin(), r.halo.end());
    r.halo.erase(std::unique(r.halo.begin(), r.halo.end()), r.halo.end());
  }
}

double ShardPlan::boundary_fraction(std::size_t s) const {
  KHOP_REQUIRE(s < ranges_.size(), "shard index out of range");
  const ShardRange& r = ranges_[s];
  if (r.size() == 0) return 0.0;
  return static_cast<double>(r.boundary_nodes.size()) /
         static_cast<double>(r.size());
}

}  // namespace khop
