/// \file dynamic_graph.hpp
/// Mutable undirected graph for the continuous-maintenance (churn) layer.
///
/// Unlike the CSR `Graph`, a DynamicGraph supports in-place node
/// removal/revival and single-link flips without rebuilding or copying the
/// topology. The id space (capacity) is fixed at construction: a failed node
/// keeps its id and can later be revived by a join event, which is exactly
/// the paper's switch-off/switch-on model and keeps every maintained
/// per-node array index-stable across events.
///
/// Neighbor lists stay sorted ascending, so BFS over a DynamicGraph visits
/// nodes in the same canonical order as over an equivalent `Graph` — the
/// property every min-id tie-break in the library relies on. Dead nodes have
/// empty neighbor lists and are therefore unreachable; algorithms need no
/// per-visit liveness test.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "khop/common/types.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

/// Mutable undirected simple graph over a fixed id space with a liveness
/// mask. Mutations are O(degree) (sorted-vector insert/erase), so a topology
/// event costs work proportional to the node's neighborhood, never to n.
class DynamicGraph {
 public:
  /// Starts from \p g with every node alive.
  explicit DynamicGraph(const Graph& g);

  /// Reassembles a graph from externally held state (snapshot restore):
  /// one sorted neighbor list per node plus the liveness mask. Validates the
  /// full structural invariant set via check_consistency and throws
  /// InvalidArgument on any violation, so corrupt persisted state can never
  /// become a live graph.
  static DynamicGraph from_state(std::vector<std::vector<NodeId>> adj,
                                 std::vector<char> alive);

  /// Size of the id space (alive + dead nodes). Named num_nodes so the BFS
  /// kernels can treat Graph and DynamicGraph uniformly.
  std::size_t num_nodes() const noexcept { return adj_.size(); }
  std::size_t capacity() const noexcept { return adj_.size(); }

  std::size_t num_alive() const noexcept { return num_alive_; }
  std::size_t num_edges() const noexcept { return num_edges_; }

  bool alive(NodeId u) const;

  /// Sorted neighbor list of \p u (empty for dead nodes).
  std::span<const NodeId> neighbors(NodeId u) const;

  std::size_t degree(NodeId u) const;

  /// True iff the undirected edge {u, v} exists. O(log deg(u)).
  bool has_edge(NodeId u, NodeId v) const;

  /// Removes \p u and all incident edges in place. Returns the node's former
  /// neighbors (the repair scope of the failure event).
  /// \pre alive(u)
  std::vector<NodeId> remove_node(NodeId u);

  /// Revives dead node \p u with links to \p nbrs.
  /// \pre !alive(u); nbrs alive, unique, != u
  void add_node(NodeId u, std::span<const NodeId> nbrs);

  /// Adds edge {u, v}. Returns false (no-op) if it already exists.
  /// \pre alive(u) && alive(v) && u != v
  bool add_edge(NodeId u, NodeId v);

  /// Removes edge {u, v}. Returns false (no-op) if it does not exist.
  /// \pre alive(u) && alive(v)
  bool remove_edge(NodeId u, NodeId v);

  /// Ascending ids of the alive nodes. O(capacity).
  std::vector<NodeId> alive_nodes() const;

  /// Immutable CSR copy over the full id space (dead nodes isolated). Used
  /// by the audit/oracle paths only — never by the incremental hot path.
  Graph snapshot() const;

  /// Structural self-check (adjacency sorted/symmetric, dead nodes isolated,
  /// counters consistent). Returns "" on success, else the first violation.
  std::string check_consistency() const;

 private:
  DynamicGraph() = default;  ///< from_state assembles the members directly

  std::vector<std::vector<NodeId>> adj_;  ///< sorted; empty for dead nodes
  std::vector<char> alive_;
  std::size_t num_alive_ = 0;
  std::size_t num_edges_ = 0;

  void check_node(NodeId u) const;
};

}  // namespace khop
