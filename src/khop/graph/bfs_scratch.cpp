#include "khop/graph/bfs_scratch.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"
#include "khop/graph/dynamic_graph.hpp"

namespace khop {

void BfsScratch::begin(std::size_t n) {
  if (stamp_.size() < n) {
    stamp_.resize(n, 0);
    dist_.resize(n);
    parent_.resize(n);
  }
  if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    // Epoch wrap: stale stamps could alias the new epoch, so clear them once.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 0;
  }
  ++epoch_;
  reached_.clear();
  level_end_.clear();
  frontier_.clear();
  next_.clear();
}

template <typename GraphT>
void BfsScratch::run_any(const GraphT& g, NodeId source, Hops max_hops) {
  KHOP_REQUIRE(source < g.num_nodes(), "BFS source out of range");
  begin(g.num_nodes());
  source_ = source;
  stamp_[source] = epoch_;
  dist_[source] = 0;
  parent_[source] = kInvalidNode;
  reached_.push_back(source);
  level_end_.push_back(reached_.size());

  frontier_.push_back(source);
  Hops level = 0;
  while (!frontier_.empty() && level < max_hops) {
    next_.clear();
    for (NodeId u : frontier_) {
      for (NodeId v : g.neighbors(u)) {
        if (stamp_[v] != epoch_) {
          stamp_[v] = epoch_;
          dist_[v] = level + 1;
          parent_[v] = u;
          next_.push_back(v);
        }
      }
    }
    // Keep each level ascending: with sorted adjacency this preserves the
    // canonical min-id parent guarantee for the next level (see bfs.cpp).
    std::sort(next_.begin(), next_.end());
    reached_.insert(reached_.end(), next_.begin(), next_.end());
    if (!next_.empty()) level_end_.push_back(reached_.size());
    frontier_.swap(next_);
    ++level;
  }
}

void BfsScratch::run(const Graph& g, NodeId source, Hops max_hops) {
  run_any(g, source, max_hops);
}

void BfsScratch::run(const DynamicGraph& g, NodeId source, Hops max_hops) {
  KHOP_REQUIRE(g.alive(source), "BFS source must be alive");
  run_any(g, source, max_hops);
}

void BfsScratch::run_multi(const Graph& g, std::span<const NodeId> seeds) {
  begin(g.num_nodes());
  source_ = kInvalidNode;
  for (NodeId s : seeds) {
    KHOP_REQUIRE(s < g.num_nodes(), "seed out of range");
    stamp_[s] = epoch_;
    dist_[s] = 0;
    parent_[s] = s;  // owner
    frontier_.push_back(s);
  }
  std::sort(frontier_.begin(), frontier_.end());
  reached_.insert(reached_.end(), frontier_.begin(), frontier_.end());
  if (!frontier_.empty()) level_end_.push_back(reached_.size());

  Hops level = 0;
  while (!frontier_.empty()) {
    next_.clear();
    for (NodeId u : frontier_) {
      for (NodeId v : g.neighbors(u)) {
        if (stamp_[v] != epoch_) {
          stamp_[v] = epoch_;
          dist_[v] = level + 1;
          parent_[v] = parent_[u];
          next_.push_back(v);
        } else if (dist_[v] == level + 1 && parent_[u] < parent_[v]) {
          // Same level, smaller owning seed wins (deterministic tie-break).
          parent_[v] = parent_[u];
        }
      }
    }
    std::sort(next_.begin(), next_.end());
    next_.erase(std::unique(next_.begin(), next_.end()), next_.end());
    reached_.insert(reached_.end(), next_.begin(), next_.end());
    if (!next_.empty()) level_end_.push_back(reached_.size());
    frontier_.swap(next_);
    ++level;
  }
}

std::vector<NodeId> BfsScratch::extract_path(NodeId target) const {
  KHOP_REQUIRE(target < stamp_.size(), "path target out of range");
  KHOP_REQUIRE(dist(target) != kUnreachable,
               "target unreachable from BFS source");
  std::vector<NodeId> path;
  for (NodeId v = target; v != kInvalidNode; v = parent(v)) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  KHOP_ASSERT(path.front() == source_, "path does not start at source");
  return path;
}

}  // namespace khop
