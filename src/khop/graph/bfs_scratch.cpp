#include "khop/graph/bfs_scratch.hpp"

#include <algorithm>
#include <limits>

#include "khop/common/assert.hpp"
#include "khop/graph/dynamic_graph.hpp"
#include "khop/obs/metrics.hpp"
#include "khop/obs/telemetry.hpp"

namespace khop {

namespace {

// A level switches to bottom-up expansion once its frontier holds at least
// n / kDenseFrontierDivisor nodes. The cutover is a pure cost heuristic: both
// directions compute the identical level (see expand_bottom_up), so the
// threshold affects wall time only, never output.
constexpr std::size_t kDenseFrontierDivisor = 8;
// Below this the bitset bookkeeping costs more than it saves; tiny graphs
// always expand top-down.
constexpr std::size_t kDenseMinNodes = 128;

obs::Histogram& frontier_size_hist() {
  // Name resolution takes the registry mutex; do it once per process (the
  // instrument address is stable for the registry's lifetime).
  static obs::Histogram& h =
      obs::Registry::global().histogram("bfs.frontier_size");
  return h;
}

}  // namespace

void BfsScratch::begin(std::size_t n) {
  if (stamp_.size() < n) {
    stamp_.resize(n, 0);
    dist_.resize(n);
    parent_.resize(n);
  }
  if (epoch_ == std::numeric_limits<std::uint8_t>::max()) {
    // Epoch wrap: stale stamps could alias the new epoch, so clear them once
    // every 255 runs (amortized O(n/255) per run).
    std::fill(stamp_.begin(), stamp_.end(), std::uint8_t{0});
    epoch_ = 0;
  }
  ++epoch_;
  reached_.clear();
  level_end_.clear();
}

template <typename GraphT>
void BfsScratch::expand_bottom_up(const GraphT& g, std::size_t lvl_begin,
                                  std::size_t lvl_end, Hops level) {
  const std::size_t n = g.num_nodes();
  if (frontier_bits_.size() < (n + 63) / 64) {
    frontier_bits_.assign((n + 63) / 64, 0);
  }
  for (std::size_t i = lvl_begin; i < lvl_end; ++i) {
    const NodeId u = reached_[i];
    frontier_bits_[u >> 6] |= std::uint64_t{1} << (u & 63);
  }
  // Bit-exactness vs the top-down direction: a node v first reachable at
  // distance level+1 has, among its neighbors, only nodes at distance level
  // (the frontier) or level+1 or level+2 (both unvisited so far). Its
  // canonical top-down parent is the minimum-id frontier neighbor (the
  // frontier span is sorted ascending, so the smallest-id frontier member
  // adjacent to v stamps it first). Scanning v's *sorted* adjacency and
  // taking the first frontier hit yields exactly that node. Appending v in
  // the ascending v-scan order reproduces the sorted level order the
  // top-down direction gets from its tail sort.
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    if (stamp_[v] == epoch_) continue;
    for (NodeId u : g.neighbors(v)) {
      if ((frontier_bits_[u >> 6] >> (u & 63)) & 1u) {
        stamp_[v] = epoch_;
        dist_[v] = level + 1;
        parent_[v] = u;
        reached_.push_back(v);
        break;
      }
    }
  }
  for (std::size_t i = lvl_begin; i < lvl_end; ++i) {
    const NodeId u = reached_[i];
    frontier_bits_[u >> 6] &= ~(std::uint64_t{1} << (u & 63));
  }
}

template <typename GraphT>
void BfsScratch::run_any(const GraphT& g, NodeId source, Hops max_hops) {
  KHOP_REQUIRE(source < g.num_nodes(), "BFS source out of range");
  const std::size_t n = g.num_nodes();
  begin(n);
  source_ = source;
  stamp_[source] = epoch_;
  dist_[source] = 0;
  parent_[source] = kInvalidNode;
  reached_.push_back(source);
  level_end_.push_back(reached_.size());

  const bool telemetry_on = obs::enabled();
  std::size_t lvl_begin = 0;
  std::size_t lvl_end = reached_.size();
  Hops level = 0;
  while (lvl_begin < lvl_end && level < max_hops) {
    const std::size_t frontier_size = lvl_end - lvl_begin;
    if (telemetry_on) frontier_size_hist().record(frontier_size);
    if (n >= kDenseMinNodes && frontier_size * kDenseFrontierDivisor >= n) {
      expand_bottom_up(g, lvl_begin, lvl_end, level);
    } else {
      for (std::size_t i = lvl_begin; i < lvl_end; ++i) {
        const NodeId u = reached_[i];
        for (NodeId v : g.neighbors(u)) {
          if (stamp_[v] != epoch_) {
            stamp_[v] = epoch_;
            dist_[v] = level + 1;
            parent_[v] = u;
            reached_.push_back(v);
          }
        }
      }
      // Keep each level ascending: with sorted adjacency this preserves the
      // canonical min-id parent guarantee for the next level (see bfs.cpp).
      std::sort(reached_.begin() + static_cast<std::ptrdiff_t>(lvl_end),
                reached_.end());
    }
    if (reached_.size() > lvl_end) level_end_.push_back(reached_.size());
    lvl_begin = lvl_end;
    lvl_end = reached_.size();
    ++level;
  }
}

void BfsScratch::run(const Graph& g, NodeId source, Hops max_hops) {
  run_any(g, source, max_hops);
}

void BfsScratch::run(const DynamicGraph& g, NodeId source, Hops max_hops) {
  KHOP_REQUIRE(g.alive(source), "BFS source must be alive");
  run_any(g, source, max_hops);
}

void BfsScratch::run_multi(const Graph& g, std::span<const NodeId> seeds) {
  begin(g.num_nodes());
  source_ = kInvalidNode;
  for (NodeId s : seeds) {
    KHOP_REQUIRE(s < g.num_nodes(), "seed out of range");
    stamp_[s] = epoch_;
    dist_[s] = 0;
    parent_[s] = s;  // owner
    reached_.push_back(s);
  }
  std::sort(reached_.begin(), reached_.end());
  if (!reached_.empty()) level_end_.push_back(reached_.size());

  // Owner propagation stays top-down at every density: the min-owner
  // tie-break below must see *all* frontier neighbors of a node, which the
  // first-hit bottom-up scan cannot provide.
  const bool telemetry_on = obs::enabled();
  std::size_t lvl_begin = 0;
  std::size_t lvl_end = reached_.size();
  Hops level = 0;
  while (lvl_begin < lvl_end) {
    if (telemetry_on) frontier_size_hist().record(lvl_end - lvl_begin);
    for (std::size_t i = lvl_begin; i < lvl_end; ++i) {
      const NodeId u = reached_[i];
      for (NodeId v : g.neighbors(u)) {
        if (stamp_[v] != epoch_) {
          stamp_[v] = epoch_;
          dist_[v] = level + 1;
          parent_[v] = parent_[u];
          reached_.push_back(v);
        } else if (dist_[v] == level + 1 && parent_[u] < parent_[v]) {
          // Same level, smaller owning seed wins (deterministic tie-break).
          parent_[v] = parent_[u];
        }
      }
    }
    std::sort(reached_.begin() + static_cast<std::ptrdiff_t>(lvl_end),
              reached_.end());
    if (reached_.size() > lvl_end) level_end_.push_back(reached_.size());
    lvl_begin = lvl_end;
    lvl_end = reached_.size();
    ++level;
  }
}

std::vector<NodeId> BfsScratch::extract_path(NodeId target) const {
  KHOP_REQUIRE(target < stamp_.size(), "path target out of range");
  KHOP_REQUIRE(dist(target) != kUnreachable,
               "target unreachable from BFS source");
  std::vector<NodeId> path;
  for (NodeId v = target; v != kInvalidNode; v = parent(v)) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  KHOP_ASSERT(path.front() == source_, "path does not start at source");
  return path;
}

}  // namespace khop
