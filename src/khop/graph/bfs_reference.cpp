#include "khop/graph/bfs_reference.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"

namespace khop::reference {

namespace {

/// Shared BFS core (pre-workspace implementation, kept verbatim). Visiting
/// nodes in ascending-id order per level and scanning sorted adjacency lists
/// guarantees min-id canonical parents without any extra comparisons.
BfsTree bfs_impl(const Graph& g, NodeId source, Hops max_hops) {
  KHOP_REQUIRE(source < g.num_nodes(), "BFS source out of range");
  BfsTree t;
  t.source = source;
  t.dist.assign(g.num_nodes(), kUnreachable);
  t.parent.assign(g.num_nodes(), kInvalidNode);
  t.dist[source] = 0;

  std::vector<NodeId> frontier{source};
  Hops level = 0;
  while (!frontier.empty() && level < max_hops) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      for (NodeId v : g.neighbors(u)) {
        if (t.dist[v] == kUnreachable) {
          t.dist[v] = level + 1;
          t.parent[v] = u;
          next.push_back(v);
        }
      }
    }
    std::sort(next.begin(), next.end());
    frontier = std::move(next);
    ++level;
  }
  return t;
}

}  // namespace

BfsTree bfs(const Graph& g, NodeId source) {
  return bfs_impl(g, source, kUnreachable);
}

BfsTree bfs_bounded(const Graph& g, NodeId source, Hops max_hops) {
  return bfs_impl(g, source, max_hops);
}

std::vector<NodeId> k_hop_neighborhood(const Graph& g, NodeId source, Hops k) {
  const BfsTree t = reference::bfs_bounded(g, source, k);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v != source && t.dist[v] != kUnreachable) out.push_back(v);
  }
  return out;
}

MultiSourceBfs multi_source_bfs(const Graph& g,
                                const std::vector<NodeId>& seeds) {
  MultiSourceBfs r;
  r.dist.assign(g.num_nodes(), kUnreachable);
  r.owner.assign(g.num_nodes(), kInvalidNode);

  std::vector<NodeId> frontier;
  for (NodeId s : seeds) {
    KHOP_REQUIRE(s < g.num_nodes(), "seed out of range");
    r.dist[s] = 0;
    r.owner[s] = s;
    frontier.push_back(s);
  }
  std::sort(frontier.begin(), frontier.end());

  Hops level = 0;
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      for (NodeId v : g.neighbors(u)) {
        if (r.dist[v] == kUnreachable) {
          r.dist[v] = level + 1;
          r.owner[v] = r.owner[u];
          next.push_back(v);
        } else if (r.dist[v] == level + 1 && r.owner[u] < r.owner[v]) {
          r.owner[v] = r.owner[u];
        }
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier = std::move(next);
    ++level;
  }
  return r;
}

}  // namespace khop::reference
