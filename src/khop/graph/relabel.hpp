/// \file relabel.hpp
/// Space-filling-curve locality relabeling: renumber nodes by the Hilbert
/// index of their placement so that ids that are close numerically are close
/// spatially. On a unit-disk graph every adjacency row then references
/// near-contiguous ids, which turns the random scatter of CSR neighbor walks
/// at n = 10^6 into mostly-sequential cache-line traffic.
///
/// What relabeling preserves bit-exactly, and what it cannot:
///  * relabel(g, r) followed by relabel(g', inverse(r)) is the identity on
///    the Graph and on positions — round-trips are bit-exact.
///  * BFS hop distances are exactly permutation-equivariant:
///    dist_{g'}(r(u), r(v)) == dist_g(u, v) for every u, v.
///  * khop_clustering with *carried* priorities (relabel(priorities, r)):
///    the winner set of every election round depends only on priority keys
///    and distances, both equivariant, so the head set, election_rounds and
///    (under kDistanceBased) every node's dist_to_head are equivariant —
///    PROVIDED the keys are distinct. Equal keys (e.g. the constant-key
///    make_priorities(kLowestId) encoding) fall through to the embedded id
///    tie-break, which relabel() rewrites to the new space, so such runs
///    elect lowest *new* ids instead. Use explicit distinct keys (e.g.
///    key = old id) when equivariance matters.
///  * NOT equivariant: canonical BFS parents, gateway/path selections and
///    the kIdBased affiliation — these tie-break on raw node ids by design,
///    so the relabeled run resolves ties in the new id space. The relabeled
///    pipeline is still bit-exact against the *reference implementations on
///    the relabeled graph* (the library's oracle contract), and its
///    inverse-mapped backbone still validates as a k-hop CDS of the
///    original graph; it is just a different — equally canonical — choice
///    among equal-cost outputs. docs/scaling.md discusses when to use it.
#pragma once

#include <cstdint>
#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/cluster/priority.hpp"
#include "khop/common/types.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/geom/point.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

/// A node renumbering: new_of_old[old] == new and old_of_new[new] == old
/// (mutually inverse permutations of [0, n)).
struct Relabeling {
  std::vector<NodeId> new_of_old;
  std::vector<NodeId> old_of_new;

  std::size_t size() const noexcept { return new_of_old.size(); }
};

/// The identity renumbering over [0, n).
Relabeling identity_relabeling(std::size_t n);

/// Swaps the two directions: relabel(x, inverse(r)) undoes relabel(x, r).
Relabeling inverse(const Relabeling& r);

/// d-index of cell (x, y) on the order-\p order Hilbert curve (a 2^order x
/// 2^order grid); x, y < 2^order. Standard Wikipedia xy2d construction.
std::uint64_t hilbert_d_index(std::uint32_t x, std::uint32_t y,
                              std::uint32_t order);

/// Renumbering that sorts nodes by the Hilbert index of their position,
/// quantized to a 2^16 grid over the bounding box (ties, e.g. coincident
/// points, break by old id so the result is a deterministic permutation).
Relabeling sfc_relabeling(const std::vector<Point2>& pts);

/// The graph with node ids permuted: g' has edge {r(u), r(v)} iff g has
/// {u, v}. Permutes the CSR arrays directly (no edge-list intermediate).
Graph relabel(const Graph& g, const Relabeling& r);

/// Positions permuted to the new id space: out[r(u)] == pts[u].
std::vector<Point2> relabel(const std::vector<Point2>& pts,
                            const Relabeling& r);

/// Priority keys carried to the new id space: out[r(u)].key == prios[u].key
/// with the embedded tie-break id rewritten to r(u). Carrying keys keeps the
/// election's priority order equivariant under the renumbering.
std::vector<PriorityKey> relabel(const std::vector<PriorityKey>& prios,
                                 const Relabeling& r);

/// How well \p g's CURRENT id order shards: the fraction of nodes that are
/// boundary (some neighbor in another shard) when [0, n) is cut into
/// \p num_shards contiguous ranges (graph/partition.hpp). 0 = every node
/// interior, 1 = every node on the cut. On a unit-disk graph a Hilbert
/// relabeling keeps this near the perimeter/area ratio of the shard tiles,
/// while a random order drives it toward 1 — the diagnostic for whether an
/// id order is fit for the sharded engine (sim/sharded_engine.hpp).
double shard_cut_quality(const Graph& g, std::size_t num_shards);

/// Results computed on the relabeled graph, mapped back to original ids.
/// `r` must be the relabeling the run used (new-id space -> old-id space).
BfsTree to_original_ids(const BfsTree& t, const Relabeling& r);
Clustering to_original_ids(const Clustering& c, const Relabeling& r);
Backbone to_original_ids(const Backbone& b, const Relabeling& r);

}  // namespace khop
