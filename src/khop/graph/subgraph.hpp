/// \file subgraph.hpp
/// Induced-subgraph extraction with id remapping.
#pragma once

#include <vector>

#include "khop/common/types.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

/// A subgraph induced by a node subset, with a dense relabelling.
struct InducedSubgraph {
  Graph graph;                       ///< over the renumbered nodes
  std::vector<NodeId> original_ids;  ///< new id -> old id, ascending
  std::vector<NodeId> new_id;        ///< old id -> new id or kInvalidNode
};

/// Induced subgraph on the ascending-sorted unique set \p nodes.
InducedSubgraph induced_subgraph(const Graph& g,
                                 const std::vector<NodeId>& nodes);

}  // namespace khop
