#include "khop/graph/components.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"

namespace khop {

Components connected_components(const Graph& g) {
  Components c;
  c.label.assign(g.num_nodes(), kInvalidNode);
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (c.label[s] != kInvalidNode) continue;
    const auto id = static_cast<NodeId>(c.count++);
    c.label[s] = id;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : g.neighbors(u)) {
        if (c.label[v] == kInvalidNode) {
          c.label[v] = id;
          stack.push_back(v);
        }
      }
    }
  }
  return c;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() <= 1) return true;
  return connected_components(g).count == 1;
}

bool is_connected_subset(const Graph& g, const std::vector<bool>& in_subset) {
  KHOP_REQUIRE(in_subset.size() == g.num_nodes(),
               "subset mask size mismatch");
  NodeId start = kInvalidNode;
  std::size_t subset_size = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_subset[v]) {
      ++subset_size;
      if (start == kInvalidNode) start = v;
    }
  }
  if (subset_size <= 1) return true;

  std::vector<bool> seen(g.num_nodes(), false);
  std::vector<NodeId> stack{start};
  seen[start] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (NodeId v : g.neighbors(u)) {
      if (in_subset[v] && !seen[v]) {
        seen[v] = true;
        ++reached;
        stack.push_back(v);
      }
    }
  }
  return reached == subset_size;
}

LargestComponent largest_component(const Graph& g) {
  const Components c = connected_components(g);
  std::vector<std::size_t> sizes(c.count, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) ++sizes[c.label[v]];
  const auto best = static_cast<NodeId>(std::distance(
      sizes.begin(), std::max_element(sizes.begin(), sizes.end())));

  LargestComponent lc;
  lc.new_id.assign(g.num_nodes(), kInvalidNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (c.label[v] == best) {
      lc.new_id[v] = static_cast<NodeId>(lc.original_ids.size());
      lc.original_ids.push_back(v);
    }
  }
  return lc;
}

}  // namespace khop
