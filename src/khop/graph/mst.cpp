#include "khop/graph/mst.hpp"

#include <algorithm>
#include <tuple>

#include "khop/common/assert.hpp"
#include "khop/common/error.hpp"
#include "khop/graph/union_find.hpp"

namespace khop {

bool edge_less(const WeightedEdge& a, const WeightedEdge& b) noexcept {
  const auto key = [](const WeightedEdge& e) {
    return std::tuple(e.weight, std::min(e.u, e.v), std::max(e.u, e.v));
  };
  return key(a) < key(b);
}

std::vector<WeightedEdge> kruskal_mst(std::size_t n,
                                      std::vector<WeightedEdge> edges) {
  for (const auto& e : edges) {
    KHOP_REQUIRE(e.u < n && e.v < n && e.u != e.v, "bad MST edge");
  }
  std::sort(edges.begin(), edges.end(), edge_less);
  UnionFind uf(n);
  std::vector<WeightedEdge> tree;
  tree.reserve(n > 0 ? n - 1 : 0);
  for (const auto& e : edges) {
    if (uf.unite(e.u, e.v)) {
      tree.push_back(e);
      if (tree.size() + 1 == n) break;
    }
  }
  if (n > 0 && tree.size() + 1 != n) {
    throw NotConnected("kruskal_mst: edge set does not span all nodes");
  }
  return tree;
}

std::vector<NodeId> prim_mst(
    std::size_t n, const std::vector<std::vector<WeightedEdge>>& adj,
    NodeId root) {
  KHOP_REQUIRE(adj.size() == n, "adjacency size mismatch");
  KHOP_REQUIRE(root < n, "root out of range");

  std::vector<bool> in_tree(n, false);
  std::vector<NodeId> parent(n, kInvalidNode);
  // best[v]: lightest edge connecting v to the tree, by edge_less order.
  std::vector<WeightedEdge> best(n);
  std::vector<bool> has_best(n, false);

  in_tree[root] = true;
  std::size_t tree_size = 1;
  for (const auto& e : adj[root]) {
    KHOP_ASSERT(e.u == root, "adjacency list edge must originate at its node");
    if (!has_best[e.v] || edge_less(e, best[e.v])) {
      best[e.v] = e;
      has_best[e.v] = true;
    }
  }

  // O(n^2) scan per step: the virtual graphs have at most a few dozen nodes,
  // so simplicity beats a heap here.
  while (tree_size < n) {
    NodeId pick = kInvalidNode;
    for (NodeId v = 0; v < n; ++v) {
      if (in_tree[v] || !has_best[v]) continue;
      if (pick == kInvalidNode || edge_less(best[v], best[pick])) pick = v;
    }
    if (pick == kInvalidNode) {
      throw NotConnected("prim_mst: graph is not connected");
    }
    in_tree[pick] = true;
    parent[pick] = best[pick].u;
    ++tree_size;
    for (const auto& e : adj[pick]) {
      KHOP_ASSERT(e.u == pick, "adjacency list edge must originate at its node");
      if (!in_tree[e.v] && (!has_best[e.v] || edge_less(e, best[e.v]))) {
        best[e.v] = e;
        has_best[e.v] = true;
      }
    }
  }
  return parent;
}

}  // namespace khop
