#include "khop/graph/bfs.hpp"

#include <algorithm>
#include <queue>

#include "khop/common/assert.hpp"

namespace khop {

namespace {

/// Shared BFS core. Visiting nodes in ascending-id order per level and
/// scanning sorted adjacency lists guarantees min-id canonical parents
/// without any extra comparisons: the first edge that discovers v comes from
/// the smallest-id parent on the shallowest level.
BfsTree bfs_impl(const Graph& g, NodeId source, Hops max_hops) {
  KHOP_REQUIRE(source < g.num_nodes(), "BFS source out of range");
  BfsTree t;
  t.source = source;
  t.dist.assign(g.num_nodes(), kUnreachable);
  t.parent.assign(g.num_nodes(), kInvalidNode);
  t.dist[source] = 0;

  std::vector<NodeId> frontier{source};
  Hops level = 0;
  while (!frontier.empty() && level < max_hops) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      for (NodeId v : g.neighbors(u)) {
        if (t.dist[v] == kUnreachable) {
          t.dist[v] = level + 1;
          t.parent[v] = u;
          next.push_back(v);
        }
      }
    }
    // Frontier stays sorted: parents were processed in ascending order and
    // each parent's neighbors are sorted, but interleaving across parents can
    // break global order - restore it for the canonical-parent guarantee of
    // the *next* level.
    std::sort(next.begin(), next.end());
    frontier = std::move(next);
    ++level;
  }
  return t;
}

}  // namespace

BfsTree bfs(const Graph& g, NodeId source) {
  return bfs_impl(g, source, kUnreachable);
}

BfsTree bfs_bounded(const Graph& g, NodeId source, Hops max_hops) {
  return bfs_impl(g, source, max_hops);
}

std::vector<NodeId> k_hop_neighborhood(const Graph& g, NodeId source, Hops k) {
  const BfsTree t = bfs_bounded(g, source, k);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v != source && t.dist[v] != kUnreachable) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> extract_path(const BfsTree& tree, NodeId target) {
  KHOP_REQUIRE(target < tree.dist.size(), "path target out of range");
  KHOP_REQUIRE(tree.dist[target] != kUnreachable,
               "target unreachable from BFS source");
  std::vector<NodeId> path;
  for (NodeId v = target; v != kInvalidNode; v = tree.parent[v]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  KHOP_ASSERT(path.front() == tree.source, "path does not start at source");
  return path;
}

MultiSourceBfs multi_source_bfs(const Graph& g,
                                const std::vector<NodeId>& seeds) {
  MultiSourceBfs r;
  r.dist.assign(g.num_nodes(), kUnreachable);
  r.owner.assign(g.num_nodes(), kInvalidNode);

  std::vector<NodeId> frontier;
  for (NodeId s : seeds) {
    KHOP_REQUIRE(s < g.num_nodes(), "seed out of range");
    r.dist[s] = 0;
    r.owner[s] = s;
    frontier.push_back(s);
  }
  std::sort(frontier.begin(), frontier.end());

  Hops level = 0;
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (NodeId u : frontier) {
      for (NodeId v : g.neighbors(u)) {
        if (r.dist[v] == kUnreachable) {
          r.dist[v] = level + 1;
          r.owner[v] = r.owner[u];
          next.push_back(v);
        } else if (r.dist[v] == level + 1 && r.owner[u] < r.owner[v]) {
          // Same level, smaller owning seed wins (deterministic tie-break).
          r.owner[v] = r.owner[u];
        }
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontier = std::move(next);
    ++level;
  }
  return r;
}

std::vector<std::vector<Hops>> all_pairs_hops(const Graph& g) {
  std::vector<std::vector<Hops>> d;
  d.reserve(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    d.push_back(bfs(g, u).dist);
  }
  return d;
}

}  // namespace khop
