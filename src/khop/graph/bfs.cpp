#include "khop/graph/bfs.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"

namespace khop {

namespace {

/// Per-thread scratch backing the allocating convenience signatures, so that
/// legacy call sites stop paying per-call frontier/mark allocations without
/// any signature change. Thread-local keeps them safe under parallel_for.
BfsScratch& wrapper_scratch() {
  thread_local BfsScratch ws;
  return ws;
}

}  // namespace

void bfs_into(const Graph& g, NodeId source, BfsScratch& ws, BfsTree& out) {
  bfs_bounded_into(g, source, kUnreachable, ws, out);
}

void bfs_bounded_into(const Graph& g, NodeId source, Hops max_hops,
                      BfsScratch& ws, BfsTree& out) {
  ws.run(g, source, max_hops);
  out.source = source;
  out.dist.assign(g.num_nodes(), kUnreachable);
  out.parent.assign(g.num_nodes(), kInvalidNode);
  for (NodeId v : ws.reached()) {
    out.dist[v] = ws.dist(v);
    out.parent[v] = ws.parent(v);
  }
}

void k_hop_neighborhood_into(const Graph& g, NodeId source, Hops k,
                             BfsScratch& ws, std::vector<NodeId>& out) {
  ws.run(g, source, k);
  out.clear();
  // reached() is level-ordered and includes the source; the contract is
  // ascending ids without the source.
  for (NodeId v : ws.reached()) {
    if (v != source) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
}

void multi_source_bfs_into(const Graph& g, const std::vector<NodeId>& seeds,
                           BfsScratch& ws, MultiSourceBfs& out) {
  ws.run_multi(g, seeds);
  out.dist.assign(g.num_nodes(), kUnreachable);
  out.owner.assign(g.num_nodes(), kInvalidNode);
  for (NodeId v : ws.reached()) {
    out.dist[v] = ws.dist(v);
    out.owner[v] = ws.owner(v);
  }
}

BfsTree bfs(const Graph& g, NodeId source) {
  BfsTree t;
  bfs_into(g, source, wrapper_scratch(), t);
  return t;
}

BfsTree bfs_bounded(const Graph& g, NodeId source, Hops max_hops) {
  BfsTree t;
  bfs_bounded_into(g, source, max_hops, wrapper_scratch(), t);
  return t;
}

std::vector<NodeId> k_hop_neighborhood(const Graph& g, NodeId source, Hops k) {
  std::vector<NodeId> out;
  k_hop_neighborhood_into(g, source, k, wrapper_scratch(), out);
  return out;
}

std::vector<NodeId> extract_path(const BfsTree& tree, NodeId target) {
  KHOP_REQUIRE(target < tree.dist.size(), "path target out of range");
  KHOP_REQUIRE(tree.dist[target] != kUnreachable,
               "target unreachable from BFS source");
  std::vector<NodeId> path;
  for (NodeId v = target; v != kInvalidNode; v = tree.parent[v]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  KHOP_ASSERT(path.front() == tree.source, "path does not start at source");
  return path;
}

MultiSourceBfs multi_source_bfs(const Graph& g,
                                const std::vector<NodeId>& seeds) {
  MultiSourceBfs r;
  multi_source_bfs_into(g, seeds, wrapper_scratch(), r);
  return r;
}

std::vector<std::vector<Hops>> all_pairs_hops(const Graph& g) {
  std::vector<std::vector<Hops>> d;
  d.reserve(g.num_nodes());
  BfsScratch ws;
  BfsTree t;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    bfs_into(g, u, ws, t);
    d.push_back(t.dist);
  }
  return d;
}

}  // namespace khop
