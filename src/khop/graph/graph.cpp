#include "khop/graph/graph.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"

namespace khop {

namespace {

// Node ids are 32-bit with kInvalidNode reserved as a sentinel, so the id
// space tops out one short of 2^32. Guard *before* sizing any O(n) array:
// at the limit offsets_ alone would be a ~34 GB allocation, and a silent
// 32-bit wrap in later id arithmetic would corrupt results instead of
// failing loudly. Offsets/degree sums stay in std::size_t, which must be
// 64-bit for m up to ~10^7 nodes * avg degree (2m entries).
static_assert(sizeof(std::size_t) >= 8,
              "CSR offsets require a 64-bit size_t");

void check_node_count(std::size_t n) {
  KHOP_REQUIRE(n < static_cast<std::size_t>(kInvalidNode),
               "node count must stay below kInvalidNode (32-bit id space)");
}

}  // namespace

Graph::Graph(std::size_t n) : offsets_() {
  check_node_count(n);
  offsets_.assign(n + 1, 0);
}

Graph Graph::from_edges(std::size_t n,
                        std::span<const std::pair<NodeId, NodeId>> edges) {
  check_node_count(n);
  Graph g(n);
  std::vector<std::size_t> deg(n, 0);
  for (const auto& [u, v] : edges) {
    KHOP_REQUIRE(u < n && v < n, "edge endpoint out of range");
    KHOP_REQUIRE(u != v, "self-loops are not allowed");
    ++deg[u];
    ++deg[v];
  }
  for (std::size_t i = 0; i < n; ++i) g.offsets_[i + 1] = g.offsets_[i] + deg[i];
  g.adjacency_.resize(g.offsets_[n]);

  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto begin = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[i]);
    const auto end = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[i + 1]);
    std::sort(begin, end);
    KHOP_REQUIRE(std::adjacent_find(begin, end) == end,
                 "duplicate edge in input");
  }
  return g;
}

Graph Graph::from_csr(std::vector<std::size_t> offsets,
                      std::vector<NodeId> adjacency) {
  KHOP_REQUIRE(!offsets.empty(), "CSR offsets must have n+1 entries");
  const std::size_t n = offsets.size() - 1;
  check_node_count(n);
  KHOP_REQUIRE(offsets.front() == 0, "CSR offsets must start at 0");
  KHOP_REQUIRE(offsets.back() == adjacency.size(),
               "CSR offsets must end at adjacency.size()");
  KHOP_REQUIRE(adjacency.size() % 2 == 0,
               "undirected CSR needs an even adjacency length");
  for (std::size_t i = 0; i < n; ++i) {
    KHOP_REQUIRE(offsets[i] <= offsets[i + 1], "CSR offsets must be monotone");
  }
  Graph g(n);
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    const auto row = g.neighbors(u);
    for (std::size_t j = 0; j < row.size(); ++j) {
      const NodeId v = row[j];
      KHOP_REQUIRE(v < n, "CSR neighbor out of range");
      KHOP_REQUIRE(v != u, "self-loops are not allowed");
      KHOP_REQUIRE(j == 0 || row[j - 1] < v,
                   "CSR rows must be strictly ascending");
      KHOP_REQUIRE(g.has_edge(v, u), "CSR adjacency must be symmetric");
    }
  }
  return g;
}

std::span<const NodeId> Graph::neighbors(NodeId u) const {
  check_node(u);
  return {adjacency_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
}

std::size_t Graph::degree(NodeId u) const {
  check_node(u);
  return offsets_[u + 1] - offsets_[u];
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::edge_list() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

Graph Graph::without_node(NodeId u) const {
  check_node(u);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges());
  for (NodeId a = 0; a < num_nodes(); ++a) {
    if (a == u) continue;
    for (NodeId b : neighbors(a)) {
      if (a < b && b != u) edges.emplace_back(a, b);
    }
  }
  return from_edges(num_nodes(), edges);
}

void Graph::check_node(NodeId u) const {
  KHOP_REQUIRE(u < num_nodes(), "node id out of range");
}

}  // namespace khop
