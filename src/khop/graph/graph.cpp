#include "khop/graph/graph.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"

namespace khop {

Graph::Graph(std::size_t n) : offsets_(n + 1, 0) {}

Graph Graph::from_edges(std::size_t n,
                        std::span<const std::pair<NodeId, NodeId>> edges) {
  Graph g(n);
  std::vector<std::size_t> deg(n, 0);
  for (const auto& [u, v] : edges) {
    KHOP_REQUIRE(u < n && v < n, "edge endpoint out of range");
    KHOP_REQUIRE(u != v, "self-loops are not allowed");
    ++deg[u];
    ++deg[v];
  }
  for (std::size_t i = 0; i < n; ++i) g.offsets_[i + 1] = g.offsets_[i] + deg[i];
  g.adjacency_.resize(g.offsets_[n]);

  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto begin = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[i]);
    const auto end = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[i + 1]);
    std::sort(begin, end);
    KHOP_REQUIRE(std::adjacent_find(begin, end) == end,
                 "duplicate edge in input");
  }
  return g;
}

std::span<const NodeId> Graph::neighbors(NodeId u) const {
  check_node(u);
  return {adjacency_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
}

std::size_t Graph::degree(NodeId u) const {
  check_node(u);
  return offsets_[u + 1] - offsets_[u];
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<std::pair<NodeId, NodeId>> Graph::edge_list() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return edges;
}

Graph Graph::without_node(NodeId u) const {
  check_node(u);
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges());
  for (NodeId a = 0; a < num_nodes(); ++a) {
    if (a == u) continue;
    for (NodeId b : neighbors(a)) {
      if (a < b && b != u) edges.emplace_back(a, b);
    }
  }
  return from_edges(num_nodes(), edges);
}

void Graph::check_node(NodeId u) const {
  KHOP_REQUIRE(u < num_nodes(), "node id out of range");
}

}  // namespace khop
