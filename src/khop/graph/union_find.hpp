/// \file union_find.hpp
/// Disjoint-set union with path halving + union by size.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "khop/common/types.hpp"

namespace khop {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), NodeId{0});
  }

  NodeId find(NodeId x) noexcept {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns false if already joined.
  bool unite(NodeId a, NodeId b) noexcept {
    NodeId ra = find(a), rb = find(b);
    if (ra == rb) return false;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return true;
  }

  bool connected(NodeId a, NodeId b) noexcept { return find(a) == find(b); }

  std::size_t set_size(NodeId x) noexcept { return size_[find(x)]; }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace khop
