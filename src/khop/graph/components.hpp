/// \file components.hpp
/// Connected-component analysis.
#pragma once

#include <vector>

#include "khop/common/types.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

/// Label of each node's component (labels are 0-based, assigned in order of
/// the smallest node id in each component) plus the component count.
struct Components {
  std::vector<NodeId> label;
  std::size_t count = 0;
};

Components connected_components(const Graph& g);

/// True iff the graph is connected (vacuously true for <= 1 node).
bool is_connected(const Graph& g);

/// True iff the nodes in \p subset induce a connected subgraph of \p g
/// (edges with both endpoints in the subset). Vacuously true for <= 1 node.
/// \p in_subset is an n-sized membership mask.
bool is_connected_subset(const Graph& g, const std::vector<bool>& in_subset);

/// Extraction of the largest connected component with a dense re-labelling.
struct LargestComponent {
  std::vector<NodeId> original_ids;  ///< new id -> old id, ascending
  std::vector<NodeId> new_id;        ///< old id -> new id or kInvalidNode
};
LargestComponent largest_component(const Graph& g);

}  // namespace khop
