/// \file bfs.hpp
/// Breadth-first search toolkit: hop distances, bounded-depth neighborhoods,
/// and *canonical* shortest-path trees.
///
/// Canonical trees pick, among all shortest paths, the one whose parent at
/// every level has the smallest node id. This makes every derived object
/// (virtual links, gateways) a pure function of the topology - essential for
/// reproducibility and for cross-validating the centralized algorithms
/// against the message-passing protocols.
#pragma once

#include <vector>

#include "khop/common/types.hpp"
#include "khop/graph/bfs_scratch.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

/// Result of a single-source BFS.
struct BfsTree {
  NodeId source = kInvalidNode;
  std::vector<Hops> dist;      ///< hop distance, kUnreachable if not reached
  std::vector<NodeId> parent;  ///< canonical parent, kInvalidNode at source /
                               ///< unreached nodes
};

/// Full BFS from \p source with canonical (min-id) parents.
BfsTree bfs(const Graph& g, NodeId source);

/// BFS from \p source exploring only nodes within \p max_hops.
/// dist[v] == kUnreachable for nodes farther than max_hops.
BfsTree bfs_bounded(const Graph& g, NodeId source, Hops max_hops);

/// Nodes with 1 <= dist(source, v) <= k, ascending id order.
std::vector<NodeId> k_hop_neighborhood(const Graph& g, NodeId source, Hops k);

/// Extracts the canonical shortest path source -> target from a BFS tree.
/// Returned path includes both endpoints.
/// \pre tree.dist[target] != kUnreachable
std::vector<NodeId> extract_path(const BfsTree& tree, NodeId target);

/// Multi-source BFS: dist[v] = hops to the nearest seed; owner[v] = the seed
/// that claims v (ties broken by smaller seed id, resolved level by level).
struct MultiSourceBfs {
  std::vector<Hops> dist;
  std::vector<NodeId> owner;
};
MultiSourceBfs multi_source_bfs(const Graph& g,
                                const std::vector<NodeId>& seeds);

/// All-pairs hop distances via n BFS runs. Intended for the small head
/// graphs (tens of nodes); cost O(n * (n + m)).
std::vector<std::vector<Hops>> all_pairs_hops(const Graph& g);

// ---------------------------------------------------------------------------
// Zero-allocation variants. Each *_into overload reuses the caller's scratch
// (epoch-stamped visited marks, see BfsScratch) and writes the result into a
// caller-owned output object, reusing its capacity. Outputs are bit-identical
// to the allocating functions above, which are now thin wrappers over these.
// ---------------------------------------------------------------------------

/// bfs(g, source) into \p out, reusing \p ws.
void bfs_into(const Graph& g, NodeId source, BfsScratch& ws, BfsTree& out);

/// bfs_bounded(g, source, max_hops) into \p out, reusing \p ws.
void bfs_bounded_into(const Graph& g, NodeId source, Hops max_hops,
                      BfsScratch& ws, BfsTree& out);

/// k_hop_neighborhood(g, source, k) into \p out, reusing \p ws.
/// Cost O(reached log reached), independent of n.
void k_hop_neighborhood_into(const Graph& g, NodeId source, Hops k,
                             BfsScratch& ws, std::vector<NodeId>& out);

/// multi_source_bfs(g, seeds) into \p out, reusing \p ws.
void multi_source_bfs_into(const Graph& g, const std::vector<NodeId>& seeds,
                           BfsScratch& ws, MultiSourceBfs& out);

}  // namespace khop
