/// \file mst.hpp
/// Minimum spanning tree construction over explicitly weighted edge lists.
///
/// Both the LMSTGA local trees and the global G-MST baseline operate on
/// *virtual graphs* whose edges carry hop-count weights, so the MST API takes
/// an edge list rather than a Graph. Ties are broken by the total order
/// (weight, min endpoint id, max endpoint id) - the same order the paper
/// suggests ("IDs of two nodes of a virtual link can be used to break a
/// tie") - making the MST unique and the whole pipeline deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "khop/common/types.hpp"

namespace khop {

/// One weighted undirected edge of a virtual graph.
struct WeightedEdge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  std::uint64_t weight = 0;
};

/// Deterministic strict ordering used for all MST computations.
bool edge_less(const WeightedEdge& a, const WeightedEdge& b) noexcept;

/// Kruskal MST over nodes {0..n-1}. Returns the chosen edges.
/// Throws NotConnected if the edges do not span all n nodes.
std::vector<WeightedEdge> kruskal_mst(std::size_t n,
                                      std::vector<WeightedEdge> edges);

/// Prim MST rooted at \p root over nodes {0..n-1} given an adjacency list of
/// weighted edges (both directions must be present). Returns parent array
/// (parent[root] == kInvalidNode). Throws NotConnected when not spanning.
std::vector<NodeId> prim_mst(
    std::size_t n, const std::vector<std::vector<WeightedEdge>>& adj,
    NodeId root);

}  // namespace khop
