#include "khop/graph/relabel.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "khop/common/assert.hpp"
#include "khop/graph/partition.hpp"

namespace khop {

namespace {

// Quantization grid for the Hilbert order: 2^16 cells per axis keeps the
// full d-index inside 32 bits while resolving positions far below any
// practical transmission radius.
constexpr std::uint32_t kHilbertOrder = 16;
constexpr std::uint32_t kHilbertCells = (1u << kHilbertOrder) - 1;

void check_relabeling(const Relabeling& r, std::size_t n,
                      const char* what) {
  KHOP_REQUIRE(r.new_of_old.size() == n && r.old_of_new.size() == n, what);
}

}  // namespace

Relabeling identity_relabeling(std::size_t n) {
  KHOP_REQUIRE(n < static_cast<std::size_t>(kInvalidNode),
               "node count must stay below kInvalidNode (32-bit id space)");
  Relabeling r;
  r.new_of_old.resize(n);
  r.old_of_new.resize(n);
  std::iota(r.new_of_old.begin(), r.new_of_old.end(), NodeId{0});
  std::iota(r.old_of_new.begin(), r.old_of_new.end(), NodeId{0});
  return r;
}

Relabeling inverse(const Relabeling& r) {
  Relabeling out;
  out.new_of_old = r.old_of_new;
  out.old_of_new = r.new_of_old;
  return out;
}

std::uint64_t hilbert_d_index(std::uint32_t x, std::uint32_t y,
                              std::uint32_t order) {
  KHOP_REQUIRE(order >= 1 && order <= 32, "hilbert order out of range");
  KHOP_REQUIRE((order == 32 || x < (std::uint64_t{1} << order)) &&
                   (order == 32 || y < (std::uint64_t{1} << order)),
               "hilbert coordinate out of range");
  const std::uint32_t mask = order == 32
                                 ? std::numeric_limits<std::uint32_t>::max()
                                 : (1u << order) - 1u;
  std::uint64_t d = 0;
  for (std::uint32_t s = order; s-- > 0;) {
    const std::uint32_t rx = (x >> s) & 1u;
    const std::uint32_t ry = (y >> s) & 1u;
    d += (std::uint64_t{1} << (2 * s)) * ((3 * rx) ^ ry);
    // Rotate the quadrant so the sub-curve enters/exits correctly (only the
    // not-yet-consumed low bits matter for later iterations).
    if (ry == 0) {
      if (rx == 1) {
        x = ~x & mask;
        y = ~y & mask;
      }
      std::swap(x, y);
    }
  }
  return d;
}

Relabeling sfc_relabeling(const std::vector<Point2>& pts) {
  const std::size_t n = pts.size();
  KHOP_REQUIRE(n < static_cast<std::size_t>(kInvalidNode),
               "node count must stay below kInvalidNode (32-bit id space)");
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
  if (n > 0) {
    min_x = max_x = pts[0].x;
    min_y = max_y = pts[0].y;
    for (const Point2& p : pts) {
      min_x = std::min(min_x, p.x);
      min_y = std::min(min_y, p.y);
      max_x = std::max(max_x, p.x);
      max_y = std::max(max_y, p.y);
    }
  }
  const double span_x = max_x - min_x;
  const double span_y = max_y - min_y;
  const auto quantize = [](double v, double lo, double span) -> std::uint32_t {
    if (span <= 0.0) return 0;
    const double t = (v - lo) / span * static_cast<double>(kHilbertCells);
    return std::min(kHilbertCells, static_cast<std::uint32_t>(t));
  };

  std::vector<std::pair<std::uint64_t, NodeId>> keyed(n);
  for (std::size_t u = 0; u < n; ++u) {
    keyed[u] = {hilbert_d_index(quantize(pts[u].x, min_x, span_x),
                                quantize(pts[u].y, min_y, span_y),
                                kHilbertOrder),
                static_cast<NodeId>(u)};
  }
  // Ties (coincident or same-cell points) break by old id: the pair's
  // second member makes the sort key strict, so this is deterministic.
  std::sort(keyed.begin(), keyed.end());

  Relabeling r;
  r.new_of_old.resize(n);
  r.old_of_new.resize(n);
  for (std::size_t new_id = 0; new_id < n; ++new_id) {
    const NodeId old_id = keyed[new_id].second;
    r.old_of_new[new_id] = old_id;
    r.new_of_old[old_id] = static_cast<NodeId>(new_id);
  }
  return r;
}

double shard_cut_quality(const Graph& g, std::size_t num_shards) {
  if (g.num_nodes() == 0) return 0.0;
  const ShardPlan plan(g, num_shards);
  return static_cast<double>(plan.num_boundary_nodes()) /
         static_cast<double>(g.num_nodes());
}

Graph relabel(const Graph& g, const Relabeling& r) {
  const std::size_t n = g.num_nodes();
  check_relabeling(r, n, "relabeling size must match the graph");
  std::vector<std::size_t> offsets(n + 1, 0);
  for (std::size_t new_u = 0; new_u < n; ++new_u) {
    offsets[new_u + 1] = offsets[new_u] + g.degree(r.old_of_new[new_u]);
  }
  std::vector<NodeId> adjacency(offsets[n]);
  for (std::size_t new_u = 0; new_u < n; ++new_u) {
    const auto row = g.neighbors(r.old_of_new[new_u]);
    const auto out = adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[new_u]);
    std::transform(row.begin(), row.end(), out,
                   [&](NodeId old_v) { return r.new_of_old[old_v]; });
    std::sort(out, out + static_cast<std::ptrdiff_t>(row.size()));
  }
  return Graph::from_csr(std::move(offsets), std::move(adjacency));
}

std::vector<Point2> relabel(const std::vector<Point2>& pts,
                            const Relabeling& r) {
  check_relabeling(r, pts.size(), "relabeling size must match the points");
  std::vector<Point2> out(pts.size());
  for (std::size_t u = 0; u < pts.size(); ++u) {
    out[r.new_of_old[u]] = pts[u];
  }
  return out;
}

std::vector<PriorityKey> relabel(const std::vector<PriorityKey>& prios,
                                 const Relabeling& r) {
  check_relabeling(r, prios.size(), "relabeling size must match priorities");
  std::vector<PriorityKey> out(prios.size());
  for (std::size_t u = 0; u < prios.size(); ++u) {
    out[r.new_of_old[u]] = {prios[u].key, r.new_of_old[u]};
  }
  return out;
}

BfsTree to_original_ids(const BfsTree& t, const Relabeling& r) {
  const std::size_t n = t.dist.size();
  check_relabeling(r, n, "relabeling size must match the BFS tree");
  BfsTree out;
  out.source = t.source == kInvalidNode ? kInvalidNode : r.old_of_new[t.source];
  out.dist.resize(n);
  out.parent.resize(n);
  for (std::size_t old_u = 0; old_u < n; ++old_u) {
    const NodeId new_u = r.new_of_old[old_u];
    out.dist[old_u] = t.dist[new_u];
    const NodeId p = t.parent[new_u];
    out.parent[old_u] = p == kInvalidNode ? kInvalidNode : r.old_of_new[p];
  }
  return out;
}

Clustering to_original_ids(const Clustering& c, const Relabeling& r) {
  const std::size_t n = c.head_of.size();
  check_relabeling(r, n, "relabeling size must match the clustering");
  Clustering out;
  out.k = c.k;
  out.election_rounds = c.election_rounds;
  out.head_of.resize(n);
  out.dist_to_head.resize(n);
  for (std::size_t old_u = 0; old_u < n; ++old_u) {
    const NodeId new_u = r.new_of_old[old_u];
    out.head_of[old_u] = r.old_of_new[c.head_of[new_u]];
    out.dist_to_head[old_u] = c.dist_to_head[new_u];
  }
  out.heads.reserve(c.heads.size());
  for (NodeId h : c.heads) out.heads.push_back(r.old_of_new[h]);
  std::sort(out.heads.begin(), out.heads.end());
  out.cluster_of.assign(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const auto it = std::lower_bound(out.heads.begin(), out.heads.end(),
                                     out.head_of[v]);
    KHOP_ASSERT(it != out.heads.end() && *it == out.head_of[v],
                "head_of references a non-head");
    out.cluster_of[v] =
        static_cast<std::uint32_t>(std::distance(out.heads.begin(), it));
  }
  return out;
}

Backbone to_original_ids(const Backbone& b, const Relabeling& r) {
  Backbone out;
  out.pipeline = b.pipeline;
  out.spec = b.spec;
  out.heads.reserve(b.heads.size());
  for (NodeId h : b.heads) out.heads.push_back(r.old_of_new[h]);
  std::sort(out.heads.begin(), out.heads.end());
  out.gateways.reserve(b.gateways.size());
  for (NodeId gsel : b.gateways) out.gateways.push_back(r.old_of_new[gsel]);
  std::sort(out.gateways.begin(), out.gateways.end());
  out.virtual_links.reserve(b.virtual_links.size());
  for (const auto& [u, v] : b.virtual_links) {
    const NodeId a = r.old_of_new[u];
    const NodeId c = r.old_of_new[v];
    out.virtual_links.emplace_back(std::min(a, c), std::max(a, c));
  }
  std::sort(out.virtual_links.begin(), out.virtual_links.end());
  return out;
}

}  // namespace khop
