/// \file metrics.hpp
/// Descriptive graph statistics used by the generators, tests and benches.
#pragma once

#include <cstddef>

#include "khop/graph/graph.hpp"

namespace khop {

struct DegreeStats {
  double mean = 0.0;
  std::size_t min = 0;
  std::size_t max = 0;
};

DegreeStats degree_stats(const Graph& g);

/// Eccentricity-based diameter in hops. O(n * (n + m)); fine for the paper's
/// network sizes. Throws NotConnected on disconnected input.
Hops diameter(const Graph& g);

}  // namespace khop
