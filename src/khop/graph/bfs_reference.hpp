/// \file bfs_reference.hpp
/// The original allocating BFS implementations, preserved verbatim as an
/// independent oracle. The production kernels in bfs.hpp now run on
/// BfsScratch (epoch-stamped marks, reused buffers); these reference
/// versions re-fill fresh O(n) arrays per call and share no code with them,
/// so the equivalence suite and the perf-regression harness can compare two
/// genuinely distinct implementations (bit-exactness and speedup
/// respectively). Not for production call sites.
#pragma once

#include <vector>

#include "khop/common/types.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/graph/graph.hpp"

namespace khop::reference {

/// Allocating full BFS; output bit-identical to khop::bfs.
BfsTree bfs(const Graph& g, NodeId source);

/// Allocating bounded BFS; output bit-identical to khop::bfs_bounded.
BfsTree bfs_bounded(const Graph& g, NodeId source, Hops max_hops);

/// Allocating k-hop neighborhood (O(n) scan); output bit-identical to
/// khop::k_hop_neighborhood.
std::vector<NodeId> k_hop_neighborhood(const Graph& g, NodeId source, Hops k);

/// Allocating multi-source BFS; output bit-identical to
/// khop::multi_source_bfs.
MultiSourceBfs multi_source_bfs(const Graph& g,
                                const std::vector<NodeId>& seeds);

}  // namespace khop::reference
