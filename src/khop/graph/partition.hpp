/// \file partition.hpp
/// Spatial sharding of the node id space for the distributed round loop.
///
/// A ShardPlan cuts [0, n) into S contiguous half-open ranges. On a graph
/// whose ids follow the space-filling-curve relabeling (graph/relabel.hpp),
/// numerically contiguous ranges are spatially compact, so the cut crossed
/// by edges is thin: most nodes are *interior* (every neighbor in the same
/// shard) and only a narrow band is *boundary* (some neighbor elsewhere).
/// That thin-cut property is what lets a sharded engine exchange only
/// boundary-crossing traffic per round (sim/sharded_engine.hpp) — the same
/// structure (k,m)-connectivity analysis exploits in clustered networks.
///
/// The plan also materializes each shard's *halo*: the out-of-shard nodes
/// adjacent to it, i.e. the senders whose messages can cross into the shard.
/// shard_cut_quality (graph/relabel.hpp) reports the boundary fraction per
/// shard count — the diagnostic for whether an id order shards well.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "khop/common/types.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

/// One shard's contiguous node range plus its cut structure.
struct ShardRange {
  NodeId begin = 0;  ///< first owned node id
  NodeId end = 0;    ///< one past the last owned node id

  /// Owned nodes with at least one neighbor outside [begin, end), ascending.
  std::vector<NodeId> boundary_nodes;
  /// Out-of-shard nodes adjacent to this shard (its halo), ascending.
  std::vector<NodeId> halo;

  std::size_t size() const noexcept { return end - begin; }
};

/// A partition of [0, n) into contiguous shards with cut classification.
class ShardPlan {
 public:
  /// Cuts \p g's id space into \p num_shards near-equal contiguous ranges
  /// (the same arithmetic as parallel_for's static blocks: shard s owns
  /// [n*s/S, n*(s+1)/S)) and classifies every node. num_shards may exceed
  /// the node count; the surplus shards are empty.
  ShardPlan(const Graph& g, std::size_t num_shards);

  std::size_t num_shards() const noexcept { return ranges_.size(); }
  std::size_t num_nodes() const noexcept { return shard_of_.size(); }

  const ShardRange& shard(std::size_t s) const { return ranges_[s]; }
  std::span<const ShardRange> shards() const noexcept { return ranges_; }

  /// Owning shard of \p v. O(1).
  std::size_t shard_of(NodeId v) const { return shard_of_[v]; }

  /// True iff \p v has a neighbor in another shard.
  bool is_boundary(NodeId v) const { return boundary_[v] != 0; }

  /// Total boundary nodes across all shards.
  std::size_t num_boundary_nodes() const noexcept { return boundary_total_; }

  /// Boundary fraction of shard \p s: |boundary_nodes| / size (0 for an
  /// empty shard). The per-shard form of the cut-quality diagnostic.
  double boundary_fraction(std::size_t s) const;

 private:
  std::vector<ShardRange> ranges_;
  std::vector<std::uint32_t> shard_of_;  ///< per node, O(1) routing
  std::vector<std::uint8_t> boundary_;   ///< per node, 1 = boundary
  std::size_t boundary_total_ = 0;
};

}  // namespace khop
