/// \file graph.hpp
/// Immutable undirected graph in compressed-sparse-row form.
///
/// All khop algorithms operate on this structure. Neighbor lists are sorted
/// by node id, which gives deterministic iteration order (the basis for the
/// library-wide canonical tie-breaking) and O(log d) edge queries.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "khop/common/types.hpp"

namespace khop {

/// Immutable undirected simple graph (no self-loops, no multi-edges).
class Graph {
 public:
  /// Empty graph with \p n isolated vertices.
  explicit Graph(std::size_t n = 0);

  /// Builds from an undirected edge list. Duplicate edges and self-loops are
  /// rejected (InvalidArgument), endpoints must be < n.
  static Graph from_edges(std::size_t n,
                          std::span<const std::pair<NodeId, NodeId>> edges);

  /// Adopts pre-built CSR arrays (the streamed generation path emits these
  /// directly, skipping the O(m) edge-pair intermediate of from_edges).
  /// Validates the full Graph invariant before adopting: offsets monotone
  /// with offsets[0] == 0 and offsets[n] == adjacency.size(), every row
  /// strictly ascending (catches duplicates), no self-loops, and symmetric
  /// (v in row(u) iff u in row(v)). Throws InvalidArgument otherwise.
  static Graph from_csr(std::vector<std::size_t> offsets,
                        std::vector<NodeId> adjacency);

  /// Number of vertices.
  std::size_t num_nodes() const noexcept { return offsets_.size() - 1; }

  /// Number of undirected edges.
  std::size_t num_edges() const noexcept { return adjacency_.size() / 2; }

  /// Sorted neighbor list of \p u.
  std::span<const NodeId> neighbors(NodeId u) const;

  /// Degree of \p u.
  std::size_t degree(NodeId u) const;

  /// True iff the undirected edge {u, v} exists. O(log deg(u)).
  bool has_edge(NodeId u, NodeId v) const;

  /// All undirected edges as (min, max) pairs, sorted lexicographically.
  std::vector<std::pair<NodeId, NodeId>> edge_list() const;

  /// Returns a copy of this graph with node \p u isolated (all incident
  /// edges removed). Used by the dynamics module to model node failure while
  /// keeping ids stable.
  Graph without_node(NodeId u) const;

 private:
  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;     // grouped by source, each group sorted

  void check_node(NodeId u) const;
};

}  // namespace khop
