#include "khop/graph/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "khop/common/assert.hpp"
#include "khop/runtime/thread_pool.hpp"

namespace khop {

SpatialGrid::SpatialGrid(const std::vector<Point2>& pts, double radius) {
  rebuild(pts, radius);
}

void SpatialGrid::rebuild(const std::vector<Point2>& pts, double radius) {
  KHOP_REQUIRE(!pts.empty(), "empty point set");
  KHOP_REQUIRE(radius > 0.0, "radius must be positive");
  pts_ = &pts;
  radius_ = radius;

  double max_x = pts[0].x, max_y = pts[0].y;
  min_x_ = pts[0].x;
  min_y_ = pts[0].y;
  for (const auto& p : pts) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  cell_ = radius;
  // Cap the cell count at O(n): a radius tiny relative to the span would
  // otherwise allocate (span/radius)^2 cells. Enlarging cells preserves
  // correctness - the 3x3 query window still covers the radius and the
  // per-candidate distance test is unchanged - it only densifies cells.
  // Doubling against the actual product handles anisotropic (e.g. near-
  // collinear) spreads where one dimension floors at a single row.
  const double span_x = max_x - min_x_;
  const double span_y = max_y - min_y_;
  const double max_cells = 4.0 * static_cast<double>(pts.size()) + 1024.0;
  while ((span_x / cell_ + 1.0) * (span_y / cell_ + 1.0) > max_cells) {
    cell_ *= 2.0;
  }
  cols_ = static_cast<std::size_t>(span_x / cell_) + 1;
  rows_ = static_cast<std::size_t>(span_y / cell_) + 1;

  // CSR membership via counting sort. Points are placed in ascending id
  // order, so each cell's slice is ascending - the order every query
  // depends on for deterministic output.
  const std::size_t num_cells = cols_ * rows_;
  cell_offsets_.assign(num_cells + 1, 0);
  for (const auto& p : pts) {
    ++cell_offsets_[cell_index(p.x, p.y) + 1];
  }
  for (std::size_t c = 0; c < num_cells; ++c) {
    cell_offsets_[c + 1] += cell_offsets_[c];
  }
  cell_ids_.resize(pts.size());
  for (NodeId i = 0; i < static_cast<NodeId>(pts.size()); ++i) {
    // cell_offsets_[c] doubles as the placement cursor for cell c ...
    cell_ids_[cell_offsets_[cell_index(pts[i].x, pts[i].y)]++] = i;
  }
  // ... which leaves cell_offsets_[c] == start of cell c+1; shift back.
  for (std::size_t c = num_cells; c > 0; --c) {
    cell_offsets_[c] = cell_offsets_[c - 1];
  }
  cell_offsets_[0] = 0;
}

std::size_t SpatialGrid::cell_index(double x, double y) const noexcept {
  auto cx = static_cast<std::size_t>((x - min_x_) / cell_);
  auto cy = static_cast<std::size_t>((y - min_y_) / cell_);
  cx = std::min(cx, cols_ - 1);
  cy = std::min(cy, rows_ - 1);
  return cy * cols_ + cx;
}

template <typename Visitor>
void SpatialGrid::for_each_within_radius(NodeId u, Visitor&& visit) const {
  KHOP_REQUIRE(pts_ != nullptr, "SpatialGrid queried before rebuild()");
  KHOP_REQUIRE(u < pts_->size(), "node id out of range");
  const std::vector<Point2>& pts = *pts_;
  const Point2& p = pts[u];
  const double r2 = radius_ * radius_;

  const auto cx = static_cast<std::ptrdiff_t>((p.x - min_x_) / cell_);
  const auto cy = static_cast<std::ptrdiff_t>((p.y - min_y_) / cell_);
  for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
    for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
      const std::ptrdiff_t nx = cx + dx;
      const std::ptrdiff_t ny = cy + dy;
      if (nx < 0 || ny < 0 || nx >= static_cast<std::ptrdiff_t>(cols_) ||
          ny >= static_cast<std::ptrdiff_t>(rows_)) {
        continue;
      }
      for (NodeId v : cell_members(static_cast<std::size_t>(ny) * cols_ +
                                   static_cast<std::size_t>(nx))) {
        if (v != u && distance_sq(p, pts[v]) <= r2) visit(v);
      }
    }
  }
}

std::vector<NodeId> SpatialGrid::within_radius(NodeId u) const {
  std::vector<NodeId> out;
  within_radius_into(u, out);
  return out;
}

void SpatialGrid::within_radius_into(NodeId u, std::vector<NodeId>& out) const {
  out.clear();
  for_each_within_radius(u, [&out](NodeId v) { out.push_back(v); });
  std::sort(out.begin(), out.end());
}

std::size_t SpatialGrid::count_within_radius(NodeId u) const {
  std::size_t count = 0;
  for_each_within_radius(u, [&count](NodeId) { ++count; });
  return count;
}

Graph build_unit_disk_graph(const std::vector<Point2>& pts, double radius) {
  SpatialGrid grid;
  return build_unit_disk_graph_streamed(pts, radius, grid);
}

Graph build_unit_disk_graph_streamed(const std::vector<Point2>& pts,
                                     double radius, SpatialGrid& grid,
                                     ThreadPool* pool) {
  const std::size_t n = pts.size();
  grid.rebuild(pts, radius);

  // Counting pass: each node's CSR row length is its disk neighborhood
  // size. The distance predicate is exactly symmetric in IEEE arithmetic
  // (dx*dx + dy*dy is invariant under operand negation), so per-node rows
  // reproduce the symmetric adjacency from_edges would build.
  std::vector<std::size_t> offsets(n + 1, 0);
  const auto count_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t u = begin; u < end; ++u) {
      offsets[u + 1] = grid.count_within_radius(static_cast<NodeId>(u));
    }
  };

  // Tile partition: contiguous id blocks. Tiles write disjoint slots of
  // offsets/adjacency, so the "merge" is simply the ascending-id layout of
  // CSR itself - deterministic for any thread count.
  const std::size_t num_tiles =
      pool == nullptr ? 1
                      : std::min<std::size_t>(pool->num_threads() * 4,
                                              std::max<std::size_t>(n, 1));
  const std::size_t tile = (n + num_tiles - 1) / num_tiles;
  if (pool == nullptr || num_tiles <= 1) {
    count_range(0, n);
  } else {
    parallel_for_throwing(*pool, num_tiles, [&](std::size_t t) {
      count_range(t * tile, std::min(n, (t + 1) * tile));
    });
  }
  for (std::size_t u = 0; u < n; ++u) offsets[u + 1] += offsets[u];

  std::vector<NodeId> adjacency(offsets[n]);
  const auto fill_range = [&](std::size_t begin, std::size_t end) {
    std::vector<NodeId> row;
    for (std::size_t u = begin; u < end; ++u) {
      grid.within_radius_into(static_cast<NodeId>(u), row);
      KHOP_ASSERT(row.size() == offsets[u + 1] - offsets[u],
                  "streamed build: counting/placement mismatch");
      std::copy(row.begin(), row.end(),
                adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[u]));
    }
  };
  if (pool == nullptr || num_tiles <= 1) {
    fill_range(0, n);
  } else {
    parallel_for_throwing(*pool, num_tiles, [&](std::size_t t) {
      fill_range(t * tile, std::min(n, (t + 1) * tile));
    });
  }
  return Graph::from_csr(std::move(offsets), std::move(adjacency));
}

namespace reference {

Graph build_unit_disk_graph(const std::vector<Point2>& pts, double radius) {
  SpatialGrid grid(pts, radius);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < pts.size(); ++u) {
    for (NodeId v : grid.within_radius(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(pts.size(), edges);
}

}  // namespace reference

}  // namespace khop
