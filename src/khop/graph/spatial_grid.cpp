#include "khop/graph/spatial_grid.hpp"

#include <algorithm>
#include <cmath>

#include "khop/common/assert.hpp"

namespace khop {

SpatialGrid::SpatialGrid(const std::vector<Point2>& pts, double radius)
    : pts_(pts), radius_(radius) {
  KHOP_REQUIRE(!pts.empty(), "empty point set");
  KHOP_REQUIRE(radius > 0.0, "radius must be positive");

  double max_x = pts[0].x, max_y = pts[0].y;
  min_x_ = pts[0].x;
  min_y_ = pts[0].y;
  for (const auto& p : pts) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  cell_ = radius;
  // Cap the cell count at O(n): a radius tiny relative to the span would
  // otherwise allocate (span/radius)^2 cells. Enlarging cells preserves
  // correctness - the 3x3 query window still covers the radius and the
  // per-candidate distance test is unchanged - it only densifies cells.
  // Doubling against the actual product handles anisotropic (e.g. near-
  // collinear) spreads where one dimension floors at a single row.
  const double span_x = max_x - min_x_;
  const double span_y = max_y - min_y_;
  const double max_cells = 4.0 * static_cast<double>(pts.size()) + 1024.0;
  while ((span_x / cell_ + 1.0) * (span_y / cell_ + 1.0) > max_cells) {
    cell_ *= 2.0;
  }
  cols_ = static_cast<std::size_t>(span_x / cell_) + 1;
  rows_ = static_cast<std::size_t>(span_y / cell_) + 1;
  cells_.resize(cols_ * rows_);
  for (NodeId i = 0; i < pts.size(); ++i) {
    cells_[cell_index(pts[i].x, pts[i].y)].push_back(i);
  }
}

std::size_t SpatialGrid::cell_index(double x, double y) const noexcept {
  auto cx = static_cast<std::size_t>((x - min_x_) / cell_);
  auto cy = static_cast<std::size_t>((y - min_y_) / cell_);
  cx = std::min(cx, cols_ - 1);
  cy = std::min(cy, rows_ - 1);
  return cy * cols_ + cx;
}

template <typename Visitor>
void SpatialGrid::for_each_within_radius(NodeId u, Visitor&& visit) const {
  KHOP_REQUIRE(u < pts_.size(), "node id out of range");
  const Point2& p = pts_[u];
  const double r2 = radius_ * radius_;

  const auto cx = static_cast<std::ptrdiff_t>((p.x - min_x_) / cell_);
  const auto cy = static_cast<std::ptrdiff_t>((p.y - min_y_) / cell_);
  for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
    for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
      const std::ptrdiff_t nx = cx + dx;
      const std::ptrdiff_t ny = cy + dy;
      if (nx < 0 || ny < 0 || nx >= static_cast<std::ptrdiff_t>(cols_) ||
          ny >= static_cast<std::ptrdiff_t>(rows_)) {
        continue;
      }
      for (NodeId v : cells_[static_cast<std::size_t>(ny) * cols_ +
                             static_cast<std::size_t>(nx)]) {
        if (v != u && distance_sq(p, pts_[v]) <= r2) visit(v);
      }
    }
  }
}

std::vector<NodeId> SpatialGrid::within_radius(NodeId u) const {
  std::vector<NodeId> out;
  for_each_within_radius(u, [&out](NodeId v) { out.push_back(v); });
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t SpatialGrid::count_within_radius(NodeId u) const {
  std::size_t count = 0;
  for_each_within_radius(u, [&count](NodeId) { ++count; });
  return count;
}

Graph build_unit_disk_graph(const std::vector<Point2>& pts, double radius) {
  SpatialGrid grid(pts, radius);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < pts.size(); ++u) {
    for (NodeId v : grid.within_radius(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  return Graph::from_edges(pts.size(), edges);
}

}  // namespace khop
