/// \file bfs_scratch.hpp
/// Reusable scratch state for the BFS kernels: epoch-stamped visited marks
/// plus distance/parent/frontier buffers that survive across runs.
///
/// Why: the clustering pipeline performs thousands of bounded BFS runs per
/// topology, and each allocating run pays two O(n) array fills plus several
/// heap allocations even when it only visits a few dozen nodes. A BfsScratch
/// amortizes the buffers across runs and replaces the O(n) clears with an
/// epoch bump, so a bounded run costs O(visited + visited edges) only.
///
/// Layout (the million-node rewrite): visited marks are one *byte* per node
/// (4x less mark traffic than the former uint32 stamps; the 255-epoch wrap
/// costs one O(n) clear every 255 runs, amortized to O(n/255) per run), and
/// the level frontiers live directly inside reached_ — each level is a
/// contiguous [begin, end) span of the flat array, so there is no separate
/// frontier/next double buffer to copy between. Sparse levels expand
/// top-down (scan the frontier span, stamp unseen neighbors, sort the
/// appended tail); dense levels (>= 1/8 of the graph) switch to a bottom-up
/// scan over all unvisited nodes against a word-packed frontier bitset,
/// which turns the random scatter of frontier expansion into a sequential
/// sweep. Both directions produce bit-identical output (see bfs_scratch.cpp
/// for the argument); reference/bfs_reference.hpp remains the oracle.
///
/// Contract:
///  * One run at a time: calling any run_* invalidates the previous run's
///    query results (the epoch advances).
///  * Not thread-safe: one BfsScratch per thread (see Workspace /
///    tls_workspace() in khop/runtime/workspace.hpp).
///  * dist()/parent()/owner() queries are valid for any v < num_nodes of the
///    graph given to the last run.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "khop/common/types.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

class DynamicGraph;

class BfsScratch {
 public:
  /// Bounded single-source BFS with canonical (min-id) parents; equivalent
  /// to bfs_bounded(g, source, max_hops) but touching only reached nodes.
  /// Pass kUnreachable as \p max_hops for an unbounded run.
  void run(const Graph& g, NodeId source, Hops max_hops);

  /// The same canonical bounded BFS over a mutable DynamicGraph (the churn
  /// layer's topology). Neighbor lists are sorted in both graph types, so a
  /// run here is bit-identical to a run over DynamicGraph::snapshot(). Dead
  /// nodes are isolated and therefore never reached.
  /// \pre g.alive(source)
  void run(const DynamicGraph& g, NodeId source, Hops max_hops);

  /// Multi-source BFS; equivalent to multi_source_bfs(g, seeds). After this
  /// run owner() is meaningful and parent() must not be used.
  void run_multi(const Graph& g, std::span<const NodeId> seeds);

  /// Hop distance of \p v from the last run's source(s); kUnreachable if the
  /// run did not reach v.
  Hops dist(NodeId v) const noexcept {
    return stamp_[v] == epoch_ ? dist_[v] : kUnreachable;
  }

  /// Canonical parent of \p v in the last single-source run (kInvalidNode at
  /// the source and at unreached nodes).
  NodeId parent(NodeId v) const noexcept {
    return stamp_[v] == epoch_ ? parent_[v] : kInvalidNode;
  }

  /// Owning seed of \p v after run_multi (kInvalidNode if unreached).
  NodeId owner(NodeId v) const noexcept { return parent(v); }

  /// Every node the last run reached (sources included), in visit order:
  /// level by level, ascending id within each level.
  std::span<const NodeId> reached() const noexcept { return reached_; }

  /// The nodes of the last run at distance <= \p d: a prefix of reached()
  /// (levels are contiguous), so scans bounded by distance pay only for the
  /// nodes they look at. d past the last level returns all of reached().
  std::span<const NodeId> reached_within(Hops d) const noexcept {
    if (d >= level_end_.size()) return reached_;
    return {reached_.data(), level_end_[d]};
  }

  /// Source of the last single-source run.
  NodeId source() const noexcept { return source_; }

  /// Canonical shortest path source -> target from the last single-source
  /// run, both endpoints included. \pre dist(target) != kUnreachable
  std::vector<NodeId> extract_path(NodeId target) const;

 private:
  /// Grows the per-node arrays to \p n and opens a fresh epoch.
  void begin(std::size_t n);

  /// Shared body of the single-source overloads; GraphT needs num_nodes()
  /// and sorted neighbors(u). Defined in the .cpp and instantiated there.
  template <typename GraphT>
  void run_any(const GraphT& g, NodeId source, Hops max_hops);

  /// Bottom-up expansion of one dense level: every unvisited node scans its
  /// (sorted) adjacency for a member of the current frontier, whose
  /// membership is looked up in the word-packed frontier_bits_ set.
  template <typename GraphT>
  void expand_bottom_up(const GraphT& g, std::size_t lvl_begin,
                        std::size_t lvl_end, Hops level);

  std::uint8_t epoch_ = 0;
  std::vector<std::uint8_t> stamp_;  ///< stamp_[v] == epoch_ <=> v visited
  std::vector<Hops> dist_;
  std::vector<NodeId> parent_;  ///< parent (single-source) or owner (multi)
  std::vector<NodeId> reached_;  ///< doubles as flat frontier storage
  std::vector<std::size_t> level_end_;  ///< level_end_[d] = #reached at <= d
  std::vector<std::uint64_t> frontier_bits_;  ///< dense-level membership set
  NodeId source_ = kInvalidNode;
};

}  // namespace khop
