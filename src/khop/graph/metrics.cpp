#include "khop/graph/metrics.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"
#include "khop/common/error.hpp"
#include "khop/graph/bfs.hpp"

namespace khop {

DegreeStats degree_stats(const Graph& g) {
  KHOP_REQUIRE(g.num_nodes() > 0, "empty graph");
  DegreeStats s;
  s.min = g.degree(0);
  s.max = g.degree(0);
  std::size_t total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const std::size_t d = g.degree(u);
    total += d;
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
  }
  s.mean = static_cast<double>(total) / static_cast<double>(g.num_nodes());
  return s;
}

Hops diameter(const Graph& g) {
  KHOP_REQUIRE(g.num_nodes() > 0, "empty graph");
  Hops diam = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const BfsTree t = bfs(g, u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (t.dist[v] == kUnreachable) {
        throw NotConnected("diameter: graph is not connected");
      }
      diam = std::max(diam, t.dist[v]);
    }
  }
  return diam;
}

}  // namespace khop
