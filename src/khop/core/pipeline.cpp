#include "khop/core/pipeline.hpp"

#include "khop/cluster/validate.hpp"
#include "khop/common/assert.hpp"

namespace khop {

ConnectedClusteringResult build_connected_clustering(
    const Graph& g, const PipelineOptions& opts, const EnergyState* energy,
    Rng* rng) {
  const auto priorities = make_priorities(g, opts.priority, energy, rng);
  ConnectedClusteringResult r;
  r.clustering = khop_clustering(g, opts.k, priorities, opts.affiliation);
  r.backbone = build_backbone(g, r.clustering, opts.pipeline);
  r.cds = extract_cds(r.clustering, r.backbone);
  if (opts.validate) {
    std::string err = validate_clustering(g, r.clustering);
    KHOP_ASSERT(err.empty(), "clustering invariants violated: " + err);
    err = validate_k_cds(g, r.clustering, r.backbone);
    KHOP_ASSERT(err.empty(), "backbone invariants violated: " + err);
  }
  return r;
}

ConnectedClusteringResult build_connected_clustering(
    const AdHocNetwork& net, const PipelineOptions& opts,
    const EnergyState* energy, Rng* rng) {
  return build_connected_clustering(net.graph, opts, energy, rng);
}

}  // namespace khop
