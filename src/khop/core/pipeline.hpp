/// \file pipeline.hpp
/// Umbrella public API: one call from a network to a validated connected
/// k-hop clustering backbone. This is the entry point the examples and the
/// README quickstart use; the individual phases remain available in the
/// lower-level modules for callers that need to customize.
#pragma once

#include <string>

#include "khop/cds/cds.hpp"
#include "khop/cluster/clustering.hpp"
#include "khop/common/rng.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/net/energy.hpp"
#include "khop/net/network.hpp"

namespace khop {

struct PipelineOptions {
  Hops k = 2;
  Pipeline pipeline = Pipeline::kAcLmst;
  AffiliationRule affiliation = AffiliationRule::kIdBased;
  PriorityRule priority = PriorityRule::kLowestId;
  bool validate = true;  ///< run the Theorem-1/2 checkers (throws on failure)
};

struct ConnectedClusteringResult {
  Clustering clustering;
  Backbone backbone;
  Cds cds;
};

/// Runs clustering (phase 1) + neighbor/gateway selection (phase 2).
/// \p energy is required for PriorityRule::kHighestEnergy, \p rng for
/// kRandomTimer.
ConnectedClusteringResult build_connected_clustering(
    const Graph& g, const PipelineOptions& opts = {},
    const EnergyState* energy = nullptr, Rng* rng = nullptr);

/// Convenience overload for a generated network.
ConnectedClusteringResult build_connected_clustering(
    const AdHocNetwork& net, const PipelineOptions& opts = {},
    const EnergyState* energy = nullptr, Rng* rng = nullptr);

}  // namespace khop
