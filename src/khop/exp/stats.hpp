/// \file stats.hpp
/// Streaming statistics and the paper's stopping rule: repeat each
/// configuration until the 90%-confidence interval half-width is within
/// +-1% of the mean (or a trial cap is reached).
#pragma once

#include <cstddef>

namespace khop {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Two-sided Student-t critical value at 90% confidence for \p df degrees of
/// freedom (exact table for df <= 30, normal 1.645 beyond).
double student_t_90(std::size_t df) noexcept;

/// Half-width of the 90% confidence interval for the mean.
double ci_halfwidth_90(const RunningStats& s) noexcept;

/// True once the 90% CI half-width is <= rel * |mean| (needs >= 2 samples;
/// a zero mean is satisfied only by zero variance).
bool ci_within_relative(const RunningStats& s, double rel) noexcept;

}  // namespace khop
