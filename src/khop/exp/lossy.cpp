#include "khop/exp/lossy.hpp"

#include "khop/common/assert.hpp"
#include "khop/exp/experiment.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/graph/components.hpp"
#include "khop/net/generator.hpp"
#include "khop/radio/lossy_flood.hpp"
#include "khop/radio/network_link.hpp"

namespace khop {

std::string_view radio_kind_name(RadioKind kind) {
  switch (kind) {
    case RadioKind::kUnitDisk: return kUnitDiskModelName;
    case RadioKind::kQuasiUnitDisk: return kQuasiUnitDiskModelName;
    case RadioKind::kLogNormal: return kLogNormalModelName;
  }
  return "?";
}

double resolve_lossy_radius(const LossyExperimentConfig& cfg,
                            std::uint64_t seed) {
  if (cfg.radius) return *cfg.radius;
  ExperimentConfig ideal;
  ideal.num_nodes = cfg.num_nodes;
  ideal.avg_degree = cfg.avg_degree;
  return resolve_radius(ideal, seed);
}

std::unique_ptr<LinkModel> make_link_model(const LossyExperimentConfig& cfg,
                                           double radius) {
  KHOP_REQUIRE(radius > 0.0, "radius must be positive");
  switch (cfg.radio) {
    case RadioKind::kUnitDisk:
      return std::make_unique<UnitDiskModel>(radius);
    case RadioKind::kQuasiUnitDisk: {
      KHOP_REQUIRE(
          cfg.qudg_inner_fraction > 0.0 && cfg.qudg_inner_fraction <= 1.0,
          "qudg_inner_fraction must be in (0, 1]");
      return std::make_unique<QuasiUnitDiskModel>(
          cfg.qudg_inner_fraction * radius, radius);
    }
    case RadioKind::kLogNormal: {
      LogNormalShadowingModel::Params p;
      p.r_half = radius;
      p.shadowing_sigma_db = cfg.shadowing_sigma_db;
      return std::make_unique<LogNormalShadowingModel>(p);
    }
  }
  throw InvalidArgument("unknown RadioKind");
}

namespace {

/// Survival in a sampled realized topology: the CDS still induces a
/// connected subgraph (the validator's connectivity check) AND the paper's
/// k-domination still holds (every node within k realized hops of a head).
bool backbone_survives(const Graph& realized, const Backbone& b, Hops k) {
  if (!is_connected_subset(realized, b.cds_mask(realized.num_nodes()))) {
    return false;
  }
  const MultiSourceBfs ms = multi_source_bfs(realized, b.heads);
  for (NodeId v = 0; v < realized.num_nodes(); ++v) {
    if (ms.dist[v] > k) return false;
  }
  return true;
}

}  // namespace

LossyTrialMetrics run_lossy_trial(const LossyExperimentConfig& cfg, Rng& rng,
                                  Workspace& ws) {
  KHOP_REQUIRE(cfg.radius.has_value(),
               "resolve_lossy_radius() must be applied before running trials");

  // Connected placement at the nominal radius, exactly like the ideal
  // experiments; the radio model is then evaluated over those positions.
  GeneratorConfig gen;
  gen.num_nodes = cfg.num_nodes;
  gen.explicit_radius = cfg.radius;
  AdHocNetwork net = generate_network(gen, rng, ws);

  const std::unique_ptr<LinkModel> model = make_link_model(cfg, *cfg.radius);
  LinkLayer layer = rebuild_with_model(net, *model);
  if (cfg.ambient_loss > 0.0) {
    layer = with_uniform_loss(layer, cfg.ambient_loss);
  }

  // The backbone is built on the possible-links topology: the protocol
  // designer knows which links exist, not which packets will drop.
  const Clustering clustering = khop_clustering(
      net.graph, cfg.k, make_priorities(net.graph, PriorityRule::kLowestId),
      AffiliationRule::kIdBased, ws);
  const Backbone backbone =
      build_backbone(net.graph, clustering, cfg.pipeline, ws);

  LossyFloodOptions blind_opts;
  blind_opts.seed = rng();
  blind_opts.retry_budget = cfg.retry_budget;
  const LossyFloodResult blind = lossy_flood(layer, 0, blind_opts);

  LossyFloodOptions cds_opts;
  cds_opts.seed = rng();
  cds_opts.retry_budget = cfg.retry_budget;
  cds_opts.forwarders =
      cds_forwarder_mask(net.graph, clustering, backbone, cfg.flood_model);
  const LossyFloodResult cds = lossy_flood(layer, 0, cds_opts);

  Rng sample_rng(rng());
  const Graph realized = sample_realized_graph(layer, sample_rng);

  LossyTrialMetrics m;
  m.blind_delivery = blind.delivery_ratio;
  m.cds_delivery = cds.delivery_ratio;
  m.cds_transmissions = static_cast<double>(cds.stats.transmissions);
  m.drops = static_cast<double>(cds.stats.drops);
  m.retransmissions = static_cast<double>(cds.stats.retransmissions);
  m.backbone_survival =
      backbone_survives(realized, backbone, cfg.k) ? 1.0 : 0.0;
  return m;
}

LossyTrialMetrics run_lossy_trial(const LossyExperimentConfig& cfg, Rng& rng) {
  return run_lossy_trial(cfg, rng, tls_workspace());
}

LossySweepPoint run_lossy_sweep_point(ThreadPool& pool,
                                      LossyExperimentConfig cfg,
                                      const TrialPolicy& policy,
                                      std::uint64_t seed) {
  if (!cfg.radius) cfg.radius = resolve_lossy_radius(cfg, seed);

  const Rng master(seed);
  const TrialSummary summary = run_trials(
      pool, policy, master, 6,
      [&cfg](Rng& rng, std::size_t, Workspace& ws) -> std::vector<double> {
        const LossyTrialMetrics m = run_lossy_trial(cfg, rng, ws);
        return {m.blind_delivery, m.cds_delivery,    m.cds_transmissions,
                m.drops,          m.retransmissions, m.backbone_survival};
      });

  LossySweepPoint point;
  point.cfg = cfg;
  point.blind_delivery = summary.metrics[0];
  point.cds_delivery = summary.metrics[1];
  point.cds_transmissions = summary.metrics[2];
  point.drops = summary.metrics[3];
  point.retransmissions = summary.metrics[4];
  point.backbone_survival = summary.metrics[5];
  point.trials = summary.trials_run;
  point.converged = summary.converged;
  return point;
}

}  // namespace khop
