/// \file table.hpp
/// Plain-text table and CSV emission for the benchmark harnesses: each bench
/// prints the same rows/series the paper's figures plot.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace khop {

/// Column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Writes the table with right-aligned columns and a header rule.
  void print(std::ostream& os) const;

  /// Serializes as CSV (no quoting; cells must not contain commas).
  std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with \p decimals digits.
std::string fmt(double value, int decimals = 2);

}  // namespace khop
