#include "khop/exp/trial.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"
#include "khop/obs/trace.hpp"

namespace khop {

TrialSummary run_trials(ThreadPool& pool, const TrialPolicy& policy,
                        const Rng& master, std::size_t metric_count,
                        const TrialFnWs& fn) {
  KHOP_REQUIRE(metric_count > 0, "need at least one metric");
  KHOP_REQUIRE(policy.max_trials >= policy.min_trials,
               "max_trials < min_trials");
  KHOP_REQUIRE(policy.batch > 0, "batch must be positive");

  obs::Span exp_span("exp/run_trials");

  TrialSummary summary;
  summary.metrics.assign(metric_count, RunningStats{});

  std::size_t next_trial = 0;
  while (next_trial < policy.max_trials) {
    const std::size_t batch_end =
        std::min(policy.max_trials, next_trial + policy.batch);
    const std::size_t batch_size = batch_end - next_trial;

    obs::Span batch_span("exp/batch");
    batch_span.arg("first_trial", static_cast<std::int64_t>(next_trial));
    batch_span.arg("size", static_cast<std::int64_t>(batch_size));

    // Results land in per-trial slots; aggregation below is in index order,
    // so the summary is bit-identical for any thread count.
    std::vector<std::vector<double>> results(batch_size);
    parallel_for(pool, batch_size, [&](std::size_t i) {
      const std::size_t trial = next_trial + i;
      obs::Span trial_span("exp/trial");
      trial_span.arg("trial", static_cast<std::int64_t>(trial));
      Rng rng = master.spawn(trial);
      // The worker's workspace persists across its trials (and across
      // batches): scratch buffers stay warm for the whole experiment.
      results[i] = fn(rng, trial, tls_workspace());
    });

    for (std::size_t i = 0; i < batch_size; ++i) {
      KHOP_REQUIRE(results[i].size() == metric_count,
                   "trial returned wrong metric arity");
      for (std::size_t m = 0; m < metric_count; ++m) {
        summary.metrics[m].add(results[i][m]);
      }
    }
    next_trial = batch_end;
    summary.trials_run = next_trial;

    if (next_trial >= policy.min_trials) {
      const bool all_tight = std::all_of(
          summary.metrics.begin(), summary.metrics.end(),
          [&](const RunningStats& s) {
            return ci_within_relative(s, policy.rel_halfwidth);
          });
      if (all_tight) {
        summary.converged = true;
        break;
      }
    }
  }
  exp_span.arg("trials", static_cast<std::int64_t>(summary.trials_run));
  exp_span.arg("converged", summary.converged ? 1 : 0);
  return summary;
}

TrialSummary run_trials(ThreadPool& pool, const TrialPolicy& policy,
                        const Rng& master, std::size_t metric_count,
                        const TrialFn& fn) {
  return run_trials(pool, policy, master, metric_count,
                    TrialFnWs([&fn](Rng& rng, std::size_t trial, Workspace&) {
                      return fn(rng, trial);
                    }));
}

}  // namespace khop
