/// \file trial.hpp
/// Parallel Monte-Carlo trial runner with the paper's adaptive stopping rule.
///
/// Trials are independent and deterministic: trial i draws from the master
/// rng's spawned stream i, so the aggregate is identical for any thread
/// count or scheduling. Trials run in batches; after each batch the stopping
/// rule is evaluated on every metric.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "khop/common/rng.hpp"
#include "khop/exp/stats.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {

struct TrialPolicy {
  std::size_t min_trials = 30;
  std::size_t max_trials = 100;  ///< paper: "repeated 100 times or until the
                                 ///< confidence interval is sufficiently small"
  double rel_halfwidth = 0.01;   ///< +-1%
  std::size_t batch = 25;
};

/// One trial: given its private rng, produce one value per metric.
/// Must be thread-safe w.r.t. shared state (treat captures as read-only).
using TrialFn = std::function<std::vector<double>(Rng&, std::size_t trial)>;

/// Workspace-aware trial: additionally receives the executing worker's
/// thread-local Workspace, reused across every trial that worker runs. The
/// workspace affects performance only - trial results must be a pure
/// function of (rng, trial), which keeps summaries bit-identical across
/// thread counts and schedulings.
using TrialFnWs =
    std::function<std::vector<double>(Rng&, std::size_t trial, Workspace&)>;

struct TrialSummary {
  std::vector<RunningStats> metrics;
  std::size_t trials_run = 0;
  bool converged = false;  ///< stopped by CI rule rather than the cap
};

/// Runs \p fn under \p policy using \p pool. \p metric_count is the arity of
/// the metric vector fn returns (checked).
TrialSummary run_trials(ThreadPool& pool, const TrialPolicy& policy,
                        const Rng& master, std::size_t metric_count,
                        const TrialFn& fn);

/// Workspace-aware overload: each pool worker's trials share its
/// tls_workspace(), so the per-trial pipeline hot paths run allocation-free.
TrialSummary run_trials(ThreadPool& pool, const TrialPolicy& policy,
                        const Rng& master, std::size_t metric_count,
                        const TrialFnWs& fn);

}  // namespace khop
