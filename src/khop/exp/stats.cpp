#include "khop/exp/stats.hpp"

#include <array>
#include <cmath>
#include <limits>

namespace khop {

void RunningStats::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double student_t_90(std::size_t df) noexcept {
  // Two-sided 90% (alpha = 0.10, 0.95 quantile), df = 1..30.
  static constexpr std::array<double, 30> table = {
      6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
      1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
      1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
  if (df == 0) return table[0];
  if (df <= table.size()) return table[df - 1];
  return 1.645;  // normal approximation
}

double ci_halfwidth_90(const RunningStats& s) noexcept {
  if (s.count() < 2) return std::numeric_limits<double>::infinity();
  return student_t_90(s.count() - 1) * s.stddev() /
         std::sqrt(static_cast<double>(s.count()));
}

bool ci_within_relative(const RunningStats& s, double rel) noexcept {
  if (s.count() < 2) return false;
  const double hw = ci_halfwidth_90(s);
  const double m = std::abs(s.mean());
  if (m == 0.0) return hw == 0.0;
  return hw <= rel * m;
}

}  // namespace khop
