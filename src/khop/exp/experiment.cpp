#include "khop/exp/experiment.hpp"

#include "khop/common/assert.hpp"
#include "khop/geom/degree_calibration.hpp"

namespace khop {

double resolve_radius(const ExperimentConfig& cfg, std::uint64_t seed) {
  if (cfg.radius) return *cfg.radius;
  // The calibration stream depends only on (n, D, seed), so every pipeline
  // compared at a sweep point sees identical topologies.
  Rng rng(seed ^ 0xca11b8a7e0ULL);
  return calibrate_radius(cfg.num_nodes, cfg.avg_degree, Field{},
                          rng.spawn(cfg.num_nodes * 1000 +
                                    static_cast<std::uint64_t>(cfg.avg_degree)));
}

TrialResultMetrics run_single_trial(const ExperimentConfig& cfg, Rng& rng,
                                    Workspace& ws) {
  KHOP_REQUIRE(cfg.radius.has_value(),
               "resolve_radius() must be applied before running trials");
  GeneratorConfig gen;
  gen.num_nodes = cfg.num_nodes;
  gen.explicit_radius = cfg.radius;
  const AdHocNetwork net = generate_network(gen, rng, ws);

  const Clustering clustering = khop_clustering(
      net.graph, cfg.k, make_priorities(net.graph, PriorityRule::kLowestId),
      cfg.affiliation, ws);
  const Backbone backbone =
      build_backbone(net.graph, clustering, cfg.pipeline, ws);

  if (cfg.validate) {
    const std::string err = validate_k_cds(net.graph, clustering, backbone);
    KHOP_ASSERT(err.empty(), "trial produced invalid k-hop CDS: " + err);
  }

  TrialResultMetrics m;
  m.clusterheads = static_cast<double>(backbone.heads.size());
  m.gateways = static_cast<double>(backbone.gateways.size());
  m.cds_size = static_cast<double>(backbone.cds_size());
  return m;
}

TrialResultMetrics run_single_trial(const ExperimentConfig& cfg, Rng& rng) {
  return run_single_trial(cfg, rng, tls_workspace());
}

SweepPoint run_sweep_point(ThreadPool& pool, ExperimentConfig cfg,
                           const TrialPolicy& policy, std::uint64_t seed) {
  if (!cfg.radius) cfg.radius = resolve_radius(cfg, seed);

  const Rng master(seed);
  const TrialSummary summary = run_trials(
      pool, policy, master, 3,
      [&cfg](Rng& rng, std::size_t, Workspace& ws) -> std::vector<double> {
        const TrialResultMetrics m = run_single_trial(cfg, rng, ws);
        return {m.clusterheads, m.gateways, m.cds_size};
      });

  SweepPoint point;
  point.cfg = cfg;
  point.clusterheads = summary.metrics[0];
  point.gateways = summary.metrics[1];
  point.cds_size = summary.metrics[2];
  point.trials = summary.trials_run;
  point.converged = summary.converged;
  return point;
}

std::vector<SweepPoint> run_curve(ThreadPool& pool, ExperimentConfig base,
                                  const std::vector<std::size_t>& node_counts,
                                  const TrialPolicy& policy,
                                  std::uint64_t seed) {
  std::vector<SweepPoint> curve;
  curve.reserve(node_counts.size());
  for (std::size_t n : node_counts) {
    ExperimentConfig cfg = base;
    cfg.num_nodes = n;
    cfg.radius.reset();  // re-calibrate per node count
    // Seed varies with n so curves use fresh topologies per point, but the
    // same (seed, n) pair always reproduces the same point.
    curve.push_back(run_sweep_point(pool, cfg, policy, seed + n));
  }
  return curve;
}

}  // namespace khop
