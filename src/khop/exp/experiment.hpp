/// \file experiment.hpp
/// The paper's simulation study as a reusable driver: one trial = generate a
/// random connected network, cluster it, build the backbone for a pipeline,
/// and report (#clusterheads, #gateways, CDS size). Sweep helpers reproduce
/// the figure series (CDS size vs N for each algorithm and k).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "khop/cds/cds.hpp"
#include "khop/cluster/clustering.hpp"
#include "khop/exp/trial.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/net/generator.hpp"

namespace khop {

struct ExperimentConfig {
  std::size_t num_nodes = 100;
  double avg_degree = 6.0;
  Hops k = 2;
  Pipeline pipeline = Pipeline::kAcLmst;
  AffiliationRule affiliation = AffiliationRule::kIdBased;
  /// Radius shared by all trials of a sweep point; set via resolve_radius to
  /// avoid re-calibrating inside every trial.
  std::optional<double> radius;
  bool validate = true;  ///< run the k-CDS validator inside each trial
};

/// Calibrated radius for (num_nodes, avg_degree); deterministic in seed.
double resolve_radius(const ExperimentConfig& cfg, std::uint64_t seed);

struct TrialResultMetrics {
  double clusterheads = 0.0;
  double gateways = 0.0;
  double cds_size = 0.0;
};

/// Runs one trial. Throws InvariantViolation if validation fails.
TrialResultMetrics run_single_trial(const ExperimentConfig& cfg, Rng& rng);

/// Workspace variant: clustering + backbone hot paths reuse \p ws.
/// Bit-identical metrics; the overload above forwards here.
TrialResultMetrics run_single_trial(const ExperimentConfig& cfg, Rng& rng,
                                    Workspace& ws);

/// Aggregated sweep point (one curve sample in a paper figure).
struct SweepPoint {
  ExperimentConfig cfg;
  RunningStats clusterheads;
  RunningStats gateways;
  RunningStats cds_size;
  std::size_t trials = 0;
  bool converged = false;
};

/// Runs the trial policy for one configuration.
SweepPoint run_sweep_point(ThreadPool& pool, ExperimentConfig cfg,
                           const TrialPolicy& policy, std::uint64_t seed);

/// Runs a whole curve: one point per node count in \p node_counts.
std::vector<SweepPoint> run_curve(ThreadPool& pool, ExperimentConfig base,
                                  const std::vector<std::size_t>& node_counts,
                                  const TrialPolicy& policy,
                                  std::uint64_t seed);

}  // namespace khop
