/// \file lossy.hpp
/// The lossy-radio trial variant: one trial = generate a connected topology,
/// evaluate a radio model into a link layer, build the clustering backbone
/// on the possible-links graph, then measure (a) broadcast delivery ratio
/// under per-link Bernoulli loss (blind vs CDS-confined flooding) and
/// (b) backbone survival in a sampled realized topology. This is the
/// experiment surface behind bench/ext_lossy.
#pragma once

#include <memory>
#include <optional>

#include "khop/cds/broadcast.hpp"
#include "khop/exp/trial.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/radio/link_model.hpp"

namespace khop {

/// Which LinkModel a lossy experiment instantiates (parameters below).
enum class RadioKind : std::uint8_t {
  kUnitDisk,      ///< the paper's ideal disk (losses only via ambient_loss)
  kQuasiUnitDisk, ///< certain inside inner_fraction * radius, ramp to radius
  kLogNormal,     ///< log-normal shadowing with r_half = radius
};

std::string_view radio_kind_name(RadioKind kind);

struct LossyExperimentConfig {
  std::size_t num_nodes = 100;
  double avg_degree = 6.0;
  Hops k = 2;
  Pipeline pipeline = Pipeline::kAcLmst;
  /// Nominal radius shared by all trials; resolve via resolve_lossy_radius
  /// (same calibration stream as the ideal experiments).
  std::optional<double> radius;

  RadioKind radio = RadioKind::kUnitDisk;
  double qudg_inner_fraction = 0.75;  ///< r_min / r_max for kQuasiUnitDisk
  double shadowing_sigma_db = 4.0;    ///< sigma for kLogNormal
  double ambient_loss = 0.0;          ///< extra uniform per-link loss in [0,1)
  std::size_t retry_budget = 0;       ///< link-layer retries per delivery
  CdsFloodModel flood_model = CdsFloodModel::kMemberTrees;
};

/// Calibrated nominal radius for (num_nodes, avg_degree); deterministic in
/// seed and identical to the ideal experiment's resolve_radius stream.
double resolve_lossy_radius(const LossyExperimentConfig& cfg,
                            std::uint64_t seed);

/// Instantiates cfg's radio model at nominal radius \p radius. For
/// kUnitDisk the result reproduces the legacy unit-disk graph exactly.
std::unique_ptr<LinkModel> make_link_model(const LossyExperimentConfig& cfg,
                                           double radius);

struct LossyTrialMetrics {
  double blind_delivery = 0.0;    ///< blind-flood delivery ratio
  double cds_delivery = 0.0;      ///< CDS-confined flood delivery ratio
  double cds_transmissions = 0.0; ///< CDS-flood radio sends
  double drops = 0.0;             ///< CDS-flood per-link losses (final)
  double retransmissions = 0.0;   ///< CDS-flood link-layer retries
  double backbone_survival = 0.0; ///< 1 iff the CDS stays connected AND
                                  ///< dominating in a sampled realized graph
};

/// Runs one lossy trial. \pre cfg.radius resolved.
LossyTrialMetrics run_lossy_trial(const LossyExperimentConfig& cfg, Rng& rng);

/// Workspace variant: clustering + backbone hot paths reuse \p ws.
/// Bit-identical metrics; the overload above forwards here.
LossyTrialMetrics run_lossy_trial(const LossyExperimentConfig& cfg, Rng& rng,
                                  Workspace& ws);

/// Aggregated lossy sweep point under the trial stopping policy.
struct LossySweepPoint {
  LossyExperimentConfig cfg;
  RunningStats blind_delivery;
  RunningStats cds_delivery;
  RunningStats cds_transmissions;
  RunningStats drops;
  RunningStats retransmissions;
  RunningStats backbone_survival;
  std::size_t trials = 0;
  bool converged = false;
};

LossySweepPoint run_lossy_sweep_point(ThreadPool& pool,
                                      LossyExperimentConfig cfg,
                                      const TrialPolicy& policy,
                                      std::uint64_t seed);

}  // namespace khop
