#include "khop/exp/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "khop/common/assert.hpp"

namespace khop {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  KHOP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  KHOP_REQUIRE(cells.size() == headers_.size(),
               "row arity does not match headers");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

}  // namespace khop
