#include "khop/cds/broadcast.hpp"

#include "khop/common/assert.hpp"
#include "khop/graph/bfs.hpp"

namespace khop {

namespace {

/// Rounds-based flood where only nodes with forwarder[v] == true relay.
/// The source always transmits.
BroadcastResult flood(const Graph& g, NodeId source,
                      const std::vector<bool>& forwarder) {
  KHOP_REQUIRE(source < g.num_nodes(), "source out of range");
  BroadcastResult r;
  std::vector<bool> received(g.num_nodes(), false);
  std::vector<bool> transmitted(g.num_nodes(), false);

  received[source] = true;
  r.delivered = 1;
  std::vector<NodeId> tx_queue{source};

  while (!tx_queue.empty()) {
    ++r.rounds;
    std::vector<NodeId> next;
    for (NodeId u : tx_queue) {
      transmitted[u] = true;
      ++r.transmissions;
      for (NodeId v : g.neighbors(u)) {
        if (!received[v]) {
          received[v] = true;
          ++r.delivered;
          if (forwarder[v] && !transmitted[v]) next.push_back(v);
        }
      }
    }
    tx_queue = std::move(next);
  }
  r.complete = r.delivered == g.num_nodes();
  return r;
}

}  // namespace

BroadcastResult blind_flood(const Graph& g, NodeId source) {
  return flood(g, source, std::vector<bool>(g.num_nodes(), true));
}

std::vector<bool> cds_forwarder_mask(const Graph& g, const Clustering& c,
                                     const Backbone& b, CdsFloodModel model) {
  std::vector<bool> forwarder = b.cds_mask(g.num_nodes());
  if (c.k > 1) {
    if (model == CdsFloodModel::kBallInterior) {
      // Nodes strictly inside a head's k-ball relay intra-cluster traffic:
      // every member at distance <= k from its head is then reachable,
      // because the interior of any shortest head-to-member path sits at
      // distance < k from that head.
      const MultiSourceBfs ms = multi_source_bfs(g, b.heads);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (ms.dist[v] < c.k) forwarder[v] = true;
      }
    } else {
      // Member-tree forwarding: mark the interiors of the canonical paths
      // from each head to its own members. Every member's delivery chain is
      // then forwarding end-to-end; leaf members stay silent. Note the
      // paths may relay through nodes of other clusters - those relays
      // forward too (they sit on a head->member chain).
      for (std::uint32_t ci = 0; ci < c.heads.size(); ++ci) {
        const BfsTree tree = bfs(g, c.heads[ci]);
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          if (c.cluster_of[v] != ci || v == c.heads[ci]) continue;
          // Mark the strict interior of head -> v.
          for (NodeId w = tree.parent[v]; w != c.heads[ci];
               w = tree.parent[w]) {
            forwarder[w] = true;
          }
        }
      }
    }
  }
  return forwarder;
}

BroadcastResult cds_flood(const Graph& g, const Clustering& c,
                          const Backbone& b, NodeId source,
                          CdsFloodModel model) {
  return flood(g, source, cds_forwarder_mask(g, c, b, model));
}

}  // namespace khop
