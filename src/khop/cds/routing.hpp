/// \file routing.hpp
/// Hierarchical routing over the connected k-hop clustering backbone - the
/// application family the paper's introduction motivates (smaller routing
/// tables, fewer route updates).
///
/// A packet from src to dst travels in three legs:
///   1. up:    src -> head(src) along the head's canonical BFS tree,
///   2. across: head(src) -> head(dst) through the cluster graph G'
///              (Dijkstra over realized virtual links, hop-count weights),
///   3. down:  head(dst) -> dst along the destination head's BFS tree.
/// Only cluster-level state is needed to route (the point of clustering);
/// the price is path stretch versus the true shortest path, which the
/// ext_routing bench quantifies per pipeline and k.
#pragma once

#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/gateway/virtual_link.hpp"

namespace khop {

struct Route {
  std::vector<NodeId> path;  ///< src..dst inclusive, consecutive G-edges
  Hops hops() const noexcept {
    return path.empty() ? 0 : static_cast<Hops>(path.size() - 1);
  }
};

/// Precomputed routing state for one backbone.
class BackboneRouter {
 public:
  /// \pre b was built for c over g and validates (connected backbone)
  BackboneRouter(const Graph& g, const Clustering& c, const Backbone& b);

  /// Routes src -> dst. Always succeeds on a valid backbone.
  Route route(NodeId src, NodeId dst) const;

  /// hops(route) / dist_G(src, dst); 1.0 means shortest-path optimal.
  /// \pre src != dst
  double stretch(NodeId src, NodeId dst) const;

 private:
  const Graph* graph_;
  const Clustering* clustering_;
  std::vector<BfsTree> head_trees_;     ///< BFS tree per cluster index
  VirtualLinkMap links_;                ///< realized virtual links
  /// head_route_[i][j]: next-hop cluster index from head i toward head j on
  /// the hop-weighted shortest path through the cluster graph.
  std::vector<std::vector<std::uint32_t>> head_route_;

  std::vector<NodeId> head_path(std::uint32_t from_cluster,
                                std::uint32_t to_cluster) const;
};

}  // namespace khop
