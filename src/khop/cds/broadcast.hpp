/// \file broadcast.hpp
/// The motivating application (paper section 1): network-wide broadcast with
/// the flooding confined to the backbone instead of every node.
///
/// Forwarding model:
/// * Blind flooding - every node retransmits the message exactly once.
/// * CDS flooding - a node retransmits iff it is a backbone node (head or
///   gateway) or it lies strictly inside some head's k-ball (hop distance
///   < k from a head): those interior nodes relay the intra-cluster
///   dissemination, which is what keeps k-hop clusters reachable. For k = 1
///   this degenerates to backbone-only forwarding.
///
/// Both variants are simulated as deterministic BFS-style rounds over an
/// ideal MAC (one transmission reaches all neighbors).
#pragma once

#include <cstddef>
#include <vector>

#include "khop/cds/cds.hpp"
#include "khop/cluster/clustering.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

struct BroadcastResult {
  std::size_t transmissions = 0;  ///< nodes that forwarded (incl. source)
  std::size_t delivered = 0;      ///< nodes that received (incl. source)
  std::size_t rounds = 0;         ///< latency in rounds
  bool complete = false;          ///< delivered == n
};

/// How intra-cluster dissemination is modelled for k > 1 (at k = 1 both
/// collapse to backbone-only forwarding).
enum class CdsFloodModel : std::uint8_t {
  /// Every node strictly inside some head's k-ball relays. Simple and
  /// robust, but generous: at large k most nodes become forwarders.
  kBallInterior,
  /// Only nodes on the canonical BFS paths from each head to its own
  /// members relay (members that are leaves stay silent). Tighter forwarder
  /// set with the same delivery guarantee: every member's path from its
  /// head is fully forwarding by construction.
  kMemberTrees,
};

/// The n-sized forwarder mask cds_flood uses: backbone nodes plus the
/// model's intra-cluster relays. Exposed so other broadcast simulations
/// (e.g. the lossy radio floods) can confine forwarding to the same set.
std::vector<bool> cds_forwarder_mask(const Graph& g, const Clustering& c,
                                     const Backbone& b,
                                     CdsFloodModel model =
                                         CdsFloodModel::kMemberTrees);

/// Blind flooding from \p source.
BroadcastResult blind_flood(const Graph& g, NodeId source);

/// CDS-confined flooding from \p source (see file comment for the model).
BroadcastResult cds_flood(const Graph& g, const Clustering& c,
                          const Backbone& b, NodeId source,
                          CdsFloodModel model = CdsFloodModel::kMemberTrees);

}  // namespace khop
