/// \file cds.hpp
/// k-hop connected dominating set (CDS) view of a backbone and its
/// validation. In 1-hop clustering the heads + gateways form a classic CDS;
/// for general k they form a k-hop CDS: the set is connected and every node
/// is within k hops of it (here: of a clusterhead).
#pragma once

#include <string>
#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

struct Cds {
  Hops k = 1;
  std::vector<NodeId> nodes;  ///< heads ∪ gateways, ascending
  std::size_t num_heads = 0;
  std::size_t num_gateways = 0;

  std::size_t size() const noexcept { return nodes.size(); }
};

/// Extracts the CDS from a backbone.
Cds extract_cds(const Clustering& c, const Backbone& b);

/// Full k-hop CDS validation: connected in g AND every node of g is within
/// k hops of some clusterhead. Empty string on success.
std::string validate_k_cds(const Graph& g, const Clustering& c,
                           const Backbone& b);

}  // namespace khop
