#include "khop/cds/cds.hpp"

#include <algorithm>
#include <sstream>

#include "khop/common/assert.hpp"
#include "khop/gateway/validate.hpp"
#include "khop/graph/bfs.hpp"

namespace khop {

Cds extract_cds(const Clustering& c, const Backbone& b) {
  Cds cds;
  cds.k = c.k;
  cds.num_heads = b.heads.size();
  cds.num_gateways = b.gateways.size();
  cds.nodes.reserve(b.heads.size() + b.gateways.size());
  std::merge(b.heads.begin(), b.heads.end(), b.gateways.begin(),
             b.gateways.end(), std::back_inserter(cds.nodes));
  KHOP_ASSERT(std::adjacent_find(cds.nodes.begin(), cds.nodes.end()) ==
                  cds.nodes.end(),
              "heads and gateways overlap");
  return cds;
}

std::string validate_k_cds(const Graph& g, const Clustering& c,
                           const Backbone& b) {
  if (std::string err = validate_backbone(g, b); !err.empty()) return err;

  // k-hop domination by heads.
  const MultiSourceBfs ms = multi_source_bfs(g, b.heads);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (ms.dist[v] == kUnreachable || ms.dist[v] > c.k) {
      std::ostringstream os;
      os << "node " << v << " is not k-hop dominated (nearest head "
         << (ms.dist[v] == kUnreachable ? std::string("unreachable")
                                        : std::to_string(ms.dist[v]))
         << " hops, k = " << c.k << ")";
      return os.str();
    }
  }
  return {};
}

}  // namespace khop
