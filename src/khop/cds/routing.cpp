#include "khop/cds/routing.hpp"

#include <algorithm>
#include <limits>

#include "khop/common/assert.hpp"
#include "khop/common/error.hpp"

namespace khop {

BackboneRouter::BackboneRouter(const Graph& g, const Clustering& c,
                               const Backbone& b)
    : graph_(&g),
      clustering_(&c),
      links_(VirtualLinkMap::build(g, b.virtual_links)) {
  const auto h = static_cast<std::uint32_t>(c.heads.size());
  head_trees_.reserve(h);
  for (NodeId head : c.heads) head_trees_.push_back(bfs(g, head));

  // All-pairs next-hop over the cluster graph via one Dijkstra per head
  // (hop-count weights on realized virtual links; head-id tie-breaking).
  std::vector<std::vector<std::pair<std::uint32_t, Hops>>> adj(h);
  const auto cluster_index = [&](NodeId head) {
    const auto it = std::lower_bound(c.heads.begin(), c.heads.end(), head);
    KHOP_ASSERT(it != c.heads.end() && *it == head,
                "virtual link endpoint is not a head");
    return static_cast<std::uint32_t>(std::distance(c.heads.begin(), it));
  };
  for (const auto& [u, v] : b.virtual_links) {
    const Hops w = links_.link(u, v).hops;
    adj[cluster_index(u)].emplace_back(cluster_index(v), w);
    adj[cluster_index(v)].emplace_back(cluster_index(u), w);
  }

  head_route_.assign(h, std::vector<std::uint32_t>(h, 0));
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t src = 0; src < h; ++src) {
    std::vector<std::uint64_t> dist(h, kInf);
    std::vector<std::uint32_t> parent(h, src);
    std::vector<bool> done(h, false);
    dist[src] = 0;
    for (std::uint32_t iter = 0; iter < h; ++iter) {
      // O(h^2) selection: head graphs have tens of nodes.
      std::uint32_t best = h;
      for (std::uint32_t v = 0; v < h; ++v) {
        if (!done[v] && dist[v] != kInf &&
            (best == h || dist[v] < dist[best] ||
             (dist[v] == dist[best] && c.heads[v] < c.heads[best]))) {
          best = v;
        }
      }
      if (best == h) break;
      done[best] = true;
      for (const auto& [nbr, w] : adj[best]) {
        const std::uint64_t cand = dist[best] + w;
        if (cand < dist[nbr] ||
            (cand == dist[nbr] && !done[nbr] &&
             c.heads[best] < c.heads[parent[nbr]])) {
          dist[nbr] = cand;
          parent[nbr] = best;
        }
      }
    }
    for (std::uint32_t dst = 0; dst < h; ++dst) {
      if (dist[dst] == kInf) {
        throw NotConnected(
            "BackboneRouter: cluster graph is not connected; did the "
            "backbone validate?");
      }
      // Walk back from dst to find the first step out of src.
      std::uint32_t step = dst;
      while (step != src && parent[step] != src) step = parent[step];
      head_route_[src][dst] = dst == src ? src : step;
    }
  }
}

std::vector<NodeId> BackboneRouter::head_path(std::uint32_t from_cluster,
                                              std::uint32_t to_cluster) const {
  const auto& heads = clustering_->heads;
  std::vector<NodeId> path{heads[from_cluster]};
  std::uint32_t cur = from_cluster;
  while (cur != to_cluster) {
    const std::uint32_t next = head_route_[cur][to_cluster];
    KHOP_ASSERT(next != cur, "routing loop in cluster graph");
    const VirtualLink& link = links_.link(heads[cur], heads[next]);
    // Append the gateway path in the correct orientation.
    if (link.path.front() == heads[cur]) {
      path.insert(path.end(), link.path.begin() + 1, link.path.end());
    } else {
      path.insert(path.end(), link.path.rbegin() + 1, link.path.rend());
    }
    cur = next;
  }
  return path;
}

Route BackboneRouter::route(NodeId src, NodeId dst) const {
  KHOP_REQUIRE(src < graph_->num_nodes() && dst < graph_->num_nodes(),
               "route endpoint out of range");
  Route r;
  if (src == dst) {
    r.path = {src};
    return r;
  }

  const std::uint32_t cs = clustering_->cluster_of[src];
  const std::uint32_t cd = clustering_->cluster_of[dst];

  // Leg 1 (up): src -> head(src). extract_path returns head..src.
  std::vector<NodeId> up = extract_path(head_trees_[cs], src);
  std::reverse(up.begin(), up.end());

  // Leg 2 (across): head(src) -> head(dst) over the cluster graph.
  const std::vector<NodeId> across = head_path(cs, cd);

  // Leg 3 (down): head(dst) -> dst.
  const std::vector<NodeId> down = extract_path(head_trees_[cd], dst);

  // Stitch, dropping duplicated junction nodes.
  r.path = up;
  for (std::size_t i = 1; i < across.size(); ++i) r.path.push_back(across[i]);
  for (std::size_t i = 1; i < down.size(); ++i) r.path.push_back(down[i]);

  // Loop erasure: the stitched route can revisit a node (e.g. src already
  // lies on the inter-head path); return a simple path.
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::vector<NodeId> simple;
  std::vector<std::size_t> pos(graph_->num_nodes(), kNone);
  for (NodeId v : r.path) {
    if (pos[v] != kNone) {
      while (simple.size() > pos[v] + 1) {
        pos[simple.back()] = kNone;
        simple.pop_back();
      }
    } else {
      simple.push_back(v);
      pos[v] = simple.size() - 1;
    }
  }
  r.path = std::move(simple);

  KHOP_ASSERT(r.path.front() == src && r.path.back() == dst,
              "route endpoints corrupted");
  for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
    KHOP_ASSERT(graph_->has_edge(r.path[i], r.path[i + 1]),
                "route uses a non-edge");
  }
  return r;
}

double BackboneRouter::stretch(NodeId src, NodeId dst) const {
  KHOP_REQUIRE(src != dst, "stretch undefined for src == dst");
  const Route r = route(src, dst);
  const BfsTree t = bfs(*graph_, src);
  KHOP_ASSERT(t.dist[dst] != kUnreachable && t.dist[dst] > 0,
              "disconnected endpoints");
  return static_cast<double>(r.hops()) / static_cast<double>(t.dist[dst]);
}

}  // namespace khop
