#include "khop/dynamic/churn_trace.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "khop/common/assert.hpp"
#include "khop/common/rng.hpp"
#include "khop/graph/bfs_scratch.hpp"

namespace khop {

bool apply_event(DynamicGraph& g, const ChurnEvent& e) {
  switch (e.type) {
    case ChurnEventType::kFail:
      g.remove_node(e.a);
      return true;
    case ChurnEventType::kJoin:
      g.add_node(e.a, e.neighbors);
      return true;
    case ChurnEventType::kLinkDown:
      return g.remove_edge(e.a, e.b);
    case ChurnEventType::kLinkUp:
      return g.add_edge(e.a, e.b);
  }
  KHOP_ASSERT(false, "unknown churn event type");
  return false;
}

namespace {

/// Draws a uniformly random element of a non-empty vector.
NodeId pick(const std::vector<NodeId>& v, Rng& rng) {
  return v[rng.uniform_int(v.size())];
}

ChurnEvent link_event(ChurnEventType type, NodeId x, NodeId y) {
  ChurnEvent e;
  e.type = type;
  e.a = std::min(x, y);
  e.b = std::max(x, y);
  return e;
}

/// Stateful generator: draws events while mirroring them on a DynamicGraph
/// so every emitted event is valid when replayed.
class TraceBuilder {
 public:
  TraceBuilder(const Graph& g0, const ChurnTraceConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), g_(g0), rng_(seed) {
    for (NodeId u = 0; u < g_.capacity(); ++u) alive_.push_back(u);
  }

  std::vector<ChurnEvent> build() {
    std::vector<ChurnEvent> events;
    events.reserve(cfg_.num_events);
    std::size_t background_emitted = 0;
    while (events.size() < cfg_.num_events) {
      if (scripted_.empty()) {
        if (cfg_.burst_at != ChurnTraceConfig::kNoScenario &&
            !burst_done_ && background_emitted >= cfg_.burst_at) {
          script_ball_failure(cfg_.burst_radius, /*schedule_rejoin=*/false);
          burst_done_ = true;
        } else if (cfg_.partition_at != ChurnTraceConfig::kNoScenario &&
                   !partition_done_ &&
                   background_emitted >= cfg_.partition_at) {
          script_ring_failure(cfg_.partition_radius);
          partition_done_ = true;
        }
      }
      if (!scripted_.empty()) {
        ChurnEvent e = std::move(scripted_.front());
        scripted_.pop_front();
        const bool emitted = emit(std::move(e), events);
        if (scripted_.empty() && !rejoin_queue_.empty() &&
            rejoin_due_ == kUnset) {
          rejoin_due_ = background_emitted + cfg_.rejoin_after;
        }
        if (!emitted) continue;
      } else {
        if (!emit_background(events)) break;  // graph too degenerate
        ++background_emitted;
        if (!rejoin_queue_.empty() && background_emitted >= rejoin_due_) {
          script_rejoin();
        }
      }
    }
    return events;
  }

 private:
  /// Validates and applies \p e, then appends it. Scripted events can go
  /// stale (e.g. a ring node already killed by background churn) — those are
  /// dropped, not emitted.
  bool emit(ChurnEvent e, std::vector<ChurnEvent>& events) {
    switch (e.type) {
      case ChurnEventType::kFail: {
        if (!g_.alive(e.a)) return false;
        // Remember the links for a potential scripted rejoin later.
        const auto nbrs = g_.neighbors(e.a);
        former_neighbors_[e.a].assign(nbrs.begin(), nbrs.end());
        break;
      }
      case ChurnEventType::kJoin: {
        if (g_.alive(e.a)) return false;
        std::erase_if(e.neighbors, [&](NodeId w) { return !g_.alive(w); });
        if (e.neighbors.empty()) return false;
        break;
      }
      case ChurnEventType::kLinkDown:
        if (!g_.alive(e.a) || !g_.alive(e.b) || !g_.has_edge(e.a, e.b)) {
          return false;
        }
        break;
      case ChurnEventType::kLinkUp:
        if (!g_.alive(e.a) || !g_.alive(e.b) || g_.has_edge(e.a, e.b)) {
          return false;
        }
        break;
    }
    apply_event(g_, e);
    refresh_pools(e);
    events.push_back(std::move(e));
    return true;
  }

  void refresh_pools(const ChurnEvent& e) {
    if (e.type == ChurnEventType::kFail) {
      std::erase(alive_, e.a);
      dead_.push_back(e.a);
    } else if (e.type == ChurnEventType::kJoin) {
      std::erase(dead_, e.a);
      const auto it = std::lower_bound(alive_.begin(), alive_.end(), e.a);
      alive_.insert(it, e.a);
    }
  }

  /// One background event drawn from the configured mix. Returns false only
  /// when no event type can be realized at all.
  bool emit_background(std::vector<ChurnEvent>& events) {
    const bool can_shrink = g_.num_alive() > cfg_.min_alive;
    double wf = can_shrink ? cfg_.p_fail : 0.0;
    double wj = dead_.empty() ? 0.0 : cfg_.p_join;
    double wd = (can_shrink && g_.num_edges() > 0) ? cfg_.p_link_down : 0.0;
    double wu = alive_.size() >= 2 ? cfg_.p_link_up : 0.0;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const double total = wf + wj + wd + wu;
      if (total <= 0.0) return false;
      const double r = rng_.uniform(0.0, total);
      ChurnEvent e;
      bool ok = false;
      if (r < wf) {
        e.type = ChurnEventType::kFail;
        e.a = pick(alive_, rng_);
        ok = true;
      } else if (r < wf + wj) {
        ok = draw_join(e);
        if (!ok) wj = 0.0;  // no anchor with alive 2-hop candidates
      } else if (r < wf + wj + wd) {
        ok = draw_link_down(e);
        if (!ok) wd = 0.0;
      } else {
        ok = draw_link_up(e);
        if (!ok) wu = 0.0;  // close to a clique; stop trying ups
      }
      if (ok && emit(std::move(e), events)) return true;
    }
    return false;
  }

  bool draw_join(ChurnEvent& e) {
    e.type = ChurnEventType::kJoin;
    e.a = pick(dead_, rng_);
    // Link the newcomer into a random anchor's 2-hop neighborhood: joins
    // model a node switching on *somewhere*, i.e. its links are spatially
    // correlated, not uniform over the network.
    const NodeId anchor = pick(alive_, rng_);
    std::vector<NodeId> pool{anchor};
    for (NodeId w : g_.neighbors(anchor)) {
      pool.push_back(w);
      for (NodeId x : g_.neighbors(w)) {
        if (x != anchor) pool.push_back(x);
      }
    }
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    const std::size_t want =
        1 + rng_.uniform_int(std::max<std::size_t>(cfg_.max_join_degree, 1));
    e.neighbors.clear();
    while (!pool.empty() && e.neighbors.size() < want) {
      const std::size_t i = rng_.uniform_int(pool.size());
      e.neighbors.push_back(pool[i]);
      pool[i] = pool.back();
      pool.pop_back();
    }
    std::sort(e.neighbors.begin(), e.neighbors.end());
    return !e.neighbors.empty();
  }

  bool draw_link_down(ChurnEvent& e) {
    for (int tries = 0; tries < 16; ++tries) {
      const NodeId u = pick(alive_, rng_);
      const auto nbrs = g_.neighbors(u);
      if (nbrs.empty()) continue;
      const NodeId v = nbrs[rng_.uniform_int(nbrs.size())];
      e = link_event(ChurnEventType::kLinkDown, u, v);
      return true;
    }
    return false;
  }

  bool draw_link_up(ChurnEvent& e) {
    // Prefer closing a 2-hop gap (new links appear between nearby nodes);
    // fall back to a uniform alive pair.
    for (int tries = 0; tries < 16; ++tries) {
      const NodeId u = pick(alive_, rng_);
      const auto nbrs = g_.neighbors(u);
      if (!nbrs.empty()) {
        const NodeId w = nbrs[rng_.uniform_int(nbrs.size())];
        const auto nn = g_.neighbors(w);
        const NodeId v = nn[rng_.uniform_int(nn.size())];
        if (v != u && !g_.has_edge(u, v)) {
          e = link_event(ChurnEventType::kLinkUp, u, v);
          return true;
        }
      }
      const NodeId x = pick(alive_, rng_);
      if (x != u && !g_.has_edge(u, x)) {
        e = link_event(ChurnEventType::kLinkUp, u, x);
        return true;
      }
    }
    return false;
  }

  /// Queues failure of every node within \p radius of a random pivot.
  void script_ball_failure(Hops radius, bool schedule_rejoin) {
    const NodeId pivot = pick(alive_, rng_);
    bfs_.run(g_, pivot, radius);
    for (NodeId v : bfs_.reached()) {
      ChurnEvent e;
      e.type = ChurnEventType::kFail;
      e.a = v;
      scripted_.push_back(std::move(e));
      if (schedule_rejoin) rejoin_queue_.push_back(v);
    }
  }

  /// Queues failure of the BFS ring at exactly \p radius around a random
  /// pivot. Any interior-to-exterior path crosses a ring node, so killing
  /// the whole ring disconnects the interior whenever both sides are
  /// non-empty. Ring nodes are queued for rejoin (component merge).
  void script_ring_failure(Hops radius) {
    // Prefer a pivot whose ring is non-trivial and leaves an exterior.
    for (int tries = 0; tries < 8; ++tries) {
      const NodeId pivot = pick(alive_, rng_);
      bfs_.run(g_, pivot, radius);
      const auto ball = bfs_.reached();
      const auto interior = bfs_.reached_within(radius - 1);
      const std::size_t ring = ball.size() - interior.size();
      if (ring == 0 || ball.size() >= g_.num_alive()) continue;
      for (NodeId v : ball.subspan(interior.size())) {
        ChurnEvent e;
        e.type = ChurnEventType::kFail;
        e.a = v;
        scripted_.push_back(std::move(e));
        rejoin_queue_.push_back(v);
      }
      rejoin_due_ = kUnset;  // fixed once the scripted queue drains
      return;
    }
  }

  /// Queues join events reviving earlier scripted casualties with their
  /// surviving former neighbors (emit() re-filters liveness at emit time).
  void script_rejoin() {
    for (NodeId v : rejoin_queue_) {
      if (g_.alive(v)) continue;
      ChurnEvent e;
      e.type = ChurnEventType::kJoin;
      e.a = v;
      for (NodeId w : former_neighbors_[v]) {
        if (g_.alive(w)) e.neighbors.push_back(w);
      }
      std::sort(e.neighbors.begin(), e.neighbors.end());
      scripted_.push_back(std::move(e));
    }
    rejoin_queue_.clear();
  }

  static constexpr std::size_t kUnset = static_cast<std::size_t>(-1);

  const ChurnTraceConfig cfg_;
  DynamicGraph g_;
  Rng rng_;
  BfsScratch bfs_;
  std::vector<NodeId> alive_;  ///< sorted
  std::vector<NodeId> dead_;
  std::deque<ChurnEvent> scripted_;
  std::vector<NodeId> rejoin_queue_;
  std::size_t rejoin_due_ = 0;
  bool burst_done_ = false;
  bool partition_done_ = false;
  std::unordered_map<NodeId, std::vector<NodeId>> former_neighbors_;
};

}  // namespace

ChurnTrace ChurnTrace::generate(const Graph& g0, const ChurnTraceConfig& cfg,
                                std::uint64_t seed) {
  KHOP_REQUIRE(g0.num_nodes() > 0, "churn trace needs a non-empty graph");
  KHOP_REQUIRE(cfg.p_fail >= 0 && cfg.p_join >= 0 && cfg.p_link_down >= 0 &&
                   cfg.p_link_up >= 0,
               "event weights must be non-negative");
  KHOP_REQUIRE(cfg.partition_at == ChurnTraceConfig::kNoScenario ||
                   cfg.partition_radius >= 1,
               "partition radius must be at least 1");
  TraceBuilder builder(g0, cfg, seed);
  ChurnTrace t;
  t.events_ = builder.build();
  return t;
}

}  // namespace khop
