/// \file churn_trace.hpp
/// Deterministic fault-injection schedules for the churn engine.
///
/// A ChurnTrace is a pre-generated sequence of topology events (node
/// failures, joins, link flips) that is *valid by construction*: the
/// generator simulates the sequence on a DynamicGraph while drawing events,
/// so a failure always names an alive node, a join always revives a dead one
/// with alive neighbors, and link flips always connect alive endpoints.
/// Replaying the same trace therefore never trips a precondition, and the
/// same (graph, config, seed) triple always yields the same schedule — the
/// property every engine-vs-oracle equivalence test relies on.
///
/// Besides uniform background churn the generator supports two scripted
/// scenarios: a failure *burst* (a whole BFS ball around a pivot dies over
/// consecutive events, modelling a localized outage) and a forced
/// *partition* (the ring at a fixed BFS distance around a pivot dies, which
/// provably disconnects the ball interior, then optionally rejoins later to
/// exercise component merging).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "khop/common/types.hpp"
#include "khop/graph/dynamic_graph.hpp"
#include "khop/graph/graph.hpp"

namespace khop {

enum class ChurnEventType : std::uint8_t {
  kFail,      ///< node a switches off (all incident links drop)
  kJoin,      ///< dead node a switches back on with links to `neighbors`
  kLinkDown,  ///< link {a, b} drops (both endpoints stay alive)
  kLinkUp,    ///< link {a, b} appears (both endpoints alive)
};

struct ChurnEvent {
  ChurnEventType type = ChurnEventType::kFail;
  NodeId a = kInvalidNode;  ///< subject node / smaller link endpoint
  NodeId b = kInvalidNode;  ///< larger link endpoint (link events only)
  std::vector<NodeId> neighbors;  ///< join events: links of the revived node
};

/// Applies \p e to \p g. The single mutation path shared by the trace
/// generator, the churn engine, and the reference maintainer, so all three
/// always see identical topology sequences. Returns false when the event is
/// a structural no-op (link already in the requested state).
bool apply_event(DynamicGraph& g, const ChurnEvent& e);

struct ChurnTraceConfig {
  std::size_t num_events = 1000;

  /// Relative weights of the background event mix (normalized internally).
  double p_fail = 1.0;
  double p_join = 1.0;
  double p_link_down = 1.0;
  double p_link_up = 1.0;

  /// Joins link the revived node to at most this many alive nodes drawn
  /// from a random anchor's 2-hop neighborhood.
  std::size_t max_join_degree = 6;

  /// Failures and link-downs are suppressed once the alive population
  /// reaches this floor (the trace then draws additive events instead).
  std::size_t min_alive = 8;

  static constexpr std::size_t kNoScenario = static_cast<std::size_t>(-1);

  /// Burst scenario: starting at this event index, every node within
  /// burst_radius hops of a random pivot fails on consecutive events.
  std::size_t burst_at = kNoScenario;
  Hops burst_radius = 1;

  /// Partition scenario: starting at this event index, the entire BFS ring
  /// at distance partition_radius around a random pivot fails on
  /// consecutive events, disconnecting the ball interior from the rest.
  /// rejoin_after background events later, the ring nodes rejoin (with
  /// their surviving former links), merging the components back.
  std::size_t partition_at = kNoScenario;
  Hops partition_radius = 2;
  std::size_t rejoin_after = 50;
};

class ChurnTrace {
 public:
  /// Generates a valid event schedule for a network starting at \p g0.
  /// Deterministic in (g0, cfg, seed).
  static ChurnTrace generate(const Graph& g0, const ChurnTraceConfig& cfg,
                             std::uint64_t seed);

  const std::vector<ChurnEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }

 private:
  std::vector<ChurnEvent> events_;
};

}  // namespace khop
