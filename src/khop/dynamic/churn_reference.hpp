/// \file churn_reference.hpp
/// Naive full-recompute oracle for the churn engine.
///
/// The churn maintenance *policy* (which node affiliates where after an
/// event) is history-dependent, so it cannot be audited against a
/// from-scratch clustering. Instead this file provides:
///
///  * ReferenceChurnMaintainer — a deliberately naive implementation of the
///    exact same repair policy as ChurnEngine: after every event it
///    recomputes all member distances with full-graph BFS, re-adopts and
///    re-elects orphans, with no locality scoping whatsoever. The engine's
///    incremental state must match it bit-for-bit after every event; the two
///    implementations share no repair code, so a scoping bug in the engine
///    cannot hide in the oracle.
///
///  * rebuild_backbone_oracle — the *stateless* part of the audit: given a
///    topology and a head assignment, the backbone is a pure function, so it
///    can be recomputed from scratch per connected component and compared
///    bit-exact against the engine's incrementally maintained backbone.
///
/// Repair policy (shared spec, implemented twice):
///  1. Strict domination: every alive node's head must be alive and within
///     k hops. A node violating this after an event is an *orphan*; nodes
///     still dominated never re-affiliate (sticky affiliation), but their
///     dist_to_head is kept exact.
///  2. Orphans first *adopt* the nearest surviving pre-event head within
///     k hops (ties: smaller head id).
///  3. Remaining orphans run the paper's iterative lowest-id election among
///     themselves: an orphan wins iff no undecided orphan with a smaller id
///     lies within k hops; non-winners that hear a winner within k join the
///     (distance, id)-minimal one; repeat until decided.
///  4. Heads are only demoted by dying; a joining node enters as an orphan.
#pragma once

#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/common/types.hpp"
#include "khop/dynamic/churn_trace.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/graph/dynamic_graph.hpp"

namespace khop {

/// Recomputes the backbone from scratch for the head assignment in
/// \p head_of: connected components of the alive subgraph are extracted,
/// build_backbone runs on each (relabelling is ascending, so canonical
/// min-id tie-breaks are preserved), and the results are merged back to
/// original ids. Heads/gateways/virtual_links come out sorted ascending.
Backbone rebuild_backbone_oracle(const DynamicGraph& g, Hops k,
                                 const std::vector<NodeId>& head_of,
                                 Pipeline pipeline);

/// Full-recompute implementation of the churn repair policy (see file
/// comment). State after every apply() is the policy's ground truth.
class ReferenceChurnMaintainer {
 public:
  /// Starts from the same initial clustering as ChurnEngine (id-priority
  /// k-hop clustering with id-based affiliation). \pre g0 connected.
  ReferenceChurnMaintainer(const Graph& g0, Hops k, Pipeline pipeline);

  void apply(const ChurnEvent& e);

  const DynamicGraph& graph() const noexcept { return g_; }
  Hops k() const noexcept { return k_; }
  /// node -> head (self for heads, kInvalidNode for dead nodes)
  const std::vector<NodeId>& head_of() const noexcept { return head_of_; }
  /// node -> exact hop distance to its head (kUnreachable for dead nodes)
  const std::vector<Hops>& dist_to_head() const noexcept { return dist_; }
  /// Alive heads, ascending.
  std::vector<NodeId> heads() const;

  /// From-scratch backbone for the current state.
  Backbone rebuild_backbone() const {
    return rebuild_backbone_oracle(g_, k_, head_of_, pipeline_);
  }

 private:
  DynamicGraph g_;
  Hops k_;
  Pipeline pipeline_;
  std::vector<NodeId> head_of_;
  std::vector<Hops> dist_;
};

}  // namespace khop
