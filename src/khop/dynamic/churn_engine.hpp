/// \file churn_engine.hpp
/// Continuous-maintenance engine: incremental k-hop repair under churn.
///
/// A ChurnEngine owns a mutable topology (DynamicGraph) plus the live
/// clustering and backbone, and repairs them *incrementally* after every
/// topology event — no event path ever rebuilds the clustering or backbone
/// from scratch. The repair policy is the one documented in
/// churn_reference.hpp (strict domination, sticky affiliation, nearest-head
/// adoption, iterative lowest-id election for the rest); the scoping that
/// makes it incremental:
///
///  * Distance repair: a head's member distances can only change if a
///    mutated vertex lies within k hops of it (any altered shortest path
///    passes through a mutated vertex). Seed BFS runs from the event's
///    vertices — on the pre-event topology for removals, post-event for
///    additions — mark those heads; only their member lists are rechecked
///    with one k-bounded BFS each.
///  * Selection + virtual-link repair: a head's neighbor selection and the
///    canonical 2k+1-hop link paths it owns can only change if a mutated or
///    re-affiliated vertex lies within 2k+1 hops. The same seed sweeps (plus
///    a post-repair pass from re-affiliated nodes and new heads) mark those
///    heads; each re-runs exactly the canonical per-head sweep of
///    gateway/head_sweep.cpp and upserts/drops its owned links. Both NC and
///    AC selections are symmetric and any change marks both endpoints, so
///    links owned by an unmarked smaller head are still valid.
///  * Gateway combine: LMST keep decisions can shift from changes up to
///    2*(2k+1) hops away (a neighbor's neighbor moves), so per-head scoping
///    is NOT sound there; instead the cheap combine over the maintained
///    selection/link state (mesh_gateways / lmst_gateways, no BFS at all)
///    reruns globally each event. It is component-local by construction, so
///    partitions need no special casing.
///
/// Partitions degrade gracefully: orphans in a split-off component elect
/// their own heads, every surviving component keeps a valid backbone, and
/// component/merge counts are tracked (group-counting among a failed node's
/// former neighbors, bounded probe first). audit() cross-checks the whole
/// incremental state bit-exact against full recomputation.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/common/types.hpp"
#include "khop/dynamic/churn_trace.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/graph/dynamic_graph.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {

struct ChurnEngineOptions {
  /// run(): audit after every N events (0 = only at the end).
  std::size_t audit_every = 0;
  /// Horizon of the cheap bounded connectivity probe tried before falling
  /// back to a full component walk (partition/merge accounting).
  Hops probe_horizon = 4;
};

/// Per-event repair summary.
struct ChurnEventReport {
  bool structural_noop = false;  ///< link already in the requested state
  std::size_t orphans = 0;
  std::size_t reaffiliated = 0;
  std::size_t new_heads = 0;
  std::size_t heads_resweeped = 0;
  /// Distinct nodes whose maintained state was recomputed this event
  /// (members distance-rechecked, orphans re-affiliated, heads re-swept).
  /// touched / n is the event's repair locality.
  std::size_t touched_nodes = 0;
  int component_delta = 0;
};

/// The raw cumulative counter block, separated from ChurnStats so the
/// publish watermark below can hold a second copy of exactly these fields.
/// full_rebuilds stays 0 by construction: no event path recomputes the
/// clustering or backbone from scratch.
struct ChurnCounters {
  std::size_t events = 0;
  std::size_t fails = 0;
  std::size_t joins = 0;
  std::size_t link_downs = 0;
  std::size_t link_ups = 0;
  std::size_t noop_events = 0;
  std::size_t full_rebuilds = 0;

  std::size_t orphans = 0;         ///< nodes that lost domination
  std::size_t reaffiliations = 0;  ///< orphans that joined another head
  std::size_t new_heads = 0;       ///< orphans promoted by election
  std::size_t heads_resweeped = 0;
  std::size_t touched_nodes = 0;  ///< repair-locality numerator (see report)
  std::size_t partitions = 0;     ///< component-count increases observed
  std::size_t merges = 0;         ///< component-count decreases via join/link
  std::size_t audits = 0;
};

/// Cumulative engine counters plus the registry-publication watermark.
struct ChurnStats : ChurnCounters {
  /// Counter values as of the last publish(). Persisted in snapshots, so an
  /// engine restored after a crash publishes only the delta it has not yet
  /// exported — restart never double-counts into the global registry.
  ChurnCounters published;

  /// Counts one incoming event of \p type (the single accounting point for
  /// the per-type counters; called before any state mutation).
  void note_event(ChurnEventType type) noexcept;

  /// Folds one event's repair summary into the cumulative counters.
  void note_report(const ChurnEventReport& report) noexcept;

  /// Adds the delta since the last publish() to the global obs::Registry
  /// under the `churn.*` metric names (see docs/observability.md), then
  /// advances the watermark. The struct stays the per-engine view; the
  /// registry is the queryable cross-engine store. Idempotent at a quiescent
  /// point: publishing twice adds nothing the second time. (Per-event
  /// distributions — repair locality, resweep breadth — are recorded live
  /// by apply() as `churn.*` histograms when telemetry is enabled.)
  void publish();
};

/// Everything a snapshot must persist to reincarnate a ChurnEngine
/// bit-exactly (see ChurnEngine::restore). Derived structures — member
/// lists, per-head selections, the backbone — are deliberately absent:
/// restore() rebuilds them deterministically from these, which keeps the
/// snapshot format minimal and makes "snapshot captured everything" a
/// checkable property instead of a convention.
struct ChurnEngineRestore {
  DynamicGraph graph;
  Hops k = 1;
  Pipeline pipeline = Pipeline::kAcLmst;
  /// heads / head_of / dist_to_head are authoritative; cluster_of and
  /// election_rounds are not maintained under churn and are restored empty.
  Clustering clustering;
  VirtualLinkMap links;
  std::size_t num_components = 1;
  ChurnStats stats;
};

class ChurnEngine {
 public:
  /// Builds the initial clustering (id-priority, id-based affiliation) and
  /// backbone for \p g0 and takes ownership of the mutable topology.
  /// \pre k >= 1; g0 connected; pipeline != kGmst (a global MST over all
  /// heads has no local repair scope, so it is not maintainable here)
  ChurnEngine(const Graph& g0, Hops k, Pipeline pipeline,
              ChurnEngineOptions opts = {});

  /// Reincarnates an engine from persisted state: adopts the topology,
  /// clustering and virtual links verbatim, then deterministically rebuilds
  /// every derived structure (member lists, per-head selections from the
  /// symmetric link set, the combined backbone). Validates the clustering
  /// against the restored topology (sizes, strict-ascending live heads,
  /// per-node head/distance sanity) and throws InvalidArgument on any
  /// violation, so corrupt persisted state cannot become a live engine.
  static ChurnEngine restore(ChurnEngineRestore r,
                             ChurnEngineOptions opts = {});

  /// Applies one topology event and repairs clustering + backbone.
  ChurnEventReport apply(const ChurnEvent& e);

  /// Applies every event of \p trace; audits every opts.audit_every events
  /// and once at the end, throwing InvariantViolation on the first audit
  /// failure. Returns the number of events applied.
  std::size_t run(const ChurnTrace& trace);

  /// Cross-checks the incremental state against full recomputation:
  /// topology consistency, membership structures, exact distances + strict
  /// domination, per-head selection, canonical link paths, and the
  /// per-component from-scratch backbone (bit-exact). Returns "" on
  /// success, else a description of the first violation.
  std::string audit();

  const DynamicGraph& graph() const noexcept { return g_; }
  Hops k() const noexcept { return k_; }
  Pipeline pipeline() const noexcept { return pipeline_; }

  /// Live clustering. heads/head_of/dist_to_head are maintained exactly;
  /// cluster_of is NOT maintained under churn (use head_of).
  const Clustering& clustering() const noexcept { return c_; }
  const Backbone& backbone() const noexcept { return backbone_; }
  std::size_t num_components() const noexcept { return num_components_; }
  const ChurnStats& stats() const noexcept { return stats_; }

  /// The maintained canonical-path store (exactly the selected head pairs).
  /// Persisted by snapshots; restore() derives the per-head selections back
  /// out of it.
  const VirtualLinkMap& virtual_links() const noexcept { return links_; }

  /// stats().publish() through the mutable engine (the watermark advances).
  void publish_stats() { stats_.publish(); }

 private:
  struct RestoreTag {};
  ChurnEngine(RestoreTag, ChurnEngineRestore r, ChurnEngineOptions opts);

  bool is_live_head(NodeId v) const {
    return g_.alive(v) && c_.head_of[v] == v;
  }

  void detach_member(NodeId v);
  void attach_member(NodeId v, NodeId head, Hops dist);
  void mark_from_seed(NodeId s, bool mark_k);
  std::size_t count_groups(const std::vector<NodeId>& nodes);
  bool probe_connected(NodeId a, NodeId b);
  void orphan_node(NodeId v, std::vector<NodeId>& orphans);
  void repair_distances(std::vector<NodeId>& orphans,
                        ChurnEventReport& report);
  void repair_affiliations(std::vector<NodeId>& orphans,
                           ChurnEventReport& report);
  void drop_dead_head(NodeId h);
  void resweep_heads(ChurnEventReport& report);
  void resweep_one(NodeId h);
  void combine();
  void touch(NodeId v, ChurnEventReport& report);

  DynamicGraph g_;
  Hops k_;
  Hops horizon_;  ///< 2k + 1
  Pipeline pipeline_;
  BackboneSpec spec_;
  ChurnEngineOptions opts_;

  Clustering c_;                ///< head_of / dist_to_head / heads live
  std::vector<NodeId> heads_;   ///< alive heads, ascending (== c_.heads)
  std::unordered_map<NodeId, std::vector<NodeId>> members_;  ///< head incl.
  std::vector<std::uint32_t> member_pos_;  ///< v -> index in its member list
  std::unordered_map<NodeId, std::vector<NodeId>> sel_;  ///< head -> selected
  VirtualLinkMap links_;
  Backbone backbone_;
  std::size_t num_components_ = 1;
  ChurnStats stats_;
  Workspace ws_;

  // Per-event scratch (cleared in apply()).
  std::unordered_set<NodeId> affected_k_;
  std::unordered_set<NodeId> affected_H_;
  EpochFlags touched_;
};

}  // namespace khop
