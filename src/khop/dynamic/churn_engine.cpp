#include "khop/dynamic/churn_engine.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"
#include "khop/dynamic/churn_reference.hpp"
#include "khop/gateway/lmst.hpp"
#include "khop/gateway/mesh.hpp"
#include "khop/nbr/neighbor_rules.hpp"
#include "khop/obs/metrics.hpp"
#include "khop/obs/trace.hpp"

namespace khop {

void ChurnStats::note_event(ChurnEventType type) noexcept {
  ++events;
  switch (type) {
    case ChurnEventType::kFail: ++fails; break;
    case ChurnEventType::kJoin: ++joins; break;
    case ChurnEventType::kLinkDown: ++link_downs; break;
    case ChurnEventType::kLinkUp: ++link_ups; break;
  }
}

void ChurnStats::note_report(const ChurnEventReport& report) noexcept {
  orphans += report.orphans;
  reaffiliations += report.reaffiliated;
  new_heads += report.new_heads;
  heads_resweeped += report.heads_resweeped;
  touched_nodes += report.touched_nodes;
}

void ChurnStats::publish() {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("churn.events").add(events - published.events);
  reg.counter("churn.fails").add(fails - published.fails);
  reg.counter("churn.joins").add(joins - published.joins);
  reg.counter("churn.link_downs").add(link_downs - published.link_downs);
  reg.counter("churn.link_ups").add(link_ups - published.link_ups);
  reg.counter("churn.noop_events").add(noop_events - published.noop_events);
  reg.counter("churn.full_rebuilds")
      .add(full_rebuilds - published.full_rebuilds);
  reg.counter("churn.orphans").add(orphans - published.orphans);
  reg.counter("churn.reaffiliations")
      .add(reaffiliations - published.reaffiliations);
  reg.counter("churn.new_heads").add(new_heads - published.new_heads);
  reg.counter("churn.heads_resweeped")
      .add(heads_resweeped - published.heads_resweeped);
  reg.counter("churn.touched_nodes")
      .add(touched_nodes - published.touched_nodes);
  reg.counter("churn.partitions").add(partitions - published.partitions);
  reg.counter("churn.merges").add(merges - published.merges);
  reg.counter("churn.audits").add(audits - published.audits);
  published = *this;
}

ChurnEngine::ChurnEngine(const Graph& g0, Hops k, Pipeline pipeline,
                         ChurnEngineOptions opts)
    : g_(g0),
      k_(k),
      horizon_(2 * k + 1),
      pipeline_(pipeline),
      spec_(spec_for(pipeline)),
      opts_(opts) {
  KHOP_REQUIRE(k >= 1, "k must be at least 1");
  KHOP_REQUIRE(pipeline != Pipeline::kGmst,
               "a global MST has no local repair scope; use an NC/AC pipeline");
  c_ = khop_clustering(g0, k, AffiliationRule::kIdBased);
  heads_ = c_.heads;
  member_pos_.assign(g_.capacity(), 0);
  for (NodeId v = 0; v < g_.capacity(); ++v) {
    auto& list = members_[c_.head_of[v]];
    member_pos_[v] = static_cast<std::uint32_t>(list.size());
    list.push_back(v);
  }
  const NeighborSelection sel0 =
      select_neighbors(g0, c_, spec_.neighbor_rule, ws_);
  for (std::uint32_t i = 0; i < heads_.size(); ++i) {
    sel_[heads_[i]] = sel0.selected[i];
  }
  links_ = VirtualLinkMap::build_bounded(g0, sel0.head_pairs, horizon_, ws_);
  combine();
}

ChurnEngine ChurnEngine::restore(ChurnEngineRestore r,
                                 ChurnEngineOptions opts) {
  return ChurnEngine(RestoreTag{}, std::move(r), opts);
}

ChurnEngine::ChurnEngine(RestoreTag, ChurnEngineRestore r,
                         ChurnEngineOptions opts)
    : g_(std::move(r.graph)),
      k_(r.k),
      horizon_(2 * r.k + 1),
      pipeline_(r.pipeline),
      spec_(spec_for(r.pipeline)),
      opts_(opts),
      c_(std::move(r.clustering)),
      links_(std::move(r.links)),
      num_components_(r.num_components),
      stats_(r.stats) {
  KHOP_REQUIRE(k_ >= 1, "k must be at least 1");
  KHOP_REQUIRE(pipeline_ != Pipeline::kGmst,
               "a global MST has no local repair scope; use an NC/AC pipeline");
  const std::size_t cap = g_.capacity();
  KHOP_REQUIRE(c_.head_of.size() == cap && c_.dist_to_head.size() == cap,
               "restored clustering does not cover the id space");
  c_.k = k_;
  c_.cluster_of.clear();  // not maintained under churn; never persisted
  c_.election_rounds = 0;

  // Per-node sanity against the restored topology, then rebuild the member
  // lists (ascending id order; the engine's public behavior never depends on
  // member list order, see repair_* in this file).
  member_pos_.assign(cap, 0);
  for (NodeId v = 0; v < cap; ++v) {
    if (!g_.alive(v)) {
      KHOP_REQUIRE(c_.head_of[v] == kInvalidNode &&
                       c_.dist_to_head[v] == kUnreachable,
                   "restored dead node retains clustering state");
      continue;
    }
    const NodeId h = c_.head_of[v];
    KHOP_REQUIRE(h < cap && g_.alive(h) && c_.head_of[h] == h,
                 "restored node affiliated to a non-head");
    KHOP_REQUIRE(c_.dist_to_head[v] <= k_ && ((h == v) == (c_.dist_to_head[v] == 0)),
                 "restored head distance out of range");
    auto& list = members_[h];
    member_pos_[v] = static_cast<std::uint32_t>(list.size());
    list.push_back(v);
  }

  heads_.clear();
  for (NodeId v = 0; v < cap; ++v) {
    if (g_.alive(v) && c_.head_of[v] == v) heads_.push_back(v);
  }
  KHOP_REQUIRE(c_.heads == heads_, "restored head list out of sync");

  // Selections are symmetric and the link store holds exactly the selected
  // pairs (smaller endpoint first), so sel_ is fully derivable: every head
  // gets an entry (possibly empty), each link feeds both endpoints.
  for (NodeId h : heads_) sel_[h];
  for (const VirtualLink& l : links_.all()) {
    KHOP_REQUIRE(l.u < l.v, "restored virtual link endpoints unordered");
    const auto iu = sel_.find(l.u);
    const auto iv = sel_.find(l.v);
    KHOP_REQUIRE(iu != sel_.end() && iv != sel_.end(),
                 "restored virtual link endpoint is not a live head");
    iu->second.push_back(l.v);
    iv->second.push_back(l.u);
  }
  for (auto& [h, list] : sel_) std::sort(list.begin(), list.end());

  combine();
}

void ChurnEngine::touch(NodeId v, ChurnEventReport& report) {
  if (!touched_.test(v)) {
    touched_.set(v);
    ++report.touched_nodes;
  }
}

void ChurnEngine::detach_member(NodeId v) {
  auto& list = members_.at(c_.head_of[v]);
  const std::uint32_t i = member_pos_[v];
  list[i] = list.back();
  member_pos_[list[i]] = i;
  list.pop_back();
}

void ChurnEngine::attach_member(NodeId v, NodeId head, Hops dist) {
  auto& list = members_.at(head);
  member_pos_[v] = static_cast<std::uint32_t>(list.size());
  list.push_back(v);
  c_.head_of[v] = head;
  c_.dist_to_head[v] = dist;
}

void ChurnEngine::mark_from_seed(NodeId s, bool mark_k) {
  ws_.bfs.run(g_, s, horizon_);
  for (NodeId w : ws_.bfs.reached()) {
    if (c_.head_of[w] != w) continue;  // reached nodes are alive; heads only
    affected_H_.insert(w);
    if (mark_k && ws_.bfs.dist(w) <= k_) affected_k_.insert(w);
  }
}

bool ChurnEngine::probe_connected(NodeId a, NodeId b) {
  ws_.bfs.run(g_, a, opts_.probe_horizon);
  if (ws_.bfs.dist(b) != kUnreachable) return true;
  ws_.bfs.run(g_, a, kUnreachable);
  return ws_.bfs.dist(b) != kUnreachable;
}

std::size_t ChurnEngine::count_groups(const std::vector<NodeId>& nodes) {
  if (nodes.size() <= 1) return nodes.size();
  // Cheap common case: one bounded probe reaches every node -> one group.
  ws_.bfs.run(g_, nodes.front(), opts_.probe_horizon);
  bool all = true;
  for (NodeId v : nodes) {
    if (ws_.bfs.dist(v) == kUnreachable) {
      all = false;
      break;
    }
  }
  if (all) return 1;
  std::vector<NodeId> remaining(nodes);
  std::sort(remaining.begin(), remaining.end());
  std::size_t groups = 0;
  while (!remaining.empty()) {
    ws_.bfs.run(g_, remaining.front(), kUnreachable);
    std::erase_if(remaining,
                  [&](NodeId v) { return ws_.bfs.dist(v) != kUnreachable; });
    ++groups;
  }
  return groups;
}

void ChurnEngine::drop_dead_head(NodeId h) {
  const auto it = sel_.find(h);
  if (it != sel_.end()) {
    for (NodeId v : it->second) {
      links_.erase(std::min(h, v), std::max(h, v));
    }
    sel_.erase(it);
  }
  const auto pos = std::lower_bound(heads_.begin(), heads_.end(), h);
  KHOP_ASSERT(pos != heads_.end() && *pos == h, "dead head not in heads_");
  heads_.erase(pos);
}

ChurnEventReport ChurnEngine::apply(const ChurnEvent& e) {
  ChurnEventReport report;
  stats_.note_event(e.type);
  obs::Span span("churn/event");
  span.arg("type", static_cast<std::int64_t>(e.type));
  affected_k_.clear();
  affected_H_.clear();
  touched_.begin(g_.capacity());

  // Validation + structural no-op detection (before any state changes).
  switch (e.type) {
    case ChurnEventType::kFail:
      KHOP_REQUIRE(g_.alive(e.a), "failure event names a dead node");
      break;
    case ChurnEventType::kJoin:
      KHOP_REQUIRE(!g_.alive(e.a), "join event names an alive node");
      for (NodeId w : e.neighbors) {
        KHOP_REQUIRE(g_.alive(w), "join neighbor must be alive");
      }
      break;
    case ChurnEventType::kLinkDown:
      KHOP_REQUIRE(g_.alive(e.a) && g_.alive(e.b),
                   "link event endpoints must be alive");
      report.structural_noop = !g_.has_edge(e.a, e.b);
      break;
    case ChurnEventType::kLinkUp:
      KHOP_REQUIRE(g_.alive(e.a) && g_.alive(e.b),
                   "link event endpoints must be alive");
      report.structural_noop = g_.has_edge(e.a, e.b);
      break;
  }
  if (report.structural_noop) {
    ++stats_.noop_events;
    return report;
  }

  std::vector<NodeId> orphans;
  std::vector<NodeId> former;  // kFail: neighbors at the instant of death

  // Pre-mutation: seed sweeps on the OLD topology for removals (distance
  // increases travel along paths that existed before the cut), and
  // component pre-checks for additive events (connectivity without the new
  // element).
  switch (e.type) {
    case ChurnEventType::kFail: {
      const auto nb = g_.neighbors(e.a);
      former.assign(nb.begin(), nb.end());
      mark_from_seed(e.a, /*mark_k=*/true);
      break;
    }
    case ChurnEventType::kLinkDown:
      mark_from_seed(e.a, /*mark_k=*/true);
      mark_from_seed(e.b, /*mark_k=*/true);
      break;
    case ChurnEventType::kLinkUp:
      if (!probe_connected(e.a, e.b)) {
        --num_components_;
        ++stats_.merges;
        report.component_delta = -1;
      }
      break;
    case ChurnEventType::kJoin: {
      const std::size_t groups = count_groups(e.neighbors);
      report.component_delta = 1 - static_cast<int>(groups);
      num_components_ =
          static_cast<std::size_t>(static_cast<long long>(num_components_) +
                                   report.component_delta);
      if (groups > 1) stats_.merges += groups - 1;
      break;
    }
  }

  apply_event(g_, e);

  // Post-mutation: component accounting for removals (grouping needs the
  // NEW topology) and seed sweeps for additive events (distance decreases
  // travel along paths that exist only now).
  switch (e.type) {
    case ChurnEventType::kFail: {
      const int delta =
          former.empty() ? -1
                         : static_cast<int>(count_groups(former)) - 1;
      num_components_ = static_cast<std::size_t>(
          static_cast<long long>(num_components_) + delta);
      report.component_delta = delta;
      if (delta > 0) stats_.partitions += static_cast<std::size_t>(delta);
      break;
    }
    case ChurnEventType::kLinkDown:
      if (!probe_connected(e.a, e.b)) {
        ++num_components_;
        ++stats_.partitions;
        report.component_delta = 1;
      }
      break;
    case ChurnEventType::kLinkUp:
      mark_from_seed(e.a, /*mark_k=*/true);
      mark_from_seed(e.b, /*mark_k=*/true);
      break;
    case ChurnEventType::kJoin:
      mark_from_seed(e.a, /*mark_k=*/true);
      break;
  }

  // Membership bookkeeping for the event's own vertex.
  if (e.type == ChurnEventType::kFail) {
    if (c_.head_of[e.a] == e.a) {
      // A head died: all its members are orphans; retire its selection and
      // owned links (surviving peers re-sweep via the pre-mutation marks).
      std::vector<NodeId> ms = std::move(members_.at(e.a));
      members_.erase(e.a);
      for (NodeId m : ms) {
        if (m == e.a) continue;
        c_.head_of[m] = kInvalidNode;
        c_.dist_to_head[m] = kUnreachable;
        orphans.push_back(m);
      }
      drop_dead_head(e.a);
    } else {
      detach_member(e.a);
    }
    c_.head_of[e.a] = kInvalidNode;
    c_.dist_to_head[e.a] = kUnreachable;
    affected_k_.erase(e.a);
    affected_H_.erase(e.a);
  } else if (e.type == ChurnEventType::kJoin) {
    c_.head_of[e.a] = kInvalidNode;
    c_.dist_to_head[e.a] = kUnreachable;
    orphans.push_back(e.a);
  }

  repair_distances(orphans, report);
  repair_affiliations(orphans, report);
  resweep_heads(report);
  combine();

  stats_.note_report(report);
  span.arg("orphans", static_cast<std::int64_t>(report.orphans));
  span.arg("heads_resweeped",
           static_cast<std::int64_t>(report.heads_resweeped));
  span.arg("touched", static_cast<std::int64_t>(report.touched_nodes));
  if (obs::enabled()) {
    // Per-event repair distributions; touched / n is the event's repair
    // locality (the locality denominator is exported as churn.alive_nodes).
    obs::Registry& reg = obs::Registry::global();
    reg.histogram("churn.repair_touched").record(report.touched_nodes);
    reg.histogram("churn.resweep_heads").record(report.heads_resweeped);
    reg.histogram("churn.event_orphans").record(report.orphans);
    reg.gauge("churn.alive_nodes")
        .set(static_cast<std::int64_t>(g_.num_alive()));
  }
  return report;
}

void ChurnEngine::repair_distances(std::vector<NodeId>& orphans,
                                   ChurnEventReport& report) {
  std::vector<NodeId> hs(affected_k_.begin(), affected_k_.end());
  std::sort(hs.begin(), hs.end());
  std::vector<NodeId> to_orphan;
  for (NodeId h : hs) {
    if (!is_live_head(h)) continue;
    ws_.bfs.run(g_, h, k_);
    to_orphan.clear();
    for (NodeId m : members_.at(h)) {
      if (m == h) continue;
      touch(m, report);
      const Hops d = ws_.bfs.dist(m);
      if (d == kUnreachable) {
        to_orphan.push_back(m);  // pushed beyond k (or cut off entirely)
      } else {
        c_.dist_to_head[m] = d;
      }
    }
    for (NodeId m : to_orphan) {
      detach_member(m);
      c_.head_of[m] = kInvalidNode;
      c_.dist_to_head[m] = kUnreachable;
      orphans.push_back(m);
    }
  }
}

void ChurnEngine::repair_affiliations(std::vector<NodeId>& orphans,
                                      ChurnEventReport& report) {
  if (orphans.empty()) return;
  std::sort(orphans.begin(), orphans.end());
  report.orphans = orphans.size();

  // Adoption: the current heads are exactly the pre-event survivors
  // (election has not run yet). reached() is (distance, id)-ordered, so the
  // first head hit is the policy's adoption target.
  std::vector<NodeId> undecided;
  for (NodeId u : orphans) {
    touch(u, report);
    ws_.bfs.run(g_, u, k_);
    NodeId adopted = kInvalidNode;
    for (NodeId w : ws_.bfs.reached()) {
      if (w != u && is_live_head(w)) {
        adopted = w;
        break;
      }
    }
    if (adopted != kInvalidNode) {
      attach_member(u, adopted, ws_.bfs.dist(adopted));
      ++report.reaffiliated;
    } else {
      undecided.push_back(u);
    }
  }

  // Iterative lowest-id election among the rest (partitioned groups elect
  // independently: the k-bounded sweeps never cross a component boundary).
  std::unordered_set<NodeId> undecided_set(undecided.begin(), undecided.end());
  while (!undecided.empty()) {
    std::vector<NodeId> winners;
    for (NodeId u : undecided) {
      ws_.bfs.run(g_, u, k_);
      bool wins = true;
      for (NodeId w : ws_.bfs.reached()) {
        if (w != u && w < u && undecided_set.contains(w)) {
          wins = false;
          break;
        }
      }
      if (wins) winners.push_back(u);
    }
    KHOP_ASSERT(!winners.empty(), "election round produced no winner");
    const std::unordered_set<NodeId> winner_set(winners.begin(),
                                                winners.end());
    for (NodeId w : winners) {
      c_.head_of[w] = w;
      c_.dist_to_head[w] = 0;
      heads_.insert(std::lower_bound(heads_.begin(), heads_.end(), w), w);
      member_pos_[w] = 0;
      members_[w] = {w};
      undecided_set.erase(w);
      ++report.new_heads;
    }
    std::vector<NodeId> next;
    for (NodeId u : undecided) {
      if (winner_set.contains(u)) continue;
      ws_.bfs.run(g_, u, k_);
      NodeId joined = kInvalidNode;
      for (NodeId w : ws_.bfs.reached()) {
        if (w != u && winner_set.contains(w)) {
          joined = w;
          break;
        }
      }
      if (joined != kInvalidNode) {
        attach_member(u, joined, ws_.bfs.dist(joined));
        undecided_set.erase(u);
        ++report.reaffiliated;
      } else {
        next.push_back(u);
      }
    }
    undecided = std::move(next);
  }

  // Pass B: membership and head-set changes shift selection witnesses, so
  // every re-affiliated node and new head seeds a selection-scope mark.
  for (NodeId u : orphans) mark_from_seed(u, /*mark_k=*/false);
}

void ChurnEngine::resweep_one(NodeId h) {
  std::vector<NodeId> old_sel = std::move(sel_[h]);  // creates for new heads
  ws_.bfs.run(g_, h, horizon_);

  std::vector<NodeId> nsel;
  if (spec_.neighbor_rule == NeighborRule::kAllWithin2k1) {
    // Exactly the canonical per-head sweep of gateway/head_sweep.cpp.
    for (NodeId w : ws_.bfs.reached()) {
      if (w != h && c_.head_of[w] == w) nsel.push_back(w);
    }
    std::sort(nsel.begin(), nsel.end());
  } else {
    // A-NCR: heads of clusters adjacent to h's cluster. Every witness edge
    // has one endpoint among h's members, so a member edge scan finds all.
    for (NodeId m : members_.at(h)) {
      for (NodeId y : g_.neighbors(m)) {
        const NodeId h2 = c_.head_of[y];
        if (h2 != h) nsel.push_back(h2);
      }
    }
    std::sort(nsel.begin(), nsel.end());
    nsel.erase(std::unique(nsel.begin(), nsel.end()), nsel.end());
  }

  // Upsert the links this head owns (smaller endpoint). Strict domination
  // keeps every selected pair within 2k+1 hops, so the bounded sweep always
  // reaches the target.
  for (NodeId v : nsel) {
    if (v <= h) continue;
    KHOP_ASSERT(ws_.bfs.dist(v) != kUnreachable,
                "selected head beyond the 2k+1 horizon");
    VirtualLink l;
    l.u = h;
    l.v = v;
    l.hops = ws_.bfs.dist(v);
    l.path = ws_.bfs.extract_path(v);
    links_.insert(std::move(l));
  }
  // Selection changes are symmetric, so a dropped pair is seen (and safely
  // erased, possibly twice) by whichever endpoint re-sweeps.
  for (NodeId v : old_sel) {
    if (!std::binary_search(nsel.begin(), nsel.end(), v)) {
      links_.erase(std::min(h, v), std::max(h, v));
    }
  }
  sel_[h] = std::move(nsel);
}

void ChurnEngine::resweep_heads(ChurnEventReport& report) {
  std::vector<NodeId> hs(affected_H_.begin(), affected_H_.end());
  std::sort(hs.begin(), hs.end());
  for (NodeId h : hs) {
    if (!is_live_head(h)) continue;
    touch(h, report);
    resweep_one(h);
    ++report.heads_resweeped;
  }
}

void ChurnEngine::combine() {
  c_.heads = heads_;
  NeighborSelection sel;
  sel.rule = spec_.neighbor_rule;
  sel.selected.resize(heads_.size());
  for (std::uint32_t i = 0; i < heads_.size(); ++i) {
    const NodeId h = heads_[i];
    const auto it = sel_.find(h);
    KHOP_ASSERT(it != sel_.end(), "live head without a selection entry");
    sel.selected[i] = it->second;
    for (NodeId v : it->second) {
      if (v > h) sel.head_pairs.emplace_back(h, v);
    }
  }
  // Ascending heads emitting ascending larger partners: head_pairs comes
  // out sorted + unique, matching finalize_selection's canonical order.
  backbone_.pipeline = pipeline_;
  backbone_.spec = spec_;
  backbone_.heads = c_.heads;
  if (spec_.gateway == GatewayAlgorithm::kMesh) {
    MeshResult r = mesh_gateways(c_, sel, links_);
    backbone_.gateways = std::move(r.gateways);
    backbone_.virtual_links = std::move(r.kept_links);
  } else {
    LmstResult r = lmst_gateways(c_, sel, links_, spec_.lmst_keep);
    backbone_.gateways = std::move(r.gateways);
    backbone_.virtual_links = std::move(r.kept_links);
  }
}

std::size_t ChurnEngine::run(const ChurnTrace& trace) {
  std::size_t applied = 0;
  for (const ChurnEvent& e : trace.events()) {
    apply(e);
    ++applied;
    if (opts_.audit_every != 0 && applied % opts_.audit_every == 0) {
      const std::string s = audit();
      if (!s.empty()) {
        throw InvariantViolation("churn audit failed after event " +
                                 std::to_string(applied) + ": " + s);
      }
    }
  }
  const std::string s = audit();
  if (!s.empty()) throw InvariantViolation("final churn audit failed: " + s);
  return applied;
}

std::string ChurnEngine::audit() {
  ++stats_.audits;
  obs::Span span("churn/audit");
  if (std::string s = g_.check_consistency(); !s.empty()) return s;
  const std::size_t cap = g_.capacity();

  std::vector<NodeId> expect_heads;
  for (NodeId v = 0; v < cap; ++v) {
    if (g_.alive(v)) {
      if (c_.head_of[v] == kInvalidNode) return "alive node without a head";
      if (c_.head_of[v] == v) expect_heads.push_back(v);
    } else if (c_.head_of[v] != kInvalidNode ||
               c_.dist_to_head[v] != kUnreachable) {
      return "dead node retains clustering state";
    }
  }
  if (expect_heads != heads_) return "heads_ out of sync with head_of";
  if (c_.heads != heads_) return "clustering heads out of sync";

  if (members_.size() != heads_.size()) return "member list count mismatch";
  std::size_t member_count = 0;
  for (const auto& [h, list] : members_) {
    if (!is_live_head(h)) return "member list kept for a non-head";
    for (std::uint32_t i = 0; i < list.size(); ++i) {
      const NodeId v = list[i];
      if (!g_.alive(v) || c_.head_of[v] != h || member_pos_[v] != i) {
        return "member list corrupt";
      }
    }
    member_count += list.size();
  }
  if (member_count != g_.num_alive()) {
    return "member lists do not partition the alive nodes";
  }

  // Exact distances + strict domination, against fresh k-bounded BFS.
  for (NodeId h : heads_) {
    ws_.bfs.run(g_, h, k_);
    for (NodeId m : members_.at(h)) {
      const Hops d = ws_.bfs.dist(m);
      if (d == kUnreachable) return "member beyond k of its head";
      if (c_.dist_to_head[m] != d) return "stale dist_to_head";
    }
  }

  // Selection state vs direct recomputation.
  if (sel_.size() != heads_.size()) return "selection map size mismatch";
  if (spec_.neighbor_rule == NeighborRule::kAllWithin2k1) {
    for (NodeId h : heads_) {
      ws_.bfs.run(g_, h, horizon_);
      std::vector<NodeId> want;
      for (NodeId w : ws_.bfs.reached()) {
        if (w != h && c_.head_of[w] == w) want.push_back(w);
      }
      std::sort(want.begin(), want.end());
      if (sel_.at(h) != want) return "stale NC selection";
    }
  } else {
    std::unordered_map<NodeId, std::vector<NodeId>> want;
    for (NodeId u = 0; u < cap; ++u) {
      for (NodeId v : g_.neighbors(u)) {
        if (u >= v) continue;
        const NodeId hu = c_.head_of[u];
        const NodeId hv = c_.head_of[v];
        if (hu == hv) continue;
        want[hu].push_back(hv);
        want[hv].push_back(hu);
      }
    }
    for (NodeId h : heads_) {
      auto& list = want[h];
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
      if (sel_.at(h) != list) return "stale AC selection";
    }
  }

  // Virtual links: exactly the selected pairs, each with the canonical
  // bounded shortest path.
  std::size_t pair_count = 0;
  for (NodeId h : heads_) {
    for (NodeId v : sel_.at(h)) {
      if (v <= h) continue;
      ++pair_count;
      if (!links_.contains(h, v)) return "missing virtual link";
    }
  }
  if (links_.all().size() != pair_count) return "stale virtual links";
  for (const VirtualLink& l : links_.all()) {
    if (!is_live_head(l.u) || !is_live_head(l.v)) {
      return "virtual link endpoint is not a live head";
    }
    ws_.bfs.run(g_, l.u, horizon_);
    if (ws_.bfs.dist(l.v) != l.hops) return "virtual link hops not shortest";
    if (ws_.bfs.extract_path(l.v) != l.path) {
      return "virtual link path not canonical";
    }
  }

  // The final backbone vs a per-component full recompute (the PR 3-5
  // oracle discipline extended to churn state).
  const Backbone oracle =
      rebuild_backbone_oracle(g_, k_, c_.head_of, pipeline_);
  if (backbone_.heads != oracle.heads) return "backbone heads diverge";
  if (backbone_.gateways != oracle.gateways) {
    return "backbone gateways diverge from full recompute";
  }
  if (backbone_.virtual_links != oracle.virtual_links) {
    return "backbone kept links diverge from full recompute";
  }
  return {};
}

}  // namespace khop
