#include "khop/dynamic/churn_reference.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "khop/common/assert.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/graph/components.hpp"
#include "khop/graph/subgraph.hpp"

namespace khop {

Backbone rebuild_backbone_oracle(const DynamicGraph& g, Hops k,
                                 const std::vector<NodeId>& head_of,
                                 Pipeline pipeline) {
  KHOP_REQUIRE(head_of.size() == g.capacity(),
               "head assignment does not match graph");
  const Graph snap = g.snapshot();
  const Components comps = connected_components(snap);

  // Group alive nodes by component (dead nodes are isolated singletons in
  // the snapshot; skipping them drops their pseudo-components entirely).
  std::unordered_map<NodeId, std::vector<NodeId>> by_comp;
  for (NodeId v = 0; v < snap.num_nodes(); ++v) {
    if (g.alive(v)) by_comp[comps.label[v]].push_back(v);
  }
  std::vector<NodeId> labels;
  labels.reserve(by_comp.size());
  for (const auto& [label, nodes] : by_comp) labels.push_back(label);
  std::sort(labels.begin(), labels.end());

  Backbone out;
  out.pipeline = pipeline;
  out.spec = spec_for(pipeline);
  for (NodeId label : labels) {
    const std::vector<NodeId>& nodes = by_comp[label];  // ascending already
    const InducedSubgraph sub = induced_subgraph(snap, nodes);

    // Project the head assignment into the subgraph. Relabelling is
    // order-preserving, so every min-id tie-break below matches what the
    // same computation over original ids would decide.
    Clustering c;
    c.k = k;
    const std::size_t sn = sub.graph.num_nodes();
    c.head_of.resize(sn);
    c.dist_to_head.assign(sn, 0);
    c.cluster_of.resize(sn);
    for (NodeId local = 0; local < sn; ++local) {
      const NodeId orig_head = head_of[sub.original_ids[local]];
      KHOP_REQUIRE(orig_head != kInvalidNode, "alive node without a head");
      const NodeId local_head = sub.new_id[orig_head];
      KHOP_REQUIRE(local_head != kInvalidNode,
                   "head outside its member's component");
      c.head_of[local] = local_head;
      if (c.head_of[local] == local) c.heads.push_back(local);
    }
    std::unordered_map<NodeId, std::uint32_t> head_index;
    for (std::uint32_t i = 0; i < c.heads.size(); ++i) {
      head_index[c.heads[i]] = i;
    }
    for (NodeId local = 0; local < sn; ++local) {
      c.cluster_of[local] = head_index.at(c.head_of[local]);
    }

    Backbone b = build_backbone(sub.graph, c, pipeline);
    for (NodeId h : b.heads) out.heads.push_back(sub.original_ids[h]);
    for (NodeId gw : b.gateways) out.gateways.push_back(sub.original_ids[gw]);
    for (const auto& [u, v] : b.virtual_links) {
      out.virtual_links.emplace_back(sub.original_ids[u],
                                     sub.original_ids[v]);
    }
  }
  std::sort(out.heads.begin(), out.heads.end());
  std::sort(out.gateways.begin(), out.gateways.end());
  std::sort(out.virtual_links.begin(), out.virtual_links.end());
  return out;
}

ReferenceChurnMaintainer::ReferenceChurnMaintainer(const Graph& g0, Hops k,
                                                   Pipeline pipeline)
    : g_(g0), k_(k), pipeline_(pipeline) {
  const Clustering c = khop_clustering(g0, k, AffiliationRule::kIdBased);
  head_of_ = c.head_of;
  dist_ = c.dist_to_head;
}

std::vector<NodeId> ReferenceChurnMaintainer::heads() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < g_.capacity(); ++v) {
    if (g_.alive(v) && head_of_[v] == v) out.push_back(v);
  }
  return out;
}

void ReferenceChurnMaintainer::apply(const ChurnEvent& e) {
  if (!apply_event(g_, e)) return;  // structural no-op
  if (e.type == ChurnEventType::kFail) {
    head_of_[e.a] = kInvalidNode;
    dist_[e.a] = kUnreachable;
  } else if (e.type == ChurnEventType::kJoin) {
    head_of_[e.a] = kInvalidNode;  // enters as an orphan
    dist_[e.a] = kUnreachable;
  }

  const Graph snap = g_.snapshot();
  const std::vector<NodeId> survivors = heads();
  const std::unordered_set<NodeId> survivor_set(survivors.begin(),
                                                survivors.end());

  // Exact member distances from every surviving head; members pushed beyond
  // k (or cut off entirely) become orphans. Policy step 1.
  std::vector<NodeId> orphans;
  std::unordered_map<NodeId, BfsTree> head_ball;
  for (NodeId h : survivors) head_ball[h] = bfs_bounded(snap, h, k_);
  for (NodeId v = 0; v < g_.capacity(); ++v) {
    if (!g_.alive(v)) continue;
    const NodeId h = head_of_[v];
    if (h == kInvalidNode || !survivor_set.contains(h)) {
      orphans.push_back(v);
      continue;
    }
    const Hops d = head_ball.at(h).dist[v];
    if (d == kUnreachable) {
      orphans.push_back(v);
    } else {
      dist_[v] = d;
    }
  }

  // Adoption: nearest surviving pre-event head within k, ties to the
  // smaller id. BfsScratch::reached() is level-ordered and ascending within
  // a level, so the first head found is the (distance, id) minimum.
  BfsScratch bfs;
  std::vector<NodeId> undecided;
  for (NodeId u : orphans) {
    bfs.run(snap, u, k_);
    NodeId adopted = kInvalidNode;
    for (NodeId w : bfs.reached()) {
      if (w != u && survivor_set.contains(w)) {
        adopted = w;
        break;
      }
    }
    if (adopted != kInvalidNode) {
      head_of_[u] = adopted;
      dist_[u] = bfs.dist(adopted);
    } else {
      head_of_[u] = kInvalidNode;
      undecided.push_back(u);
    }
  }

  // Iterative lowest-id election among the rest. Policy step 3.
  std::unordered_set<NodeId> undecided_set(undecided.begin(), undecided.end());
  while (!undecided.empty()) {
    std::vector<NodeId> winners;
    for (NodeId u : undecided) {
      bfs.run(snap, u, k_);
      bool wins = true;
      for (NodeId w : bfs.reached()) {
        if (w != u && w < u && undecided_set.contains(w)) {
          wins = false;
          break;
        }
      }
      if (wins) winners.push_back(u);
    }
    KHOP_ASSERT(!winners.empty(), "election round produced no winner");
    const std::unordered_set<NodeId> winner_set(winners.begin(),
                                                winners.end());
    for (NodeId w : winners) {
      head_of_[w] = w;
      dist_[w] = 0;
      undecided_set.erase(w);
    }
    std::vector<NodeId> next;
    for (NodeId u : undecided) {
      if (winner_set.contains(u)) continue;
      bfs.run(snap, u, k_);
      NodeId joined = kInvalidNode;
      for (NodeId w : bfs.reached()) {
        if (w != u && winner_set.contains(w)) {
          joined = w;
          break;
        }
      }
      if (joined != kInvalidNode) {
        head_of_[u] = joined;
        dist_[u] = bfs.dist(joined);
        undecided_set.erase(u);
      } else {
        next.push_back(u);
      }
    }
    undecided = std::move(next);
  }
}

}  // namespace khop
