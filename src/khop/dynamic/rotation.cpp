#include "khop/dynamic/rotation.hpp"

#include <algorithm>
#include <numeric>
#include <set>

#include "khop/common/assert.hpp"
#include "khop/graph/components.hpp"
#include "khop/graph/subgraph.hpp"

namespace khop {

RotationResult run_rotation(const AdHocNetwork& net, const RotationConfig& cfg,
                            Rng& rng) {
  KHOP_REQUIRE(cfg.max_epochs > 0, "need at least one epoch");
  const std::size_t n = net.num_nodes();
  EnergyState energy(cfg.energy, n);

  RotationResult result;
  result.first_death_epoch = cfg.max_epochs;
  std::set<NodeId> previous_heads;
  bool recorded_death = false;

  for (std::size_t epoch = 0; epoch < cfg.max_epochs; ++epoch) {
    // Alive subgraph (original ids preserved through the mapping).
    std::vector<NodeId> alive_nodes;
    for (NodeId v = 0; v < n; ++v) {
      if (energy.alive(v)) alive_nodes.push_back(v);
    }
    if (alive_nodes.size() < 2) break;
    const InducedSubgraph sub = induced_subgraph(net.graph, alive_nodes);
    if (!is_connected(sub.graph)) {
      result.stopped_disconnected = true;
      break;
    }

    // Residual-energy election (ties by id) on the alive subgraph. The
    // EnergyState is indexed by original ids; build keys accordingly.
    std::vector<PriorityKey> keys(sub.graph.num_nodes());
    for (NodeId v = 0; v < sub.graph.num_nodes(); ++v) {
      keys[v] = {.key = cfg.priority == PriorityRule::kHighestEnergy
                            ? -energy.residual(sub.original_ids[v])
                            : 0.0,
                 .id = v};
    }
    if (cfg.priority == PriorityRule::kRandomTimer) {
      for (auto& k : keys) k.key = rng.uniform();
    }

    const Clustering clustering =
        khop_clustering(sub.graph, cfg.k, keys, AffiliationRule::kIdBased);
    const Backbone backbone = build_backbone(sub.graph, clustering, cfg.pipeline);

    // Account the epoch.
    RotationEpoch e;
    e.epoch = epoch;
    e.alive = alive_nodes.size();
    e.heads = backbone.heads.size();
    e.gateways = backbone.gateways.size();

    std::set<NodeId> current_heads;
    for (NodeId h : backbone.heads) current_heads.insert(sub.original_ids[h]);
    for (NodeId h : current_heads) {
      if (!previous_heads.contains(h)) ++e.head_churn;
    }
    previous_heads = current_heads;

    // Drain energy by role (roles over original ids).
    std::vector<NodeRole> roles(n, NodeRole::kMember);
    const auto sub_roles = backbone.roles(sub.graph.num_nodes());
    for (NodeId v = 0; v < sub.graph.num_nodes(); ++v) {
      roles[sub.original_ids[v]] = sub_roles[v];
    }
    energy.apply_epoch(roles);

    double min_res = cfg.energy.initial;
    double sum_res = 0.0;
    for (NodeId v : alive_nodes) {
      min_res = std::min(min_res, energy.residual(v));
      sum_res += energy.residual(v);
    }
    e.min_residual = min_res;
    e.mean_residual = sum_res / static_cast<double>(alive_nodes.size());
    result.epochs.push_back(e);

    if (!recorded_death && energy.alive_count() < n) {
      result.first_death_epoch = epoch + 1;
      recorded_death = true;
    }
  }
  return result;
}

}  // namespace khop
