#include "khop/dynamic/events.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"
#include "khop/gateway/validate.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/graph/components.hpp"

namespace khop {

FailureClass classify_failure(const Clustering& c, const Backbone& b,
                              NodeId node) {
  KHOP_REQUIRE(node < c.head_of.size(), "node out of range");
  if (c.is_head(node)) return FailureClass::kClusterhead;
  if (std::binary_search(b.gateways.begin(), b.gateways.end(), node)) {
    return FailureClass::kGateway;
  }
  return FailureClass::kPlainMember;
}

namespace {

/// Re-elects heads among the orphan set only: orphans within k hops of a
/// surviving head join it (smallest-id tie-break); the rest run the paper's
/// iterative lowest-id election restricted to undecided nodes. Surviving
/// clusters are preserved verbatim. All ids are remainder-graph ids.
Clustering repair_clustering(const Graph& rg, Hops k,
                             const std::vector<NodeId>& preserved_heads,
                             const std::vector<NodeId>& preserved_head_of,
                             const std::vector<bool>& orphan,
                             std::size_t* out_new_heads) {
  const std::size_t n = rg.num_nodes();
  Clustering result;
  result.k = k;
  result.head_of.assign(n, kInvalidNode);
  result.dist_to_head.assign(n, kUnreachable);

  std::vector<bool> decided(n, false);
  std::size_t undecided_count = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (!orphan[v]) {
      decided[v] = true;
      result.head_of[v] = preserved_head_of[v];
    } else {
      ++undecided_count;
    }
  }

  // Step 1: orphans adopt a surviving head within k hops (nearest, then
  // smallest id) - the paper's member-affiliation applied to live clusters.
  if (!preserved_heads.empty() && undecided_count > 0) {
    for (NodeId h : preserved_heads) {
      const BfsTree ball = bfs_bounded(rg, h, k);
      for (NodeId v = 0; v < n; ++v) {
        if (!orphan[v] || decided[v] || ball.dist[v] == kUnreachable) continue;
        // Adopt-best bookkeeping happens below; record candidates lazily by
        // comparing against any previously recorded candidate.
        if (result.head_of[v] == kInvalidNode ||
            std::tuple(ball.dist[v], h) <
                std::tuple(result.dist_to_head[v], result.head_of[v])) {
          result.head_of[v] = h;
          result.dist_to_head[v] = ball.dist[v];
        }
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (orphan[v] && !decided[v] && result.head_of[v] != kInvalidNode) {
        decided[v] = true;
        --undecided_count;
      }
    }
  }

  // Step 2: iterative lowest-id election among the remaining orphans.
  std::size_t new_heads = 0;
  while (undecided_count > 0) {
    std::vector<NodeId> winners;
    for (NodeId u = 0; u < n; ++u) {
      if (decided[u]) continue;
      const BfsTree ball = bfs_bounded(rg, u, k);
      bool best = true;
      for (NodeId v = 0; v < n && best; ++v) {
        if (v == u || decided[v] || ball.dist[v] == kUnreachable) continue;
        if (v < u) best = false;
      }
      if (best) winners.push_back(u);
    }
    KHOP_ASSERT(!winners.empty(), "repair election made no progress");

    std::vector<std::vector<std::pair<NodeId, Hops>>> heard(n);
    for (NodeId w : winners) {
      decided[w] = true;
      --undecided_count;
      result.head_of[w] = w;
      result.dist_to_head[w] = 0;
      ++new_heads;
      const BfsTree ball = bfs_bounded(rg, w, k);
      for (NodeId v = 0; v < n; ++v) {
        if (decided[v] || ball.dist[v] == kUnreachable || v == w) continue;
        heard[v].emplace_back(w, ball.dist[v]);
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (decided[v] || heard[v].empty()) continue;
      const auto& best = *std::min_element(heard[v].begin(), heard[v].end());
      decided[v] = true;
      --undecided_count;
      result.head_of[v] = best.first;
      result.dist_to_head[v] = best.second;
    }
  }
  *out_new_heads = new_heads;

  // Finalize heads, cluster indices, and distances for preserved members.
  std::vector<bool> is_head(n, false);
  for (NodeId v = 0; v < n; ++v) is_head[result.head_of[v]] = true;
  for (NodeId v = 0; v < n; ++v) {
    if (is_head[v]) result.heads.push_back(v);
  }
  result.cluster_of.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto it = std::lower_bound(result.heads.begin(), result.heads.end(),
                                     result.head_of[v]);
    KHOP_ASSERT(it != result.heads.end() && *it == result.head_of[v],
                "repaired head_of references non-head");
    result.cluster_of[v] =
        static_cast<std::uint32_t>(std::distance(result.heads.begin(), it));
  }
  // Recompute member distances in the remainder graph (paths may have
  // lengthened after the failure).
  for (std::uint32_t i = 0; i < result.heads.size(); ++i) {
    const BfsTree tree = bfs(rg, result.heads[i]);
    for (NodeId v = 0; v < n; ++v) {
      if (result.cluster_of[v] == i) result.dist_to_head[v] = tree.dist[v];
    }
  }
  return result;
}

}  // namespace

FailureRepairReport handle_node_failure(const Graph& g, const Clustering& c,
                                        const Backbone& b, Pipeline pipeline,
                                        NodeId failed) {
  KHOP_REQUIRE(failed < g.num_nodes(), "failed node out of range");

  FailureRepairReport rep;
  rep.failure_class = classify_failure(c, b, failed);

  // Remainder graph with dense relabelling.
  std::vector<NodeId> keep;
  keep.reserve(g.num_nodes() - 1);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v != failed) keep.push_back(v);
  }
  rep.remainder = induced_subgraph(g, keep);
  const Components comps = connected_components(rep.remainder.graph);
  rep.num_components = comps.count;
  rep.remainder_connected = comps.count == 1;

  // Count the heads whose virtual links routed through the failed node -
  // the locality scope of the gateway-failure fix.
  {
    std::vector<bool> affected(g.num_nodes(), false);
    const VirtualLinkMap links = VirtualLinkMap::build(g, b.virtual_links);
    for (const auto& [u, v] : b.virtual_links) {
      const auto& path = links.link(u, v).path;
      if (std::find(path.begin(), path.end(), failed) != path.end()) {
        affected[u] = true;
        affected[v] = true;
      }
    }
    rep.affected_heads = static_cast<std::size_t>(
        std::count(affected.begin(), affected.end(), true));
  }

  const Graph& rg = rep.remainder.graph;
  const auto to_new = [&](NodeId old_id) { return rep.remainder.new_id[old_id]; };

  // Build the preserved clustering state in remainder ids.
  std::vector<NodeId> preserved_heads;
  std::vector<NodeId> preserved_head_of(rg.num_nodes(), kInvalidNode);
  std::vector<bool> orphan(rg.num_nodes(), false);
  const bool head_failed = rep.failure_class == FailureClass::kClusterhead;
  for (NodeId old_h : c.heads) {
    if (old_h == failed) continue;
    preserved_heads.push_back(to_new(old_h));
  }
  rep.preserved_heads = preserved_heads.size();
  for (NodeId old_v = 0; old_v < g.num_nodes(); ++old_v) {
    if (old_v == failed) continue;
    const NodeId nv = to_new(old_v);
    if (head_failed && c.head_of[old_v] == failed) {
      orphan[nv] = true;
      ++rep.orphaned_members;
      continue;
    }
    const NodeId nh = to_new(c.head_of[old_v]);
    if (comps.label[nv] != comps.label[nh]) {
      // The failure separated this member from its surviving head: it must
      // re-affiliate within its own component (graceful degradation instead
      // of keeping a cross-partition membership).
      orphan[nv] = true;
      ++rep.orphaned_members;
      ++rep.disconnected_orphans;
    } else {
      preserved_head_of[nv] = nh;
    }
  }

  rep.clustering = repair_clustering(rg, c.k, preserved_heads,
                                     preserved_head_of, orphan,
                                     &rep.new_heads);

  // Domination drift under the preserved memberships.
  for (NodeId v = 0; v < rg.num_nodes(); ++v) {
    if (rep.clustering.dist_to_head[v] > rep.clustering.k) {
      ++rep.domination_violations;
    }
  }

  // Phase 2 on a partitioned remainder: rebuild and validate the backbone
  // per surviving component (the relabelling is ascending, so canonical
  // tie-breaks match a whole-graph run) and merge the results. This runs
  // for every failure class — even a plain member can be a cut vertex, in
  // which case the old CDS no longer spans each component's new heads.
  if (!rep.remainder_connected) {
    std::vector<std::vector<NodeId>> by_comp(comps.count);
    for (NodeId v = 0; v < rg.num_nodes(); ++v) {
      by_comp[comps.label[v]].push_back(v);
    }
    rep.backbone.pipeline = pipeline;
    rep.backbone.spec = spec_for(pipeline);
    for (const std::vector<NodeId>& nodes : by_comp) {
      const InducedSubgraph sub = induced_subgraph(rg, nodes);
      Clustering cs;
      cs.k = rep.clustering.k;
      const std::size_t sn = sub.graph.num_nodes();
      cs.head_of.resize(sn);
      cs.dist_to_head.resize(sn);
      cs.cluster_of.assign(sn, 0);
      for (NodeId lv = 0; lv < sn; ++lv) {
        const NodeId ov = sub.original_ids[lv];
        const NodeId lh = sub.new_id[rep.clustering.head_of[ov]];
        KHOP_ASSERT(lh != kInvalidNode,
                    "repaired head outside its member's component");
        cs.head_of[lv] = lh;
        cs.dist_to_head[lv] = rep.clustering.dist_to_head[ov];
        if (lh == lv) cs.heads.push_back(lv);
      }
      for (NodeId lv = 0; lv < sn; ++lv) {
        const auto it = std::lower_bound(cs.heads.begin(), cs.heads.end(),
                                         cs.head_of[lv]);
        cs.cluster_of[lv] =
            static_cast<std::uint32_t>(std::distance(cs.heads.begin(), it));
      }
      const Backbone bs = build_backbone(sub.graph, cs, pipeline);
      const std::string err = validate_backbone(sub.graph, bs);
      if (!err.empty() && rep.validation_error.empty()) {
        rep.validation_error = err;
      }
      for (NodeId h : bs.heads) {
        rep.backbone.heads.push_back(sub.original_ids[h]);
      }
      for (NodeId w : bs.gateways) {
        rep.backbone.gateways.push_back(sub.original_ids[w]);
      }
      for (const auto& [u, v] : bs.virtual_links) {
        rep.backbone.virtual_links.emplace_back(sub.original_ids[u],
                                                sub.original_ids[v]);
      }
    }
    std::sort(rep.backbone.heads.begin(), rep.backbone.heads.end());
    std::sort(rep.backbone.gateways.begin(), rep.backbone.gateways.end());
    std::sort(rep.backbone.virtual_links.begin(),
              rep.backbone.virtual_links.end());
    return rep;
  }

  // Phase 2. Per the paper a plain-member failure leaves the CDS untouched;
  // we translate the old backbone. Gateway/head failures re-run selection.
  if (rep.failure_class == FailureClass::kPlainMember) {
    rep.backbone.pipeline = b.pipeline;
    for (NodeId h : b.heads) rep.backbone.heads.push_back(to_new(h));
    for (NodeId w : b.gateways) rep.backbone.gateways.push_back(to_new(w));
    for (const auto& [u, v] : b.virtual_links) {
      const NodeId nu = to_new(u);
      const NodeId nv = to_new(v);
      rep.backbone.virtual_links.emplace_back(std::min(nu, nv),
                                              std::max(nu, nv));
    }
    std::sort(rep.backbone.heads.begin(), rep.backbone.heads.end());
    std::sort(rep.backbone.gateways.begin(), rep.backbone.gateways.end());
    std::sort(rep.backbone.virtual_links.begin(),
              rep.backbone.virtual_links.end());
  } else {
    rep.backbone = build_backbone(rg, rep.clustering, pipeline);
  }

  rep.validation_error = validate_backbone(rg, rep.backbone);
  return rep;
}

JoinRepairReport handle_node_join(const Graph& g, const Clustering& c,
                                  const Backbone& b, Pipeline pipeline,
                                  const std::vector<NodeId>& neighbors) {
  KHOP_REQUIRE(!neighbors.empty(), "newcomer must attach to the network");
  for (NodeId v : neighbors) {
    KHOP_REQUIRE(v < g.num_nodes(), "newcomer neighbor out of range");
  }

  JoinRepairReport rep;
  const auto new_id = static_cast<NodeId>(g.num_nodes());
  rep.new_node = new_id;

  // Grown graph: old edges plus the newcomer's links.
  std::vector<std::pair<NodeId, NodeId>> edges = g.edge_list();
  for (NodeId v : neighbors) edges.emplace_back(v, new_id);
  rep.graph = Graph::from_edges(g.num_nodes() + 1, edges);

  // Join policy: nearest head within k (ties: smaller id), else new head.
  const BfsTree from_new = bfs_bounded(rep.graph, new_id, c.k);
  NodeId adopted_head = kInvalidNode;
  Hops adopted_dist = kUnreachable;
  for (NodeId h : c.heads) {
    const Hops d = from_new.dist[h];
    if (d == kUnreachable) continue;
    if (std::tuple(d, h) < std::tuple(adopted_dist, adopted_head)) {
      adopted_head = h;
      adopted_dist = d;
    }
  }

  rep.clustering = c;
  rep.clustering.head_of.push_back(kInvalidNode);
  rep.clustering.dist_to_head.push_back(kUnreachable);
  rep.clustering.cluster_of.push_back(0);

  if (adopted_head != kInvalidNode) {
    rep.outcome = JoinOutcome::kJoinedExistingCluster;
    rep.clustering.head_of[new_id] = adopted_head;
    rep.clustering.dist_to_head[new_id] = adopted_dist;
  } else {
    rep.outcome = JoinOutcome::kBecameClusterhead;
    rep.clustering.head_of[new_id] = new_id;
    rep.clustering.dist_to_head[new_id] = 0;
    rep.clustering.heads.insert(
        std::lower_bound(rep.clustering.heads.begin(),
                         rep.clustering.heads.end(), new_id),
        new_id);
  }
  // Rebuild cluster indices against the (possibly grown) head list.
  for (NodeId v = 0; v < rep.graph.num_nodes(); ++v) {
    const auto it =
        std::lower_bound(rep.clustering.heads.begin(),
                         rep.clustering.heads.end(),
                         rep.clustering.head_of[v]);
    KHOP_ASSERT(it != rep.clustering.heads.end() &&
                    *it == rep.clustering.head_of[v],
                "join produced inconsistent head_of");
    rep.clustering.cluster_of[v] = static_cast<std::uint32_t>(
        std::distance(rep.clustering.heads.begin(), it));
  }

  // Did the newcomer's links witness a cluster adjacency that did not exist
  // before? (Locally detectable: compare its neighbors' clusters.)
  const auto old_pairs = adjacent_cluster_pairs(g, c);
  const auto new_pairs = adjacent_cluster_pairs(rep.graph, rep.clustering);
  rep.adjacency_changed =
      rep.outcome == JoinOutcome::kBecameClusterhead ||
      new_pairs.size() != old_pairs.size();

  if (rep.adjacency_changed) {
    rep.backbone = build_backbone(rep.graph, rep.clustering, pipeline);
  } else {
    // CDS untouched: translate the old backbone (ids are stable).
    rep.backbone = b;
  }
  rep.validation_error = validate_backbone(rep.graph, rep.backbone);
  return rep;
}

}  // namespace khop
