/// \file rotation.hpp
/// Power-aware clusterhead rotation (paper section 3.3): residual energy
/// replaces lowest-ID as the election priority so the costly head role
/// rotates and the network lifetime stretches.
#pragma once

#include <cstddef>
#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/common/rng.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/net/energy.hpp"
#include "khop/net/network.hpp"

namespace khop {

struct RotationConfig {
  Hops k = 2;
  Pipeline pipeline = Pipeline::kAcLmst;
  PriorityRule priority = PriorityRule::kHighestEnergy;
  std::size_t max_epochs = 200;
  EnergyConfig energy;
};

struct RotationEpoch {
  std::size_t epoch = 0;
  std::size_t alive = 0;
  std::size_t heads = 0;
  std::size_t gateways = 0;
  std::size_t head_churn = 0;  ///< heads not heads in the previous epoch
  double min_residual = 0.0;
  double mean_residual = 0.0;
};

struct RotationResult {
  std::vector<RotationEpoch> epochs;
  /// First epoch at which some node's energy hit zero (the usual lifetime
  /// metric); equals epochs.size() if nobody died.
  std::size_t first_death_epoch = 0;
  /// True when the run stopped because the alive subgraph disconnected.
  bool stopped_disconnected = false;
};

/// Runs rotating re-clustering epochs until max_epochs, the alive subgraph
/// disconnects, or fewer than 2 nodes remain.
RotationResult run_rotation(const AdHocNetwork& net, const RotationConfig& cfg,
                            Rng& rng);

}  // namespace khop
