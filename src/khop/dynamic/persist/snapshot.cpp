#include "khop/dynamic/persist/snapshot.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "khop/common/error.hpp"
#include "khop/dynamic/persist/binio.hpp"
#include "khop/dynamic/persist/crc32c.hpp"

namespace khop::persist {

namespace {

enum : std::uint32_t {
  kEndTag = 0,
  kMetaTag = 1,
  kGraphTag = 2,
  kClusteringTag = 3,
  kStatsTag = 4,
  kLinksTag = 5,
};

void put_section(ByteWriter& out, std::uint32_t tag, const std::string& body) {
  out.put_u32(tag);
  out.put_u64(body.size());
  out.put_bytes(body);
  out.put_u32(crc32c(body));
}

/// Reads the next section, which must carry \p want_tag, and verifies its
/// checksum. Returns the payload (a view into the file bytes).
std::string_view get_section(ByteReader& in, std::uint32_t want_tag) {
  const std::uint32_t tag = in.get_u32();
  if (tag != want_tag) {
    throw CorruptState("snapshot: expected section " +
                       std::to_string(want_tag) + ", found " +
                       std::to_string(tag));
  }
  const std::uint64_t len = in.get_u64();
  if (len > in.remaining()) {
    throw CorruptState("snapshot: section " + std::to_string(tag) +
                       " length " + std::to_string(len) +
                       " exceeds remaining file size");
  }
  const std::string_view payload = in.get_bytes(static_cast<std::size_t>(len));
  const std::uint32_t crc = in.get_u32();
  if (crc32c(payload) != crc) {
    throw CorruptState("snapshot: checksum mismatch in section " +
                       std::to_string(tag));
  }
  return payload;
}

void put_counters(ByteWriter& w, const ChurnCounters& c) {
  w.put_u64(c.events);
  w.put_u64(c.fails);
  w.put_u64(c.joins);
  w.put_u64(c.link_downs);
  w.put_u64(c.link_ups);
  w.put_u64(c.noop_events);
  w.put_u64(c.full_rebuilds);
  w.put_u64(c.orphans);
  w.put_u64(c.reaffiliations);
  w.put_u64(c.new_heads);
  w.put_u64(c.heads_resweeped);
  w.put_u64(c.touched_nodes);
  w.put_u64(c.partitions);
  w.put_u64(c.merges);
  w.put_u64(c.audits);
}

void get_counters(ByteReader& r, ChurnCounters& c) {
  c.events = r.get_u64();
  c.fails = r.get_u64();
  c.joins = r.get_u64();
  c.link_downs = r.get_u64();
  c.link_ups = r.get_u64();
  c.noop_events = r.get_u64();
  c.full_rebuilds = r.get_u64();
  c.orphans = r.get_u64();
  c.reaffiliations = r.get_u64();
  c.new_heads = r.get_u64();
  c.heads_resweeped = r.get_u64();
  c.touched_nodes = r.get_u64();
  c.partitions = r.get_u64();
  c.merges = r.get_u64();
  c.audits = r.get_u64();
}

}  // namespace

std::string encode_snapshot(const ChurnEngine& engine, std::uint64_t cursor) {
  const DynamicGraph& g = engine.graph();
  const Clustering& c = engine.clustering();
  const std::size_t cap = g.capacity();

  ByteWriter out;
  out.put_bytes(kSnapshotMagic);

  {
    ByteWriter meta;
    meta.put_u64(cursor);
    meta.put_u64(cap);
    meta.put_u32(engine.k());
    meta.put_u8(static_cast<std::uint8_t>(engine.pipeline()));
    meta.put_u64(engine.num_components());
    put_section(out, kMetaTag, meta.bytes());
  }
  {
    ByteWriter graph;
    for (NodeId u = 0; u < cap; ++u) {
      graph.put_u8(g.alive(u) ? 1 : 0);
      const auto nbrs = g.neighbors(u);
      graph.put_u32(static_cast<std::uint32_t>(nbrs.size()));
      for (NodeId v : nbrs) graph.put_u32(v);
    }
    put_section(out, kGraphTag, graph.bytes());
  }
  {
    ByteWriter cl;
    cl.put_u32(static_cast<std::uint32_t>(c.heads.size()));
    for (NodeId h : c.heads) cl.put_u32(h);
    for (NodeId v = 0; v < cap; ++v) cl.put_u32(c.head_of[v]);
    for (NodeId v = 0; v < cap; ++v) cl.put_u32(c.dist_to_head[v]);
    put_section(out, kClusteringTag, cl.bytes());
  }
  {
    ByteWriter st;
    put_counters(st, engine.stats());
    put_counters(st, engine.stats().published);
    put_section(out, kStatsTag, st.bytes());
  }
  {
    ByteWriter li;
    const auto& links = engine.virtual_links().all();
    li.put_u32(static_cast<std::uint32_t>(links.size()));
    for (const VirtualLink& l : links) {
      li.put_u32(l.u);
      li.put_u32(l.v);
      li.put_u32(l.hops);
      li.put_u32(static_cast<std::uint32_t>(l.path.size()));
      for (NodeId w : l.path) li.put_u32(w);
    }
    put_section(out, kLinksTag, li.bytes());
  }
  put_section(out, kEndTag, std::string());
  return std::move(out).take();
}

SnapshotData decode_snapshot(std::string_view bytes) {
  if (bytes.size() < kSnapshotMagic.size() ||
      bytes.substr(0, kSnapshotMagic.size()) != kSnapshotMagic) {
    throw CorruptState("snapshot: bad magic (not a KHOPSNP1 file)");
  }
  ByteReader in(bytes.substr(kSnapshotMagic.size()));

  ByteReader meta(get_section(in, kMetaTag));
  const std::uint64_t cursor = meta.get_u64();
  const std::uint64_t cap64 = meta.get_u64();
  const Hops k = meta.get_u32();
  const std::uint8_t pipeline_raw = meta.get_u8();
  const std::uint64_t num_components = meta.get_u64();
  if (!meta.at_end()) throw CorruptState("snapshot: oversized meta section");
  if (pipeline_raw > static_cast<std::uint8_t>(Pipeline::kGmst)) {
    throw CorruptState("snapshot: unknown pipeline " +
                       std::to_string(pipeline_raw));
  }
  // Guards the adjacency allocation below against a corrupt capacity that
  // slipped past the checksum (e.g. a hand-damaged fixture).
  if (cap64 > (std::uint64_t{1} << 32)) {
    throw CorruptState("snapshot: implausible capacity " +
                       std::to_string(cap64));
  }
  const std::size_t cap = static_cast<std::size_t>(cap64);

  ByteReader gr(get_section(in, kGraphTag));
  std::vector<std::vector<NodeId>> adj(cap);
  std::vector<char> alive(cap, 0);
  for (std::size_t u = 0; u < cap; ++u) {
    alive[u] = static_cast<char>(gr.get_u8() != 0);
    const std::uint32_t deg = gr.get_u32();
    if (std::uint64_t{deg} * 4 > gr.remaining()) {
      throw CorruptState("snapshot: node degree " + std::to_string(deg) +
                         " exceeds section size");
    }
    adj[u].reserve(deg);
    for (std::uint32_t i = 0; i < deg; ++i) adj[u].push_back(gr.get_u32());
  }
  if (!gr.at_end()) throw CorruptState("snapshot: oversized graph section");

  ByteReader cl(get_section(in, kClusteringTag));
  Clustering c;
  c.k = k;
  const std::uint32_t head_count = cl.get_u32();
  if (std::uint64_t{head_count} * 4 > cl.remaining()) {
    throw CorruptState("snapshot: head count " + std::to_string(head_count) +
                       " exceeds section size");
  }
  c.heads.reserve(head_count);
  for (std::uint32_t i = 0; i < head_count; ++i) c.heads.push_back(cl.get_u32());
  c.head_of.reserve(cap);
  for (std::size_t v = 0; v < cap; ++v) c.head_of.push_back(cl.get_u32());
  c.dist_to_head.reserve(cap);
  for (std::size_t v = 0; v < cap; ++v) c.dist_to_head.push_back(cl.get_u32());
  if (!cl.at_end()) {
    throw CorruptState("snapshot: oversized clustering section");
  }

  ByteReader st(get_section(in, kStatsTag));
  ChurnStats stats;
  get_counters(st, stats);
  get_counters(st, stats.published);
  if (!st.at_end()) throw CorruptState("snapshot: oversized stats section");

  ByteReader li(get_section(in, kLinksTag));
  const std::uint32_t link_count = li.get_u32();
  std::vector<VirtualLink> links;
  if (std::uint64_t{link_count} * 16 > li.remaining()) {
    throw CorruptState("snapshot: link count " + std::to_string(link_count) +
                       " exceeds section size");
  }
  links.reserve(link_count);
  for (std::uint32_t i = 0; i < link_count; ++i) {
    VirtualLink l;
    l.u = li.get_u32();
    l.v = li.get_u32();
    l.hops = li.get_u32();
    const std::uint32_t path_len = li.get_u32();
    if (l.u >= l.v) {
      throw CorruptState("snapshot: virtual link endpoints unordered");
    }
    if (std::uint64_t{path_len} * 4 > li.remaining()) {
      throw CorruptState("snapshot: link path length " +
                         std::to_string(path_len) + " exceeds section size");
    }
    l.path.reserve(path_len);
    for (std::uint32_t j = 0; j < path_len; ++j) l.path.push_back(li.get_u32());
    links.push_back(std::move(l));
  }
  if (!li.at_end()) throw CorruptState("snapshot: oversized links section");
  // from_links requires unique (u, v) keys — enforce before handing over.
  {
    std::vector<std::pair<NodeId, NodeId>> keys;
    keys.reserve(links.size());
    for (const VirtualLink& l : links) keys.emplace_back(l.u, l.v);
    std::sort(keys.begin(), keys.end());
    if (std::adjacent_find(keys.begin(), keys.end()) != keys.end()) {
      throw CorruptState("snapshot: duplicate virtual link");
    }
  }

  ByteReader end(get_section(in, kEndTag));
  if (!end.at_end()) throw CorruptState("snapshot: non-empty end section");
  if (!in.at_end()) {
    throw CorruptState("snapshot: " + std::to_string(in.remaining()) +
                       " trailing bytes after end section");
  }

  SnapshotData out{
      ChurnEngineRestore{
          DynamicGraph::from_state(std::move(adj), std::move(alive)), k,
          static_cast<Pipeline>(pipeline_raw), std::move(c),
          VirtualLinkMap::from_links(std::move(links)),
          static_cast<std::size_t>(num_components), stats},
      cursor};
  return out;
}

SnapshotData load_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CorruptState("snapshot: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string bytes = std::move(ss).str();
  return decode_snapshot(bytes);
}

}  // namespace khop::persist
