/// \file store.hpp
/// Crash-safe maintenance: DurableChurnEngine wraps a ChurnEngine with a
/// snapshot + write-ahead-log persistence directory so that a process crash
/// at ANY point loses at most the un-flushed WAL tail and recovery
/// reconverges bit-exactly (tests/test_crash_recovery.cpp).
///
/// Directory layout (all files little-endian binary, see snapshot.hpp /
/// wal.hpp for the formats):
///
///   snap-<cursor>.khsnp   full engine state at that trace cursor
///   wal-<cursor>.khwal    events from that cursor until the next snapshot
///
/// Write protocol:
///   append(event) -> active WAL (flushed every wal_flush_every records)
///   apply(event)  -> engine
///   every snapshot_every events: encode state -> snap-*.tmp -> fsync-free
///   atomic rename -> rotate WAL to a fresh segment -> retire files beyond
///   keep_snapshots generations
///
/// Recovery protocol (recover()):
///   newest snapshot that decodes + checksums clean (older ones are
///   fallbacks, each rejection reason reported) -> replay the WAL chain
///   from its cursor tolerating a torn tail -> open a FRESH segment at the
///   recovered cursor. A fresh segment (never appending to a torn one)
///   keeps every segment's implicit event indexing contiguous.
///
/// The whole path is instrumented with the crash points of crash_point.hpp
/// and the persist.* metrics of docs/observability.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "khop/dynamic/churn_engine.hpp"
#include "khop/dynamic/persist/wal.hpp"

namespace khop::persist {

struct DurabilityOptions {
  /// Snapshot after every N applied events (0 = only manual snapshot()).
  std::size_t snapshot_every = 256;
  /// WAL flush batching: records buffered before hitting the file. 1 =
  /// every append durable immediately; larger batches trade crash-window
  /// for fewer writes.
  std::size_t wal_flush_every = 1;
  /// Snapshot generations kept for corruption fallback (>= 1). WAL
  /// segments are retired once no kept snapshot needs them.
  std::size_t keep_snapshots = 2;
};

/// What recover() did, for callers and tests.
struct RecoveryReport {
  bool used_snapshot = false;        ///< false: clean-slate directory
  std::uint64_t snapshot_cursor = 0; ///< cursor of the snapshot loaded
  std::uint64_t cursor = 0;          ///< cursor after WAL replay
  std::size_t replayed_events = 0;
  /// One "<file>: <reason>" line per newer snapshot that was rejected
  /// before a valid one loaded.
  std::vector<std::string> fallbacks;
  /// Non-empty when the replayed WAL chain ended in a torn tail.
  std::string wal_tail;
};

class DurableChurnEngine {
 public:
  /// Fresh start: builds the engine from \p g0, then seeds \p dir (created
  /// if absent) with the cursor-0 snapshot and an empty WAL segment, so a
  /// crash immediately after construction is already recoverable.
  static DurableChurnEngine create(const Graph& g0, Hops k, Pipeline pipeline,
                                   std::string dir,
                                   DurabilityOptions dopts = {},
                                   ChurnEngineOptions eopts = {});

  /// Recovers from \p dir per the file-header protocol. Throws CorruptState
  /// when no snapshot loads at all (every generation corrupt or the
  /// directory was never seeded) or when the WAL chain has a gap.
  static DurableChurnEngine recover(std::string dir,
                                    RecoveryReport* report = nullptr,
                                    DurabilityOptions dopts = {},
                                    ChurnEngineOptions eopts = {});

  /// WAL-append (durability first), then engine apply, then auto-snapshot
  /// at the snapshot_every boundary.
  ChurnEventReport apply(const ChurnEvent& e);

  /// Writes a snapshot at the current cursor, rotates the WAL, retires
  /// files beyond keep_snapshots generations.
  void snapshot();

  /// Flushes buffered WAL records (a clean shutdown point; the destructor
  /// deliberately does NOT flush, so an injected crash unwinding through it
  /// loses the buffered tail exactly like a real crash).
  void flush_wal() { wal_.flush(); }

  /// Events applied since create() (== the trace cursor).
  std::uint64_t cursor() const noexcept { return cursor_; }

  ChurnEngine& engine() noexcept { return engine_; }
  const ChurnEngine& engine() const noexcept { return engine_; }
  const std::string& dir() const noexcept { return dir_; }

 private:
  DurableChurnEngine(ChurnEngine engine, std::string dir,
                     DurabilityOptions dopts, std::uint64_t cursor);

  void open_fresh_segment();
  std::string snapshot_path(std::uint64_t cursor) const;
  std::string wal_path(std::uint64_t cursor) const;
  void retire_old_files();

  ChurnEngine engine_;
  std::string dir_;
  DurabilityOptions dopts_;
  std::uint64_t cursor_ = 0;
  WalWriter wal_;
};

}  // namespace khop::persist
