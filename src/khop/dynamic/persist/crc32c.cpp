#include "khop/dynamic/persist/crc32c.hpp"

#include <array>

namespace khop::persist {

namespace {

/// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

struct Tables {
  std::uint32_t t[8][256];
};

constexpr Tables make_tables() {
  Tables tb{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (c >> 1) ^ kPoly : c >> 1;
    }
    tb.t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    for (int s = 1; s < 8; ++s) {
      tb.t[s][i] = (tb.t[s - 1][i] >> 8) ^ tb.t[0][tb.t[s - 1][i] & 0xFFu];
    }
  }
  return tb;
}

constexpr Tables kTables = make_tables();

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~0u;
  while (len >= 8) {
    // Slice-by-8: fold eight bytes per step through the eight tables.
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables.t[7][lo & 0xFFu] ^ kTables.t[6][(lo >> 8) & 0xFFu] ^
          kTables.t[5][(lo >> 16) & 0xFFu] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    len -= 8;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace khop::persist
