#include "khop/dynamic/persist/wal.hpp"

#include <sstream>
#include <utility>

#include "khop/common/error.hpp"
#include "khop/dynamic/persist/binio.hpp"
#include "khop/dynamic/persist/crash_point.hpp"
#include "khop/dynamic/persist/crc32c.hpp"
#include "khop/obs/metrics.hpp"

namespace khop::persist {

namespace {

constexpr std::size_t kHeaderBytes = 8 + 8 + 4;  // magic, cursor, crc

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CorruptState("wal: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

}  // namespace

std::string encode_wal_record(const ChurnEvent& e) {
  ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(e.type));
  w.put_u32(e.a);
  w.put_u32(e.b);
  w.put_u32(static_cast<std::uint32_t>(e.neighbors.size()));
  for (NodeId v : e.neighbors) w.put_u32(v);
  return std::move(w).take();
}

ChurnEvent decode_wal_record(std::string_view payload) {
  ByteReader r(payload);
  ChurnEvent e;
  const std::uint8_t type = r.get_u8();
  if (type > static_cast<std::uint8_t>(ChurnEventType::kLinkUp)) {
    throw CorruptState("wal: unknown event type " + std::to_string(type));
  }
  e.type = static_cast<ChurnEventType>(type);
  e.a = r.get_u32();
  e.b = r.get_u32();
  const std::uint32_t count = r.get_u32();
  if (r.remaining() != std::size_t{count} * 4) {
    throw CorruptState("wal: neighbor count " + std::to_string(count) +
                       " does not match payload size");
  }
  e.neighbors.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) e.neighbors.push_back(r.get_u32());
  return e;
}

WalSegment read_wal_file(const std::string& path,
                         std::uint64_t expected_start) {
  const std::string bytes = read_whole_file(path);
  WalSegment seg;
  seg.start = expected_start;

  if (bytes.size() < kHeaderBytes ||
      std::string_view(bytes).substr(0, 8) != kWalMagic) {
    seg.clean = false;
    seg.why = "damaged header (magic/size)";
    return seg;
  }
  ByteReader hdr(std::string_view(bytes).substr(8, 12));
  const std::uint64_t start = hdr.get_u64();
  const std::uint32_t hdr_crc = hdr.get_u32();
  if (crc32c(bytes.data() + 8, 8) != hdr_crc) {
    seg.clean = false;
    seg.why = "damaged header (checksum)";
    return seg;
  }
  if (start != expected_start) {
    seg.clean = false;
    seg.why = "header cursor " + std::to_string(start) +
              " disagrees with file name cursor " +
              std::to_string(expected_start);
    return seg;
  }

  std::size_t pos = kHeaderBytes;
  seg.valid_bytes = pos;
  const std::string_view all(bytes);
  while (bytes.size() - pos >= 8) {
    ByteReader frame(all.substr(pos, 8));
    const std::uint32_t len = frame.get_u32();
    const std::uint32_t rec_crc = frame.get_u32();
    if (bytes.size() - pos - 8 < len) {
      seg.clean = false;
      seg.why = "torn record at offset " + std::to_string(pos);
      return seg;
    }
    const std::string_view payload = all.substr(pos + 8, len);
    if (crc32c(payload) != rec_crc) {
      seg.clean = false;
      seg.why = "record checksum mismatch at offset " + std::to_string(pos);
      return seg;
    }
    try {
      seg.events.push_back(decode_wal_record(payload));
    } catch (const CorruptState& e) {
      // CRC-valid but structurally malformed: genuine corruption, keep the
      // prefix and let recovery decide whether the chain still closes.
      seg.clean = false;
      seg.why = std::string("malformed record at offset ") +
                std::to_string(pos) + ": " + e.what();
      return seg;
    }
    pos += 8 + len;
    seg.valid_bytes = pos;
  }
  if (pos != bytes.size()) {
    seg.clean = false;
    seg.why = "torn record header at offset " + std::to_string(pos);
  }
  return seg;
}

WalWriter WalWriter::create(const std::string& path,
                            std::uint64_t start_cursor,
                            std::size_t flush_every) {
  WalWriter w;
  w.out_.open(path, std::ios::binary | std::ios::trunc);
  if (!w.out_) throw Error("wal: cannot create " + path);
  w.path_ = path;
  w.flush_every_ = flush_every == 0 ? 1 : flush_every;
  obs::Registry& reg = obs::Registry::global();
  w.wal_appends_ = &reg.counter("persist.wal_appends");
  w.wal_flushes_ = &reg.counter("persist.wal_flushes");
  w.wal_bytes_ = &reg.counter("persist.wal_bytes");

  ByteWriter hdr;
  hdr.put_bytes(kWalMagic);
  hdr.put_u64(start_cursor);
  hdr.put_u32(crc32c(hdr.bytes().data() + 8, 8));
  w.out_.write(hdr.bytes().data(),
               static_cast<std::streamsize>(hdr.bytes().size()));
  w.out_.flush();
  if (!w.out_) throw Error("wal: write failed for " + path);
  w.wal_bytes_->add(hdr.bytes().size());
  return w;
}

void WalWriter::append(const ChurnEvent& e) {
  CrashPoints& cp = CrashPoints::global();
  cp.hit("wal.append");

  const std::string payload = encode_wal_record(e);
  ByteWriter frame;
  frame.put_u32(static_cast<std::uint32_t>(payload.size()));
  frame.put_u32(crc32c(payload));
  frame.put_bytes(payload);

  if (cp.fires("wal.torn")) {
    // Crash mid-write of a flush that included this record: everything
    // buffered so far reaches the file, plus half of this record's frame.
    pending_.append(frame.bytes(), 0, frame.bytes().size() / 2 + 1);
    out_.write(pending_.data(), static_cast<std::streamsize>(pending_.size()));
    out_.flush();
    pending_.clear();
    pending_records_ = 0;
    throw CrashInjected("crash injected at wal.torn");
  }

  pending_.append(frame.bytes());
  ++pending_records_;
  ++appended_;
  if (wal_appends_ != nullptr) wal_appends_->inc();
  if (pending_records_ >= flush_every_) {
    cp.hit("wal.flush");  // crash here loses the whole pending batch
    flush();
  }
}

void WalWriter::flush() {
  if (pending_.empty()) return;
  out_.write(pending_.data(), static_cast<std::streamsize>(pending_.size()));
  out_.flush();
  if (!out_) throw Error("wal: write failed for " + path_);
  if (wal_bytes_ != nullptr) wal_bytes_->add(pending_.size());
  if (wal_flushes_ != nullptr) wal_flushes_->inc();
  pending_.clear();
  pending_records_ = 0;
}

void WalWriter::close() {
  if (!out_.is_open()) return;
  flush();
  out_.close();
}

void WalWriter::abandon() {
  pending_.clear();
  pending_records_ = 0;
  if (out_.is_open()) out_.close();
}

}  // namespace khop::persist
