/// \file wal.hpp
/// Write-ahead event log for the churn engine.
///
/// One WAL *segment* file covers a contiguous run of trace events starting
/// at a fixed cursor (event index). The durable engine appends every
/// ChurnEvent to the active segment *before* applying it, so after a crash
/// the events since the last snapshot can be replayed; a new segment is
/// started (rotated) at every snapshot, and the snapshot's cursor names the
/// segment that continues it (`wal-<cursor>.khwal`).
///
/// On-disk layout (little-endian throughout):
///
///   header   "KHOPWAL1" | u64 start_cursor | u32 crc32c(start_cursor bytes)
///   record*  u32 payload_len | u32 crc32c(payload) | payload
///   payload  u8 type | u32 a | u32 b | u32 nbr_count | u32 nbr_ids...
///
/// Torn-tail tolerance: a reader keeps the longest valid record prefix and
/// reports the tail as dirty — a crash mid-write loses at most the records
/// that had not fully reached the file, never previously durable ones. A
/// segment whose header is damaged is treated as dirty-and-empty.
///
/// Durability contract: append() buffers; records only survive a crash once
/// flush() ran (automatic every `flush_every` appends). abandon() models the
/// crash itself — it drops the buffered bytes instead of letting the stream
/// destructor quietly flush them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "khop/dynamic/churn_trace.hpp"

namespace khop::obs {
class Counter;
}

namespace khop::persist {

inline constexpr std::string_view kWalMagic = "KHOPWAL1";

/// Parsed contents of one segment file.
struct WalSegment {
  std::uint64_t start = 0;         ///< cursor of the first record
  std::vector<ChurnEvent> events;  ///< longest valid record prefix
  bool clean = true;               ///< false: torn tail or damaged header
  std::string why;                 ///< reason when !clean
  std::size_t valid_bytes = 0;     ///< file prefix covered by valid records
};

/// Encodes one event as a WAL record payload (exposed for tests and for the
/// fixture validator's documentation).
std::string encode_wal_record(const ChurnEvent& e);

/// Decodes a record payload. Throws CorruptState on malformed bytes.
ChurnEvent decode_wal_record(std::string_view payload);

/// Reads a segment file, tolerating a torn tail (see file header).
/// \p expected_start is the cursor implied by the file name; a readable
/// header that disagrees marks the segment dirty-and-empty rather than
/// trusting either number. Throws CorruptState only if the file cannot be
/// opened at all.
WalSegment read_wal_file(const std::string& path, std::uint64_t expected_start);

/// Append-side handle for the active segment. Instrumented with the
/// "wal.append" / "wal.torn" / "wal.flush" crash points (crash_point.hpp).
class WalWriter {
 public:
  WalWriter() = default;
  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  /// Creates (truncates) \p path with a segment header for \p start_cursor.
  /// The header is flushed immediately. flush_every = 1 makes every append
  /// durable; larger values batch.
  static WalWriter create(const std::string& path, std::uint64_t start_cursor,
                          std::size_t flush_every);

  /// Buffers one record; flushes when flush_every records are pending.
  void append(const ChurnEvent& e);

  /// Writes buffered records to the file and flushes the stream.
  void flush();

  /// flush() + close the stream.
  void close();

  /// Crash simulation: drops buffered records WITHOUT writing them and
  /// closes the stream, so an in-process "crash" actually loses unflushed
  /// appends (a destructor-flushed stream would defeat the model).
  void abandon();

  bool is_open() const noexcept { return out_.is_open(); }
  const std::string& path() const noexcept { return path_; }

  /// Records appended so far, including still-buffered ones.
  std::uint64_t appended() const noexcept { return appended_; }

 private:
  std::ofstream out_;
  std::string path_;
  std::string pending_;          ///< framed records not yet written
  std::size_t pending_records_ = 0;
  std::size_t flush_every_ = 1;
  std::uint64_t appended_ = 0;
  obs::Counter* wal_appends_ = nullptr;
  obs::Counter* wal_flushes_ = nullptr;
  obs::Counter* wal_bytes_ = nullptr;
};

}  // namespace khop::persist
