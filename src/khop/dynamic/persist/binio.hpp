/// \file binio.hpp
/// Little-endian fixed-width binary encode/decode over in-memory buffers —
/// the byte-level vocabulary shared by the snapshot and write-ahead-log
/// formats. Explicit byte shuffling (never memcpy of structs) keeps the
/// on-disk layout platform-independent, so a snapshot written on one machine
/// loads bit-identically on any other.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "khop/common/error.hpp"

namespace khop::persist {

/// Appends fixed-width little-endian values to an owned byte buffer.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void put_bytes(std::string_view bytes) { buf_.append(bytes); }

  const std::string& bytes() const noexcept { return buf_; }
  std::string take() && { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Reads fixed-width little-endian values from a byte range, throwing
/// CorruptState on any out-of-bounds read (truncated input).
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : data_(bytes) {}

  std::uint8_t get_u8() {
    require(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t get_u32() {
    require(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_++]))
           << (8 * i);
    }
    return v;
  }

  std::uint64_t get_u64() {
    require(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_++]))
           << (8 * i);
    }
    return v;
  }

  std::string_view get_bytes(std::size_t n) {
    require(n);
    const std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

 private:
  void require(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw CorruptState("persist: truncated payload (wanted " +
                         std::to_string(n) + " bytes, " +
                         std::to_string(data_.size() - pos_) + " left)");
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace khop::persist
