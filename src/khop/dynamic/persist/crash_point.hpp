/// \file crash_point.hpp
/// Fault-injection hooks for the persistence path.
///
/// Every interesting point of the snapshot/WAL machinery is named and
/// instrumented: arming a point makes its N-th subsequent hit throw
/// CrashInjected, which unwinds the whole stack exactly like a process
/// crash would (buffered-but-unflushed WAL bytes are abandoned, torn files
/// are left behind). The crash-recovery property test sweeps every named
/// point and proves recovery re-converges bit-exact from each; the registry
/// is process-global because the persistence path is serial by contract.
///
/// Disarmed cost: one relaxed atomic load per hit site — the production
/// path never pays for the harness.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "khop/common/error.hpp"

namespace khop::persist {

/// Thrown by an armed crash point. Derived from khop::Error but caught
/// nowhere inside the library except to abandon buffered WAL state — it
/// must reach the harness.
class CrashInjected : public Error {
 public:
  using Error::Error;
};

/// Every instrumented point, in path order. The property test iterates this
/// list; keep it in sync with the fires()/hit() sites in wal.cpp/store.cpp
/// (docs/robustness.md documents what on-disk state each one leaves).
inline constexpr const char* kCrashPointNames[] = {
    "wal.append",              // before a record is buffered (event lost)
    "wal.torn",                // half a record reaches the file, then crash
    "wal.flush",               // buffered records dropped at a flush boundary
    "snapshot.begin",          // before the tmp file is opened
    "snapshot.torn",           // tmp file half-written, then crash
    "snapshot.after_tmp",      // tmp complete, rename never happens
    "snapshot.after_rename",   // snapshot live, WAL not yet rotated
    "snapshot.after_rotate",   // new WAL segment live, old files not retired
};

/// Process-global arm/fire state for the named crash points.
class CrashPoints {
 public:
  static CrashPoints& global();

  /// Arms \p point: the \p countdown-th subsequent fires()/hit() of that
  /// point throws/returns true (countdown >= 1). Re-arming replaces any
  /// previous arming.
  void arm(std::string_view point, std::uint64_t countdown = 1);

  void disarm();

  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// True when \p point is armed and its countdown just expired (the caller
  /// crashes after site-specific tearing). Decrements the countdown.
  bool fires(const char* point);

  /// fires() + throw CrashInjected — the plain (non-tearing) sites.
  void hit(const char* point) {
    if (fires(point)) throw CrashInjected(std::string("crash injected at ") + point);
  }

 private:
  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::string point_;
  std::uint64_t countdown_ = 0;
};

}  // namespace khop::persist
