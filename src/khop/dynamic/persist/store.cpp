#include "khop/dynamic/persist/store.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <optional>
#include <sstream>
#include <utility>

#include "khop/common/error.hpp"
#include "khop/dynamic/persist/crash_point.hpp"
#include "khop/dynamic/persist/snapshot.hpp"
#include "khop/obs/metrics.hpp"
#include "khop/obs/trace.hpp"

namespace khop::persist {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kSnapPrefix = "snap-";
constexpr std::string_view kSnapSuffix = ".khsnp";
constexpr std::string_view kWalPrefix = "wal-";
constexpr std::string_view kWalSuffix = ".khwal";

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

std::string padded(std::uint64_t cursor) {
  std::ostringstream os;
  os << std::setw(12) << std::setfill('0') << cursor;
  return std::move(os).str();
}

/// Extracts the cursor from "<prefix><digits><suffix>", or false if the
/// name has any other shape (stray files are ignored, never deleted).
bool parse_cursor(const std::string& name, std::string_view prefix,
                  std::string_view suffix, std::uint64_t& cursor) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  cursor = 0;
  for (std::size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    const char ch = name[i];
    if (ch < '0' || ch > '9') return false;
    cursor = cursor * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return true;
}

struct NumberedFile {
  std::uint64_t cursor = 0;
  std::string path;
};

/// All "<prefix><digits><suffix>" files in \p dir, ascending by cursor.
std::vector<NumberedFile> list_numbered(const std::string& dir,
                                        std::string_view prefix,
                                        std::string_view suffix) {
  std::vector<NumberedFile> out;
  if (!fs::is_directory(dir)) return out;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    std::uint64_t cursor = 0;
    if (parse_cursor(e.path().filename().string(), prefix, suffix, cursor)) {
      out.push_back({cursor, e.path().string()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const NumberedFile& a, const NumberedFile& b) {
              return a.cursor < b.cursor;
            });
  return out;
}

}  // namespace

DurableChurnEngine::DurableChurnEngine(ChurnEngine engine, std::string dir,
                                       DurabilityOptions dopts,
                                       std::uint64_t cursor)
    : engine_(std::move(engine)),
      dir_(std::move(dir)),
      dopts_(dopts),
      cursor_(cursor) {
  if (dopts_.keep_snapshots == 0) dopts_.keep_snapshots = 1;
}

std::string DurableChurnEngine::snapshot_path(std::uint64_t cursor) const {
  return dir_ + "/" + std::string(kSnapPrefix) + padded(cursor) +
         std::string(kSnapSuffix);
}

std::string DurableChurnEngine::wal_path(std::uint64_t cursor) const {
  return dir_ + "/" + std::string(kWalPrefix) + padded(cursor) +
         std::string(kWalSuffix);
}

void DurableChurnEngine::open_fresh_segment() {
  wal_ = WalWriter::create(wal_path(cursor_), cursor_, dopts_.wal_flush_every);
}

DurableChurnEngine DurableChurnEngine::create(const Graph& g0, Hops k,
                                              Pipeline pipeline,
                                              std::string dir,
                                              DurabilityOptions dopts,
                                              ChurnEngineOptions eopts) {
  fs::create_directories(dir);
  DurableChurnEngine d(ChurnEngine(g0, k, pipeline, eopts), std::move(dir),
                       dopts, /*cursor=*/0);
  // Seed the directory: the cursor-0 snapshot + empty segment make a crash
  // at ANY later point recoverable without a from-scratch rebuild.
  d.snapshot();
  return d;
}

ChurnEventReport DurableChurnEngine::apply(const ChurnEvent& e) {
  wal_.append(e);  // durability first: the event outlives the process
  ChurnEventReport report = engine_.apply(e);
  ++cursor_;
  if (dopts_.snapshot_every != 0 && cursor_ % dopts_.snapshot_every == 0) {
    snapshot();
  }
  return report;
}

void DurableChurnEngine::snapshot() {
  obs::Span span("persist/snapshot");
  CrashPoints& cp = CrashPoints::global();
  cp.hit("snapshot.begin");
  const auto t0 = std::chrono::steady_clock::now();

  const std::string bytes = encode_snapshot(engine_, cursor_);
  const std::string final_path = snapshot_path(cursor_);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("persist: cannot create " + tmp_path);
    if (cp.fires("snapshot.torn")) {
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
      out.flush();
      throw CrashInjected("crash injected at snapshot.torn");
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) throw Error("persist: write failed for " + tmp_path);
  }
  cp.hit("snapshot.after_tmp");
  fs::rename(tmp_path, final_path);  // atomic publish
  cp.hit("snapshot.after_rename");

  // Rotate: the snapshot owns everything before cursor_, so the next
  // segment starts exactly there.
  wal_.close();
  open_fresh_segment();
  cp.hit("snapshot.after_rotate");
  retire_old_files();

  obs::Registry& reg = obs::Registry::global();
  reg.counter("persist.snapshots").inc();
  reg.counter("persist.snapshot_bytes").add(bytes.size());
  reg.histogram("persist.snapshot_us").record(elapsed_us(t0));
  span.arg("bytes", static_cast<std::int64_t>(bytes.size()));
}

DurableChurnEngine DurableChurnEngine::recover(std::string dir,
                                               RecoveryReport* report,
                                               DurabilityOptions dopts,
                                               ChurnEngineOptions eopts) {
  obs::Span span("persist/recover");
  const auto t0 = std::chrono::steady_clock::now();
  obs::Registry& reg = obs::Registry::global();
  RecoveryReport rep;

  // Newest snapshot that loads clean wins; every newer reject is recorded.
  std::vector<NumberedFile> snaps =
      list_numbered(dir, kSnapPrefix, kSnapSuffix);
  std::optional<SnapshotData> snap;
  for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
    try {
      snap.emplace(load_snapshot_file(it->path));
      break;
    } catch (const Error& e) {
      rep.fallbacks.push_back(
          fs::path(it->path).filename().string() + ": " + e.what());
      reg.counter("persist.snapshot_fallbacks").inc();
    }
  }
  if (!snap.has_value()) {
    std::string why = "persist: no loadable snapshot in " + dir;
    for (const std::string& f : rep.fallbacks) why += "\n  " + f;
    throw CorruptState(why);
  }
  rep.used_snapshot = true;
  rep.snapshot_cursor = snap->cursor;

  ChurnEngine engine = ChurnEngine::restore(std::move(snap->state), eopts);

  // Replay the WAL chain from the snapshot cursor. Segments rotate at
  // snapshot boundaries, so anything starting earlier ends at or before
  // this cursor and can be skipped unread.
  std::uint64_t cur = snap->cursor;
  std::size_t replayed = 0;
  for (const NumberedFile& f : list_numbered(dir, kWalPrefix, kWalSuffix)) {
    if (f.cursor < snap->cursor) continue;
    if (f.cursor > cur) {
      throw CorruptState("persist: WAL gap - events resume at " +
                         std::to_string(f.cursor) + " but replay reached " +
                         std::to_string(cur));
    }
    const WalSegment seg = read_wal_file(f.path, f.cursor);
    if (!seg.clean) {
      rep.wal_tail = fs::path(f.path).filename().string() + ": " + seg.why;
    }
    for (std::size_t i = cur - seg.start; i < seg.events.size(); ++i) {
      engine.apply(seg.events[i]);
      ++cur;
      ++replayed;
    }
  }
  rep.cursor = cur;
  rep.replayed_events = replayed;

  DurableChurnEngine d(std::move(engine), std::move(dir), dopts, cur);
  // Always a FRESH segment: appending to a torn or partially-lost segment
  // would put holes in its implicit event indexing.
  d.open_fresh_segment();

  reg.counter("persist.recoveries").inc();
  reg.counter("persist.replayed_events").add(replayed);
  reg.histogram("persist.recovery_us").record(elapsed_us(t0));
  span.arg("replayed", static_cast<std::int64_t>(replayed));
  if (report != nullptr) *report = std::move(rep);
  return d;
}

void DurableChurnEngine::retire_old_files() {
  std::vector<NumberedFile> snaps =
      list_numbered(dir_, kSnapPrefix, kSnapSuffix);
  if (snaps.size() > dopts_.keep_snapshots) {
    snaps.resize(snaps.size() - dopts_.keep_snapshots);  // the victims
    for (const NumberedFile& f : snaps) fs::remove(f.path);
  }
  const std::uint64_t oldest_kept =
      list_numbered(dir_, kSnapPrefix, kSnapSuffix).front().cursor;
  for (const NumberedFile& f : list_numbered(dir_, kWalPrefix, kWalSuffix)) {
    // A fallback to snapshot C replays wal-C onward, so every segment from
    // the oldest kept generation forward must survive.
    if (f.cursor < oldest_kept) fs::remove(f.path);
  }
  for (const fs::directory_entry& e : fs::directory_iterator(dir_)) {
    // Torn tmp files from a crashed earlier snapshot attempt.
    if (e.is_regular_file() && e.path().extension() == ".tmp") {
      fs::remove(e.path());
    }
  }
}

}  // namespace khop::persist
