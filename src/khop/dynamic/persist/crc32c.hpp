/// \file crc32c.hpp
/// CRC32C (Castagnoli polynomial, the iSCSI/SSE4.2 variant) over byte
/// ranges. Every persisted artifact of the durability subsystem — snapshot
/// sections and write-ahead-log records — carries a CRC32C of its payload so
/// torn writes and bit rot are detected on load instead of surfacing as
/// undefined behavior deep inside the engine. tools/validate_snapshot.py
/// implements the same polynomial, so committed fixtures are checkable
/// without building the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace khop::persist {

/// CRC32C of \p len bytes at \p data. Software slice-by-8 implementation
/// (~1 GB/s), deterministic across platforms.
std::uint32_t crc32c(const void* data, std::size_t len) noexcept;

inline std::uint32_t crc32c(std::string_view bytes) noexcept {
  return crc32c(bytes.data(), bytes.size());
}

}  // namespace khop::persist
