#include "khop/dynamic/persist/crash_point.hpp"

namespace khop::persist {

CrashPoints& CrashPoints::global() {
  static CrashPoints instance;
  return instance;
}

void CrashPoints::arm(std::string_view point, std::uint64_t countdown) {
  std::lock_guard<std::mutex> lk(mu_);
  point_.assign(point);
  countdown_ = countdown == 0 ? 1 : countdown;
  armed_.store(true, std::memory_order_relaxed);
}

void CrashPoints::disarm() {
  std::lock_guard<std::mutex> lk(mu_);
  point_.clear();
  countdown_ = 0;
  armed_.store(false, std::memory_order_relaxed);
}

bool CrashPoints::fires(const char* point) {
  if (!armed_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lk(mu_);
  if (countdown_ == 0 || point_ != point) return false;
  if (--countdown_ > 0) return false;
  armed_.store(false, std::memory_order_relaxed);
  return true;
}

}  // namespace khop::persist
