/// \file snapshot.hpp
/// Versioned, checksummed binary snapshot of the full live churn-engine
/// state. Together with the WAL tail (wal.hpp) a snapshot makes maintenance
/// crash-recoverable: load the newest valid snapshot, replay the events
/// after its cursor, and the result is bit-identical to an engine that
/// never crashed (tests/test_crash_recovery.cpp proves this from every
/// injected crash point).
///
/// On-disk layout (little-endian fixed-width throughout; no floats, so a
/// fixture written on one platform is bit-identical everywhere):
///
///   "KHOPSNP1"                                        file magic + version
///   section*   u32 tag | u64 len | payload | u32 crc32c(payload)
///
/// Sections appear in this exact order, every one mandatory:
///
///   1 meta        u64 cursor | u64 capacity | u32 k | u8 pipeline |
///                 u64 num_components
///   2 graph       capacity * (u8 alive | u32 deg | u32 nbr_ids...)
///   3 clustering  u32 head_count | u32 head_ids... |
///                 capacity * u32 head_of | capacity * u32 dist_to_head
///   4 stats       15 * u64 cumulative | 15 * u64 published watermark
///                 (field order of ChurnCounters)
///   5 links       u32 link_count | per link: u32 u | u32 v | u32 hops |
///                 u32 path_len | u32 path_ids...
///   0 end         len 0 (closes the file; trailing bytes are corruption)
///
/// Decoding rejects — with CorruptState — bad magic, out-of-order or
/// missing sections, any checksum mismatch, truncation anywhere, and
/// trailing garbage after the end section. Structural validation of the
/// decoded state (liveness/affiliation/head-set consistency) happens in
/// DynamicGraph::from_state and ChurnEngine::restore, so corrupt bytes can
/// never become a live engine.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "khop/dynamic/churn_engine.hpp"

namespace khop::persist {

inline constexpr std::string_view kSnapshotMagic = "KHOPSNP1";

/// Decoded snapshot: the engine state plus the trace cursor (count of
/// events applied when it was taken) that names the WAL segment
/// continuing it.
struct SnapshotData {
  ChurnEngineRestore state;
  std::uint64_t cursor = 0;
};

/// Serializes \p engine's full live state at trace cursor \p cursor.
std::string encode_snapshot(const ChurnEngine& engine, std::uint64_t cursor);

/// Parses and checksum-verifies snapshot bytes. Throws CorruptState on any
/// format violation (see file header) and InvalidArgument when the bytes
/// parse but describe structurally inconsistent state.
SnapshotData decode_snapshot(std::string_view bytes);

/// Reads + decodes a snapshot file. Throws CorruptState if the file cannot
/// be read, plus everything decode_snapshot throws.
SnapshotData load_snapshot_file(const std::string& path);

}  // namespace khop::persist
