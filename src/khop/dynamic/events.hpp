/// \file events.hpp
/// Node-disappearance maintenance (paper section 3.3):
///
/// * plain member fails  -> nothing to do for the existing CDS;
/// * gateway fails       -> the affected clusterheads re-run gateway
///                          selection (local fix);
/// * clusterhead fails   -> the clusterhead selection process is re-applied
///                          for the orphaned cluster.
///
/// All repairs keep every surviving cluster intact; re-election is confined
/// to orphans that cannot join a surviving cluster. Results are expressed in
/// the remainder graph's id space with maps back to the original ids.
#pragma once

#include <cstdint>
#include <string>

#include "khop/cluster/clustering.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/graph/subgraph.hpp"

namespace khop {

enum class FailureClass : std::uint8_t {
  kPlainMember,
  kGateway,
  kClusterhead,
};

/// Classifies \p node against the current backbone.
FailureClass classify_failure(const Clustering& c, const Backbone& b,
                              NodeId node);

struct FailureRepairReport {
  FailureClass failure_class = FailureClass::kPlainMember;
  /// False when removing the node disconnects G. The repair is still
  /// performed: each surviving component is repaired independently (members
  /// cut off from their head are re-affiliated within their component, the
  /// backbone is rebuilt per component) instead of bailing out.
  bool remainder_connected = true;
  /// Connected components of the remainder (1 when no partition happened).
  std::size_t num_components = 1;

  /// Remainder graph (n-1 nodes) and id maps (original <-> remainder).
  InducedSubgraph remainder;
  /// Repaired clustering/backbone over remainder ids. On a partition the
  /// backbone is the union of the per-component backbones.
  Clustering clustering;
  Backbone backbone;

  std::size_t orphaned_members = 0;  ///< members needing a new cluster
  /// Of those, members orphaned because the failure separated them from
  /// their (surviving) head's component.
  std::size_t disconnected_orphans = 0;
  std::size_t new_heads = 0;         ///< heads elected during the repair
  std::size_t preserved_heads = 0;   ///< surviving heads kept as-is
  /// Heads whose gateway choices referenced the failed node (the scope of
  /// the paper's "local fix" for gateway failures).
  std::size_t affected_heads = 0;
  /// Members whose hop distance to their preserved head now exceeds k.
  /// The paper's policy tolerates this; callers may trigger a full rebuild.
  std::size_t domination_violations = 0;
  /// Empty when the repaired backbone passes validate_backbone.
  std::string validation_error;
};

/// Applies the section-3.3 policy for the failure of \p failed.
/// \pre failed < g.num_nodes(); g connected; c/b consistent with g
FailureRepairReport handle_node_failure(const Graph& g, const Clustering& c,
                                        const Backbone& b, Pipeline pipeline,
                                        NodeId failed);

/// How a switched-on node was absorbed (section 3.3's "switch-on" case).
enum class JoinOutcome : std::uint8_t {
  kJoinedExistingCluster,  ///< a head within k hops adopted it
  kBecameClusterhead,      ///< no head within k: it declares itself head
};

struct JoinRepairReport {
  JoinOutcome outcome = JoinOutcome::kJoinedExistingCluster;
  NodeId new_node = kInvalidNode;  ///< id in the grown graph (== old n)
  Graph graph;                     ///< grown graph (n+1 nodes)
  Clustering clustering;
  Backbone backbone;
  /// True when the new node's edges created cluster adjacencies that did
  /// not exist before (phase 2 had to be re-run even for a member join).
  bool adjacency_changed = false;
  std::string validation_error;  ///< empty when the result validates
};

/// Handles a node switching on with links to \p neighbors (all < n).
/// Join policy: adopt the nearest head within k hops (ties: smaller id);
/// otherwise the newcomer - being > k from every head - becomes a head
/// itself, preserving the k-hop independent set. Phase 2 re-runs when the
/// backbone could be affected.
/// \pre neighbors non-empty (the newcomer must attach to the network)
JoinRepairReport handle_node_join(const Graph& g, const Clustering& c,
                                  const Backbone& b, Pipeline pipeline,
                                  const std::vector<NodeId>& neighbors);

}  // namespace khop
