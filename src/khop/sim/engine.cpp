#include "khop/sim/engine.hpp"

#include <algorithm>
#include <limits>
#include <tuple>

#include "khop/common/assert.hpp"
#include "khop/obs/metrics.hpp"
#include "khop/obs/trace.hpp"
#include "khop/runtime/thread_pool.hpp"

namespace khop {

namespace {

/// Destination-chunk granularity for the parallel executor. parallel_for
/// partitions task indices in static contiguous blocks, so chunk count
/// mainly bounds outbox count; a small multiple of the worker count keeps
/// per-chunk merge state cheap while letting uneven inbox mass spread.
constexpr std::size_t kChunksPerThread = 4;

std::size_t chunk_count(std::size_t items, ThreadPool& pool) {
  return std::min(items, std::max<std::size_t>(1, pool.num_threads() *
                                                      kChunksPerThread));
}

/// Half-open subrange [lo, hi) of chunk \p c out of \p chunks over
/// [0, items): same arithmetic as parallel_for's static blocks.
std::pair<std::size_t, std::size_t> chunk_range(std::size_t items,
                                                std::size_t chunks,
                                                std::size_t c) {
  const std::size_t lo = items * c / chunks;
  const std::size_t hi = items * (c + 1) / chunks;
  return {lo, hi};
}

}  // namespace

std::size_t NodeContext::round() const noexcept { return engine_->round_; }

std::span<const NodeId> NodeContext::neighbors() const {
  return engine_->graph_->neighbors(id_);
}

void NodeContext::broadcast(std::uint16_t type,
                            std::span<const std::int64_t> data) {
  if (sink_ != nullptr) {
    // Parallel worker: record once; the serial merge replays the stats,
    // recording (or per-neighbor delivery attempts) in node order.
    sink_->sends.push_back(detail::RawSend{id_, kInvalidNode, type,
                                           sink_->arena.intern(data)});
    return;
  }
  if (engine_->ideal_mac()) {
    engine_->record_broadcast(id_, type, data);
    return;
  }
  engine_->stats_.note_transmission(data.size());
  // One materialization per broadcast: every neighbor's delivery aliases the
  // same interned words (the old path deep-copied the vector per neighbor).
  const PayloadView payload = engine_->arenas_[engine_->write_].intern(data);
  for (NodeId v : engine_->graph_->neighbors(id_)) {
    engine_->enqueue(id_, v, type, payload);
  }
}

void NodeContext::send(NodeId to, std::uint16_t type,
                       std::span<const std::int64_t> data) {
  KHOP_REQUIRE(engine_->graph_->has_edge(id_, to),
               "addressed send target is not a neighbor");
  if (sink_ != nullptr) {
    sink_->sends.push_back(
        detail::RawSend{id_, to, type, sink_->arena.intern(data)});
    return;
  }
  if (engine_->ideal_mac()) {
    engine_->record_send(id_, to, type, data);
    return;
  }
  engine_->stats_.note_transmission(data.size());
  const PayloadView payload = engine_->arenas_[engine_->write_].intern(data);
  engine_->enqueue(id_, to, type, payload);
}

SyncEngine::SyncEngine(const Graph& g, const AgentFactory& factory,
                       const DeliveryOptions& delivery)
    : graph_(&g), delivery_(delivery), factory_(factory) {
  KHOP_REQUIRE(static_cast<bool>(factory_), "agent factory required");
  agents_.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    agents_.push_back(factory_(v));
    KHOP_REQUIRE(agents_.back() != nullptr, "factory returned null agent");
  }
}

void SyncEngine::enqueue(NodeId from, NodeId to, std::uint16_t type,
                         PayloadView data) {
  if (delivery_.model != nullptr) {
    bool delivered = delivery_.model->attempt(from, to);
    for (std::size_t retry = 0; !delivered && retry < delivery_.retry_budget;
         ++retry) {
      ++stats_.retransmissions;
      delivered = delivery_.model->attempt(from, to);
    }
    if (!delivered) {
      ++stats_.drops;
      return;
    }
  }
  queues_[write_].push_back(Routed{to, Message{from, type, data}});
}

void SyncEngine::record_broadcast(NodeId from, std::uint16_t type,
                                  std::span<const std::int64_t> data) {
  stats_.note_transmission(data.size());
  // A broadcast with no receivers is a radio transmission (counted above)
  // but schedules nothing: recording it would keep the write side non-empty
  // and cost an extra round the reference engine never runs.
  if (graph_->neighbors(from).empty()) return;
  // One materialization per broadcast: every receiver's delivery aliases
  // the same interned words.
  const PayloadView payload = arenas_[write_].intern(data);
  if (rec_count_[write_][from]++ == 0) bcast_senders_[write_].push_back(from);
  bcast_log_[write_].push_back(detail::SendRec{from, type, payload});
}

void SyncEngine::record_send(NodeId from, NodeId to, std::uint16_t type,
                             std::span<const std::int64_t> data) {
  stats_.note_transmission(data.size());
  const PayloadView payload = arenas_[write_].intern(data);
  std::vector<detail::SendRec>& list = sends_[write_][to];
  if (list.empty()) send_dests_[write_].push_back(to);
  list.push_back(detail::SendRec{from, type, payload});
}

void SyncEngine::replay(const detail::RawSend& send) {
  if (ideal_mac()) {
    if (send.to == kInvalidNode) {
      record_broadcast(send.from, send.type, send.data);
    } else {
      record_send(send.from, send.to, send.type, send.data);
    }
    return;
  }
  stats_.note_transmission(send.data.size());
  const PayloadView payload = arenas_[write_].intern(send.data);
  if (send.to == kInvalidNode) {
    for (NodeId v : graph_->neighbors(send.from)) {
      enqueue(send.from, v, send.type, payload);
    }
  } else {
    enqueue(send.from, send.to, send.type, payload);
  }
}

void SyncEngine::flush_outboxes(std::size_t used) {
  for (std::size_t c = 0; c < used; ++c) {
    detail::EngineOutbox& out = outboxes_[c];
    stats_.receptions += out.receptions;
    for (const detail::RawSend& s : out.sends) replay(s);
    out.reset();
  }
}

NodeAgent& SyncEngine::agent(NodeId v) {
  KHOP_REQUIRE(v < agents_.size(), "node out of range");
  return *agents_[v];
}

const NodeAgent& SyncEngine::agent(NodeId v) const {
  KHOP_REQUIRE(v < agents_.size(), "node out of range");
  return *agents_[v];
}

void SyncEngine::reset_for_run() {
  if (ran_) {
    // Re-entry: fresh agents so every run is an independent execution. (The
    // pre-PR5 engine reset only round_, accumulating stats and replaying
    // stale in-flight messages whose views pointed into never-cleared
    // arenas.)
    for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
      agents_[v] = factory_(v);
      KHOP_REQUIRE(agents_[v] != nullptr, "factory returned null agent");
    }
  }
  ran_ = true;
  round_ = 0;
  stats_ = SimStats{};
  queues_[0].clear();
  queues_[1].clear();
  arenas_[0].clear();
  arenas_[1].clear();
  // Outboxes are normally drained by flush_outboxes, but an exception that
  // escaped a parallel phase leaves completed chunks' recordings behind;
  // they must not replay into this run. Likewise any unmerged telemetry
  // samples from an abandoned run must not leak into this one.
  for (detail::EngineOutbox& out : outboxes_) {
    out.reset();
    out.inbox_sizes.clear();
  }
  for (unsigned side = 0; side < 2; ++side) {
    if (rec_count_[side].size() < graph_->num_nodes()) {
      rec_count_[side].resize(graph_->num_nodes(), 0);
      sends_[side].resize(graph_->num_nodes());
    }
    clear_fast_side(side);
  }
  if (rec_begin_.size() < graph_->num_nodes()) {
    rec_begin_.resize(graph_->num_nodes(), 0);
    rec_cursor_.resize(graph_->num_nodes(), 0);
  }
  write_ = 0;
}

void SyncEngine::clear_fast_side(unsigned side) noexcept {
  for (NodeId s : bcast_senders_[side]) rec_count_[side][s] = 0;
  bcast_senders_[side].clear();
  bcast_log_[side].clear();
  for (NodeId d : send_dests_[side]) sends_[side][d].clear();
  send_dests_[side].clear();
}

void SyncEngine::prepare_fast_round(unsigned read) {
  // Group the read-side broadcast log by ascending sender with a counting
  // scatter (the counts were maintained at record time), then sort each
  // sender's contiguous range: record order is a handler artifact, and the
  // canonical inbox order needs (type, payload) within each sender. Every
  // receiver replays the same sorted ranges.
  std::sort(bcast_senders_[read].begin(), bcast_senders_[read].end());
  std::uint32_t ofs = 0;
  for (NodeId s : bcast_senders_[read]) {
    rec_begin_[s] = ofs;
    rec_cursor_[s] = ofs;
    ofs += rec_count_[read][s];
  }
  flat_recs_.resize(bcast_log_[read].size());
  for (const detail::SendRec& e : bcast_log_[read]) {
    flat_recs_[rec_cursor_[e.sender]++] = detail::BcastRec{e.type, e.data};
  }
  for (NodeId s : bcast_senders_[read]) {
    if (rec_count_[read][s] > 1) {
      std::sort(flat_recs_.begin() + rec_begin_[s],
                flat_recs_.begin() + rec_cursor_[s],
                [](const detail::BcastRec& a, const detail::BcastRec& b) {
                  return std::tie(a.type, a.data) < std::tie(b.type, b.data);
                });
    }
  }
  for (NodeId d : send_dests_[read]) {
    std::vector<detail::SendRec>& sd = sends_[read][d];
    if (sd.size() > 1) {
      std::sort(sd.begin(), sd.end(),
                [](const detail::SendRec& a, const detail::SendRec& b) {
                  return std::tie(a.sender, a.type, a.data) <
                         std::tie(b.sender, b.type, b.data);
                });
    }
  }

  // Receiver set: every broadcaster's neighborhood plus every addressed
  // destination, deduplicated with epoch stamps, ascending.
  if (dest_stamp_.size() < graph_->num_nodes()) {
    dest_stamp_.resize(graph_->num_nodes(), 0);
  }
  if (dest_epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(dest_stamp_.begin(), dest_stamp_.end(), 0);
    dest_epoch_ = 0;
  }
  ++dest_epoch_;
  dests_.clear();
  for (NodeId s : bcast_senders_[read]) {
    for (NodeId v : graph_->neighbors(s)) {
      if (dest_stamp_[v] != dest_epoch_) {
        dest_stamp_[v] = dest_epoch_;
        dests_.push_back(v);
      }
    }
  }
  for (NodeId d : send_dests_[read]) {
    if (dest_stamp_[d] != dest_epoch_) {
      dest_stamp_[d] = dest_epoch_;
      dests_.push_back(d);
    }
  }
  std::sort(dests_.begin(), dests_.end());
}

void SyncEngine::deliver_fast_to(NodeId d, unsigned read, NodeContext& ctx,
                                 std::size_t& receptions,
                                 std::vector<detail::BcastRec>& scratch) {
  const std::vector<detail::SendRec>& sd = sends_[read][d];
  std::size_t si = 0;
  NodeAgent& agent = *agents_[d];
  const std::uint32_t* counts = rec_count_[read].data();
  for (NodeId s : graph_->neighbors(d)) {
    // rec_begin_[s] is only meaningful when counts[s] != 0 (stale
    // otherwise), so the range pointer is formed after the count check.
    const std::uint32_t cnt = counts[s];
    // sd is sorted by sender and every send sender is a neighbor of d, so
    // walking d's ascending adjacency consumes it in one pass.
    const std::size_t s_begin = si;
    while (si < sd.size() && sd[si].sender == s) ++si;
    if (si == s_begin) {
      const detail::BcastRec* bs =
          cnt != 0 ? flat_recs_.data() + rec_begin_[s] : nullptr;
      for (std::uint32_t i = 0; i < cnt; ++i) {
        ++receptions;
        agent.on_message(ctx, Message{s, bs[i].type, bs[i].data});
      }
      continue;
    }
    if (cnt == 0) {
      for (std::size_t i = s_begin; i < si; ++i) {
        ++receptions;
        agent.on_message(ctx, Message{s, sd[i].type, sd[i].data});
      }
      continue;
    }
    // Rare: s both broadcast and addressed d this round; merge the two
    // (type, payload)-sorted groups.
    const detail::BcastRec* bs = flat_recs_.data() + rec_begin_[s];
    scratch.clear();
    scratch.insert(scratch.end(), bs, bs + cnt);
    for (std::size_t i = s_begin; i < si; ++i) {
      scratch.push_back(detail::BcastRec{sd[i].type, sd[i].data});
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const detail::BcastRec& a, const detail::BcastRec& b) {
                return std::tie(a.type, a.data) < std::tie(b.type, b.data);
              });
    for (const detail::BcastRec& r : scratch) {
      ++receptions;
      agent.on_message(ctx, Message{s, r.type, r.data});
    }
  }
  KHOP_ASSERT(si == sd.size(), "send from non-neighbor in inbox assembly");
}

void SyncEngine::partition_inbox(const std::vector<Routed>& inbox) {
  if (inbox_pos_.size() < graph_->num_nodes()) {
    inbox_pos_.resize(graph_->num_nodes(), 0);
  }
  dests_.clear();
  for (const Routed& r : inbox) {
    if (inbox_pos_[r.to]++ == 0) dests_.push_back(r.to);
  }
  std::sort(dests_.begin(), dests_.end());

  spans_.resize(dests_.size() + 1);
  spans_[0] = 0;
  for (std::size_t b = 0; b < dests_.size(); ++b) {
    spans_[b + 1] = spans_[b] + inbox_pos_[dests_[b]];
    inbox_pos_[dests_[b]] = spans_[b];  // becomes the scatter cursor
  }
  scratch_.resize(inbox.size());
  for (const Routed& r : inbox) scratch_[inbox_pos_[r.to]++] = r;
  for (NodeId d : dests_) inbox_pos_[d] = 0;  // all-zero for the next round
}

void SyncEngine::sort_bucket(std::size_t b) {
  std::sort(scratch_.begin() + static_cast<std::ptrdiff_t>(spans_[b]),
            scratch_.begin() + static_cast<std::ptrdiff_t>(spans_[b + 1]),
            [](const Routed& a, const Routed& b2) {
              return std::tie(a.msg.sender, a.msg.type, a.msg.data) <
                     std::tie(b2.msg.sender, b2.msg.type, b2.msg.data);
            });
}

bool SyncEngine::run(std::size_t max_rounds) {
  return run_impl(max_rounds, nullptr);
}

bool SyncEngine::run(std::size_t max_rounds, ThreadPool& pool) {
  return run_impl(max_rounds, &pool);
}

bool SyncEngine::run_impl(std::size_t max_rounds, ThreadPool* pool) {
  reset_for_run();

  // Observational only: the span, the cached histogram pointer, and every
  // record below never feed back into delivery order or agent state, so the
  // run is bit-identical with telemetry on or off.
  obs::Span run_span("engine/run");
  const bool tel = obs::enabled();
  obs::Histogram* inbox_hist =
      tel ? &obs::Registry::global().histogram("engine.inbox_size") : nullptr;
  // Inbox sizes batch into plain-memory accumulators (serial: this one;
  // parallel: one per chunk outbox, merged below) and fold into the sharded
  // histogram once at end of run — the delivery loops never pay TLS or
  // atomic traffic per destination.
  obs::LocalHistogram inbox_local;
  const auto merge_outbox_samples = [&] {
    if (inbox_hist == nullptr) return;
    for (detail::EngineOutbox& out : outboxes_) {
      inbox_local.merge(out.inbox_sizes);
    }
  };

  const std::size_t n = graph_->num_nodes();
  // Parallel phase runner: work items [0, items) chunked across the pool,
  // each chunk recording into its own outbox, merged in ascending chunk
  // (= node/bucket) order. All three parallel phases (on_start /
  // on_round_end, ideal-MAC delivery, lossy delivery) share it so the
  // chunking arithmetic and flush ordering cannot diverge.
  const auto chunked_phase = [&](std::size_t items, auto&& body) {
    const std::size_t chunks = chunk_count(items, *pool);
    if (outboxes_.size() < chunks) outboxes_.resize(chunks);
    parallel_for_throwing(*pool, chunks, [&](std::size_t c) {
      const auto [lo, hi] = chunk_range(items, chunks, c);
      for (std::size_t i = lo; i < hi; ++i) body(i, outboxes_[c]);
    });
    flush_outboxes(chunks);
  };

  // Phase runner for the two all-nodes callbacks (on_start, on_round_end):
  // serial in ascending node order, or chunked across the pool with the
  // per-chunk outboxes merged in that same order.
  const auto all_nodes_phase = [&](auto&& callback) {
    if (pool == nullptr) {
      for (NodeId v = 0; v < n; ++v) {
        NodeContext ctx(*this, v);
        callback(v, ctx);
      }
      return;
    }
    chunked_phase(n, [&](std::size_t v, detail::EngineOutbox& out) {
      NodeContext ctx(*this, static_cast<NodeId>(v), &out);
      callback(static_cast<NodeId>(v), ctx);
    });
  };

  all_nodes_phase(
      [&](NodeId v, NodeContext& ctx) { agents_[v]->on_start(ctx); });

  bool quiesced = false;
  while (round_ < max_rounds) {
    // Quiescence check at the round boundary.
    if (write_side_empty()) {
      const bool all_done = std::all_of(
          agents_.begin(), agents_.end(),
          [](const std::unique_ptr<NodeAgent>& a) { return a->finished(); });
      if (all_done) {
        quiesced = true;
        break;
      }
    }

    ++round_;
    ++stats_.rounds;
    obs::Span round_span("engine/round");
    const std::size_t round_rx0 = stats_.receptions;
    const std::size_t round_tx0 = stats_.transmissions;

    // Flip buffers: this round's deliveries become the read side; handlers
    // enqueue into the other side, whose previous contents (delivered two
    // rounds ago) are dropped with capacity retained.
    const unsigned read = write_;
    write_ ^= 1u;
    queues_[write_].clear();
    arenas_[write_].clear();
    clear_fast_side(write_);

    if (ideal_mac()) {
      // Fast path: no per-receiver message materialization; receivers walk
      // their adjacency over the per-sender records.
      prepare_fast_round(read);
      if (pool == nullptr) {
        for (const NodeId d : dests_) {
          NodeContext ctx(*this, d);
          const std::size_t rx0 = stats_.receptions;
          deliver_fast_to(d, read, ctx, stats_.receptions, merge_scratch_);
          if (inbox_hist != nullptr) {
            inbox_local.record(stats_.receptions - rx0);
          }
        }
      } else {
        chunked_phase(dests_.size(),
                      [&](std::size_t b, detail::EngineOutbox& out) {
                        NodeContext ctx(*this, dests_[b], &out);
                        const std::size_t rx0 = out.receptions;
                        deliver_fast_to(dests_[b], read, ctx, out.receptions,
                                        out.scratch);
                        if (inbox_hist != nullptr) {
                          out.inbox_sizes.record(out.receptions - rx0);
                        }
                      });
        merge_outbox_samples();
      }
    } else {
      // Lossy path: receiver-batched delivery over the materialized queue:
      // destinations ascending, each inbox sorted by (sender, type,
      // payload) - the same sequence as the preserved flat (to, sender,
      // type, payload) sort, at O(M) partition + per-inbox sort cost
      // instead of one O(M log M) sort over every in-flight message.
      partition_inbox(queues_[read]);

      if (pool == nullptr) {
        for (std::size_t b = 0; b < dests_.size(); ++b) {
          sort_bucket(b);
          const NodeId d = dests_[b];
          NodeContext ctx(*this, d);
          if (inbox_hist != nullptr) {
            inbox_local.record(spans_[b + 1] - spans_[b]);
          }
          for (std::size_t i = spans_[b]; i < spans_[b + 1]; ++i) {
            ++stats_.receptions;
            agents_[d]->on_message(ctx, scratch_[i].msg);
          }
        }
      } else {
        chunked_phase(dests_.size(),
                      [&](std::size_t b, detail::EngineOutbox& out) {
                        sort_bucket(b);
                        const NodeId d = dests_[b];
                        NodeContext ctx(*this, d, &out);
                        if (inbox_hist != nullptr) {
                          out.inbox_sizes.record(spans_[b + 1] - spans_[b]);
                        }
                        for (std::size_t i = spans_[b]; i < spans_[b + 1];
                             ++i) {
                          ++out.receptions;
                          agents_[d]->on_message(ctx, scratch_[i].msg);
                        }
                      });
        merge_outbox_samples();
      }
    }

    all_nodes_phase(
        [&](NodeId v, NodeContext& ctx) { agents_[v]->on_round_end(ctx); });

    round_span.arg("delivered",
                   static_cast<std::int64_t>(stats_.receptions - round_rx0));
    round_span.arg("sent",
                   static_cast<std::int64_t>(stats_.transmissions - round_tx0));
  }

  const bool done =
      quiesced ||
      (write_side_empty() &&
       std::all_of(agents_.begin(), agents_.end(),
                   [](const std::unique_ptr<NodeAgent>& a) {
                     return a->finished();
                   }));
  if (inbox_hist != nullptr) inbox_local.flush(*inbox_hist);
  if (tel) stats_.publish();
  run_span.arg("rounds", static_cast<std::int64_t>(stats_.rounds));
  run_span.arg("transmissions",
               static_cast<std::int64_t>(stats_.transmissions));
  run_span.arg("receptions", static_cast<std::int64_t>(stats_.receptions));
  run_span.arg("quiesced", done ? 1 : 0);
  return done;
}

void SimStats::publish() const {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("engine.runs").inc();
  reg.counter("engine.rounds").add(rounds);
  reg.counter("engine.transmissions").add(transmissions);
  reg.counter("engine.receptions").add(receptions);
  reg.counter("engine.payload_words").add(payload_words);
  reg.counter("engine.drops").add(drops);
  reg.counter("engine.retransmissions").add(retransmissions);
}

}  // namespace khop
