#include "khop/sim/engine.hpp"

#include <algorithm>
#include <tuple>

#include "khop/common/assert.hpp"

namespace khop {

std::size_t NodeContext::round() const noexcept { return engine_->round_; }

std::span<const NodeId> NodeContext::neighbors() const {
  return engine_->graph_->neighbors(id_);
}

void NodeContext::broadcast(std::uint16_t type,
                            std::vector<std::int64_t> data) {
  ++engine_->stats_.transmissions;
  engine_->stats_.payload_words += data.size();
  for (NodeId v : engine_->graph_->neighbors(id_)) {
    engine_->enqueue(id_, v, type, data);
  }
}

void NodeContext::send(NodeId to, std::uint16_t type,
                       std::vector<std::int64_t> data) {
  KHOP_REQUIRE(engine_->graph_->has_edge(id_, to),
               "addressed send target is not a neighbor");
  ++engine_->stats_.transmissions;
  engine_->stats_.payload_words += data.size();
  engine_->enqueue(id_, to, type, data);
}

SyncEngine::SyncEngine(const Graph& g, const AgentFactory& factory,
                       const DeliveryOptions& delivery)
    : graph_(&g), delivery_(delivery), pending_(g.num_nodes()) {
  KHOP_REQUIRE(static_cast<bool>(factory), "agent factory required");
  agents_.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    agents_.push_back(factory(v));
    KHOP_REQUIRE(agents_.back() != nullptr, "factory returned null agent");
  }
}

void SyncEngine::enqueue(NodeId from, NodeId to, std::uint16_t type,
                         const std::vector<std::int64_t>& data) {
  if (delivery_.model != nullptr) {
    bool delivered = delivery_.model->attempt(from, to);
    for (std::size_t retry = 0; !delivered && retry < delivery_.retry_budget;
         ++retry) {
      ++stats_.retransmissions;
      delivered = delivery_.model->attempt(from, to);
    }
    if (!delivered) {
      ++stats_.drops;
      return;
    }
  }
  pending_[to].push_back(Message{from, type, data});
  ++pending_count_;
}

NodeAgent& SyncEngine::agent(NodeId v) {
  KHOP_REQUIRE(v < agents_.size(), "node out of range");
  return *agents_[v];
}

const NodeAgent& SyncEngine::agent(NodeId v) const {
  KHOP_REQUIRE(v < agents_.size(), "node out of range");
  return *agents_[v];
}

bool SyncEngine::run(std::size_t max_rounds) {
  round_ = 0;
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    NodeContext ctx(*this, v);
    agents_[v]->on_start(ctx);
  }

  while (round_ < max_rounds) {
    // Quiescence check at the round boundary.
    if (pending_count_ == 0) {
      const bool all_done = std::all_of(
          agents_.begin(), agents_.end(),
          [](const std::unique_ptr<NodeAgent>& a) { return a->finished(); });
      if (all_done) return true;
    }

    ++round_;
    ++stats_.rounds;

    // Swap out this round's deliveries; handlers enqueue into the fresh set.
    std::vector<std::vector<Message>> inbox(graph_->num_nodes());
    inbox.swap(pending_);
    pending_count_ = 0;

    for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
      auto& box = inbox[v];
      std::sort(box.begin(), box.end(),
                [](const Message& a, const Message& b) {
                  return std::tie(a.sender, a.type, a.data) <
                         std::tie(b.sender, b.type, b.data);
                });
      NodeContext ctx(*this, v);
      for (const Message& msg : box) {
        ++stats_.receptions;
        agents_[v]->on_message(ctx, msg);
      }
    }
    for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
      NodeContext ctx(*this, v);
      agents_[v]->on_round_end(ctx);
    }
  }
  return pending_count_ == 0 &&
         std::all_of(agents_.begin(), agents_.end(),
                     [](const std::unique_ptr<NodeAgent>& a) {
                       return a->finished();
                     });
}

}  // namespace khop
