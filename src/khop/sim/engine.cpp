#include "khop/sim/engine.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"
#include "khop/obs/metrics.hpp"
#include "khop/obs/trace.hpp"
#include "khop/runtime/thread_pool.hpp"

namespace khop {

namespace {

/// Destination-chunk granularity for the parallel executor. parallel_for
/// partitions task indices in static contiguous blocks, so chunk count
/// mainly bounds outbox count; a small multiple of the worker count keeps
/// per-chunk merge state cheap while letting uneven inbox mass spread.
constexpr std::size_t kChunksPerThread = 4;

std::size_t chunk_count(std::size_t items, ThreadPool& pool) {
  return std::min(items, std::max<std::size_t>(1, pool.num_threads() *
                                                      kChunksPerThread));
}

/// Half-open subrange [lo, hi) of chunk \p c out of \p chunks over
/// [0, items): same arithmetic as parallel_for's static blocks.
std::pair<std::size_t, std::size_t> chunk_range(std::size_t items,
                                                std::size_t chunks,
                                                std::size_t c) {
  const std::size_t lo = items * c / chunks;
  const std::size_t hi = items * (c + 1) / chunks;
  return {lo, hi};
}

}  // namespace

SyncEngine::SyncEngine(const Graph& g, const AgentFactory& factory,
                       const DeliveryOptions& delivery)
    : graph_(&g), delivery_(delivery), factory_(factory) {
  KHOP_REQUIRE(static_cast<bool>(factory_), "agent factory required");
  core_.init(g, 0, static_cast<NodeId>(g.num_nodes()), delivery_, &stats_);
  core_.create_agents(factory_);
}

void SyncEngine::replay(const detail::RawSend& send) {
  if (delivery_.model == nullptr) {
    // The payload already lives in the chunk arena, which flush_outboxes
    // adopts into the write side after this loop - record it as-is.
    if (send.to == kInvalidNode) {
      core_.record_broadcast_adopted(send.from, send.type, send.data);
    } else {
      core_.record_send_adopted(send.from, send.to, send.type, send.data);
    }
    return;
  }
  stats_.note_transmission(send.data.size());
  if (send.to == kInvalidNode) {
    for (NodeId v : graph_->neighbors(send.from)) {
      core_.enqueue_direct(send.from, v, send.type, send.data);
    }
  } else {
    core_.enqueue_direct(send.from, send.to, send.type, send.data);
  }
}

void SyncEngine::flush_outboxes(std::size_t used) {
  for (std::size_t c = 0; c < used; ++c) {
    detail::EngineOutbox& out = outboxes_[c];
    stats_.receptions += out.receptions;
    for (const detail::RawSend& s : out.sends) replay(s);
    // Replayed views alias this chunk's arena: move it (addresses stable)
    // into the write side's store instead of copying every payload again.
    if (out.arena.num_blocks() > 0) adopted_.adopt(out.arena, core_.write_);
    out.reset();
  }
}

void SyncEngine::reset_for_run() {
  if (ran_) {
    // Re-entry: fresh agents so every run is an independent execution. (The
    // pre-PR5 engine reset only round_, accumulating stats and replaying
    // stale in-flight messages whose views pointed into never-cleared
    // arenas.)
    core_.create_agents(factory_);
  }
  ran_ = true;
  stats_ = SimStats{};
  core_.reset_state();
  // Outboxes are normally drained by flush_outboxes, but an exception that
  // escaped a parallel phase leaves completed chunks' recordings behind;
  // they must not replay into this run. Likewise any unmerged telemetry
  // samples from an abandoned run must not leak into this one.
  for (detail::EngineOutbox& out : outboxes_) {
    out.reset();
    out.inbox_sizes.clear();
  }
  adopted_.reset();
}

bool SyncEngine::run(std::size_t max_rounds) {
  return run_impl(max_rounds, nullptr);
}

bool SyncEngine::run(std::size_t max_rounds, ThreadPool& pool) {
  return run_impl(max_rounds, &pool);
}

bool SyncEngine::run_impl(std::size_t max_rounds, ThreadPool* pool) {
  reset_for_run();

  // Observational only: the span, the cached histogram pointer, and every
  // record below never feed back into delivery order or agent state, so the
  // run is bit-identical with telemetry on or off.
  obs::Span run_span("engine/run");
  const bool tel = obs::enabled();
  obs::Histogram* inbox_hist =
      tel ? &obs::Registry::global().histogram("engine.inbox_size") : nullptr;
  // Inbox sizes batch into plain-memory accumulators (serial: this one;
  // parallel: one per chunk outbox, merged below) and fold into the sharded
  // histogram once at end of run — the delivery loops never pay TLS or
  // atomic traffic per destination.
  obs::LocalHistogram inbox_local;
  const auto merge_outbox_samples = [&] {
    if (inbox_hist == nullptr) return;
    for (detail::EngineOutbox& out : outboxes_) {
      inbox_local.merge(out.inbox_sizes);
    }
  };

  const std::size_t n = graph_->num_nodes();
  // Parallel phase runner: work items [0, items) chunked across the pool,
  // each chunk recording into its own outbox, merged in ascending chunk
  // (= node/bucket) order. All three parallel phases (on_start /
  // on_round_end, ideal-MAC delivery, lossy delivery) share it so the
  // chunking arithmetic and flush ordering cannot diverge.
  const auto chunked_phase = [&](std::size_t items, auto&& body) {
    const std::size_t chunks = chunk_count(items, *pool);
    if (outboxes_.size() < chunks) outboxes_.resize(chunks);
    parallel_for_throwing(*pool, chunks, [&](std::size_t c) {
      const auto [lo, hi] = chunk_range(items, chunks, c);
      for (std::size_t i = lo; i < hi; ++i) body(i, outboxes_[c]);
    });
    flush_outboxes(chunks);
  };

  // Phase runner for the two all-nodes callbacks (on_start, on_round_end):
  // serial in ascending node order, or chunked across the pool with the
  // per-chunk outboxes merged in that same order.
  const auto all_nodes_phase = [&](auto&& callback) {
    if (pool == nullptr) {
      for (NodeId v = 0; v < n; ++v) {
        NodeContext ctx(core_, v);
        callback(v, ctx);
      }
      return;
    }
    chunked_phase(n, [&](std::size_t v, detail::EngineOutbox& out) {
      NodeContext ctx(core_, static_cast<NodeId>(v), &out);
      callback(static_cast<NodeId>(v), ctx);
    });
  };

  all_nodes_phase(
      [&](NodeId v, NodeContext& ctx) { core_.agents_[v]->on_start(ctx); });

  bool quiesced = false;
  while (core_.round_ < max_rounds) {
    // Quiescence check at the round boundary.
    if (core_.write_side_empty() && core_.agents_finished()) {
      quiesced = true;
      break;
    }

    ++stats_.rounds;
    obs::Span round_span("engine/round");
    const std::size_t round_rx0 = stats_.receptions;
    const std::size_t round_tx0 = stats_.transmissions;

    // Flip buffers: this round's deliveries become the read side; handlers
    // enqueue into the other side, whose previous contents (delivered two
    // rounds ago) are dropped with capacity retained - including the chunk
    // arenas adopted into that side by earlier merges.
    const unsigned read = core_.begin_round(core_.round_ + 1);
    adopted_.recycle(core_.write_);

    if (delivery_.model == nullptr) {
      // Fast path: no per-receiver message materialization; receivers walk
      // their adjacency over the per-sender records.
      core_.prepare_fast_round(read);
      if (pool == nullptr) {
        core_.deliver_fast_all(read, inbox_hist != nullptr ? &inbox_local
                                                           : nullptr);
      } else {
        const std::span<const NodeId> dests = core_.fast_dests();
        chunked_phase(dests.size(),
                      [&](std::size_t b, detail::EngineOutbox& out) {
                        NodeContext ctx(core_, dests[b], &out);
                        const std::size_t rx0 = out.receptions;
                        core_.deliver_fast_to(dests[b], read, ctx,
                                              out.receptions, out.scratch);
                        if (inbox_hist != nullptr) {
                          out.inbox_sizes.record(out.receptions - rx0);
                        }
                      });
        merge_outbox_samples();
      }
    } else {
      // Lossy path: receiver-batched delivery over the materialized queue:
      // destinations ascending, each inbox sorted by (sender, type,
      // payload) - the same sequence as the preserved flat (to, sender,
      // type, payload) sort, at O(M) partition + per-inbox sort cost
      // instead of one O(M log M) sort over every in-flight message.
      core_.partition_inbox(read);

      if (pool == nullptr) {
        core_.deliver_lossy_all(inbox_hist != nullptr ? &inbox_local
                                                      : nullptr);
      } else {
        chunked_phase(core_.num_buckets(),
                      [&](std::size_t b, detail::EngineOutbox& out) {
                        NodeContext ctx(core_, core_.bucket_dest(b), &out);
                        if (inbox_hist != nullptr) {
                          out.inbox_sizes.record(core_.bucket_size(b));
                        }
                        core_.deliver_bucket(b, ctx, out.receptions);
                      });
        merge_outbox_samples();
      }
    }

    all_nodes_phase(
        [&](NodeId v, NodeContext& ctx) { core_.agents_[v]->on_round_end(ctx); });

    round_span.arg("delivered",
                   static_cast<std::int64_t>(stats_.receptions - round_rx0));
    round_span.arg("sent",
                   static_cast<std::int64_t>(stats_.transmissions - round_tx0));
  }

  const bool done =
      quiesced || (core_.write_side_empty() && core_.agents_finished());
  if (inbox_hist != nullptr) inbox_local.flush(*inbox_hist);
  if (tel) stats_.publish();
  run_span.arg("rounds", static_cast<std::int64_t>(stats_.rounds));
  run_span.arg("transmissions",
               static_cast<std::int64_t>(stats_.transmissions));
  run_span.arg("receptions", static_cast<std::int64_t>(stats_.receptions));
  run_span.arg("quiesced", done ? 1 : 0);
  return done;
}

void SimStats::publish() const {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("engine.runs").inc();
  reg.counter("engine.rounds").add(rounds);
  reg.counter("engine.transmissions").add(transmissions);
  reg.counter("engine.receptions").add(receptions);
  reg.counter("engine.payload_words").add(payload_words);
  reg.counter("engine.drops").add(drops);
  reg.counter("engine.retransmissions").add(retransmissions);
}

}  // namespace khop
