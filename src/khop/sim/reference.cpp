#include "khop/sim/reference.hpp"

#include <algorithm>
#include <tuple>

#include "khop/common/assert.hpp"

namespace khop::reference {

std::size_t NodeContext::round() const noexcept { return engine_->round_; }

std::span<const NodeId> NodeContext::neighbors() const {
  return engine_->graph_->neighbors(id_);
}

void NodeContext::broadcast(std::uint16_t type,
                            std::vector<std::int64_t> data) {
  ++engine_->stats_.transmissions;
  engine_->stats_.payload_words += data.size();
  // One materialization per broadcast: every neighbor's delivery aliases the
  // same interned words (the old path deep-copied the vector per neighbor).
  const PayloadView payload = engine_->arenas_[engine_->write_].intern(data);
  for (NodeId v : engine_->graph_->neighbors(id_)) {
    engine_->enqueue(id_, v, type, payload);
  }
}

void NodeContext::send(NodeId to, std::uint16_t type,
                       std::vector<std::int64_t> data) {
  KHOP_REQUIRE(engine_->graph_->has_edge(id_, to),
               "addressed send target is not a neighbor");
  ++engine_->stats_.transmissions;
  engine_->stats_.payload_words += data.size();
  const PayloadView payload = engine_->arenas_[engine_->write_].intern(data);
  engine_->enqueue(id_, to, type, payload);
}

SyncEngine::SyncEngine(const Graph& g, const AgentFactory& factory,
                       const DeliveryOptions& delivery)
    : graph_(&g), delivery_(delivery) {
  KHOP_REQUIRE(static_cast<bool>(factory), "agent factory required");
  agents_.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    agents_.push_back(factory(v));
    KHOP_REQUIRE(agents_.back() != nullptr, "factory returned null agent");
  }
}

void SyncEngine::enqueue(NodeId from, NodeId to, std::uint16_t type,
                         PayloadView data) {
  if (delivery_.model != nullptr) {
    bool delivered = delivery_.model->attempt(from, to);
    for (std::size_t retry = 0; !delivered && retry < delivery_.retry_budget;
         ++retry) {
      ++stats_.retransmissions;
      delivered = delivery_.model->attempt(from, to);
    }
    if (!delivered) {
      ++stats_.drops;
      return;
    }
  }
  queues_[write_].push_back(Routed{to, Message{from, type, data}});
}

NodeAgent& SyncEngine::agent(NodeId v) {
  KHOP_REQUIRE(v < agents_.size(), "node out of range");
  return *agents_[v];
}

const NodeAgent& SyncEngine::agent(NodeId v) const {
  KHOP_REQUIRE(v < agents_.size(), "node out of range");
  return *agents_[v];
}

bool SyncEngine::run(std::size_t max_rounds) {
  round_ = 0;
  for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
    NodeContext ctx(*this, v);
    agents_[v]->on_start(ctx);
  }

  while (round_ < max_rounds) {
    // Quiescence check at the round boundary.
    if (queues_[write_].empty()) {
      const bool all_done = std::all_of(
          agents_.begin(), agents_.end(),
          [](const std::unique_ptr<NodeAgent>& a) { return a->finished(); });
      if (all_done) return true;
    }

    ++round_;
    ++stats_.rounds;

    // Flip buffers: this round's deliveries become the read side; handlers
    // enqueue into the other side, whose previous contents (delivered two
    // rounds ago) are dropped with capacity retained.
    std::vector<Routed>& inbox = queues_[write_];
    write_ ^= 1u;
    queues_[write_].clear();
    arenas_[write_].clear();

    // Deterministic delivery order, bit-for-bit as the per-destination
    // implementation: destinations ascending, then (sender, type, payload).
    // A single flat sort gives the same sequence because messages equal in
    // all three keys are indistinguishable.
    std::sort(inbox.begin(), inbox.end(), [](const Routed& a, const Routed& b) {
      return std::tie(a.to, a.msg.sender, a.msg.type, a.msg.data) <
             std::tie(b.to, b.msg.sender, b.msg.type, b.msg.data);
    });

    for (const Routed& r : inbox) {
      ++stats_.receptions;
      NodeContext ctx(*this, r.to);
      agents_[r.to]->on_message(ctx, r.msg);
    }
    for (NodeId v = 0; v < graph_->num_nodes(); ++v) {
      NodeContext ctx(*this, v);
      agents_[v]->on_round_end(ctx);
    }
  }
  return queues_[write_].empty() &&
         std::all_of(agents_.begin(), agents_.end(),
                     [](const std::unique_ptr<NodeAgent>& a) {
                       return a->finished();
                     });
}

void NeighborhoodDiscoveryAgent::on_start(NodeContext& ctx) {
  ctx.broadcast(kHello, {static_cast<std::int64_t>(ctx.id()), 1});
}

void NeighborhoodDiscoveryAgent::on_message(NodeContext& ctx,
                                            const Message& msg) {
  KHOP_ASSERT(msg.type == kHello, "unexpected message type");
  const auto origin = static_cast<NodeId>(msg.data[0]);
  const auto hops = static_cast<Hops>(msg.data[1]);
  if (origin == ctx.id()) return;

  auto [it, inserted] = known_.try_emplace(origin);
  Known& rec = it->second;
  if (inserted || hops < rec.dist) {
    // First (synchronous flooding => shortest) arrival. The inbox is sorted
    // by sender, so on the discovery round the first arrival also carries
    // the minimum-id parent - matching the centralized canonical BFS.
    rec.dist = hops;
    rec.parent = msg.sender;
    if (hops < k_) {
      ctx.broadcast(kHello,
                    {static_cast<std::int64_t>(origin),
                     static_cast<std::int64_t>(hops + 1)});
    }
  } else if (hops == rec.dist && msg.sender < rec.parent) {
    rec.parent = msg.sender;  // same-round arrivals keep the smallest parent
  }
}

}  // namespace khop::reference
