/// \file engine.hpp
/// Synchronous round-based simulator for distributed protocols.
///
/// Timing model: a message sent during round r (in on_start for r = 0, or in
/// on_message / on_round_end handlers) is delivered at round r+1. Hence a
/// flood started at round 0 reaches hop-h nodes exactly at round h, which is
/// how the protocol implementations schedule their phase boundaries.
///
/// Determinism: nodes process their inboxes in ascending node order, and
/// each inbox is sorted by (sender, type, payload). Every protocol result is
/// therefore a pure function of the topology - the property the test suite
/// uses to cross-validate protocols against the centralized algorithms.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "khop/graph/graph.hpp"
#include "khop/sim/message.hpp"

namespace khop {

class SyncEngine;

/// Decides the fate of one per-link transmission attempt. The engine calls
/// attempt() in its deterministic enqueue order (sender processing order,
/// then ascending-neighbor order for broadcasts), so implementations backed
/// by a seeded rng make a lossy run a pure function of (topology, protocol,
/// seed). Concrete radio-driven implementations live in khop/radio/.
class DeliveryModel {
 public:
  virtual ~DeliveryModel() = default;

  /// True iff a single transmission attempt from -> to is delivered.
  /// Retries call it again, one call per attempt.
  virtual bool attempt(NodeId from, NodeId to) = 0;
};

/// Lossy-delivery configuration for a SyncEngine.
struct DeliveryOptions {
  /// Non-owning; must outlive the engine. nullptr = the paper's ideal MAC
  /// (the legacy code path, bit-for-bit).
  DeliveryModel* model = nullptr;
  /// Extra attempts per dropped per-link delivery (ARQ-style link retries).
  /// Each retry is recorded in SimStats::retransmissions; a delivery that
  /// still fails after the budget counts once in SimStats::drops.
  std::size_t retry_budget = 0;
};

/// Per-node handle the engine passes to agent callbacks.
class NodeContext {
 public:
  NodeId id() const noexcept { return id_; }
  std::size_t round() const noexcept;
  std::span<const NodeId> neighbors() const;

  /// Local broadcast: delivered to every neighbor next round.
  void broadcast(std::uint16_t type, std::vector<std::int64_t> data);

  /// Addressed send to a direct neighbor: delivered next round.
  /// \pre `to` is a neighbor of this node
  void send(NodeId to, std::uint16_t type, std::vector<std::int64_t> data);

 private:
  friend class SyncEngine;
  NodeContext(SyncEngine& engine, NodeId id) : engine_(&engine), id_(id) {}
  SyncEngine* engine_;
  NodeId id_;
};

/// A protocol's per-node state machine.
class NodeAgent {
 public:
  virtual ~NodeAgent() = default;

  /// Round 0: initial sends.
  virtual void on_start(NodeContext& /*ctx*/) {}

  /// One delivered message (round >= 1).
  virtual void on_message(NodeContext& ctx, const Message& msg) = 0;

  /// End of every round (round >= 1), after all deliveries of that round.
  virtual void on_round_end(NodeContext& /*ctx*/) {}

  /// Termination hint: the engine stops when every agent is finished and no
  /// messages are in flight.
  virtual bool finished() const { return true; }
};

/// The simulator. Owns one agent per node.
class SyncEngine {
 public:
  using AgentFactory = std::function<std::unique_ptr<NodeAgent>(NodeId)>;

  /// \p delivery configures lossy links; the default is the ideal MAC.
  SyncEngine(const Graph& g, const AgentFactory& factory,
             const DeliveryOptions& delivery = {});

  /// Runs until quiescence (all agents finished, nothing in flight) or
  /// \p max_rounds. Returns true iff it reached quiescence.
  bool run(std::size_t max_rounds);

  const SimStats& stats() const noexcept { return stats_; }
  std::size_t round() const noexcept { return round_; }

  NodeAgent& agent(NodeId v);
  const NodeAgent& agent(NodeId v) const;

  const Graph& graph() const noexcept { return *graph_; }

 private:
  friend class NodeContext;

  /// One scheduled delivery: destination + the message it will receive.
  struct Routed {
    NodeId to = kInvalidNode;
    Message msg;
  };

  const Graph* graph_;
  DeliveryOptions delivery_;
  std::vector<std::unique_ptr<NodeAgent>> agents_;
  /// Double-buffered flat delivery queues + payload arenas, indexed by
  /// write_. Handlers enqueue into queues_[write_] / arenas_[write_]; at the
  /// round boundary the buffers flip and the stale side is cleared with its
  /// capacity retained, so steady-state rounds are allocation-free.
  std::vector<Routed> queues_[2];
  PayloadArena arenas_[2];
  unsigned write_ = 0;
  std::size_t round_ = 0;
  SimStats stats_;

  /// Runs the per-link delivery model (drops/retries) and, if delivered,
  /// schedules \p data (already interned in the write arena) for \p to.
  void enqueue(NodeId from, NodeId to, std::uint16_t type, PayloadView data);
};

}  // namespace khop
