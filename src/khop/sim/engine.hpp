/// \file engine.hpp
/// Synchronous round-based simulator for distributed protocols.
///
/// Timing model: a message sent during round r (in on_start for r = 0, or in
/// on_message / on_round_end handlers) is delivered at round r+1. Hence a
/// flood started at round 0 reaches hop-h nodes exactly at round h, which is
/// how the protocol implementations schedule their phase boundaries.
///
/// Determinism: nodes process their inboxes in ascending node order, and
/// each inbox is sorted by (sender, type, payload). Every protocol result is
/// therefore a pure function of the topology - the property the test suite
/// uses to cross-validate protocols against the centralized algorithms.
///
/// Round loop (PR 5): the historical engine materialized every delivery as
/// a (receiver, message) queue entry and ran one flat O(M log M) sort over
/// all in-flight messages per round, its comparator lexicographically
/// comparing payload words. Now:
///  * Ideal MAC (no DeliveryModel): a broadcast is recorded once under its
///    sender - its receiver set is exactly neighbors(sender), so delivery
///    walks each receiver's (ascending) adjacency and replays every
///    neighbor's records, giving the canonical per-inbox (sender, type,
///    payload) order with only tiny per-sender record sorts. No per-neighbor
///    queue entries exist at all.
///  * Lossy (DeliveryModel installed): per-link drops must be decided at
///    enqueue time in the documented order, so messages stay materialized
///    per receiver - but batched by destination with a counting pass and
///    sorted within each inbox only.
/// Both delivery sequences are bit-identical to the original flat sort (see
/// sim/reference.hpp for the preserved engine and the equivalence suite).
///
/// Structure (PR 10): the per-node state - agents, arenas, recording
/// buckets, delivery machinery - lives in ShardRuntime
/// (sim/shard_runtime.hpp). SyncEngine is one full-range runtime plus the
/// round loop and the parallel executor's serial merge; ShardedEngine
/// (sim/sharded_engine.hpp) runs many partial-range runtimes over a
/// graph/partition.hpp ShardPlan with the same loop structure.
///
/// Parallel execution: run(max_rounds, ThreadPool&) executes the disjoint
/// destination inboxes (and the on_start / on_round_end phases) across
/// workers. Handlers record their sends into per-chunk outboxes that are
/// merged on the calling thread in ascending node-index order - the same
/// merge discipline as the parallel backbone build - so traces, stats, and
/// lossy DeliveryModel consultation order are bit-identical to the serial
/// engine for any thread count. Agents only ever run on their own node's
/// inbox, which is processed by exactly one worker per phase; agents must
/// not share mutable state across nodes. The merge adopts each chunk's
/// payload arena into the round's read side wholesale (detail::AdoptedArenas)
/// instead of re-interning every payload - steady-state rounds copy each
/// payload exactly once, at record time.
///
/// Reuse contract: run() may be called repeatedly on one engine. Every call
/// is an independent execution - round counter, stats, pending queues and
/// payload arenas are fully reset at entry, and the agents are re-created
/// from the factory (which the engine stores; anything it captures by
/// reference must outlive the engine). Agent references obtained via
/// agent() before a re-run are invalidated by the next run().
#pragma once

#include <cstddef>
#include <vector>

#include "khop/graph/graph.hpp"
#include "khop/sim/message.hpp"
#include "khop/sim/shard_runtime.hpp"

namespace khop {

class ThreadPool;

/// The simulator. Owns one agent per node (via its full-range runtime).
class SyncEngine {
 public:
  using AgentFactory = khop::AgentFactory;

  /// \p delivery configures lossy links; the default is the ideal MAC.
  /// The factory is retained: re-running the engine re-creates the agents
  /// through it (see the file-level reuse contract).
  SyncEngine(const Graph& g, const AgentFactory& factory,
             const DeliveryOptions& delivery = {});

  /// Runs until quiescence (all agents finished, nothing in flight) or
  /// \p max_rounds. Returns true iff it reached quiescence.
  bool run(std::size_t max_rounds);

  /// Parallel round executor: identical semantics and bit-identical traces,
  /// stats and delivery-model consultation order for any thread count.
  bool run(std::size_t max_rounds, ThreadPool& pool);

  const SimStats& stats() const noexcept { return stats_; }
  std::size_t round() const noexcept { return core_.round_; }

  NodeAgent& agent(NodeId v) { return core_.agent(v); }
  const NodeAgent& agent(NodeId v) const { return core_.agent(v); }

  const Graph& graph() const noexcept { return *graph_; }

 private:
  const Graph* graph_;
  DeliveryOptions delivery_;
  AgentFactory factory_;
  /// The full-range [0, n) delivery/dispatch core (no partition installed).
  ShardRuntime core_;
  std::vector<detail::EngineOutbox> outboxes_;  ///< parallel executor sinks
  detail::AdoptedArenas adopted_;  ///< chunk arenas adopted at merge time
  SimStats stats_;
  bool ran_ = false;

  /// Resets counters, queues and arenas; re-creates agents on re-entry.
  void reset_for_run();

  /// Serial replay of one recorded send: stats, delivery model, recording /
  /// queue pushes - the exact serial path. The payload already lives in the
  /// chunk arena (adopted after the replay loop), so nothing is re-interned.
  void replay(const detail::RawSend& send);

  /// Replays outboxes_[0, used) in order, folds their reception counts, and
  /// adopts their arenas into the current write side.
  void flush_outboxes(std::size_t used);

  /// Shared round loop; pool == nullptr is the serial engine.
  bool run_impl(std::size_t max_rounds, ThreadPool* pool);
};

}  // namespace khop
