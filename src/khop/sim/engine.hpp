/// \file engine.hpp
/// Synchronous round-based simulator for distributed protocols.
///
/// Timing model: a message sent during round r (in on_start for r = 0, or in
/// on_message / on_round_end handlers) is delivered at round r+1. Hence a
/// flood started at round 0 reaches hop-h nodes exactly at round h, which is
/// how the protocol implementations schedule their phase boundaries.
///
/// Determinism: nodes process their inboxes in ascending node order, and
/// each inbox is sorted by (sender, type, payload). Every protocol result is
/// therefore a pure function of the topology - the property the test suite
/// uses to cross-validate protocols against the centralized algorithms.
///
/// Round loop (PR 5): the historical engine materialized every delivery as
/// a (receiver, message) queue entry and ran one flat O(M log M) sort over
/// all in-flight messages per round, its comparator lexicographically
/// comparing payload words. Now:
///  * Ideal MAC (no DeliveryModel): a broadcast is recorded once under its
///    sender - its receiver set is exactly neighbors(sender), so delivery
///    walks each receiver's (ascending) adjacency and replays every
///    neighbor's records, giving the canonical per-inbox (sender, type,
///    payload) order with only tiny per-sender record sorts. No per-neighbor
///    queue entries exist at all.
///  * Lossy (DeliveryModel installed): per-link drops must be decided at
///    enqueue time in the documented order, so messages stay materialized
///    per receiver - but batched by destination with a counting pass and
///    sorted within each inbox only.
/// Both delivery sequences are bit-identical to the original flat sort (see
/// sim/reference.hpp for the preserved engine and the equivalence suite).
///
/// Parallel execution: run(max_rounds, ThreadPool&) executes the disjoint
/// destination inboxes (and the on_start / on_round_end phases) across
/// workers. Handlers record their sends into per-chunk outboxes that are
/// merged on the calling thread in ascending node-index order - the same
/// merge discipline as the parallel backbone build - so traces, stats, and
/// lossy DeliveryModel consultation order are bit-identical to the serial
/// engine for any thread count. Agents only ever run on their own node's
/// inbox, which is processed by exactly one worker per phase; agents must
/// not share mutable state across nodes.
///
/// Reuse contract: run() may be called repeatedly on one engine. Every call
/// is an independent execution - round counter, stats, pending queues and
/// payload arenas are fully reset at entry, and the agents are re-created
/// from the factory (which the engine stores; anything it captures by
/// reference must outlive the engine). Agent references obtained via
/// agent() before a re-run are invalidated by the next run().
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "khop/graph/graph.hpp"
#include "khop/obs/metrics.hpp"
#include "khop/sim/message.hpp"

namespace khop {

class SyncEngine;
class ThreadPool;

/// Decides the fate of one per-link transmission attempt. The engine calls
/// attempt() in its deterministic enqueue order (sender processing order,
/// then ascending-neighbor order for broadcasts), so implementations backed
/// by a seeded rng make a lossy run a pure function of (topology, protocol,
/// seed). Concrete radio-driven implementations live in khop/radio/.
/// The parallel executor preserves this order: models are only ever
/// consulted during the serial outbox merge, never from a worker.
class DeliveryModel {
 public:
  virtual ~DeliveryModel() = default;

  /// True iff a single transmission attempt from -> to is delivered.
  /// Retries call it again, one call per attempt.
  virtual bool attempt(NodeId from, NodeId to) = 0;
};

/// Lossy-delivery configuration for a SyncEngine.
struct DeliveryOptions {
  /// Non-owning; must outlive the engine. nullptr = the paper's ideal MAC
  /// (the legacy code path, bit-for-bit).
  DeliveryModel* model = nullptr;
  /// Extra attempts per dropped per-link delivery (ARQ-style link retries).
  /// Each retry is recorded in SimStats::retransmissions; a delivery that
  /// still fails after the budget counts once in SimStats::drops.
  std::size_t retry_budget = 0;
};

namespace detail {
/// One recorded local broadcast: the ideal-MAC fast path stores it once per
/// sender instead of materializing one queue entry per neighbor - the
/// receiver set is exactly neighbors(sender), so delivery re-derives it.
struct BcastRec {
  std::uint16_t type = 0;
  PayloadView data;
};

/// One recorded addressed send, bucketed by destination.
struct SendRec {
  NodeId sender = kInvalidNode;
  std::uint16_t type = 0;
  PayloadView data;
};

/// One handler-recorded send in the parallel executor. Broadcasts keep
/// to == kInvalidNode and expand to per-neighbor deliveries at merge time,
/// in ascending-neighbor order - exactly the serial enqueue sequence.
struct RawSend {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  std::uint16_t type = 0;
  PayloadView data;
};

/// Per-chunk sink for the parallel executor: workers intern payloads into a
/// chunk-private arena and append RawSends; the engine replays them (stats,
/// delivery model, recording/queue pushes) serially in chunk order.
struct EngineOutbox {
  PayloadArena arena;
  std::vector<RawSend> sends;
  std::size_t receptions = 0;
  /// Per-worker merge buffer for fast-path delivery (see deliver_fast_to).
  std::vector<BcastRec> scratch;
  /// Per-chunk inbox-size samples (telemetry only); merged at the serial
  /// join after each delivery phase, NOT dropped by reset() — the merge
  /// happens after flush_outboxes has already reset the chunk.
  obs::LocalHistogram inbox_sizes;

  void reset() noexcept {
    arena.clear();
    sends.clear();
    receptions = 0;
  }
};
}  // namespace detail

/// Per-node handle the engine passes to agent callbacks.
class NodeContext {
 public:
  NodeId id() const noexcept { return id_; }
  std::size_t round() const noexcept;
  std::span<const NodeId> neighbors() const;

  /// Local broadcast: delivered to every neighbor next round. The words are
  /// copied (interned) before the call returns; the span need only be valid
  /// for the duration of the call.
  void broadcast(std::uint16_t type, std::span<const std::int64_t> data);
  void broadcast(std::uint16_t type, std::initializer_list<std::int64_t> data) {
    broadcast(type, std::span<const std::int64_t>(data.begin(), data.size()));
  }

  /// Addressed send to a direct neighbor: delivered next round.
  /// \pre `to` is a neighbor of this node
  void send(NodeId to, std::uint16_t type, std::span<const std::int64_t> data);
  void send(NodeId to, std::uint16_t type,
            std::initializer_list<std::int64_t> data) {
    send(to, type, std::span<const std::int64_t>(data.begin(), data.size()));
  }

 private:
  friend class SyncEngine;
  NodeContext(SyncEngine& engine, NodeId id,
              detail::EngineOutbox* sink = nullptr)
      : engine_(&engine), id_(id), sink_(sink) {}
  SyncEngine* engine_;
  NodeId id_;
  /// Non-null only under the parallel executor: sends are recorded here and
  /// replayed serially instead of touching shared engine state.
  detail::EngineOutbox* sink_;
};

/// A protocol's per-node state machine.
class NodeAgent {
 public:
  virtual ~NodeAgent() = default;

  /// Round 0: initial sends.
  virtual void on_start(NodeContext& /*ctx*/) {}

  /// One delivered message (round >= 1).
  virtual void on_message(NodeContext& ctx, const Message& msg) = 0;

  /// End of every round (round >= 1), after all deliveries of that round.
  virtual void on_round_end(NodeContext& /*ctx*/) {}

  /// Termination hint: the engine stops when every agent is finished and no
  /// messages are in flight.
  virtual bool finished() const { return true; }
};

/// The simulator. Owns one agent per node.
class SyncEngine {
 public:
  using AgentFactory = std::function<std::unique_ptr<NodeAgent>(NodeId)>;

  /// \p delivery configures lossy links; the default is the ideal MAC.
  /// The factory is retained: re-running the engine re-creates the agents
  /// through it (see the file-level reuse contract).
  SyncEngine(const Graph& g, const AgentFactory& factory,
             const DeliveryOptions& delivery = {});

  /// Runs until quiescence (all agents finished, nothing in flight) or
  /// \p max_rounds. Returns true iff it reached quiescence.
  bool run(std::size_t max_rounds);

  /// Parallel round executor: identical semantics and bit-identical traces,
  /// stats and delivery-model consultation order for any thread count.
  bool run(std::size_t max_rounds, ThreadPool& pool);

  const SimStats& stats() const noexcept { return stats_; }
  std::size_t round() const noexcept { return round_; }

  NodeAgent& agent(NodeId v);
  const NodeAgent& agent(NodeId v) const;

  const Graph& graph() const noexcept { return *graph_; }

 private:
  friend class NodeContext;

  /// One scheduled delivery: destination + the message it will receive.
  struct Routed {
    NodeId to = kInvalidNode;
    Message msg;
  };

  const Graph* graph_;
  DeliveryOptions delivery_;
  AgentFactory factory_;
  std::vector<std::unique_ptr<NodeAgent>> agents_;
  /// Lossy-path state: double-buffered flat delivery queues, indexed by
  /// write_. Only used when a DeliveryModel is installed - per-link drops
  /// must be decided at enqueue time in the documented order, so messages
  /// are materialized per receiver. Ideal-MAC rounds leave these empty.
  std::vector<Routed> queues_[2];
  /// Payload arenas, double-buffered by delivery round (both paths).
  PayloadArena arenas_[2];
  unsigned write_ = 0;
  std::size_t round_ = 0;
  SimStats stats_;
  bool ran_ = false;

  /// Ideal-MAC fast-path state, double-buffered like queues_: a broadcast
  /// is recorded ONCE under its sender (receivers = neighbors(sender), so
  /// per-neighbor queue entries would be pure redundancy), addressed sends
  /// are bucketed by destination, and delivery walks each receiver's
  /// neighbor list - the per-receiver message sequence comes out in the
  /// canonical (sender, type, payload) order by construction (ascending
  /// adjacency x per-sender records sorted once). Broadcasts land in a flat
  /// append log; prepare_fast_round counting-scatters the read side into
  /// flat_recs_ grouped by ascending sender (one contiguous range per
  /// sender, no per-sender heap vectors). The dirty lists make clearing
  /// O(active nodes).
  std::vector<detail::SendRec> bcast_log_[2];   ///< append order, per side
  std::vector<NodeId> bcast_senders_[2];        ///< dirty senders
  std::vector<std::uint32_t> rec_count_[2];     ///< per-sender log counts
  std::vector<std::uint32_t> rec_begin_;        ///< read-side range starts
  std::vector<std::uint32_t> rec_cursor_;       ///< scatter cursors
  std::vector<detail::BcastRec> flat_recs_;     ///< read side, sender-grouped
  std::vector<std::vector<detail::SendRec>> sends_[2];    ///< per destination
  std::vector<NodeId> send_dests_[2];                     ///< dirty dests
  std::vector<std::uint32_t> dest_stamp_;  ///< receiver-set dedup marks
  std::uint32_t dest_epoch_ = 0;
  std::vector<detail::BcastRec> merge_scratch_;  ///< serial merge buffer

  /// Lossy-path receiver-batching scratch, persistent across rounds
  /// (capacity only grows). inbox_pos_ doubles as per-destination count,
  /// then scatter cursor; it is returned to all-zero after every partition.
  std::vector<Routed> scratch_;        ///< destination-bucketed inbox
  std::vector<std::size_t> inbox_pos_; ///< per-destination count/cursor
  std::vector<NodeId> dests_;          ///< distinct destinations, ascending
  std::vector<std::size_t> spans_;     ///< bucket b = scratch_[spans_[b], spans_[b+1])
  std::vector<detail::EngineOutbox> outboxes_;  ///< parallel executor sinks

  bool ideal_mac() const noexcept { return delivery_.model == nullptr; }

  /// True iff nothing is scheduled for delivery next round.
  bool write_side_empty() const noexcept {
    return queues_[write_].empty() && bcast_senders_[write_].empty() &&
           send_dests_[write_].empty();
  }

  /// Resets counters, queues and arenas; re-creates agents on re-entry.
  void reset_for_run();

  /// Fast-path recording (ideal MAC): stats + intern + per-sender /
  /// per-destination bucket append.
  void record_broadcast(NodeId from, std::uint16_t type,
                        std::span<const std::int64_t> data);
  void record_send(NodeId from, NodeId to, std::uint16_t type,
                   std::span<const std::int64_t> data);

  /// Sorts side \p read's records and builds dests_ (ascending receiver
  /// set: every broadcaster's neighborhood plus every send destination).
  void prepare_fast_round(unsigned read);

  /// Delivers side \p read's messages to \p d in canonical order: senders
  /// ascending (d's adjacency), each sender's broadcasts merged with its
  /// addressed sends by (type, payload).
  void deliver_fast_to(NodeId d, unsigned read, NodeContext& ctx,
                       std::size_t& receptions,
                       std::vector<detail::BcastRec>& scratch);

  /// O(dirty) reset of side \p side's fast-path buckets.
  void clear_fast_side(unsigned side) noexcept;

  /// Buckets \p inbox by destination into scratch_ / dests_ / spans_.
  void partition_inbox(const std::vector<Routed>& inbox);

  /// Sorts bucket \p b by (sender, type, payload).
  void sort_bucket(std::size_t b);

  /// Runs the per-link delivery model (drops/retries) and, if delivered,
  /// schedules \p data (already interned in the write arena) for \p to.
  void enqueue(NodeId from, NodeId to, std::uint16_t type, PayloadView data);

  /// Serial replay of one recorded send: stats, interning into the write
  /// arena, delivery model, recording/queue pushes - the exact serial path.
  void replay(const detail::RawSend& send);

  /// Replays outboxes_[0, used) in order and folds their reception counts.
  void flush_outboxes(std::size_t used);

  /// Shared round loop; pool == nullptr is the serial engine.
  bool run_impl(std::size_t max_rounds, ThreadPool* pool);
};

}  // namespace khop
