#include "khop/sim/shard_runtime.hpp"

#include <algorithm>
#include <limits>
#include <tuple>

#include "khop/common/assert.hpp"
#include "khop/graph/partition.hpp"

namespace khop {

std::size_t NodeContext::round() const noexcept { return rt_->round_; }

std::span<const NodeId> NodeContext::neighbors() const {
  return rt_->graph_->neighbors(id_);
}

void NodeContext::broadcast(std::uint16_t type,
                            std::span<const std::int64_t> data) {
  if (sink_ != nullptr) {
    // Deferred executor (parallel chunk or sharded lossy shard): record
    // once; the owner replays the stats, recording (or per-neighbor
    // delivery attempts) serially in node order.
    sink_->sends.push_back(detail::RawSend{id_, kInvalidNode, type,
                                           sink_->arena.intern(data)});
    return;
  }
  if (rt_->ideal()) {
    rt_->record_broadcast(id_, type, data);
    return;
  }
  rt_->lossy_broadcast(id_, type, data);
}

void NodeContext::send(NodeId to, std::uint16_t type,
                       std::span<const std::int64_t> data) {
  KHOP_REQUIRE(rt_->graph_->has_edge(id_, to),
               "addressed send target is not a neighbor");
  if (sink_ != nullptr) {
    sink_->sends.push_back(
        detail::RawSend{id_, to, type, sink_->arena.intern(data)});
    return;
  }
  if (rt_->ideal()) {
    rt_->record_send(id_, to, type, data);
    return;
  }
  rt_->lossy_send(id_, to, type, data);
}

void ShardRuntime::init(const Graph& g, NodeId begin, NodeId end,
                        const DeliveryOptions& delivery, SimStats* stats) {
  KHOP_REQUIRE(begin <= end && end <= g.num_nodes(),
               "shard range out of graph bounds");
  KHOP_REQUIRE(stats != nullptr, "shard runtime needs a stats sink");
  graph_ = &g;
  begin_ = begin;
  end_ = end;
  delivery_ = delivery;
  stats_ = stats;
  const std::size_t m = size();
  for (unsigned side = 0; side < 2; ++side) {
    rec_count_[side].assign(m, 0);
    sends_[side].resize(m);
  }
  rec_begin_.assign(m, 0);
  rec_cursor_.assign(m, 0);
  dest_stamp_.assign(m, 0);
  dest_epoch_ = 0;
  inbox_pos_.assign(m, 0);
}

void ShardRuntime::set_partition(const ShardPlan* plan,
                                 std::vector<BoundaryMsg>* boundary_out) {
  KHOP_REQUIRE((plan == nullptr) == (boundary_out == nullptr),
               "partition and boundary outboxes come together");
  plan_ = plan;
  boundary_out_ = boundary_out;
}

void ShardRuntime::create_agents(const AgentFactory& factory) {
  agents_.resize(size());
  for (NodeId v = begin_; v < end_; ++v) {
    agents_[v - begin_] = factory(v);
    KHOP_REQUIRE(agents_[v - begin_] != nullptr, "factory returned null agent");
  }
}

void ShardRuntime::reset_state() {
  round_ = 0;
  write_ = 0;
  queues_[0].clear();
  queues_[1].clear();
  arenas_[0].clear();
  arenas_[1].clear();
  clear_fast_side(0);
  clear_fast_side(1);
}

NodeAgent& ShardRuntime::agent(NodeId v) {
  KHOP_REQUIRE(in_range(v), "node outside shard range");
  return *agents_[local(v)];
}

const NodeAgent& ShardRuntime::agent(NodeId v) const {
  KHOP_REQUIRE(in_range(v), "node outside shard range");
  return *agents_[local(v)];
}

bool ShardRuntime::agents_finished() const {
  return std::all_of(
      agents_.begin(), agents_.end(),
      [](const std::unique_ptr<NodeAgent>& a) { return a->finished(); });
}

unsigned ShardRuntime::begin_round(std::size_t round) {
  round_ = round;
  const unsigned read = write_;
  write_ ^= 1u;
  queues_[write_].clear();
  arenas_[write_].clear();
  clear_fast_side(write_);
  return read;
}

void ShardRuntime::add_remote(const BoundaryMsg& m) {
  KHOP_ASSERT(in_range(m.receiver), "remote message for foreign shard");
  record_send_rec(m.sender, m.receiver, m.type, m.data);
}

void ShardRuntime::record_broadcast(NodeId from, std::uint16_t type,
                                    std::span<const std::int64_t> data) {
  stats_->note_transmission(data.size());
  // A broadcast with no receivers is a radio transmission (counted above)
  // but schedules nothing: recording it would keep the write side non-empty
  // and cost an extra round the reference engine never runs.
  if (graph_->neighbors(from).empty()) return;
  // One materialization per broadcast: every receiver's delivery aliases
  // the same interned words.
  record_broadcast_rec(from, type, arenas_[write_].intern(data));
}

void ShardRuntime::record_send(NodeId from, NodeId to, std::uint16_t type,
                               std::span<const std::int64_t> data) {
  stats_->note_transmission(data.size());
  record_send_rec(from, to, type, arenas_[write_].intern(data));
}

void ShardRuntime::record_broadcast_adopted(NodeId from, std::uint16_t type,
                                            PayloadView payload) {
  stats_->note_transmission(payload.size());
  if (graph_->neighbors(from).empty()) return;
  record_broadcast_rec(from, type, payload);
}

void ShardRuntime::record_send_adopted(NodeId from, NodeId to,
                                       std::uint16_t type,
                                       PayloadView payload) {
  stats_->note_transmission(payload.size());
  record_send_rec(from, to, type, payload);
}

void ShardRuntime::record_broadcast_rec(NodeId from, std::uint16_t type,
                                        PayloadView payload) {
  if (plan_ != nullptr && plan_->is_boundary(from)) {
    // The cut crosses this sender's neighborhood: out-of-shard receivers
    // get BoundaryMsg records (ascending adjacency => ascending dst shard,
    // since shards are contiguous id ranges); the local record below covers
    // the in-shard remainder, if any.
    bool any_local = false;
    for (NodeId v : graph_->neighbors(from)) {
      if (in_range(v)) {
        any_local = true;
        continue;
      }
      boundary_out_[plan_->shard_of(v)].push_back(
          BoundaryMsg{v, from, type, payload});
    }
    if (!any_local) return;
  }
  if (rec_count_[write_][local(from)]++ == 0) {
    bcast_senders_[write_].push_back(from);
  }
  bcast_log_[write_].push_back(detail::SendRec{from, type, payload});
}

void ShardRuntime::record_send_rec(NodeId from, NodeId to, std::uint16_t type,
                                   PayloadView payload) {
  if (!in_range(to)) {
    boundary_out_[plan_->shard_of(to)].push_back(
        BoundaryMsg{to, from, type, payload});
    return;
  }
  std::vector<detail::SendRec>& list = sends_[write_][local(to)];
  if (list.empty()) send_dests_[write_].push_back(to);
  list.push_back(detail::SendRec{from, type, payload});
}

void ShardRuntime::lossy_broadcast(NodeId from, std::uint16_t type,
                                   std::span<const std::int64_t> data) {
  KHOP_ASSERT(plan_ == nullptr, "direct lossy path on a partial shard");
  stats_->note_transmission(data.size());
  const PayloadView payload = arenas_[write_].intern(data);
  for (NodeId v : graph_->neighbors(from)) {
    enqueue_direct(from, v, type, payload);
  }
}

void ShardRuntime::lossy_send(NodeId from, NodeId to, std::uint16_t type,
                              std::span<const std::int64_t> data) {
  KHOP_ASSERT(plan_ == nullptr, "direct lossy path on a partial shard");
  stats_->note_transmission(data.size());
  enqueue_direct(from, to, type, arenas_[write_].intern(data));
}

void ShardRuntime::enqueue_direct(NodeId from, NodeId to, std::uint16_t type,
                                  PayloadView data) {
  if (delivery_.model != nullptr) {
    bool delivered = delivery_.model->attempt(from, to);
    for (std::size_t retry = 0; !delivered && retry < delivery_.retry_budget;
         ++retry) {
      ++stats_->retransmissions;
      delivered = delivery_.model->attempt(from, to);
    }
    if (!delivered) {
      ++stats_->drops;
      return;
    }
  }
  queues_[write_].push_back(detail::Routed{to, Message{from, type, data}});
}

void ShardRuntime::clear_fast_side(unsigned side) noexcept {
  for (NodeId s : bcast_senders_[side]) rec_count_[side][local(s)] = 0;
  bcast_senders_[side].clear();
  bcast_log_[side].clear();
  for (NodeId d : send_dests_[side]) sends_[side][local(d)].clear();
  send_dests_[side].clear();
}

void ShardRuntime::prepare_fast_round(unsigned read) {
  // Group the read-side broadcast log by ascending sender with a counting
  // scatter (the counts were maintained at record time), then sort each
  // sender's contiguous range: record order is a handler artifact, and the
  // canonical inbox order needs (type, payload) within each sender. Every
  // receiver replays the same sorted ranges.
  std::sort(bcast_senders_[read].begin(), bcast_senders_[read].end());
  std::uint32_t ofs = 0;
  for (NodeId s : bcast_senders_[read]) {
    rec_begin_[local(s)] = ofs;
    rec_cursor_[local(s)] = ofs;
    ofs += rec_count_[read][local(s)];
  }
  flat_recs_.resize(bcast_log_[read].size());
  for (const detail::SendRec& e : bcast_log_[read]) {
    flat_recs_[rec_cursor_[local(e.sender)]++] =
        detail::BcastRec{e.type, e.data};
  }
  for (NodeId s : bcast_senders_[read]) {
    if (rec_count_[read][local(s)] > 1) {
      std::sort(flat_recs_.begin() + rec_begin_[local(s)],
                flat_recs_.begin() + rec_cursor_[local(s)],
                [](const detail::BcastRec& a, const detail::BcastRec& b) {
                  return std::tie(a.type, a.data) < std::tie(b.type, b.data);
                });
    }
  }
  for (NodeId d : send_dests_[read]) {
    std::vector<detail::SendRec>& sd = sends_[read][local(d)];
    if (sd.size() > 1) {
      std::sort(sd.begin(), sd.end(),
                [](const detail::SendRec& a, const detail::SendRec& b) {
                  return std::tie(a.sender, a.type, a.data) <
                         std::tie(b.sender, b.type, b.data);
                });
    }
  }

  // Receiver set: every broadcaster's in-range neighborhood plus every
  // addressed destination (including remote insertions, which are always
  // in range), deduplicated with epoch stamps, ascending.
  if (dest_epoch_ == std::numeric_limits<std::uint32_t>::max()) {
    std::fill(dest_stamp_.begin(), dest_stamp_.end(), 0);
    dest_epoch_ = 0;
  }
  ++dest_epoch_;
  dests_.clear();
  for (NodeId s : bcast_senders_[read]) {
    for (NodeId v : graph_->neighbors(s)) {
      if (!in_range(v)) continue;
      if (dest_stamp_[local(v)] != dest_epoch_) {
        dest_stamp_[local(v)] = dest_epoch_;
        dests_.push_back(v);
      }
    }
  }
  for (NodeId d : send_dests_[read]) {
    if (dest_stamp_[local(d)] != dest_epoch_) {
      dest_stamp_[local(d)] = dest_epoch_;
      dests_.push_back(d);
    }
  }
  std::sort(dests_.begin(), dests_.end());
}

void ShardRuntime::deliver_fast_to(NodeId d, unsigned read, NodeContext& ctx,
                                   std::size_t& receptions,
                                   std::vector<detail::BcastRec>& scratch) {
  const std::vector<detail::SendRec>& sd = sends_[read][local(d)];
  std::size_t si = 0;
  NodeAgent& agent = *agents_[local(d)];
  const std::uint32_t* counts = rec_count_[read].data();
  for (NodeId s : graph_->neighbors(d)) {
    // Halo senders (other shards) never have local broadcast records; their
    // cross-cut messages arrive as addressed-send records via add_remote,
    // so the send-only branch below replays them at s's adjacency position.
    // rec_begin_ is only meaningful when the count != 0 (stale otherwise),
    // so the range pointer is formed after the count check.
    const std::uint32_t cnt = in_range(s) ? counts[local(s)] : 0;
    // sd is sorted by sender and every send sender is a neighbor of d, so
    // walking d's ascending adjacency consumes it in one pass.
    const std::size_t s_begin = si;
    while (si < sd.size() && sd[si].sender == s) ++si;
    if (si == s_begin) {
      const detail::BcastRec* bs =
          cnt != 0 ? flat_recs_.data() + rec_begin_[local(s)] : nullptr;
      for (std::uint32_t i = 0; i < cnt; ++i) {
        ++receptions;
        agent.on_message(ctx, Message{s, bs[i].type, bs[i].data});
      }
      continue;
    }
    if (cnt == 0) {
      for (std::size_t i = s_begin; i < si; ++i) {
        ++receptions;
        agent.on_message(ctx, Message{s, sd[i].type, sd[i].data});
      }
      continue;
    }
    // Rare: s both broadcast and addressed d this round; merge the two
    // (type, payload)-sorted groups.
    const detail::BcastRec* bs = flat_recs_.data() + rec_begin_[local(s)];
    scratch.clear();
    scratch.insert(scratch.end(), bs, bs + cnt);
    for (std::size_t i = s_begin; i < si; ++i) {
      scratch.push_back(detail::BcastRec{sd[i].type, sd[i].data});
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const detail::BcastRec& a, const detail::BcastRec& b) {
                return std::tie(a.type, a.data) < std::tie(b.type, b.data);
              });
    for (const detail::BcastRec& r : scratch) {
      ++receptions;
      agent.on_message(ctx, Message{s, r.type, r.data});
    }
  }
  KHOP_ASSERT(si == sd.size(), "send from non-neighbor in inbox assembly");
}

void ShardRuntime::deliver_fast_all(unsigned read, obs::LocalHistogram* hist,
                                    detail::EngineOutbox* sink) {
  for (const NodeId d : dests_) {
    NodeContext ctx(*this, d, sink);
    const std::size_t rx0 = stats_->receptions;
    deliver_fast_to(d, read, ctx, stats_->receptions, merge_scratch_);
    if (hist != nullptr) hist->record(stats_->receptions - rx0);
  }
}

void ShardRuntime::partition_inbox(unsigned read) {
  const std::vector<detail::Routed>& inbox = queues_[read];
  dests_.clear();
  for (const detail::Routed& r : inbox) {
    if (inbox_pos_[local(r.to)]++ == 0) dests_.push_back(r.to);
  }
  std::sort(dests_.begin(), dests_.end());

  spans_.resize(dests_.size() + 1);
  spans_[0] = 0;
  for (std::size_t b = 0; b < dests_.size(); ++b) {
    spans_[b + 1] = spans_[b] + inbox_pos_[local(dests_[b])];
    inbox_pos_[local(dests_[b])] = spans_[b];  // becomes the scatter cursor
  }
  scratch_.resize(inbox.size());
  for (const detail::Routed& r : inbox) {
    scratch_[inbox_pos_[local(r.to)]++] = r;
  }
  for (NodeId d : dests_) inbox_pos_[local(d)] = 0;  // all-zero for next round
}

void ShardRuntime::deliver_bucket(std::size_t b, NodeContext& ctx,
                                  std::size_t& receptions) {
  std::sort(scratch_.begin() + static_cast<std::ptrdiff_t>(spans_[b]),
            scratch_.begin() + static_cast<std::ptrdiff_t>(spans_[b + 1]),
            [](const detail::Routed& a, const detail::Routed& b2) {
              return std::tie(a.msg.sender, a.msg.type, a.msg.data) <
                     std::tie(b2.msg.sender, b2.msg.type, b2.msg.data);
            });
  const NodeId d = dests_[b];
  NodeAgent& agent = *agents_[local(d)];
  for (std::size_t i = spans_[b]; i < spans_[b + 1]; ++i) {
    ++receptions;
    agent.on_message(ctx, scratch_[i].msg);
  }
}

void ShardRuntime::deliver_lossy_all(obs::LocalHistogram* hist,
                                     detail::EngineOutbox* sink) {
  for (std::size_t b = 0; b < dests_.size(); ++b) {
    NodeContext ctx(*this, dests_[b], sink);
    if (hist != nullptr) hist->record(spans_[b + 1] - spans_[b]);
    deliver_bucket(b, ctx, stats_->receptions);
  }
}

void ShardRuntime::run_on_start(detail::EngineOutbox* sink) {
  for (NodeId v = begin_; v < end_; ++v) {
    NodeContext ctx(*this, v, sink);
    agents_[local(v)]->on_start(ctx);
  }
}

void ShardRuntime::run_on_round_end(detail::EngineOutbox* sink) {
  for (NodeId v = begin_; v < end_; ++v) {
    NodeContext ctx(*this, v, sink);
    agents_[local(v)]->on_round_end(ctx);
  }
}

}  // namespace khop
