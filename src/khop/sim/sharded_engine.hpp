/// \file sharded_engine.hpp
/// Multi-shard synchronous round loop over a spatial partition.
///
/// ShardedEngine runs S ShardRuntimes (sim/shard_runtime.hpp), one per
/// contiguous range of a graph/partition.hpp ShardPlan, with the round
/// structure:
///
///   parallel shard step  ->  serial boundary exchange  ->  next round
///
/// During the shard step every runtime delivers its own inboxes and runs its
/// agents; a recorded send whose receiver lies in another shard becomes a
/// BoundaryMsg in the per-(src,dst)-shard outbox. The serial exchange then
/// inserts those into the receiving shards' buckets. Determinism does not
/// depend on exchange arrival order: every receiver's inbox is sorted into
/// the canonical (sender, type, payload) order before delivery, so the
/// sharded engine's traces, stats and discovery results are bit-identical
/// to the single-shard SyncEngine for any shard count and any thread count
/// (enforced by tests/test_engine_equivalence.cpp against the preserved
/// sim/reference.hpp oracle).
///
/// Lossy delivery mirrors the PR 5 parallel-merge discipline: during the
/// shard step handlers record RawSends into per-shard outboxes (never
/// touching the DeliveryModel), and the coordinator replays them serially
/// in ascending shard order - which is ascending global node order, the
/// exact serial consultation sequence.
///
/// Payload lifetime across the cut: a BoundaryMsg's payload aliases the
/// sending shard's write-side arena. All runtimes flip their double buffers
/// in lockstep (begin_round), so a payload recorded in round r is read by
/// the receiving shard in round r+1 and its arena side is cleared only at
/// round r+2 - exactly the window the view is needed for.
#pragma once

#include <cstddef>
#include <vector>

#include "khop/graph/graph.hpp"
#include "khop/graph/partition.hpp"
#include "khop/obs/metrics.hpp"
#include "khop/sim/message.hpp"
#include "khop/sim/shard_runtime.hpp"

namespace khop {

class ThreadPool;

/// Coordinator for S per-shard runtimes. Public surface mirrors SyncEngine;
/// the reuse contract (run() restarts from scratch, agents re-created from
/// the factory in ascending node order) is identical.
class ShardedEngine {
 public:
  using AgentFactory = khop::AgentFactory;

  /// Partitions \p g into \p num_shards contiguous ranges and builds one
  /// runtime per shard. \p delivery configures lossy links (the model is
  /// only ever consulted by the serial coordinator phases).
  ShardedEngine(const Graph& g, const AgentFactory& factory,
                std::size_t num_shards, const DeliveryOptions& delivery = {});

  /// Runs until quiescence (all agents finished, nothing in flight in any
  /// shard) or \p max_rounds. Returns true iff it reached quiescence.
  bool run(std::size_t max_rounds);

  /// Parallel shard executor: shards step concurrently, coordinator phases
  /// stay serial. Bit-identical to the serial overload for any thread count.
  bool run(std::size_t max_rounds, ThreadPool& pool);

  const SimStats& stats() const noexcept { return stats_; }
  std::size_t round() const noexcept { return round_; }

  NodeAgent& agent(NodeId v);
  const NodeAgent& agent(NodeId v) const;

  const Graph& graph() const noexcept { return *graph_; }
  const ShardPlan& plan() const noexcept { return plan_; }
  std::size_t num_shards() const noexcept { return shards_.size(); }

 private:
  /// One shard's runtime plus its coordinator-side books. shards_ is sized
  /// once at construction and never resized: each runtime holds a pointer
  /// to its shard's stats block.
  struct Shard {
    ShardRuntime rt;
    SimStats stats;  ///< per-shard tx/rx accounting, folded at end of run
    /// Boundary traffic recorded this phase, one vector per dst shard.
    std::vector<std::vector<BoundaryMsg>> outbound;
    /// Lossy-mode sink: handler sends recorded here, replayed serially.
    detail::EngineOutbox outbox;
    obs::LocalHistogram inbox_sizes;  ///< telemetry, merged at end of run
  };

  const Graph* graph_;
  DeliveryOptions delivery_;
  AgentFactory factory_;
  ShardPlan plan_;
  std::vector<Shard> shards_;
  detail::AdoptedArenas adopted_;  ///< lossy-mode outbox arenas, per side
  std::size_t round_ = 0;
  unsigned write_side_ = 0;  ///< runtimes' current write side (lockstep)
  SimStats stats_;
  bool ran_ = false;

  bool all_quiet() const;
  void reset_for_run();

  /// Runs the per-link delivery model for one replayed send and, if
  /// delivered, schedules it on the owning shard's write side.
  void attempt_deliver(NodeId from, NodeId to, std::uint16_t type,
                       PayloadView data);

  /// Serial replay of every shard's lossy outbox in ascending shard order
  /// (= ascending global node order): stats, model consults, insertion.
  void flush_lossy();

  /// Serial boundary exchange: drains every (src, dst) outbox into the
  /// receiving shards' write-side buckets. \p boundary_local samples the
  /// per-shard sent count when telemetry is on.
  void exchange(obs::LocalHistogram* boundary_local);

  /// Shared round loop; pool == nullptr steps shards serially.
  bool run_impl(std::size_t max_rounds, ThreadPool* pool);
};

}  // namespace khop
