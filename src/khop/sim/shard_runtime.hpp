/// \file shard_runtime.hpp
/// Per-shard delivery / agent-dispatch core of the synchronous simulator.
///
/// A ShardRuntime owns one contiguous node range [begin, end) of the graph:
/// the agents of those nodes, their double-buffered payload arenas and lossy
/// delivery queues, and the ideal-MAC fast-path state (per-sender broadcast
/// log, per-destination send buckets). It is the extraction of what used to
/// be the body of SyncEngine (sim/engine.hpp), which is now one full-range
/// runtime plus the round loop; ShardedEngine (sim/sharded_engine.hpp) runs
/// S of them over a graph/partition.hpp ShardPlan.
///
/// Sharded recording: when a ShardPlan is installed via set_partition, a
/// recorded send whose receiver lies outside [begin, end) becomes a
/// BoundaryMsg in the per-destination-shard outbox instead of a local
/// record; the coordinator exchanges those serially between rounds
/// (add_remote). With no plan installed (the single-engine case) every
/// receiver is local and the recording paths are exactly the historical
/// SyncEngine ones — same structures, same order, bit-identical output.
///
/// Thread-safety contract: a runtime instance is single-threaded. Parallel
/// executors keep runtimes (and their boundary outboxes) disjoint per
/// worker and route every shared decision — lossy DeliveryModel consults,
/// cross-shard message insertion — through a serial coordinator phase.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <span>
#include <vector>

#include "khop/graph/graph.hpp"
#include "khop/obs/metrics.hpp"
#include "khop/sim/message.hpp"

namespace khop {

class NodeContext;
class ShardPlan;
class ShardRuntime;
class ShardedEngine;
class SyncEngine;

/// Decides the fate of one per-link transmission attempt. The engine calls
/// attempt() in its deterministic enqueue order (sender processing order,
/// then ascending-neighbor order for broadcasts), so implementations backed
/// by a seeded rng make a lossy run a pure function of (topology, protocol,
/// seed). Concrete radio-driven implementations live in khop/radio/.
/// Parallel and sharded executors preserve this order: models are only ever
/// consulted during the serial outbox merge, never from a worker.
class DeliveryModel {
 public:
  virtual ~DeliveryModel() = default;

  /// True iff a single transmission attempt from -> to is delivered.
  /// Retries call it again, one call per attempt.
  virtual bool attempt(NodeId from, NodeId to) = 0;
};

/// Lossy-delivery configuration for a SyncEngine / ShardedEngine.
struct DeliveryOptions {
  /// Non-owning; must outlive the engine. nullptr = the paper's ideal MAC
  /// (the legacy code path, bit-for-bit).
  DeliveryModel* model = nullptr;
  /// Extra attempts per dropped per-link delivery (ARQ-style link retries).
  /// Each retry is recorded in SimStats::retransmissions; a delivery that
  /// still fails after the budget counts once in SimStats::drops.
  std::size_t retry_budget = 0;
};

/// One message crossing a shard cut: recorded by the sending shard at
/// record time, inserted into the receiving shard's send buckets by the
/// coordinator's serial exchange. The payload aliases the sending shard's
/// write-side arena; sides flip in lockstep across shards, so the view
/// stays valid through the delivery round.
struct BoundaryMsg {
  NodeId receiver = kInvalidNode;
  NodeId sender = kInvalidNode;
  std::uint16_t type = 0;
  PayloadView data;
};

namespace detail {
/// One recorded local broadcast: the ideal-MAC fast path stores it once per
/// sender instead of materializing one queue entry per neighbor - the
/// receiver set is exactly neighbors(sender), so delivery re-derives it.
struct BcastRec {
  std::uint16_t type = 0;
  PayloadView data;
};

/// One recorded addressed send, bucketed by destination.
struct SendRec {
  NodeId sender = kInvalidNode;
  std::uint16_t type = 0;
  PayloadView data;
};

/// One handler-recorded send in a parallel executor. Broadcasts keep
/// to == kInvalidNode and expand to per-neighbor deliveries at merge time,
/// in ascending-neighbor order - exactly the serial enqueue sequence.
struct RawSend {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  std::uint16_t type = 0;
  PayloadView data;
};

/// One scheduled lossy delivery: destination + the message it receives.
struct Routed {
  NodeId to = kInvalidNode;
  Message msg;
};

/// Per-chunk (or per-shard) sink for parallel executors: workers intern
/// payloads into a chunk-private arena and append RawSends; the owner
/// replays them (stats, delivery model, recording/queue pushes) serially in
/// chunk order.
struct EngineOutbox {
  PayloadArena arena;
  std::vector<RawSend> sends;
  std::size_t receptions = 0;
  /// Per-worker merge buffer for fast-path delivery (see deliver_fast_to).
  std::vector<BcastRec> scratch;
  /// Per-chunk inbox-size samples (telemetry only); merged at the serial
  /// join after each delivery phase, NOT dropped by reset() — the merge
  /// happens after the flush has already reset the chunk.
  obs::LocalHistogram inbox_sizes;

  void reset() noexcept {
    arena.clear();
    sends.clear();
    receptions = 0;
  }
};

/// Round-side store for payload arenas adopted from executor outboxes.
/// Instead of re-interning every replayed payload into the engine arena,
/// the flush moves the whole chunk arena here (block addresses are stable
/// under move, so the recorded views stay valid) and hands the chunk a
/// cleared arena from the pool — steady-state rounds copy each payload
/// once, at record time, and allocate nothing.
struct AdoptedArenas {
  std::vector<PayloadArena> side[2];
  std::vector<PayloadArena> pool;

  /// Moves \p a into \p s's store and replaces it with a pooled arena.
  void adopt(PayloadArena& a, unsigned s) {
    side[s].push_back(std::move(a));
    if (pool.empty()) {
      a = PayloadArena{};
    } else {
      a = std::move(pool.back());
      pool.pop_back();
    }
  }

  /// Returns side \p s's arenas (whose views are now dead) to the pool.
  void recycle(unsigned s) {
    for (PayloadArena& a : side[s]) {
      a.clear();
      pool.push_back(std::move(a));
    }
    side[s].clear();
  }

  void reset() {
    recycle(0);
    recycle(1);
  }
};
}  // namespace detail

/// Per-node handle the engine passes to agent callbacks.
class NodeContext {
 public:
  NodeId id() const noexcept { return id_; }
  std::size_t round() const noexcept;
  std::span<const NodeId> neighbors() const;

  /// Local broadcast: delivered to every neighbor next round. The words are
  /// copied (interned) before the call returns; the span need only be valid
  /// for the duration of the call.
  void broadcast(std::uint16_t type, std::span<const std::int64_t> data);
  void broadcast(std::uint16_t type, std::initializer_list<std::int64_t> data) {
    broadcast(type, std::span<const std::int64_t>(data.begin(), data.size()));
  }

  /// Addressed send to a direct neighbor: delivered next round.
  /// \pre `to` is a neighbor of this node
  void send(NodeId to, std::uint16_t type, std::span<const std::int64_t> data);
  void send(NodeId to, std::uint16_t type,
            std::initializer_list<std::int64_t> data) {
    send(to, type, std::span<const std::int64_t>(data.begin(), data.size()));
  }

 private:
  friend class ShardRuntime;
  friend class ShardedEngine;
  friend class SyncEngine;
  NodeContext(ShardRuntime& rt, NodeId id,
              detail::EngineOutbox* sink = nullptr)
      : rt_(&rt), id_(id), sink_(sink) {}
  ShardRuntime* rt_;
  NodeId id_;
  /// Non-null only under a parallel/deferred executor: sends are recorded
  /// here and replayed serially instead of touching runtime state.
  detail::EngineOutbox* sink_;
};

/// A protocol's per-node state machine.
class NodeAgent {
 public:
  virtual ~NodeAgent() = default;

  /// Round 0: initial sends.
  virtual void on_start(NodeContext& /*ctx*/) {}

  /// One delivered message (round >= 1).
  virtual void on_message(NodeContext& ctx, const Message& msg) = 0;

  /// End of every round (round >= 1), after all deliveries of that round.
  virtual void on_round_end(NodeContext& /*ctx*/) {}

  /// Termination hint: the engine stops when every agent is finished and no
  /// messages are in flight.
  virtual bool finished() const { return true; }
};

/// Creates the agent for one node. Engines retain the factory and call it
/// again, in ascending node order, to re-create agents on re-entry.
using AgentFactory = std::function<std::unique_ptr<NodeAgent>(NodeId)>;

/// The per-shard core: agents, arenas, recording buckets and delivery
/// machinery for one contiguous node range. Owned and driven by SyncEngine
/// (full range) or ShardedEngine (one per shard); not a standalone engine —
/// the owner runs the round loop and the serial merge/exchange phases.
class ShardRuntime {
 public:
  ShardRuntime() = default;
  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;
  ShardRuntime(ShardRuntime&&) = default;
  ShardRuntime& operator=(ShardRuntime&&) = default;

  /// Binds the runtime to nodes [begin, end) of \p g. \p stats is where
  /// recording and delivery account transmissions / receptions / drops
  /// (the owner's aggregate for a full-range core, a per-shard block under
  /// ShardedEngine). \p delivery is used only by the direct lossy path
  /// (single-engine serial mode); sharded lossy runs defer every model
  /// consult to the coordinator.
  void init(const Graph& g, NodeId begin, NodeId end,
            const DeliveryOptions& delivery, SimStats* stats);

  /// Installs the shard cut: recorded sends to receivers outside the range
  /// go to boundary_out[plan->shard_of(receiver)] instead of local buckets.
  /// \p boundary_out must point at plan->num_shards() vectors.
  void set_partition(const ShardPlan* plan,
                     std::vector<BoundaryMsg>* boundary_out);

  /// (Re-)creates the range's agents through \p factory, ascending.
  void create_agents(const AgentFactory& factory);

  /// Clears queues, arenas, recording state and the round counter; keeps
  /// capacity. Does not touch agents (see create_agents).
  void reset_state();

  NodeId range_begin() const noexcept { return begin_; }
  NodeId range_end() const noexcept { return end_; }
  std::size_t size() const noexcept { return end_ - begin_; }
  bool in_range(NodeId v) const noexcept { return v - begin_ < size(); }

  NodeAgent& agent(NodeId v);
  const NodeAgent& agent(NodeId v) const;

  /// True iff nothing is scheduled for delivery next round.
  bool write_side_empty() const noexcept {
    return queues_[write_].empty() && bcast_senders_[write_].empty() &&
           send_dests_[write_].empty();
  }

  /// True iff every local agent reports finished().
  bool agents_finished() const;

  /// Starts round \p round: flips the double buffers and clears the new
  /// write side (capacity retained). Returns the side to read, i.e. the
  /// side the previous round recorded into. Owners of multiple runtimes
  /// must call this on every one before any delivery (the sides flip in
  /// lockstep, which is what keeps cross-shard payload views alive through
  /// their delivery round).
  unsigned begin_round(std::size_t round);

  /// Inserts one boundary message from another shard into this shard's
  /// write-side send buckets. Serial coordinator phases only. Stats were
  /// already accounted by the sending shard at record time.
  void add_remote(const BoundaryMsg& m);

 private:
  friend class NodeContext;
  friend class ShardedEngine;
  friend class SyncEngine;

  NodeId local(NodeId v) const noexcept { return v - begin_; }
  bool ideal() const noexcept { return delivery_.model == nullptr; }

  /// Fast-path recording (ideal MAC): stats + intern + per-sender /
  /// per-destination bucket append; out-of-range receivers become
  /// BoundaryMsg records. The *_adopted variants take a payload that
  /// already lives in an adopted arena and skip the intern.
  void record_broadcast(NodeId from, std::uint16_t type,
                        std::span<const std::int64_t> data);
  void record_send(NodeId from, NodeId to, std::uint16_t type,
                   std::span<const std::int64_t> data);
  void record_broadcast_adopted(NodeId from, std::uint16_t type,
                                PayloadView payload);
  void record_send_adopted(NodeId from, NodeId to, std::uint16_t type,
                           PayloadView payload);

  /// Direct lossy recording (single-engine serial mode): stats + intern +
  /// immediate per-link model consults. Requires no partition installed.
  void lossy_broadcast(NodeId from, std::uint16_t type,
                       std::span<const std::int64_t> data);
  void lossy_send(NodeId from, NodeId to, std::uint16_t type,
                  std::span<const std::int64_t> data);

  /// Runs the per-link delivery model (drops/retries) and, if delivered,
  /// schedules \p data (already interned/adopted) for local receiver \p to.
  void enqueue_direct(NodeId from, NodeId to, std::uint16_t type,
                      PayloadView data);

  /// Schedules an already-delivered message (model consulted by the
  /// coordinator) for local receiver \p to next round.
  void push_delivered(NodeId to, const Message& msg) {
    queues_[write_].push_back(detail::Routed{to, msg});
  }

  /// Shared tail of every broadcast/send record path.
  void record_broadcast_rec(NodeId from, std::uint16_t type,
                            PayloadView payload);
  void record_send_rec(NodeId from, NodeId to, std::uint16_t type,
                       PayloadView payload);

  /// Sorts side \p read's records and builds dests_ (ascending in-range
  /// receiver set: every broadcaster's local neighborhood plus every send
  /// destination, including remote insertions).
  void prepare_fast_round(unsigned read);

  /// Read-side destinations, valid after prepare_fast_round.
  std::span<const NodeId> fast_dests() const noexcept { return dests_; }

  /// Delivers side \p read's messages to \p d in canonical order: senders
  /// ascending (d's adjacency), each sender's broadcasts merged with its
  /// addressed sends by (type, payload).
  void deliver_fast_to(NodeId d, unsigned read, NodeContext& ctx,
                       std::size_t& receptions,
                       std::vector<detail::BcastRec>& scratch);

  /// Serial ideal delivery of side \p read to every local destination,
  /// accounting receptions into stats_ and inbox sizes into \p hist.
  /// \p sink routes handler sends through an outbox (sharded lossy-free
  /// shards pass nullptr and record directly).
  void deliver_fast_all(unsigned read, obs::LocalHistogram* hist,
                        detail::EngineOutbox* sink = nullptr);

  /// O(dirty) reset of side \p side's fast-path buckets.
  void clear_fast_side(unsigned side) noexcept;

  /// Buckets side \p read's materialized queue by destination into
  /// scratch_ / dests_ / spans_.
  void partition_inbox(unsigned read);

  std::size_t num_buckets() const noexcept { return dests_.size(); }
  NodeId bucket_dest(std::size_t b) const noexcept { return dests_[b]; }
  std::size_t bucket_size(std::size_t b) const noexcept {
    return spans_[b + 1] - spans_[b];
  }

  /// Sorts bucket \p b by (sender, type, payload) and delivers it through
  /// \p ctx, counting into \p receptions.
  void deliver_bucket(std::size_t b, NodeContext& ctx,
                      std::size_t& receptions);

  /// Serial lossy delivery of every bucket (partition_inbox first).
  void deliver_lossy_all(obs::LocalHistogram* hist,
                         detail::EngineOutbox* sink = nullptr);

  /// Ascending on_start / on_round_end sweeps over the local range.
  void run_on_start(detail::EngineOutbox* sink);
  void run_on_round_end(detail::EngineOutbox* sink);

  const Graph* graph_ = nullptr;
  NodeId begin_ = 0;
  NodeId end_ = 0;
  DeliveryOptions delivery_;
  SimStats* stats_ = nullptr;
  const ShardPlan* plan_ = nullptr;
  std::vector<BoundaryMsg>* boundary_out_ = nullptr;

  std::vector<std::unique_ptr<NodeAgent>> agents_;  ///< local index
  /// Lossy-path state: double-buffered materialized delivery queues,
  /// indexed by write_. Ideal-MAC rounds leave these empty.
  std::vector<detail::Routed> queues_[2];
  /// Payload arenas, double-buffered by delivery round (both paths).
  PayloadArena arenas_[2];
  unsigned write_ = 0;
  std::size_t round_ = 0;

  /// Ideal-MAC fast-path state, double-buffered like queues_: a broadcast
  /// is recorded ONCE under its sender, addressed sends are bucketed by
  /// destination, and delivery walks each receiver's neighbor list (see
  /// sim/engine.hpp round-loop notes). Buckets and counters are indexed by
  /// LOCAL id (v - begin_); the dirty lists hold global ids.
  std::vector<detail::SendRec> bcast_log_[2];  ///< append order, per side
  std::vector<NodeId> bcast_senders_[2];       ///< dirty senders (global)
  std::vector<std::uint32_t> rec_count_[2];    ///< per-sender log counts
  std::vector<std::uint32_t> rec_begin_;       ///< read-side range starts
  std::vector<std::uint32_t> rec_cursor_;      ///< scatter cursors
  std::vector<detail::BcastRec> flat_recs_;    ///< read side, sender-grouped
  std::vector<std::vector<detail::SendRec>> sends_[2];  ///< per destination
  std::vector<NodeId> send_dests_[2];          ///< dirty dests (global)
  std::vector<std::uint32_t> dest_stamp_;      ///< receiver-set dedup marks
  std::uint32_t dest_epoch_ = 0;
  std::vector<detail::BcastRec> merge_scratch_;  ///< serial merge buffer

  /// Lossy-path receiver-batching scratch, persistent across rounds
  /// (capacity only grows). inbox_pos_ doubles as per-destination count,
  /// then scatter cursor; it is returned to all-zero after every partition.
  std::vector<detail::Routed> scratch_;  ///< destination-bucketed inbox
  std::vector<std::size_t> inbox_pos_;   ///< per-destination count/cursor
  std::vector<NodeId> dests_;            ///< distinct destinations, ascending
  std::vector<std::size_t> spans_;  ///< bucket b = scratch_[spans_[b]..[b+1])
};

}  // namespace khop
