/// \file message.hpp
/// Wire format and accounting for the synchronous message-passing simulator.
///
/// Payloads are sequences of 64-bit words: rich enough for every protocol
/// here (flood origins, hop counters, adjacency sets) while keeping the
/// overhead accounting trivial (1 word = 8 bytes).
///
/// Delivered messages carry a PayloadView into the engine's round arena: a
/// broadcast materializes its payload once and every receiving neighbor's
/// Message aliases the same immutable words, instead of the historical one
/// deep copy per neighbor. Views are valid only while the handler runs
/// (through the end of the delivery round); protocols that keep payload data
/// must copy it (PayloadView converts implicitly to std::vector).
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <span>
#include <vector>

#include "khop/common/types.hpp"

namespace khop {

/// Non-owning view of an immutable message payload. Ordered lexicographically
/// by words, which keeps the engine's (sender, type, payload) inbox sort
/// bit-identical to the old vector-payload behaviour.
class PayloadView {
 public:
  constexpr PayloadView() = default;
  constexpr PayloadView(const std::int64_t* words, std::size_t size) noexcept
      : words_(words), size_(size) {}

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  const std::int64_t& operator[](std::size_t i) const noexcept {
    return words_[i];
  }
  const std::int64_t* begin() const noexcept { return words_; }
  const std::int64_t* end() const noexcept { return words_ + size_; }

  std::vector<std::int64_t> to_vector() const { return {begin(), end()}; }

  /// Implicit copy-out so existing call sites (`std::vector<...> fwd =
  /// msg.data;`) keep working unchanged.
  operator std::vector<std::int64_t>() const { return to_vector(); }

  /// Implicit view so forwarding call sites (`ctx.send(..., msg.data)`)
  /// hit the span-based engine API without materializing a vector.
  constexpr operator std::span<const std::int64_t>() const noexcept {
    return {words_, size_};
  }

  friend bool operator==(PayloadView a, PayloadView b) noexcept {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend std::strong_ordering operator<=>(PayloadView a,
                                          PayloadView b) noexcept {
    return std::lexicographical_compare_three_way(a.begin(), a.end(),
                                                  b.begin(), b.end());
  }

 private:
  const std::int64_t* words_ = nullptr;
  std::size_t size_ = 0;
};

/// Bump arena for message payload words. intern() appends into chunked
/// blocks whose addresses are stable (a block never reallocates once words
/// point into it), and clear() resets for reuse without releasing capacity -
/// the engine keeps two, double-buffered by delivery round.
class PayloadArena {
 public:
  /// Copies \p words into the arena and returns a stable view of them.
  PayloadView intern(std::span<const std::int64_t> words) {
    if (words.empty()) return {};
    std::vector<std::int64_t>& block = reserve_block(words.size());
    const std::int64_t* start = block.data() + block.size();
    block.insert(block.end(), words.begin(), words.end());
    return {start, words.size()};
  }

  /// Invalidates every view handed out since the last clear(). Keeps block
  /// capacity so steady-state rounds allocate nothing.
  void clear() noexcept {
    for (std::vector<std::int64_t>& block : blocks_) block.clear();
    scan_start_ = 0;
  }

  /// Diagnostic: blocks allocated so far. Bounded-growth regression tests
  /// assert on this (see the stranding note at reserve_block).
  std::size_t num_blocks() const noexcept { return blocks_.size(); }

 private:
  static constexpr std::size_t kMinBlockWords = 4096;
  /// Blocks whose remaining capacity drops below this are retired from the
  /// front of the first-fit scan until the next clear(). The threshold
  /// trades a bounded strand (< kRetireWords per block, ~6% of a standard
  /// block) for scan cost: crumbs left by payloads up to this size retire
  /// as the prefix exhausts, keeping the scan O(1) amortized for the small
  /// payloads that dominate. Blocks retaining more free space than this
  /// stay scannable (they can host later smaller payloads), so a stream of
  /// same-sized payloads each leaving > kRetireWords of slack degrades to
  /// O(active blocks) per new block - bounded in practice by the round's
  /// payload volume / kMinBlockWords.
  static constexpr std::size_t kRetireWords = 256;

  /// A block with room for \p len more words without reallocating.
  ///
  /// First-fit over the non-retired blocks. The pre-PR5 version advanced a
  /// monotone cursor past any block that could not fit the current payload
  /// and never revisited it, so alternating large/small interns stranded
  /// most of each block's capacity and grew the block list without bound
  /// within a round (one block per intern in the worst case).
  std::vector<std::int64_t>& reserve_block(std::size_t len) {
    while (scan_start_ < blocks_.size() &&
           blocks_[scan_start_].capacity() - blocks_[scan_start_].size() <
               kRetireWords) {
      ++scan_start_;
    }
    for (std::size_t i = scan_start_; i < blocks_.size(); ++i) {
      if (blocks_[i].capacity() - blocks_[i].size() >= len) return blocks_[i];
    }
    blocks_.emplace_back().reserve(std::max(kMinBlockWords, len));
    return blocks_.back();
  }

  std::vector<std::vector<std::int64_t>> blocks_;
  std::size_t scan_start_ = 0;
};

struct Message {
  NodeId sender = kInvalidNode;  ///< immediate (1-hop) sender
  std::uint16_t type = 0;        ///< protocol-defined tag
  PayloadView data;              ///< valid for the delivery round only
};

/// Protocol cost accounting. A local broadcast is one radio transmission
/// heard by deg(sender) receivers; an addressed send is one transmission
/// with a single receiver (ideal-MAC model, as assumed by the paper). Under
/// a lossy DeliveryModel the per-link deliveries additionally record drops
/// and link-layer retries; both stay 0 on the ideal MAC.
struct SimStats {
  std::size_t rounds = 0;
  std::size_t transmissions = 0;   ///< radio sends
  std::size_t receptions = 0;      ///< message deliveries
  std::size_t payload_words = 0;   ///< sum of data words transmitted
  std::size_t drops = 0;           ///< per-link deliveries lost for good
                                   ///< (after exhausting any retry budget)
  std::size_t retransmissions = 0; ///< link-layer retries attempted

  /// Counts one radio transmission carrying \p words payload words — the
  /// single accounting point shared by every engine send path (broadcast /
  /// addressed, serial / recorded / replayed).
  void note_transmission(std::size_t words) noexcept {
    ++transmissions;
    payload_words += words;
  }

  /// Adds these counters to the global obs::Registry under the `engine.*`
  /// metric names (see docs/observability.md). The struct stays the
  /// per-engine view; the registry is the queryable cross-engine store.
  /// Called by SyncEngine at the end of every run when telemetry is
  /// enabled; defined in sim/engine.cpp.
  void publish() const;
};

}  // namespace khop
