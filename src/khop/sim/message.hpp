/// \file message.hpp
/// Wire format and accounting for the synchronous message-passing simulator.
///
/// Payloads are vectors of 64-bit words: rich enough for every protocol here
/// (flood origins, hop counters, adjacency sets) while keeping the overhead
/// accounting trivial (1 word = 8 bytes).
#pragma once

#include <cstdint>
#include <vector>

#include "khop/common/types.hpp"

namespace khop {

struct Message {
  NodeId sender = kInvalidNode;  ///< immediate (1-hop) sender
  std::uint16_t type = 0;        ///< protocol-defined tag
  std::vector<std::int64_t> data;
};

/// Protocol cost accounting. A local broadcast is one radio transmission
/// heard by deg(sender) receivers; an addressed send is one transmission
/// with a single receiver (ideal-MAC model, as assumed by the paper). Under
/// a lossy DeliveryModel the per-link deliveries additionally record drops
/// and link-layer retries; both stay 0 on the ideal MAC.
struct SimStats {
  std::size_t rounds = 0;
  std::size_t transmissions = 0;   ///< radio sends
  std::size_t receptions = 0;      ///< message deliveries
  std::size_t payload_words = 0;   ///< sum of data words transmitted
  std::size_t drops = 0;           ///< per-link deliveries lost for good
                                   ///< (after exhausting any retry budget)
  std::size_t retransmissions = 0; ///< link-layer retries attempted
};

}  // namespace khop
