/// \file reference.hpp
/// Pre-PR5 synchronous engine, preserved verbatim as an independent oracle.
///
/// The production SyncEngine (engine.hpp) now partitions each round's
/// in-flight messages by receiver and sorts only within each inbox (plus a
/// ThreadPool round executor); this copy keeps the original structure — one
/// flat O(M log M) comparison sort over every in-flight message per round,
/// whose comparator lexicographically compares payload words — and the
/// original std::map-backed NeighborhoodDiscoveryAgent. They exist for the
/// bit-exact equivalence suite (test_engine_equivalence) and as the `legacy`
/// baseline the perf-regression harness measures `engine_flood` speedups
/// against. Not for production call sites.
///
/// Shared vocabulary (Message, PayloadView, PayloadArena, SimStats,
/// DeliveryModel, DeliveryOptions) comes from the production headers; only
/// the engine classes and the discovery agent are duplicated.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "khop/graph/graph.hpp"
#include "khop/sim/engine.hpp"
#include "khop/sim/message.hpp"

namespace khop::reference {

class SyncEngine;

/// Per-node handle the reference engine passes to agent callbacks.
class NodeContext {
 public:
  NodeId id() const noexcept { return id_; }
  std::size_t round() const noexcept;
  std::span<const NodeId> neighbors() const;

  /// Local broadcast: delivered to every neighbor next round.
  void broadcast(std::uint16_t type, std::vector<std::int64_t> data);

  /// Addressed send to a direct neighbor: delivered next round.
  /// \pre `to` is a neighbor of this node
  void send(NodeId to, std::uint16_t type, std::vector<std::int64_t> data);

 private:
  friend class SyncEngine;
  NodeContext(SyncEngine& engine, NodeId id) : engine_(&engine), id_(id) {}
  SyncEngine* engine_;
  NodeId id_;
};

/// A protocol's per-node state machine (reference-engine flavor).
class NodeAgent {
 public:
  virtual ~NodeAgent() = default;
  virtual void on_start(NodeContext& /*ctx*/) {}
  virtual void on_message(NodeContext& ctx, const Message& msg) = 0;
  virtual void on_round_end(NodeContext& /*ctx*/) {}
  virtual bool finished() const { return true; }
};

/// The pre-PR5 simulator, verbatim: flat double-buffered delivery queue and
/// one whole-queue (to, sender, type, payload) sort per round. Single-run
/// (it predates the re-entry fix; construct a fresh instance per run).
class SyncEngine {
 public:
  using AgentFactory = std::function<std::unique_ptr<NodeAgent>(NodeId)>;

  SyncEngine(const Graph& g, const AgentFactory& factory,
             const DeliveryOptions& delivery = {});

  bool run(std::size_t max_rounds);

  const SimStats& stats() const noexcept { return stats_; }
  std::size_t round() const noexcept { return round_; }

  NodeAgent& agent(NodeId v);
  const NodeAgent& agent(NodeId v) const;

  const Graph& graph() const noexcept { return *graph_; }

 private:
  friend class NodeContext;

  struct Routed {
    NodeId to = kInvalidNode;
    Message msg;
  };

  const Graph* graph_;
  DeliveryOptions delivery_;
  std::vector<std::unique_ptr<NodeAgent>> agents_;
  std::vector<Routed> queues_[2];
  PayloadArena arenas_[2];
  unsigned write_ = 0;
  std::size_t round_ = 0;
  SimStats stats_;

  void enqueue(NodeId from, NodeId to, std::uint16_t type, PayloadView data);
};

/// The pre-PR5 k-hop discovery agent, verbatim: per-node
/// std::map<NodeId, Known> with one try_emplace per delivered HELLO.
class NeighborhoodDiscoveryAgent : public NodeAgent {
 public:
  struct Known {
    Hops dist = kUnreachable;
    NodeId parent = kInvalidNode;
  };

  explicit NeighborhoodDiscoveryAgent(Hops k) : k_(k) {}

  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext& ctx, const Message& msg) override;

  const std::map<NodeId, Known>& known() const noexcept { return known_; }

 private:
  static constexpr std::uint16_t kHello = 1;

  Hops k_;
  std::map<NodeId, Known> known_;
};

}  // namespace khop::reference
