#include "khop/sim/sharded_engine.hpp"

#include <utility>

#include "khop/common/assert.hpp"
#include "khop/obs/trace.hpp"
#include "khop/runtime/thread_pool.hpp"

namespace khop {

ShardedEngine::ShardedEngine(const Graph& g, const AgentFactory& factory,
                             std::size_t num_shards,
                             const DeliveryOptions& delivery)
    : graph_(&g),
      delivery_(delivery),
      factory_(factory),
      plan_(g, num_shards),
      shards_(num_shards) {
  KHOP_REQUIRE(static_cast<bool>(factory_), "agent factory required");
  for (std::size_t s = 0; s < num_shards; ++s) {
    Shard& sh = shards_[s];
    const ShardRange& r = plan_.shard(s);
    sh.outbound.resize(num_shards);
    sh.rt.init(g, r.begin, r.end, delivery_, &sh.stats);
    sh.rt.set_partition(&plan_, sh.outbound.data());
    sh.rt.create_agents(factory_);
  }
}

NodeAgent& ShardedEngine::agent(NodeId v) {
  KHOP_REQUIRE(v < graph_->num_nodes(), "node out of range");
  return shards_[plan_.shard_of(v)].rt.agent(v);
}

const NodeAgent& ShardedEngine::agent(NodeId v) const {
  KHOP_REQUIRE(v < graph_->num_nodes(), "node out of range");
  return shards_[plan_.shard_of(v)].rt.agent(v);
}

bool ShardedEngine::all_quiet() const {
  for (const Shard& sh : shards_) {
    if (!sh.rt.write_side_empty() || !sh.rt.agents_finished()) return false;
  }
  return true;
}

void ShardedEngine::reset_for_run() {
  if (ran_) {
    // Ascending shard order = ascending global node order: the factory sees
    // the same re-creation sequence as SyncEngine's reuse contract.
    for (Shard& sh : shards_) sh.rt.create_agents(factory_);
  }
  ran_ = true;
  round_ = 0;
  write_side_ = 0;
  stats_ = SimStats{};
  for (Shard& sh : shards_) {
    sh.stats = SimStats{};
    sh.rt.reset_state();
    for (std::vector<BoundaryMsg>& v : sh.outbound) v.clear();
    sh.outbox.reset();
    sh.outbox.inbox_sizes.clear();
    sh.inbox_sizes.clear();
  }
  adopted_.reset();
}

void ShardedEngine::attempt_deliver(NodeId from, NodeId to, std::uint16_t type,
                                    PayloadView data) {
  if (delivery_.model != nullptr) {
    bool delivered = delivery_.model->attempt(from, to);
    for (std::size_t retry = 0; !delivered && retry < delivery_.retry_budget;
         ++retry) {
      ++stats_.retransmissions;
      delivered = delivery_.model->attempt(from, to);
    }
    if (!delivered) {
      ++stats_.drops;
      return;
    }
  }
  shards_[plan_.shard_of(to)].rt.push_delivered(to, Message{from, type, data});
}

void ShardedEngine::flush_lossy() {
  // Ascending shard order, and within each shard the outbox preserves the
  // ascending-destination processing order of the parallel phase - so the
  // DeliveryModel sees the exact consultation sequence of the serial
  // single-shard engine (broadcasts expand per ascending neighbor).
  for (Shard& sh : shards_) {
    for (const detail::RawSend& raw : sh.outbox.sends) {
      stats_.note_transmission(raw.data.size());
      if (raw.to == kInvalidNode) {
        for (NodeId v : graph_->neighbors(raw.from)) {
          attempt_deliver(raw.from, v, raw.type, raw.data);
        }
      } else {
        attempt_deliver(raw.from, raw.to, raw.type, raw.data);
      }
    }
    // Delivered views alias this outbox's arena: move it into the current
    // write side's store (addresses stable under move); it is recycled when
    // that side next becomes the write side, i.e. after its delivery round.
    if (sh.outbox.arena.num_blocks() > 0) {
      adopted_.adopt(sh.outbox.arena, write_side_);
    }
    sh.outbox.reset();
  }
}

void ShardedEngine::exchange(obs::LocalHistogram* boundary_local) {
  obs::Span span("sharded/exchange");
  const std::size_t S = shards_.size();
  if (boundary_local != nullptr) {
    for (Shard& sh : shards_) {
      std::size_t sent = 0;
      for (const std::vector<BoundaryMsg>& box : sh.outbound) {
        sent += box.size();
      }
      boundary_local->record(sent);
    }
  }
  // Insertion order across shards is irrelevant to the result (every
  // receiver's bucket is sorted into (sender, type, payload) order before
  // delivery); dst-major iteration just keeps the drain deterministic.
  for (std::size_t dst = 0; dst < S; ++dst) {
    ShardRuntime& rt = shards_[dst].rt;
    for (std::size_t src = 0; src < S; ++src) {
      std::vector<BoundaryMsg>& box = shards_[src].outbound[dst];
      for (const BoundaryMsg& m : box) rt.add_remote(m);
      box.clear();
    }
  }
}

bool ShardedEngine::run(std::size_t max_rounds) {
  return run_impl(max_rounds, nullptr);
}

bool ShardedEngine::run(std::size_t max_rounds, ThreadPool& pool) {
  return run_impl(max_rounds, &pool);
}

bool ShardedEngine::run_impl(std::size_t max_rounds, ThreadPool* pool) {
  reset_for_run();

  obs::Span run_span("sharded/run");
  const bool tel = obs::enabled();
  obs::Histogram* inbox_hist =
      tel ? &obs::Registry::global().histogram("engine.inbox_size") : nullptr;
  obs::Histogram* boundary_hist =
      tel ? &obs::Registry::global().histogram("shard.boundary_msgs")
          : nullptr;
  obs::LocalHistogram boundary_local;
  obs::LocalHistogram* const boundary_sink =
      boundary_hist != nullptr ? &boundary_local : nullptr;

  const bool lossy = delivery_.model != nullptr;
  const std::size_t S = shards_.size();

  // One body invocation per shard, concurrent when a pool is given. Each
  // shard is touched by exactly one worker per phase; runtimes, outbound
  // boxes and outboxes are shard-private, so phases share nothing mutable.
  const auto shard_phase = [&](auto&& body) {
    if (pool == nullptr || S == 1) {
      for (std::size_t s = 0; s < S; ++s) body(s);
      return;
    }
    parallel_for_throwing(*pool, S, [&](std::size_t s) {
      obs::Span span("sharded/shard");
      span.arg("shard", static_cast<std::int64_t>(s));
      body(s);
    });
  };

  // Live totals across the coordinator and every shard block (the per-shard
  // stats are only folded into stats_ once, at end of run).
  const auto totals = [&] {
    std::size_t rx = stats_.receptions;
    std::size_t tx = stats_.transmissions;
    for (const Shard& sh : shards_) {
      rx += sh.stats.receptions;
      tx += sh.stats.transmissions;
    }
    return std::pair<std::size_t, std::size_t>(rx, tx);
  };

  if (!lossy) {
    // Ideal MAC: agents record straight into their shard runtime; boundary
    // sends land in the outbound boxes and are exchanged serially.
    shard_phase([&](std::size_t s) { shards_[s].rt.run_on_start(nullptr); });
    exchange(boundary_sink);
  } else {
    // Lossy: every send defers through the shard outbox so the model is
    // consulted only in the serial flush, in global node order.
    shard_phase(
        [&](std::size_t s) { shards_[s].rt.run_on_start(&shards_[s].outbox); });
    flush_lossy();
  }

  bool quiesced = false;
  while (round_ < max_rounds) {
    if (all_quiet()) {
      quiesced = true;
      break;
    }

    ++round_;
    ++stats_.rounds;
    obs::Span round_span("sharded/round");
    const auto [rx0, tx0] = totals();

    // Lockstep flip: every runtime swaps its double buffers before any
    // delivery, which is what keeps cross-shard payload views (aliasing the
    // sender's previous write side) valid through this round.
    unsigned read = 0;
    for (Shard& sh : shards_) read = sh.rt.begin_round(round_);
    write_side_ = read ^ 1u;
    adopted_.recycle(write_side_);

    if (!lossy) {
      // Delivery and round-end fuse into one shard phase: agents never read
      // other nodes' state, every shard's records keep their in-shard
      // relative order, and receiver buckets are sorted before delivery -
      // so the fused phase is bit-identical to SyncEngine's two phases.
      shard_phase([&](std::size_t s) {
        Shard& sh = shards_[s];
        sh.rt.prepare_fast_round(read);
        sh.rt.deliver_fast_all(
            read, inbox_hist != nullptr ? &sh.inbox_sizes : nullptr);
        sh.rt.run_on_round_end(nullptr);
      });
      exchange(boundary_sink);
    } else {
      // Lossy phases cannot fuse: the model must see every delivery-phase
      // send before any round-end send, exactly like the serial engine.
      shard_phase([&](std::size_t s) {
        Shard& sh = shards_[s];
        sh.rt.partition_inbox(read);
        sh.rt.deliver_lossy_all(
            inbox_hist != nullptr ? &sh.inbox_sizes : nullptr, &sh.outbox);
      });
      flush_lossy();
      shard_phase([&](std::size_t s) {
        shards_[s].rt.run_on_round_end(&shards_[s].outbox);
      });
      flush_lossy();
    }

    const auto [rx1, tx1] = totals();
    round_span.arg("delivered", static_cast<std::int64_t>(rx1 - rx0));
    round_span.arg("sent", static_cast<std::int64_t>(tx1 - tx0));
  }

  const bool done = quiesced || all_quiet();

  // Fold the per-shard accounting into the engine aggregate (rounds and the
  // lossy-path tx/drops/retransmissions already live in stats_).
  for (const Shard& sh : shards_) {
    stats_.transmissions += sh.stats.transmissions;
    stats_.receptions += sh.stats.receptions;
    stats_.payload_words += sh.stats.payload_words;
    stats_.drops += sh.stats.drops;
    stats_.retransmissions += sh.stats.retransmissions;
  }

  if (inbox_hist != nullptr) {
    obs::LocalHistogram inbox_local;
    for (Shard& sh : shards_) inbox_local.merge(sh.inbox_sizes);
    inbox_local.flush(*inbox_hist);
  }
  if (boundary_hist != nullptr) boundary_local.flush(*boundary_hist);
  if (tel) stats_.publish();
  run_span.arg("shards", static_cast<std::int64_t>(S));
  run_span.arg("rounds", static_cast<std::int64_t>(stats_.rounds));
  run_span.arg("transmissions",
               static_cast<std::int64_t>(stats_.transmissions));
  run_span.arg("receptions", static_cast<std::int64_t>(stats_.receptions));
  run_span.arg("quiesced", done ? 1 : 0);
  return done;
}

}  // namespace khop
