/// \file neighborhood.hpp
/// k-hop neighborhood discovery by bounded flooding: every node announces
/// itself; announcements are relayed up to k hops. Afterwards each node
/// knows every node within k hops, with its hop distance and a canonical
/// (min-id) parent pointer back toward it.
///
/// This is the information-gathering primitive underlying all the paper's
/// "(2k+1)-hop local information" claims; its stats quantify the
/// communication cost of a k-hop view.
#pragma once

#include <map>

#include "khop/sim/engine.hpp"

namespace khop {

class NeighborhoodDiscoveryAgent : public NodeAgent {
 public:
  /// Discovery record for one known origin.
  struct Known {
    Hops dist = kUnreachable;
    NodeId parent = kInvalidNode;  ///< neighbor one hop closer to the origin
  };

  explicit NeighborhoodDiscoveryAgent(Hops k) : k_(k) {}

  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext& ctx, const Message& msg) override;

  /// Map origin -> record, for all origins within k hops (self excluded).
  const std::map<NodeId, Known>& known() const noexcept { return known_; }

 private:
  static constexpr std::uint16_t kHello = 1;

  Hops k_;
  std::map<NodeId, Known> known_;
};

}  // namespace khop
