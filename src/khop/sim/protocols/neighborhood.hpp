/// \file neighborhood.hpp
/// k-hop neighborhood discovery by bounded flooding: every node announces
/// itself; announcements are relayed up to k hops. Afterwards each node
/// knows every node within k hops, with its hop distance and a canonical
/// (min-id) parent pointer back toward it.
///
/// This is the information-gathering primitive underlying all the paper's
/// "(2k+1)-hop local information" claims; its stats quantify the
/// communication cost of a k-hop view.
///
/// The per-origin record is a KnownTable: a flat, epoch-stamped,
/// open-addressed slot vector in the DistCache / EpochFlags mold
/// (runtime/workspace.hpp) - O(1) stamped validity instead of per-node-wide
/// rows, because all n agents coexist and an n-wide row per agent would be
/// O(n^2) memory. It replaces the historical std::map<NodeId, Known>, whose
/// per-message try_emplace (one allocation per discovered origin, pointer
/// chasing per lookup) dominated the engine-flood profile; the preserved
/// map-based agent lives in sim/reference.hpp.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "khop/sim/engine.hpp"

namespace khop {

/// Discovery record for one known origin.
struct KnownRecord {
  Hops dist = kUnreachable;
  NodeId parent = kInvalidNode;  ///< neighbor one hop closer to the origin

  bool operator==(const KnownRecord&) const = default;
};

/// Flat open-addressed map NodeId -> KnownRecord with epoch-stamped slots:
/// clear() is O(1) (stamp bump), lookups are linear probes over one
/// contiguous slot vector, and capacity is retained across generations -
/// the DistCache/EpochFlags reuse discipline applied to a sparse id set.
class KnownTable {
 public:
  /// Record for \p origin, inserting a default one if absent. \p inserted
  /// reports which happened (the try_emplace contract).
  KnownRecord& upsert(NodeId origin, bool& inserted) {
    if (size_ + 1 > (slots_.size() * 7) / 10) grow();
    Slot& s = probe(origin);
    inserted = s.stamp != epoch_;
    if (inserted) {
      s = Slot{origin, epoch_, KnownRecord{}};
      ++size_;
    }
    return s.rec;
  }

  /// Record for \p origin, or nullptr if never discovered.
  const KnownRecord* find(NodeId origin) const {
    if (slots_.empty()) return nullptr;
    std::size_t i = index_of(origin);
    while (slots_[i].stamp == epoch_) {
      if (slots_[i].origin == origin) return &slots_[i].rec;
      i = (i + 1) & (slots_.size() - 1);
    }
    return nullptr;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Calls fn(origin, record) for every entry, in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.stamp == epoch_) fn(s.origin, s.rec);
    }
  }

  /// Owned snapshot sorted by origin id (test/inspection convenience).
  std::vector<std::pair<NodeId, KnownRecord>> sorted_items() const;

  /// Forgets every entry in O(1); capacity is retained.
  void clear() noexcept {
    if (epoch_ == std::numeric_limits<std::uint32_t>::max()) {
      for (Slot& s : slots_) s.stamp = 0;
      epoch_ = 0;
    }
    ++epoch_;
    size_ = 0;
  }

 private:
  struct Slot {
    NodeId origin = kInvalidNode;
    std::uint32_t stamp = 0;  ///< occupied iff == table epoch
    KnownRecord rec;
  };

  std::size_t index_of(NodeId origin) const noexcept {
    // Fibonacci multiplicative mix; slots_.size() is a power of two.
    return static_cast<std::size_t>(origin * 2654435761u) &
           (slots_.size() - 1);
  }

  Slot& probe(NodeId origin) {
    std::size_t i = index_of(origin);
    while (slots_[i].stamp == epoch_ && slots_[i].origin != origin) {
      i = (i + 1) & (slots_.size() - 1);
    }
    return slots_[i];
  }

  void grow();

  std::vector<Slot> slots_;
  std::uint32_t epoch_ = 1;  ///< never 0: fresh slots are always invalid
  std::size_t size_ = 0;
};

class NeighborhoodDiscoveryAgent : public NodeAgent {
 public:
  using Known = KnownRecord;

  explicit NeighborhoodDiscoveryAgent(Hops k) : k_(k) {}

  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext& ctx, const Message& msg) override;

  /// Origin -> record, for all origins within k hops (self excluded).
  const KnownTable& known() const noexcept { return known_; }

 private:
  static constexpr std::uint16_t kHello = 1;

  Hops k_;
  KnownTable known_;
};

}  // namespace khop
