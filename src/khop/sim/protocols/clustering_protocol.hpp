/// \file clustering_protocol.hpp
/// The paper's k-hop clustering as an actual distributed protocol.
///
/// Each election iteration spans 3k synchronous rounds:
///   [0, k)    CANDIDATE flood - undecided nodes announce (priority, id) up
///             to k hops; every node relays (distances are measured in G).
///   round k   election - an undecided node that saw no better-priority
///             undecided candidate declares itself clusterhead and starts a
///             DECLARE flood (k hops).
///   round 2k  affiliation - undecided nodes that heard declarations join
///             one head (ID- or distance-based rule) and send a JOIN,
///             relayed hop-by-hop along the declare flood's parent pointers.
///   round 3k  the next iteration begins for any remaining undecided nodes.
///
/// The protocol terminates when every node is decided; the test suite
/// asserts the outcome is bit-identical to the centralized khop_clustering.
#pragma once

#include <map>
#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/sim/engine.hpp"

namespace khop {

/// Order-preserving encoding of a double into int64 (used to ship priority
/// keys through integer payloads).
std::int64_t encode_priority(double key) noexcept;

class DistributedClusteringAgent : public NodeAgent {
 public:
  enum class State : std::uint8_t { kUndecided, kHead, kMember };

  DistributedClusteringAgent(Hops k, PriorityKey priority,
                             AffiliationRule rule);

  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext& ctx, const Message& msg) override;
  void on_round_end(NodeContext& ctx) override;
  bool finished() const override { return state_ != State::kUndecided; }

  State state() const noexcept { return state_; }
  NodeId head() const noexcept { return head_; }
  Hops dist_to_head() const noexcept { return dist_to_head_; }
  /// Members that joined this head (valid for heads after completion).
  const std::vector<NodeId>& joined_members() const noexcept {
    return members_;
  }

 private:
  static constexpr std::uint16_t kCandidate = 10;
  static constexpr std::uint16_t kDeclare = 11;
  static constexpr std::uint16_t kJoin = 12;

  struct FloodRecord {
    Hops dist = kUnreachable;
    NodeId parent = kInvalidNode;
  };

  Hops k_;
  PriorityKey priority_;
  AffiliationRule rule_;

  State state_ = State::kUndecided;
  NodeId head_ = kInvalidNode;
  Hops dist_to_head_ = kUnreachable;
  std::vector<NodeId> members_;

  std::int64_t iteration_ = 0;
  /// Current-iteration flood state, keyed by origin.
  std::map<NodeId, FloodRecord> candidates_;
  std::map<NodeId, std::pair<std::int64_t, NodeId>> candidate_keys_;
  std::map<NodeId, FloodRecord> declares_;

  std::size_t iteration_len() const noexcept {
    return static_cast<std::size_t>(3) * k_;
  }
  void begin_iteration(NodeContext& ctx);
};

/// Runs the protocol over \p g and extracts the resulting Clustering.
/// \p stats (optional) receives the engine's message accounting.
/// \p delivery (optional) runs the election over lossy links; the default
/// ideal MAC reproduces the legacy behaviour bit-for-bit. Note the protocol
/// has no application-level recovery: under heavy loss it may fail to
/// terminate within the round budget (KHOP_ASSERT) — pair lossy runs with a
/// retry budget.
Clustering run_distributed_clustering(const Graph& g, Hops k,
                                      const std::vector<PriorityKey>& prio,
                                      AffiliationRule rule,
                                      SimStats* stats = nullptr,
                                      const DeliveryOptions& delivery = {});

}  // namespace khop
