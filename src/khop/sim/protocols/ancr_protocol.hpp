/// \file ancr_protocol.hpp
/// Distributed A-NCR (paper section 3.1 / algorithm AC-LMST steps 1-8):
/// given an already-clustered network, each clusterhead learns its adjacent
/// clusterheads, the hop distances to them, and its neighbors' own adjacency
/// sets - everything LMSTGA needs - using only local message exchange.
///
/// Phase schedule (k = clustering parameter; rounds are engine rounds):
///   [0, k]        HEADCAST    heads flood their id k hops; members record
///                             distance + parent toward their own head.
///   k             CLUSTERID   every node broadcasts its head id once.
///   (k, 2k+1]     WITNESS     nodes that saw a foreign-cluster neighbor
///                             report that cluster's head id to their own
///                             head along HEADCAST parents.
///   (2k+1, 4k+2]  HEADCAST2   heads flood their id 2k+1 hops; everyone
///                             records distance + parent toward each head
///                             within 2k+1 hops.
///   (4k+2, 6k+3]  ADJSET      heads flood their adjacency set (with
///                             distances) 2k+1 hops; heads capture their
///                             neighbors' sets.
///
/// After round 6k+3 each head holds exactly the A-NCR neighbor selection the
/// centralized select_neighbors(kAdjacent) computes.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/nbr/neighbor_rules.hpp"
#include "khop/sim/engine.hpp"

namespace khop {

class AncrAgent : public NodeAgent {
 public:
  struct HeadInfo {
    Hops dist = kUnreachable;
    NodeId parent = kInvalidNode;
  };

  /// \p my_head / \p my_dist come from a completed clustering.
  AncrAgent(Hops k, NodeId my_head, Hops my_dist);

  void on_start(NodeContext& ctx) override;
  void on_message(NodeContext& ctx, const Message& msg) override;
  void on_round_end(NodeContext& ctx) override;
  bool finished() const override;

  bool is_head(NodeContext& ctx) const;
  NodeId my_head() const noexcept { return my_head_; }

  /// Heads only: adjacent head ids (the A-NCR selection), ascending.
  std::vector<NodeId> adjacent_heads() const;
  /// Heads only: adjacency sets heard from other heads (head -> its set
  /// with hop distances).
  const std::map<NodeId, std::vector<std::pair<NodeId, Hops>>>&
  neighbor_adjsets() const noexcept {
    return heard_adjsets_;
  }
  /// Every node: info (distance, parent) per head within 2k+1 hops.
  const std::map<NodeId, HeadInfo>& far_heads() const noexcept {
    return far_heads_;
  }

  /// Round after which the A-NCR state is complete.
  std::size_t done_round() const noexcept {
    return 6 * static_cast<std::size_t>(k_) + 3;
  }

 protected:
  static constexpr std::uint16_t kHeadcast = 20;
  static constexpr std::uint16_t kClusterId = 21;
  static constexpr std::uint16_t kWitness = 22;
  static constexpr std::uint16_t kHeadcast2 = 23;
  static constexpr std::uint16_t kAdjSet = 24;

  Hops k_;
  NodeId my_head_;
  Hops my_dist_;
  bool am_head_ = false;

  /// Phase 1: heads within k hops (distance, parent toward them).
  std::map<NodeId, HeadInfo> near_heads_;
  /// Neighbor -> its head id, from CLUSTERID.
  std::map<NodeId, NodeId> neighbor_heads_;
  /// Heads only: adjacent head ids accumulated from witnesses.
  std::set<NodeId> adjacency_;
  /// Phase 4: heads within 2k+1 hops.
  std::map<NodeId, HeadInfo> far_heads_;
  /// Phase 5: other heads' adjacency sets.
  std::map<NodeId, std::vector<std::pair<NodeId, Hops>>> heard_adjsets_;

  bool ancr_done_ = false;

  /// Hook for subclasses: called once at round done_round().
  virtual void on_ancr_complete(NodeContext& /*ctx*/) {}
};

/// Runs the protocol over a clustered graph and returns the selection in the
/// same shape as the centralized select_neighbors(kAdjacent).
NeighborSelection run_distributed_ancr(const Graph& g, const Clustering& c,
                                       SimStats* stats = nullptr);

/// The NC baseline as a protocol: the same exchange, but each head selects
/// every head it heard within 2k+1 hops (HEADCAST2) instead of only the
/// adjacent ones. Matches select_neighbors(kAllWithin2k1).
NeighborSelection run_distributed_nc(const Graph& g, const Clustering& c,
                                     SimStats* stats = nullptr);

}  // namespace khop
