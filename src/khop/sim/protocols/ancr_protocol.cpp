#include "khop/sim/protocols/ancr_protocol.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"

namespace khop {

AncrAgent::AncrAgent(Hops k, NodeId my_head, Hops my_dist)
    : k_(k), my_head_(my_head), my_dist_(my_dist) {
  KHOP_REQUIRE(k >= 1, "k must be >= 1");
}

bool AncrAgent::is_head(NodeContext& ctx) const {
  return my_head_ == ctx.id();
}

bool AncrAgent::finished() const { return ancr_done_; }

std::vector<NodeId> AncrAgent::adjacent_heads() const {
  return {adjacency_.begin(), adjacency_.end()};
}

void AncrAgent::on_start(NodeContext& ctx) {
  am_head_ = is_head(ctx);
  if (am_head_) {
    ctx.broadcast(kHeadcast, {static_cast<std::int64_t>(ctx.id()), 1});
  }
}

void AncrAgent::on_message(NodeContext& ctx, const Message& msg) {
  switch (msg.type) {
    case kHeadcast: {
      const auto origin = static_cast<NodeId>(msg.data[0]);
      const auto hops = static_cast<Hops>(msg.data[1]);
      if (origin == ctx.id()) return;
      auto [it, inserted] = near_heads_.try_emplace(origin);
      if (inserted || hops < it->second.dist) {
        it->second.dist = hops;
        it->second.parent = msg.sender;
        if (hops < k_) {
          ctx.broadcast(kHeadcast,
                        {static_cast<std::int64_t>(origin),
                         static_cast<std::int64_t>(hops + 1)});
        }
      } else if (hops == it->second.dist && msg.sender < it->second.parent) {
        it->second.parent = msg.sender;
      }
      break;
    }
    case kClusterId: {
      neighbor_heads_[msg.sender] = static_cast<NodeId>(msg.data[0]);
      break;
    }
    case kWitness: {
      const auto target = static_cast<NodeId>(msg.data[0]);
      if (target == ctx.id()) {
        for (std::size_t i = 1; i < msg.data.size(); ++i) {
          adjacency_.insert(static_cast<NodeId>(msg.data[i]));
        }
      } else {
        const auto it = near_heads_.find(target);
        KHOP_ASSERT(it != near_heads_.end(),
                    "witness relay has no route toward the head");
        ctx.send(it->second.parent, kWitness, msg.data);
      }
      break;
    }
    case kHeadcast2: {
      const auto origin = static_cast<NodeId>(msg.data[0]);
      const auto hops = static_cast<Hops>(msg.data[1]);
      if (origin == ctx.id()) return;
      auto [it, inserted] = far_heads_.try_emplace(origin);
      if (inserted || hops < it->second.dist) {
        it->second.dist = hops;
        it->second.parent = msg.sender;
        if (hops < 2 * k_ + 1) {
          ctx.broadcast(kHeadcast2,
                        {static_cast<std::int64_t>(origin),
                         static_cast<std::int64_t>(hops + 1)});
        }
      } else if (hops == it->second.dist && msg.sender < it->second.parent) {
        it->second.parent = msg.sender;
      }
      break;
    }
    case kAdjSet: {
      const auto origin = static_cast<NodeId>(msg.data[0]);
      const auto hops = static_cast<Hops>(msg.data[1]);
      if (origin == ctx.id()) return;
      // Flood with duplicate suppression keyed on "already stored".
      const bool known = heard_adjsets_.contains(origin);
      if (!known) {
        std::vector<std::pair<NodeId, Hops>> set;
        for (std::size_t i = 2; i + 1 < msg.data.size(); i += 2) {
          set.emplace_back(static_cast<NodeId>(msg.data[i]),
                           static_cast<Hops>(msg.data[i + 1]));
        }
        heard_adjsets_.emplace(origin, std::move(set));
        if (hops < 2 * k_ + 1) {
          std::vector<std::int64_t> fwd = msg.data;
          fwd[1] = static_cast<std::int64_t>(hops + 1);
          ctx.broadcast(kAdjSet, std::move(fwd));
        }
      }
      break;
    }
    default:
      KHOP_ASSERT(false, "unexpected message type in AncrAgent");
  }
}

void AncrAgent::on_round_end(NodeContext& ctx) {
  const std::size_t r = ctx.round();
  const std::size_t k = k_;

  if (r == k) {
    // Every node announces its cluster once.
    ctx.broadcast(kClusterId, {static_cast<std::int64_t>(my_head_)});
  } else if (r == k + 1) {
    // Witness detection: neighbors in a different cluster.
    std::set<NodeId> foreign;
    for (const auto& [nbr, head] : neighbor_heads_) {
      if (head != my_head_) foreign.insert(head);
    }
    if (!foreign.empty()) {
      if (am_head_) {
        adjacency_.insert(foreign.begin(), foreign.end());
      } else {
        std::vector<std::int64_t> data{static_cast<std::int64_t>(my_head_)};
        for (NodeId h : foreign) data.push_back(static_cast<std::int64_t>(h));
        const auto it = near_heads_.find(my_head_);
        KHOP_ASSERT(it != near_heads_.end(),
                    "member never heard its own head's HEADCAST");
        ctx.send(it->second.parent, kWitness, std::move(data));
      }
    }
  } else if (r == 2 * k + 1) {
    if (am_head_) {
      ctx.broadcast(kHeadcast2, {static_cast<std::int64_t>(ctx.id()), 1});
    }
  } else if (r == 4 * k + 2) {
    if (am_head_) {
      std::vector<std::int64_t> data{static_cast<std::int64_t>(ctx.id()), 1};
      for (NodeId adj : adjacency_) {
        const auto it = far_heads_.find(adj);
        KHOP_ASSERT(it != far_heads_.end(),
                    "adjacent head not heard within 2k+1 hops");
        data.push_back(static_cast<std::int64_t>(adj));
        data.push_back(static_cast<std::int64_t>(it->second.dist));
      }
      ctx.broadcast(kAdjSet, std::move(data));
    }
  } else if (r == done_round()) {
    ancr_done_ = true;
    on_ancr_complete(ctx);
  }
}

NeighborSelection run_distributed_nc(const Graph& g, const Clustering& c,
                                     SimStats* stats) {
  SyncEngine engine(g, [&](NodeId v) {
    return std::make_unique<AncrAgent>(c.k, c.head_of[v], c.dist_to_head[v]);
  });
  const bool done = engine.run(8 * static_cast<std::size_t>(c.k) + 16);
  KHOP_ASSERT(done, "distributed NC did not terminate");
  if (stats != nullptr) *stats = engine.stats();

  NeighborSelection sel;
  sel.rule = NeighborRule::kAllWithin2k1;
  sel.selected.resize(c.heads.size());
  for (std::uint32_t i = 0; i < c.heads.size(); ++i) {
    const auto& agent =
        dynamic_cast<const AncrAgent&>(engine.agent(c.heads[i]));
    for (const auto& [head, info] : agent.far_heads()) {
      if (!std::binary_search(c.heads.begin(), c.heads.end(), head)) continue;
      sel.selected[i].push_back(head);
      sel.head_pairs.emplace_back(std::min(c.heads[i], head),
                                  std::max(c.heads[i], head));
    }
    std::sort(sel.selected[i].begin(), sel.selected[i].end());
  }
  std::sort(sel.head_pairs.begin(), sel.head_pairs.end());
  sel.head_pairs.erase(
      std::unique(sel.head_pairs.begin(), sel.head_pairs.end()),
      sel.head_pairs.end());
  return sel;
}

NeighborSelection run_distributed_ancr(const Graph& g, const Clustering& c,
                                       SimStats* stats) {
  SyncEngine engine(g, [&](NodeId v) {
    return std::make_unique<AncrAgent>(c.k, c.head_of[v], c.dist_to_head[v]);
  });
  const bool done = engine.run(8 * static_cast<std::size_t>(c.k) + 16);
  KHOP_ASSERT(done, "distributed A-NCR did not terminate");
  if (stats != nullptr) *stats = engine.stats();

  NeighborSelection sel;
  sel.rule = NeighborRule::kAdjacent;
  sel.selected.resize(c.heads.size());
  for (std::uint32_t i = 0; i < c.heads.size(); ++i) {
    const auto& agent =
        dynamic_cast<const AncrAgent&>(engine.agent(c.heads[i]));
    sel.selected[i] = agent.adjacent_heads();
    for (NodeId other : sel.selected[i]) {
      sel.head_pairs.emplace_back(std::min(c.heads[i], other),
                                  std::max(c.heads[i], other));
    }
  }
  std::sort(sel.head_pairs.begin(), sel.head_pairs.end());
  sel.head_pairs.erase(
      std::unique(sel.head_pairs.begin(), sel.head_pairs.end()),
      sel.head_pairs.end());
  return sel;
}

}  // namespace khop
