#include "khop/sim/protocols/clustering_protocol.hpp"

#include <algorithm>
#include <bit>
#include <tuple>

#include "khop/common/assert.hpp"

namespace khop {

std::int64_t encode_priority(double key) noexcept {
  auto u = std::bit_cast<std::uint64_t>(key);
  // Map IEEE754 order onto unsigned order, then shift into signed order.
  u = (u & 0x8000000000000000ULL) ? ~u : (u | 0x8000000000000000ULL);
  return std::bit_cast<std::int64_t>(u ^ 0x8000000000000000ULL);
}

DistributedClusteringAgent::DistributedClusteringAgent(Hops k,
                                                       PriorityKey priority,
                                                       AffiliationRule rule)
    : k_(k), priority_(priority), rule_(rule) {
  KHOP_REQUIRE(k >= 1, "k must be >= 1");
  KHOP_REQUIRE(rule != AffiliationRule::kSizeBased,
               "size-based affiliation needs non-local cluster sizes; use the "
               "centralized khop_clustering for it");
}

void DistributedClusteringAgent::begin_iteration(NodeContext& ctx) {
  candidates_.clear();
  candidate_keys_.clear();
  declares_.clear();
  if (state_ == State::kUndecided) {
    ctx.broadcast(kCandidate,
                  {iteration_, static_cast<std::int64_t>(ctx.id()),
                   encode_priority(priority_.key), 1});
  }
}

void DistributedClusteringAgent::on_start(NodeContext& ctx) {
  begin_iteration(ctx);
}

void DistributedClusteringAgent::on_message(NodeContext& ctx,
                                            const Message& msg) {
  switch (msg.type) {
    case kCandidate: {
      const std::int64_t iter = msg.data[0];
      if (iter != iteration_) return;  // stale flood remnants: drop
      const auto origin = static_cast<NodeId>(msg.data[1]);
      const std::int64_t enc_key = msg.data[2];
      const auto hops = static_cast<Hops>(msg.data[3]);
      if (origin == ctx.id()) return;

      auto [it, inserted] = candidates_.try_emplace(origin);
      if (inserted || hops < it->second.dist) {
        it->second.dist = hops;
        it->second.parent = msg.sender;
        candidate_keys_[origin] = {enc_key, origin};
        if (hops < k_) {
          ctx.broadcast(kCandidate,
                        {iter, static_cast<std::int64_t>(origin), enc_key,
                         static_cast<std::int64_t>(hops + 1)});
        }
      }
      break;
    }
    case kDeclare: {
      const std::int64_t iter = msg.data[0];
      if (iter != iteration_) return;
      const auto origin = static_cast<NodeId>(msg.data[1]);
      const auto hops = static_cast<Hops>(msg.data[2]);
      if (origin == ctx.id()) return;

      auto [it, inserted] = declares_.try_emplace(origin);
      if (inserted || hops < it->second.dist) {
        it->second.dist = hops;
        it->second.parent = msg.sender;
        if (hops < k_) {
          ctx.broadcast(kDeclare,
                        {iter, static_cast<std::int64_t>(origin),
                         static_cast<std::int64_t>(hops + 1)});
        }
      } else if (hops == it->second.dist && msg.sender < it->second.parent) {
        it->second.parent = msg.sender;
      }
      break;
    }
    case kJoin: {
      const auto head = static_cast<NodeId>(msg.data[0]);
      const auto member = static_cast<NodeId>(msg.data[1]);
      if (head == ctx.id()) {
        members_.push_back(member);
      } else {
        const auto it = declares_.find(head);
        KHOP_ASSERT(it != declares_.end(),
                    "JOIN relay has no route toward the head");
        ctx.send(it->second.parent, kJoin, msg.data);
      }
      break;
    }
    default:
      KHOP_ASSERT(false, "unexpected message type");
  }
}

void DistributedClusteringAgent::on_round_end(NodeContext& ctx) {
  const std::size_t local = ctx.round() % iteration_len();

  if (local == static_cast<std::size_t>(k_)) {
    // Election point. Only undecided nodes participate; candidate floods
    // originate from undecided nodes only, so the comparison set is right.
    if (state_ == State::kUndecided) {
      const std::pair<std::int64_t, NodeId> mine{
          encode_priority(priority_.key), ctx.id()};
      bool best = true;
      for (const auto& [origin, key] : candidate_keys_) {
        if (key < mine) {
          best = false;
          break;
        }
      }
      if (best) {
        state_ = State::kHead;
        head_ = ctx.id();
        dist_to_head_ = 0;
        members_.push_back(ctx.id());
        ctx.broadcast(kDeclare, {iteration_,
                                 static_cast<std::int64_t>(ctx.id()), 1});
      }
    }
  } else if (local == static_cast<std::size_t>(2) * k_ && ctx.round() > 0) {
    // Affiliation point.
    if (state_ == State::kUndecided && !declares_.empty()) {
      NodeId chosen = kInvalidNode;
      Hops chosen_dist = kUnreachable;
      for (const auto& [origin, rec] : declares_) {
        bool better = false;
        if (chosen == kInvalidNode) {
          better = true;
        } else if (rule_ == AffiliationRule::kIdBased) {
          better = origin < chosen;
        } else {
          better = std::tuple(rec.dist, origin) <
                   std::tuple(chosen_dist, chosen);
        }
        if (better) {
          chosen = origin;
          chosen_dist = rec.dist;
        }
      }
      state_ = State::kMember;
      head_ = chosen;
      dist_to_head_ = chosen_dist;
      const auto route = declares_.find(chosen);
      KHOP_ASSERT(route != declares_.end(), "member lost its declare route");
      ctx.send(route->second.parent, kJoin,
               {static_cast<std::int64_t>(chosen),
                static_cast<std::int64_t>(ctx.id())});
    }
  } else if (local == 0 && ctx.round() > 0) {
    // New iteration for any remaining undecided nodes.
    ++iteration_;
    begin_iteration(ctx);
  }
}

Clustering run_distributed_clustering(const Graph& g, Hops k,
                                      const std::vector<PriorityKey>& prio,
                                      AffiliationRule rule, SimStats* stats,
                                      const DeliveryOptions& delivery) {
  KHOP_REQUIRE(prio.size() == g.num_nodes(), "one priority per node");

  SyncEngine engine(
      g,
      [&](NodeId v) {
        return std::make_unique<DistributedClusteringAgent>(k, prio[v], rule);
      },
      delivery);
  // Worst case: one new head per iteration, n iterations of 3k rounds.
  const std::size_t max_rounds = 3 * static_cast<std::size_t>(k) *
                                     (g.num_nodes() + 2) +
                                 16;
  const bool done = engine.run(max_rounds);
  KHOP_ASSERT(done, "distributed clustering did not terminate");
  if (stats != nullptr) *stats = engine.stats();

  Clustering c;
  c.k = k;
  const std::size_t n = g.num_nodes();
  c.head_of.assign(n, kInvalidNode);
  c.dist_to_head.assign(n, kUnreachable);
  for (NodeId v = 0; v < n; ++v) {
    const auto& agent =
        dynamic_cast<const DistributedClusteringAgent&>(engine.agent(v));
    c.head_of[v] = agent.head();
    c.dist_to_head[v] = agent.dist_to_head();
    if (agent.state() == DistributedClusteringAgent::State::kHead) {
      c.heads.push_back(v);
    }
  }
  c.election_rounds = engine.stats().rounds;

  c.cluster_of.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto it =
        std::lower_bound(c.heads.begin(), c.heads.end(), c.head_of[v]);
    KHOP_ASSERT(it != c.heads.end() && *it == c.head_of[v],
                "protocol produced inconsistent head_of");
    c.cluster_of[v] =
        static_cast<std::uint32_t>(std::distance(c.heads.begin(), it));
  }
  return c;
}

}  // namespace khop
