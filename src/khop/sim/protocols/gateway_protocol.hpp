/// \file gateway_protocol.hpp
/// Distributed AC-LMST gateway selection (algorithm AC-LMST steps 9-11).
///
/// Builds on AncrAgent: once the A-NCR exchange completes, every clusterhead
/// locally computes its LMST over the virtual links among {itself} ∪ its
/// adjacent heads, keeps the on-tree links incident to itself, and has the
/// interior of each kept link marked as gateways by routing a MARK token
/// hop-by-hop along the HEADCAST2 parent pointers toward the *smaller*
/// endpoint (the canonical-path convention shared with the centralized
/// implementation). When the keeper is the smaller endpoint it first routes
/// an unmarked REQMARK to the larger endpoint, which then emits the MARK.
#pragma once

#include <set>

#include "khop/gateway/backbone.hpp"
#include "khop/sim/protocols/ancr_protocol.hpp"

namespace khop {

class LmstGatewayAgent : public AncrAgent {
 public:
  using AncrAgent::AncrAgent;

  void on_message(NodeContext& ctx, const Message& msg) override;

  bool marked_gateway() const noexcept { return gateway_; }
  /// Heads only: kept virtual links as (min,max) pairs.
  const std::set<std::pair<NodeId, NodeId>>& kept_links() const noexcept {
    return kept_;
  }

 protected:
  static constexpr std::uint16_t kReqMark = 30;
  static constexpr std::uint16_t kMark = 31;

  void on_ancr_complete(NodeContext& ctx) override;

 private:
  bool gateway_ = false;
  std::set<std::pair<NodeId, NodeId>> kept_;
  std::set<std::pair<NodeId, NodeId>> marks_emitted_;

  void emit_mark(NodeContext& ctx, NodeId smaller);
  void route(NodeContext& ctx, std::uint16_t type, NodeId target,
             std::vector<std::int64_t> data);
};

/// Runs distributed clustering-independent AC-LMST phase 2 over a clustered
/// graph and returns the resulting backbone (pipeline = kAcLmst).
Backbone run_distributed_aclmst(const Graph& g, const Clustering& c,
                                SimStats* stats = nullptr);

}  // namespace khop
