#include "khop/sim/protocols/gateway_protocol.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "khop/common/assert.hpp"
#include "khop/graph/mst.hpp"

namespace khop {

void LmstGatewayAgent::route(NodeContext& ctx, std::uint16_t type,
                             NodeId target, std::vector<std::int64_t> data) {
  const auto it = far_heads_.find(target);
  KHOP_ASSERT(it != far_heads_.end(), "no route toward mark target");
  ctx.send(it->second.parent, type, std::move(data));
}

void LmstGatewayAgent::emit_mark(NodeContext& ctx, NodeId smaller) {
  // MARK travels toward the smaller endpoint; relays become gateways.
  const auto pair = std::pair(smaller, ctx.id());
  if (!marks_emitted_.insert(pair).second) return;  // already marked
  if (far_heads_.at(smaller).dist == 1) return;     // no interior to mark
  route(ctx, kMark, smaller,
        {static_cast<std::int64_t>(smaller), static_cast<std::int64_t>(ctx.id())});
}

void LmstGatewayAgent::on_ancr_complete(NodeContext& ctx) {
  if (!is_head(ctx)) return;
  const std::vector<NodeId> nbrs = adjacent_heads();
  if (nbrs.empty()) return;

  // Local node set {self} ∪ S, ascending (id order == local index order).
  std::vector<NodeId> local_nodes = nbrs;
  local_nodes.push_back(ctx.id());
  std::sort(local_nodes.begin(), local_nodes.end());
  std::map<NodeId, NodeId> local_of;
  for (NodeId i = 0; i < local_nodes.size(); ++i) local_of[local_nodes[i]] = i;

  const auto pair_known = [&](NodeId a, NodeId b) -> std::optional<Hops> {
    // Link (self, s): own adjacency. Link (s1, s2): from s1's ADJSET.
    if (a == ctx.id() || b == ctx.id()) {
      const NodeId other = a == ctx.id() ? b : a;
      const auto it = far_heads_.find(other);
      KHOP_ASSERT(it != far_heads_.end(), "adjacent head without distance");
      return it->second.dist;
    }
    const auto it = heard_adjsets_.find(a);
    if (it == heard_adjsets_.end()) return std::nullopt;
    for (const auto& [head, dist] : it->second) {
      if (head == b) return dist;
    }
    return std::nullopt;
  };

  std::vector<std::vector<WeightedEdge>> adj(local_nodes.size());
  for (std::size_t a = 0; a < local_nodes.size(); ++a) {
    for (std::size_t b = a + 1; b < local_nodes.size(); ++b) {
      std::optional<Hops> w;
      if (local_nodes[a] == ctx.id() || local_nodes[b] == ctx.id()) {
        w = pair_known(local_nodes[a], local_nodes[b]);
      } else {
        w = pair_known(local_nodes[a], local_nodes[b]);
        if (!w) w = pair_known(local_nodes[b], local_nodes[a]);
      }
      if (!w) continue;
      adj[a].push_back({static_cast<NodeId>(a), static_cast<NodeId>(b), *w});
      adj[b].push_back({static_cast<NodeId>(b), static_cast<NodeId>(a), *w});
    }
  }

  const NodeId self_local = local_of.at(ctx.id());
  const std::vector<NodeId> parent =
      prim_mst(local_nodes.size(), adj, self_local);

  for (NodeId li = 0; li < local_nodes.size(); ++li) {
    if (parent[li] != self_local) continue;
    const NodeId other = local_nodes[li];
    kept_.emplace(std::min(ctx.id(), other), std::max(ctx.id(), other));
    if (ctx.id() > other) {
      emit_mark(ctx, other);
    } else if (far_heads_.at(other).dist == 1) {
      // Adjacent heads cannot be 1 hop apart in a valid k-hop clustering,
      // but guard anyway: nothing to mark.
    } else {
      // The larger endpoint must emit the canonical MARK: request it.
      route(ctx, kReqMark, other,
            {static_cast<std::int64_t>(other),
             static_cast<std::int64_t>(ctx.id())});
    }
  }
}

void LmstGatewayAgent::on_message(NodeContext& ctx, const Message& msg) {
  switch (msg.type) {
    case kReqMark: {
      const auto target = static_cast<NodeId>(msg.data[0]);
      const auto origin = static_cast<NodeId>(msg.data[1]);
      if (target == ctx.id()) {
        kept_.emplace(std::min(origin, ctx.id()), std::max(origin, ctx.id()));
        emit_mark(ctx, origin);
      } else {
        route(ctx, kReqMark, target, msg.data);
      }
      break;
    }
    case kMark: {
      const auto target = static_cast<NodeId>(msg.data[0]);
      if (target == ctx.id()) return;  // interior fully marked
      if (my_head() != ctx.id()) gateway_ = true;  // heads relay unmarked
      route(ctx, kMark, target, msg.data);
      break;
    }
    default:
      AncrAgent::on_message(ctx, msg);
  }
}

Backbone run_distributed_aclmst(const Graph& g, const Clustering& c,
                                SimStats* stats) {
  SyncEngine engine(g, [&](NodeId v) {
    return std::make_unique<LmstGatewayAgent>(c.k, c.head_of[v],
                                              c.dist_to_head[v]);
  });
  const bool done = engine.run(16 * static_cast<std::size_t>(c.k) + 32);
  KHOP_ASSERT(done, "distributed AC-LMST did not terminate");
  if (stats != nullptr) *stats = engine.stats();

  Backbone b;
  b.pipeline = Pipeline::kAcLmst;
  b.heads = c.heads;
  std::set<std::pair<NodeId, NodeId>> links;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& agent =
        dynamic_cast<const LmstGatewayAgent&>(engine.agent(v));
    if (agent.marked_gateway()) b.gateways.push_back(v);
    links.insert(agent.kept_links().begin(), agent.kept_links().end());
  }
  b.virtual_links.assign(links.begin(), links.end());
  return b;
}

}  // namespace khop
