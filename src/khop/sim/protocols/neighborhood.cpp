#include "khop/sim/protocols/neighborhood.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"

namespace khop {

std::vector<std::pair<NodeId, KnownRecord>> KnownTable::sorted_items() const {
  std::vector<std::pair<NodeId, KnownRecord>> items;
  items.reserve(size_);
  for_each([&](NodeId origin, const KnownRecord& rec) {
    items.emplace_back(origin, rec);
  });
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

void KnownTable::grow() {
  // First allocation jumps straight to a ball-sized table: at the typical
  // bench densities a k-hop ball is tens of nodes, and starting tiny showed
  // up in the profile as tens of thousands of rehashes per flood.
  static constexpr std::size_t kMinSlots = 64;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(std::max(kMinSlots, old.size() * 2), Slot{});
  const std::uint32_t old_epoch = epoch_;
  epoch_ = 1;  // fresh slot vector: stamp 0 everywhere, so epoch 1 is clean
  for (const Slot& s : old) {
    if (s.stamp != old_epoch) continue;
    Slot& dst = probe(s.origin);
    dst = Slot{s.origin, epoch_, s.rec};
  }
}

void NeighborhoodDiscoveryAgent::on_start(NodeContext& ctx) {
  known_.clear();  // re-entry safety: each run restarts discovery
  ctx.broadcast(kHello, {static_cast<std::int64_t>(ctx.id()), 1});
}

void NeighborhoodDiscoveryAgent::on_message(NodeContext& ctx,
                                            const Message& msg) {
  KHOP_ASSERT(msg.type == kHello, "unexpected message type");
  const auto origin = static_cast<NodeId>(msg.data[0]);
  const auto hops = static_cast<Hops>(msg.data[1]);
  if (origin == ctx.id()) return;

  bool inserted = false;
  Known& rec = known_.upsert(origin, inserted);
  if (inserted || hops < rec.dist) {
    // First (synchronous flooding => shortest) arrival. The inbox is sorted
    // by sender, so on the discovery round the first arrival also carries
    // the minimum-id parent - matching the centralized canonical BFS.
    rec.dist = hops;
    rec.parent = msg.sender;
    if (hops < k_) {
      ctx.broadcast(kHello,
                    {static_cast<std::int64_t>(origin),
                     static_cast<std::int64_t>(hops + 1)});
    }
  } else if (hops == rec.dist && msg.sender < rec.parent) {
    rec.parent = msg.sender;  // same-round arrivals keep the smallest parent
  }
}

}  // namespace khop
