#include "khop/sim/protocols/neighborhood.hpp"

#include "khop/common/assert.hpp"

namespace khop {

void NeighborhoodDiscoveryAgent::on_start(NodeContext& ctx) {
  ctx.broadcast(kHello, {static_cast<std::int64_t>(ctx.id()), 1});
}

void NeighborhoodDiscoveryAgent::on_message(NodeContext& ctx,
                                            const Message& msg) {
  KHOP_ASSERT(msg.type == kHello, "unexpected message type");
  const auto origin = static_cast<NodeId>(msg.data[0]);
  const auto hops = static_cast<Hops>(msg.data[1]);
  if (origin == ctx.id()) return;

  auto [it, inserted] = known_.try_emplace(origin);
  Known& rec = it->second;
  if (inserted || hops < rec.dist) {
    // First (synchronous flooding => shortest) arrival. The inbox is sorted
    // by sender, so on the discovery round the first arrival also carries
    // the minimum-id parent - matching the centralized canonical BFS.
    rec.dist = hops;
    rec.parent = msg.sender;
    if (hops < k_) {
      ctx.broadcast(kHello,
                    {static_cast<std::int64_t>(origin),
                     static_cast<std::int64_t>(hops + 1)});
    }
  } else if (hops == rec.dist && msg.sender < rec.parent) {
    rec.parent = msg.sender;  // same-round arrivals keep the smallest parent
  }
}

}  // namespace khop
