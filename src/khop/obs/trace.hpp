/// \file trace.hpp
/// Phase-scoped tracing: RAII spans written to lock-free per-thread buffers
/// and exported in Chrome trace-event format, so a full run opens directly
/// in Perfetto (ui.perfetto.dev) or chrome://tracing.
///
/// A Span records one complete event ("ph": "X"): begin/end timestamps
/// (steady-clock ns since process start), the recording thread's small
/// sequential id, its nesting depth on that thread, and up to kMaxSpanArgs
/// named integer args (counter deltas, sizes, ids). Recording appends to the
/// calling thread's private buffer — no locks, no allocation in steady state
/// (the buffer grows geometrically and is reused across clear()).
///
/// Cost model: constructing a Span when telemetry is disabled is ONE relaxed
/// atomic load and branch (see telemetry.hpp); args become no-ops. When
/// KHOP_TELEMETRY is compiled out the Span body is empty and the optimizer
/// erases the call sites entirely.
///
/// Export contract: to_chrome_json()/clear() walk every thread's buffer and
/// must only run at quiescent points — after ThreadPool::wait_idle() (the
/// pools' mutexes order the workers' appends before the caller's read) or
/// after worker threads joined. Span names and arg keys must be string
/// literals (or otherwise outlive the tracer): buffers store the pointers.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "khop/obs/telemetry.hpp"

namespace khop::obs {

inline constexpr std::size_t kMaxSpanArgs = 4;

struct TraceArg {
  const char* key = nullptr;
  std::int64_t value = 0;
};

/// One completed span, as stored in a thread buffer.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t t0_ns = 0;
  std::uint64_t t1_ns = 0;
  std::uint32_t tid = 0;    ///< small sequential thread index
  std::uint16_t depth = 0;  ///< nesting depth on that thread (0 = top)
  std::uint8_t nargs = 0;
  TraceArg args[kMaxSpanArgs];
};

namespace detail {

struct ThreadTraceBuffer {
  std::uint32_t tid = 0;
  std::uint16_t depth = 0;
  std::vector<TraceEvent> events;
};

}  // namespace detail

/// Process-wide collector of per-thread span buffers.
class Tracer {
 public:
  static Tracer& global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Steady-clock ns since process (strictly: tracer) start.
  static std::uint64_t now_ns() noexcept;

  /// Total recorded spans across all threads. Quiescent points only.
  std::size_t num_events() const;

  /// Drops every recorded span; buffer capacity and thread registrations
  /// are kept. Quiescent points only.
  void clear();

  /// All recorded spans, every thread's buffer concatenated in thread-id
  /// order (each buffer is internally in completion order). Quiescent
  /// points only.
  std::vector<TraceEvent> snapshot() const;

  /// Chrome trace-event JSON: {"traceEvents": [...], "displayTimeUnit":
  /// "ms", "otherData": {"schema": "khop.trace", "schema_version": 1}}.
  /// Every span is a complete event ("ph": "X", ts/dur in microseconds)
  /// with its nesting depth folded into args; per-thread metadata events
  /// ("ph": "M", thread_name) label the timeline rows.
  std::string to_chrome_json() const;

  /// Writes to_chrome_json() to \p path. Throws khop::Error on failure.
  void write_chrome_json(const std::string& path) const;

  /// The calling thread's buffer (registered on first use).
  detail::ThreadTraceBuffer& local();

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<detail::ThreadTraceBuffer>> buffers_;
};

/// RAII phase span. Construct to open, destroy to record. Move-free by
/// design: a span belongs to the scope (and thread) that opened it.
class Span {
 public:
#if KHOP_TELEMETRY
  explicit Span(const char* name) noexcept {
    if (enabled()) open(name);
  }
  ~Span() noexcept {
    if (buf_ != nullptr) close();
  }
  /// Attaches a named integer (counter delta, size, id). At most
  /// kMaxSpanArgs are kept; extras are dropped silently.
  void arg(const char* key, std::int64_t value) noexcept {
    if (buf_ != nullptr && ev_.nargs < kMaxSpanArgs) {
      ev_.args[ev_.nargs++] = TraceArg{key, value};
    }
  }
#else
  explicit Span(const char*) noexcept {}
  void arg(const char*, std::int64_t) noexcept {}
#endif

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#if KHOP_TELEMETRY
  void open(const char* name) noexcept;
  void close() noexcept;

  detail::ThreadTraceBuffer* buf_ = nullptr;
  TraceEvent ev_;
#endif
};

}  // namespace khop::obs
