#include "khop/obs/telemetry.hpp"

#include "khop/obs/metrics.hpp"
#include "khop/obs/trace.hpp"

namespace khop::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}

void set_enabled(bool on) noexcept {
#if KHOP_TELEMETRY
  detail::g_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void reset_all() {
  Registry::global().reset();
  Tracer::global().clear();
}

}  // namespace khop::obs
