#include "khop/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>

#include "khop/common/error.hpp"
#include "khop/obs/metrics.hpp"

namespace khop::obs {

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

std::uint64_t Tracer::now_ns() noexcept {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

detail::ThreadTraceBuffer& Tracer::local() {
  thread_local detail::ThreadTraceBuffer* buf = nullptr;
  if (buf == nullptr) {
    auto owned = std::make_unique<detail::ThreadTraceBuffer>();
    owned->tid = detail::thread_index();  // shared with the metric shards
    buf = owned.get();
    std::scoped_lock lock(mu_);
    buffers_.push_back(std::move(owned));
  }
  return *buf;
}

std::size_t Tracer::num_events() const {
  std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& b : buffers_) n += b->events.size();
  return n;
}

void Tracer::clear() {
  std::scoped_lock lock(mu_);
  for (const auto& b : buffers_) b->events.clear();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::scoped_lock lock(mu_);
  std::vector<const detail::ThreadTraceBuffer*> ordered;
  ordered.reserve(buffers_.size());
  for (const auto& b : buffers_) ordered.push_back(b.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const detail::ThreadTraceBuffer* a,
               const detail::ThreadTraceBuffer* b) { return a->tid < b->tid; });
  std::vector<TraceEvent> out;
  for (const detail::ThreadTraceBuffer* b : ordered) {
    out.insert(out.end(), b->events.begin(), b->events.end());
  }
  return out;
}

namespace {

/// Microseconds with ns resolution, the unit Chrome trace "ts"/"dur" use.
std::string us(std::uint64_t ns) {
  std::ostringstream os;
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns % 1000) / 100)
     << static_cast<char>('0' + (ns % 100) / 10)
     << static_cast<char>('0' + ns % 10);
  return os.str();
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  const std::vector<TraceEvent> events = snapshot();
  std::ostringstream os;
  os << "{\n";
  os << "  \"otherData\": {\"schema\": \"khop.trace\", \"schema_version\": 1},\n";
  os << "  \"displayTimeUnit\": \"ms\",\n";
  os << "  \"traceEvents\": [\n";
  // Thread-name metadata rows first, one per thread that recorded anything.
  std::vector<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  bool first = true;
  for (std::uint32_t tid : tids) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
       << "\"tid\": " << tid << ", \"args\": {\"name\": \"khop-thread-" << tid
       << "\"}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) os << ",\n";
    first = false;
    os << "    {\"name\": \"" << e.name << "\", \"cat\": \"khop\", "
       << "\"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
       << ", \"ts\": " << us(e.t0_ns) << ", \"dur\": "
       << us(e.t1_ns >= e.t0_ns ? e.t1_ns - e.t0_ns : 0)
       << ", \"args\": {\"depth\": " << e.depth;
    for (std::uint8_t a = 0; a < e.nargs; ++a) {
      os << ", \"" << e.args[a].key << "\": " << e.args[a].value;
    }
    os << "}}";
  }
  os << "\n  ]\n";
  os << "}\n";
  return os.str();
}

void Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open trace output file: " + path);
  out << to_chrome_json();
  if (!out) throw Error("failed writing trace output file: " + path);
}

#if KHOP_TELEMETRY

void Span::open(const char* name) noexcept {
  buf_ = &Tracer::global().local();
  ev_.name = name;
  ev_.tid = buf_->tid;
  ev_.depth = buf_->depth++;
  ev_.t0_ns = Tracer::now_ns();
}

void Span::close() noexcept {
  ev_.t1_ns = Tracer::now_ns();
  --buf_->depth;
  buf_->events.push_back(ev_);
}

#endif  // KHOP_TELEMETRY

}  // namespace khop::obs
