/// \file metrics.hpp
/// Telemetry metrics registry: named counters, gauges, and log-bucketed
/// histograms with per-thread-sharded storage, exported as schema-versioned
/// JSON (`khop.metrics`, version 1).
///
/// Hot-path contract: resolve instruments by name ONCE (registry lookup
/// takes a mutex) and keep the returned reference — instrument addresses are
/// stable for the registry's lifetime. The record operations themselves are
/// lock-free: each writer lands on a cache-line-padded shard selected by a
/// thread-local index, so concurrent recording never contends on a line.
/// Reads (value(), quantile(), to_json()) sum over the shards; they are
/// intended for quiescent points (end of a run / round / event), not for
/// synchronizing with in-flight writers.
///
/// Telemetry invariant: instruments are observational only. Nothing in this
/// subsystem feeds back into any algorithm, so pipeline outputs are
/// bit-identical whether metrics are recorded or not (enforced by
/// tests/test_obs_determinism.cpp).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace khop::obs {

/// Shard count for all instruments. Power of two; writers map to shard
/// (thread_index & (kMetricShards - 1)).
inline constexpr std::size_t kMetricShards = 16;

namespace detail {

/// Small sequential per-thread index (0, 1, 2, ... in first-use order),
/// shared with the tracer's thread ids.
std::uint32_t thread_index() noexcept;

inline std::size_t shard_index() noexcept {
  return thread_index() & (kMetricShards - 1);
}

struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> v{0};
};

}  // namespace detail

/// Monotone event count, sharded per thread.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::uint64_t delta) noexcept {
    shards_[detail::shard_index()].v.fetch_add(delta,
                                               std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const detail::CounterShard& s : shards_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void reset() noexcept {
    for (detail::CounterShard& s : shards_) {
      s.v.store(0, std::memory_order_relaxed);
    }
  }

  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  detail::CounterShard shards_[kMetricShards];
};

/// Last-writer-wins level plus the maximum ever set (high-water mark).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    max_.store(std::numeric_limits<std::int64_t>::min(),
               std::memory_order_relaxed);
  }

  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
};

/// Log2-bucketed histogram of non-negative samples.
///
/// Bucketing: bucket 0 holds exactly the value 0; bucket b >= 1 holds
/// [2^(b-1), 2^b - 1] (i.e. bucket_of(v) = bit_width(v)). 65 buckets cover
/// the full uint64 range.
///
/// Quantile extraction (p50/p90/p99): for quantile q over count() samples,
/// the target rank is ceil(q * count) (1-based). The bucket containing that
/// rank is located by cumulative count, and the returned value interpolates
/// linearly inside the bucket's [lo, hi] range by the rank's position among
/// the bucket's samples — a deterministic, unit-testable rule whose error is
/// bounded by the bucket width (< 2x the true sample value).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  static std::size_t bucket_of(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Smallest value of bucket \p b.
  static std::uint64_t bucket_lo(std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  /// Largest value of bucket \p b.
  static std::uint64_t bucket_hi(std::size_t b) noexcept {
    if (b == 0) return 0;
    if (b == kBuckets - 1) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << b) - 1;
  }

  void record(std::uint64_t v) noexcept {
    Shard& s = shards_[detail::shard_index()];
    s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  /// Folds a pre-accumulated batch (per-bucket counts + sum) into the
  /// calling thread's shard in one pass. See LocalHistogram.
  void add_batch(const std::uint64_t (&counts)[kBuckets],
                 std::uint64_t sum) noexcept {
    Shard& s = shards_[detail::shard_index()];
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (counts[b] != 0) {
        s.buckets[b].fetch_add(counts[b], std::memory_order_relaxed);
      }
    }
    s.sum.fetch_add(sum, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    std::uint64_t c = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) c += bucket_count(b);
    return c;
  }
  std::uint64_t sum() const noexcept {
    std::uint64_t s = 0;
    for (const Shard& sh : shards_) {
      s += sh.sum.load(std::memory_order_relaxed);
    }
    return s;
  }
  std::uint64_t bucket_count(std::size_t b) const noexcept {
    std::uint64_t c = 0;
    for (const Shard& sh : shards_) {
      c += sh.buckets[b].load(std::memory_order_relaxed);
    }
    return c;
  }

  /// Interpolated quantile per the class-level rule. q in [0, 1]; returns 0
  /// on an empty histogram.
  double quantile(double q) const noexcept;

  void reset() noexcept {
    for (Shard& sh : shards_) {
      for (auto& b : sh.buckets) b.store(0, std::memory_order_relaxed);
      sh.sum.store(0, std::memory_order_relaxed);
    }
  }

  const std::string& name() const noexcept { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> buckets[kBuckets]{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::string name_;
  Shard shards_[kMetricShards];
};

/// Unsynchronized batch accumulator for loops that record thousands of
/// histogram samples: record() is two plain memory writes (no TLS lookup, no
/// atomics), and the whole batch folds into a Histogram shard with one
/// flush() at the end. Not thread-safe — give each worker its own instance
/// and merge() them at the serial join point.
class LocalHistogram {
 public:
  void record(std::uint64_t v) noexcept {
    ++counts_[Histogram::bucket_of(v)];
    sum_ += v;
    ++total_;
  }
  std::uint64_t total() const noexcept { return total_; }

  /// Folds this batch into \p h (one shard pass) and clears the batch.
  void flush(Histogram& h) noexcept {
    if (total_ == 0) return;
    h.add_batch(counts_, sum_);
    clear();
  }

  /// Adds \p other's batch into this one and clears \p other.
  void merge(LocalHistogram& other) noexcept {
    if (other.total_ == 0) return;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      counts_[b] += other.counts_[b];
    }
    sum_ += other.sum_;
    total_ += other.total_;
    other.clear();
  }

  void clear() noexcept {
    for (auto& c : counts_) c = 0;
    sum_ = 0;
    total_ = 0;
  }

 private:
  std::uint64_t counts_[Histogram::kBuckets]{};
  std::uint64_t sum_ = 0;
  std::uint64_t total_ = 0;
};

/// Name -> instrument registry. Instruments are created on first lookup and
/// live (at a stable address) until the registry is destroyed; reset() zeros
/// their values but keeps the registrations. One process-wide instance
/// (global()) backs the library's built-in instrumentation.
class Registry {
 public:
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Lookup-or-create. Takes a mutex: resolve once, keep the reference.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zeros every instrument's value; registrations (and addresses) persist.
  void reset();

  /// Schema `khop.metrics` version 1:
  /// {
  ///   "schema": "khop.metrics", "schema_version": 1,
  ///   "counters":   [{"name": ..., "value": ...}],
  ///   "gauges":     [{"name": ..., "value": ..., "max": ...}],
  ///   "histograms": [{"name": ..., "count": ..., "sum": ...,
  ///                   "p50": ..., "p90": ..., "p99": ...,
  ///                   "buckets": [{"lo": ..., "hi": ..., "count": ...}]}]
  /// }
  /// Rows appear in registration order; only non-empty histogram buckets are
  /// emitted. Gauges that were never set emit max == value.
  std::string to_json() const;

  /// Writes to_json() to \p path. Throws khop::Error on failure.
  void write_json(const std::string& path) const;

 private:
  template <typename T>
  T& lookup(std::vector<std::unique_ptr<T>>& list, std::string_view name);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace khop::obs
