#include "khop/obs/metrics.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "khop/common/error.hpp"

namespace khop::obs {

namespace detail {

std::uint32_t thread_index() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t idx =
      next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

}  // namespace detail

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // 1-based target rank; q == 0 still asks for the first sample.
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t c = bucket_count(b);
    if (c == 0) continue;
    if (cum + c >= target) {
      const double lo = static_cast<double>(bucket_lo(b));
      const double hi = static_cast<double>(bucket_hi(b));
      // Position of the target rank among this bucket's c samples, in
      // (0, 1]; rank 1-of-1 lands mid-bucket-free at hi for c == 1.
      const double frac = static_cast<double>(target - cum) /
                          static_cast<double>(c);
      return lo + (hi - lo) * frac;
    }
    cum += c;
  }
  return static_cast<double>(bucket_hi(kBuckets - 1));  // unreachable
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

template <typename T>
T& Registry::lookup(std::vector<std::unique_ptr<T>>& list,
                    std::string_view name) {
  std::scoped_lock lock(mu_);
  for (const std::unique_ptr<T>& item : list) {
    if (item->name() == name) return *item;
  }
  list.push_back(std::make_unique<T>(std::string(name)));
  return *list.back();
}

Counter& Registry::counter(std::string_view name) {
  return lookup(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) { return lookup(gauges_, name); }

Histogram& Registry::histogram(std::string_view name) {
  return lookup(histograms_, name);
}

void Registry::reset() {
  std::scoped_lock lock(mu_);
  for (auto& c : counters_) c->reset();
  for (auto& g : gauges_) g->reset();
  for (auto& h : histograms_) h->reset();
}

namespace {

/// JSON number for a double that is conceptually integral-or-finite; the
/// quantiles can carry fractions, so print with enough digits to round-trip.
std::string num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string Registry::to_json() const {
  std::scoped_lock lock(mu_);
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"khop.metrics\",\n";
  os << "  \"schema_version\": 1,\n";
  os << "  \"counters\": [\n";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    os << "    {\"name\": \"" << counters_[i]->name()
       << "\", \"value\": " << counters_[i]->value() << "}"
       << (i + 1 < counters_.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"gauges\": [\n";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    const Gauge& g = *gauges_[i];
    // A never-set gauge's high-water mark is the int64 minimum sentinel;
    // clamp to the value so the JSON stays meaningful.
    const std::int64_t mx = std::max(g.max(), g.value());
    os << "    {\"name\": \"" << g.name() << "\", \"value\": " << g.value()
       << ", \"max\": " << mx << "}" << (i + 1 < gauges_.size() ? "," : "")
       << "\n";
  }
  os << "  ],\n";
  os << "  \"histograms\": [\n";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const Histogram& h = *histograms_[i];
    os << "    {\"name\": \"" << h.name() << "\", \"count\": " << h.count()
       << ", \"sum\": " << h.sum() << ", \"p50\": " << num(h.quantile(0.50))
       << ", \"p90\": " << num(h.quantile(0.90))
       << ", \"p99\": " << num(h.quantile(0.99)) << ", \"buckets\": [";
    bool first = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t c = h.bucket_count(b);
      if (c == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << "{\"lo\": " << Histogram::bucket_lo(b)
         << ", \"hi\": " << Histogram::bucket_hi(b) << ", \"count\": " << c
         << "}";
    }
    os << "]}" << (i + 1 < histograms_.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

void Registry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open metrics output file: " + path);
  out << to_json();
  if (!out) throw Error("failed writing metrics output file: " + path);
}

}  // namespace khop::obs
