/// \file telemetry.hpp
/// Telemetry master switch: a compile-time gate (KHOP_TELEMETRY, default 1,
/// settable via the KHOP_TELEMETRY CMake option) and a runtime sink toggle.
///
/// Layering: this header is the dependency-free core (the switch); the two
/// sinks live beside it — obs/metrics.hpp (counters / gauges / histograms +
/// registry) and obs/trace.hpp (phase spans + Perfetto export).
///
/// Cost contract:
///  * KHOP_TELEMETRY == 0: enabled() is constant false, Span is an empty
///    class — instrumented call sites compile to nothing.
///  * KHOP_TELEMETRY == 1, runtime-disabled (the default): every
///    instrumented site costs exactly one relaxed atomic load + branch.
///  * Enabled: spans append to per-thread buffers, metric records are one
///    relaxed atomic RMW on a thread-sharded cache line.
///
/// Correctness contract: telemetry is observational only. Enabling or
/// disabling it (at either level) never changes any pipeline, engine, or
/// repair output — the determinism suite asserts bit-identical checksums
/// with telemetry off and on, across thread counts.
#pragma once

#include <atomic>

#ifndef KHOP_TELEMETRY
#define KHOP_TELEMETRY 1
#endif

namespace khop::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// True iff telemetry is compiled in AND runtime-enabled. The single branch
/// every instrumented hot-path site pays when disabled.
inline bool enabled() noexcept {
#if KHOP_TELEMETRY
  return detail::g_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Flips the runtime sink toggle. A no-op (telemetry stays off) when
/// KHOP_TELEMETRY is compiled out.
void set_enabled(bool on) noexcept;

/// Zeros the global metrics registry and drops all recorded spans. Call at
/// quiescent points only (see trace.hpp).
void reset_all();

/// Scoped runtime enable: restores the previous state on destruction.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true) noexcept : prev_(enabled()) {
    set_enabled(on);
  }
  ~ScopedEnable() noexcept { set_enabled(prev_); }
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool prev_;
};

}  // namespace khop::obs
