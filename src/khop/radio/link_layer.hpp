/// \file link_layer.hpp
/// The link layer: positions + a LinkModel evaluated into (a) the
/// connectivity graph the centralized algorithms run on and (b) per-link
/// delivery probabilities the simulator draws against. Construction is
/// near-linear via the spatial grid (cell size = the model's max range).
#pragma once

#include <span>
#include <vector>

#include "khop/common/rng.hpp"
#include "khop/graph/graph.hpp"
#include "khop/radio/link_model.hpp"

namespace khop {

/// One undirected link with its single-attempt delivery probability.
struct Link {
  NodeId u = kInvalidNode;  ///< min endpoint
  NodeId v = kInvalidNode;  ///< max endpoint
  double probability = 0.0; ///< in (0, 1]
};

/// Immutable evaluated link set over one position snapshot.
class LinkLayer {
 public:
  LinkLayer() = default;

  /// Graph over all links (the "possible links" topology). With
  /// UnitDiskModel this is exactly the legacy unit-disk graph.
  const Graph& graph() const noexcept { return graph_; }

  /// Links as (min, max, p) sorted lexicographically by endpoints.
  std::span<const Link> links() const noexcept { return links_; }

  /// Delivery probability of {u, v}; 0 when the link does not exist.
  /// O(log m) via binary search over the sorted link list (m = link count).
  double probability(NodeId u, NodeId v) const;

  std::size_t num_nodes() const noexcept { return graph_.num_nodes(); }

  /// Mean delivery probability over all links (1.0 for a unit disk;
  /// 0 for an empty link set).
  double mean_probability() const noexcept;

 private:
  friend LinkLayer build_link_layer(const std::vector<Point2>&,
                                    const LinkModel&, double);
  friend LinkLayer with_uniform_loss(const LinkLayer&, double);

  Graph graph_;
  std::vector<Link> links_;
};

/// Evaluates \p model over every candidate pair within its max range.
/// A link exists iff its probability is positive and >= \p min_probability.
/// Near-linear: candidates come from a spatial grid, not an all-pairs scan.
/// \pre pts non-empty
LinkLayer build_link_layer(const std::vector<Point2>& pts,
                           const LinkModel& model,
                           double min_probability = 0.0);

/// Copy of \p links with every delivery probability scaled by (1 - loss):
/// a model-independent "ambient loss rate" knob (interference, duty cycling)
/// used by the lossy sweeps. The link set itself is unchanged.
/// \pre loss in [0, 1)
LinkLayer with_uniform_loss(const LinkLayer& links, double loss);

/// Samples a realized topology: each link is kept independently with its
/// delivery probability. Deterministic in (links, rng state); links are
/// drawn in their sorted order. Used to measure backbone survival under
/// link failures.
Graph sample_realized_graph(const LinkLayer& links, Rng& rng);

}  // namespace khop
