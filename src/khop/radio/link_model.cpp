#include "khop/radio/link_model.hpp"

#include <cmath>
#include <numbers>

#include "khop/common/assert.hpp"

namespace khop {

UnitDiskModel::UnitDiskModel(double radius) : radius_(radius) {
  KHOP_REQUIRE(radius > 0.0, "radius must be positive");
}

double UnitDiskModel::delivery_probability_sq(double dist_sq) const noexcept {
  return dist_sq <= radius_ * radius_ ? 1.0 : 0.0;
}

QuasiUnitDiskModel::QuasiUnitDiskModel(double r_min, double r_max,
                                       double p_transition)
    : r_min_(r_min), r_max_(r_max), p_transition_(p_transition) {
  KHOP_REQUIRE(r_min > 0.0, "r_min must be positive");
  KHOP_REQUIRE(r_max >= r_min, "r_max must be >= r_min");
  KHOP_REQUIRE(p_transition > 0.0 && p_transition <= 1.0,
               "p_transition must be in (0, 1]");
}

double QuasiUnitDiskModel::delivery_probability_sq(
    double dist_sq) const noexcept {
  // Certain / impossible zones use the same squared comparisons as the
  // unit-disk builder, so r_min == r_max is bit-exactly a unit disk.
  if (dist_sq <= r_min_ * r_min_) return 1.0;
  if (dist_sq > r_max_ * r_max_) return 0.0;
  const double d = std::sqrt(dist_sq);
  return p_transition_ * (r_max_ - d) / (r_max_ - r_min_);
}

LogNormalShadowingModel::LogNormalShadowingModel(const Params& params)
    : params_(params) {
  KHOP_REQUIRE(params.r_half > 0.0, "r_half must be positive");
  KHOP_REQUIRE(params.path_loss_exponent > 0.0,
               "path_loss_exponent must be positive");
  KHOP_REQUIRE(params.shadowing_sigma_db > 0.0,
               "shadowing_sigma_db must be positive");
  KHOP_REQUIRE(
      params.cutoff_probability > 0.0 && params.cutoff_probability < 0.5,
      "cutoff_probability must be in (0, 0.5)");

  // p(d) is strictly decreasing, p(r_half) = 0.5 > cutoff: bisect for the
  // distance where p(d) = cutoff. Done once; the loop converges to double
  // precision in < 200 halvings.
  double lo = params.r_half;
  double hi = params.r_half * 2.0;
  while (delivery_probability_sq(hi * hi) > params.cutoff_probability) {
    hi *= 2.0;
  }
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (delivery_probability_sq(mid * mid) > params.cutoff_probability) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  max_range_ = hi;  // first distance at or below the cutoff
}

double LogNormalShadowingModel::delivery_probability_sq(
    double dist_sq) const noexcept {
  if (dist_sq <= 0.0) return 1.0;
  const double d = std::sqrt(dist_sq);
  const double x = 10.0 * params_.path_loss_exponent *
                   std::log10(d / params_.r_half) /
                   (params_.shadowing_sigma_db * std::numbers::sqrt2);
  const double p = 0.5 * std::erfc(x);
  return p < params_.cutoff_probability ? 0.0 : p;
}

}  // namespace khop
