/// \file network_link.hpp
/// Glue between AdHocNetwork and the radio subsystem. Lives on the radio
/// side so khop/net stays radio-agnostic: only callers that opt into link
/// models pull in this header.
#pragma once

#include "khop/net/network.hpp"
#include "khop/radio/link_layer.hpp"

namespace khop {

/// Re-evaluates \p model over net.positions and installs the resulting
/// possible-links topology as net.graph. Bit-identical to
/// net.rebuild_graph() when the model is UnitDiskModel(net.radius).
/// Returns the evaluated link layer so callers can drive delivery-aware
/// simulation from it.
LinkLayer rebuild_with_model(AdHocNetwork& net, const LinkModel& model,
                             double min_probability = 0.0);

}  // namespace khop
