#include "khop/radio/delivery.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"

namespace khop {

LinkDelivery::LinkDelivery(const LinkLayer& links, std::uint64_t seed)
    : links_(&links), rng_(seed) {
  const Graph& g = links.graph();
  probs_.resize(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    probs_[u].reserve(nbrs.size());
    for (NodeId v : nbrs) probs_[u].push_back(links.probability(u, v));
  }
}

bool LinkDelivery::attempt(NodeId from, NodeId to) {
  double p = 0.0;
  if (from < probs_.size()) {
    const auto nbrs = links_->graph().neighbors(from);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), to);
    if (it != nbrs.end() && *it == to) {
      p = probs_[from][static_cast<std::size_t>(it - nbrs.begin())];
    }
  }
  return rng_.uniform() < p;
}

UniformLossDelivery::UniformLossDelivery(double loss, std::uint64_t seed)
    : loss_(loss), rng_(seed) {
  KHOP_REQUIRE(loss >= 0.0 && loss < 1.0, "loss must be in [0, 1)");
}

bool UniformLossDelivery::attempt(NodeId /*from*/, NodeId /*to*/) {
  return rng_.uniform() >= loss_;
}

}  // namespace khop
