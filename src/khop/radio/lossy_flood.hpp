/// \file lossy_flood.hpp
/// Delivery-aware network-wide broadcast: the motivating application of the
/// paper (flooding, blind or CDS-confined) re-run over a lossy link layer
/// through the SyncEngine, instead of the deterministic BFS of
/// khop/cds/broadcast. Reports the delivery ratio actually achieved plus
/// the engine's drop/retransmission accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "khop/radio/link_layer.hpp"
#include "khop/sim/message.hpp"

namespace khop {

struct LossyFloodOptions {
  std::uint64_t seed = 1;         ///< delivery rng seed
  std::size_t retry_budget = 0;   ///< link-layer retries per dropped delivery
  /// Forwarder mask (n-sized): only marked nodes relay; the source always
  /// transmits. Empty = blind flooding (every node relays). Use
  /// cds_forwarder_mask() to confine the flood to a clustering backbone.
  std::vector<bool> forwarders;
  /// Round cap; 0 = auto (num_nodes + 8, enough for any loss-free flood;
  /// lossy floods die out earlier by quiescence).
  std::size_t max_rounds = 0;
};

struct LossyFloodResult {
  std::size_t delivered = 0;      ///< nodes that got the payload (incl. source)
  double delivery_ratio = 0.0;    ///< delivered / n
  std::size_t rounds = 0;         ///< rounds run
  bool complete = false;          ///< delivered == n
  /// True iff the flood died out on its own (no messages in flight). False
  /// means max_rounds truncated it — losses did not cause the shortfall.
  bool quiescent = false;
  SimStats stats;                 ///< incl. drops / retransmissions
};

/// Floods one payload from \p source over \p links with Bernoulli per-link
/// delivery (LinkDelivery seeded from opts.seed). Deterministic in
/// (links, source, opts). \pre source < links.num_nodes()
LossyFloodResult lossy_flood(const LinkLayer& links, NodeId source,
                             const LossyFloodOptions& opts = {});

}  // namespace khop
