#include "khop/radio/link_layer.hpp"

#include <algorithm>

#include "khop/common/assert.hpp"
#include "khop/graph/spatial_grid.hpp"

namespace khop {

double LinkLayer::probability(NodeId u, NodeId v) const {
  if (u == v) return 0.0;
  const NodeId a = std::min(u, v);
  const NodeId b = std::max(u, v);
  const auto it = std::lower_bound(
      links_.begin(), links_.end(), std::make_pair(a, b),
      [](const Link& l, const std::pair<NodeId, NodeId>& key) {
        return std::make_pair(l.u, l.v) < key;
      });
  if (it == links_.end() || it->u != a || it->v != b) return 0.0;
  return it->probability;
}

double LinkLayer::mean_probability() const noexcept {
  if (links_.empty()) return 0.0;
  double total = 0.0;
  for (const Link& l : links_) total += l.probability;
  return total / static_cast<double>(links_.size());
}

LinkLayer build_link_layer(const std::vector<Point2>& pts,
                           const LinkModel& model, double min_probability) {
  KHOP_REQUIRE(!pts.empty(), "empty point set");
  KHOP_REQUIRE(min_probability >= 0.0 && min_probability <= 1.0,
               "min_probability must be in [0, 1]");

  // The grid enumerates exactly the pairs with dist_sq <= max_range^2 — the
  // same comparison build_unit_disk_graph uses, so UnitDiskModel yields a
  // bit-identical edge set.
  SpatialGrid grid(pts, model.max_range());
  LinkLayer layer;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < pts.size(); ++u) {
    for (NodeId v : grid.within_radius(u)) {
      if (u >= v) continue;
      const double p =
          model.delivery_probability_sq(distance_sq(pts[u], pts[v]));
      if (p <= 0.0 || p < min_probability) continue;
      edges.emplace_back(u, v);
      layer.links_.push_back(Link{u, v, p});
    }
  }
  // within_radius returns ascending ids for ascending u, so links_ is
  // already sorted by (u, v).
  layer.graph_ = Graph::from_edges(pts.size(), edges);
  return layer;
}

LinkLayer with_uniform_loss(const LinkLayer& links, double loss) {
  KHOP_REQUIRE(loss >= 0.0 && loss < 1.0, "loss must be in [0, 1)");
  LinkLayer out = links;
  for (Link& l : out.links_) l.probability *= 1.0 - loss;
  return out;
}

Graph sample_realized_graph(const LinkLayer& links, Rng& rng) {
  std::vector<std::pair<NodeId, NodeId>> kept;
  for (const Link& l : links.links()) {
    if (rng.uniform() < l.probability) kept.emplace_back(l.u, l.v);
  }
  return Graph::from_edges(links.num_nodes(), kept);
}

}  // namespace khop
