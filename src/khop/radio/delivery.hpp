/// \file delivery.hpp
/// Radio-driven DeliveryModel implementations for the synchronous simulator.
///
/// The SyncEngine consults its DeliveryModel on every enqueue; a drop means
/// the receiver simply never sees the message that round. Decisions come
/// from a seeded Rng consumed in the engine's deterministic enqueue order,
/// so a lossy run is a pure function of (topology, protocol, seed) — the
/// same reproducibility contract as the ideal-MAC engine.
#pragma once

#include <cstdint>

#include "khop/common/rng.hpp"
#include "khop/radio/link_layer.hpp"
#include "khop/sim/engine.hpp"

namespace khop {

/// The paper's ideal MAC: every attempt succeeds. Behaviourally identical
/// to running the engine with no delivery model at all.
class PerfectDelivery final : public DeliveryModel {
 public:
  bool attempt(NodeId /*from*/, NodeId /*to*/) override { return true; }
};

/// Bernoulli per-link delivery: an attempt over {from, to} succeeds with the
/// link layer's probability for that link. Links with probability 1 never
/// drop, so a unit-disk link layer reproduces ideal-MAC outcomes exactly.
/// Probabilities are copied adjacency-aligned at construction, so the
/// per-attempt lookup in the engine's innermost loop is an O(log deg)
/// search of one neighbor span, not a search of the whole link list.
class LinkDelivery final : public DeliveryModel {
 public:
  /// \p links must outlive this object.
  LinkDelivery(const LinkLayer& links, std::uint64_t seed);

  bool attempt(NodeId from, NodeId to) override;

 private:
  const LinkLayer* links_;
  Rng rng_;
  /// probs_[u][i] = delivery probability to graph().neighbors(u)[i].
  std::vector<std::vector<double>> probs_;
};

/// Link-independent Bernoulli loss (ambient interference / collisions):
/// every attempt is dropped with probability \p loss.
class UniformLossDelivery final : public DeliveryModel {
 public:
  /// \pre loss in [0, 1)
  UniformLossDelivery(double loss, std::uint64_t seed);

  bool attempt(NodeId from, NodeId to) override;

 private:
  double loss_;
  Rng rng_;
};

}  // namespace khop
