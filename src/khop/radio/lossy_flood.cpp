#include "khop/radio/lossy_flood.hpp"

#include <memory>

#include "khop/common/assert.hpp"
#include "khop/radio/delivery.hpp"
#include "khop/sim/engine.hpp"

namespace khop {

namespace {

/// Relays the payload once upon first reception (if a forwarder).
class LossyFloodAgent final : public NodeAgent {
 public:
  LossyFloodAgent(bool is_source, bool is_forwarder)
      : is_source_(is_source), is_forwarder_(is_forwarder) {}

  void on_start(NodeContext& ctx) override {
    if (is_source_) {
      received_ = true;
      ctx.broadcast(kFloodType, {});
    }
  }

  void on_message(NodeContext& ctx, const Message& /*msg*/) override {
    if (received_) return;
    received_ = true;
    if (is_forwarder_) ctx.broadcast(kFloodType, {});
  }

  bool received() const noexcept { return received_; }

  static constexpr std::uint16_t kFloodType = 1;

 private:
  bool is_source_;
  bool is_forwarder_;
  bool received_ = false;
};

}  // namespace

LossyFloodResult lossy_flood(const LinkLayer& links, NodeId source,
                             const LossyFloodOptions& opts) {
  const std::size_t n = links.num_nodes();
  KHOP_REQUIRE(source < n, "source out of range");
  KHOP_REQUIRE(opts.forwarders.empty() || opts.forwarders.size() == n,
               "forwarder mask size mismatch");

  LinkDelivery delivery(links, opts.seed);
  DeliveryOptions delivery_opts;
  delivery_opts.model = &delivery;
  delivery_opts.retry_budget = opts.retry_budget;

  SyncEngine engine(
      links.graph(),
      [&](NodeId v) {
        const bool forwards = opts.forwarders.empty() || opts.forwarders[v];
        return std::make_unique<LossyFloodAgent>(v == source, forwards);
      },
      delivery_opts);

  const std::size_t cap = opts.max_rounds != 0 ? opts.max_rounds : n + 8;
  LossyFloodResult r;
  r.quiescent = engine.run(cap);
  for (NodeId v = 0; v < n; ++v) {
    if (dynamic_cast<const LossyFloodAgent&>(engine.agent(v)).received()) {
      ++r.delivered;
    }
  }
  r.delivery_ratio =
      n == 0 ? 0.0 : static_cast<double>(r.delivered) / static_cast<double>(n);
  r.rounds = engine.round();
  r.complete = r.delivered == n;
  r.stats = engine.stats();
  return r;
}

}  // namespace khop
