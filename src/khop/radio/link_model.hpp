/// \file link_model.hpp
/// Pluggable radio link models. The paper assumes a perfect unit-disk radio
/// ("all nodes have the same transmission range... an ideal MAC layer
/// protocol", section 4); a LinkModel generalizes that to a per-link packet
/// delivery probability as a function of distance, with the unit disk as a
/// bit-exact special case. The related-work stress tests ((k,m)-connectivity
/// under unreliable nodes, multi-hop clustering under realistic radios) all
/// reduce to choosing a model here.
#pragma once

#include <string_view>

#include "khop/geom/point.hpp"

namespace khop {

/// Canonical model names, defined once: LinkModel::name() and the
/// experiment layer's RadioKind mapping both return these.
inline constexpr std::string_view kUnitDiskModelName = "unit-disk";
inline constexpr std::string_view kQuasiUnitDiskModelName = "quasi-udg";
inline constexpr std::string_view kLogNormalModelName = "log-normal";

/// Distance-based per-link delivery probability.
///
/// The probability is parameterized by the *squared* link length so that the
/// unit-disk case uses the exact comparison (`dist_sq <= r*r`) the spatial
/// grid and `build_unit_disk_graph` use — this is what makes `UnitDiskModel`
/// reproduce the legacy pipeline bit-for-bit, floating-point boundary cases
/// included.
class LinkModel {
 public:
  virtual ~LinkModel() = default;

  /// Probability in [0, 1] that a single transmission attempt crosses a link
  /// of squared length \p dist_sq.
  virtual double delivery_probability_sq(double dist_sq) const noexcept = 0;

  /// Distance beyond which delivery_probability_sq is 0 (or below the
  /// model's cutoff). Bounds the spatial-grid candidate query when building
  /// a LinkLayer; must be positive.
  virtual double max_range() const noexcept = 0;

  /// Human-readable model name for tables and CSV artifacts.
  virtual std::string_view name() const noexcept = 0;

  /// Convenience: probability between two positions.
  double delivery_probability(const Point2& a, const Point2& b) const noexcept {
    return delivery_probability_sq(distance_sq(a, b));
  }
};

/// The paper's ideal radio: delivery certain within `radius`, impossible
/// beyond. `build_link_layer` with this model yields exactly the graph of
/// `build_unit_disk_graph(pts, radius)`.
class UnitDiskModel final : public LinkModel {
 public:
  /// \pre radius > 0
  explicit UnitDiskModel(double radius);

  double delivery_probability_sq(double dist_sq) const noexcept override;
  double max_range() const noexcept override { return radius_; }
  std::string_view name() const noexcept override {
    return kUnitDiskModelName;
  }

  double radius() const noexcept { return radius_; }

 private:
  double radius_;
};

/// Kuhn-style quasi unit disk: links are certain up to r_min, impossible
/// beyond r_max, and degrade linearly in between (scaled by p_transition,
/// the delivery probability just outside r_min). r_min == r_max collapses to
/// UnitDiskModel(r_min) exactly.
class QuasiUnitDiskModel final : public LinkModel {
 public:
  /// \pre 0 < r_min <= r_max, p_transition in (0, 1]
  QuasiUnitDiskModel(double r_min, double r_max, double p_transition = 1.0);

  double delivery_probability_sq(double dist_sq) const noexcept override;
  double max_range() const noexcept override { return r_max_; }
  std::string_view name() const noexcept override {
    return kQuasiUnitDiskModelName;
  }

  double r_min() const noexcept { return r_min_; }
  double r_max() const noexcept { return r_max_; }

 private:
  double r_min_;
  double r_max_;
  double p_transition_;
};

/// Log-normal shadowing: the received power at distance d is Gaussian in dB
/// around a path-loss mean, so the packet reception ratio is
///
///   p(d) = 1/2 erfc( 10 n log10(d / r_half) / (sigma sqrt 2) )
///
/// with p(r_half) = 1/2, p -> 1 as d -> 0 and p -> 0 as d -> infinity. Links
/// with p below `cutoff_probability` are treated as out of range.
class LogNormalShadowingModel final : public LinkModel {
 public:
  struct Params {
    double r_half = 25.0;             ///< distance with 50% delivery
    double path_loss_exponent = 3.0;  ///< n; higher = sharper falloff
    double shadowing_sigma_db = 4.0;  ///< sigma; higher = longer gray zone
    double cutoff_probability = 0.01; ///< below this a link does not exist
  };

  /// \pre r_half > 0, path_loss_exponent > 0, shadowing_sigma_db > 0,
  ///      cutoff_probability in (0, 0.5)
  explicit LogNormalShadowingModel(const Params& params);

  double delivery_probability_sq(double dist_sq) const noexcept override;
  double max_range() const noexcept override { return max_range_; }
  std::string_view name() const noexcept override {
    return kLogNormalModelName;
  }

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  double max_range_ = 0.0;  ///< solved from cutoff_probability at build time
};

}  // namespace khop
