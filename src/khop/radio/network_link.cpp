#include "khop/radio/network_link.hpp"

namespace khop {

LinkLayer rebuild_with_model(AdHocNetwork& net, const LinkModel& model,
                             double min_probability) {
  LinkLayer layer = build_link_layer(net.positions, model, min_probability);
  net.graph = layer.graph();
  return layer;
}

}  // namespace khop
