#!/usr/bin/env python3
"""Diffs two khop.bench JSONs and fails on wall-time regressions.

Usage: compare_bench_json.py BASELINE NEW [--threshold R]
                             [--normalize-by NAME/VARIANT]

Kernels are matched on (name, variant, n, k). For every matching kernel the
checksum must be identical (the runs are seeded, so any drift means the two
binaries computed different outputs) and the wall-time ratio
new/baseline must stay <= the threshold (default 1.20, i.e. fail on a >20%
regression). wall_ns_min is compared: it is the least noisy statistic.

--normalize-by NAME/VARIANT divides each file's wall times by that file's
reference kernel at the same n (e.g. bounded_bfs/legacy) before comparing,
canceling out absolute machine speed — use this when the two files come from
different machines (CI comparing a fresh run against the committed
trajectory). Rows with no reference kernel at their n are skipped with a
note.

--exclude-variant VARIANT (repeatable) drops matching rows from the
comparison entirely — CI uses it for the `parallel` variant, whose wall time
depends on core count and scheduler noise that normalization cannot cancel.

Kernels present in only one file are reported but not fatal (trajectories
gain kernels over time). Exits non-zero on any regression or checksum
mismatch.
"""
import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"{path}: unreadable or not JSON ({e})")
    if (doc.get("schema") != "khop.bench"
            or doc.get("schema_version") not in (1, 2)):
        sys.exit(f"{path}: not a khop.bench v1/v2 file")
    return doc


def kernel_table(doc):
    table = {}
    for row in doc.get("kernels", []):
        table[(row["name"], row["variant"], row["n"], row["k"])] = row
    return table


def normalizer(table, spec, path):
    """Returns {n: wall_ns_min of the reference kernel} for one file."""
    name, _, variant = spec.partition("/")
    if not variant:
        sys.exit("--normalize-by expects NAME/VARIANT, e.g. bounded_bfs/legacy")
    ref = {}
    for (kname, kvariant, n, _k), row in table.items():
        if kname == name and kvariant == variant:
            ref[n] = row["wall_ns_min"]
    if not ref:
        sys.exit(f"{path}: no rows for normalization kernel {spec}")
    return ref


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=1.20,
                    help="max allowed new/baseline wall ratio (default 1.20)")
    ap.add_argument("--normalize-by", metavar="NAME/VARIANT", default=None,
                    help="normalize each file by this kernel's wall time "
                         "at the same n (cross-machine comparisons)")
    ap.add_argument("--exclude-variant", metavar="VARIANT", action="append",
                    default=[],
                    help="drop rows with this variant from the comparison "
                         "(repeatable; e.g. core-count-sensitive 'parallel' "
                         "rows in cross-machine diffs)")
    args = ap.parse_args()

    excluded = set(args.exclude_variant)
    base = {k: v for k, v in kernel_table(load(args.baseline)).items()
            if k[1] not in excluded}
    new = {k: v for k, v in kernel_table(load(args.new)).items()
           if k[1] not in excluded}

    base_ref = new_ref = None
    if args.normalize_by:
        base_ref = normalizer(base, args.normalize_by, args.baseline)
        new_ref = normalizer(new, args.normalize_by, args.new)

    matched = 0
    skipped_norm = 0
    failures = []
    for key in sorted(base.keys() & new.keys()):
        name, variant, n, k = key
        b, m = base[key], new[key]
        label = f"{name}/{variant} n={n} k={k}"
        if b["checksum"] != m["checksum"]:
            failures.append(f"CHECKSUM {label}: {b['checksum']} -> "
                            f"{m['checksum']}")
            continue
        b_wall, m_wall = b["wall_ns_min"], m["wall_ns_min"]
        if base_ref is not None:
            if n not in base_ref or n not in new_ref:
                print(f"note: {label} skipped (no normalization row at n={n})")
                skipped_norm += 1
                continue
            b_wall /= base_ref[n]
            m_wall /= new_ref[n]
        matched += 1
        ratio = m_wall / b_wall if b_wall > 0 else float("inf")
        if ratio > args.threshold:
            failures.append(f"REGRESSION {label}: x{ratio:.2f} "
                            f"(limit x{args.threshold:.2f})")

    only_base = sorted(base.keys() - new.keys())
    only_new = sorted(new.keys() - base.keys())
    for key in only_base:
        print(f"note: only in {args.baseline}: {'/'.join(map(str, key))}")
    for key in only_new:
        print(f"note: only in {args.new}: {'/'.join(map(str, key))}")

    if matched == 0 and not failures:
        sys.exit("no comparable kernels between the two files")

    for f in failures:
        print(f)
    verdict = "FAIL" if failures else "OK"
    print(f"{verdict}: {matched} kernels compared, {len(failures)} problems, "
          f"{skipped_norm} skipped, {len(only_base) + len(only_new)} unmatched")
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
