#!/usr/bin/env python3
"""Validates a khop trace file (Chrome trace-event JSON, khop.trace v1).

Checks the envelope (otherData.schema == "khop.trace", schema_version 1,
traceEvents array), every event row (M metadata rows and X complete spans
with non-negative ts/dur, integer pid/tid, args object), and two structural
properties Perfetto itself would tolerate silently:

 * every X event's tid has a thread_name metadata row, and
 * per (tid, depth) the span intervals properly nest within their depth-1
   parent (a child's [ts, ts+dur] lies inside some enclosing span).

Usage: validate_trace_json.py FILE [FILE...]
Exits non-zero (printing the first problem) if any file is invalid.
"""
import json
import sys


def fail(path, msg):
    print(f"{path}: INVALID - {msg}")
    sys.exit(1)


def validate(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"unreadable or not JSON ({e})")

    other = doc.get("otherData")
    if not isinstance(other, dict) or other.get("schema") != "khop.trace":
        fail(path, "otherData.schema must be 'khop.trace'")
    if other.get("schema_version") != 1:
        fail(path, "otherData.schema_version must be 1")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(path, "traceEvents must be a non-empty array")

    named_tids = set()
    spans = []  # (tid, depth, ts, end)
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(path, f"traceEvents[{i}] is not an object")
        ph = e.get("ph")
        if ph not in ("M", "X"):
            fail(path, f"traceEvents[{i}].ph must be 'M' or 'X', got {ph!r}")
        if not isinstance(e.get("name"), str) or not e["name"]:
            fail(path, f"traceEvents[{i}].name must be a non-empty string")
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), int) or isinstance(e.get(key), bool):
                fail(path, f"traceEvents[{i}].{key} must be an integer")
        if ph == "M":
            if e["name"] != "thread_name":
                fail(path, f"traceEvents[{i}]: unexpected metadata "
                           f"'{e['name']}'")
            named_tids.add(e["tid"])
            continue
        for key in ("ts", "dur"):
            v = e.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                fail(path, f"traceEvents[{i}].{key} must be a non-negative "
                           f"number")
        args = e.get("args")
        if not isinstance(args, dict):
            fail(path, f"traceEvents[{i}].args must be an object")
        depth = args.get("depth")
        if not isinstance(depth, int) or isinstance(depth, bool) or depth < 0:
            fail(path, f"traceEvents[{i}].args.depth must be a non-negative "
                       f"integer")
        spans.append((e["tid"], depth, e["ts"], e["ts"] + e["dur"]))

    if not spans:
        fail(path, "no X (span) events")
    missing = {tid for tid, _, _, _ in spans} - named_tids
    if missing:
        fail(path, f"tids without a thread_name row: {sorted(missing)}")

    # Nesting: every depth-d > 0 span must lie inside a depth d-1 span on
    # the same thread. O(per-thread n^2) worst case; fine at trace sizes.
    by_tid = {}
    for tid, depth, ts, end in spans:
        by_tid.setdefault(tid, []).append((depth, ts, end))
    for tid, rows in by_tid.items():
        for depth, ts, end in rows:
            if depth == 0:
                continue
            if not any(d == depth - 1 and pts <= ts and end <= pend
                       for d, pts, pend in rows):
                fail(path, f"span at tid={tid} depth={depth} ts={ts} has no "
                           f"enclosing depth-{depth - 1} span")

    print(f"{path}: OK ({len(spans)} spans, {len(named_tids)} threads)")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__)
        sys.exit(2)
    for p in sys.argv[1:]:
        validate(p)
