#!/usr/bin/env python3
"""Validates a BENCH_*.json file against the khop.bench schema.

Accepts schema versions 1 and 2. Version 2 adds two required per-kernel
memory columns: allocs_per_rep and peak_rss_bytes.

Usage: validate_bench_json.py FILE [FILE...]
Exits non-zero (printing the first problem) if any file is invalid.
"""
import json
import sys

KERNEL_FIELDS = {
    "name": str,
    "variant": str,
    "n": int,
    "k": int,
    "reps": int,
    "wall_ns_mean": (int, float),
    "wall_ns_min": (int, float),
    "checksum": (int, float),
}
KERNEL_FIELDS_V2 = {
    **KERNEL_FIELDS,
    "allocs_per_rep": int,
    "peak_rss_bytes": int,
}
SPEEDUP_FIELDS = {"name": str, "n": int, "speedup": (int, float)}
REQUIRED_KERNELS = {"bounded_bfs", "clustering", "backbone", "engine_flood"}


def fail(path, msg):
    print(f"{path}: INVALID - {msg}")
    sys.exit(1)


def check_rows(path, rows, fields, what):
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            fail(path, f"{what}[{i}] is not an object")
        for key, typ in fields.items():
            if key not in row:
                fail(path, f"{what}[{i}] missing field '{key}'")
            if not isinstance(row[key], typ) or isinstance(row[key], bool):
                fail(path, f"{what}[{i}].{key} has wrong type")
        if "reps" in row and row["reps"] < 1:
            fail(path, f"{what}[{i}].reps must be >= 1")
        if "wall_ns_mean" in row and row["wall_ns_mean"] <= 0:
            fail(path, f"{what}[{i}].wall_ns_mean must be positive")


def validate(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"unreadable or not JSON ({e})")

    if doc.get("schema") != "khop.bench":
        fail(path, "schema must be 'khop.bench'")
    version = doc.get("schema_version")
    if version not in (1, 2):
        fail(path, "schema_version must be 1 or 2")
    if not isinstance(doc.get("label"), str) or not doc["label"]:
        fail(path, "label must be a non-empty string")
    if not isinstance(doc.get("kernels"), list) or not doc["kernels"]:
        fail(path, "kernels must be a non-empty array")
    if not isinstance(doc.get("speedups"), list):
        fail(path, "speedups must be an array")

    kernel_fields = KERNEL_FIELDS if version == 1 else KERNEL_FIELDS_V2
    check_rows(path, doc["kernels"], kernel_fields, "kernels")
    check_rows(path, doc["speedups"], SPEEDUP_FIELDS, "speedups")

    names = {row["name"] for row in doc["kernels"]}
    missing = REQUIRED_KERNELS - names
    if missing:
        fail(path, f"missing required kernels: {sorted(missing)}")

    # Cross-variant checksum agreement (the bit-exactness double-check).
    by_key = {}
    for row in doc["kernels"]:
        key = (row["name"], row["n"])
        if key in by_key and by_key[key] != row["checksum"]:
            fail(path, f"checksum mismatch across variants of {key}")
        by_key[key] = row["checksum"]

    print(f"{path}: OK (v{version}, {len(doc['kernels'])} kernel rows, "
          f"{len(doc['speedups'])} speedups)")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__)
        sys.exit(2)
    for p in sys.argv[1:]:
        validate(p)
