#!/usr/bin/env python3
"""Validates khop durability fixtures: snapshot (.khsnp) and WAL (.khwal).

An independent re-implementation of the binary formats documented in
src/khop/dynamic/persist/snapshot.hpp and wal.hpp, so a format drift between
the C++ encoder and the documented layout fails CI even if the C++ decoder
drifted in lockstep. Checks, per snapshot file:

 * the "KHOPSNP1" magic,
 * section framing (tag | u64 len | payload | u32 crc32c) in the exact
   mandatory order meta, graph, clustering, stats, links, end,
 * every section checksum (CRC32C, the Castagnoli polynomial — NOT zlib's
   CRC32; implemented below because the stdlib has no CRC32C),
 * internal structure: adjacency symmetric and sorted with dead nodes
   isolated, heads strictly ascending and self-headed, every alive node's
   head alive with dist <= k (dist == 0 iff self-headed), dead nodes
   unaffiliated, virtual links ordered (u < v) with path endpoints matching,
 * no trailing bytes.

Per WAL file: the "KHOPWAL1" magic, the header cursor checksum, and every
record's length/checksum/payload shape (type <= 3, neighbor count matching
the payload size). A torn tail is an ERROR here — committed fixtures must
be clean; runtime tolerance for torn tails lives in the C++ reader.

Usage: validate_snapshot.py FILE [FILE...]
       (format chosen by extension: .khsnp / .khwal)
Exits non-zero, printing the first problem, if any file is invalid.
"""
import struct
import sys

SNAP_MAGIC = b"KHOPSNP1"
WAL_MAGIC = b"KHOPWAL1"
INVALID_NODE = 0xFFFFFFFF
UNREACHABLE = 0xFFFFFFFF
NUM_COUNTERS = 15
MAX_PIPELINE = 4  # Pipeline::kGmst
MAX_EVENT_TYPE = 3  # ChurnEventType::kLinkUp

# CRC32C (Castagnoli), reflected polynomial 0x82F63B78 — the same function
# as src/khop/dynamic/persist/crc32c.cpp. zlib.crc32 uses 0xEDB88320 and
# would accept nothing the C++ side wrote.
_TABLE = []
for _i in range(256):
    _c = _i
    for _ in range(8):
        _c = (_c >> 1) ^ 0x82F63B78 if _c & 1 else _c >> 1
    _TABLE.append(_c)


def crc32c(data):
    crc = 0xFFFFFFFF
    for b in data:
        crc = (crc >> 8) ^ _TABLE[(crc ^ b) & 0xFF]
    return crc ^ 0xFFFFFFFF


assert crc32c(b"123456789") == 0xE3069283, "CRC32C self-test failed"


def fail(path, msg):
    print(f"{path}: INVALID - {msg}")
    sys.exit(1)


class Reader:
    """Bounds-checked little-endian cursor over a bytes object."""

    def __init__(self, path, data, what):
        self.path, self.data, self.pos, self.what = path, data, 0, what

    def take(self, n):
        if self.pos + n > len(self.data):
            fail(self.path, f"truncated {self.what} at offset {self.pos}")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self):
        return self.take(1)[0]

    def u32(self):
        return struct.unpack("<I", self.take(4))[0]

    def u64(self):
        return struct.unpack("<Q", self.take(8))[0]

    def remaining(self):
        return len(self.data) - self.pos

    def at_end(self):
        return self.pos == len(self.data)


def read_section(path, r, want_tag, name):
    tag = r.u32()
    if tag != want_tag:
        fail(path, f"expected section {want_tag} ({name}), found {tag}")
    length = r.u64()
    if length > r.remaining():
        fail(path, f"section {name} length {length} exceeds file size")
    payload = r.take(length)
    crc = r.u32()
    actual = crc32c(payload)
    if actual != crc:
        fail(path, f"section {name} checksum mismatch "
                   f"(stored {crc:#010x}, computed {actual:#010x})")
    return Reader(path, payload, f"{name} section")


def expect_drained(path, r, name):
    if not r.at_end():
        fail(path, f"{r.remaining()} unparsed bytes at the end of "
                   f"the {name} section")


def validate_snapshot(path, data):
    if data[:len(SNAP_MAGIC)] != SNAP_MAGIC:
        fail(path, "bad magic (not a KHOPSNP1 file)")
    r = Reader(path, data[len(SNAP_MAGIC):], "file")

    meta = read_section(path, r, 1, "meta")
    cursor = meta.u64()
    cap = meta.u64()
    k = meta.u32()
    pipeline = meta.u8()
    num_components = meta.u64()
    expect_drained(path, meta, "meta")
    if k < 1:
        fail(path, f"k must be >= 1, got {k}")
    if pipeline > MAX_PIPELINE:
        fail(path, f"unknown pipeline {pipeline}")
    if num_components < 1:
        fail(path, f"num_components must be >= 1, got {num_components}")
    if cap > (1 << 32):
        fail(path, f"implausible capacity {cap}")

    gr = read_section(path, r, 2, "graph")
    alive, adj = [], []
    for u in range(cap):
        alive.append(gr.u8() != 0)
        deg = gr.u32()
        if deg * 4 > gr.remaining():
            fail(path, f"node {u} degree {deg} exceeds section size")
        adj.append([gr.u32() for _ in range(deg)])
    expect_drained(path, gr, "graph")
    edges = set()
    for u in range(cap):
        if not alive[u] and adj[u]:
            fail(path, f"dead node {u} has neighbors")
        if adj[u] != sorted(set(adj[u])):
            fail(path, f"node {u} adjacency not sorted-unique")
        for v in adj[u]:
            if v >= cap or v == u:
                fail(path, f"node {u} has invalid neighbor {v}")
            if not alive[v]:
                fail(path, f"alive node {u} linked to dead node {v}")
            edges.add((u, v))
    for (u, v) in edges:
        if (v, u) not in edges:
            fail(path, f"edge {{{u}, {v}}} is not symmetric")

    cl = read_section(path, r, 3, "clustering")
    head_count = cl.u32()
    if head_count * 4 > cl.remaining():
        fail(path, f"head count {head_count} exceeds section size")
    heads = [cl.u32() for _ in range(head_count)]
    head_of = [cl.u32() for _ in range(cap)]
    dist = [cl.u32() for _ in range(cap)]
    expect_drained(path, cl, "clustering")
    if heads != sorted(set(heads)):
        fail(path, "heads not strictly ascending")
    head_set = set(heads)
    for h in heads:
        if h >= cap or not alive[h]:
            fail(path, f"head {h} out of range or dead")
        if head_of[h] != h or dist[h] != 0:
            fail(path, f"head {h} not self-headed at distance 0")
    for v in range(cap):
        if not alive[v]:
            if head_of[v] != INVALID_NODE or dist[v] != UNREACHABLE:
                fail(path, f"dead node {v} still affiliated")
            continue
        if head_of[v] not in head_set:
            fail(path, f"node {v} affiliated to non-head {head_of[v]}")
        if dist[v] > k:
            fail(path, f"node {v} at distance {dist[v]} > k={k}")
        if (dist[v] == 0) != (head_of[v] == v):
            fail(path, f"node {v} distance/affiliation mismatch")

    st = read_section(path, r, 4, "stats")
    cumulative = [st.u64() for _ in range(NUM_COUNTERS)]
    published = [st.u64() for _ in range(NUM_COUNTERS)]
    expect_drained(path, st, "stats")
    for i, (c, p) in enumerate(zip(cumulative, published)):
        if p > c:
            fail(path, f"stats counter {i}: published watermark {p} "
                       f"exceeds cumulative {c}")

    li = read_section(path, r, 5, "links")
    link_count = li.u32()
    if link_count * 16 > li.remaining():
        fail(path, f"link count {link_count} exceeds section size")
    seen = set()
    for i in range(link_count):
        u, v, hops, path_len = li.u32(), li.u32(), li.u32(), li.u32()
        if path_len * 4 > li.remaining():
            fail(path, f"link {i} path length {path_len} exceeds section")
        lpath = [li.u32() for _ in range(path_len)]
        if u >= v:
            fail(path, f"link {i} endpoints unordered ({u}, {v})")
        if (u, v) in seen:
            fail(path, f"duplicate link ({u}, {v})")
        seen.add((u, v))
        if u not in head_set or v not in head_set:
            fail(path, f"link ({u}, {v}) endpoint is not a head")
        if path_len != hops + 1 or lpath[0] != u or lpath[-1] != v:
            fail(path, f"link ({u}, {v}) path does not span its endpoints "
                       f"in hops+1 nodes")
        for w in lpath:
            if w >= cap or not alive[w]:
                fail(path, f"link ({u}, {v}) path node {w} invalid or dead")
    expect_drained(path, li, "links")

    end = read_section(path, r, 0, "end")
    expect_drained(path, end, "end")
    if not r.at_end():
        fail(path, f"{r.remaining()} trailing bytes after end section")

    print(f"{path}: ok (cursor {cursor}, capacity {cap}, "
          f"{sum(alive)} alive, k={k}, pipeline {pipeline}, "
          f"{head_count} heads, {link_count} links)")


def validate_wal(path, data):
    if data[:len(WAL_MAGIC)] != WAL_MAGIC:
        fail(path, "bad magic (not a KHOPWAL1 file)")
    r = Reader(path, data, "file")
    r.take(len(WAL_MAGIC))
    cursor_bytes = r.take(8)
    start = struct.unpack("<Q", cursor_bytes)[0]
    crc = r.u32()
    if crc32c(cursor_bytes) != crc:
        fail(path, "header cursor checksum mismatch")

    records = 0
    while not r.at_end():
        # Committed fixtures must be whole: a torn tail is an error here.
        length = r.u32()
        stored = r.u32()
        payload = r.take(length)
        actual = crc32c(payload)
        if actual != stored:
            fail(path, f"record {records} checksum mismatch "
                       f"(stored {stored:#010x}, computed {actual:#010x})")
        p = Reader(path, payload, f"record {records}")
        ev_type = p.u8()
        p.u32()  # a
        p.u32()  # b
        nbr_count = p.u32()
        if ev_type > MAX_EVENT_TYPE:
            fail(path, f"record {records} has unknown event type {ev_type}")
        if nbr_count * 4 != p.remaining():
            fail(path, f"record {records} neighbor count {nbr_count} does "
                       f"not match payload size")
        records += 1

    print(f"{path}: ok (start cursor {start}, {records} records)")


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    for path in argv[1:]:
        try:
            with open(path, "rb") as f:
                data = f.read()
        except OSError as e:
            fail(path, f"unreadable ({e})")
        if path.endswith(".khsnp"):
            validate_snapshot(path, data)
        elif path.endswith(".khwal"):
            validate_wal(path, data)
        else:
            fail(path, "unknown extension (expected .khsnp or .khwal)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
