// Unit tests for the figure-reproduction experiment driver.
#include <gtest/gtest.h>

#include "khop/common/error.hpp"
#include "khop/exp/experiment.hpp"

namespace khop {
namespace {

TEST(Experiment, SingleTrialProducesConsistentMetrics) {
  ExperimentConfig cfg;
  cfg.num_nodes = 80;
  cfg.k = 2;
  cfg.pipeline = Pipeline::kAcLmst;
  cfg.radius = resolve_radius(cfg, 11);
  Rng rng(99);
  const TrialResultMetrics m = run_single_trial(cfg, rng);
  EXPECT_GT(m.clusterheads, 0.0);
  EXPECT_GE(m.gateways, 0.0);
  EXPECT_DOUBLE_EQ(m.cds_size, m.clusterheads + m.gateways);
  EXPECT_LE(m.cds_size, 80.0);
}

TEST(Experiment, RequiresResolvedRadius) {
  ExperimentConfig cfg;
  Rng rng(1);
  EXPECT_THROW(run_single_trial(cfg, rng), InvalidArgument);
}

TEST(Experiment, TrialsDeterministicPerSeed) {
  ExperimentConfig cfg;
  cfg.num_nodes = 70;
  cfg.radius = resolve_radius(cfg, 22);
  Rng a(5), b(5);
  const TrialResultMetrics m1 = run_single_trial(cfg, a);
  const TrialResultMetrics m2 = run_single_trial(cfg, b);
  EXPECT_DOUBLE_EQ(m1.cds_size, m2.cds_size);
  EXPECT_DOUBLE_EQ(m1.clusterheads, m2.clusterheads);
}

TEST(Experiment, SweepPointAggregates) {
  ThreadPool pool(8);
  ExperimentConfig cfg;
  cfg.num_nodes = 60;
  cfg.k = 1;
  TrialPolicy policy;
  policy.min_trials = 20;
  policy.max_trials = 30;
  const SweepPoint p = run_sweep_point(pool, cfg, policy, 777);
  EXPECT_GE(p.trials, 20u);
  EXPECT_LE(p.trials, 30u);
  EXPECT_GT(p.cds_size.mean(), 0.0);
  EXPECT_DOUBLE_EQ(p.cds_size.mean(),
                   p.clusterheads.mean() + p.gateways.mean());
}

TEST(Experiment, SweepPointDeterministicAcrossPools) {
  ExperimentConfig cfg;
  cfg.num_nodes = 50;
  TrialPolicy policy;
  policy.min_trials = 15;
  policy.max_trials = 15;
  ThreadPool p1(1), p8(8);
  const SweepPoint a = run_sweep_point(p1, cfg, policy, 31);
  const SweepPoint b = run_sweep_point(p8, cfg, policy, 31);
  EXPECT_DOUBLE_EQ(a.cds_size.mean(), b.cds_size.mean());
  EXPECT_DOUBLE_EQ(a.gateways.variance(), b.gateways.variance());
}

TEST(Experiment, PipelinesShareTopologiesAtSameSeed) {
  // Paired comparison: same seed => same topologies => AC-Mesh never beats
  // NC-Mesh on the mean (selection subset guarantees it per instance).
  TrialPolicy policy;
  policy.min_trials = 15;
  policy.max_trials = 15;
  ThreadPool pool(8);

  ExperimentConfig nc;
  nc.num_nodes = 80;
  nc.k = 2;
  nc.pipeline = Pipeline::kNcMesh;
  ExperimentConfig ac = nc;
  ac.pipeline = Pipeline::kAcMesh;

  const SweepPoint pnc = run_sweep_point(pool, nc, policy, 444);
  const SweepPoint pac = run_sweep_point(pool, ac, policy, 444);
  EXPECT_DOUBLE_EQ(pnc.clusterheads.mean(), pac.clusterheads.mean());
  EXPECT_LE(pac.gateways.mean(), pnc.gateways.mean());
}

TEST(Experiment, CurveCoversAllNodeCounts) {
  ThreadPool pool(8);
  ExperimentConfig cfg;
  cfg.k = 1;
  TrialPolicy policy;
  policy.min_trials = 8;
  policy.max_trials = 8;
  const auto curve = run_curve(pool, cfg, {50, 75, 100}, policy, 55);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_EQ(curve[0].cfg.num_nodes, 50u);
  EXPECT_EQ(curve[2].cfg.num_nodes, 100u);
  // More nodes at fixed degree => more clusters (k fixed).
  EXPECT_LT(curve[0].clusterheads.mean(), curve[2].clusterheads.mean());
}

}  // namespace
}  // namespace khop
