// Unit tests for hierarchical backbone routing.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "khop/cds/routing.hpp"
#include "khop/common/error.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

struct Fixture {
  AdHocNetwork net;
  Clustering clustering;
  Backbone backbone;

  explicit Fixture(std::uint64_t seed, Hops k, std::size_t n = 100,
                   Pipeline p = Pipeline::kAcLmst) {
    GeneratorConfig cfg;
    cfg.num_nodes = n;
    Rng rng(seed);
    net = generate_network(cfg, rng);
    clustering = khop_clustering(net.graph, k);
    backbone = build_backbone(net.graph, clustering, p);
  }
};

TEST(Routing, PathOnHandBuiltChain) {
  // Path 0..6 with k=1: heads {0,2,4,6}, gateways {1,3,5}. Route 1 -> 5
  // must walk the chain.
  const Graph g = Graph::from_edges(
      7, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  const Clustering c = khop_clustering(g, 1);
  const Backbone b = build_backbone(g, c, Pipeline::kAcLmst);
  const BackboneRouter router(g, c, b);
  const Route r = router.route(1, 5);
  EXPECT_EQ(r.path, (std::vector<NodeId>{1, 2, 3, 4, 5}));
  EXPECT_EQ(r.hops(), 4u);
  EXPECT_DOUBLE_EQ(router.stretch(1, 5), 1.0);
}

TEST(Routing, SelfRouteIsSingleton) {
  const Fixture f(1701, 2, 60);
  const BackboneRouter router(f.net.graph, f.clustering, f.backbone);
  const Route r = router.route(7, 7);
  EXPECT_EQ(r.path, (std::vector<NodeId>{7}));
  EXPECT_EQ(r.hops(), 0u);
}

TEST(Routing, AllPairsValidSimplePaths) {
  const Fixture f(1702, 2, 80);
  const BackboneRouter router(f.net.graph, f.clustering, f.backbone);
  for (NodeId s = 0; s < 20; ++s) {
    for (NodeId d = 40; d < 60; ++d) {
      const Route r = router.route(s, d);
      ASSERT_GE(r.path.size(), 1u);
      EXPECT_EQ(r.path.front(), s);
      EXPECT_EQ(r.path.back(), d);
      // Simple: no repeated nodes.
      auto sorted = r.path;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
                sorted.end())
          << "loop in route " << s << "->" << d;
      // Consecutive nodes adjacent in G (also checked internally).
      for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
        EXPECT_TRUE(f.net.graph.has_edge(r.path[i], r.path[i + 1]));
      }
    }
  }
}

TEST(Routing, StretchAtLeastOne) {
  const Fixture f(1703, 2, 90);
  const BackboneRouter router(f.net.graph, f.clustering, f.backbone);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const auto s = static_cast<NodeId>(rng.uniform_int(f.net.num_nodes()));
    const auto d = static_cast<NodeId>(rng.uniform_int(f.net.num_nodes()));
    if (s == d) continue;
    EXPECT_GE(router.stretch(s, d), 1.0);
  }
}

TEST(Routing, IntraClusterRoutesStayShort) {
  const Fixture f(1704, 3, 90);
  const BackboneRouter router(f.net.graph, f.clustering, f.backbone);
  for (NodeId v = 0; v < f.net.num_nodes(); ++v) {
    const NodeId h = f.clustering.head_of[v];
    if (h == v) continue;
    const Route r = router.route(v, h);
    EXPECT_EQ(r.hops(), f.clustering.dist_to_head[v]) << "node " << v;
  }
}

TEST(Routing, WorksOnEveryPipeline) {
  for (const Pipeline p : kAllPipelines) {
    const Fixture f(1705, 2, 80, p);
    const BackboneRouter router(f.net.graph, f.clustering, f.backbone);
    const Route r = router.route(0, static_cast<NodeId>(
                                        f.net.num_nodes() - 1));
    EXPECT_EQ(r.path.front(), 0u) << pipeline_name(p);
    EXPECT_EQ(r.path.back(), f.net.num_nodes() - 1) << pipeline_name(p);
  }
}

TEST(Routing, DenserBackboneGivesSmallerStretch) {
  // NC-Mesh keeps every selected link; G-MST keeps a tree. Average stretch
  // over the mesh must be <= over the tree.
  const Fixture mesh(1706, 2, 100, Pipeline::kNcMesh);
  const Backbone tree_b =
      build_backbone(mesh.net.graph, mesh.clustering, Pipeline::kGmst);
  const BackboneRouter mesh_router(mesh.net.graph, mesh.clustering,
                                   mesh.backbone);
  const BackboneRouter tree_router(mesh.net.graph, mesh.clustering, tree_b);
  double mesh_total = 0.0, tree_total = 0.0;
  Rng rng(5);
  int pairs = 0;
  for (int i = 0; i < 200; ++i) {
    const auto s =
        static_cast<NodeId>(rng.uniform_int(mesh.net.num_nodes()));
    const auto d =
        static_cast<NodeId>(rng.uniform_int(mesh.net.num_nodes()));
    if (s == d) continue;
    ++pairs;
    mesh_total += mesh_router.stretch(s, d);
    tree_total += tree_router.stretch(s, d);
  }
  ASSERT_GT(pairs, 100);
  EXPECT_LE(mesh_total, tree_total * 1.02);
}

TEST(Routing, RejectsBadEndpoints) {
  const Fixture f(1707, 1, 50);
  const BackboneRouter router(f.net.graph, f.clustering, f.backbone);
  EXPECT_THROW(router.route(0, static_cast<NodeId>(9999)), InvalidArgument);
  EXPECT_THROW(router.stretch(3, 3), InvalidArgument);
}

}  // namespace
}  // namespace khop
