// Unit tests for the custom backbone-spec API: preset equivalence, the
// Wu-Lou pipeline, and the LMST keep-rule ablation.
#include <gtest/gtest.h>

#include "khop/gateway/validate.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

AdHocNetwork make_net(std::uint64_t seed, std::size_t n = 100) {
  GeneratorConfig cfg;
  cfg.num_nodes = n;
  Rng rng(seed);
  return generate_network(cfg, rng);
}

TEST(BackboneSpec, PresetSpecsMatchPipelineBuilds) {
  const AdHocNetwork net = make_net(1501);
  for (Hops k = 1; k <= 3; ++k) {
    const Clustering c = khop_clustering(net.graph, k);
    for (const Pipeline p : kAllPipelines) {
      const Backbone by_pipeline = build_backbone(net.graph, c, p);
      const Backbone by_spec = build_backbone(net.graph, c, spec_for(p));
      EXPECT_EQ(by_pipeline.gateways, by_spec.gateways)
          << pipeline_name(p) << " k=" << k;
      EXPECT_EQ(by_pipeline.virtual_links, by_spec.virtual_links);
    }
  }
}

TEST(BackboneSpec, WuLouPipelinesValidAtK1) {
  const AdHocNetwork net = make_net(1502);
  const Clustering c = khop_clustering(net.graph, 1);
  for (const GatewayAlgorithm gw :
       {GatewayAlgorithm::kMesh, GatewayAlgorithm::kLmst}) {
    BackboneSpec spec;
    spec.neighbor_rule = NeighborRule::kWuLou25;
    spec.gateway = gw;
    const Backbone b = build_backbone(net.graph, c, spec);
    EXPECT_TRUE(validate_backbone(net.graph, b).empty());
  }
}

TEST(BackboneSpec, WuLouNeverKeepsMoreThanNc) {
  const AdHocNetwork net = make_net(1503);
  const Clustering c = khop_clustering(net.graph, 1);
  BackboneSpec wl;
  wl.neighbor_rule = NeighborRule::kWuLou25;
  wl.gateway = GatewayAlgorithm::kMesh;
  const Backbone wl_b = build_backbone(net.graph, c, wl);
  const Backbone nc_b = build_backbone(net.graph, c, Pipeline::kNcMesh);
  EXPECT_LE(wl_b.gateways.size(), nc_b.gateways.size());
  EXPECT_LE(wl_b.virtual_links.size(), nc_b.virtual_links.size());
}

TEST(BackboneSpec, IntersectionKeepRuleStillConnected) {
  const AdHocNetwork net = make_net(1504, 130);
  for (Hops k = 1; k <= 3; ++k) {
    const Clustering c = khop_clustering(net.graph, k);
    for (const NeighborRule rule :
         {NeighborRule::kAdjacent, NeighborRule::kAllWithin2k1}) {
      BackboneSpec spec;
      spec.neighbor_rule = rule;
      spec.gateway = GatewayAlgorithm::kLmst;
      spec.lmst_keep = LmstKeepRule::kBothEndpoints;
      const Backbone b = build_backbone(net.graph, c, spec);
      EXPECT_TRUE(validate_backbone(net.graph, b).empty())
          << "k=" << k << " rule=" << static_cast<int>(rule);
    }
  }
}

TEST(BackboneSpec, IntersectionNeverKeepsMoreThanUnion) {
  const AdHocNetwork net = make_net(1505, 140);
  for (Hops k = 1; k <= 3; ++k) {
    const Clustering c = khop_clustering(net.graph, k);
    BackboneSpec spec;
    spec.gateway = GatewayAlgorithm::kLmst;
    spec.lmst_keep = LmstKeepRule::kEitherEndpoint;
    const Backbone u = build_backbone(net.graph, c, spec);
    spec.lmst_keep = LmstKeepRule::kBothEndpoints;
    const Backbone i = build_backbone(net.graph, c, spec);
    EXPECT_LE(i.virtual_links.size(), u.virtual_links.size()) << "k=" << k;
    EXPECT_LE(i.gateways.size(), u.gateways.size()) << "k=" << k;
    // Intersection links are a subset of union links.
    for (const auto& link : i.virtual_links) {
      EXPECT_TRUE(std::binary_search(u.virtual_links.begin(),
                                     u.virtual_links.end(), link));
    }
  }
}

TEST(BackboneSpec, SpecRecordedOnResult) {
  const AdHocNetwork net = make_net(1506, 60);
  const Clustering c = khop_clustering(net.graph, 2);
  BackboneSpec spec;
  spec.lmst_keep = LmstKeepRule::kBothEndpoints;
  const Backbone b = build_backbone(net.graph, c, spec);
  EXPECT_EQ(b.spec.lmst_keep, LmstKeepRule::kBothEndpoints);
  const Backbone preset = build_backbone(net.graph, c, Pipeline::kNcMesh);
  EXPECT_EQ(preset.pipeline, Pipeline::kNcMesh);
  EXPECT_EQ(preset.spec.neighbor_rule, NeighborRule::kAllWithin2k1);
  EXPECT_EQ(preset.spec.gateway, GatewayAlgorithm::kMesh);
}

}  // namespace
}  // namespace khop
