// Unit tests for the parallel Monte-Carlo trial runner.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "khop/common/error.hpp"
#include "khop/exp/trial.hpp"

namespace khop {
namespace {

TEST(TrialRunner, RunsMinTrialsAtLeast) {
  ThreadPool pool(4);
  TrialPolicy policy;
  policy.min_trials = 40;
  policy.max_trials = 100;
  std::atomic<std::size_t> calls{0};
  const TrialSummary s = run_trials(
      pool, policy, Rng(1), 1, [&](Rng&, std::size_t) -> std::vector<double> {
        calls.fetch_add(1);
        return {5.0};  // constant metric converges immediately
      });
  EXPECT_GE(s.trials_run, policy.min_trials);
  EXPECT_TRUE(s.converged);
  EXPECT_EQ(calls.load(), s.trials_run);
  EXPECT_DOUBLE_EQ(s.metrics[0].mean(), 5.0);
}

TEST(TrialRunner, StopsAtCapWithoutConvergence) {
  ThreadPool pool(4);
  TrialPolicy policy;
  policy.min_trials = 10;
  policy.max_trials = 50;
  policy.rel_halfwidth = 1e-9;  // unreachable tightness
  const TrialSummary s = run_trials(
      pool, policy, Rng(2), 1,
      [](Rng& rng, std::size_t) -> std::vector<double> {
        return {rng.uniform(0.0, 100.0)};
      });
  EXPECT_EQ(s.trials_run, 50u);
  EXPECT_FALSE(s.converged);
}

TEST(TrialRunner, DeterministicAcrossThreadCounts) {
  TrialPolicy policy;
  policy.min_trials = 60;
  policy.max_trials = 60;
  const auto fn = [](Rng& rng, std::size_t) -> std::vector<double> {
    return {rng.uniform(), rng.uniform(0.0, 10.0)};
  };
  ThreadPool p1(1), p8(8);
  const TrialSummary a = run_trials(p1, policy, Rng(33), 2, fn);
  const TrialSummary b = run_trials(p8, policy, Rng(33), 2, fn);
  EXPECT_DOUBLE_EQ(a.metrics[0].mean(), b.metrics[0].mean());
  EXPECT_DOUBLE_EQ(a.metrics[0].variance(), b.metrics[0].variance());
  EXPECT_DOUBLE_EQ(a.metrics[1].mean(), b.metrics[1].mean());
}

TEST(TrialRunner, TrialIndexSeedsAreIndependent) {
  // Trial i must receive the spawn(i) stream: record first draw per trial.
  ThreadPool pool(4);
  TrialPolicy policy;
  policy.min_trials = 16;
  policy.max_trials = 16;
  std::vector<double> first(16, -1.0);
  run_trials(pool, policy, Rng(7), 1,
             [&](Rng& rng, std::size_t trial) -> std::vector<double> {
               first[trial] = rng.uniform();
               return {0.0};
             });
  const Rng master(7);
  for (std::size_t i = 0; i < 16; ++i) {
    Rng expect = master.spawn(i);
    EXPECT_DOUBLE_EQ(first[i], expect.uniform()) << "trial " << i;
  }
}

TEST(TrialRunner, ChecksMetricArity) {
  ThreadPool pool(2);
  TrialPolicy policy;
  policy.min_trials = 2;
  policy.max_trials = 4;
  EXPECT_THROW(
      run_trials(pool, policy, Rng(1), 2,
                 [](Rng&, std::size_t) -> std::vector<double> {
                   return {1.0};  // wrong arity
                 }),
      InvalidArgument);
}

TEST(TrialRunner, RejectsBadPolicy) {
  ThreadPool pool(2);
  TrialPolicy policy;
  policy.min_trials = 10;
  policy.max_trials = 5;
  const auto fn = [](Rng&, std::size_t) -> std::vector<double> {
    return {0.0};
  };
  EXPECT_THROW(run_trials(pool, policy, Rng(1), 1, fn), InvalidArgument);
  policy.max_trials = 20;
  policy.batch = 0;
  EXPECT_THROW(run_trials(pool, policy, Rng(1), 1, fn), InvalidArgument);
  EXPECT_THROW(run_trials(pool, TrialPolicy{}, Rng(1), 0, fn),
               InvalidArgument);
}

TEST(TrialRunner, ConvergesEarlyOnLowVariance) {
  ThreadPool pool(4);
  TrialPolicy policy;
  policy.min_trials = 30;
  policy.max_trials = 1000;
  policy.rel_halfwidth = 0.05;
  const TrialSummary s = run_trials(
      pool, policy, Rng(5), 1,
      [](Rng& rng, std::size_t) -> std::vector<double> {
        return {100.0 + rng.uniform(-1.0, 1.0)};
      });
  EXPECT_TRUE(s.converged);
  EXPECT_LT(s.trials_run, 1000u);
}

}  // namespace
}  // namespace khop
