// Unit tests for the BFS toolkit, including the canonical-parent guarantees
// the rest of the library depends on.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "khop/common/error.hpp"
#include "khop/common/rng.hpp"
#include "khop/geom/placement.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/graph/spatial_grid.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

// 0-1-2-3-4 path plus a 0-5 pendant.
Graph sample_graph() {
  return Graph::from_edges(
      6, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 5}});
}

TEST(Bfs, DistancesOnPath) {
  const auto t = bfs(sample_graph(), 0);
  EXPECT_EQ(t.dist, (std::vector<Hops>{0, 1, 2, 3, 4, 1}));
}

TEST(Bfs, ParentsPointBackward) {
  const auto t = bfs(sample_graph(), 0);
  EXPECT_EQ(t.parent[0], kInvalidNode);
  EXPECT_EQ(t.parent[1], 0u);
  EXPECT_EQ(t.parent[2], 1u);
  EXPECT_EQ(t.parent[4], 3u);
  EXPECT_EQ(t.parent[5], 0u);
}

TEST(Bfs, BoundedStopsAtHorizon) {
  const auto t = bfs_bounded(sample_graph(), 0, 2);
  EXPECT_EQ(t.dist[2], 2u);
  EXPECT_EQ(t.dist[3], kUnreachable);
  EXPECT_EQ(t.dist[4], kUnreachable);
}

TEST(Bfs, UnreachableOnDisconnected) {
  const Graph g = Graph::from_edges(4, EdgeList{{0, 1}, {2, 3}});
  const auto t = bfs(g, 0);
  EXPECT_EQ(t.dist[2], kUnreachable);
  EXPECT_EQ(t.parent[2], kInvalidNode);
}

TEST(Bfs, CanonicalParentIsMinId) {
  // Diamond: 0-{1,2}-3; node 3 is discovered by both 1 and 2 at level 2.
  const Graph g = Graph::from_edges(4, EdgeList{{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const auto t = bfs(g, 0);
  EXPECT_EQ(t.parent[3], 1u);
}

TEST(Bfs, CanonicalParentAcrossInterleavedFrontier) {
  // Two disjoint 2-paths from 0 meet at 5: 0-3-5 and 0-1-5 with extra nodes
  // so the frontier ordering matters. parent(5) must be 1, not 3.
  const Graph g = Graph::from_edges(
      6, EdgeList{{0, 3}, {0, 1}, {3, 5}, {1, 5}, {0, 2}, {2, 4}});
  const auto t = bfs(g, 0);
  EXPECT_EQ(t.dist[5], 2u);
  EXPECT_EQ(t.parent[5], 1u);
}

TEST(Bfs, KHopNeighborhoodExcludesSource) {
  const auto nbrs = k_hop_neighborhood(sample_graph(), 0, 2);
  EXPECT_EQ(nbrs, (std::vector<NodeId>{1, 2, 5}));
}

TEST(Bfs, ExtractPathEndpointsInclusive) {
  const auto t = bfs(sample_graph(), 0);
  const auto path = extract_path(t, 4);
  EXPECT_EQ(path, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST(Bfs, ExtractPathToSourceIsSingleton) {
  const auto t = bfs(sample_graph(), 2);
  EXPECT_EQ(extract_path(t, 2), (std::vector<NodeId>{2}));
}

TEST(Bfs, ExtractPathRejectsUnreachable) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}});
  const auto t = bfs(g, 0);
  EXPECT_THROW(extract_path(t, 2), InvalidArgument);
}

TEST(Bfs, PathIsShortest) {
  // Random unit-disk instance: every extracted path length equals dist.
  Rng rng(21);
  const auto pts = place_uniform(80, Field{100.0}, rng);
  const Graph g = build_unit_disk_graph(pts, 20.0);
  const auto t = bfs(g, 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (t.dist[v] == kUnreachable) continue;
    const auto path = extract_path(t, v);
    EXPECT_EQ(path.size(), t.dist[v] + 1u);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
    }
  }
}

TEST(MultiSourceBfs, NearestSeedWins) {
  const auto r = multi_source_bfs(sample_graph(), {0, 4});
  EXPECT_EQ(r.dist, (std::vector<Hops>{0, 1, 2, 1, 0, 1}));
  EXPECT_EQ(r.owner[1], 0u);
  EXPECT_EQ(r.owner[3], 4u);
}

TEST(MultiSourceBfs, TieBreaksBySmallerSeed) {
  // 0-1-2: node 1 is equidistant from seeds 0 and 2.
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  const auto r = multi_source_bfs(g, {0, 2});
  EXPECT_EQ(r.owner[1], 0u);
}

TEST(AllPairsHops, SymmetricAndZeroDiagonal) {
  const Graph g = sample_graph();
  const auto d = all_pairs_hops(g);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(d[u][u], 0u);
    for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(d[u][v], d[v][u]);
  }
  EXPECT_EQ(d[5][4], 5u);
}

TEST(Bfs, RejectsBadSource) {
  EXPECT_THROW(bfs(sample_graph(), 6), InvalidArgument);
}

}  // namespace
}  // namespace khop
