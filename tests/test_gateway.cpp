// Unit tests for the three gateway algorithms: Mesh, LMSTGA, G-MST.
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "khop/gateway/gmst.hpp"
#include "khop/gateway/lmst.hpp"
#include "khop/gateway/mesh.hpp"
#include "khop/graph/union_find.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

// Three-cluster k=1 topology (see test_neighbor_rules): heads {0,1,2},
// C0 = {0,3,4}; A-NCR pairs (0,1) and (0,2) with paths 0-3-1 and 0-4-2.
struct TriFixture {
  Graph g = Graph::from_edges(5,
                              EdgeList{{1, 3}, {3, 4}, {4, 2}, {0, 3}, {0, 4}});
  Clustering c = khop_clustering(g, 1);
  NeighborSelection sel = select_neighbors(g, c, NeighborRule::kAdjacent);
  VirtualLinkMap links = VirtualLinkMap::build(g, sel.head_pairs);
};

TEST(Mesh, MarksPathInteriors) {
  TriFixture f;
  const MeshResult r = mesh_gateways(f.c, f.sel, f.links);
  EXPECT_EQ(r.gateways, (std::vector<NodeId>{3, 4}));
  EXPECT_EQ(r.kept_links, f.sel.head_pairs);
}

TEST(Mesh, SharedGatewaysCountedOnce) {
  // Path 0..6 with k=1: heads {0,2,4,6}; consecutive head pairs share no
  // interior but pairs (0,2) & (2,4) both use node... actually each pair's
  // interior is distinct; use NC selection where (0,4) would reuse interiors
  // of (0,2) and (2,4).
  const Graph g = Graph::from_edges(
      7, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  const Clustering c = khop_clustering(g, 1);
  ASSERT_EQ(c.heads, (std::vector<NodeId>{0, 2, 4, 6}));
  const auto sel = select_neighbors(g, c, NeighborRule::kAllWithin2k1);
  const auto links = VirtualLinkMap::build(g, sel.head_pairs);
  const MeshResult r = mesh_gateways(c, sel, links);
  // All odd nodes relay; heads on paths (e.g. 2 on 0..4) are not gateways.
  EXPECT_EQ(r.gateways, (std::vector<NodeId>{1, 3, 5}));
}

TEST(Lmst, KeepsTreePerHeadNeighborhood) {
  TriFixture f;
  const LmstResult r = lmst_gateways(f.c, f.sel, f.links);
  EXPECT_EQ(r.kept_links,
            (std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {0, 2}}));
  EXPECT_EQ(r.gateways, (std::vector<NodeId>{3, 4}));
}

TEST(Lmst, PrunesRedundantNcLinks) {
  // NC selection on the tri-cluster graph adds the (1,2) link (3 hops);
  // every head's local MST prefers the two 2-hop links, so (1,2) must be
  // pruned and the gateway count stays at 2.
  TriFixture f;
  const auto nc = select_neighbors(f.g, f.c, NeighborRule::kAllWithin2k1);
  const auto links = VirtualLinkMap::build(f.g, nc.head_pairs);
  const LmstResult r = lmst_gateways(f.c, nc, links);
  EXPECT_EQ(r.kept_links,
            (std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {0, 2}}));
  EXPECT_EQ(r.gateways, (std::vector<NodeId>{3, 4}));
}

TEST(Lmst, NeverKeepsMoreLinksThanMesh) {
  Rng rng(701);
  GeneratorConfig cfg;
  cfg.num_nodes = 120;
  const AdHocNetwork net = generate_network(cfg, rng);
  for (Hops k = 1; k <= 3; ++k) {
    const Clustering c = khop_clustering(net.graph, k);
    const auto sel =
        select_neighbors(net.graph, c, NeighborRule::kAllWithin2k1);
    const auto links = VirtualLinkMap::build(net.graph, sel.head_pairs);
    const LmstResult lm = lmst_gateways(c, sel, links);
    const MeshResult mesh = mesh_gateways(c, sel, links);
    EXPECT_LE(lm.kept_links.size(), mesh.kept_links.size()) << "k=" << k;
    EXPECT_LE(lm.gateways.size(), mesh.gateways.size()) << "k=" << k;
  }
}

TEST(Lmst, KeptLinksSpanAllHeads) {
  Rng rng(702);
  GeneratorConfig cfg;
  cfg.num_nodes = 100;
  const AdHocNetwork net = generate_network(cfg, rng);
  for (Hops k = 1; k <= 3; ++k) {
    const Clustering c = khop_clustering(net.graph, k);
    const auto sel = select_neighbors(net.graph, c, NeighborRule::kAdjacent);
    const auto links = VirtualLinkMap::build(net.graph, sel.head_pairs);
    const LmstResult r = lmst_gateways(c, sel, links);
    // Union-find over kept links must connect every head (Theorem 2).
    std::map<NodeId, std::size_t> idx;
    for (std::size_t i = 0; i < c.heads.size(); ++i) idx[c.heads[i]] = i;
    UnionFind uf(c.heads.size());
    for (const auto& [u, v] : r.kept_links) {
      uf.unite(static_cast<NodeId>(idx.at(u)),
               static_cast<NodeId>(idx.at(v)));
    }
    for (std::size_t i = 1; i < c.heads.size(); ++i) {
      EXPECT_TRUE(uf.connected(0, static_cast<NodeId>(i))) << "k=" << k;
    }
  }
}

TEST(Gmst, ChainOfHeadsUsesAllInteriors) {
  const Graph g = Graph::from_edges(
      7, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  const Clustering c = khop_clustering(g, 1);
  const GmstResult r = gmst_gateways(g, c);
  ASSERT_EQ(r.tree.size(), 3u);  // 4 heads -> 3 tree edges
  EXPECT_EQ(r.gateways, (std::vector<NodeId>{1, 3, 5}));
}

TEST(Gmst, LowerBoundsPipelines) {
  Rng rng(703);
  GeneratorConfig cfg;
  cfg.num_nodes = 140;
  const AdHocNetwork net = generate_network(cfg, rng);
  for (Hops k = 1; k <= 3; ++k) {
    const Clustering c = khop_clustering(net.graph, k);
    const GmstResult gm = gmst_gateways(net.graph, c);

    const auto sel = select_neighbors(net.graph, c, NeighborRule::kAdjacent);
    const auto links = VirtualLinkMap::build(net.graph, sel.head_pairs);
    const MeshResult mesh = mesh_gateways(c, sel, links);
    // G-MST uses heads-1 links, the sparsest spanning structure.
    EXPECT_LE(gm.tree.size(), mesh.kept_links.size()) << "k=" << k;
  }
}

TEST(Gmst, SingleHeadNeedsNoGateways) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  const Clustering c = khop_clustering(g, 2);
  ASSERT_EQ(c.heads.size(), 1u);
  const GmstResult r = gmst_gateways(g, c);
  EXPECT_TRUE(r.tree.empty());
  EXPECT_TRUE(r.gateways.empty());
}

}  // namespace
}  // namespace khop
