// Unit tests for the interchange formats (DOT / layout / network).
#include <gtest/gtest.h>

#include <sstream>

#include "khop/common/error.hpp"
#include "khop/cds/cds.hpp"
#include "khop/io/export.hpp"
#include "khop/io/state.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

struct Fixture {
  AdHocNetwork net;
  Clustering clustering;
  Backbone backbone;

  explicit Fixture(std::uint64_t seed, std::size_t n = 60) {
    GeneratorConfig cfg;
    cfg.num_nodes = n;
    Rng rng(seed);
    net = generate_network(cfg, rng);
    clustering = khop_clustering(net.graph, 2);
    backbone = build_backbone(net.graph, clustering, Pipeline::kAcLmst);
  }
};

TEST(IoDot, ContainsAllNodesAndEdges) {
  const Fixture f(1601);
  std::ostringstream os;
  write_dot(os, f.net, f.clustering, f.backbone);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("graph khop {"), std::string::npos);
  for (NodeId v = 0; v < f.net.num_nodes(); ++v) {
    EXPECT_NE(dot.find("n" + std::to_string(v) + " [pos="),
              std::string::npos)
        << v;
  }
  // Every head renders as a doublecircle; count them.
  std::size_t count = 0;
  for (std::size_t pos = dot.find("doublecircle"); pos != std::string::npos;
       pos = dot.find("doublecircle", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, f.backbone.heads.size());
}

TEST(IoLayout, OneLinePerNode) {
  const Fixture f(1602);
  std::ostringstream os;
  write_layout(os, f.net, f.clustering, f.backbone);
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);  // header comment
  EXPECT_EQ(line.front(), '#');
  std::size_t rows = 0;
  while (std::getline(is, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, f.net.num_nodes());
}

TEST(IoNetwork, RoundTripPreservesTopology) {
  const Fixture f(1603);
  std::ostringstream os;
  write_network(os, f.net);
  std::istringstream is(os.str());
  const AdHocNetwork copy = read_network(is);
  EXPECT_EQ(copy.num_nodes(), f.net.num_nodes());
  EXPECT_DOUBLE_EQ(copy.radius, f.net.radius);
  EXPECT_EQ(copy.graph.edge_list(), f.net.graph.edge_list());
  // And the whole pipeline produces identical results on the copy.
  const Clustering c2 = khop_clustering(copy.graph, 2);
  EXPECT_EQ(c2.heads, f.clustering.heads);
}

TEST(IoState, ClusteringRoundTrip) {
  const Fixture f(1604);
  std::ostringstream os;
  write_clustering(os, f.clustering);
  std::istringstream is(os.str());
  const Clustering copy = read_clustering(is);
  EXPECT_EQ(copy.k, f.clustering.k);
  EXPECT_EQ(copy.heads, f.clustering.heads);
  EXPECT_EQ(copy.head_of, f.clustering.head_of);
  EXPECT_EQ(copy.dist_to_head, f.clustering.dist_to_head);
  EXPECT_EQ(copy.cluster_of, f.clustering.cluster_of);
  EXPECT_EQ(copy.election_rounds, f.clustering.election_rounds);
}

TEST(IoState, BackboneRoundTrip) {
  const Fixture f(1605);
  std::ostringstream os;
  write_backbone(os, f.backbone);
  std::istringstream is(os.str());
  const Backbone copy = read_backbone(is);
  EXPECT_EQ(copy.pipeline, f.backbone.pipeline);
  EXPECT_EQ(copy.heads, f.backbone.heads);
  EXPECT_EQ(copy.gateways, f.backbone.gateways);
  EXPECT_EQ(copy.virtual_links, f.backbone.virtual_links);
  EXPECT_EQ(copy.spec.neighbor_rule, f.backbone.spec.neighbor_rule);
  EXPECT_EQ(copy.spec.gateway, f.backbone.spec.gateway);
}

TEST(IoState, RestoredStateStillValidates) {
  const Fixture f(1606);
  std::ostringstream cs, bs;
  write_clustering(cs, f.clustering);
  write_backbone(bs, f.backbone);
  std::istringstream cis(cs.str()), bis(bs.str());
  const Clustering c = read_clustering(cis);
  const Backbone b = read_backbone(bis);
  EXPECT_TRUE(validate_k_cds(f.net.graph, c, b).empty());
}

TEST(IoState, RejectsMalformedState) {
  std::istringstream wrong_tag("not-a-clustering v1");
  EXPECT_THROW(read_clustering(wrong_tag), InvalidArgument);
  std::istringstream bad_k("khop-clustering v1\nk 0\n");
  EXPECT_THROW(read_clustering(bad_k), InvalidArgument);
  std::istringstream truncated(
      "khop-clustering v1\nk 2\nrounds 1\nnodes 3\nheads 1 0\n0 0\n");
  EXPECT_THROW(read_clustering(truncated), InvalidArgument);
  std::istringstream nonhead(
      "khop-clustering v1\nk 2\nrounds 1\nnodes 2\nheads 1 0\n0 0\n1 5\n");
  EXPECT_THROW(read_clustering(nonhead), InvalidArgument);
  std::istringstream bad_backbone("khop-backbone v1\npipeline 9\n");
  EXPECT_THROW(read_backbone(bad_backbone), InvalidArgument);
}

// Exercises a parse error and checks the message carries the document name
// and the 1-based line number of the offending token.
TEST(IoState, ErrorsReportLineNumbers) {
  std::istringstream nonhead(
      "khop-clustering v1\nk 2\nrounds 1\nnodes 2\nheads 1 0\n0 0\n1 5\n");
  try {
    read_clustering(nonhead);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("clustering: line 7"), std::string::npos) << what;
  }
}

TEST(IoState, RejectsTrailingGarbage) {
  const Fixture f(1607);
  std::ostringstream os;
  write_clustering(os, f.clustering);
  std::istringstream with_tail(os.str() + "extra\n");
  EXPECT_THROW(read_clustering(with_tail), InvalidArgument);

  std::ostringstream bs;
  write_backbone(bs, f.backbone);
  std::istringstream btail(bs.str() + "0\n");
  EXPECT_THROW(read_backbone(btail), InvalidArgument);
}

TEST(IoState, RejectsDuplicateHeads) {
  // heads list "0 0" repeats an id; v1 accepted this before hardening.
  std::istringstream dup(
      "khop-clustering v1\nk 2\nrounds 1\nnodes 3\nheads 2 0 0\n"
      "0 0\n0 1\n0 1\n");
  EXPECT_THROW(read_clustering(dup), InvalidArgument);
}

TEST(IoState, RejectsOutOfRangeIdsAndDistances) {
  // head id 7 with only 3 nodes
  std::istringstream big_head(
      "khop-clustering v1\nk 2\nrounds 1\nnodes 3\nheads 1 7\n");
  EXPECT_THROW(read_clustering(big_head), InvalidArgument);
  // member distance 9 with k = 2
  std::istringstream far(
      "khop-clustering v1\nk 2\nrounds 1\nnodes 2\nheads 1 0\n0 0\n0 9\n");
  EXPECT_THROW(read_clustering(far), InvalidArgument);
  // a head whose own distance is nonzero
  std::istringstream head_dist(
      "khop-clustering v1\nk 2\nrounds 1\nnodes 2\nheads 1 0\n0 1\n0 1\n");
  EXPECT_THROW(read_clustering(head_dist), InvalidArgument);
}

TEST(IoState, V2ChecksumDetectsCorruption) {
  const Fixture f(1608);
  std::ostringstream os;
  write_clustering(os, f.clustering);
  std::string text = os.str();
  ASSERT_NE(text.find("khop-clustering v2"), std::string::npos);
  ASSERT_NE(text.find("crc32c "), std::string::npos);

  // Pristine v2 loads; any body byte flip fails the checksum.
  std::istringstream ok(text);
  EXPECT_NO_THROW(read_clustering(ok));
  const std::size_t body_pos = text.find("\nk ") + 1;
  text[body_pos + 2] ^= 0x01;  // mutate the k value in place
  std::istringstream bad(text);
  try {
    read_clustering(bad);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST(IoState, V1StillReadable) {
  // A v2 writer output converted to v1 by stripping the trailer: the same
  // body must parse under the legacy header.
  const Fixture f(1609);
  std::ostringstream os;
  write_clustering(os, f.clustering);
  std::string text = os.str();
  const std::size_t trailer = text.rfind("crc32c ");
  ASSERT_NE(trailer, std::string::npos);
  text.erase(trailer);
  const std::size_t v2 = text.find("v2");
  ASSERT_NE(v2, std::string::npos);
  text.replace(v2, 2, "v1");
  std::istringstream is(text);
  const Clustering copy = read_clustering(is);
  EXPECT_EQ(copy.heads, f.clustering.heads);
  EXPECT_EQ(copy.head_of, f.clustering.head_of);
}

TEST(IoNetwork, RejectsMalformedInput) {
  std::istringstream empty("");
  EXPECT_THROW(read_network(empty), InvalidArgument);
  std::istringstream bad_header("abc def ghi");
  EXPECT_THROW(read_network(bad_header), InvalidArgument);
  std::istringstream truncated("5 10.0 100.0\n1.0 2.0\n");
  EXPECT_THROW(read_network(truncated), InvalidArgument);
  std::istringstream zero_radius("2 0.0 100.0\n1 1\n2 2\n");
  EXPECT_THROW(read_network(zero_radius), InvalidArgument);
}

}  // namespace
}  // namespace khop
