// Edge-case tests for the distributed protocols: tiny graphs, extreme k,
// priority encoding, and degenerate topologies.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "khop/common/error.hpp"
#include "khop/sim/protocols/ancr_protocol.hpp"
#include "khop/sim/protocols/clustering_protocol.hpp"
#include "khop/sim/protocols/gateway_protocol.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

Graph path_graph(std::size_t n) {
  EdgeList edges;
  for (NodeId i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::from_edges(n, edges);
}

TEST(EncodePriority, PreservesOrdering) {
  const std::vector<double> values{-1e300, -42.5, -1.0, -1e-10, 0.0,
                                   1e-10,  1.0,   42.5, 1e300};
  for (std::size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LT(encode_priority(values[i]), encode_priority(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(EncodePriority, EqualInputsEqualOutputs) {
  EXPECT_EQ(encode_priority(3.25), encode_priority(3.25));
  EXPECT_EQ(encode_priority(-7.5), encode_priority(-7.5));
  EXPECT_EQ(encode_priority(0.0), encode_priority(0.0));
}

TEST(ProtocolEdge, TwoNodeNetwork) {
  const Graph g = path_graph(2);
  const auto prio = make_priorities(g, PriorityRule::kLowestId);
  const Clustering c = run_distributed_clustering(
      g, 1, prio, AffiliationRule::kIdBased);
  EXPECT_EQ(c.heads, (std::vector<NodeId>{0}));
  EXPECT_EQ(c.head_of, (std::vector<NodeId>{0, 0}));
}

TEST(ProtocolEdge, PathGraphMatchesHandComputation) {
  // Same topology the centralized unit test pins down: heads {0,3,6,9}.
  const Graph g = path_graph(10);
  const auto prio = make_priorities(g, PriorityRule::kLowestId);
  const Clustering c = run_distributed_clustering(
      g, 2, prio, AffiliationRule::kIdBased);
  EXPECT_EQ(c.heads, (std::vector<NodeId>{0, 3, 6, 9}));
  EXPECT_EQ(c.head_of,
            (std::vector<NodeId>{0, 0, 0, 3, 3, 3, 6, 6, 6, 9}));
}

TEST(ProtocolEdge, KLargerThanDiameter) {
  // One head claims everything; no gateways anywhere.
  const Graph g = path_graph(5);
  const auto prio = make_priorities(g, PriorityRule::kLowestId);
  const Clustering c = run_distributed_clustering(
      g, 8, prio, AffiliationRule::kIdBased);
  EXPECT_EQ(c.heads, (std::vector<NodeId>{0}));

  const Backbone b = run_distributed_aclmst(g, c);
  EXPECT_TRUE(b.gateways.empty());
  EXPECT_TRUE(b.virtual_links.empty());
}

TEST(ProtocolEdge, StarGraphSingleRound) {
  // Star center 0: k=1 -> node 0 is the only head, one election round.
  EdgeList edges;
  for (NodeId leaf = 1; leaf <= 6; ++leaf) edges.emplace_back(0, leaf);
  const Graph g = Graph::from_edges(7, edges);
  const auto prio = make_priorities(g, PriorityRule::kLowestId);
  const Clustering c = run_distributed_clustering(
      g, 1, prio, AffiliationRule::kIdBased);
  EXPECT_EQ(c.heads, (std::vector<NodeId>{0}));
  for (NodeId v = 1; v < 7; ++v) {
    EXPECT_EQ(c.head_of[v], 0u);
    EXPECT_EQ(c.dist_to_head[v], 1u);
  }
}

TEST(ProtocolEdge, ReverseIdPriorityElectsHighIds) {
  // Negate the id as key: the *largest* id in each neighborhood wins.
  const Graph g = path_graph(6);
  std::vector<PriorityKey> prio(6);
  for (NodeId v = 0; v < 6; ++v) {
    prio[v] = {.key = -static_cast<double>(v), .id = v};
  }
  const Clustering dist = run_distributed_clustering(
      g, 2, prio, AffiliationRule::kIdBased);
  const Clustering central = khop_clustering(g, 2, prio);
  EXPECT_EQ(dist.heads, central.heads);
  EXPECT_EQ(dist.heads.back(), 5u);  // the top id must be a head
}

TEST(ProtocolEdge, AncrOnTwoClusterPath) {
  // Path 0..5 with k=1: heads {0,2,4}; A-NCR pairs (0,2),(2,4).
  const Graph g = path_graph(6);
  const Clustering c = khop_clustering(g, 1);
  const NeighborSelection sel = run_distributed_ancr(g, c);
  EXPECT_EQ(sel.head_pairs,
            (std::vector<std::pair<NodeId, NodeId>>{{0, 2}, {2, 4}}));
}

TEST(ProtocolEdge, AcLmstOnPathMarksOddNodes) {
  const Graph g = path_graph(7);
  const Clustering c = khop_clustering(g, 1);  // heads {0,2,4,6}
  const Backbone b = run_distributed_aclmst(g, c);
  EXPECT_EQ(b.gateways, (std::vector<NodeId>{1, 3, 5}));
}

TEST(ProtocolEdge, DenseCliqueOneHead) {
  // Complete graph: node 0 dominates everything at k=1 in one round.
  EdgeList edges;
  const std::size_t n = 8;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  const Graph g = Graph::from_edges(n, edges);
  const auto prio = make_priorities(g, PriorityRule::kLowestId);
  const Clustering c = run_distributed_clustering(
      g, 1, prio, AffiliationRule::kIdBased);
  EXPECT_EQ(c.heads, (std::vector<NodeId>{0}));
}

}  // namespace
}  // namespace khop
