// Parameterized property tests: the paper's invariants checked across a
// sweep of (N, D, k, pipeline, seed) configurations.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "khop/cds/broadcast.hpp"
#include "khop/cds/cds.hpp"
#include "khop/cluster/validate.hpp"
#include "khop/gateway/validate.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/nbr/cluster_graph.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

// ---------------------------------------------------------------------------
// Invariants of the full pipeline across the paper's parameter space.
// ---------------------------------------------------------------------------

using FullParam = std::tuple<std::size_t /*n*/, double /*degree*/,
                             Hops /*k*/, Pipeline, std::uint64_t /*seed*/>;

class FullPipelineProperty : public ::testing::TestWithParam<FullParam> {};

TEST_P(FullPipelineProperty, AllPaperInvariantsHold) {
  const auto [n, degree, k, pipeline, seed] = GetParam();
  GeneratorConfig cfg;
  cfg.num_nodes = n;
  cfg.target_degree = degree;
  Rng rng(seed);
  const AdHocNetwork net = generate_network(cfg, rng);

  const Clustering c = khop_clustering(net.graph, k);

  // Phase-1 invariants: k-hop IS + k-hop DS + total non-overlap.
  EXPECT_EQ(validate_clustering(net.graph, c), "");

  // Theorem 1: the adjacent cluster graph is connected.
  EXPECT_TRUE(theorem1_holds(net.graph, c));

  // Phase-2 invariants (Theorem 2): connected CDS, k-dominating.
  const Backbone b = build_backbone(net.graph, c, pipeline);
  EXPECT_EQ(validate_k_cds(net.graph, c, b), "");

  // Every virtual link respects the A-NCR distance bound.
  const auto d = all_pairs_hops(net.graph);
  for (const auto& [u, v] : b.virtual_links) {
    EXPECT_LE(d[u][v], 2 * k + 1);
  }

  // The broadcast application delivers everywhere over this backbone.
  const BroadcastResult flood = cds_flood(net.graph, c, b, 0);
  EXPECT_TRUE(flood.complete);
}

std::string full_param_name(
    const ::testing::TestParamInfo<FullParam>& info) {
  const auto [n, degree, k, pipeline, seed] = info.param;
  std::string name = "N" + std::to_string(n) + "_D" +
                     std::to_string(static_cast<int>(degree)) + "_k" +
                     std::to_string(k) + "_" +
                     std::string(pipeline_name(pipeline)) + "_s" +
                     std::to_string(seed);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperParameterSpace, FullPipelineProperty,
    ::testing::Combine(::testing::Values(50, 125, 200),
                       ::testing::Values(6.0, 10.0),
                       ::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(Pipeline::kNcMesh, Pipeline::kAcLmst,
                                         Pipeline::kGmst),
                       ::testing::Values(7u)),
    full_param_name);

// ---------------------------------------------------------------------------
// Affiliation-rule invariants: any rule yields a valid non-overlapping
// clustering with identical head sets (the rule only reassigns members).
// ---------------------------------------------------------------------------

using AffParam = std::tuple<AffiliationRule, Hops, std::uint64_t>;

class AffiliationProperty : public ::testing::TestWithParam<AffParam> {};

TEST_P(AffiliationProperty, RuleOnlyAffectsMembership) {
  const auto [rule, k, seed] = GetParam();
  GeneratorConfig cfg;
  cfg.num_nodes = 100;
  Rng rng(seed);
  const AdHocNetwork net = generate_network(cfg, rng);

  const Clustering by_rule = khop_clustering(net.graph, k, rule);
  const Clustering by_id =
      khop_clustering(net.graph, k, AffiliationRule::kIdBased);

  EXPECT_EQ(by_rule.heads, by_id.heads);  // election is rule-independent
  EXPECT_EQ(validate_clustering(net.graph, by_rule), "");
}

std::string aff_param_name(const ::testing::TestParamInfo<AffParam>& pinfo) {
  const auto [rule, k, seed] = pinfo.param;
  const char* rn = rule == AffiliationRule::kIdBased         ? "Id"
                   : rule == AffiliationRule::kDistanceBased ? "Dist"
                                                             : "Size";
  return std::string(rn) + "_k" + std::to_string(k) + "_s" +
         std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Rules, AffiliationProperty,
    ::testing::Combine(::testing::Values(AffiliationRule::kIdBased,
                                         AffiliationRule::kDistanceBased,
                                         AffiliationRule::kSizeBased),
                       ::testing::Values(1u, 2u, 3u),
                       ::testing::Values(11u, 12u)),
    aff_param_name);

// ---------------------------------------------------------------------------
// Distance-based affiliation puts every member with a nearest head.
// ---------------------------------------------------------------------------

class DistanceAffiliationProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistanceAffiliationProperty, MembersJoinNearestDeclaringHead) {
  GeneratorConfig cfg;
  cfg.num_nodes = 90;
  Rng rng(GetParam());
  const AdHocNetwork net = generate_network(cfg, rng);
  const Hops k = 2;
  const Clustering c =
      khop_clustering(net.graph, k, AffiliationRule::kDistanceBased);

  // A member may not sit farther from its head than from some other head
  // that declared in the same round... same-round information is internal,
  // but a weaker universal property holds: dist(v, head(v)) <= k and the
  // recorded distance equals the true BFS distance.
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    const BfsTree t = bfs(net.graph, c.head_of[v]);
    EXPECT_EQ(t.dist[v], c.dist_to_head[v]);
    EXPECT_LE(c.dist_to_head[v], k);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceAffiliationProperty,
                         ::testing::Values(21u, 22u, 23u, 24u));

// ---------------------------------------------------------------------------
// Subset relation: AC link set ⊆ NC link set; LMST kept ⊆ selection.
// ---------------------------------------------------------------------------

using SubsetParam = std::tuple<Hops, std::uint64_t>;

class SelectionSubsetProperty : public ::testing::TestWithParam<SubsetParam> {
};

TEST_P(SelectionSubsetProperty, KeptLinksSubsetOfSelection) {
  const auto [k, seed] = GetParam();
  GeneratorConfig cfg;
  cfg.num_nodes = 130;
  Rng rng(seed);
  const AdHocNetwork net = generate_network(cfg, rng);
  const Clustering c = khop_clustering(net.graph, k);

  for (const Pipeline p : {Pipeline::kNcLmst, Pipeline::kAcLmst}) {
    const Backbone b = build_backbone(net.graph, c, p);
    const NeighborRule rule = p == Pipeline::kAcLmst
                                  ? NeighborRule::kAdjacent
                                  : NeighborRule::kAllWithin2k1;
    const auto sel = select_neighbors(net.graph, c, rule);
    for (const auto& link : b.virtual_links) {
      EXPECT_TRUE(std::binary_search(sel.head_pairs.begin(),
                                     sel.head_pairs.end(), link))
          << pipeline_name(p);
    }
  }
}

std::string subset_param_name(
    const ::testing::TestParamInfo<SubsetParam>& pinfo) {
  return "k" + std::to_string(std::get<0>(pinfo.param)) + "_s" +
         std::to_string(std::get<1>(pinfo.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SelectionSubsetProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(31u, 32u)),
    subset_param_name);

}  // namespace
}  // namespace khop
