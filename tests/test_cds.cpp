// Unit tests for the k-hop CDS layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "khop/cds/cds.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

TEST(Cds, ExtractMergesHeadsAndGateways) {
  const Graph g = Graph::from_edges(
      7, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  const Clustering c = khop_clustering(g, 1);
  const Backbone b = build_backbone(g, c, Pipeline::kAcLmst);
  const Cds cds = extract_cds(c, b);
  EXPECT_EQ(cds.k, 1u);
  EXPECT_EQ(cds.num_heads, 4u);
  EXPECT_EQ(cds.num_gateways, 3u);
  EXPECT_EQ(cds.nodes, (std::vector<NodeId>{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(cds.size(), 7u);
}

TEST(Cds, ValidatorAcceptsAllPipelines) {
  Rng rng(901);
  GeneratorConfig cfg;
  cfg.num_nodes = 110;
  const AdHocNetwork net = generate_network(cfg, rng);
  for (Hops k = 1; k <= 3; ++k) {
    const Clustering c = khop_clustering(net.graph, k);
    for (const Pipeline p : kAllPipelines) {
      const Backbone b = build_backbone(net.graph, c, p);
      const std::string err = validate_k_cds(net.graph, c, b);
      EXPECT_TRUE(err.empty())
          << pipeline_name(p) << " k=" << k << ": " << err;
    }
  }
}

TEST(Cds, ValidatorRejectsUndominatedNode) {
  // Path graph with heads {0,2,4,6}; remove head 6 from the head list to
  // leave node 6 more than k hops from the remaining heads... at k=1 node 6
  // is 2 hops from head 4.
  const Graph g = Graph::from_edges(
      7, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  const Clustering c = khop_clustering(g, 1);
  Backbone b = build_backbone(g, c, Pipeline::kNcMesh);
  // NC-Mesh marks 1,3,5 as gateways: dropping head 6 keeps connectivity of
  // the remaining CDS {0..5} but breaks domination of node 6.
  b.heads.erase(std::remove(b.heads.begin(), b.heads.end(), NodeId{6}),
                b.heads.end());
  b.virtual_links.clear();  // links referencing 6 are no longer valid
  const std::string err = validate_k_cds(g, c, b);
  EXPECT_NE(err.find("not k-hop dominated"), std::string::npos) << err;
}

TEST(Cds, CdsShrinksWithDensity) {
  // Denser networks need fewer backbone nodes (paper Fig 5 vs Fig 6).
  Rng rng(902);
  double sparse_total = 0.0, dense_total = 0.0;
  for (int rep = 0; rep < 6; ++rep) {
    GeneratorConfig cfg;
    cfg.num_nodes = 150;
    cfg.target_degree = 6.0;
    AdHocNetwork net = generate_network(cfg, rng);
    Clustering c = khop_clustering(net.graph, 2);
    sparse_total += static_cast<double>(
        build_backbone(net.graph, c, Pipeline::kAcLmst).cds_size());

    cfg.target_degree = 10.0;
    net = generate_network(cfg, rng);
    c = khop_clustering(net.graph, 2);
    dense_total += static_cast<double>(
        build_backbone(net.graph, c, Pipeline::kAcLmst).cds_size());
  }
  EXPECT_LT(dense_total, sparse_total);
}

}  // namespace
}  // namespace khop
