// Larger-n engine equivalence (slow ctest label): the receiver-batched
// SyncEngine and its ThreadPool executor against the preserved pre-PR5
// engine at n ~ 1500, ideal and lossy, thread counts {1, 2, hardware}.
// Companion to tests/test_engine_equivalence.cpp at CI-fast sizes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "khop/net/generator.hpp"
#include "khop/radio/delivery.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/sim/engine.hpp"
#include "khop/sim/protocols/neighborhood.hpp"
#include "khop/sim/reference.hpp"

namespace khop {
namespace {

Graph random_topology(std::size_t n, double degree, std::uint64_t seed) {
  GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = degree;
  Rng rng(seed);
  return generate_network(gen, rng).graph;
}

bool same_stats(const SimStats& a, const SimStats& b) {
  return a.rounds == b.rounds && a.transmissions == b.transmissions &&
         a.receptions == b.receptions && a.payload_words == b.payload_words &&
         a.drops == b.drops && a.retransmissions == b.retransmissions;
}

/// Variant-independent digest of one node's discovery result.
double known_digest(const NeighborhoodDiscoveryAgent& agent) {
  double sum = 0.0;
  agent.known().for_each([&](NodeId origin, const KnownRecord& rec) {
    sum += origin + 31.0 * rec.dist + 7.0 * rec.parent;
  });
  return sum;
}

TEST(EngineEquivalenceSlow, DiscoveryFloodMatchesReferenceAtScale) {
  const Graph g = random_topology(1500, 7.0, 7001);
  const Hops k = 2;

  reference::SyncEngine ref_engine(g, [&](NodeId) {
    return std::make_unique<reference::NeighborhoodDiscoveryAgent>(k);
  });
  ASSERT_TRUE(ref_engine.run(2 * k + 2));

  // Reference per-node digests, computed once.
  std::vector<double> want(g.num_nodes(), 0.0);
  std::vector<std::size_t> want_size(g.num_nodes(), 0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& a = dynamic_cast<const reference::NeighborhoodDiscoveryAgent&>(
        ref_engine.agent(v));
    want_size[v] = a.known().size();
    for (const auto& [origin, rec] : a.known()) {
      want[v] += origin + 31.0 * rec.dist + 7.0 * rec.parent;
    }
  }

  const auto check = [&](SyncEngine& engine, const char* label) {
    EXPECT_TRUE(same_stats(engine.stats(), ref_engine.stats())) << label;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& a =
          dynamic_cast<const NeighborhoodDiscoveryAgent&>(engine.agent(v));
      ASSERT_EQ(a.known().size(), want_size[v]) << label << " node " << v;
      ASSERT_EQ(known_digest(a), want[v]) << label << " node " << v;
    }
  };

  const auto factory = [&](NodeId) {
    return std::make_unique<NeighborhoodDiscoveryAgent>(k);
  };

  SyncEngine serial(g, factory);
  ASSERT_TRUE(serial.run(2 * k + 2));
  check(serial, "serial");

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
    ThreadPool pool(threads);
    SyncEngine parallel(g, factory);
    ASSERT_TRUE(parallel.run(2 * k + 2, pool));
    check(parallel, threads == 0 ? "hardware" : (threads == 1 ? "1t" : "2t"));
  }
}

TEST(EngineEquivalenceSlow, LossyFloodMatchesReferenceAtScale) {
  const Graph g = random_topology(1200, 6.0, 7002);
  const Hops k = 2;

  const auto run_ref = [&] {
    UniformLossDelivery model(0.25, 5150);
    DeliveryOptions opts;
    opts.model = &model;
    opts.retry_budget = 1;
    reference::SyncEngine engine(
        g,
        [&](NodeId) {
          return std::make_unique<reference::NeighborhoodDiscoveryAgent>(k);
        },
        opts);
    engine.run(2 * k + 2);
    double digest = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& a =
          dynamic_cast<const reference::NeighborhoodDiscoveryAgent&>(
              engine.agent(v));
      for (const auto& [origin, rec] : a.known()) {
        digest += origin + 31.0 * rec.dist + 7.0 * rec.parent;
      }
    }
    return std::pair(engine.stats(), digest);
  };
  const auto [want_stats, want_digest] = run_ref();
  ASSERT_GT(want_stats.drops, 0u);

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
    UniformLossDelivery model(0.25, 5150);
    DeliveryOptions opts;
    opts.model = &model;
    opts.retry_budget = 1;
    SyncEngine engine(
        g,
        [&](NodeId) { return std::make_unique<NeighborhoodDiscoveryAgent>(k); },
        opts);
    ThreadPool pool(threads);
    engine.run(2 * k + 2, pool);
    EXPECT_TRUE(same_stats(engine.stats(), want_stats))
        << "threads " << threads;
    double digest = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      digest += known_digest(
          dynamic_cast<const NeighborhoodDiscoveryAgent&>(engine.agent(v)));
    }
    EXPECT_EQ(digest, want_digest) << "threads " << threads;
  }
}

}  // namespace
}  // namespace khop
