// Larger-n sharded-engine equivalence (slow ctest label): ShardedEngine
// against the single-shard SyncEngine at n ~ 1500 across the whole protocol
// stack - k-hop discovery (ideal and lossy), distributed clustering, and
// the AC-LMST gateway election - for shard counts {2, 3, 8}. Companion to
// the ShardedEquivalence cases in tests/test_engine_equivalence.cpp at
// CI-fast sizes.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "khop/cluster/priority.hpp"
#include "khop/net/generator.hpp"
#include "khop/radio/delivery.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/sim/engine.hpp"
#include "khop/sim/protocols/clustering_protocol.hpp"
#include "khop/sim/protocols/gateway_protocol.hpp"
#include "khop/sim/protocols/neighborhood.hpp"
#include "khop/sim/sharded_engine.hpp"

namespace khop {
namespace {

constexpr std::size_t kShardCounts[] = {2, 3, 8};

Graph random_topology(std::size_t n, double degree, std::uint64_t seed) {
  GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = degree;
  Rng rng(seed);
  return generate_network(gen, rng).graph;
}

bool same_stats(const SimStats& a, const SimStats& b) {
  return a.rounds == b.rounds && a.transmissions == b.transmissions &&
         a.receptions == b.receptions && a.payload_words == b.payload_words &&
         a.drops == b.drops && a.retransmissions == b.retransmissions;
}

/// Variant-independent digest of one node's discovery result.
double known_digest(const NeighborhoodDiscoveryAgent& agent) {
  double sum = 0.0;
  agent.known().for_each([&](NodeId origin, const KnownRecord& rec) {
    sum += origin + 31.0 * rec.dist + 7.0 * rec.parent;
  });
  return sum;
}

TEST(ShardedEngineSlow, DiscoveryFloodMatchesSingleEngineAtScale) {
  const Graph g = random_topology(1500, 7.0, 8001);
  const Hops k = 2;
  const auto factory = [&](NodeId) {
    return std::make_unique<NeighborhoodDiscoveryAgent>(k);
  };

  SyncEngine single(g, factory);
  ASSERT_TRUE(single.run(2 * k + 2));
  std::vector<double> want(g.num_nodes(), 0.0);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    want[v] = known_digest(
        dynamic_cast<const NeighborhoodDiscoveryAgent&>(single.agent(v)));
  }

  for (const std::size_t shards : kShardCounts) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{0}}) {
      ThreadPool pool(threads);
      ShardedEngine engine(g, factory, shards);
      ASSERT_TRUE(engine.run(2 * k + 2, pool));
      EXPECT_TRUE(same_stats(engine.stats(), single.stats()))
          << "shards " << shards << " threads " << threads;
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        ASSERT_EQ(known_digest(dynamic_cast<const NeighborhoodDiscoveryAgent&>(
                      engine.agent(v))),
                  want[v])
            << "shards " << shards << " threads " << threads << " node " << v;
      }
    }
  }
}

TEST(ShardedEngineSlow, LossyDiscoveryMatchesSingleEngineAtScale) {
  const Graph g = random_topology(1500, 6.0, 8002);
  const Hops k = 2;
  const auto factory = [&](NodeId) {
    return std::make_unique<NeighborhoodDiscoveryAgent>(k);
  };

  const auto run_single = [&] {
    UniformLossDelivery model(0.25, 6160);
    DeliveryOptions opts;
    opts.model = &model;
    opts.retry_budget = 1;
    SyncEngine engine(g, factory, opts);
    engine.run(2 * k + 2);
    double digest = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      digest += known_digest(
          dynamic_cast<const NeighborhoodDiscoveryAgent&>(engine.agent(v)));
    }
    return std::pair(engine.stats(), digest);
  };
  const auto [want_stats, want_digest] = run_single();
  ASSERT_GT(want_stats.drops, 0u);

  for (const std::size_t shards : kShardCounts) {
    UniformLossDelivery model(0.25, 6160);
    DeliveryOptions opts;
    opts.model = &model;
    opts.retry_budget = 1;
    ShardedEngine engine(g, factory, shards, opts);
    ThreadPool pool(0);
    engine.run(2 * k + 2, pool);
    EXPECT_TRUE(same_stats(engine.stats(), want_stats)) << "shards " << shards;
    double digest = 0.0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      digest += known_digest(
          dynamic_cast<const NeighborhoodDiscoveryAgent&>(engine.agent(v)));
    }
    EXPECT_EQ(digest, want_digest) << "shards " << shards;
  }
}

TEST(ShardedEngineSlow, ClusteringAndGatewayElectionMatchSingleEngine) {
  const Graph g = random_topology(1500, 7.0, 8003);
  const Hops k = 2;
  const auto prio = make_priorities(g, PriorityRule::kLowestId);
  const std::size_t cluster_rounds =
      3 * static_cast<std::size_t>(k) * (g.num_nodes() + 2) + 16;

  const auto cluster_factory = [&](NodeId v) {
    return std::make_unique<DistributedClusteringAgent>(
        k, prio[v], AffiliationRule::kDistanceBased);
  };

  // Single-engine baseline: clustering, then the gateway election seeded
  // from its result.
  SyncEngine single(g, cluster_factory);
  ASSERT_TRUE(single.run(cluster_rounds));
  std::vector<NodeId> want_head(g.num_nodes());
  std::vector<Hops> want_dist(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& a =
        dynamic_cast<const DistributedClusteringAgent&>(single.agent(v));
    want_head[v] = a.head();
    want_dist[v] = a.dist_to_head();
  }

  const auto gateway_factory = [&](NodeId v) {
    return std::make_unique<LmstGatewayAgent>(k, want_head[v], want_dist[v]);
  };
  const std::size_t gateway_rounds = 16 * static_cast<std::size_t>(k) + 32;
  SyncEngine single_gw(g, gateway_factory);
  ASSERT_TRUE(single_gw.run(gateway_rounds));
  std::vector<bool> want_gateway(g.num_nodes());
  std::set<std::pair<NodeId, NodeId>> want_links;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& a = dynamic_cast<const LmstGatewayAgent&>(single_gw.agent(v));
    want_gateway[v] = a.marked_gateway();
    want_links.insert(a.kept_links().begin(), a.kept_links().end());
  }

  for (const std::size_t shards : kShardCounts) {
    ThreadPool pool(0);

    ShardedEngine cluster(g, cluster_factory, shards);
    ASSERT_TRUE(cluster.run(cluster_rounds, pool));
    EXPECT_TRUE(same_stats(cluster.stats(), single.stats()))
        << "shards " << shards;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& a =
          dynamic_cast<const DistributedClusteringAgent&>(cluster.agent(v));
      ASSERT_EQ(a.head(), want_head[v]) << "shards " << shards << " node " << v;
      ASSERT_EQ(a.dist_to_head(), want_dist[v])
          << "shards " << shards << " node " << v;
    }

    ShardedEngine gw(g, gateway_factory, shards);
    ASSERT_TRUE(gw.run(gateway_rounds, pool));
    EXPECT_TRUE(same_stats(gw.stats(), single_gw.stats()))
        << "shards " << shards;
    std::set<std::pair<NodeId, NodeId>> links;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& a = dynamic_cast<const LmstGatewayAgent&>(gw.agent(v));
      ASSERT_EQ(a.marked_gateway(), want_gateway[v])
          << "shards " << shards << " node " << v;
      links.insert(a.kept_links().begin(), a.kept_links().end());
    }
    EXPECT_EQ(links, want_links) << "shards " << shards;
  }
}

}  // namespace
}  // namespace khop
