// Larger-topology equivalence checks and bench-harness end-to-end smoke.
// These carry the `slow` ctest label: CI's main job excludes them (-LE slow)
// and the bench job runs them; locally a plain `ctest` still includes them
// (they are sized to stay in the seconds range).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "khop/common/error.hpp"

#include "harness/harness.hpp"
#include "khop/cluster/reference.hpp"
#include "khop/net/generator.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {
namespace {

Graph random_topology(std::size_t n, double degree, std::uint64_t seed) {
  GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = degree;
  Rng rng(seed);
  return generate_network(gen, rng).graph;
}

TEST(WorkspaceEquivalenceSlow, ClusteringMatchesReferenceAtScale) {
  Workspace ws;
  const Graph g = random_topology(1000, 7.0, 97);
  const auto prios = make_priorities(g, PriorityRule::kLowestId);
  for (Hops k = 2; k <= 3; ++k) {
    const Clustering got =
        khop_clustering(g, k, prios, AffiliationRule::kDistanceBased, ws);
    const Clustering want =
        reference::khop_clustering(g, k, prios, AffiliationRule::kDistanceBased);
    EXPECT_EQ(got.heads, want.heads);
    EXPECT_EQ(got.head_of, want.head_of);
    EXPECT_EQ(got.dist_to_head, want.dist_to_head);
    EXPECT_EQ(got.election_rounds, want.election_rounds);
  }
}

TEST(BenchHarnessSlow, TimesKernelsAndEmitsSchemaV2Json) {
  bench::Harness h("test", {2, 0.0});
  const Graph g = random_topology(200, 6.0, 7);
  Workspace ws;
  h.time_kernel("clustering", "legacy", g.num_nodes(), 2, [&] {
    return static_cast<double>(reference::khop_clustering(
                                   g, 2,
                                   make_priorities(g, PriorityRule::kLowestId),
                                   AffiliationRule::kIdBased)
                                   .heads.size());
  });
  h.time_kernel("clustering", "workspace", g.num_nodes(), 2, [&] {
    return static_cast<double>(
        khop_clustering(g, 2, make_priorities(g, PriorityRule::kLowestId),
                        AffiliationRule::kIdBased, ws)
            .heads.size());
  });

  EXPECT_TRUE(h.checksum_mismatches().empty());
  EXPECT_GT(h.speedup("clustering", g.num_nodes()), 0.0);

  const std::string json = h.to_json();
  EXPECT_NE(json.find("\"schema\": \"khop.bench\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"allocs_per_rep\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_rss_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"kernels\""), std::string::npos);
  EXPECT_NE(json.find("\"speedups\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_ns_mean\""), std::string::npos);

  const std::string path = "harness_smoke_test.json";
  h.write_json(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream read_back;
  read_back << in.rdbuf();
  EXPECT_EQ(read_back.str(), json);
  in.close();
  std::remove(path.c_str());
}

TEST(BenchHarnessSlow, RejectsNondeterministicKernels) {
  bench::Harness h("test", {2, 0.0});
  double counter = 0.0;
  EXPECT_THROW(h.time_kernel("bogus", "legacy", 1, 1,
                             [&] { return ++counter; }),
               InvariantViolation);
}

}  // namespace
}  // namespace khop
