// Downsampled million-node acceptance check: at a few thousand nodes the
// Hilbert-relabeled pipeline must stay bit-exact against the preserved
// reference implementations (the oracle contract of the relabeled runs),
// serial and parallel at thread counts {1, 2, hardware}, and its
// inverse-mapped backbone must validate as a k-hop CDS of the original
// graph. Carries the `slow` ctest label.
#include <gtest/gtest.h>

#include <vector>

#include "khop/cds/cds.hpp"
#include "khop/cluster/reference.hpp"
#include "khop/gateway/reference.hpp"
#include "khop/graph/relabel.hpp"
#include "khop/graph/spatial_grid.hpp"
#include "khop/net/generator.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {
namespace {

TEST(RelabelSlow, RelabeledPipelineMatchesReferenceAtScale) {
  Workspace ws;
  ThreadPool pool_one(1), pool_two(2), pool_hw(0);
  GeneratorConfig gen;
  gen.num_nodes = 3000;
  gen.target_degree = 7.0;
  Rng rng(103);
  const AdHocNetwork net = generate_network(gen, rng, ws);

  const Relabeling r = sfc_relabeling(net.positions);
  const Graph g2 = relabel(net.graph, r);

  // The relabeled graph is the same unit-disk graph built from the permuted
  // positions: structural cross-check against the streamed builder.
  const std::vector<Point2> pts2 = relabel(net.positions, r);
  SpatialGrid grid;
  EXPECT_EQ(g2.edge_list(),
            build_unit_disk_graph_streamed(pts2, net.radius, grid).edge_list());

  std::vector<PriorityKey> prios(net.graph.num_nodes());
  for (NodeId u = 0; u < net.graph.num_nodes(); ++u) {
    prios[u] = {static_cast<double>(u), u};
  }
  const auto carried = relabel(prios, r);

  const Clustering direct = khop_clustering(
      net.graph, 2, prios, AffiliationRule::kDistanceBased, ws);
  const Clustering c2 = khop_clustering(
      g2, 2, carried, AffiliationRule::kDistanceBased, ws);
  const Clustering want_c2 =
      reference::khop_clustering(g2, 2, carried, AffiliationRule::kDistanceBased);
  EXPECT_EQ(c2.heads, want_c2.heads);
  EXPECT_EQ(c2.head_of, want_c2.head_of);
  EXPECT_EQ(c2.dist_to_head, want_c2.dist_to_head);
  EXPECT_EQ(c2.election_rounds, want_c2.election_rounds);

  // Distinct carried keys make the election equivariant.
  const Clustering c_mapped = to_original_ids(c2, r);
  EXPECT_EQ(c_mapped.heads, direct.heads);
  EXPECT_EQ(c_mapped.dist_to_head, direct.dist_to_head);
  EXPECT_EQ(c_mapped.election_rounds, direct.election_rounds);

  for (const Pipeline p : kAllPipelines) {
    const Backbone want = reference::build_backbone(g2, c2, p);
    const Backbone serial = build_backbone(g2, c2, p, ws);
    EXPECT_EQ(serial.heads, want.heads);
    EXPECT_EQ(serial.gateways, want.gateways);
    EXPECT_EQ(serial.virtual_links, want.virtual_links);
    for (ThreadPool* pool : {&pool_one, &pool_two, &pool_hw}) {
      const Backbone par = build_backbone(g2, c2, p, *pool);
      EXPECT_EQ(par.heads, want.heads);
      EXPECT_EQ(par.gateways, want.gateways);
      EXPECT_EQ(par.virtual_links, want.virtual_links);
    }
    const Backbone mapped = to_original_ids(serial, r);
    const std::string err = validate_k_cds(net.graph, c_mapped, mapped);
    EXPECT_TRUE(err.empty()) << "pipeline " << static_cast<int>(p) << ": "
                             << err;
  }
}

}  // namespace
}  // namespace khop
