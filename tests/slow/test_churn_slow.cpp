// Larger churn runs (slow ctest label): >= 1k mixed events per configuration
// with periodic bit-exact audits and per-event equivalence against the naive
// full-recompute reference, including a forced partition + rejoin schedule.
// Companion to tests/test_churn.cpp at CI-fast sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "khop/dynamic/churn_engine.hpp"
#include "khop/dynamic/churn_reference.hpp"
#include "khop/dynamic/churn_trace.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

Graph make_network(std::uint64_t seed, std::size_t n, double degree = 8.0) {
  GeneratorConfig cfg;
  cfg.num_nodes = n;
  cfg.target_degree = degree;
  Rng rng(seed);
  return generate_network(cfg, rng).graph;
}

struct SlowCase {
  std::uint64_t seed;
  std::size_t n;
  Hops k;
  Pipeline pipeline;
  std::size_t events;
};

class ChurnSlow : public ::testing::TestWithParam<SlowCase> {};

TEST_P(ChurnSlow, LongMixedTraceMatchesReference) {
  const SlowCase p = GetParam();
  const Graph g0 = make_network(p.seed, p.n);
  ChurnTraceConfig cfg;
  cfg.num_events = p.events;
  cfg.burst_at = p.events / 4;
  cfg.burst_radius = 1;
  cfg.partition_at = p.events / 2;
  cfg.partition_radius = 2;
  cfg.rejoin_after = 60;
  const ChurnTrace trace = ChurnTrace::generate(g0, cfg, p.seed + 7);
  ASSERT_GE(trace.size(), p.events);

  ChurnEngine engine(g0, p.k, p.pipeline);
  ReferenceChurnMaintainer ref(g0, p.k, p.pipeline);
  std::size_t applied = 0;
  for (const ChurnEvent& e : trace.events()) {
    engine.apply(e);
    ref.apply(e);
    ++applied;
    ASSERT_EQ(engine.clustering().head_of, ref.head_of())
        << "head_of diverged after event " << applied;
    ASSERT_EQ(engine.clustering().dist_to_head, ref.dist_to_head())
        << "dist_to_head diverged after event " << applied;
    if (applied % 200 == 0) {
      ASSERT_EQ(engine.audit(), "") << "after event " << applied;
    }
  }
  EXPECT_EQ(engine.audit(), "");
  EXPECT_EQ(engine.stats().full_rebuilds, 0u);
  EXPECT_GT(engine.stats().partitions, 0u);
  // Repair locality: incremental repair must touch a small fraction of the
  // network per event on average (the point of the scoping).
  const double avg_touched =
      static_cast<double>(engine.stats().touched_nodes) /
      static_cast<double>(engine.stats().events);
  EXPECT_LT(avg_touched, static_cast<double>(p.n) / 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Churn, ChurnSlow,
    ::testing::Values(SlowCase{9101, 250, 2, Pipeline::kAcLmst, 1200},
                      SlowCase{9102, 250, 2, Pipeline::kNcMesh, 1200},
                      SlowCase{9103, 300, 3, Pipeline::kAcMesh, 1000},
                      SlowCase{9104, 200, 1, Pipeline::kNcLmst, 1000}),
    [](const ::testing::TestParamInfo<SlowCase>& info) {
      std::string name = "n" + std::to_string(info.param.n) + "_k" +
                         std::to_string(info.param.k) + "_" +
                         std::string(pipeline_name(info.param.pipeline));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace khop
