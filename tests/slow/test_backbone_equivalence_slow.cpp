// At-scale bit-exactness for the PR 4 backbone overhaul (`slow` ctest
// label): all five paper pipelines, fused serial AND parallel across thread
// counts {1, 2, hardware}, against the preserved reference pipeline on a
// four-digit-node topology. This is the acceptance gate for the fused
// bounded-sweep construction.
#include <gtest/gtest.h>

#include <vector>

#include "khop/gateway/backbone.hpp"
#include "khop/gateway/reference.hpp"
#include "khop/net/generator.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/runtime/workspace.hpp"

namespace khop {
namespace {

Graph random_topology(std::size_t n, double degree, std::uint64_t seed) {
  GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = degree;
  Rng rng(seed);
  return generate_network(gen, rng).graph;
}

void expect_backbone_eq(const Backbone& got, const Backbone& want,
                        const char* what) {
  EXPECT_EQ(got.heads, want.heads) << what;
  EXPECT_EQ(got.gateways, want.gateways) << what;
  EXPECT_EQ(got.virtual_links, want.virtual_links) << what;
}

TEST(BackboneEquivalenceSlow, AllPipelinesAllThreadCountsAtScale) {
  const Graph g = random_topology(1500, 7.0, 98);
  Workspace ws;
  // 0 selects hardware_concurrency (see ThreadPool).
  for (Hops k = 2; k <= 3; ++k) {
    const Clustering c = khop_clustering(g, k);
    for (const Pipeline p : kAllPipelines) {
      const Backbone want = reference::build_backbone(g, c, p);
      expect_backbone_eq(build_backbone(g, c, p, ws), want, "serial");
      for (const std::size_t threads : {1u, 2u, 0u}) {
        ThreadPool pool(threads);
        expect_backbone_eq(build_backbone(g, c, p, pool), want, "parallel");
      }
    }
  }
}

TEST(BackboneEquivalenceSlow, RepeatedWorkspaceReuseStaysExact) {
  // One workspace reused across every pipeline and k must not leak state
  // between builds.
  const Graph g = random_topology(1200, 6.5, 99);
  Workspace ws;
  for (int rep = 0; rep < 2; ++rep) {
    for (Hops k = 1; k <= 2; ++k) {
      const Clustering c = khop_clustering(g, k);
      for (const Pipeline p : kAllPipelines) {
        expect_backbone_eq(build_backbone(g, c, p, ws),
                           reference::build_backbone(g, c, p), "reuse");
      }
    }
  }
}

}  // namespace
}  // namespace khop
