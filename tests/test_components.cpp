// Unit tests for connectivity analysis.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "khop/common/error.hpp"
#include "khop/graph/components.hpp"
#include "khop/graph/metrics.hpp"

namespace khop {
namespace {

using EdgeList = std::vector<std::pair<NodeId, NodeId>>;

TEST(Components, CountsIslands) {
  const Graph g = Graph::from_edges(6, EdgeList{{0, 1}, {2, 3}, {3, 4}});
  const auto c = connected_components(g);
  EXPECT_EQ(c.count, 3u);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[2], c.label[4]);
  EXPECT_NE(c.label[0], c.label[2]);
  EXPECT_NE(c.label[5], c.label[0]);
}

TEST(Components, LabelsFollowSmallestNodeOrder) {
  const Graph g = Graph::from_edges(4, EdgeList{{2, 3}});
  const auto c = connected_components(g);
  EXPECT_EQ(c.label[0], 0u);
  EXPECT_EQ(c.label[1], 1u);
  EXPECT_EQ(c.label[2], 2u);
  EXPECT_EQ(c.label[3], 2u);
}

TEST(Components, ConnectedGraphIsConnected) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}, {1, 2}});
  EXPECT_TRUE(is_connected(g));
}

TEST(Components, SingleAndEmptyAreConnected) {
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_TRUE(is_connected(Graph(0)));
}

TEST(Components, TwoIsolatedNodesAreNot) {
  EXPECT_FALSE(is_connected(Graph(2)));
}

TEST(ConnectedSubset, DetectsSplitSubsets) {
  // Path 0-1-2-3-4: subset {0,1} connected; {0,2} not; {0,1,2} connected.
  const Graph g =
      Graph::from_edges(5, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  std::vector<bool> mask(5, false);
  mask[0] = mask[1] = true;
  EXPECT_TRUE(is_connected_subset(g, mask));
  mask[1] = false;
  mask[2] = true;
  EXPECT_FALSE(is_connected_subset(g, mask));
  mask[1] = true;
  EXPECT_TRUE(is_connected_subset(g, mask));
}

TEST(ConnectedSubset, EmptyAndSingletonAreConnected) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}});
  EXPECT_TRUE(is_connected_subset(g, {false, false, false}));
  EXPECT_TRUE(is_connected_subset(g, {false, false, true}));
}

TEST(ConnectedSubset, RejectsWrongMaskSize) {
  const Graph g = Graph::from_edges(3, EdgeList{{0, 1}});
  EXPECT_THROW((void)is_connected_subset(g, {true, true}), InvalidArgument);
}

TEST(LargestComponent, PicksBiggerIsland) {
  const Graph g = Graph::from_edges(6, EdgeList{{0, 1}, {2, 3}, {3, 4}});
  const auto lc = largest_component(g);
  EXPECT_EQ(lc.original_ids, (std::vector<NodeId>{2, 3, 4}));
  EXPECT_EQ(lc.new_id[3], 1u);
  EXPECT_EQ(lc.new_id[0], kInvalidNode);
}

TEST(Diameter, PathGraph) {
  const Graph g =
      Graph::from_edges(5, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  EXPECT_EQ(diameter(g), 4u);
}

TEST(Diameter, ThrowsOnDisconnected) {
  EXPECT_THROW(diameter(Graph(2)), NotConnected);
}

}  // namespace
}  // namespace khop
