// Telemetry determinism guard: every pipeline output — clustering,
// backbone, engine delivery totals, churn repair state — must be
// bit-identical whether telemetry is disabled or enabled, serial or under
// any thread count. Telemetry is observational only; this suite is the
// enforcement of that invariant (the core acceptance criterion of the obs
// subsystem).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "khop/cluster/clustering.hpp"
#include "khop/dynamic/churn_engine.hpp"
#include "khop/dynamic/churn_trace.hpp"
#include "khop/gateway/backbone.hpp"
#include "khop/net/generator.hpp"
#include "khop/obs/telemetry.hpp"
#include "khop/obs/trace.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/runtime/workspace.hpp"
#include "khop/sim/engine.hpp"
#include "khop/sim/protocols/neighborhood.hpp"

namespace khop {
namespace {

constexpr std::uint64_t kSeed = 20260808;

Graph random_topology(std::size_t n, double degree, std::uint64_t seed) {
  GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = degree;
  Rng rng(seed);
  return generate_network(gen, rng).graph;
}

/// Thread counts to exercise: serial (no pool), 2 workers, and the
/// hardware count (deduplicated; on a 1-core machine hardware == 1).
std::vector<std::size_t> thread_counts() {
  std::vector<std::size_t> counts = {0, 2};  // 0 = serial, no pool
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (hw != 2) counts.push_back(hw);
  return counts;
}

/// Digest of one full pipeline + engine execution at a given thread count
/// (0 = serial workspace path). Integer-valued terms, exact in double:
/// equal digests mean bit-identical outputs.
double pipeline_digest(const Graph& g, Hops k, std::size_t threads) {
  double sum = 0.0;

  std::unique_ptr<ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<ThreadPool>(threads);

  Workspace ws;
  const auto priorities = make_priorities(g, PriorityRule::kLowestId);
  const Clustering c =
      khop_clustering(g, k, priorities, AffiliationRule::kIdBased, ws);
  sum += static_cast<double>(c.election_rounds);
  for (NodeId h : c.heads) sum += 11.0 * h;
  for (NodeId v = 0; v < c.head_of.size(); ++v) {
    sum += c.head_of[v] + 7.0 * c.dist_to_head[v];
  }

  const Backbone b = pool != nullptr
                         ? build_backbone(g, c, Pipeline::kNcLmst, *pool)
                         : build_backbone(g, c, Pipeline::kNcLmst, ws);
  for (NodeId gw : b.gateways) sum += 13.0 * gw;
  for (const auto& [u, v] : b.virtual_links) sum += 17.0 * u + 19.0 * v;

  SyncEngine engine(g, [&](NodeId) {
    return std::make_unique<NeighborhoodDiscoveryAgent>(k);
  });
  const bool done = pool != nullptr ? engine.run(4 * k + 4, *pool)
                                    : engine.run(4 * k + 4);
  sum += done ? 1.0 : 0.0;
  sum += static_cast<double>(engine.stats().rounds) +
         3.0 * static_cast<double>(engine.stats().transmissions) +
         5.0 * static_cast<double>(engine.stats().receptions) +
         23.0 * static_cast<double>(engine.stats().payload_words);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& agent =
        dynamic_cast<const NeighborhoodDiscoveryAgent&>(engine.agent(v));
    agent.known().for_each([&](NodeId origin, const KnownRecord& rec) {
      sum += origin + 31.0 * rec.dist + 7.0 * rec.parent;
    });
  }
  return sum;
}

double churn_digest(const Graph& g0, Hops k, std::size_t events) {
  ChurnTraceConfig cfg;
  cfg.num_events = events;
  const ChurnTrace trace = ChurnTrace::generate(g0, cfg, kSeed + 9);
  ChurnEngine engine(g0, k, Pipeline::kAcLmst);
  for (const ChurnEvent& e : trace.events()) engine.apply(e);
  EXPECT_EQ(engine.audit(), "");

  double sum = 0.0;
  const Clustering& c = engine.clustering();
  for (NodeId v = 0; v < engine.graph().capacity(); ++v) {
    if (!engine.graph().alive(v)) continue;
    sum += v + 31.0 * c.head_of[v] + 7.0 * c.dist_to_head[v];
  }
  const ChurnStats& s = engine.stats();
  sum += 3.0 * static_cast<double>(s.orphans) +
         5.0 * static_cast<double>(s.reaffiliations) +
         11.0 * static_cast<double>(s.heads_resweeped) +
         13.0 * static_cast<double>(s.touched_nodes);
  return sum;
}

class ObsDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::reset_all(); }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset_all();
  }
};

TEST_F(ObsDeterminismTest, PipelineIdenticalTelemetryOnOff) {
  const Graph g = random_topology(400, 7.0, kSeed);
  const Hops k = 2;
  for (std::size_t threads : thread_counts()) {
    obs::set_enabled(false);
    const double off = pipeline_digest(g, k, threads);
    double on = 0.0;
    {
      obs::ScopedEnable enable;
      on = pipeline_digest(g, k, threads);
    }
    EXPECT_EQ(off, on) << "threads=" << threads;
    obs::reset_all();
  }
}

TEST_F(ObsDeterminismTest, SerialAndParallelIdenticalWithTelemetry) {
  const Graph g = random_topology(400, 7.0, kSeed + 1);
  const Hops k = 2;
  obs::ScopedEnable enable;
  const double serial = pipeline_digest(g, k, 0);
  for (std::size_t threads : thread_counts()) {
    if (threads == 0) continue;
    EXPECT_EQ(serial, pipeline_digest(g, k, threads))
        << "threads=" << threads;
  }
}

TEST_F(ObsDeterminismTest, ChurnIdenticalTelemetryOnOff) {
  const Graph g0 = random_topology(300, 7.0, kSeed + 2);
  obs::set_enabled(false);
  const double off = churn_digest(g0, 2, 120);
  double on = 0.0;
  {
    obs::ScopedEnable enable;
    on = churn_digest(g0, 2, 120);
  }
  EXPECT_EQ(off, on);
}

TEST_F(ObsDeterminismTest, EnabledRunActuallyRecords) {
#if !KHOP_TELEMETRY
  GTEST_SKIP() << "telemetry compiled out";
#endif
  // Guards against the vacuous pass where the instrumentation was compiled
  // out or never reached: the telemetry-on runs above must produce spans.
  const Graph g = random_topology(120, 6.0, kSeed + 3);
  obs::ScopedEnable enable;
  (void)pipeline_digest(g, 2, 0);
  EXPECT_GT(obs::Tracer::global().num_events(), 0u);
}

}  // namespace
}  // namespace khop
