// Bit-exact equivalence suite for the PR5 SyncEngine round loop: the
// receiver-batched serial engine and the ThreadPool round executor must
// reproduce the preserved pre-PR5 engine (sim/reference.hpp) exactly -
// delivery traces, stats, and lossy DeliveryModel consultation order - on
// random topologies, for ideal and lossy links, for any thread count. The
// flattened NeighborhoodDiscoveryAgent is cross-checked against the
// preserved std::map agent the same way.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "khop/common/error.hpp"
#include "khop/net/generator.hpp"
#include "khop/radio/delivery.hpp"
#include "khop/runtime/thread_pool.hpp"
#include "khop/sim/engine.hpp"
#include "khop/sim/protocols/neighborhood.hpp"
#include "khop/sim/reference.hpp"
#include "khop/sim/sharded_engine.hpp"

namespace khop {
namespace {

Graph random_topology(std::size_t n, double degree, std::uint64_t seed) {
  GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = degree;
  Rng rng(seed);
  return generate_network(gen, rng).graph;
}

bool same_stats(const SimStats& a, const SimStats& b) {
  return a.rounds == b.rounds && a.transmissions == b.transmissions &&
         a.receptions == b.receptions && a.payload_words == b.payload_words &&
         a.drops == b.drops && a.retransmissions == b.retransmissions;
}

/// One delivered message as an agent saw it.
struct TraceEntry {
  std::size_t round;
  NodeId receiver;
  NodeId sender;
  std::uint16_t type;
  std::vector<std::int64_t> payload;

  bool operator==(const TraceEntry&) const = default;
};

/// Per-node trace store: each agent appends only to its own row, so the
/// same store works under the parallel executor (disjoint inboxes =>
/// disjoint rows). canonical() rebuilds the serial global delivery order.
struct TraceStore {
  explicit TraceStore(std::size_t n) : rows(n) {}
  std::vector<std::vector<TraceEntry>> rows;

  /// Global delivery sequence: (round, receiver) ascending with each row's
  /// internal order preserved - exactly the serial engine's processing
  /// order, and engine-independent for the parallel one.
  std::vector<TraceEntry> canonical() const {
    std::vector<TraceEntry> flat;
    for (const auto& row : rows) flat.insert(flat.end(), row.begin(), row.end());
    std::stable_sort(flat.begin(), flat.end(),
                     [](const TraceEntry& a, const TraceEntry& b) {
                       return a.round != b.round ? a.round < b.round
                                                 : a.receiver < b.receiver;
                     });
    return flat;
  }
};

/// TTL-flood with tracing, production-engine flavor.
class TracingFloodAgent : public NodeAgent {
 public:
  TracingFloodAgent(NodeId id, Hops ttl, TraceStore* store)
      : id_(id), ttl_(ttl), store_(store) {}

  void on_start(NodeContext& ctx) override {
    ctx.broadcast(1, {static_cast<std::int64_t>(id_),
                      static_cast<std::int64_t>(ttl_)});
  }

  void on_message(NodeContext& ctx, const Message& msg) override {
    store_->rows[id_].push_back(TraceEntry{ctx.round(), id_, msg.sender,
                                           msg.type, msg.data});
    const auto origin = msg.data[0];
    const auto ttl = msg.data[1];
    if (ttl > 1 && !seen_.contains(origin)) {
      seen_[origin] = true;
      ctx.broadcast(1, {origin, ttl - 1});
    }
  }

 private:
  NodeId id_;
  Hops ttl_;
  TraceStore* store_;
  std::map<std::int64_t, bool> seen_;
};

/// The same protocol against the preserved reference engine.
class ReferenceTracingFloodAgent : public reference::NodeAgent {
 public:
  ReferenceTracingFloodAgent(NodeId id, Hops ttl, TraceStore* store)
      : id_(id), ttl_(ttl), store_(store) {}

  void on_start(reference::NodeContext& ctx) override {
    ctx.broadcast(1, {static_cast<std::int64_t>(id_),
                      static_cast<std::int64_t>(ttl_)});
  }

  void on_message(reference::NodeContext& ctx, const Message& msg) override {
    store_->rows[id_].push_back(TraceEntry{ctx.round(), id_, msg.sender,
                                           msg.type, msg.data});
    const auto origin = msg.data[0];
    const auto ttl = msg.data[1];
    if (ttl > 1 && !seen_.contains(origin)) {
      seen_[origin] = true;
      ctx.broadcast(1, {origin, ttl - 1});
    }
  }

 private:
  NodeId id_;
  Hops ttl_;
  TraceStore* store_;
  std::map<std::int64_t, bool> seen_;
};

/// Drops every n-th attempt: success depends only on the global attempt
/// ordinal, so any reordering of DeliveryModel consultations between two
/// runs shows up as a trace difference.
class DropEveryNth final : public DeliveryModel {
 public:
  explicit DropEveryNth(std::size_t n) : n_(n) {}
  bool attempt(NodeId, NodeId) override { return (++count_ % n_) != 0; }

 private:
  std::size_t n_;
  std::size_t count_ = 0;
};

struct RunResult {
  std::vector<TraceEntry> trace;
  SimStats stats;
  bool quiescent = false;
};

RunResult run_reference(const Graph& g, Hops ttl, std::size_t max_rounds,
                        DeliveryModel* model, std::size_t retry_budget) {
  TraceStore store(g.num_nodes());
  DeliveryOptions opts;
  opts.model = model;
  opts.retry_budget = retry_budget;
  reference::SyncEngine engine(
      g,
      [&](NodeId v) {
        return std::make_unique<ReferenceTracingFloodAgent>(v, ttl, &store);
      },
      opts);
  RunResult r;
  r.quiescent = engine.run(max_rounds);
  r.stats = engine.stats();
  r.trace = store.canonical();
  return r;
}

RunResult run_production(const Graph& g, Hops ttl, std::size_t max_rounds,
                         DeliveryModel* model, std::size_t retry_budget,
                         ThreadPool* pool) {
  TraceStore store(g.num_nodes());
  DeliveryOptions opts;
  opts.model = model;
  opts.retry_budget = retry_budget;
  SyncEngine engine(
      g,
      [&](NodeId v) {
        return std::make_unique<TracingFloodAgent>(v, ttl, &store);
      },
      opts);
  RunResult r;
  r.quiescent = pool ? engine.run(max_rounds, *pool) : engine.run(max_rounds);
  r.stats = engine.stats();
  r.trace = store.canonical();
  return r;
}

RunResult run_sharded(const Graph& g, Hops ttl, std::size_t max_rounds,
                      DeliveryModel* model, std::size_t retry_budget,
                      std::size_t num_shards, ThreadPool* pool) {
  TraceStore store(g.num_nodes());
  DeliveryOptions opts;
  opts.model = model;
  opts.retry_budget = retry_budget;
  ShardedEngine engine(
      g,
      [&](NodeId v) {
        return std::make_unique<TracingFloodAgent>(v, ttl, &store);
      },
      num_shards, opts);
  RunResult r;
  r.quiescent = pool ? engine.run(max_rounds, *pool) : engine.run(max_rounds);
  r.stats = engine.stats();
  r.trace = store.canonical();
  return r;
}

constexpr std::size_t kShardCounts[] = {1, 2, 3, 8};

TEST(EngineEquivalence, SerialTraceMatchesReferenceIdeal) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = random_topology(40 + 13 * seed, 5.0, 400 + seed);
    const Hops ttl = 3;
    const RunResult want = run_reference(g, ttl, ttl + 2, nullptr, 0);
    const RunResult got = run_production(g, ttl, ttl + 2, nullptr, 0, nullptr);
    EXPECT_EQ(got.quiescent, want.quiescent) << "seed " << seed;
    EXPECT_TRUE(same_stats(got.stats, want.stats)) << "seed " << seed;
    EXPECT_EQ(got.trace, want.trace) << "seed " << seed;
  }
}

TEST(EngineEquivalence, ParallelTraceMatchesReferenceIdealAllThreadCounts) {
  const Graph g = random_topology(80, 6.0, 411);
  const Hops ttl = 3;
  const RunResult want = run_reference(g, ttl, ttl + 2, nullptr, 0);
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
    ThreadPool pool(threads);  // 0 = hardware concurrency
    const RunResult got = run_production(g, ttl, ttl + 2, nullptr, 0, &pool);
    EXPECT_EQ(got.quiescent, want.quiescent) << "threads " << threads;
    EXPECT_TRUE(same_stats(got.stats, want.stats)) << "threads " << threads;
    EXPECT_EQ(got.trace, want.trace) << "threads " << threads;
  }
}

TEST(EngineEquivalence, LossyOrderSensitiveModelMatchesReference) {
  // DropEveryNth ties each delivery to the global attempt ordinal: these
  // expectations hold only if the new engines consult the model in exactly
  // the reference enqueue order, drops, retries and all.
  const Graph g = random_topology(60, 5.0, 421);
  const Hops ttl = 3;
  for (const std::size_t retry_budget : {std::size_t{0}, std::size_t{2}}) {
    DropEveryNth ref_model(3);
    const RunResult want =
        run_reference(g, ttl, ttl + 2, &ref_model, retry_budget);
    if (retry_budget == 0) {
      // Without retries every 3rd attempt is lost for good; with budget 2
      // the immediate retries always recover (failures are never adjacent),
      // so the retransmission counter carries the order-sensitivity instead.
      ASSERT_GT(want.stats.drops, 0u);
    } else {
      ASSERT_EQ(want.stats.drops, 0u);
      ASSERT_GT(want.stats.retransmissions, 0u);
    }

    DropEveryNth serial_model(3);
    const RunResult serial =
        run_production(g, ttl, ttl + 2, &serial_model, retry_budget, nullptr);
    EXPECT_TRUE(same_stats(serial.stats, want.stats));
    EXPECT_EQ(serial.trace, want.trace);

    for (const std::size_t threads : {std::size_t{2}, std::size_t{0}}) {
      ThreadPool pool(threads);
      DropEveryNth par_model(3);
      const RunResult par =
          run_production(g, ttl, ttl + 2, &par_model, retry_budget, &pool);
      EXPECT_TRUE(same_stats(par.stats, want.stats)) << "threads " << threads;
      EXPECT_EQ(par.trace, want.trace) << "threads " << threads;
    }
  }
}

TEST(EngineEquivalence, LossyUniformSeededModelMatchesReference) {
  const Graph g = random_topology(70, 6.0, 431);
  const Hops ttl = 2;
  UniformLossDelivery ref_model(0.3, 909);
  const RunResult want = run_reference(g, ttl, ttl + 2, &ref_model, 1);
  ASSERT_GT(want.stats.drops, 0u);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    ThreadPool pool(threads);
    UniformLossDelivery model(0.3, 909);
    const RunResult got = run_production(g, ttl, ttl + 2, &model, 1, &pool);
    EXPECT_TRUE(same_stats(got.stats, want.stats)) << "threads " << threads;
    EXPECT_EQ(got.trace, want.trace) << "threads " << threads;
  }
}

/// Exercises the hardest ordering cases of the broadcast-centric fast path:
/// in round 1 every node answers each hello with an addressed send AND two
/// broadcasts (one from on_message, one from on_round_end), so round-2
/// inboxes must interleave same-sender sends and broadcasts from both
/// phases purely by (type, payload).
template <typename Ctx, typename Base>
class MixedPhaseAgent : public Base {
 public:
  MixedPhaseAgent(NodeId id, TraceStore* store) : id_(id), store_(store) {}

  void on_start(Ctx& ctx) override {
    ctx.broadcast(1, {static_cast<std::int64_t>(id_)});
  }

  void on_message(Ctx& ctx, const Message& msg) override {
    store_->rows[id_].push_back(TraceEntry{ctx.round(), id_, msg.sender,
                                           msg.type, msg.data});
    if (ctx.round() == 1) {
      ctx.send(msg.sender, 2, {static_cast<std::int64_t>(id_)});
      ctx.broadcast(3, {static_cast<std::int64_t>(2 * id_)});
    }
  }

  void on_round_end(Ctx& ctx) override {
    if (ctx.round() == 1) {
      ctx.broadcast(4, {static_cast<std::int64_t>(id_)});
    }
  }

 private:
  NodeId id_;
  TraceStore* store_;
};

TEST(EngineEquivalence, MixedSendBroadcastPhasesMatchReference) {
  using Agent = MixedPhaseAgent<NodeContext, NodeAgent>;
  using RefAgent = MixedPhaseAgent<reference::NodeContext, reference::NodeAgent>;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = random_topology(50 + 11 * seed, 5.0, 470 + seed);

    TraceStore ref_store(g.num_nodes());
    reference::SyncEngine ref_engine(g, [&](NodeId v) {
      return std::make_unique<RefAgent>(v, &ref_store);
    });
    EXPECT_TRUE(ref_engine.run(5));
    const std::vector<TraceEntry> want = ref_store.canonical();

    TraceStore serial_store(g.num_nodes());
    SyncEngine serial(g, [&](NodeId v) {
      return std::make_unique<Agent>(v, &serial_store);
    });
    EXPECT_TRUE(serial.run(5));
    EXPECT_TRUE(same_stats(serial.stats(), ref_engine.stats()))
        << "seed " << seed;
    EXPECT_EQ(serial_store.canonical(), want) << "seed " << seed;

    for (const std::size_t threads : {std::size_t{2}, std::size_t{0}}) {
      ThreadPool pool(threads);
      TraceStore par_store(g.num_nodes());
      SyncEngine parallel(g, [&](NodeId v) {
        return std::make_unique<Agent>(v, &par_store);
      });
      EXPECT_TRUE(parallel.run(5, pool));
      EXPECT_TRUE(same_stats(parallel.stats(), ref_engine.stats()))
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(par_store.canonical(), want)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(EngineEquivalence, IsolatedBroadcasterQuiescesLikeReference) {
  // A degree-0 node's broadcast is a radio transmission with no receivers:
  // the reference engine enqueues nothing and quiesces at round 0. The
  // fast path must not let the recorded-but-undeliverable broadcast keep
  // the round loop alive (a round-end rebroadcaster on an isolated node
  // would otherwise never quiesce).
  const Graph g = Graph::from_edges(1, std::vector<std::pair<NodeId, NodeId>>{});

  class Beacon : public NodeAgent {
   public:
    void on_start(NodeContext& ctx) override { ctx.broadcast(1, {42}); }
    void on_message(NodeContext&, const Message&) override {}
    void on_round_end(NodeContext& ctx) override { ctx.broadcast(1, {42}); }
  };
  class RefBeacon : public reference::NodeAgent {
   public:
    void on_start(reference::NodeContext& ctx) override {
      ctx.broadcast(1, {42});
    }
    void on_message(reference::NodeContext&, const Message&) override {}
    void on_round_end(reference::NodeContext& ctx) override {
      ctx.broadcast(1, {42});
    }
  };

  reference::SyncEngine ref_engine(
      g, [](NodeId) { return std::make_unique<RefBeacon>(); });
  EXPECT_TRUE(ref_engine.run(8));

  SyncEngine engine(g, [](NodeId) { return std::make_unique<Beacon>(); });
  EXPECT_TRUE(engine.run(8));
  EXPECT_TRUE(same_stats(engine.stats(), ref_engine.stats()));
  EXPECT_EQ(engine.stats().rounds, 0u);
  EXPECT_EQ(engine.stats().transmissions, 1u);

  ThreadPool pool(2);
  SyncEngine par(g, [](NodeId) { return std::make_unique<Beacon>(); });
  EXPECT_TRUE(par.run(8, pool));
  EXPECT_TRUE(same_stats(par.stats(), ref_engine.stats()));
}

/// Broadcasts a hello; when \p fail is set, node 3 also attempts an illegal
/// addressed send so the run aborts mid-phase.
class BadFirstRunAgent : public NodeAgent {
 public:
  BadFirstRunAgent(NodeId id, const bool* fail) : id_(id), fail_(fail) {}
  void on_start(NodeContext& ctx) override {
    ctx.broadcast(1, {static_cast<std::int64_t>(id_)});
    if (id_ == 3 && *fail_) ctx.send(0, 2, {});  // 0 is not a neighbor of 3
  }
  void on_message(NodeContext&, const Message&) override { ++received_; }
  std::size_t received_ = 0;

 private:
  NodeId id_;
  const bool* fail_;
};

TEST(EngineEquivalence, RerunAfterFailedParallelRunIsClean) {
  // An exception escaping a parallel phase leaves completed chunks'
  // outboxes populated; the next run() must not replay them.
  const Graph g = Graph::from_edges(
      4, std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {1, 2}, {2, 3}});

  bool fail = true;
  ThreadPool pool(2);
  SyncEngine engine(g, [&fail](NodeId v) {
    return std::make_unique<BadFirstRunAgent>(v, &fail);
  });
  EXPECT_THROW(engine.run(8, pool), InvalidArgument);

  fail = false;
  EXPECT_TRUE(engine.run(8, pool));
  // Clean run: every node hears exactly its degree's worth of hellos, with
  // no replayed messages from the aborted attempt.
  EXPECT_EQ(engine.stats().transmissions, 4u);
  EXPECT_EQ(engine.stats().receptions, 6u);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(dynamic_cast<BadFirstRunAgent&>(engine.agent(v)).received_,
              g.neighbors(v).size())
        << "node " << v;
  }
}

TEST(EngineEquivalence, RerunAfterParallelRunIsBitIdentical) {
  // One engine, three runs (serial, pooled, serial): every run must produce
  // the same trace from a fully reset engine and fresh agents.
  const Graph g = random_topology(50, 5.0, 441);
  const Hops ttl = 3;
  TraceStore store(g.num_nodes());
  SyncEngine engine(g, [&](NodeId v) {
    return std::make_unique<TracingFloodAgent>(v, ttl, &store);
  });

  EXPECT_TRUE(engine.run(ttl + 2));
  const std::vector<TraceEntry> first = store.canonical();
  const SimStats first_stats = engine.stats();

  ThreadPool pool(2);
  store = TraceStore(g.num_nodes());
  EXPECT_TRUE(engine.run(ttl + 2, pool));
  EXPECT_TRUE(same_stats(engine.stats(), first_stats));
  EXPECT_EQ(store.canonical(), first);

  store = TraceStore(g.num_nodes());
  EXPECT_TRUE(engine.run(ttl + 2));
  EXPECT_TRUE(same_stats(engine.stats(), first_stats));
  EXPECT_EQ(store.canonical(), first);
}

TEST(EngineEquivalence, FlatNeighborhoodAgentMatchesReferenceMapAgent) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g = random_topology(60 + 15 * seed, 6.0, 450 + seed);
    for (const Hops k : {1u, 2u, 3u}) {
      reference::SyncEngine ref_engine(g, [&](NodeId) {
        return std::make_unique<reference::NeighborhoodDiscoveryAgent>(k);
      });
      ASSERT_TRUE(ref_engine.run(2 * k + 2));

      SyncEngine engine(g, [&](NodeId) {
        return std::make_unique<NeighborhoodDiscoveryAgent>(k);
      });
      ASSERT_TRUE(engine.run(2 * k + 2));
      EXPECT_TRUE(same_stats(engine.stats(), ref_engine.stats()))
          << "seed " << seed << " k " << k;

      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        const auto& ref_agent =
            dynamic_cast<const reference::NeighborhoodDiscoveryAgent&>(
                ref_engine.agent(v));
        const auto& agent = dynamic_cast<const NeighborhoodDiscoveryAgent&>(
            engine.agent(v));
        const auto items = agent.known().sorted_items();
        ASSERT_EQ(items.size(), ref_agent.known().size())
            << "seed " << seed << " k " << k << " node " << v;
        std::size_t i = 0;
        for (const auto& [origin, rec] : ref_agent.known()) {
          EXPECT_EQ(items[i].first, origin);
          EXPECT_EQ(items[i].second.dist, rec.dist);
          EXPECT_EQ(items[i].second.parent, rec.parent);
          ++i;
        }
      }
    }
  }
}

TEST(EngineEquivalence, FlatNeighborhoodAgentParallelMatchesSerial) {
  const Graph g = random_topology(90, 6.0, 461);
  const Hops k = 2;
  SyncEngine serial(g, [&](NodeId) {
    return std::make_unique<NeighborhoodDiscoveryAgent>(k);
  });
  ASSERT_TRUE(serial.run(2 * k + 2));

  ThreadPool pool(0);
  SyncEngine parallel(g, [&](NodeId) {
    return std::make_unique<NeighborhoodDiscoveryAgent>(k);
  });
  ASSERT_TRUE(parallel.run(2 * k + 2, pool));

  EXPECT_TRUE(same_stats(parallel.stats(), serial.stats()));
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto& a =
        dynamic_cast<const NeighborhoodDiscoveryAgent&>(serial.agent(v));
    const auto& b =
        dynamic_cast<const NeighborhoodDiscoveryAgent&>(parallel.agent(v));
    EXPECT_EQ(a.known().sorted_items(), b.known().sorted_items())
        << "node " << v;
  }
}

TEST(ShardedEquivalence, IdealTraceMatchesReferenceAllShardAndThreadCounts) {
  const Graph g = random_topology(90, 6.0, 501);
  const Hops ttl = 3;
  const RunResult want = run_reference(g, ttl, ttl + 2, nullptr, 0);
  for (const std::size_t shards : kShardCounts) {
    const RunResult serial =
        run_sharded(g, ttl, ttl + 2, nullptr, 0, shards, nullptr);
    EXPECT_EQ(serial.quiescent, want.quiescent) << "shards " << shards;
    EXPECT_TRUE(same_stats(serial.stats, want.stats)) << "shards " << shards;
    EXPECT_EQ(serial.trace, want.trace) << "shards " << shards;

    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
      ThreadPool pool(threads);  // 0 = hardware concurrency
      const RunResult got =
          run_sharded(g, ttl, ttl + 2, nullptr, 0, shards, &pool);
      EXPECT_EQ(got.quiescent, want.quiescent)
          << "shards " << shards << " threads " << threads;
      EXPECT_TRUE(same_stats(got.stats, want.stats))
          << "shards " << shards << " threads " << threads;
      EXPECT_EQ(got.trace, want.trace)
          << "shards " << shards << " threads " << threads;
    }
  }
}

TEST(ShardedEquivalence, LossyOrderSensitiveModelMatchesReference) {
  // DropEveryNth ties every delivery to the global attempt ordinal: the
  // sharded engine passes only if its serial flush consults the model in
  // the exact single-engine sequence - ascending destination across all
  // shard cuts, ascending neighbor per broadcast, retries in place.
  const Graph g = random_topology(72, 5.0, 511);
  const Hops ttl = 3;
  for (const std::size_t retry_budget : {std::size_t{0}, std::size_t{2}}) {
    DropEveryNth ref_model(3);
    const RunResult want =
        run_reference(g, ttl, ttl + 2, &ref_model, retry_budget);
    if (retry_budget == 0) {
      ASSERT_GT(want.stats.drops, 0u);
    } else {
      ASSERT_GT(want.stats.retransmissions, 0u);
    }

    for (const std::size_t shards : kShardCounts) {
      DropEveryNth serial_model(3);
      const RunResult serial = run_sharded(g, ttl, ttl + 2, &serial_model,
                                           retry_budget, shards, nullptr);
      EXPECT_TRUE(same_stats(serial.stats, want.stats)) << "shards " << shards;
      EXPECT_EQ(serial.trace, want.trace) << "shards " << shards;

      ThreadPool pool(2);
      DropEveryNth par_model(3);
      const RunResult par = run_sharded(g, ttl, ttl + 2, &par_model,
                                        retry_budget, shards, &pool);
      EXPECT_TRUE(same_stats(par.stats, want.stats)) << "shards " << shards;
      EXPECT_EQ(par.trace, want.trace) << "shards " << shards;
    }
  }
}

TEST(ShardedEquivalence, LossyUniformSeededModelMatchesReference) {
  const Graph g = random_topology(70, 6.0, 521);
  const Hops ttl = 2;
  UniformLossDelivery ref_model(0.3, 909);
  const RunResult want = run_reference(g, ttl, ttl + 2, &ref_model, 1);
  ASSERT_GT(want.stats.drops, 0u);

  for (const std::size_t shards : kShardCounts) {
    ThreadPool pool(0);
    UniformLossDelivery model(0.3, 909);
    const RunResult got =
        run_sharded(g, ttl, ttl + 2, &model, 1, shards, &pool);
    EXPECT_TRUE(same_stats(got.stats, want.stats)) << "shards " << shards;
    EXPECT_EQ(got.trace, want.trace) << "shards " << shards;
  }
}

TEST(ShardedEquivalence, MixedSendBroadcastPhasesMatchReference) {
  // Same-sender broadcasts and addressed sends from both handler phases
  // must interleave by (type, payload) in every receiver's inbox - here
  // with senders and receivers split across shard cuts.
  using Agent = MixedPhaseAgent<NodeContext, NodeAgent>;
  using RefAgent =
      MixedPhaseAgent<reference::NodeContext, reference::NodeAgent>;
  const Graph g = random_topology(66, 5.0, 531);

  TraceStore ref_store(g.num_nodes());
  reference::SyncEngine ref_engine(g, [&](NodeId v) {
    return std::make_unique<RefAgent>(v, &ref_store);
  });
  EXPECT_TRUE(ref_engine.run(5));
  const std::vector<TraceEntry> want = ref_store.canonical();

  for (const std::size_t shards : kShardCounts) {
    for (const bool use_pool : {false, true}) {
      ThreadPool pool(2);
      TraceStore store(g.num_nodes());
      ShardedEngine engine(
          g, [&](NodeId v) { return std::make_unique<Agent>(v, &store); },
          shards);
      EXPECT_TRUE(use_pool ? engine.run(5, pool) : engine.run(5));
      EXPECT_TRUE(same_stats(engine.stats(), ref_engine.stats()))
          << "shards " << shards << " pool " << use_pool;
      EXPECT_EQ(store.canonical(), want)
          << "shards " << shards << " pool " << use_pool;
    }
  }
}

TEST(ShardedEquivalence, RerunIsBitIdentical) {
  // One sharded engine, three runs (serial, pooled, serial): the reuse
  // contract must hold across the shard split - fresh agents, reset shard
  // stats, drained boundary outboxes.
  const Graph g = random_topology(60, 5.0, 541);
  const Hops ttl = 3;
  TraceStore store(g.num_nodes());
  ShardedEngine engine(
      g,
      [&](NodeId v) {
        return std::make_unique<TracingFloodAgent>(v, ttl, &store);
      },
      3);

  EXPECT_TRUE(engine.run(ttl + 2));
  const std::vector<TraceEntry> first = store.canonical();
  const SimStats first_stats = engine.stats();

  ThreadPool pool(2);
  store = TraceStore(g.num_nodes());
  EXPECT_TRUE(engine.run(ttl + 2, pool));
  EXPECT_TRUE(same_stats(engine.stats(), first_stats));
  EXPECT_EQ(store.canonical(), first);

  store = TraceStore(g.num_nodes());
  EXPECT_TRUE(engine.run(ttl + 2));
  EXPECT_TRUE(same_stats(engine.stats(), first_stats));
  EXPECT_EQ(store.canonical(), first);
}

TEST(ShardedEquivalence, DiscoveryDigestsMatchSingleEngine) {
  // Protocol end state, not just traces: k-hop neighborhood tables from the
  // sharded run must equal the single-engine run element for element.
  const Graph g = random_topology(85, 6.0, 551);
  const Hops k = 2;
  SyncEngine single(g, [&](NodeId) {
    return std::make_unique<NeighborhoodDiscoveryAgent>(k);
  });
  ASSERT_TRUE(single.run(2 * k + 2));

  for (const std::size_t shards : kShardCounts) {
    ThreadPool pool(0);
    ShardedEngine engine(
        g,
        [&](NodeId) { return std::make_unique<NeighborhoodDiscoveryAgent>(k); },
        shards);
    ASSERT_TRUE(engine.run(2 * k + 2, pool));
    EXPECT_TRUE(same_stats(engine.stats(), single.stats()))
        << "shards " << shards;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto& a =
          dynamic_cast<const NeighborhoodDiscoveryAgent&>(single.agent(v));
      const auto& b =
          dynamic_cast<const NeighborhoodDiscoveryAgent&>(engine.agent(v));
      EXPECT_EQ(a.known().sorted_items(), b.known().sorted_items())
          << "shards " << shards << " node " << v;
    }
  }
}

}  // namespace
}  // namespace khop
