// Parameterized failure-injection properties: for every (k, pipeline, seed)
// configuration, killing any node and applying the section-3.3 repair must
// leave a valid backbone; a follow-up join must also stay valid.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "khop/dynamic/events.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

using Param = std::tuple<Hops, Pipeline, std::uint64_t>;

class FailureProperty : public ::testing::TestWithParam<Param> {
 protected:
  void SetUp() override {
    const auto [k, pipeline, seed] = GetParam();
    GeneratorConfig cfg;
    cfg.num_nodes = 90;
    cfg.target_degree = 8.0;
    Rng rng(seed);
    net_ = generate_network(cfg, rng);
    clustering_ = khop_clustering(net_.graph, k);
    backbone_ = build_backbone(net_.graph, clustering_, pipeline);
  }

  AdHocNetwork net_;
  Clustering clustering_;
  Backbone backbone_;
};

TEST_P(FailureProperty, EveryRepairableFailureValidates) {
  const auto [k, pipeline, seed] = GetParam();
  Rng rng(seed ^ 0xfa11);
  std::size_t repaired = 0;
  for (int attempt = 0; attempt < 24 && repaired < 12; ++attempt) {
    const auto victim =
        static_cast<NodeId>(rng.uniform_int(net_.num_nodes()));
    const auto rep = handle_node_failure(net_.graph, clustering_, backbone_,
                                         pipeline, victim);
    if (!rep.remainder_connected) continue;
    ++repaired;
    EXPECT_TRUE(rep.validation_error.empty())
        << "victim " << victim << ": " << rep.validation_error;
    // Membership stays total and heads stay heads-of-themselves.
    for (NodeId v = 0; v < rep.remainder.graph.num_nodes(); ++v) {
      EXPECT_NE(rep.clustering.head_of[v], kInvalidNode);
    }
    for (NodeId h : rep.clustering.heads) {
      EXPECT_EQ(rep.clustering.head_of[h], h);
    }
  }
  EXPECT_GE(repaired, 8u);
}

TEST_P(FailureProperty, FailureThenJoinStaysValid) {
  const auto [k, pipeline, seed] = GetParam();
  Rng rng(seed ^ 0x7015);
  for (int attempt = 0; attempt < 10; ++attempt) {
    const auto victim =
        static_cast<NodeId>(rng.uniform_int(net_.num_nodes()));
    const auto rep = handle_node_failure(net_.graph, clustering_, backbone_,
                                         pipeline, victim);
    if (!rep.remainder_connected) continue;
    const auto anchor = static_cast<NodeId>(
        rng.uniform_int(rep.remainder.graph.num_nodes()));
    const auto join = handle_node_join(rep.remainder.graph, rep.clustering,
                                       rep.backbone, pipeline, {anchor});
    EXPECT_TRUE(join.validation_error.empty()) << join.validation_error;
    return;  // one full failure->join cycle per configuration suffices
  }
}

std::string param_name(const ::testing::TestParamInfo<Param>& pinfo) {
  const auto [k, pipeline, seed] = pinfo.param;
  std::string name = "k" + std::to_string(k) + "_" +
                     std::string(pipeline_name(pipeline)) + "_s" +
                     std::to_string(seed);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FailureProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(Pipeline::kNcMesh,
                                         Pipeline::kAcLmst, Pipeline::kGmst),
                       ::testing::Values(41u, 42u)),
    param_name);

}  // namespace
}  // namespace khop
