// ShardPlan properties: the contiguous ranges partition the id space, the
// interior/boundary classification and halo lists match brute force, and
// the shard_cut_quality diagnostic shows Hilbert order beating random order
// on jittered-grid unit-disk graphs (the thin-cut property the sharded
// engine relies on).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "khop/common/rng.hpp"
#include "khop/graph/partition.hpp"
#include "khop/graph/relabel.hpp"
#include "khop/graph/spatial_grid.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

Graph random_topology(std::size_t n, double degree, std::uint64_t seed) {
  GeneratorConfig gen;
  gen.num_nodes = n;
  gen.target_degree = degree;
  Rng rng(seed);
  return generate_network(gen, rng).graph;
}

TEST(ShardPlan, RangesPartitionTheIdSpace) {
  const Graph g = random_topology(97, 5.0, 901);
  for (const std::size_t shards : {1u, 2u, 3u, 8u, 13u}) {
    const ShardPlan plan(g, shards);
    ASSERT_EQ(plan.num_shards(), shards);
    ASSERT_EQ(plan.num_nodes(), g.num_nodes());

    NodeId expect_begin = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const ShardRange& r = plan.shard(s);
      EXPECT_EQ(r.begin, expect_begin) << "shard " << s;
      EXPECT_LE(r.begin, r.end);
      expect_begin = r.end;
      // Near-equal cut: sizes differ by at most one.
      EXPECT_LE(r.size(), g.num_nodes() / shards + 1);
      for (NodeId v = r.begin; v < r.end; ++v) {
        EXPECT_EQ(plan.shard_of(v), s);
      }
    }
    EXPECT_EQ(expect_begin, g.num_nodes());
  }
}

TEST(ShardPlan, SurplusShardsAreEmpty) {
  const Graph g = random_topology(5, 2.0, 902);
  const ShardPlan plan(g, 9);
  std::size_t covered = 0;
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    covered += plan.shard(s).size();
    EXPECT_DOUBLE_EQ(plan.shard(s).size() == 0 ? 0.0
                                               : plan.boundary_fraction(s),
                     plan.boundary_fraction(s));
  }
  EXPECT_EQ(covered, g.num_nodes());
}

TEST(ShardPlan, BoundaryAndHaloMatchBruteForce) {
  const Graph g = random_topology(84, 6.0, 903);
  for (const std::size_t shards : {2u, 3u, 5u, 8u}) {
    const ShardPlan plan(g, shards);

    std::size_t boundary_total = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      bool crossing = false;
      for (NodeId u : g.neighbors(v)) {
        crossing |= plan.shard_of(u) != plan.shard_of(v);
      }
      EXPECT_EQ(plan.is_boundary(v), crossing) << "node " << v;
      boundary_total += crossing ? 1 : 0;
    }
    EXPECT_EQ(plan.num_boundary_nodes(), boundary_total);

    for (std::size_t s = 0; s < shards; ++s) {
      const ShardRange& r = plan.shard(s);
      std::vector<NodeId> want_boundary;
      std::set<NodeId> want_halo;
      for (NodeId v = r.begin; v < r.end; ++v) {
        if (plan.is_boundary(v)) want_boundary.push_back(v);
        for (NodeId u : g.neighbors(v)) {
          if (plan.shard_of(u) != s) want_halo.insert(u);
        }
      }
      EXPECT_EQ(r.boundary_nodes, want_boundary) << "shard " << s;
      EXPECT_TRUE(std::is_sorted(r.halo.begin(), r.halo.end()));
      EXPECT_EQ(std::vector<NodeId>(want_halo.begin(), want_halo.end()),
                r.halo)
          << "shard " << s;
      if (r.size() > 0) {
        EXPECT_DOUBLE_EQ(plan.boundary_fraction(s),
                         static_cast<double>(want_boundary.size()) /
                             static_cast<double>(r.size()));
      }
    }
  }
}

TEST(ShardPlan, SingleShardHasNoBoundary) {
  const Graph g = random_topology(50, 5.0, 904);
  const ShardPlan plan(g, 1);
  EXPECT_EQ(plan.num_boundary_nodes(), 0u);
  EXPECT_TRUE(plan.shard(0).halo.empty());
  EXPECT_DOUBLE_EQ(plan.boundary_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(shard_cut_quality(g, 1), 0.0);
}

TEST(ShardCutQuality, HilbertOrderBeatsRandomOrderOnJitteredGrid) {
  // Jittered grid: side x side points on unit spacing, each perturbed by
  // less than half a cell, connected at radius 1.5 (grid neighbors plus
  // some diagonals) - the regular-density placement where spatial order
  // matters most and every cut's cost is easy to reason about.
  constexpr std::size_t side = 24;
  Rng rng(905);
  std::vector<Point2> pts;
  pts.reserve(side * side);
  for (std::size_t y = 0; y < side; ++y) {
    for (std::size_t x = 0; x < side; ++x) {
      pts.push_back(Point2{static_cast<double>(x) + rng.uniform(-0.3, 0.3),
                           static_cast<double>(y) + rng.uniform(-0.3, 0.3)});
    }
  }
  const Graph g = build_unit_disk_graph(pts, 1.5);

  // Hilbert order: relabel by the SFC of the positions. Random order: a
  // seeded Fisher-Yates permutation (the adversarial baseline - contiguous
  // id ranges become spatially meaningless).
  const Relabeling hilbert = sfc_relabeling(pts);
  const Graph hilbert_g = relabel(g, hilbert);

  Relabeling random = identity_relabeling(g.num_nodes());
  for (std::size_t i = g.num_nodes(); i > 1; --i) {
    std::swap(random.new_of_old[i - 1],
              random.new_of_old[rng.uniform_int(i)]);
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    random.old_of_new[random.new_of_old[v]] = v;
  }
  const Graph random_g = relabel(g, random);

  for (const std::size_t shards : {2u, 4u, 8u}) {
    const double hq = shard_cut_quality(hilbert_g, shards);
    const double rq = shard_cut_quality(random_g, shards);
    // Hilbert tiles have perimeter/area cuts; a random order makes nearly
    // every node boundary. Require a decisive margin, not just <.
    EXPECT_LT(hq, 0.5 * rq) << "shards " << shards;
    EXPECT_GT(rq, 0.9) << "shards " << shards;
  }
  // More shards cannot make the Hilbert cut *better*; sanity-check the
  // diagnostic is monotone-ish and nontrivial.
  EXPECT_GT(shard_cut_quality(hilbert_g, 2), 0.0);
}

}  // namespace
}  // namespace khop
