// Unit tests for node switch-on maintenance (section 3.3's join case).
#include <gtest/gtest.h>

#include "khop/cds/cds.hpp"
#include "khop/common/error.hpp"
#include "khop/dynamic/events.hpp"
#include "khop/graph/bfs.hpp"
#include "khop/net/generator.hpp"

namespace khop {
namespace {

struct Fixture {
  AdHocNetwork net;
  Clustering clustering;
  Backbone backbone;

  explicit Fixture(std::uint64_t seed, Hops k, std::size_t n = 90) {
    GeneratorConfig cfg;
    cfg.num_nodes = n;
    Rng rng(seed);
    net = generate_network(cfg, rng);
    clustering = khop_clustering(net.graph, k);
    backbone = build_backbone(net.graph, clustering, Pipeline::kAcLmst);
  }
};

TEST(Join, MemberJoinAdoptsNearestHead) {
  const Fixture f(1401, 2);
  // Attach directly to a clusterhead: the newcomer is 1 hop from it.
  const NodeId head = f.clustering.heads.front();
  const auto rep = handle_node_join(f.net.graph, f.clustering, f.backbone,
                                    Pipeline::kAcLmst, {head});
  EXPECT_EQ(rep.outcome, JoinOutcome::kJoinedExistingCluster);
  EXPECT_EQ(rep.clustering.head_of[rep.new_node], head);
  EXPECT_EQ(rep.clustering.dist_to_head[rep.new_node], 1u);
  EXPECT_TRUE(rep.validation_error.empty()) << rep.validation_error;
}

TEST(Join, GrownGraphHasNewNodeEdges) {
  const Fixture f(1402, 2);
  const NodeId a = 0, b = 1;
  const auto rep = handle_node_join(f.net.graph, f.clustering, f.backbone,
                                    Pipeline::kAcLmst, {a, b});
  EXPECT_EQ(rep.graph.num_nodes(), f.net.num_nodes() + 1);
  EXPECT_TRUE(rep.graph.has_edge(rep.new_node, a));
  EXPECT_TRUE(rep.graph.has_edge(rep.new_node, b));
}

TEST(Join, HeadOnlyWhenBeyondK) {
  // Build a chain hanging off the network so the newcomer is k+1 hops from
  // every head: it must become a head itself. Easier on a path graph.
  const Graph g = Graph::from_edges(
      4, std::vector<std::pair<NodeId, NodeId>>{{0, 1}, {1, 2}, {2, 3}});
  const Clustering c = khop_clustering(g, 1);  // heads {0,2}
  const Backbone b = build_backbone(g, c, Pipeline::kAcLmst);
  // Newcomer attaches to node 3 only: dist to head 2 is 2 > k = 1.
  const auto rep = handle_node_join(g, c, b, Pipeline::kAcLmst, {3});
  EXPECT_EQ(rep.outcome, JoinOutcome::kBecameClusterhead);
  EXPECT_TRUE(rep.clustering.is_head(rep.new_node));
  EXPECT_TRUE(rep.validation_error.empty()) << rep.validation_error;
  // New head => phase 2 re-ran and the head is in the backbone.
  EXPECT_TRUE(std::binary_search(rep.backbone.heads.begin(),
                                 rep.backbone.heads.end(), rep.new_node));
}

TEST(Join, PreservesIndependentSetInvariant) {
  const Fixture f(1403, 2);
  for (const NodeId anchor : {NodeId{0}, NodeId{5}, NodeId{10}}) {
    const auto rep = handle_node_join(f.net.graph, f.clustering, f.backbone,
                                      Pipeline::kAcLmst, {anchor});
    // Whatever the outcome, heads stay a k-hop independent set.
    const auto d = all_pairs_hops(rep.graph);
    for (std::size_t i = 0; i < rep.clustering.heads.size(); ++i) {
      for (std::size_t j = i + 1; j < rep.clustering.heads.size(); ++j) {
        EXPECT_GT(d[rep.clustering.heads[i]][rep.clustering.heads[j]],
                  rep.clustering.k);
      }
    }
  }
}

TEST(Join, MemberJoinWithoutNewAdjacencyKeepsBackbone) {
  const Fixture f(1404, 2);
  // Attach to a head and its 1-hop neighbors: all edges stay inside that
  // cluster, so no new cluster adjacency appears and the CDS is reused.
  const NodeId head = f.clustering.heads.front();
  std::vector<NodeId> anchors{head};
  for (NodeId nb : f.net.graph.neighbors(head)) {
    if (f.clustering.head_of[nb] == head) {
      anchors.push_back(nb);
      break;
    }
  }
  const auto rep = handle_node_join(f.net.graph, f.clustering, f.backbone,
                                    Pipeline::kAcLmst, anchors);
  if (rep.outcome == JoinOutcome::kJoinedExistingCluster &&
      !rep.adjacency_changed) {
    EXPECT_EQ(rep.backbone.gateways, f.backbone.gateways);
  }
  EXPECT_TRUE(rep.validation_error.empty());
}

TEST(Join, BridgingJoinTriggersPhase2) {
  // Place the newcomer between two different clusters: adjacency changes
  // and phase 2 must re-run.
  const Fixture f(1405, 2);
  NodeId a = kInvalidNode, b = kInvalidNode;
  // Find two nodes of different clusters that are NOT adjacent clusters yet
  // is hard to guarantee; instead just verify the report is self-consistent
  // for a cross-cluster join.
  for (NodeId u = 0; u < f.net.num_nodes() && a == kInvalidNode; ++u) {
    for (NodeId v = 0; v < f.net.num_nodes(); ++v) {
      if (f.clustering.cluster_of[u] != f.clustering.cluster_of[v]) {
        a = u;
        b = v;
        break;
      }
    }
  }
  ASSERT_NE(a, kInvalidNode);
  const auto rep = handle_node_join(f.net.graph, f.clustering, f.backbone,
                                    Pipeline::kAcLmst, {a, b});
  EXPECT_TRUE(rep.validation_error.empty()) << rep.validation_error;
}

TEST(Join, RejectsBadInput) {
  const Fixture f(1406, 1, 50);
  EXPECT_THROW(handle_node_join(f.net.graph, f.clustering, f.backbone,
                                Pipeline::kAcLmst, {}),
               InvalidArgument);
  EXPECT_THROW(handle_node_join(f.net.graph, f.clustering, f.backbone,
                                Pipeline::kAcLmst,
                                {static_cast<NodeId>(9999)}),
               InvalidArgument);
}

TEST(Join, SequenceOfJoinsStaysValid) {
  Fixture f(1407, 2, 60);
  Graph graph = f.net.graph;
  Clustering clustering = f.clustering;
  Backbone backbone = f.backbone;
  Rng rng(8);
  for (int i = 0; i < 10; ++i) {
    const auto anchor =
        static_cast<NodeId>(rng.uniform_int(graph.num_nodes()));
    const auto rep = handle_node_join(graph, clustering, backbone,
                                      Pipeline::kAcLmst, {anchor});
    EXPECT_TRUE(rep.validation_error.empty()) << "join " << i;
    graph = rep.graph;
    clustering = rep.clustering;
    backbone = rep.backbone;
  }
  EXPECT_EQ(graph.num_nodes(), 70u);
}

}  // namespace
}  // namespace khop
